.PHONY: all build test bench bench-verify bench-sweep bench-full clean

all:
	dune build @runtest @all

build:
	dune build

test:
	dune build @runtest

# Perf snapshot of the batch verification engine (writes BENCH_verify.json
# in the repository root) followed by the trimmed paper-reproduction run.
bench: bench-verify
	dune exec -- bench/main.exe --fast

# Old-vs-new flowgraph columns (legacy_s vs csr_s) plus the deep-graph
# stack-safety smoke run under a pinned 8 MiB stack.
bench-verify:
	dune exec -- bench/verify_bench.exe
	bash -c 'ulimit -s 8192; exec dune exec -- bench/stack_smoke.exe 50000'

# Wall-clock of the parallel sweep engine at jobs 1 vs 4 (writes
# BENCH_sweep.json; the >= 2x speedup gate arms only on >= 4 cores).
bench-sweep:
	dune exec -- bench/sweep_bench.exe

# Full sweeps (Figure 7 grid, Figure 19 replication) — a few minutes.
bench-full: bench-verify bench-sweep
	dune exec -- bench/main.exe

clean:
	dune clean
