.PHONY: all build test bench bench-verify bench-sweep bench-churn bench-tracker bench-stream bench-stream-full bench-full scheme-roundtrip churn-smoke churn-incremental churn-fastpath tracker-smoke stream-smoke clean

all:
	dune build @runtest @all

build:
	dune build

test:
	dune build @runtest

# Perf snapshot of the batch verification engine (writes BENCH_verify.json
# in the repository root) followed by the trimmed paper-reproduction run.
bench: bench-verify
	dune exec -- bench/main.exe --fast

# Old-vs-new flowgraph columns (legacy_s vs csr_s) plus the deep-graph
# stack-safety smoke run under a pinned 8 MiB stack.
bench-verify:
	dune exec -- bench/verify_bench.exe
	bash -c 'ulimit -s 8192; exec dune exec -- bench/stack_smoke.exe 50000'

# Wall-clock of the parallel sweep engine at jobs 1 vs 4 (writes
# BENCH_sweep.json; the >= 2x speedup gate arms only on >= 4 cores).
bench-sweep:
	dune exec -- bench/sweep_bench.exe

# Fault-injection engine wall-clock (writes BENCH_churn.json; gates the
# audited replay at <= 3x the unaudited one, identical outcomes, and the
# warm-start flow engine at >= 5x a from-scratch solve per single-node
# event once n >= 10000).
bench-churn:
	dune exec -- bench/churn_bench.exe

# Tracker daemon throughput (writes BENCH_tracker.json; gates batched
# admission at >= 2x the request rate of one-repair-per-request once
# n >= 10000).
bench-tracker:
	dune exec -- bench/tracker_bench.exe

# Streaming dataplane throughput, CI cell only: the n = 10^4 paper
# overlay simulated by both engines over the same truncated trajectory
# (writes BENCH_stream.json; gates the flat dataplane at >= 20x the
# legacy Massoulie.Sim events/s and <= 16 minor words/event).
bench-stream:
	dune exec -- bench/stream_bench.exe

# Adds the synthetic n = 10^5 (>= 10^6 events/s gate) and n = 10^6
# (peak-RSS report) rows — about a minute.
bench-stream-full:
	dune exec -- bench/stream_bench.exe --full

# Full sweeps (Figure 7 grid, Figure 19 replication) — a few minutes.
bench-full: bench-verify bench-sweep bench-churn bench-stream-full
	dune exec -- bench/main.exe

# Scheme-artifact lifecycle, end to end through the CLI: build Figure 1's
# scheme, reload and re-verify it, require the canonical bytes to survive
# the round-trip unchanged, and the verification report to match.
scheme-roundtrip:
	dune build bin/bmp.exe
	dune exec -- bin/bmp.exe scheme build examples/fig1.instance --rate 4 -o fig1-scheme.json
	dune exec -- bin/bmp.exe scheme check fig1-scheme.json --reserialize fig1-scheme.rt.json
	cmp fig1-scheme.json fig1-scheme.rt.json
	dune exec -- bin/bmp.exe scheme check fig1-scheme.json > fig1-report-a.txt
	dune exec -- bin/bmp.exe scheme check fig1-scheme.rt.json > fig1-report-b.txt
	cmp fig1-report-a.txt fig1-report-b.txt
	rm -f fig1-scheme.json fig1-scheme.rt.json fig1-report-a.txt fig1-report-b.txt

# Churn lifecycle, end to end through the CLI: generate an instance and an
# adversarial trace, replay it under the adaptive policy with the strict
# auditor (every event re-verified, max-flow cross-check included).
churn-smoke:
	dune build bin/bmp.exe
	dune exec -- bin/bmp.exe generate -n 30 --seed 7 -o churn-smoke
	dune exec -- bin/bmp.exe churn gen-trace --events 60 --seed 9 -o churn-smoke.trace.json
	dune exec -- bin/bmp.exe churn run churn-smoke-0001.txt --trace churn-smoke.trace.json --policy adaptive --audit strict
	rm -f churn-smoke-0001.txt churn-smoke.trace.json

# Warm-start flow maintenance, end to end: the differential test suite
# (incremental vs from-scratch Dinic after every event), the CLI knob —
# --engine must be documented and a strict incremental replay must be
# byte-identical to the stateless one modulo the engine banner — and the
# benchmark's >= 5x single-node-event speedup gate.
churn-incremental:
	dune build bin/bmp.exe
	dune exec -- test/test_main.exe test incremental-flow
	dune exec -- bin/bmp.exe churn run --help=plain | grep -q -- --engine
	dune exec -- bin/bmp.exe generate -n 30 --seed 7 -o churn-incr
	dune exec -- bin/bmp.exe churn gen-trace --events 60 --seed 9 -o churn-incr.trace.json
	dune exec -- bin/bmp.exe churn run churn-incr-0001.txt --trace churn-incr.trace.json --audit strict --engine full | grep -v engine > churn-incr-full.txt
	dune exec -- bin/bmp.exe churn run churn-incr-0001.txt --trace churn-incr.trace.json --audit strict --engine incremental | grep -v engine > churn-incr-warm.txt
	cmp churn-incr-full.txt churn-incr-warm.txt
	rm -f churn-incr-0001.txt churn-incr.trace.json churn-incr-full.txt churn-incr-warm.txt
	dune exec -- bench/churn_bench.exe

# Delta-scoped audit fast path, end to end through the real binary: a
# certificate-audited replay must be byte-identical to the strict one —
# timeline, summary (modulo the lines naming the knobs) and the final
# scheme artifact — under both engines, with every event accepted.
churn-fastpath:
	dune build bin/bmp.exe
	dune exec -- bin/bmp.exe churn run --help=plain | grep -q -- certificate
	dune exec -- bin/bmp.exe generate -n 30 --seed 7 -o churn-fast
	dune exec -- bin/bmp.exe churn gen-trace --events 60 --seed 9 -o churn-fast.trace.json
	dune exec -- bin/bmp.exe churn run churn-fast-0001.txt --trace churn-fast.trace.json --timeline --audit strict --engine incremental --final-scheme churn-fast-strict.scheme.json | grep -v -e "^audit" -e "^engine" -e "^wrote" > churn-fast-strict.txt
	dune exec -- bin/bmp.exe churn run churn-fast-0001.txt --trace churn-fast.trace.json --timeline --audit certificate:16 --engine incremental --final-scheme churn-fast-cert.scheme.json | grep -v -e "^audit" -e "^engine" -e "^wrote" > churn-fast-cert.txt
	cmp churn-fast-strict.txt churn-fast-cert.txt
	cmp churn-fast-strict.scheme.json churn-fast-cert.scheme.json
	dune exec -- bin/bmp.exe churn run churn-fast-0001.txt --trace churn-fast.trace.json --timeline --audit certificate:16 --engine full --final-scheme churn-fast-cert-full.scheme.json | grep -v -e "^audit" -e "^engine" -e "^wrote" > churn-fast-cert-full.txt
	cmp churn-fast-strict.txt churn-fast-cert-full.txt
	cmp churn-fast-strict.scheme.json churn-fast-cert-full.scheme.json
	rm -f churn-fast-0001.txt churn-fast.trace.json churn-fast-strict.txt churn-fast-cert.txt churn-fast-cert-full.txt churn-fast-strict.scheme.json churn-fast-cert.scheme.json churn-fast-cert-full.scheme.json

# Tracker daemon, end to end through the real binary: replay the golden
# NDJSON session (events, queries, a malformed line, shutdown) twice in
# deterministic mode and require byte-identical responses that match the
# committed golden; then replay the committed trace offline with
# `churn run` and require its final scheme to be byte-identical to the
# daemon's state snapshot — the served stream IS an Engine.run replay.
tracker-smoke:
	dune build bin/bmp.exe
	dune exec -- bin/bmp.exe generate -n 20 --seed 5 -o tracker-smoke
	dune exec -- bin/bmp.exe tracker serve tracker-smoke-0001.txt --deterministic --batch 1 \
	  --trace-out tracker-smoke.trace.json --state-out tracker-smoke.state.json \
	  < test/golden/tracker_session.ndjson > tracker-smoke-a.ndjson
	dune exec -- bin/bmp.exe tracker serve tracker-smoke-0001.txt --deterministic --batch 1 \
	  < test/golden/tracker_session.ndjson > tracker-smoke-b.ndjson
	cmp tracker-smoke-a.ndjson tracker-smoke-b.ndjson
	cmp tracker-smoke-a.ndjson test/golden/tracker_responses.ndjson
	dune exec -- bin/bmp.exe churn run tracker-smoke-0001.txt --trace tracker-smoke.trace.json \
	  --final-scheme tracker-smoke.replay.json > /dev/null
	cmp tracker-smoke.state.json tracker-smoke.replay.json
	rm -f tracker-smoke-0001.txt tracker-smoke.trace.json tracker-smoke.state.json \
	  tracker-smoke-a.ndjson tracker-smoke-b.ndjson tracker-smoke.replay.json

# Streaming dataplane, end to end through the real binary: simulate a
# small generated overlay in streaming mode and require the metrics
# JSON to be byte-identical to the committed golden — the canonical
# format (17-significant-digit floats) makes the whole pipeline
# (generator -> solver -> snapshot -> dataplane -> metrics) replayable.
stream-smoke:
	dune build bin/bmp.exe
	dune exec -- bin/bmp.exe generate -n 20 --seed 5 -o stream-smoke
	dune exec -- bin/bmp.exe stream run stream-smoke-0001.txt --chunks 150 \
	  --streaming --metrics-out stream-smoke.metrics.json
	cmp stream-smoke.metrics.json test/golden/stream_metrics.json
	rm -f stream-smoke-0001.txt stream-smoke.metrics.json

clean:
	dune clean
