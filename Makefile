.PHONY: all build test bench bench-verify bench-full clean

all:
	dune build @runtest @all

build:
	dune build

test:
	dune build @runtest

# Perf snapshot of the batch verification engine (writes BENCH_verify.json
# in the repository root) followed by the trimmed paper-reproduction run.
bench: bench-verify
	dune exec -- bench/main.exe --fast

bench-verify:
	dune exec -- bench/verify_bench.exe

# Full sweeps (Figure 7 grid, Figure 19 replication) — a few minutes.
bench-full: bench-verify
	dune exec -- bench/main.exe

clean:
	dune clean
