test/test_ratio.ml: Alcotest Broadcast Experiments Float Helpers Instance List Platform QCheck QCheck_alcotest Rational
