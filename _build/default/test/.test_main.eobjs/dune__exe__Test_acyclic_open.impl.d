test/test_acyclic_open.ml: Alcotest Broadcast Flowgraph Helpers Instance Platform QCheck QCheck_alcotest
