test/test_flowgraph.ml: Alcotest Array Broadcast Float Flowgraph List Platform Prng
