test/helpers.ml: Alcotest Broadcast Float Format Instance Platform QCheck
