test/test_instance.ml: Alcotest Array Broadcast Float Generator Instance List Plab Platform Prng
