test/test_massoulie.ml: Alcotest Broadcast Float Flowgraph Helpers List Massoulie Platform QCheck QCheck_alcotest
