test/test_cyclic_open.ml: Alcotest Array Broadcast Flowgraph Helpers Instance Platform QCheck QCheck_alcotest
