test/test_bounds.ml: Alcotest Broadcast Float Instance Platform
