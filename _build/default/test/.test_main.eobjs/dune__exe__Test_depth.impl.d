test/test_depth.ml: Alcotest Broadcast Flowgraph Helpers Instance Platform QCheck QCheck_alcotest
