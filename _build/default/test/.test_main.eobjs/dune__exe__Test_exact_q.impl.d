test/test_exact_q.ml: Alcotest Array Broadcast Float Gen Instance List Platform QCheck QCheck_alcotest Rational
