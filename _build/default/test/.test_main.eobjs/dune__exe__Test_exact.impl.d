test/test_exact.ml: Alcotest Array Broadcast Helpers Instance Platform QCheck QCheck_alcotest
