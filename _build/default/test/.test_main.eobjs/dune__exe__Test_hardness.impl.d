test/test_hardness.ml: Alcotest Array Broadcast Experiments Flowgraph Fun Helpers Instance Int64 List Platform QCheck QCheck_alcotest
