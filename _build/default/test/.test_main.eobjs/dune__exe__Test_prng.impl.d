test/test_prng.ml: Alcotest Array Float List Printf Prng
