test/test_repair.ml: Alcotest Array Broadcast Flowgraph Helpers Instance List Platform QCheck QCheck_alcotest
