test/test_integration.ml: Alcotest Array Broadcast Float Flowgraph Generator Helpers Instance Lastmile List Massoulie Platform Prng
