test/test_word.ml: Alcotest Array Broadcast Format Helpers Instance List Platform Printf QCheck QCheck_alcotest
