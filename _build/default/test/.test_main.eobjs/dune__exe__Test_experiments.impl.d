test/test_experiments.ml: Alcotest Broadcast Experiments Float Format Helpers List Prng String
