test/test_export.ml: Alcotest Broadcast Flowgraph List Platform Printf String
