test/test_greedy.ml: Alcotest Broadcast Helpers Instance List Platform QCheck QCheck_alcotest
