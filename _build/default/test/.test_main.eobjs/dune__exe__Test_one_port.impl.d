test/test_one_port.ml: Alcotest Array Experiments Massoulie Prng
