test/test_low_degree.ml: Alcotest Array Broadcast Flowgraph Helpers Instance List Platform QCheck QCheck_alcotest
