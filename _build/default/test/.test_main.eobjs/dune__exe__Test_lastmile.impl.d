test/test_lastmile.ml: Alcotest Array Float Helpers Int64 Lastmile Platform Prng QCheck QCheck_alcotest
