test/test_rational.ml: Alcotest Float QCheck QCheck_alcotest Rational
