test/test_verify_metrics.ml: Alcotest Array Broadcast Flowgraph Helpers Instance Platform
