test/test_edge_cases.ml: Alcotest Array Broadcast Flowgraph Generator Helpers Instance Platform Prng
