(* Tests for the one-port baseline simulator and the model comparison. *)

module OP = Massoulie.One_port

let simple_platform n =
  let bout = Array.make (n + 1) 10. in
  let bin = Array.make (n + 1) 20. in
  let guarded = Array.make (n + 1) false in
  (bout, bin, guarded)

let test_delivers () =
  let bout, bin, guarded = simple_platform 5 in
  let r = OP.simulate ~bout ~bin ~guarded () in
  Alcotest.(check bool) "delivered" true r.OP.delivered_all;
  Alcotest.(check bool) "rate positive" true (r.OP.achieved_rate > 0.);
  Alcotest.(check bool) "transfers at least K * n" true
    (r.OP.transfers >= OP.default_config.OP.chunks * 5)

let test_serialization_penalty () =
  (* One fast source, slow receivers with moderate downlinks: the source
     can only serve one at a time, so per-node rate collapses (the paper's
     Section II-A complaint). *)
  let n = 10 in
  let bout = Array.make (n + 1) 1. in
  bout.(0) <- 1000.;
  let bin = Array.make (n + 1) 10. in
  let guarded = Array.make (n + 1) false in
  let r = OP.simulate ~bout ~bin ~guarded () in
  Alcotest.(check bool) "delivered" true r.OP.delivered_all;
  (* The source pumps at most min(1000, 10) = 10 serially; peers add ~1
     each; no node can receive faster than its share. *)
  Alcotest.(check bool) "rate far below downlink cap" true
    (r.OP.achieved_rate < 5.)

let test_respects_firewall () =
  (* Two guarded nodes and an open source: all traffic to guarded nodes
     must originate at open nodes — with only the source open, the whole
     broadcast serializes through it. *)
  let bout = [| 10.; 10.; 10. |] in
  let bin = [| 20.; 20.; 20. |] in
  let guarded = [| false; true; true |] in
  let r = OP.simulate ~bout ~bin ~guarded () in
  Alcotest.(check bool) "delivered" true r.OP.delivered_all;
  (* The source alone supplies 2 * K chunks at rate 10, one at a time:
     completion >= 2K/10. *)
  let k = float_of_int OP.default_config.OP.chunks in
  Alcotest.(check bool) "serialized through the source" true
    (r.OP.completion_time >= 2. *. k /. 10. -. 1e-6)

let test_guarded_source_rejected () =
  let bout, bin, _ = simple_platform 2 in
  try
    ignore (OP.simulate ~bout ~bin ~guarded:[| true; false; false |] ());
    Alcotest.fail "guarded source accepted"
  with Invalid_argument _ -> ()

let test_size_mismatch () =
  try
    ignore (OP.simulate ~bout:[| 1.; 1. |] ~bin:[| 1. |] ~guarded:[| false; false |] ());
    Alcotest.fail "size mismatch accepted"
  with Invalid_argument _ -> ()

let test_determinism () =
  let bout, bin, guarded = simple_platform 4 in
  let a = OP.simulate ~bout ~bin ~guarded () in
  let b = OP.simulate ~bout ~bin ~guarded () in
  Alcotest.(check (float 0.)) "deterministic" a.OP.completion_time b.OP.completion_time

let test_comparison_rows () =
  let r =
    Experiments.One_port_comparison.compute ~nodes:10 ~chunks:60
      ~scenario:"test" ~dist:Prng.Dist.unif100 ()
  in
  Alcotest.(check bool) "both rates positive" true
    (r.Experiments.One_port_comparison.one_port_rate > 0.
    && r.Experiments.One_port_comparison.multi_port_rate > 0.)

let test_comparison_server_dsl_advantage () =
  let r =
    Experiments.One_port_comparison.compute ~nodes:16 ~chunks:80
      ~source_bout:1000. ~scenario:"server+DSL"
      ~dist:(Prng.Dist.Uniform { lo = 1.5; hi = 2.5 })
      ()
  in
  Alcotest.(check bool) "multi-port wins by > 2x" true
    (r.Experiments.One_port_comparison.advantage > 2.)

let suites =
  [
    ( "one_port",
      [
        Alcotest.test_case "delivers" `Quick test_delivers;
        Alcotest.test_case "serialization penalty" `Quick test_serialization_penalty;
        Alcotest.test_case "firewall respected" `Quick test_respects_firewall;
        Alcotest.test_case "guarded source rejected" `Quick test_guarded_source_rejected;
        Alcotest.test_case "size mismatch" `Quick test_size_mismatch;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "E16 comparison row" `Quick test_comparison_rows;
        Alcotest.test_case "E16 server+DSL advantage" `Quick test_comparison_server_dsl_advantage;
      ] );
  ]
