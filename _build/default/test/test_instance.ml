(* Tests for the platform model: instances, normalization, serialization,
   the synthetic PlanetLab pool and the random-instance generator. *)

open Platform

let close ?(tol = 1e-9) what a b =
  if Float.abs (a -. b) > tol *. Float.max 1. (Float.abs b) then
    Alcotest.failf "%s: %g vs %g" what a b

let test_create_validation () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Instance.create: bandwidth length must be 1 + n + m")
    (fun () -> ignore (Instance.create ~bandwidth:[| 1.; 2. |] ~n:2 ~m:0 ()));
  Alcotest.check_raises "negative bandwidth"
    (Invalid_argument "Instance.create: bandwidths must be non-negative")
    (fun () -> ignore (Instance.create ~bandwidth:[| 1.; -2. |] ~n:1 ~m:0 ()));
  Alcotest.check_raises "bin length"
    (Invalid_argument "Instance.create: bin length must be 1 + n + m")
    (fun () ->
      ignore (Instance.create ~bin:[| 1. |] ~bandwidth:[| 1.; 2. |] ~n:1 ~m:0 ()))

let test_classes () =
  let t = Instance.fig1 in
  Alcotest.(check bool) "source open" true (Instance.is_open t 0);
  Alcotest.(check bool) "C2 open" true (Instance.is_open t 2);
  Alcotest.(check bool) "C3 guarded" true (Instance.is_guarded t 3);
  Alcotest.(check bool) "C5 guarded" true (Instance.is_guarded t 5);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Instance.node_class: out of range") (fun () ->
      ignore (Instance.node_class t 6))

let test_sums () =
  let t = Instance.fig1 in
  close "O" (Instance.open_sum t) 10.;
  close "G" (Instance.guarded_sum t) 6.;
  close "total" (Instance.total_sum t) 22.;
  Alcotest.(check int) "size" 6 (Instance.size t)

let test_sorted () =
  Alcotest.(check bool) "fig1 sorted" true (Instance.sorted Instance.fig1);
  let t = Instance.create ~bandwidth:[| 1.; 2.; 5.; 1. |] ~n:2 ~m:1 () in
  Alcotest.(check bool) "unsorted opens" false (Instance.sorted t)

let test_normalize () =
  let t =
    Instance.create
      ~bin:[| 10.; 1.; 2.; 3.; 4.; 5. |]
      ~bandwidth:[| 6.; 1.; 5.; 1.; 4.; 1. |]
      ~n:2 ~m:3 ()
  in
  let t', perm = Instance.normalize t in
  Alcotest.(check bool) "sorted after" true (Instance.sorted t');
  (* Open nodes (1, 5) -> (5, 1); guarded (1, 4, 1) -> (4, 1, 1). *)
  Alcotest.(check (array (float 0.)))
    "bandwidths"
    [| 6.; 5.; 1.; 4.; 1.; 1. |]
    t'.Instance.bandwidth;
  (* perm maps new -> old; check bandwidths and caps follow it. *)
  Array.iteri
    (fun new_i old_i ->
      close "perm bandwidth" t'.Instance.bandwidth.(new_i) t.Instance.bandwidth.(old_i);
      match (t'.Instance.bin, t.Instance.bin) with
      | Some b', Some b -> close "perm bin" b'.(new_i) b.(old_i)
      | _ -> Alcotest.fail "bin lost by normalize")
    perm;
  (* Stability: the two equal-bandwidth guarded nodes keep their order. *)
  Alcotest.(check (array int)) "perm" [| 0; 2; 1; 4; 3; 5 |] perm

let test_serialization_roundtrip () =
  let t = Instance.fig1 in
  match Instance.of_string (Instance.to_string t) with
  | Ok t' -> Alcotest.(check bool) "roundtrip" true (Instance.equal t t')
  | Error e -> Alcotest.failf "parse error: %s" e

let test_parse_flexible () =
  let text = "# a comment\nopen 5\nsource 6 # trailing\n\nguarded 1.5\nopen 5\n" in
  match Instance.of_string text with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok t ->
    Alcotest.(check int) "n" 2 t.Instance.n;
    Alcotest.(check int) "m" 1 t.Instance.m;
    close "b0" t.Instance.bandwidth.(0) 6.;
    close "guarded" t.Instance.bandwidth.(3) 1.5

let test_parse_errors () =
  (match Instance.of_string "open 5\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing source accepted");
  (match Instance.of_string "source 1\nsource 2\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate source accepted");
  (match Instance.of_string "source abc\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad number accepted");
  match Instance.of_string "source 1\nweird 2\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown kind accepted"

let test_tight_homogeneous () =
  List.iter
    (fun (n, m, delta) ->
      let t = Instance.tight_homogeneous ~n ~m ~delta in
      (* Tightness: b0 = (b0 + O + G) / (n + m). *)
      close "tight" (Instance.total_sum t) (float_of_int (n + m));
      close "b0" t.Instance.bandwidth.(0) 1.;
      (* Feasibility of guarded demand: b0 + O >= m * T = m. *)
      Alcotest.(check bool) "guarded demand" true
        (1. +. Instance.open_sum t >= float_of_int m -. 1e-9))
    [ (1, 1, 0.); (5, 3, 2.); (10, 10, 10.); (100, 42, 0.) ]

let test_homogeneous () =
  let t = Instance.homogeneous ~n:3 ~m:2 ~b0:1. ~bopen:2. ~bguarded:0.5 in
  close "O" (Instance.open_sum t) 6.;
  close "G" (Instance.guarded_sum t) 1.

let test_plab_pool () =
  Alcotest.(check int) "pool size" 500 (Array.length Plab.pool);
  let sorted = ref true in
  for i = 0 to Array.length Plab.pool - 2 do
    if Plab.pool.(i) > Plab.pool.(i + 1) then sorted := false
  done;
  Alcotest.(check bool) "sorted" true !sorted;
  Array.iter
    (fun v ->
      Alcotest.(check bool) "plausible range" true (v >= 0.256 && v <= 1000.))
    Plab.pool;
  (* Heterogeneity: at least two orders of magnitude. *)
  Alcotest.(check bool) "heterogeneous" true
    (Plab.pool.(499) /. Plab.pool.(0) > 100.)

let test_generator_fixed_point () =
  (* The defining property of the average-case protocol: the source rate
     equals the optimal cyclic throughput. *)
  let rng = Prng.Splitmix.create 33L in
  for _ = 1 to 50 do
    let spec =
      { Generator.total = 12; p_open = 0.6; dist = Prng.Dist.unif100 }
    in
    let t = Generator.generate spec rng in
    Alcotest.(check bool) "sorted" true (Instance.sorted t);
    close ~tol:1e-9 "source = T*" t.Instance.bandwidth.(0)
      (Broadcast.Bounds.cyclic_upper t)
  done

let test_generator_classes () =
  let rng = Prng.Splitmix.create 34L in
  let all_open =
    Generator.generate { Generator.total = 10; p_open = 1.; dist = Prng.Dist.unif100 } rng
  in
  Alcotest.(check int) "p=1 -> all open" 0 all_open.Instance.m;
  let all_guarded =
    Generator.generate { Generator.total = 10; p_open = 0.; dist = Prng.Dist.unif100 } rng
  in
  Alcotest.(check int) "p=0 -> all guarded" 0 all_guarded.Instance.n

let test_generator_determinism () =
  let spec = { Generator.total = 15; p_open = 0.5; dist = Prng.Dist.ln1 } in
  let a = Generator.generate spec (Prng.Splitmix.create 77L) in
  let b = Generator.generate spec (Prng.Splitmix.create 77L) in
  Alcotest.(check bool) "same seed same instance" true (Instance.equal a b)

let test_generate_many () =
  let spec = { Generator.total = 5; p_open = 0.5; dist = Prng.Dist.unif100 } in
  let l = Generator.generate_many spec (Prng.Splitmix.create 1L) 7 in
  Alcotest.(check int) "count" 7 (List.length l)

let suites =
  [
    ( "instance",
      [
        Alcotest.test_case "create validation" `Quick test_create_validation;
        Alcotest.test_case "node classes" `Quick test_classes;
        Alcotest.test_case "bandwidth sums" `Quick test_sums;
        Alcotest.test_case "sortedness" `Quick test_sorted;
        Alcotest.test_case "normalize" `Quick test_normalize;
        Alcotest.test_case "serialization roundtrip" `Quick test_serialization_roundtrip;
        Alcotest.test_case "flexible parsing" `Quick test_parse_flexible;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "tight homogeneous invariants" `Quick test_tight_homogeneous;
        Alcotest.test_case "homogeneous" `Quick test_homogeneous;
      ] );
    ( "plab+generator",
      [
        Alcotest.test_case "plab pool shape" `Quick test_plab_pool;
        Alcotest.test_case "source fixed point" `Quick test_generator_fixed_point;
        Alcotest.test_case "class probabilities" `Quick test_generator_classes;
        Alcotest.test_case "determinism" `Quick test_generator_determinism;
        Alcotest.test_case "generate_many" `Quick test_generate_many;
      ] );
  ]
