(* Tests for the DOT/JSON overlay exporters. *)

module G = Flowgraph.Graph

let sample () =
  let g = G.create 3 in
  G.add_edge g ~src:0 ~dst:1 2.5;
  G.add_edge g ~src:1 ~dst:2 1.25;
  g

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_dot () =
  let dot =
    Flowgraph.Export.to_dot
      ~node_class:(fun v -> if v = 0 then Some "source" else Some "open")
      (sample ())
  in
  Alcotest.(check bool) "digraph header" true (contains dot "digraph \"overlay\"");
  Alcotest.(check bool) "edge 0->1" true (contains dot "n0 -> n1 [label=\"2.5\"]");
  Alcotest.(check bool) "edge 1->2" true (contains dot "n1 -> n2 [label=\"1.25\"]");
  Alcotest.(check bool) "source styled" true (contains dot "doublecircle");
  Alcotest.(check bool) "closed" true (contains dot "}\n")

let test_dot_custom_labels () =
  let dot =
    Flowgraph.Export.to_dot ~name:"g2" ~node_label:(Printf.sprintf "peer-%d") (sample ())
  in
  Alcotest.(check bool) "custom name" true (contains dot "digraph \"g2\"");
  Alcotest.(check bool) "custom label" true (contains dot "label=\"peer-2\"")

let test_json () =
  let json = Flowgraph.Export.to_json (sample ()) in
  Alcotest.(check string) "exact json"
    "{\"nodes\": 3, \"edges\": [{\"src\": 0, \"dst\": 1, \"rate\": 2.5}, \
     {\"src\": 1, \"dst\": 2, \"rate\": 1.25}]}"
    json

let test_json_empty () =
  Alcotest.(check string) "empty graph" "{\"nodes\": 2, \"edges\": []}"
    (Flowgraph.Export.to_json (G.create 2))

let test_schedule_json () =
  let scheme = Broadcast.Acyclic_open.build
      (Platform.Instance.create ~bandwidth:[| 6.; 5.; 4.; 3. |] ~n:3 ~m:0 ())
  in
  let trees = Flowgraph.Arborescence.decompose scheme ~root:0 in
  let json = Flowgraph.Export.schedule_to_json trees in
  Alcotest.(check bool) "has trees" true (contains json "{\"trees\": [{\"rate\":");
  Alcotest.(check bool) "root parent -1" true (contains json "[-1");
  (* One 'parent' array per tree. *)
  let count_occurrences hay needle =
    let rec go i acc =
      if i + String.length needle > String.length hay then acc
      else if String.sub hay i (String.length needle) = needle then
        go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "parents arrays" (List.length trees)
    (count_occurrences json "\"parent\"")

let suites =
  [
    ( "export",
      [
        Alcotest.test_case "dot rendering" `Quick test_dot;
        Alcotest.test_case "dot custom labels" `Quick test_dot_custom_labels;
        Alcotest.test_case "json rendering" `Quick test_json;
        Alcotest.test_case "json empty" `Quick test_json_empty;
        Alcotest.test_case "schedule json" `Quick test_schedule_json;
      ] );
  ]
