(* Tests for Algorithm 2 (GreedyTest) and the dichotomic optimal-acyclic
   search of Theorem 4.1. *)

open Platform
module W = Broadcast.Word

let test_table1_trace () =
  (* Letters and accounting must match the paper's Table I exactly. *)
  let word, trace = Broadcast.Greedy.test_trace Instance.fig1 ~rate:4. in
  (match word with
  | Some w -> Alcotest.(check string) "word" "gogog" (W.to_string w)
  | None -> Alcotest.fail "T = 4 infeasible");
  let expected =
    [
      (Instance.Guarded, 2., 4., 0.);
      (Instance.Open, 7., 0., 0.);
      (Instance.Guarded, 3., 1., 0.);
      (Instance.Open, 5., 0., 3.);
      (Instance.Guarded, 1., 1., 3.);
    ]
  in
  Alcotest.(check int) "steps" 5 (List.length trace);
  List.iter2
    (fun d (letter, o, g, w) ->
      Alcotest.(check bool) "letter" true (d.Broadcast.Greedy.letter = letter);
      let s = d.Broadcast.Greedy.state in
      Helpers.close "O" s.W.avail_open o;
      Helpers.close "G" s.W.avail_guarded g;
      Helpers.close "W" s.W.waste w)
    trace expected

let test_failure_trace () =
  (* Far above the optimum the algorithm must fail (and report a partial
     trace). *)
  let word, _trace = Broadcast.Greedy.test_trace Instance.fig1 ~rate:5. in
  Alcotest.(check bool) "T = 5 infeasible" true (word = None)

let test_optimal_fig1 () =
  let t, w = Broadcast.Greedy.optimal_acyclic Instance.fig1 in
  Helpers.close ~tol:1e-9 "T*ac = 4" t 4.;
  Alcotest.(check bool) "witness word valid" true
    (W.feasible Instance.fig1 ~rate:(t *. (1. -. 1e-9)) w)

let test_boundary () =
  let inst = Instance.fig1 in
  Alcotest.(check bool) "just below optimum" true
    (Broadcast.Greedy.test inst ~rate:3.999999 <> None);
  Alcotest.(check bool) "just above optimum" true
    (Broadcast.Greedy.test inst ~rate:4.001 = None)

let test_open_only_matches_closed_form () =
  let inst = Instance.create ~bandwidth:[| 6.; 5.; 4.; 3. |] ~n:3 ~m:0 () in
  let t, w = Broadcast.Greedy.optimal_acyclic inst in
  Helpers.close ~tol:1e-9 "matches Section III-B formula" t
    (Broadcast.Bounds.acyclic_open_optimal inst);
  Alcotest.(check string) "word is all opens" "ooo" (W.to_string w)

let test_guards () =
  let unsorted = Instance.create ~bandwidth:[| 6.; 3.; 5. |] ~n:2 ~m:0 () in
  (try
     ignore (Broadcast.Greedy.optimal_acyclic unsorted);
     Alcotest.fail "unsorted accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Broadcast.Greedy.test Instance.fig1 ~rate:0.);
    Alcotest.fail "zero rate accepted"
  with Invalid_argument _ -> ()

(* The central correctness property (Lemma 4.5): the greedy feasibility
   test finds the same optimum as exhaustive enumeration of all words. *)
let prop_greedy_is_exact =
  QCheck.Test.make ~name:"greedy optimum = exhaustive optimum" ~count:80
    (Helpers.instance_arb ~max_open:5 ~max_guarded:5) (fun inst ->
      let t_greedy, _ = Broadcast.Greedy.optimal_acyclic inst in
      let t_exact, _ = Broadcast.Exact.optimal_acyclic_words inst in
      Helpers.close ~tol:1e-6 "greedy vs exact" t_greedy t_exact;
      true)

(* The greedy witness word must itself achieve the claimed throughput. *)
let prop_witness_achieves =
  QCheck.Test.make ~name:"witness word achieves T*ac" ~count:80
    (Helpers.instance_arb ~max_open:10 ~max_guarded:10) (fun inst ->
      let t, w = Broadcast.Greedy.optimal_acyclic inst in
      QCheck.assume (t > 1e-6);
      let tw = W.optimal_throughput_closed_form inst w in
      Helpers.close ~tol:1e-6 "witness throughput" tw t;
      true)

(* T*ac never exceeds the cyclic closed form (Lemma 5.1). *)
let prop_below_cyclic =
  QCheck.Test.make ~name:"T*ac <= T* closed form" ~count:100
    (Helpers.instance_arb ~max_open:12 ~max_guarded:12) (fun inst ->
      let t, _ = Broadcast.Greedy.optimal_acyclic inst in
      t <= Broadcast.Bounds.cyclic_upper inst +. 1e-9)

let suites =
  [
    ( "greedy",
      [
        Alcotest.test_case "Table I trace" `Quick test_table1_trace;
        Alcotest.test_case "failure above optimum" `Quick test_failure_trace;
        Alcotest.test_case "fig1 optimum" `Quick test_optimal_fig1;
        Alcotest.test_case "feasibility boundary" `Quick test_boundary;
        Alcotest.test_case "open-only closed form" `Quick test_open_only_matches_closed_form;
        Alcotest.test_case "input guards" `Quick test_guards;
        QCheck_alcotest.to_alcotest prop_greedy_is_exact;
        QCheck_alcotest.to_alcotest prop_witness_achieves;
        QCheck_alcotest.to_alcotest prop_below_cyclic;
      ] );
  ]
