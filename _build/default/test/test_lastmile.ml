(* Tests for the last-mile model estimation (the Bedibe substitute). *)

module M = Lastmile.Model

let truth_small () =
  { M.bout = [| 10.; 4.; 50.; 2. |]; M.bin = [| 100.; 100.; 100.; 100. |] }

let test_predict () =
  let m = truth_small () in
  Helpers.close "min(bout, bin)" (M.predict m 0 1) 10.;
  Helpers.close "capped by bin"
    (M.predict { m with bin = [| 100.; 3.; 100.; 100. |] } 0 1)
    3.;
  Alcotest.check_raises "diagonal" (Invalid_argument "Model.predict: i = j")
    (fun () -> ignore (M.predict m 2 2))

let test_synthetic_matrix () =
  let m = truth_small () in
  let rng = Prng.Splitmix.create 1L in
  let mat = M.synthetic_matrix m rng in
  Alcotest.(check bool) "diagonal nan" true (Float.is_nan mat.(0).(0));
  Helpers.close "entry" mat.(2).(3) 50.;
  let noisy = M.synthetic_matrix ~noise:0.3 m rng in
  Alcotest.(check bool) "noise moves values" true
    (Float.abs (noisy.(2).(3) -. 50.) > 1e-6)

let test_exact_recovery () =
  (* With unbounded downlinks and no noise, the uplinks are identifiable
     and must be recovered exactly. *)
  let m = truth_small () in
  let rng = Prng.Splitmix.create 2L in
  let mat = M.synthetic_matrix m rng in
  let fitted = M.fit mat in
  Array.iteri
    (fun i b -> Helpers.close ~tol:1e-9 "bout recovered" fitted.M.bout.(i) b)
    m.M.bout;
  Helpers.close ~tol:1e-9 "zero rmse" (M.rmse fitted mat) 0.

let test_recovery_with_binding_bins () =
  (* Downlinks below some uplinks: predictions must still be exact even
     though some capacities are only identifiable up to the min. *)
  let m = { M.bout = [| 10.; 4.; 50. |]; M.bin = [| 5.; 60.; 8. |] } in
  let rng = Prng.Splitmix.create 3L in
  let mat = M.synthetic_matrix m rng in
  let fitted = M.fit mat in
  Alcotest.(check bool) "rmse tiny" true (M.rmse fitted mat < 1e-6)

let test_noise_degrades_gracefully () =
  let rng = Prng.Splitmix.create 4L in
  let bout = Array.init 20 (fun _ -> Prng.Dist.sample Platform.Plab.dist rng) in
  let bin = Array.map (fun b -> 2. *. b) bout in
  let m = { M.bout; bin } in
  let mat = M.synthetic_matrix ~noise:0.1 m rng in
  let fitted = M.fit mat in
  let r = M.rmse fitted mat in
  Alcotest.(check bool) "rmse positive" true (r > 0.);
  (* The fit must beat the trivial zero model by a wide margin. *)
  let zero = { M.bout = Array.make 20 0.; bin = Array.make 20 0. } in
  Alcotest.(check bool) "fit beats zero model" true (r < M.rmse zero mat /. 4.)

let test_missing_entries () =
  let m = truth_small () in
  let rng = Prng.Splitmix.create 5L in
  let mat = M.synthetic_matrix m rng in
  (* Knock out a third of the measurements. *)
  for i = 0 to 3 do
    mat.(i).((i + 1) mod 4) <- nan
  done;
  let fitted = M.fit mat in
  Alcotest.(check bool) "still fits" true (M.rmse fitted mat < 1e-6)

let test_to_instance () =
  let m = { M.bout = [| 10.; 4.; 50.; 2. |]; M.bin = [| 11.; 5.; 51.; 3. |] } in
  let guarded = [| false; true; false; true |] in
  let inst, perm = M.to_instance m ~source:2 ~guarded in
  Alcotest.(check int) "source first" 2 perm.(0);
  Helpers.close "source bandwidth" inst.Platform.Instance.bandwidth.(0) 50.;
  Alcotest.(check int) "one open" 1 inst.Platform.Instance.n;
  Alcotest.(check int) "two guarded" 2 inst.Platform.Instance.m;
  Alcotest.(check bool) "sorted" true (Platform.Instance.sorted inst);
  (* Classes follow the flags through the permutation. *)
  Array.iteri
    (fun new_i old_i ->
      if new_i > 0 then
        Alcotest.(check bool) "class preserved" guarded.(old_i)
          (Platform.Instance.is_guarded inst new_i);
      Helpers.close "bandwidth follows perm"
        inst.Platform.Instance.bandwidth.(new_i) m.M.bout.(old_i);
      match inst.Platform.Instance.bin with
      | Some caps -> Helpers.close "bin follows perm" caps.(new_i) m.M.bin.(old_i)
      | None -> Alcotest.fail "bin caps lost")
    perm

let test_to_instance_validation () =
  let m = truth_small () in
  (try
     ignore (M.to_instance m ~source:0 ~guarded:[| true; false; false; false |]);
     Alcotest.fail "guarded source accepted"
   with Invalid_argument _ -> ());
  try
    ignore (M.to_instance m ~source:9 ~guarded:(Array.make 4 false));
    Alcotest.fail "bad source accepted"
  with Invalid_argument _ -> ()

(* Fitting is idempotent on its own predictions. *)
let prop_fit_fixed_point =
  QCheck.Test.make ~name:"fit is a fixed point on noise-free data" ~count:20
    QCheck.(int_range 3 15)
    (fun k ->
      let rng = Prng.Splitmix.create (Int64.of_int (k * 31)) in
      let bout = Array.init k (fun _ -> 1. +. (99. *. Prng.Splitmix.next_float rng)) in
      let bin = Array.init k (fun _ -> 1. +. (199. *. Prng.Splitmix.next_float rng)) in
      let m = { M.bout; bin } in
      let mat = M.synthetic_matrix m rng in
      let fitted = M.fit mat in
      M.rmse fitted mat < 1e-6)

let suites =
  [
    ( "lastmile",
      [
        Alcotest.test_case "predict" `Quick test_predict;
        Alcotest.test_case "synthetic matrix" `Quick test_synthetic_matrix;
        Alcotest.test_case "exact recovery" `Quick test_exact_recovery;
        Alcotest.test_case "binding downlinks" `Quick test_recovery_with_binding_bins;
        Alcotest.test_case "noise degrades gracefully" `Quick test_noise_degrades_gracefully;
        Alcotest.test_case "missing measurements" `Quick test_missing_entries;
        Alcotest.test_case "to_instance mapping" `Quick test_to_instance;
        Alcotest.test_case "to_instance validation" `Quick test_to_instance_validation;
        QCheck_alcotest.to_alcotest prop_fit_fixed_point;
      ] );
  ]
