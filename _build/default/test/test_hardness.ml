(* Tests for the NP-completeness reduction (Theorem 3.1) and the
   unbounded-degree family (Figure 6). *)

open Platform

let solvable = [| 26; 33; 41; 27; 35; 38; 30; 31; 39 |]
(* No triple sums to 100: {41,41,40,26,26,26} -> 108/107/93/92. *)
let unsolvable = [| 41; 41; 40; 26; 26; 26 |]

let test_three_partition_solvable () =
  match Broadcast.Hardness.three_partition solvable with
  | None -> Alcotest.fail "solvable instance declared unsolvable"
  | Some triples ->
    Alcotest.(check int) "p triples" 3 (List.length triples);
    let target = Array.fold_left ( + ) 0 solvable / 3 in
    let used = Array.make (Array.length solvable) false in
    List.iter
      (fun (x, y, z) ->
        List.iter
          (fun i ->
            if used.(i) then Alcotest.failf "index %d reused" i;
            used.(i) <- true)
          [ x; y; z ];
        Alcotest.(check int) "triple sum" target
          (solvable.(x) + solvable.(y) + solvable.(z)))
      triples;
    Alcotest.(check bool) "all used" true (Array.for_all Fun.id used)

let test_three_partition_unsolvable () =
  Alcotest.(check bool) "unsolvable detected" true
    (Broadcast.Hardness.three_partition unsolvable = None)

let test_three_partition_shape_errors () =
  (try
     ignore (Broadcast.Hardness.three_partition [| 1; 2 |]);
     Alcotest.fail "non-multiple of 3 accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Broadcast.Hardness.three_partition [| 1; 1; 1; 1; 1; 2 |]);
    Alcotest.fail "indivisible sum accepted"
  with Invalid_argument _ -> ()

let test_reduction_structure () =
  let sorted = Array.copy solvable in
  Array.sort (fun a b -> compare b a) sorted;
  let inst, t = Broadcast.Hardness.reduction sorted in
  Helpers.close "target T" t 100.;
  Alcotest.(check int) "all open" 0 inst.Instance.m;
  Alcotest.(check int) "1 + 3p + p nodes" 13 (Instance.size inst);
  Helpers.close "source = 3pT" inst.Instance.bandwidth.(0) 900.;
  Helpers.close "final nodes empty" inst.Instance.bandwidth.(12) 0.;
  Alcotest.(check bool) "sorted" true (Instance.sorted inst);
  (* The gadget is bandwidth-tight: total = (1 + 3p + p - 1) T. *)
  Helpers.close "tight" (Instance.total_sum inst) 1200.

let test_reduction_side_conditions () =
  try
    (* 10 <= T/4: violates T/4 < a_i. *)
    ignore (Broadcast.Hardness.reduction [| 10; 45; 45; 30; 35; 35 |]);
    Alcotest.fail "side conditions not enforced"
  with Invalid_argument _ -> ()

let test_witness_scheme () =
  let sorted = Array.copy solvable in
  Array.sort (fun a b -> compare b a) sorted;
  let inst, t = Broadcast.Hardness.reduction sorted in
  match Broadcast.Hardness.three_partition sorted with
  | None -> Alcotest.fail "gadget unsolvable"
  | Some triples ->
    let scheme = Broadcast.Hardness.scheme_of_partition sorted triples in
    ignore (Helpers.check_scheme inst scheme ~rate:t);
    let d = Broadcast.Metrics.degree_report inst ~t scheme in
    (* The whole point: zero degree excess anywhere. *)
    Alcotest.(check int) "tight degrees" 0 (max 0 d.Broadcast.Metrics.max_excess);
    Alcotest.(check bool) "acyclic" true (Flowgraph.Topo.is_acyclic scheme)

let test_fig6_instance () =
  let inst = Broadcast.Hardness.unbounded_degree_instance ~m:5 in
  Helpers.close "T* = 1" (Broadcast.Bounds.cyclic_upper inst) 1.;
  Alcotest.(check int) "one open node" 1 inst.Instance.n;
  Alcotest.(check int) "m guarded" 5 inst.Instance.m

let test_fig6_scheme () =
  List.iter
    (fun m ->
      let inst = Broadcast.Hardness.unbounded_degree_instance ~m in
      let scheme = Broadcast.Hardness.unbounded_degree_scheme ~m in
      ignore (Helpers.check_scheme inst scheme ~rate:1.);
      Alcotest.(check int) "source degree = m" m (Flowgraph.Graph.out_degree scheme 0);
      Alcotest.(check int) "degree lower bound = 1" 1
        (Broadcast.Bounds.degree_lower_bound inst ~t:1. 0);
      Alcotest.(check bool) "scheme is cyclic" false (Flowgraph.Topo.is_acyclic scheme))
    [ 2; 3; 8; 16 ]

let test_fig6_acyclic_gap () =
  (* The acyclic alternative cannot reach throughput 1 on this family. *)
  let inst = Broadcast.Hardness.unbounded_degree_instance ~m:8 in
  let t_ac, _ = Broadcast.Greedy.optimal_acyclic inst in
  Alcotest.(check bool) "acyclic strictly below 1" true (t_ac < 1. -. 1e-6);
  Alcotest.(check bool) "still above 5/7" true (t_ac >= (5. /. 7.) -. 1e-9)

(* Random YES instances: solver finds a partition, the witness scheme is
   degree-tight (the Figure 8 experiment as a property). *)
let prop_yes_instances =
  QCheck.Test.make ~name:"random YES gadgets verify" ~count:15
    QCheck.(int_range 1 1000)
    (fun seed ->
      let a = Experiments.Fig8_hardness.yes_instance ~p:3 ~seed:(Int64.of_int seed) in
      let r = Experiments.Fig8_hardness.compute a in
      r.Experiments.Fig8_hardness.solvable && r.Experiments.Fig8_hardness.scheme_ok)

let suites =
  [
    ( "hardness",
      [
        Alcotest.test_case "3-partition solvable" `Quick test_three_partition_solvable;
        Alcotest.test_case "3-partition unsolvable" `Quick test_three_partition_unsolvable;
        Alcotest.test_case "shape validation" `Quick test_three_partition_shape_errors;
        Alcotest.test_case "reduction structure" `Quick test_reduction_structure;
        Alcotest.test_case "side conditions" `Quick test_reduction_side_conditions;
        Alcotest.test_case "degree-tight witness" `Quick test_witness_scheme;
        Alcotest.test_case "Figure 6 instance" `Quick test_fig6_instance;
        Alcotest.test_case "Figure 6 optimal scheme" `Quick test_fig6_scheme;
        Alcotest.test_case "Figure 6 acyclic gap" `Quick test_fig6_acyclic_gap;
        QCheck_alcotest.to_alcotest prop_yes_instances;
      ] );
  ]
