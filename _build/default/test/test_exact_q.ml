(* Exact-rational certification of the paper's tight constants. *)

module Q = Rational.Q
open Platform

let q = Alcotest.testable Q.pp Q.equal

let test_fig1_exact () =
  let b0, receivers = Broadcast.Exact_q.of_instance Instance.fig1 in
  Alcotest.check q "b0 = 6" (Q.of_int 6) b0;
  (* T*ac = exactly 4. *)
  let t, _ =
    Broadcast.Exact_q.optimal_acyclic ~b0
      ~opens:[ Q.of_int 5; Q.of_int 5 ]
      ~guardeds:[ Q.of_int 4; Q.one; Q.one ]
  in
  Alcotest.check q "T*ac = 4 exactly" (Q.of_int 4) t;
  ignore receivers

let test_table1_exact () =
  (* Table I's O/G/W values at T = 4 on the gogog order, exactly. *)
  let receivers =
    [
      (Instance.Guarded, Q.of_int 4);
      (Instance.Open, Q.of_int 5);
      (Instance.Guarded, Q.one);
      (Instance.Open, Q.of_int 5);
      (Instance.Guarded, Q.one);
    ]
  in
  match
    Broadcast.Exact_q.accounting ~b0:(Q.of_int 6) ~rate:(Q.of_int 4) receivers
  with
  | None -> Alcotest.fail "gogog infeasible at 4"
  | Some states ->
    let expected =
      [ (2, 4, 0); (7, 0, 0); (3, 1, 0); (5, 0, 3); (1, 1, 3) ]
    in
    List.iter2
      (fun (o, g, w) (eo, eg, ew) ->
        Alcotest.check q "O exact" (Q.of_int eo) o;
        Alcotest.check q "G exact" (Q.of_int eg) g;
        Alcotest.check q "W exact" (Q.of_int ew) w)
      states expected

let test_five_sevenths_exact () =
  (* Theorem 6.2's gadget at eps = 1/14, in exact arithmetic:
     b0 = 1, open 1 + 2/14 = 8/7, guarded 1/2 - 1/14 = 3/7 each. *)
  let b0 = Q.one in
  let opens = [ Q.make 8 7 ] and guardeds = [ Q.make 3 7; Q.make 3 7 ] in
  let t, _ = Broadcast.Exact_q.optimal_acyclic ~b0 ~opens ~guardeds in
  Alcotest.check q "T*ac = 5/7 exactly" (Q.make 5 7) t;
  (* Both orderings meet at 5/7. *)
  let sigma1 =
    Broadcast.Exact_q.sequence_throughput ~b0
      [
        (Instance.Open, Q.make 8 7);
        (Instance.Guarded, Q.make 3 7);
        (Instance.Guarded, Q.make 3 7);
      ]
  in
  let sigma2 =
    Broadcast.Exact_q.sequence_throughput ~b0
      [
        (Instance.Guarded, Q.make 3 7);
        (Instance.Open, Q.make 8 7);
        (Instance.Guarded, Q.make 3 7);
      ]
  in
  Alcotest.check q "sigma1 = 5/7" (Q.make 5 7) sigma1;
  Alcotest.check q "sigma2 = 5/7" (Q.make 5 7) sigma2

let test_feasibility_boundary_exact () =
  let b0 = Q.one in
  let receivers =
    [
      (Instance.Guarded, Q.make 3 7);
      (Instance.Open, Q.make 8 7);
      (Instance.Guarded, Q.make 3 7);
    ]
  in
  Alcotest.(check bool) "feasible exactly at 5/7" true
    (Broadcast.Exact_q.feasible ~b0 ~rate:(Q.make 5 7) receivers);
  Alcotest.(check bool) "infeasible at 5/7 + 1/1000000" false
    (Broadcast.Exact_q.feasible ~b0
       ~rate:(Q.add (Q.make 5 7) (Q.make 1 1_000_000))
       receivers)

let test_sorted_validation () =
  try
    ignore
      (Broadcast.Exact_q.optimal_acyclic ~b0:Q.one ~opens:[ Q.one; Q.of_int 2 ]
         ~guardeds:[]);
    Alcotest.fail "unsorted accepted"
  with Invalid_argument _ -> ()

(* Cross-validation: the exact pipeline agrees with the float pipeline on
   random small rational instances. *)
let prop_exact_matches_float =
  QCheck.Test.make ~name:"exact Q optimum = float optimum" ~count:40
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 4) (int_range 1 64))
        (list_of_size (Gen.int_range 0 4) (int_range 1 64)))
    (fun (opens_i, guardeds_i) ->
      let sort_desc l = List.sort (fun a b -> compare b a) l in
      let opens_i = sort_desc opens_i and guardeds_i = sort_desc guardeds_i in
      let b0_i = 16 in
      (* Exact side: eighths of the integers, to exercise denominators. *)
      let to_q k = Q.make k 8 in
      let t_q, _ =
        Broadcast.Exact_q.optimal_acyclic ~b0:(to_q b0_i)
          ~opens:(List.map to_q opens_i)
          ~guardeds:(List.map to_q guardeds_i)
      in
      (* Float side. *)
      let to_f k = float_of_int k /. 8. in
      let bandwidth =
        Array.of_list
          ((to_f b0_i :: List.map to_f opens_i) @ List.map to_f guardeds_i)
      in
      let inst =
        Instance.create ~bandwidth ~n:(List.length opens_i)
          ~m:(List.length guardeds_i) ()
      in
      let t_f, _ = Broadcast.Exact.optimal_acyclic_words inst in
      Float.abs (Q.to_float t_q -. t_f) <= 1e-9 *. Float.max 1. t_f)

let suites =
  [
    ( "exact_q",
      [
        Alcotest.test_case "fig1 exact optimum" `Quick test_fig1_exact;
        Alcotest.test_case "Table I exact" `Quick test_table1_exact;
        Alcotest.test_case "5/7 exact" `Quick test_five_sevenths_exact;
        Alcotest.test_case "exact feasibility boundary" `Quick test_feasibility_boundary_exact;
        Alcotest.test_case "sorted validation" `Quick test_sorted_validation;
        QCheck_alcotest.to_alcotest prop_exact_matches_float;
      ] );
  ]
