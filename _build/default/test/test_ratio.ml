(* Tests for the acyclic/cyclic comparisons of Section VI: the tight 5/7
   bound, Theorem 6.1's open-only bound, and the Theorem 6.3 family. *)

open Platform
module Q = Rational.Q

let test_five_sevenths_tight () =
  (* At epsilon = 1/14 both orderings achieve exactly 5/7. *)
  let epsilon = 1. /. 14. in
  let inst = Broadcast.Ratio.five_sevenths_instance ~epsilon in
  Helpers.close "cyclic = 1" (Broadcast.Bounds.cyclic_upper inst) 1.;
  Helpers.close "sigma1 = 5/7"
    (Broadcast.Ratio.sigma1_throughput ~epsilon)
    (Q.to_float (Q.make 5 7));
  Helpers.close "sigma2 = 5/7"
    (Broadcast.Ratio.sigma2_throughput ~epsilon)
    (Q.to_float (Q.make 5 7));
  let c = Broadcast.Ratio.compare_instance inst in
  Helpers.close ~tol:1e-9 "T*ac = 5/7" c.Broadcast.Ratio.acyclic (5. /. 7.);
  Helpers.close ~tol:1e-9 "ratio = 5/7" (Broadcast.Ratio.ratio c) (5. /. 7.)

let test_sigma_closed_forms_match_measured () =
  List.iter
    (fun epsilon ->
      let inst = Broadcast.Ratio.five_sevenths_instance ~epsilon in
      Helpers.close ~tol:1e-9 "sigma1 closed vs measured"
        (Broadcast.Exact.order_throughput inst [| 1; 2; 3 |])
        (Broadcast.Ratio.sigma1_throughput ~epsilon);
      Helpers.close ~tol:1e-9 "sigma2 closed vs measured"
        (Broadcast.Exact.order_throughput inst [| 2; 1; 3 |])
        (Broadcast.Ratio.sigma2_throughput ~epsilon))
    [ 0.01; 0.05; 1. /. 14.; 0.1; 0.2 ]

let test_five_sevenths_validation () =
  Alcotest.check_raises "epsilon too large"
    (Invalid_argument "Ratio.five_sevenths_instance: need 0 < epsilon < 1/2")
    (fun () -> ignore (Broadcast.Ratio.five_sevenths_instance ~epsilon:0.6))

let test_sqrt41_family () =
  let inst, alpha = Broadcast.Ratio.sqrt41_instance ~k:1 () in
  Helpers.close ~tol:1e-3 "alpha ~ 0.425" alpha Broadcast.Ratio.sqrt41_alpha;
  Helpers.close "cyclic = 1" (Broadcast.Bounds.cyclic_upper inst) 1.;
  let t_ac, _ = Broadcast.Greedy.optimal_acyclic inst in
  let bound = Broadcast.Ratio.sqrt41_acyclic_upper ~alpha in
  Alcotest.(check bool) "T*ac below paper bound" true (t_ac <= bound +. 1e-6);
  Alcotest.(check bool) "gap does not close" true (t_ac < 0.93);
  Alcotest.(check bool) "but acyclic still above 5/7" true
    (t_ac >= (5. /. 7.) -. 1e-9)

let test_sqrt41_growth () =
  (* The gap persists as k grows (Theorem 6.3's point). *)
  let r1 =
    let inst, _ = Broadcast.Ratio.sqrt41_instance ~k:1 () in
    fst (Broadcast.Greedy.optimal_acyclic inst)
  in
  let r4 =
    let inst, _ = Broadcast.Ratio.sqrt41_instance ~k:4 () in
    fst (Broadcast.Greedy.optimal_acyclic inst)
  in
  Alcotest.(check bool) "still gapped at k = 4" true (r4 < 0.93);
  Alcotest.(check bool) "roughly stable" true (Float.abs (r1 -. r4) < 0.02)

let test_compare_instance_ordering () =
  let c = Broadcast.Ratio.compare_instance Instance.fig1 in
  Alcotest.(check bool) "proof <= omega <= acyclic <= cyclic" true
    (c.Broadcast.Ratio.proof_word <= c.Broadcast.Ratio.omega_best +. 1e-9
    && c.Broadcast.Ratio.omega_best <= c.Broadcast.Ratio.acyclic +. 1e-6
    && c.Broadcast.Ratio.acyclic <= c.Broadcast.Ratio.cyclic +. 1e-9)

(* Theorem 6.2: the ratio never drops below 5/7, on random mixed
   instances. *)
let prop_ratio_above_five_sevenths =
  QCheck.Test.make ~name:"Theorem 6.2: ratio >= 5/7" ~count:120
    (Helpers.instance_arb ~max_open:10 ~max_guarded:10) (fun inst ->
      let c = Broadcast.Ratio.compare_instance inst in
      QCheck.assume (c.Broadcast.Ratio.cyclic > 1e-6);
      Broadcast.Ratio.ratio c >= (5. /. 7.) -. 1e-6)

(* Theorem 6.1: without guarded nodes the ratio is at least 1 - 1/n. *)
let prop_open_only_bound =
  QCheck.Test.make ~name:"Theorem 6.1: open-only ratio >= 1 - 1/n" ~count:120
    (Helpers.open_instance_arb ~max_open:15) (fun inst ->
      let c = Broadcast.Ratio.compare_instance inst in
      QCheck.assume (c.Broadcast.Ratio.cyclic > 1e-6);
      Broadcast.Ratio.ratio c
      >= Broadcast.Ratio.open_only_lower_bound ~n:inst.Instance.n -. 1e-6)

(* omega words are feasible encodings: their throughput is a lower bound
   on the optimum (sanity of the Appendix XII blue curves). *)
let prop_omega_below_optimal =
  QCheck.Test.make ~name:"omega throughput <= T*ac" ~count:100
    (Helpers.instance_arb ~max_open:10 ~max_guarded:10) (fun inst ->
      let c = Broadcast.Ratio.compare_instance inst in
      c.Broadcast.Ratio.omega_best <= c.Broadcast.Ratio.acyclic +. 1e-6)

(* Tight homogeneous worst case over a delta sweep stays above 5/7 too
   (the Figure 7 surface floor). *)
let prop_tight_homogeneous_floor =
  QCheck.Test.make ~name:"Figure 7 surface floor at 5/7" ~count:40
    QCheck.(pair (int_range 1 25) (int_range 1 25))
    (fun (n, m) ->
      let cell = Experiments.Fig7_surface.compute_cell ~n ~m in
      cell.Experiments.Fig7_surface.ratio >= (5. /. 7.) -. 1e-6
      && cell.Experiments.Fig7_surface.ratio <= 1. +. 1e-9)

let suites =
  [
    ( "ratio",
      [
        Alcotest.test_case "5/7 gadget tight" `Quick test_five_sevenths_tight;
        Alcotest.test_case "sigma closed forms" `Quick test_sigma_closed_forms_match_measured;
        Alcotest.test_case "gadget validation" `Quick test_five_sevenths_validation;
        Alcotest.test_case "sqrt41 family" `Quick test_sqrt41_family;
        Alcotest.test_case "sqrt41 growth" `Quick test_sqrt41_growth;
        Alcotest.test_case "comparison ordering" `Quick test_compare_instance_ordering;
        QCheck_alcotest.to_alcotest prop_ratio_above_five_sevenths;
        QCheck_alcotest.to_alcotest prop_open_only_bound;
        QCheck_alcotest.to_alcotest prop_omega_below_optimal;
        QCheck_alcotest.to_alcotest prop_tight_homogeneous_floor;
      ] );
  ]

(* Statement (5) in the proof of Theorem 6.2: on every tight homogeneous
   instance, the best of omega1/omega2 already achieves 5/7 of the cyclic
   optimum. *)
let prop_omega_words_57_on_tight =
  QCheck.Test.make ~name:"omega words reach 5/7 on tight homogeneous" ~count:60
    QCheck.(triple (int_range 1 30) (int_range 1 30) (float_range 0. 1.))
    (fun (n, m, frac) ->
      let delta = frac *. float_of_int n in
      let inst = Instance.tight_homogeneous ~n ~m ~delta in
      let w1 = Broadcast.Word.omega1 ~n ~m and w2 = Broadcast.Word.omega2 ~n ~m in
      let t1 = Broadcast.Word.optimal_throughput_closed_form inst w1 in
      let t2 = Broadcast.Word.optimal_throughput_closed_form inst w2 in
      (* T* = 1 by tightness. *)
      Float.max t1 t2 >= (5. /. 7.) -. 1e-9)

(* Lemma 11.3 (convexity): if a word is valid at throughput T on two
   homogeneous instances, it is valid on any convex combination of them.
   Exercised through the tight family's delta parameter. *)
let prop_delta_convexity =
  QCheck.Test.make ~name:"word validity is convex in delta (Lemma 11.3)" ~count:60
    QCheck.(
      tup5 (int_range 1 12) (int_range 1 12) (float_range 0. 1.)
        (float_range 0. 1.) (float_range 0. 1.))
    (fun (n, m, f1, f2, lambda) ->
      let nf = float_of_int n in
      let d1 = f1 *. nf and d2 = f2 *. nf in
      let dm = (lambda *. d1) +. ((1. -. lambda) *. d2) in
      let inst d = Instance.tight_homogeneous ~n ~m ~delta:d in
      let w = Broadcast.Word.omega2 ~n ~m in
      let rate = 5. /. 7. in
      let valid d = Broadcast.Word.feasible (inst d) ~rate w in
      (* valid at both endpoints -> valid at the midpoint *)
      QCheck.assume (valid d1 && valid d2);
      valid dm)

let convexity_suite =
  [
    QCheck_alcotest.to_alcotest prop_omega_words_57_on_tight;
    QCheck_alcotest.to_alcotest prop_delta_convexity;
  ]

let suites =
  match suites with
  | [ (name, cases) ] -> [ (name, cases @ convexity_suite) ]
  | other -> other
