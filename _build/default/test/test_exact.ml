(* Tests for the exhaustive oracles, including the empirical validation of
   Lemma 4.2 (increasing orders dominate all orders). *)

open Platform

let test_order_throughput_fig1 () =
  (* sigma = 031425 achieves 4 (Figure 5). *)
  Helpers.close "031425" (Broadcast.Exact.order_throughput Instance.fig1 [| 3; 1; 4; 2; 5 |]) 4.;
  (* sigma = 031245 achieves 4 (Figure 2). *)
  Helpers.close "031245" (Broadcast.Exact.order_throughput Instance.fig1 [| 3; 1; 2; 4; 5 |]) 4.

let test_order_validation () =
  (try
     ignore (Broadcast.Exact.order_throughput Instance.fig1 [| 1; 2 |]);
     Alcotest.fail "short order accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Broadcast.Exact.order_throughput Instance.fig1 [| 1; 1; 2; 3; 4 |]);
     Alcotest.fail "duplicate accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Broadcast.Exact.order_throughput Instance.fig1 [| 0; 1; 2; 3; 4 |]);
    Alcotest.fail "source in order accepted"
  with Invalid_argument _ -> ()

let test_words_oracle_fig1 () =
  let t, w = Broadcast.Exact.optimal_acyclic_words Instance.fig1 in
  Helpers.close "fig1 exhaustive" t 4.;
  Alcotest.(check bool) "witness complete" true
    (Broadcast.Word.complete w Instance.fig1)

(* Lemma 4.2: the best over ALL orders equals the best over increasing
   orders (encoded words), on random small instances. *)
let prop_lemma42 =
  QCheck.Test.make ~name:"Lemma 4.2: increasing orders dominate" ~count:30
    (Helpers.instance_arb ~max_open:3 ~max_guarded:3) (fun inst ->
      QCheck.assume (inst.Instance.n + inst.Instance.m <= 6);
      let t_words, _ = Broadcast.Exact.optimal_acyclic_words inst in
      let t_orders, _ = Broadcast.Exact.optimal_acyclic_orders inst in
      Helpers.close ~tol:1e-9 "words vs orders" t_words t_orders;
      true)

let test_orders_size_limit () =
  let big = Instance.create ~bandwidth:(Array.make 11 1.) ~n:10 ~m:0 () in
  try
    ignore (Broadcast.Exact.optimal_acyclic_orders big);
    Alcotest.fail "oversized instance accepted"
  with Invalid_argument _ -> ()

let suites =
  [
    ( "exact",
      [
        Alcotest.test_case "fig1 order throughputs" `Quick test_order_throughput_fig1;
        Alcotest.test_case "order validation" `Quick test_order_validation;
        Alcotest.test_case "fig1 word oracle" `Quick test_words_oracle_fig1;
        Alcotest.test_case "size limit" `Quick test_orders_size_limit;
        QCheck_alcotest.to_alcotest prop_lemma42;
      ] );
  ]
