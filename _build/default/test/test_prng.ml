(* Tests for the PRNG substrate: splitmix64 determinism and the bandwidth
   distributions' moment parameterizations. *)

let close ?(tol = 1e-9) a b =
  Alcotest.(check bool)
    (Printf.sprintf "%g ~ %g" a b)
    true
    (Float.abs (a -. b) <= tol *. Float.max 1. (Float.abs b))

let test_determinism () =
  let a = Prng.Splitmix.create 12345L and b = Prng.Splitmix.create 12345L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.Splitmix.next a) (Prng.Splitmix.next b)
  done

let test_seed_sensitivity () =
  let a = Prng.Splitmix.create 1L and b = Prng.Splitmix.create 2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.Splitmix.next a = Prng.Splitmix.next b then incr same
  done;
  Alcotest.(check int) "different seeds diverge" 0 !same

let test_copy () =
  let a = Prng.Splitmix.create 7L in
  ignore (Prng.Splitmix.next a);
  let b = Prng.Splitmix.copy a in
  let xs = List.init 10 (fun _ -> Prng.Splitmix.next a) in
  let ys = List.init 10 (fun _ -> Prng.Splitmix.next b) in
  Alcotest.(check (list int64)) "copy replays" xs ys

let test_split () =
  let a = Prng.Splitmix.create 7L in
  let b = Prng.Splitmix.split a in
  let xs = List.init 20 (fun _ -> Prng.Splitmix.next a) in
  let ys = List.init 20 (fun _ -> Prng.Splitmix.next b) in
  Alcotest.(check bool) "split independent" false (xs = ys)

let test_float_range () =
  let rng = Prng.Splitmix.create 3L in
  for _ = 1 to 10_000 do
    let x = Prng.Splitmix.next_float rng in
    if x < 0. || x >= 1. then Alcotest.failf "next_float out of range: %g" x
  done

let test_float_mean () =
  let rng = Prng.Splitmix.create 4L in
  let k = 100_000 in
  let acc = ref 0. in
  for _ = 1 to k do
    acc := !acc +. Prng.Splitmix.next_float rng
  done;
  close ~tol:5e-3 (!acc /. float_of_int k) 0.5

let test_below_range () =
  let rng = Prng.Splitmix.create 5L in
  for _ = 1 to 10_000 do
    let x = Prng.Splitmix.next_below rng 17 in
    if x < 0 || x >= 17 then Alcotest.failf "next_below out of range: %d" x
  done

let test_below_uniform () =
  let rng = Prng.Splitmix.create 6L in
  let counts = Array.make 10 0 in
  let k = 100_000 in
  for _ = 1 to k do
    let x = Prng.Splitmix.next_below rng 10 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter
    (fun c ->
      let freq = float_of_int c /. float_of_int k in
      if Float.abs (freq -. 0.1) > 0.01 then
        Alcotest.failf "next_below far from uniform: %g" freq)
    counts

let test_below_invalid () =
  let rng = Prng.Splitmix.create 1L in
  Alcotest.check_raises "zero" (Invalid_argument "Splitmix.next_below: n must be positive")
    (fun () -> ignore (Prng.Splitmix.next_below rng 0))

let test_pareto_params () =
  List.iter
    (fun (mean, std) ->
      let alpha, x_m = Prng.Dist.pareto_params ~mean ~std in
      Alcotest.(check bool) "alpha > 2 (finite variance)" true (alpha > 2.);
      (* First two moments of Pareto(alpha, x_m). *)
      let mu = alpha *. x_m /. (alpha -. 1.) in
      let var = x_m *. x_m *. alpha /. (((alpha -. 1.) ** 2.) *. (alpha -. 2.)) in
      close mu mean;
      close ~tol:1e-6 (sqrt var) std)
    [ (100., 100.); (100., 1000.); (50., 10.) ]

let test_lognormal_params () =
  List.iter
    (fun (mean, std) ->
      let mu, sigma = Prng.Dist.lognormal_params ~mean ~std in
      close (exp (mu +. (sigma *. sigma /. 2.))) mean;
      let var = (exp (sigma *. sigma) -. 1.) *. exp ((2. *. mu) +. (sigma *. sigma)) in
      close ~tol:1e-6 (sqrt var) std)
    [ (100., 100.); (100., 1000.) ]

let test_sample_positive () =
  let rng = Prng.Splitmix.create 8L in
  List.iter
    (fun d ->
      for _ = 1 to 2_000 do
        let x = Prng.Dist.sample d rng in
        if x <= 0. then
          Alcotest.failf "%s produced non-positive %g" (Prng.Dist.name d) x
      done)
    [ Prng.Dist.unif100; Prng.Dist.power1; Prng.Dist.power2; Prng.Dist.ln1; Prng.Dist.ln2 ]

let test_sample_means () =
  let rng = Prng.Splitmix.create 9L in
  (* Loose sample-mean checks; Power2/LN2 have enormous variance, so only
     the well-behaved laws are asserted. *)
  List.iter
    (fun d ->
      let k = 40_000 in
      let xs = Prng.Dist.sample_many d rng k in
      let mu = Array.fold_left ( +. ) 0. xs /. float_of_int k in
      let expected = Prng.Dist.mean d in
      if Float.abs (mu -. expected) > 0.05 *. expected then
        Alcotest.failf "%s sample mean %g far from %g" (Prng.Dist.name d) mu expected)
    [ Prng.Dist.unif100; Prng.Dist.power1; Prng.Dist.ln1 ]

let test_empirical () =
  let pool = [| 1.; 5.; 9. |] in
  let d = Prng.Dist.Empirical pool in
  let rng = Prng.Splitmix.create 10L in
  for _ = 1 to 500 do
    let x = Prng.Dist.sample d rng in
    Alcotest.(check bool) "sample from pool" true (Array.exists (Float.equal x) pool)
  done;
  close (Prng.Dist.mean d) 5.

let test_uniform_bounds () =
  let rng = Prng.Splitmix.create 11L in
  for _ = 1 to 5_000 do
    let x = Prng.Dist.sample Prng.Dist.unif100 rng in
    Alcotest.(check bool) "within [1, 100]" true (x >= 1. && x <= 100.)
  done

let test_pareto_floor () =
  let rng = Prng.Splitmix.create 12L in
  let alpha, x_m = Prng.Dist.pareto_params ~mean:100. ~std:100. in
  ignore alpha;
  for _ = 1 to 5_000 do
    let x = Prng.Dist.sample Prng.Dist.power1 rng in
    Alcotest.(check bool) "above scale x_m" true (x >= x_m -. 1e-9)
  done

let suites =
  [
    ( "prng",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
        Alcotest.test_case "copy replays the stream" `Quick test_copy;
        Alcotest.test_case "split diverges" `Quick test_split;
        Alcotest.test_case "next_float in [0,1)" `Quick test_float_range;
        Alcotest.test_case "next_float mean 1/2" `Quick test_float_mean;
        Alcotest.test_case "next_below in range" `Quick test_below_range;
        Alcotest.test_case "next_below uniform" `Quick test_below_uniform;
        Alcotest.test_case "next_below rejects n <= 0" `Quick test_below_invalid;
        Alcotest.test_case "pareto moment equations" `Quick test_pareto_params;
        Alcotest.test_case "lognormal moment equations" `Quick test_lognormal_params;
        Alcotest.test_case "samples are positive" `Quick test_sample_positive;
        Alcotest.test_case "sample means match" `Quick test_sample_means;
        Alcotest.test_case "empirical sampling" `Quick test_empirical;
        Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
        Alcotest.test_case "pareto scale floor" `Quick test_pareto_floor;
      ] );
  ]
