(* Tests for encoding words: O/G/W accounting, feasibility, closed-form
   throughput, and the canonical omega words. *)

open Platform
module W = Broadcast.Word

let test_string_roundtrip () =
  let w = W.of_string "gogog" in
  Alcotest.(check string) "roundtrip" "gogog" (W.to_string w);
  Alcotest.(check int) "opens" 2 (W.count_open w);
  Alcotest.(check int) "guardeds" 3 (W.count_guarded w);
  Alcotest.check_raises "bad letter" (Invalid_argument "Word.of_string: bad letter 'x'")
    (fun () -> ignore (W.of_string "ox"))

let test_to_order () =
  let w = W.of_string "gogog" in
  Alcotest.(check (array int)) "sigma = 031425" [| 0; 3; 1; 4; 2; 5 |]
    (W.to_order w Instance.fig1);
  let w2 = W.of_string "oggog" in
  Alcotest.(check (array int)) "sigma = 013452... mixed" [| 0; 1; 3; 4; 2; 5 |]
    (W.to_order w2 Instance.fig1)

let table1_expected =
  (* Table I of the paper: (O, G, W) after each letter of gogog at T=4. *)
  [ (2., 4., 0.); (7., 0., 0.); (3., 1., 0.); (5., 0., 3.); (1., 1., 3.) ]

let test_table1_states () =
  let w = W.of_string "gogog" in
  match W.run Instance.fig1 ~rate:4. w with
  | None -> Alcotest.fail "gogog infeasible at 4"
  | Some states ->
    let steps = List.tl states in
    Alcotest.(check int) "five steps" 5 (List.length steps);
    List.iter2
      (fun st (o, g, waste) ->
        Helpers.close "O(pi)" st.W.avail_open o;
        Helpers.close "G(pi)" st.W.avail_guarded g;
        Helpers.close "W(pi)" st.W.waste waste)
      steps table1_expected

let test_initial_state () =
  let st = W.initial_state Instance.fig1 in
  Helpers.close "O(eps) = b0" st.W.avail_open 6.;
  Helpers.close "G(eps) = 0" st.W.avail_guarded 0.;
  Helpers.close "W(eps) = 0" st.W.waste 0.

let test_sum_invariant () =
  (* Lemma 4.4: O(pi) + G(pi) = sum of seen bandwidths - |pi| T. *)
  let inst = Instance.fig1 in
  let w = W.of_string "gogog" in
  match W.run inst ~rate:4. w with
  | None -> Alcotest.fail "infeasible"
  | Some states ->
    List.iteri
      (fun k st ->
        let seen = ref inst.Instance.bandwidth.(0) in
        for i = 1 to st.W.fed_open do
          seen := !seen +. inst.Instance.bandwidth.(i)
        done;
        for j = 1 to st.W.fed_guarded do
          seen := !seen +. inst.Instance.bandwidth.(inst.Instance.n + j)
        done;
        Helpers.close
          (Printf.sprintf "O+G at step %d" k)
          (st.W.avail_open +. st.W.avail_guarded)
          (!seen -. (float_of_int (st.W.fed_open + st.W.fed_guarded) *. 4.)))
      states

let test_infeasible_word () =
  (* ggogo on fig1 requires feeding two guarded nodes from b0 = 6 < 8. *)
  let w = W.of_string "ggoog" in
  Alcotest.(check bool) "ggoog infeasible at 4" false
    (W.feasible Instance.fig1 ~rate:4. w);
  Alcotest.(check bool) "ggoog feasible at 3" true
    (W.feasible Instance.fig1 ~rate:3. w)

let test_omega_structure () =
  Alcotest.(check string) "omega1(2,3)" "ogogg" (W.to_string (W.omega1 ~n:2 ~m:3));
  Alcotest.(check string) "omega2(2,3)" "gogog" (W.to_string (W.omega2 ~n:2 ~m:3));
  Alcotest.(check string) "omega1(3,1)" "ooog"
    (W.to_string (W.omega1 ~n:3 ~m:1));
  Alcotest.(check string) "omega1(0,2)" "gg" (W.to_string (W.omega1 ~n:0 ~m:2));
  Alcotest.(check string) "omega2(2,0)" "oo" (W.to_string (W.omega2 ~n:2 ~m:0));
  (* Counts always match. *)
  for n = 0 to 6 do
    for m = 0 to 6 do
      if n + m > 0 then begin
        let w1 = W.omega1 ~n ~m and w2 = W.omega2 ~n ~m in
        Alcotest.(check int) "w1 opens" n (W.count_open w1);
        Alcotest.(check int) "w1 guardeds" m (W.count_guarded w1);
        Alcotest.(check int) "w2 opens" n (W.count_open w2);
        Alcotest.(check int) "w2 guardeds" m (W.count_guarded w2)
      end
    done
  done

let test_enumerate () =
  let words = W.enumerate ~n:3 ~m:2 in
  Alcotest.(check int) "C(5,2) = 10" 10 (List.length words);
  let strings = List.map W.to_string words in
  Alcotest.(check int) "all distinct" 10
    (List.length (List.sort_uniq compare strings));
  List.iter
    (fun w ->
      Alcotest.(check int) "opens" 3 (W.count_open w);
      Alcotest.(check int) "guardeds" 2 (W.count_guarded w))
    words;
  Alcotest.check_raises "size limit" (Invalid_argument "Word.enumerate: too many words")
    (fun () -> ignore (W.enumerate ~n:30 ~m:30))

let test_optimal_throughput_fig1 () =
  let inst = Instance.fig1 in
  Helpers.close ~tol:1e-9 "gogog -> 4"
    (W.optimal_throughput_closed_form inst (W.of_string "gogog")) 4.;
  Helpers.close ~tol:1e-9 "ogogg -> 4"
    (W.optimal_throughput_closed_form inst (W.of_string "ogogg")) 4.;
  (* The all-opens-first word wastes open bandwidth: strictly worse. *)
  let t = W.optimal_throughput_closed_form inst (W.of_string "ooggg") in
  Alcotest.(check bool) "ooggg worse" true (t < 4.)

(* Property: closed form = dichotomic search on the simulation, for random
   instances and random complete words. *)
let word_and_instance_gen =
  QCheck.Gen.(
    Helpers.instance_gen ~max_open:6 ~max_guarded:6 >>= fun inst ->
    let n = inst.Instance.n and m = inst.Instance.m in
    (* A random shuffle of the letter multiset. *)
    let letters =
      Array.append (Array.make n Instance.Open) (Array.make m Instance.Guarded)
    in
    let shuffle a st =
      let a = Array.copy a in
      for i = Array.length a - 1 downto 1 do
        let j = int_bound i st in
        let tmp = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- tmp
      done;
      a
    in
    (fun st -> (inst, shuffle letters st)))

let prop_closed_form_vs_search =
  QCheck.Test.make ~name:"word closed form = dichotomic search" ~count:150
    (QCheck.make
       ~print:(fun (inst, w) ->
         Format.asprintf "%a %s" Instance.pp inst (W.to_string w))
       word_and_instance_gen)
    (fun (inst, w) ->
      let closed = W.optimal_throughput_closed_form inst w in
      let search = W.optimal_throughput inst w in
      Helpers.close ~tol:1e-6 "closed vs search" search closed;
      true)

(* Property: feasibility is monotone in the rate. *)
let prop_feasible_monotone =
  QCheck.Test.make ~name:"feasibility monotone in rate" ~count:100
    (QCheck.make
       ~print:(fun (inst, w) ->
         Format.asprintf "%a %s" Instance.pp inst (W.to_string w))
       word_and_instance_gen)
    (fun (inst, w) ->
      let t = W.optimal_throughput_closed_form inst w in
      QCheck.assume (t > 1e-6);
      W.feasible inst ~rate:(0.9 *. t) w
      && W.feasible inst ~rate:(0.5 *. t) w
      && not (W.feasible inst ~rate:(1.01 *. t +. 1e-6) w))

let suites =
  [
    ( "word",
      [
        Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
        Alcotest.test_case "to_order" `Quick test_to_order;
        Alcotest.test_case "Table I states" `Quick test_table1_states;
        Alcotest.test_case "initial state" `Quick test_initial_state;
        Alcotest.test_case "Lemma 4.4 sum invariant" `Quick test_sum_invariant;
        Alcotest.test_case "infeasible words" `Quick test_infeasible_word;
        Alcotest.test_case "omega word structure" `Quick test_omega_structure;
        Alcotest.test_case "enumeration" `Quick test_enumerate;
        Alcotest.test_case "fig1 word throughputs" `Quick test_optimal_throughput_fig1;
        QCheck_alcotest.to_alcotest prop_closed_form_vs_search;
        QCheck_alcotest.to_alcotest prop_feasible_monotone;
      ] );
  ]
