examples/planetlab_overlay.mli:
