examples/live_streaming.mli:
