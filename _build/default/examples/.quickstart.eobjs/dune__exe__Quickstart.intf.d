examples/quickstart.mli:
