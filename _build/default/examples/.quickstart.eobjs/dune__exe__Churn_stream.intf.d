examples/churn_stream.mli:
