examples/churn_stream.ml: Array Broadcast Float Platform Printf Prng
