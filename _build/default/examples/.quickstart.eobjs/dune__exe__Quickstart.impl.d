examples/quickstart.ml: Array Broadcast Flowgraph List Platform Printf
