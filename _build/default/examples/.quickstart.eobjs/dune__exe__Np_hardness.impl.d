examples/np_hardness.ml: Array Broadcast List Printf
