examples/planetlab_overlay.ml: Array Broadcast Float Flowgraph Lastmile Platform Printf Prng
