examples/live_streaming.ml: Array Broadcast Float Flowgraph Massoulie Platform Printf Prng
