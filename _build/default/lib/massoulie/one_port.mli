(** Broadcast under the classical one-port model — the baseline the paper
    argues against (Section II-A).

    In the one-port model every node engages in at most one transfer at a
    time, in each direction: while a server pushes a chunk to a slow DSL
    peer it is {e blocked}, even though its uplink could serve dozens of
    peers concurrently — the paper's motivating complaint ("it is
    unreasonable to assume that a 10GB/s server may be kept busy for 10
    seconds while communicating a 10MB data file to a 1MB/s DSL node").

    This simulator runs randomized useful-chunk broadcast directly on the
    platform (no overlay: any open pair and open-guarded pairs may talk,
    guarded-guarded pairs may not), with the pairwise rate
    [min (bout i) (bin j)] and both endpoints exclusively busy for the
    transfer's duration. Comparing its achieved rate with the bounded
    multi-port overlay pipeline on the same platform (experiment E16)
    quantifies how much the multi-port model buys on heterogeneous
    platforms — and how little on homogeneous ones. *)

type config = {
  chunks : int;
  chunk_size : float;
  seed : int64;
  max_time : float;
}

val default_config : config
(** 100 chunks of size 1, seed 42, horizon [1e8]. *)

type result = {
  delivered_all : bool;
  completion_time : float;
  achieved_rate : float;
      (** [chunks * chunk_size / completion_time]; [0.] if undelivered *)
  transfers : int;
}

val simulate :
  ?config:config ->
  bout:float array ->
  bin:float array ->
  guarded:bool array ->
  unit ->
  result
(** [simulate ~bout ~bin ~guarded] broadcasts from node [0] (which must be
    open) to everyone. Arrays must have equal length [>= 1]; bandwidths
    must be positive for reachable progress. *)
