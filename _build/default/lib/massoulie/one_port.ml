type config = {
  chunks : int;
  chunk_size : float;
  seed : int64;
  max_time : float;
}

let default_config = { chunks = 100; chunk_size = 1.; seed = 42L; max_time = 1e8 }

type result = {
  delivered_all : bool;
  completion_time : float;
  achieved_rate : float;
  transfers : int;
}

type completion = { src : int; dst : int; chunk : int }

let simulate ?(config = default_config) ~bout ~bin ~guarded () =
  let nodes = Array.length bout in
  if nodes < 1 || Array.length bin <> nodes || Array.length guarded <> nodes then
    invalid_arg "One_port.simulate: array size mismatch";
  if guarded.(0) then invalid_arg "One_port.simulate: source must be open";
  if config.chunks < 1 || config.chunk_size <= 0. then
    invalid_arg "One_port.simulate: bad chunk configuration";
  let k = config.chunks in
  let rng = Prng.Splitmix.create config.seed in
  let owned = Array.init nodes (fun _ -> Bytes.make k '\000') in
  let owned_count = Array.make nodes 0 in
  Bytes.fill owned.(0) 0 k '\001';
  owned_count.(0) <- k;
  let sending = Array.make nodes false and receiving = Array.make nodes false in
  let complete_nodes = ref 1 in
  let per_node_completion = Array.make nodes infinity in
  per_node_completion.(0) <- 0.;
  let queue = Pqueue.create () in
  let transfers = ref 0 in
  let allowed i j = not (guarded.(i) && guarded.(j)) in
  (* A free sender picks a uniformly random (receiver, chunk) pair among
     useful ones: free receiver it may talk to, missing a chunk it owns. *)
  let pick_transfer i =
    let receiver = ref (-1) and seen = ref 0 in
    for j = 0 to nodes - 1 do
      if j <> i && (not receiving.(j)) && allowed i j && owned_count.(j) < k
      then begin
        (* Does i own something j lacks? *)
        let useful = ref false in
        (try
           for c = 0 to k - 1 do
             if Bytes.get owned.(i) c = '\001' && Bytes.get owned.(j) c = '\000'
             then begin
               useful := true;
               raise Exit
             end
           done
         with Exit -> ());
        if !useful then begin
          incr seen;
          if Prng.Splitmix.next_below rng !seen = 0 then receiver := j
        end
      end
    done;
    if !receiver < 0 then None
    else begin
      let j = !receiver in
      let chunk = ref (-1) and seen = ref 0 in
      for c = 0 to k - 1 do
        if Bytes.get owned.(i) c = '\001' && Bytes.get owned.(j) c = '\000' then begin
          incr seen;
          if Prng.Splitmix.next_below rng !seen = 0 then chunk := c
        end
      done;
      Some (j, !chunk)
    end
  in
  let try_start now i =
    if (not sending.(i)) && owned_count.(i) > 0 then
      match pick_transfer i with
      | None -> ()
      | Some (j, c) ->
        let rate = Float.min bout.(i) bin.(j) in
        if rate > 0. && config.chunk_size /. rate < config.max_time then begin
          sending.(i) <- true;
          receiving.(j) <- true;
          Pqueue.push queue
            (now +. (config.chunk_size /. rate))
            { src = i; dst = j; chunk = c }
        end
  in
  try_start 0. 0;
  let rec loop () =
    match Pqueue.pop queue with
    | None -> ()
    | Some (now, _) when now > config.max_time -> ()
    | Some (now, { src; dst; chunk }) ->
      sending.(src) <- false;
      receiving.(dst) <- false;
      incr transfers;
      if Bytes.get owned.(dst) chunk = '\000' then begin
        Bytes.set owned.(dst) chunk '\001';
        owned_count.(dst) <- owned_count.(dst) + 1;
        if owned_count.(dst) = k then begin
          per_node_completion.(dst) <- now;
          incr complete_nodes
        end
      end;
      if !complete_nodes < nodes then begin
        (* Both endpoints freed; any idle sender may now find dst free or
           benefit from dst's new chunk — retry everyone (n is small). *)
        for v = 0 to nodes - 1 do
          try_start now v
        done;
        loop ()
      end
  in
  loop ();
  let delivered_all = !complete_nodes = nodes in
  let completion_time = Array.fold_left Float.max 0. per_node_completion in
  {
    delivered_all;
    completion_time = (if delivered_all then completion_time else infinity);
    achieved_rate =
      (if delivered_all && completion_time > 0. then
         float_of_int k *. config.chunk_size /. completion_time
       else 0.);
    transfers = !transfers;
  }
