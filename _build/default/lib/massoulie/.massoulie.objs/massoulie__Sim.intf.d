lib/massoulie/sim.mli: Flowgraph
