lib/massoulie/one_port.ml: Array Bytes Float Pqueue Prng
