lib/massoulie/pqueue.mli:
