lib/massoulie/one_port.mli:
