lib/massoulie/sim.ml: Array Bytes Float Flowgraph List Pqueue Prng
