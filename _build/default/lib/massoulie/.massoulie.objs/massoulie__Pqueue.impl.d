lib/massoulie/pqueue.ml: Array
