(** Minimal binary min-heap priority queue, keyed by float.

    The discrete-event simulator needs a classic event queue: O(log n)
    insert and extract-min, stable enough that simultaneous events pop in
    insertion order is {e not} guaranteed (ties break arbitrarily) — the
    simulator's results do not depend on tie order. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push q key v] inserts [v] with priority [key]. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum-key binding. *)

val peek_key : 'a t -> float option
