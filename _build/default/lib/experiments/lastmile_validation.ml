type row = {
  noise : float;
  rmse : float;
  bout_median_rel_err : float;
  throughput_true : float;
  throughput_fitted : float;
}

let make_truth ~nodes rng =
  (* Outgoing capacities from the PLab pool; incoming capacity 1-3x the
     outgoing one (access links are usually download-favoured). *)
  let bout =
    Array.init nodes (fun _ -> Prng.Dist.sample Platform.Plab.dist rng)
  in
  let bin =
    Array.map (fun b -> b *. (1. +. (2. *. Prng.Splitmix.next_float rng))) bout
  in
  { Lastmile.Model.bout; bin }

let acyclic_of_model model ~p_guarded rng =
  let nodes = Array.length model.Lastmile.Model.bout in
  (* The best-provisioned node plays the source; others are guarded with
     probability p_guarded. *)
  let source = ref 0 in
  Array.iteri
    (fun i b ->
      if b > model.Lastmile.Model.bout.(!source) then source := i)
    model.Lastmile.Model.bout;
  let guarded =
    Array.init nodes (fun i ->
        i <> !source && Prng.Splitmix.next_float rng < p_guarded)
  in
  let inst, _perm = Lastmile.Model.to_instance model ~source:!source ~guarded in
  fst (Broadcast.Greedy.optimal_acyclic inst)

let compute ?(nodes = 40) ?(p_guarded = 0.3) ~noise ~seed () =
  let rng = Prng.Splitmix.create seed in
  let truth = make_truth ~nodes rng in
  let matrix = Lastmile.Model.synthetic_matrix ~noise truth rng in
  let fitted = Lastmile.Model.fit matrix in
  let rel_errs =
    Array.mapi
      (fun i b ->
        Float.abs (fitted.Lastmile.Model.bout.(i) -. b) /. Float.max b 1e-9)
      truth.Lastmile.Model.bout
  in
  (* The class assignment must match across the two pipelines, so reuse
     one RNG stream per pipeline seeded identically. *)
  let class_seed = Prng.Splitmix.next rng in
  let t_true =
    acyclic_of_model truth ~p_guarded (Prng.Splitmix.create class_seed)
  in
  let t_fitted =
    acyclic_of_model fitted ~p_guarded (Prng.Splitmix.create class_seed)
  in
  {
    noise;
    rmse = Lastmile.Model.rmse fitted matrix;
    bout_median_rel_err = Stats.quantile rel_errs 0.5;
    throughput_true = t_true;
    throughput_fitted = t_fitted;
  }

let print ?(noises = [ 0.; 0.05; 0.2; 0.5 ]) fmt =
  Format.pp_print_string fmt
    (Tab.section "E12 - LastMile model fitting (Bedibe substitute)");
  let rows =
    List.map
      (fun noise ->
        let r = compute ~noise ~seed:11L () in
        [
          Tab.fmt "%.2f" r.noise;
          Tab.fmt "%.4f" r.rmse;
          Tab.fmt "%.4f" r.bout_median_rel_err;
          Tab.fmt "%.3f" r.throughput_true;
          Tab.fmt "%.3f" r.throughput_fitted;
        ])
      noises
  in
  Format.pp_print_string fmt
    (Tab.render
       ~header:
         [ "noise"; "fit RMSE"; "median |bout err|"; "T*ac (truth)"; "T*ac (fitted)" ]
       rows);
  Format.pp_print_string fmt
    "Noise-free matrices are recovered exactly; moderate measurement noise\n\
     perturbs the computed overlay throughput only marginally.\n"
