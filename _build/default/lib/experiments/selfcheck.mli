(** Portable self-validation — `bmp selfcheck`.

    A condensed, deterministic battery of cross-checks a user can run on
    any installation without the development test harness: paper constants
    (Figure 1, Table I, 5/7), oracle agreement (greedy vs exhaustive,
    closed form vs simulation, float vs exact rationals), scheme validity
    on random platforms (max-flow, degrees, firewall), and transport
    delivery. Prints one line per check; returns the number of failures. *)

type outcome = {
  name : string;
  passed : bool;
  detail : string;  (** measured-vs-expected summary *)
}

val run_all : unit -> outcome list

val print : Format.formatter -> int
(** Runs everything, prints a PASS/FAIL line per check and a summary;
    returns the failure count (0 = healthy). *)
