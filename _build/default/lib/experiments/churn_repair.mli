(** Experiment E13 (extension) — churn resilience, the open problem named
    in the paper's conclusion.

    A swarm of [nodes] peers suffers a sequence of random churn events
    (each a departure with probability 1/2, otherwise an arrival drawn
    from the same bandwidth distribution and class mix). After every event
    the overlay is patched locally ({!Broadcast.Repair}) and compared to a
    full re-optimization: edges touched (connection churn imposed on the
    swarm) and achieved rate relative to the current target.

    The decisive knob is {e headroom}: an overlay operated at the full
    optimal rate uses every unit of upload, so a departure upstream cannot
    be compensated — only nodes later in the topological order have spare
    capacity, and they are unusable without creating cycles. Operating at
    a fraction [headroom] of the optimum leaves every node slack that the
    local repair can draw on. The experiment sweeps headroom and reports
    how much target rate survives patching, how many connections a patch
    touches versus a rebuild, and how often the threshold policy (rebuild
    when the kept fraction drops below [rebuild_threshold]) fires. *)

type summary = {
  events : int;
  headroom : float;
  patch_edges_mean : float;  (** mean connection churn of a local patch *)
  rebuild_edges_mean : float;  (** mean churn a full rebuild would cost *)
  kept_mean : float;
      (** mean (patched rate / current target), target = headroom * T*ac
          of the post-event instance, capped at 1 *)
  kept_min : float;
  rebuilds : int;  (** rebuilds triggered by the threshold policy *)
}

val run :
  ?nodes:int ->
  ?events:int ->
  ?p_open:float ->
  ?headroom:float ->
  ?rebuild_threshold:float ->
  ?seed:int64 ->
  unit ->
  summary
(** Defaults: 40 nodes, 30 events, [p_open = 0.7], headroom 0.9,
    threshold 0.8, seed 101. *)

val print : Format.formatter -> unit
(** Sweeps headroom in {0.99, 0.9, 0.75} on a 40-node swarm. *)
