(** Experiment E9 — Theorem 6.3: the acyclic gap does not vanish on large
    instances.

    The family [I(alpha, k)] (source 1, [k q] open nodes of bandwidth
    [alpha = p/q ~ (sqrt 41 - 3) / 8], [k p] guarded nodes of bandwidth
    [1/alpha]) has cyclic optimum [1] for every [k], while its acyclic
    optimum stays below [(1 + sqrt 41) / 8 ~ 0.9254]. The driver sweeps
    [k], measuring [T*ac] and checking it against the paper's per-family
    upper bound [max (f_alpha(floor 1/alpha), g_alpha(ceil 1/alpha))]. *)

type row = {
  k : int;
  n : int;
  m : int;
  cyclic : float;  (** expected 1 *)
  acyclic : float;
  bound : float;  (** the paper's upper bound on [T*ac] for this alpha *)
  limit : float;  (** [(1 + sqrt 41) / 8] *)
}

val compute : k:int -> row

val print : ?ks:int list -> Format.formatter -> unit
