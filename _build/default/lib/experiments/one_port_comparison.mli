(** Experiment E16 (extension) — bounded multi-port versus one-port, the
    paper's Section II-A motivation made quantitative.

    On the same platform (out/in capacities, open/guarded classes), two
    pipelines broadcast the same number of chunks:

    - {e one-port}: randomized useful-chunk exchange directly on the
      platform with both endpoints exclusively busy per transfer
      ({!Massoulie.One_port});
    - {e bounded multi-port}: the Theorem 4.1 overlay (target rate clipped
      by the weakest downlink, which the paper assumes away but a fair
      comparison must honor) driven by the chunk-exchange simulator.

    Expected shape: with homogeneous capacities one-port is competitive
    (its classic domain); as heterogeneity grows, fast nodes get trapped
    behind slow receivers and multi-port pulls ahead — the motivating
    claim of the paper's model section. *)

type row = {
  scenario : string;
  heterogeneity : float;  (** max/min outgoing bandwidth in the platform *)
  one_port_rate : float;
  multi_port_rate : float;
  advantage : float;  (** multi-port / one-port achieved rates *)
}

val compute :
  ?nodes:int -> ?chunks:int -> ?seed:int64 -> ?source_bout:float ->
  scenario:string -> dist:Prng.Dist.t -> unit -> row
(** [source_bout] overrides the source's uplink (default: the strongest
    drawn value). *)

val print : Format.formatter -> unit
(** Scenarios: homogeneous, Unif100, PLab, Power2, and the paper's
    server-plus-DSL example. *)
