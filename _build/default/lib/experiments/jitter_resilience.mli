(** Experiment E15 (extension) — resilience to bandwidth fluctuations.

    The paper's conclusion claims the computed overlays, run with
    Massoulié's randomized transport, "should be resilient to small
    variations in the communication performance of nodes". This experiment
    tests the claim directly: the optimal low-degree overlay of a random
    platform is simulated while every individual chunk transfer's speed
    fluctuates by a log-uniform factor up to [1 +- jitter], and the
    achieved efficiency (file mode) and playout lag (streaming mode) are
    tracked as the fluctuation grows. Expected: a gentle, sub-linear
    degradation for small jitter — randomized chunk selection absorbs
    local slowdowns — with real damage only at large fluctuation. *)

type row = {
  jitter : float;
  efficiency : float;  (** achieved / computed rate, file mode *)
  stream_lag : float;  (** worst playout lag in chunk-times *)
}

val compute : ?nodes:int -> ?chunks:int -> ?seed:int64 -> jitter:float -> unit -> row

val print : ?jitters:float list -> Format.formatter -> unit
