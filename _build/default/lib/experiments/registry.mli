(** Name-indexed registry of all experiment drivers, shared by the CLI and
    the benchmark harness. *)

type entry = {
  name : string;  (** CLI identifier, e.g. ["fig7"] *)
  paper_artifact : string;  (** e.g. ["Figure 7"] *)
  description : string;
  run : Format.formatter -> unit;  (** default-parameter run *)
}

val all : entry list
(** In paper order. *)

val find : string -> entry option

val run_all : Format.formatter -> unit
(** Runs every experiment with default parameters — the content of
    EXPERIMENTS.md. *)
