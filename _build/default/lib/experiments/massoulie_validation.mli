(** Experiment E11 — validating the transport layer: the randomized
    chunk-exchange simulator ({!Massoulie.Sim}) actually delivers the
    throughput computed by the overlay algorithms.

    The paper's architecture (Section II-C) computes an overlay with edge
    rates and delegates the actual data movement to Massoulié's
    randomized broadcast; this experiment closes the loop by simulating
    that transport on the overlays built here and measuring the achieved
    rate as a fraction of the computed one. Expected: efficiency
    approaching 1 as the chunk count grows (pipelining startup is the
    only loss), in both file and streaming modes. *)

type row = {
  overlay : string;
  rate : float;  (** computed overlay throughput *)
  chunks : int;
  efficiency : float;  (** achieved/computed, file mode *)
  stream_lag : float;  (** worst playout lag in chunk-times, streaming mode *)
}

val run_overlay :
  label:string -> Flowgraph.Graph.t -> rate:float -> chunks:int -> row

val compute : ?chunks:int -> unit -> row list
(** Overlays exercised: Figure 1's low-degree acyclic scheme, the
    Theorem 5.2 cyclic example, and a random 30-node Unif100 platform. *)

val print : ?chunks:int -> Format.formatter -> unit
