(** Minimal aligned ASCII tables for experiment reports. *)

val render : header:string list -> string list list -> string
(** [render ~header rows] pads every column to its widest cell and
    separates the header with a dashed rule. Rows shorter than the header
    are right-padded with empty cells. *)

val fmt : ('a, unit, string) format -> 'a
(** Alias of [Printf.sprintf] to keep call sites short. *)

val section : string -> string
(** A visually separated section banner. *)
