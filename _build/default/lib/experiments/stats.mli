(** Descriptive statistics for experiment outputs (Figure 19's boxplots). *)

type five_numbers = {
  min : float;
  q25 : float;
  median : float;
  q75 : float;
  max : float;
}

val mean : float array -> float
(** Requires a non-empty array. *)

val std : float array -> float
(** Population standard deviation; 0 for singletons. *)

val quantile : float array -> float -> float
(** [quantile xs p] with linear interpolation, [p] in [\[0, 1\]]. The input
    need not be sorted. Requires a non-empty array. *)

val five_numbers : float array -> five_numbers

val pp_five : Format.formatter -> five_numbers -> unit
(** Renders as [min/q25/med/q75/max] with 4 digits. *)

val fraction_below : float array -> float -> float
(** [fraction_below xs x] — share of samples strictly below [x]. *)
