type row = {
  p : int;
  target : int;
  solvable : bool;
  scheme_ok : bool;
}

(* Draw a triple (x, y, z) with x + y + z = t and t/4 < each < t/2:
   sample x, y in the open quarter-to-half range until z lands there. *)
let yes_instance ~p ~seed =
  let rng = Prng.Splitmix.create seed in
  let t = 4 * (20 + Prng.Splitmix.next_below rng 30) in
  let lo = (t / 4) + 1 and hi = (t / 2) - 1 in
  let draw () = lo + Prng.Splitmix.next_below rng (hi - lo + 1) in
  let rec triple () =
    let x = draw () and y = draw () in
    let z = t - x - y in
    if z > t / 4 && z < (t + 1) / 2 && 2 * z <> t then (x, y, z) else triple ()
  in
  let values = ref [] in
  for _ = 1 to p do
    let x, y, z = triple () in
    values := x :: y :: z :: !values
  done;
  Array.of_list !values

let compute a =
  (* Work on the bandwidth-sorted order used by the reduction instance so
     that partition indices and scheme node indices agree. *)
  let a = Array.copy a in
  Array.sort (fun x y -> compare y x) a;
  let p = Array.length a / 3 in
  let target = Array.fold_left ( + ) 0 a / p in
  match Broadcast.Hardness.three_partition a with
  | None -> { p; target; solvable = false; scheme_ok = true }
  | Some triples ->
    let inst, t = Broadcast.Hardness.reduction a in
    let scheme = Broadcast.Hardness.scheme_of_partition a triples in
    let ok_throughput = Broadcast.Verify.achieves inst scheme ~rate:t in
    let degrees = Broadcast.Metrics.degree_report inst ~t scheme in
    { p; target; solvable = true;
      scheme_ok = ok_throughput && degrees.Broadcast.Metrics.max_excess <= 0 }

let print ?(seeds = [ 1; 2; 3; 4; 5 ]) ?(p = 4) fmt =
  Format.pp_print_string fmt
    (Tab.section "E6 - Figure 8 / Theorem 3.1: 3-PARTITION reduction");
  let rows =
    List.map
      (fun seed ->
        let a = yes_instance ~p ~seed:(Int64.of_int seed) in
        let r = compute a in
        [
          string_of_int seed;
          string_of_int r.p;
          string_of_int r.target;
          string_of_bool r.solvable;
          string_of_bool r.scheme_ok;
        ])
      seeds
  in
  Format.pp_print_string fmt
    (Tab.render ~header:[ "seed"; "p"; "T"; "solvable"; "tight-degree scheme" ] rows);
  Format.pp_print_string fmt
    "Solvable 3-PARTITION <-> broadcast scheme of throughput T with every\n\
     outdegree at the lower bound ceil(b_i/T) (zero excess).\n"
