let fmt = Printf.sprintf

let render ~header rows =
  let cols = List.length header in
  let normalize row =
    let len = List.length row in
    if len >= cols then row else row @ List.init (cols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths = Array.make cols 0 in
  let measure row =
    List.iteri (fun c cell ->
        if c < cols then widths.(c) <- max widths.(c) (String.length cell))
      row
  in
  measure header;
  List.iter measure rows;
  let pad c cell = cell ^ String.make (widths.(c) - String.length cell) ' ' in
  let line row =
    String.concat "  " (List.mapi pad row) |> String.trim |> fun s -> s ^ "\n"
  in
  let rule =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
    ^ "\n"
  in
  line header ^ rule ^ String.concat "" (List.map line rows)

let section title =
  let bar = String.make (String.length title + 8) '=' in
  fmt "\n%s\n=== %s ===\n%s\n" bar title bar
