(** Experiment E6 — Figure 8 / Theorem 3.1: the 3-PARTITION reduction.

    Generates random YES instances of 3-PARTITION (by construction) and
    random perturbed instances, runs the exact solver, and for solvable
    ones builds the witness broadcast scheme on the reduction instance:
    throughput exactly [T] with {e every} outdegree at the lower bound
    [ceil (b i / T)] — the degree budget whose tightness makes the
    problem NP-complete. *)

type row = {
  p : int;  (** number of triples *)
  target : int;  (** triple sum [T] *)
  solvable : bool;
  scheme_ok : bool;
      (** witness scheme built, verified at throughput [T] with zero
          degree excess ([true] vacuously for unsolvable instances) *)
}

val yes_instance : p:int -> seed:int64 -> int array
(** Random 3-PARTITION instance built from [p] hidden triples, each
    summing to a common [T] with [T/4 < a_i < T/2] — guaranteed
    solvable. *)

val compute : int array -> row

val print : ?seeds:int list -> ?p:int -> Format.formatter -> unit
