(** Experiment E7 — Figures 11–17: the cyclic construction of Theorem 5.2.

    Replays both worked examples of Appendix X:
    - [b = (5, 5, 3, 2)], [T = 5] (Figures 11–12, the [i0 = n] case);
    - [b = (5, 5, 4, 4, 4, 3)], [T = 5] (Figures 14–17, initial case plus
      one inductive step);
    and checks the constructed schemes with the max-flow oracle and the
    degree bound [max (ceil (b i / T) + 2, 4)]. *)

type row = {
  label : string;
  bandwidths : float array;
  t : float;
  deficit_index : int option;  (** the paper's [i0] *)
  throughput : float;  (** verified by max-flow *)
  acyclic : bool;  (** whether the result needed no cycle *)
  max_excess : int;
  degree_bound_ok : bool;
}

val examples : unit -> row list

val compute : Platform.Instance.t -> t:float -> label:string -> row

val print : Format.formatter -> unit
