(** Experiment E12 — instantiating the LastMile model (the paper's Bedibe
    step, Section II-C).

    Ground-truth per-node capacities are drawn from the synthetic
    PlanetLab pool; a full measurement matrix
    [M i j = min (bout i) (bin j)] is synthesized with multiplicative
    noise, the last-mile model is re-estimated from the matrix alone
    ({!Lastmile.Model.fit}), and the recovered capacities feed the
    broadcast pipeline. Reported per noise level: prediction RMSE,
    median relative error on the out-capacities, and the acyclic
    throughput computed on recovered versus true capacities. *)

type row = {
  noise : float;
  rmse : float;  (** prediction RMSE of the fitted model *)
  bout_median_rel_err : float;
  throughput_true : float;  (** T*ac on the ground-truth capacities *)
  throughput_fitted : float;  (** T*ac on the recovered capacities *)
}

val compute :
  ?nodes:int -> ?p_guarded:float -> noise:float -> seed:int64 -> unit -> row

val print : ?noises:float list -> Format.formatter -> unit
