(** Experiment E14 (extension/ablation) — depth versus throughput versus
    degree, the delay-minimization direction of the paper's conclusion.

    On one platform, for several target-rate fractions of [T*ac], build
    the Lemma 4.6 earliest-sender scheme and the min-depth variant
    ({!Broadcast.Depth}) from the same witness word, and compare overlay
    depth, degree excess, and the playout lag measured by the randomized
    transport simulator in streaming mode. *)

type row = {
  point : Broadcast.Depth.tradeoff_point;
  fifo_lag : float;  (** streaming lag of the FIFO scheme, chunk-times *)
  min_depth_lag : float;  (** streaming lag of the min-depth scheme *)
}

val compute :
  ?nodes:int -> ?fractions:float list -> ?seed:int64 -> unit -> row list

val print : Format.formatter -> unit
