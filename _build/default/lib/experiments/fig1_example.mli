(** Experiment E1/E2/E3 — the paper's running example (Figures 1–5 and
    Table I).

    Reproduces, on the Figure 1 instance (source 6, open 5/5, guarded
    4/1/1):
    - the optimal cyclic throughput [min (6, 16/3, 22/5) = 4.4]
      (Lemma 5.1);
    - the optimal acyclic throughput [4] with the word/order of Figure 5
      ([sigma = 031425]);
    - Table I — the [O(pi)], [G(pi)], [W(pi)] trace of Algorithm 2 at
      [T = 4];
    - the low-degree scheme of Lemma 4.6 with its verified throughput and
      degree excesses;
    - Algorithm 1 on an open-only variant (Figure 3's mechanics). *)

type data = {
  cyclic : float;  (** expected 4.4 *)
  acyclic : float;  (** expected 4.0 *)
  word : Broadcast.Word.t;  (** expected [gogog] *)
  order : int array;  (** expected [|0;3;1;4;2;5|] *)
  trace : Broadcast.Greedy.decision list;  (** Table I *)
  scheme_throughput : float;  (** verified by max-flow, expected 4.0 *)
  max_excess_open : int;  (** Lemma 4.6 bound: 3 *)
  max_excess_guarded : int;  (** Lemma 4.6 bound: 1 *)
}

val compute : unit -> data

val print : Format.formatter -> unit
(** Renders the full report, including the Table I reproduction. *)
