lib/experiments/stats.ml: Array Float Format
