lib/experiments/selfcheck.mli: Format
