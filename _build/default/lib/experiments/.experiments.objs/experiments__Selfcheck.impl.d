lib/experiments/selfcheck.ml: Array Broadcast Float Format Generator Instance Lastmile List Massoulie Platform Printf Prng Rational Tab
