lib/experiments/thm63_family.ml: Broadcast Format List Platform Tab
