lib/experiments/fig18_worst.ml: Broadcast Float Format List Tab
