lib/experiments/stats.mli: Format
