lib/experiments/fig6_unbounded.mli: Format
