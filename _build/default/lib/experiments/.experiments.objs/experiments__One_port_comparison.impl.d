lib/experiments/one_port_comparison.ml: Array Broadcast Float Format Lastmile List Massoulie Option Platform Prng Tab
