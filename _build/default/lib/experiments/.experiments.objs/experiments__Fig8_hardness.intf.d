lib/experiments/fig8_hardness.mli: Format
