lib/experiments/jitter_resilience.ml: Broadcast Format List Massoulie Platform Prng Tab
