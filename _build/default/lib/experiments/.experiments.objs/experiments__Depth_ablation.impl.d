lib/experiments/depth_ablation.ml: Broadcast Format List Massoulie Platform Prng Tab
