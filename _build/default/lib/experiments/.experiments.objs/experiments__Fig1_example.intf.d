lib/experiments/fig1_example.mli: Broadcast Format
