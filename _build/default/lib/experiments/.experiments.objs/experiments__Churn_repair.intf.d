lib/experiments/churn_repair.mli: Format
