lib/experiments/churn_repair.ml: Array Broadcast Float Format Instance List Platform Prng Stats Tab
