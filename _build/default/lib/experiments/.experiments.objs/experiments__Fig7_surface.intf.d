lib/experiments/fig7_surface.mli: Format
