lib/experiments/fig7_surface.ml: Array Broadcast Float Format Hashtbl Instance List Platform String Tab
