lib/experiments/fig1_example.ml: Array Broadcast Format Instance List Platform String Tab
