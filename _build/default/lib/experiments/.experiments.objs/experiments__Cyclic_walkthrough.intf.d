lib/experiments/cyclic_walkthrough.mli: Format Platform
