lib/experiments/massoulie_validation.mli: Flowgraph Format
