lib/experiments/one_port_comparison.mli: Format Prng
