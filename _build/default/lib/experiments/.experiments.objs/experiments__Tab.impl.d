lib/experiments/tab.ml: Array List Printf String
