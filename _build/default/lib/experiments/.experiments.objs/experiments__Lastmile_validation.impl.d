lib/experiments/lastmile_validation.ml: Array Broadcast Float Format Lastmile List Platform Prng Stats Tab
