lib/experiments/cyclic_walkthrough.ml: Array Broadcast Format Instance List Platform String Tab
