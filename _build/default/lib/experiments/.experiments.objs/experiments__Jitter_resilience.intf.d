lib/experiments/jitter_resilience.mli: Format
