lib/experiments/lastmile_validation.mli: Format
