lib/experiments/thm63_family.mli: Format
