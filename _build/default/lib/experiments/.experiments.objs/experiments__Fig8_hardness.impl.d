lib/experiments/fig8_hardness.ml: Array Broadcast Format Int64 List Prng Tab
