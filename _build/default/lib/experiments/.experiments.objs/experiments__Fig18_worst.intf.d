lib/experiments/fig18_worst.mli: Format
