lib/experiments/massoulie_validation.ml: Broadcast Format Instance List Massoulie Platform Prng Tab
