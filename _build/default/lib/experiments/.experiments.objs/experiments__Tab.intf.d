lib/experiments/tab.mli:
