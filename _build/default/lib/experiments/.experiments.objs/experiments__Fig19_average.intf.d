lib/experiments/fig19_average.mli: Format Prng Stats
