lib/experiments/fig6_unbounded.ml: Broadcast Flowgraph Format List Tab
