lib/experiments/depth_ablation.mli: Broadcast Format
