lib/experiments/fig19_average.ml: Array Broadcast Float Format List Platform Prng Stats Tab
