type row = {
  k : int;
  n : int;
  m : int;
  cyclic : float;
  acyclic : float;
  bound : float;
  limit : float;
}

let limit = (1. +. sqrt 41.) /. 8.

let compute ~k =
  let inst, alpha = Broadcast.Ratio.sqrt41_instance ~k () in
  let cyclic = Broadcast.Bounds.cyclic_upper inst in
  let acyclic, _ = Broadcast.Greedy.optimal_acyclic inst in
  {
    k;
    n = inst.Platform.Instance.n;
    m = inst.Platform.Instance.m;
    cyclic;
    acyclic;
    bound = Broadcast.Ratio.sqrt41_acyclic_upper ~alpha;
    limit;
  }

let print ?(ks = [ 1; 2; 4; 8 ]) fmt =
  Format.pp_print_string fmt
    (Tab.section "E9 - Theorem 6.3: asymptotic gap (1+sqrt 41)/8");
  let rows =
    List.map
      (fun k ->
        let r = compute ~k in
        [
          string_of_int r.k;
          string_of_int r.n;
          string_of_int r.m;
          Tab.fmt "%.4f" r.cyclic;
          Tab.fmt "%.5f" r.acyclic;
          Tab.fmt "%.5f" r.bound;
          Tab.fmt "%.5f" r.limit;
        ])
      ks
  in
  Format.pp_print_string fmt
    (Tab.render
       ~header:[ "k"; "n"; "m"; "T*"; "T*ac"; "paper bound"; "(1+sqrt41)/8" ]
       rows);
  Format.pp_print_string fmt
    "T*ac stays below the bound for every k: acyclic schemes cannot approach\n\
     the cyclic optimum on this family, however large the instance.\n"
