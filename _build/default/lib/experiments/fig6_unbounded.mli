(** Experiment E4 — Figure 6: with guarded nodes, optimal cyclic schemes
    may need arbitrarily large degrees.

    For each [m], builds the gadget (source 1, one open node [m - 1], [m]
    guarded nodes [1/m]), the handcrafted optimal scheme, and reports the
    verified throughput, the source's outdegree [m] against its lower
    bound [ceil (b0 / T) = 1], and — for contrast — the throughput and
    degrees of the best low-degree acyclic scheme. *)

type row = {
  m : int;
  cyclic : float;  (** expected 1 *)
  scheme_throughput : float;  (** verified, expected 1 *)
  source_degree : int;  (** expected m *)
  degree_bound : int;  (** expected 1 *)
  acyclic : float;  (** optimal acyclic throughput of the gadget *)
  acyclic_source_degree : int;  (** source degree of the low-degree scheme *)
}

val compute : m:int -> row

val print : ?ms:int list -> Format.formatter -> unit
(** Default [ms = [2; 4; 8; 16; 32; 64]]. *)
