type five_numbers = {
  min : float;
  q25 : float;
  median : float;
  q75 : float;
  max : float;
}

let check_non_empty xs =
  if Array.length xs = 0 then invalid_arg "Stats: empty sample"

let mean xs =
  check_non_empty xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let std xs =
  check_non_empty xs;
  let mu = mean xs in
  let acc = Array.fold_left (fun a x -> a +. ((x -. mu) ** 2.)) 0. xs in
  sqrt (acc /. float_of_int (Array.length xs))

let quantile xs p =
  check_non_empty xs;
  if p < 0. || p > 1. then invalid_arg "Stats.quantile: p out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let k = Array.length sorted in
  let pos = p *. float_of_int (k - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = min (k - 1) (lo + 1) in
  let frac = pos -. float_of_int lo in
  (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let five_numbers xs =
  check_non_empty xs;
  {
    min = quantile xs 0.;
    q25 = quantile xs 0.25;
    median = quantile xs 0.5;
    q75 = quantile xs 0.75;
    max = quantile xs 1.;
  }

let pp_five fmt f =
  Format.fprintf fmt "%.4f/%.4f/%.4f/%.4f/%.4f" f.min f.q25 f.median f.q75 f.max

let fraction_below xs x =
  check_non_empty xs;
  let below = Array.fold_left (fun k v -> if v < x then k + 1 else k) 0 xs in
  float_of_int below /. float_of_int (Array.length xs)
