(** Exact (rational-arithmetic) evaluation of acyclic schemes.

    The float pipeline verifies the paper's tight results only up to
    rounding; this module certifies them exactly: the conservative
    accounting of Lemma 4.4, the min-of-ratios closed form for
    [T*ac(sigma)], and the exhaustive word optimum all re-implemented over
    {!Rational.Q}. Used to prove, in tests, that the Figure 1 instance has
    [T*ac = 4] exactly, that Theorem 6.2's gadget at [eps = 1/14] sits at
    exactly [5/7], and that Table I's accounting is exact — and to
    cross-validate the float implementation on random rational instances. *)

type receiver = Platform.Instance.node_class * Rational.Q.t
(** One node to feed: its class and outgoing bandwidth. *)

val of_instance :
  ?max_den:int -> Platform.Instance.t -> Rational.Q.t * receiver list
(** [(b0, receivers)] with every bandwidth converted by
    {!Rational.Q.of_float_approx} (denominators up to [max_den], default
    [10_000]); receivers in instance order [C1 .. C(n+m)]. Exact when the
    instance holds representable rationals (every paper gadget does). *)

val feasible : b0:Rational.Q.t -> rate:Rational.Q.t -> receiver list -> bool
(** Exact conservative simulation (the [O/G/W] recursions of Lemma 4.4):
    can the sequence be fed at [rate]? Requires [rate > 0]. *)

val sequence_throughput : b0:Rational.Q.t -> receiver list -> Rational.Q.t
(** Exact [T*ac(sigma)] for the fixed order — the minimum of the
    bandwidth-sum ratios (same derivation as
    {!Word.sequence_throughput}). *)

val optimal_acyclic :
  b0:Rational.Q.t ->
  opens:Rational.Q.t list ->
  guardeds:Rational.Q.t list ->
  Rational.Q.t * Word.t
(** Exact [T*ac]: exhaustive maximum over all encoding words (bandwidths
    must be given in non-increasing order per class; exact by Lemma 4.2).
    Inherits {!Word.enumerate}'s size limit. *)

val accounting :
  b0:Rational.Q.t ->
  rate:Rational.Q.t ->
  receiver list ->
  (Rational.Q.t * Rational.Q.t * Rational.Q.t) list option
(** Exact [(O, G, W)] after each step (Table I's rows), or [None] when the
    sequence is infeasible at [rate]. *)
