open Platform

let check_three_partition_shape a =
  let len = Array.length a in
  if len = 0 || len mod 3 <> 0 then
    invalid_arg "Hardness: need a positive multiple of 3 values";
  let p = len / 3 in
  let sum = Array.fold_left ( + ) 0 a in
  if sum mod p <> 0 then invalid_arg "Hardness: sum must be divisible by p";
  (p, sum / p)

let three_partition a =
  let p, target = check_three_partition_shape a in
  let len = Array.length a in
  let used = Array.make len false in
  let triples = ref [] in
  (* Pick the first unused index, then search two partners summing to
     target - a.(i); first-index anchoring prunes symmetric branches. *)
  let rec solve remaining =
    if remaining = 0 then true
    else begin
      let anchor = ref (-1) in
      (try
         for i = 0 to len - 1 do
           if not used.(i) then begin
             anchor := i;
             raise Exit
           end
         done
       with Exit -> ());
      let i = !anchor in
      used.(i) <- true;
      let found = ref false in
      (try
         for j = i + 1 to len - 1 do
           if (not used.(j)) && not !found then begin
             for k = j + 1 to len - 1 do
               if (not used.(k)) && (not !found) && a.(i) + a.(j) + a.(k) = target
               then begin
                 used.(j) <- true;
                 used.(k) <- true;
                 triples := (i, j, k) :: !triples;
                 if solve (remaining - 1) then found := true
                 else begin
                   triples := List.tl !triples;
                   used.(j) <- false;
                   used.(k) <- false
                 end
               end
             done
           end
         done
       with Exit -> ());
      if !found then true
      else begin
        used.(i) <- false;
        false
      end
    end
  in
  if solve p then Some (List.rev !triples) else None

let check_side_conditions a t =
  Array.iter
    (fun ai ->
      if 4 * ai <= t || 2 * ai >= t then
        invalid_arg "Hardness: values must satisfy T/4 < a_i < T/2")
    a

let sorted_desc a =
  let b = Array.copy a in
  Array.sort (fun x y -> compare y x) b;
  b

let reduction a =
  let p, t = check_three_partition_shape a in
  check_side_conditions a t;
  let a = sorted_desc a in
  let len = Array.length a in
  let bandwidth =
    Array.init
      (1 + len + p)
      (fun i ->
        if i = 0 then float_of_int (len * t)
        else if i <= len then float_of_int a.(i - 1)
        else 0.)
  in
  (Instance.create ~bandwidth ~n:(len + p) ~m:0 (), float_of_int t)

let scheme_of_partition a triples =
  let p, t = check_three_partition_shape a in
  let a = sorted_desc a in
  let len = Array.length a in
  if List.length triples <> p then
    invalid_arg "Hardness.scheme_of_partition: wrong number of triples";
  let g = Flowgraph.Graph.create (1 + len + p) in
  let tf = float_of_int t in
  (* Source feeds every intermediate node at full rate T. *)
  for i = 1 to len do
    Flowgraph.Graph.add_edge g ~src:0 ~dst:i tf
  done;
  (* Each triple pools its full bandwidth into one final node. *)
  List.iteri
    (fun j (x, y, z) ->
      let final = 1 + len + j in
      List.iter
        (fun idx ->
          if idx < 0 || idx >= len then
            invalid_arg "Hardness.scheme_of_partition: index out of range";
          Flowgraph.Graph.add_edge g ~src:(idx + 1) ~dst:final
            (float_of_int a.(idx)))
        [ x; y; z ])
    triples;
  g

let unbounded_degree_instance ~m =
  if m < 2 then invalid_arg "Hardness.unbounded_degree_instance: need m >= 2";
  let mf = float_of_int m in
  Instance.homogeneous ~n:1 ~m ~b0:1. ~bopen:(mf -. 1.) ~bguarded:(1. /. mf)

let unbounded_degree_scheme ~m =
  if m < 2 then invalid_arg "Hardness.unbounded_degree_scheme: need m >= 2";
  let mf = float_of_int m in
  let g = Flowgraph.Graph.create (m + 2) in
  for j = 2 to m + 1 do
    Flowgraph.Graph.add_edge g ~src:0 ~dst:j (1. /. mf);
    Flowgraph.Graph.add_edge g ~src:1 ~dst:j ((mf -. 1.) /. mf);
    Flowgraph.Graph.add_edge g ~src:j ~dst:1 (1. /. mf)
  done;
  g
