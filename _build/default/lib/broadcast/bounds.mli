(** Closed-form throughput bounds (Sections III-B and V of the paper).

    All bounds assume the instance is {!Platform.Instance.sorted} where an
    order matters (only {!acyclic_open_optimal} depends on it). *)

val cyclic_upper : Platform.Instance.t -> float
(** Lemma 5.1: [T* <= min (b0, (b0 + O) / m, (b0 + O + G) / (n + m))] with
    the convention that a term is dropped when its denominator is zero.
    The paper's closed-form formula for the optimal cyclic throughput —
    the bound is attained (possibly at the price of arbitrarily large
    degrees when guarded nodes are present). On the Figure 1 instance this
    is [min (6, 16/3, 22/5) = 4.4]. *)

val cyclic_open_optimal : Platform.Instance.t -> float
(** [min (b0, (b0 + O) / n)] — the cyclic optimum without guarded nodes
    (Theorem 5.2). Requires [m = 0]. *)

val acyclic_open_optimal : Platform.Instance.t -> float
(** Section III-B: [T*ac = min (b0, S_(n-1) / n)] where
    [S_(n-1) = b0 + b1 + ... + b_(n-1)] — the optimum over acyclic schemes
    without guarded nodes. Requires [m = 0], [n >= 1] and a sorted
    instance. *)

val degree_lower_bound : Platform.Instance.t -> t:float -> int -> int
(** [degree_lower_bound inst ~t i] is [ceil (b i / t)], the minimal
    outdegree of node [Ci] in any scheme of throughput [t] that uses all of
    [Ci]'s outgoing bandwidth. *)
