(** Verification oracle for broadcast schemes.

    Independent of the constructions: checks a candidate scheme (a weighted
    communication graph) against the paper's definition — bandwidth
    constraints [sum_j c i j <= b i], firewall constraints
    [c i j = 0 for i, j guarded], optional incoming caps, and throughput
    [T = min_i maxflow (C0 -> Ci)] computed with the {!Flowgraph.Maxflow}
    substrate. Every algorithm in this library is tested against this
    oracle. *)

type report = {
  bandwidth_ok : bool;  (** no node exceeds its outgoing bandwidth *)
  firewall_ok : bool;  (** no guarded-to-guarded edge *)
  bin_ok : bool;  (** incoming caps respected ([true] when absent) *)
  source_receives : bool;  (** [true] iff some edge enters the source (legal but wasteful) *)
  acyclic : bool;
  throughput : float;
      (** [min over i >= 1 of maxflow (C0 -> Ci)]; [infinity] when the
          instance has no receiver *)
}

val check : ?eps:float -> Platform.Instance.t -> Flowgraph.Graph.t -> report
(** [check inst g] evaluates all properties. [eps] is the constraint
    tolerance (default {!Util.eps}), applied relatively. The graph must
    have exactly [Instance.size inst] nodes. *)

val valid : ?eps:float -> Platform.Instance.t -> Flowgraph.Graph.t -> bool
(** Structural validity only: bandwidth, firewall and incoming caps. *)

val achieves :
  ?eps:float -> Platform.Instance.t -> Flowgraph.Graph.t -> rate:float -> bool
(** [achieves inst g ~rate] — structurally valid and throughput at least
    [rate] (within a relative [1e-6] slack on the max-flow values, which
    are themselves iterative float computations). *)
