let eps = 1e-9

let scale a b = Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let feq ?(eps = eps) a b = Float.abs (a -. b) <= eps *. scale a b
let fle ?(eps = eps) a b = a -. b <= eps *. scale a b
let flt ?(eps = eps) a b = b -. a > eps *. scale a b
let fge ?eps a b = fle ?eps b a
let fgt ?eps a b = flt ?eps b a
let is_zero ?eps x = feq ?eps x 0.

let ceil_ratio b t =
  if t <= 0. then invalid_arg "Util.ceil_ratio: rate must be positive";
  if b < 0. then invalid_arg "Util.ceil_ratio: bandwidth must be non-negative";
  let q = b /. t in
  int_of_float (Float.ceil (q -. (eps *. Float.max 1. q)))

let prefix_sums b =
  let k = Array.length b in
  let ps = Array.make (k + 1) 0. in
  for i = 0 to k - 1 do
    ps.(i + 1) <- ps.(i) +. b.(i)
  done;
  ps

let dichotomic_max ?(iterations = 100) ~lo ~hi feasible =
  if hi < lo then invalid_arg "Util.dichotomic_max: empty interval";
  if feasible hi then hi
  else if not (feasible lo) then lo
  else begin
    (* Invariant: feasible lo, not (feasible hi). *)
    let lo = ref lo and hi = ref hi in
    for _ = 1 to iterations do
      let mid = 0.5 *. (!lo +. !hi) in
      if feasible mid then lo := mid else hi := mid
    done;
    !lo
  end
