lib/broadcast/util.mli:
