lib/broadcast/ratio.mli: Platform Word
