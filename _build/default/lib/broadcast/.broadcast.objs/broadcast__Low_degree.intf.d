lib/broadcast/low_degree.mli: Flowgraph Platform Word
