lib/broadcast/util.ml: Array Float
