lib/broadcast/cyclic_open.mli: Flowgraph Platform
