lib/broadcast/exact_q.ml: Array Instance List Platform Rational Word
