lib/broadcast/metrics.ml: Array Flowgraph Instance Platform Util
