lib/broadcast/hardness.mli: Flowgraph Platform
