lib/broadcast/word.ml: Array Bounds Float Instance List Platform Printf String Util
