lib/broadcast/greedy.ml: Array Bounds Instance List Platform Util Word
