lib/broadcast/metrics.mli: Flowgraph Platform
