lib/broadcast/exact.mli: Platform Word
