lib/broadcast/hardness.ml: Array Flowgraph Instance List Platform
