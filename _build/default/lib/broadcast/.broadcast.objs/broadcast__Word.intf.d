lib/broadcast/word.mli: Platform
