lib/broadcast/repair.ml: Array Float Flowgraph Instance List Overlay Platform
