lib/broadcast/depth.mli: Flowgraph Platform Word
