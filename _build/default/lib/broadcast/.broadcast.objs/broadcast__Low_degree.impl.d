lib/broadcast/low_degree.ml: Array Float Flowgraph Greedy Instance Platform Queue Util Word
