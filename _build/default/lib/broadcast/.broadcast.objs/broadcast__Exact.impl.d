lib/broadcast/exact.ml: Array Instance List Platform Word
