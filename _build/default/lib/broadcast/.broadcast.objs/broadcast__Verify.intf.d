lib/broadcast/verify.mli: Flowgraph Platform
