lib/broadcast/overlay.mli: Flowgraph Platform
