lib/broadcast/exact_q.mli: Platform Rational Word
