lib/broadcast/depth.ml: Array Float Flowgraph Greedy Instance List Low_degree Metrics Platform Util Word
