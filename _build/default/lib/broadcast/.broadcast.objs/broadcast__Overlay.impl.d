lib/broadcast/overlay.ml: Array Float Flowgraph Greedy Instance Low_degree Platform Util Verify Word
