lib/broadcast/repair.mli: Overlay Platform
