lib/broadcast/cyclic_open.ml: Acyclic_open Array Bounds Float Flowgraph Instance List Option Platform Util
