lib/broadcast/greedy.mli: Platform Word
