lib/broadcast/verify.ml: Array Flowgraph Instance Platform Util
