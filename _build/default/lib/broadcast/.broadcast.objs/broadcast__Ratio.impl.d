lib/broadcast/ratio.ml: Bounds Float Greedy Instance Platform Rational Word
