lib/broadcast/acyclic_open.ml: Array Bounds Float Flowgraph Instance Option Platform Util
