lib/broadcast/bounds.mli: Platform
