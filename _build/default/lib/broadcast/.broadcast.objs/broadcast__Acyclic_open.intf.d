lib/broadcast/acyclic_open.mli: Flowgraph Platform
