lib/broadcast/bounds.ml: Array Float Instance Platform Util
