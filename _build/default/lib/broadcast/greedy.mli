(** Algorithm 2 of the paper ([GreedyTest]): linear-time feasibility of a
    target throughput on instances with open and guarded nodes, and the
    dichotomic search built on it for the optimal acyclic throughput
    [T*ac] (Theorem 4.1).

    The algorithm extends a conservative partial solution one node at a
    time, greedily preferring a guarded node (□) and falling back to an
    open node (©) when taking □ is impossible ([O(pi) < T]) or would make
    it impossible to continue ([O + G + b_next < 2 T]); a dedicated rule
    applies when a single guarded node remains, where the larger of the
    next two bandwidths is preferred. By Lemma 4.5 the algorithm returns a
    valid word iff [T <= T*ac]. *)

type decision = {
  letter : Platform.Instance.node_class;  (** letter appended at this step *)
  state : Word.state;  (** accounting after the step — Table I's columns *)
}

val test : Platform.Instance.t -> rate:float -> Word.t option
(** [test inst ~rate] is [Some w] with [w] a valid word for throughput
    [rate] if [rate <= T*ac inst] (within {!Util} tolerance), [None]
    otherwise. Linear time. Requires a sorted instance. *)

val test_trace : Platform.Instance.t -> rate:float -> Word.t option * decision list
(** Like {!test}, also returning the per-step decisions and accounting
    actually explored (Table I of the paper). On failure the trace covers
    the steps performed before the algorithm aborted. *)

val optimal_acyclic : ?iterations:int -> Platform.Instance.t -> float * Word.t
(** [optimal_acyclic inst] is [(T*ac, w)] with [w] a witness word
    achieving it, found by bisecting [\[0, cyclic_upper inst\]]
    ([iterations] bisections, default 100). Requires a sorted instance
    with at least one non-source node. *)
