(** Encoding words for increasing acyclic orders (Section IV of the paper).

    An increasing order — open nodes in non-increasing bandwidth order,
    guarded nodes likewise — is encoded by a word over
    {© = open, □ = guarded} stating the class of each successive node
    (Lemma 4.2 shows increasing orders dominate). This module implements:

    - the conservative-solution accounting [O(π)], [G(π)], [W(π)] of
      Lemma 4.4 (open bandwidth available, guarded bandwidth available,
      open-to-open transfer so far) and the per-step feasibility test;
    - the optimal throughput [T*ac(π)] of a fixed word, both by dichotomic
      search on the linear-time feasibility test and by an exact
      closed-form (minimum over [O(len^2)] bandwidth-sum ratios, obtained
      by unfolding the [max] in the definition of [W]);
    - the canonical interleavings [omega1] and [omega2] from the proof of
      Theorem 6.2, which balance guarded nodes among open nodes and are
      near-optimal on average (Appendix XII, blue curves of Figure 19);
    - exhaustive word enumeration, the oracle used to validate the greedy
      algorithm on small instances.

    Letters reuse {!Platform.Instance.node_class}: [Open] is ©, [Guarded]
    is □. *)

type t = Platform.Instance.node_class array

val length : t -> int
val count_open : t -> int
val count_guarded : t -> int

val of_string : string -> t
(** Parse ['o']/['O'] as open and ['g']/['G'] as guarded; raises
    [Invalid_argument] on other characters. *)

val to_string : t -> string
(** Inverse of {!of_string}, using ['o'] and ['g']. *)

val complete : t -> Platform.Instance.t -> bool
(** [complete w inst] holds when [w] has exactly [n] open and [m] guarded
    letters. *)

val to_order : t -> Platform.Instance.t -> int array
(** [to_order w inst] is the node ordering [sigma] induced by [w] on a
    sorted instance: an array of length [1 + n + m] starting with the
    source [0], then the node index of each letter (the paper writes e.g.
    [sigma = 031425] for [gogog] on Figure 1). Requires [complete w inst]. *)

(** {1 Conservative-solution accounting (Lemma 4.4)} *)

type state = {
  avail_open : float;  (** [O(pi)]: open bandwidth still available *)
  avail_guarded : float;  (** [G(pi)]: guarded bandwidth still available *)
  waste : float;  (** [W(pi)]: open-to-open transfer performed so far *)
  fed_open : int;  (** number of open letters consumed, [i] *)
  fed_guarded : int;  (** number of guarded letters consumed, [j] *)
}

val initial_state : Platform.Instance.t -> state
(** [O(eps) = b0], [G(eps) = 0], [W(eps) = 0]. *)

val step :
  Platform.Instance.t ->
  rate:float ->
  state ->
  Platform.Instance.node_class ->
  state option
(** [step inst ~rate st letter] feeds the next node of the letter's class
    at rate [rate] in a conservative partial solution, returning [None]
    when infeasible: a guarded node needs [O(pi) >= rate] (it can only be
    fed from open nodes); an open node needs [O(pi) + G(pi) >= rate] and
    consumes guarded bandwidth first. Comparisons use {!Util} tolerance.
    Requires an unconsumed node of that class to remain. *)

val feasible : Platform.Instance.t -> rate:float -> t -> bool
(** [feasible inst ~rate w] — the word admits a conservative acyclic
    scheme of throughput [rate], i.e. [T*ac(w) >= rate]. Linear time.
    Requires [complete w inst] and a sorted instance. *)

val run : Platform.Instance.t -> rate:float -> t -> state list option
(** Like {!feasible} but returns the full state trajectory (initial state
    first), or [None] at the first infeasible step. *)

(** {1 Optimal throughput of a word} *)

val optimal_throughput : Platform.Instance.t -> t -> float
(** [T*ac(w)] by dichotomic search over {!feasible} (100 bisections of
    [\[0, cyclic_upper\]]). Requires [complete w inst], sorted. *)

val optimal_throughput_closed_form : Platform.Instance.t -> t -> float
(** Exact [T*ac(w)] as the minimum of the ratio family
    [(b0 + Bo(i_rho)) / (j_rho + 1)],
    [(b0 + Bo(i_rho) + Bg(j_tau)) / (1 + j_rho + i_tau)] over prefixes
    [rho] followed by □ and open-ending prefixes [tau] of [rho], and
    [(b0 + Bo(i_rho) + Bg(j_rho)) / (|rho| + 1)] over prefixes followed by
    ©. Quadratic time; agrees with {!optimal_throughput} to tolerance. *)

val sequence_throughput :
  b0:float -> (Platform.Instance.node_class * float) list -> float
(** Generalization of {!optimal_throughput_closed_form} to an arbitrary
    sequence of (class, bandwidth) receivers — the order need not be
    increasing. Used by the exhaustive-order oracle validating Lemma 4.2. *)

(** {1 Canonical words} *)

val omega1 : n:int -> m:int -> t
(** [©□^a1 ©□^a2 ... ©□^an] with [ai = floor (i m / n) - floor ((i-1) m / n)]
    (each open node followed by its balanced share of guarded nodes).
    For [n = 0] this is [□^m]. *)

val omega2 : n:int -> m:int -> t
(** [□©^b1 □©^b2 ... □©^bm] with [bi = ceil (i n / m) - ceil ((i-1) n / m)].
    For [m = 0] this is [©^n]. *)

val enumerate : n:int -> m:int -> t list
(** All [C(n+m, m)] words with [n] open and [m] guarded letters, in
    lexicographic order (© < □). Intended for small instances; raises
    [Invalid_argument] when the count exceeds [2_000_000]. *)
