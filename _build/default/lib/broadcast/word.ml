open Platform

type t = Instance.node_class array

let length = Array.length

let count_open w =
  Array.fold_left (fun k c -> if c = Instance.Open then k + 1 else k) 0 w

let count_guarded w = length w - count_open w

let of_string s =
  Array.init (String.length s) (fun k ->
      match s.[k] with
      | 'o' | 'O' -> Instance.Open
      | 'g' | 'G' -> Instance.Guarded
      | c -> invalid_arg (Printf.sprintf "Word.of_string: bad letter %C" c))

let to_string w =
  String.init (length w) (fun k ->
      match w.(k) with Instance.Open -> 'o' | Instance.Guarded -> 'g')

let complete w inst =
  count_open w = inst.Instance.n && count_guarded w = inst.Instance.m

let to_order w inst =
  if not (complete w inst) then invalid_arg "Word.to_order: incomplete word";
  let order = Array.make (length w + 1) 0 in
  let next_open = ref 1 and next_guarded = ref (inst.Instance.n + 1) in
  Array.iteri
    (fun k letter ->
      match letter with
      | Instance.Open ->
        order.(k + 1) <- !next_open;
        incr next_open
      | Instance.Guarded ->
        order.(k + 1) <- !next_guarded;
        incr next_guarded)
    w;
  order

type state = {
  avail_open : float;
  avail_guarded : float;
  waste : float;
  fed_open : int;
  fed_guarded : int;
}

let initial_state inst =
  {
    avail_open = inst.Instance.bandwidth.(0);
    avail_guarded = 0.;
    waste = 0.;
    fed_open = 0;
    fed_guarded = 0;
  }

let step inst ~rate st letter =
  let b = inst.Instance.bandwidth in
  match letter with
  | Instance.Guarded ->
    if st.fed_guarded >= inst.Instance.m then
      invalid_arg "Word.step: no guarded node left";
    (* A guarded node is fed entirely from open bandwidth (firewall
       constraint); its own bandwidth then becomes available as guarded
       supply. *)
    if not (Util.fge st.avail_open rate) then None
    else
      Some
        {
          st with
          avail_open = st.avail_open -. rate;
          avail_guarded =
            st.avail_guarded +. b.(inst.Instance.n + st.fed_guarded + 1);
          fed_guarded = st.fed_guarded + 1;
        }
  | Instance.Open ->
    if st.fed_open >= inst.Instance.n then invalid_arg "Word.step: no open node left";
    (* Conservative rule (Lemma 4.3): drain guarded supply first; the
       shortfall comes from open supply and counts as waste W. *)
    if not (Util.fge (st.avail_open +. st.avail_guarded) rate) then None
    else begin
      let from_open = Float.max 0. (rate -. st.avail_guarded) in
      Some
        {
          avail_open = st.avail_open +. b.(st.fed_open + 1) -. from_open;
          avail_guarded = Float.max 0. (st.avail_guarded -. rate);
          waste = st.waste +. from_open;
          fed_open = st.fed_open + 1;
          fed_guarded = st.fed_guarded;
        }
    end

let check_sorted inst =
  if not (Instance.sorted inst) then invalid_arg "Word: instance must be sorted"

let run inst ~rate w =
  check_sorted inst;
  if not (complete w inst) then invalid_arg "Word.run: incomplete word";
  let rec go st k acc =
    if k = length w then Some (List.rev acc)
    else
      match step inst ~rate st w.(k) with
      | None -> None
      | Some st' -> go st' (k + 1) (st' :: acc)
  in
  go (initial_state inst) 0 [ initial_state inst ]

let feasible inst ~rate w =
  check_sorted inst;
  if not (complete w inst) then invalid_arg "Word.feasible: incomplete word";
  let rec go st k =
    k = length w
    ||
    match step inst ~rate st w.(k) with None -> false | Some st' -> go st' (k + 1)
  in
  go (initial_state inst) 0

(* Closed form for an arbitrary receiver sequence. Unfolding
   W(rho) = max (0, max over open-ending prefixes tau of
                     i_tau * T - Bg(j_tau))
   in the validity conditions O(rho) >= T (before a guarded letter) and
   O(rho) + G(rho) >= T (before an open letter) turns every condition into
   an upper bound on T of the form (bandwidth sum) / (integer). *)
let sequence_throughput ~b0 receivers =
  let best = ref infinity in
  let consider num den = if den > 0 then best := Float.min !best (num /. float_of_int den) in
  (* taus: list of (i_tau, Bg(j_tau)) for open-ending prefixes seen so far. *)
  let rec go bo bg i j taus = function
    | [] -> ()
    | (cls, bw) :: rest -> begin
      match cls with
      | Instance.Guarded ->
        (* O(rho) >= T with rho = current prefix:
           b0 + Bo(i) - j T - W(rho) >= T. *)
        consider (b0 +. bo) (j + 1);
        List.iter (fun (i_tau, bg_tau) -> consider (b0 +. bo +. bg_tau) (1 + j + i_tau)) taus;
        go bo (bg +. bw) i (j + 1) taus rest
      | Instance.Open ->
        (* O(rho) + G(rho) >= T: the W terms cancel. *)
        consider (b0 +. bo +. bg) (i + j + 1);
        go (bo +. bw) bg (i + 1) j ((i + 1, bg) :: taus) rest
    end
  in
  go 0. 0. 0 0 [] receivers;
  !best

let receivers_of_word inst w =
  let b = inst.Instance.bandwidth in
  let next_open = ref 1 and next_guarded = ref (inst.Instance.n + 1) in
  Array.to_list w
  |> List.map (fun cls ->
         match cls with
         | Instance.Open ->
           let bw = b.(!next_open) in
           incr next_open;
           (cls, bw)
         | Instance.Guarded ->
           let bw = b.(!next_guarded) in
           incr next_guarded;
           (cls, bw))

let optimal_throughput_closed_form inst w =
  check_sorted inst;
  if not (complete w inst) then
    invalid_arg "Word.optimal_throughput_closed_form: incomplete word";
  sequence_throughput ~b0:inst.Instance.bandwidth.(0) (receivers_of_word inst w)

let optimal_throughput inst w =
  check_sorted inst;
  if not (complete w inst) then invalid_arg "Word.optimal_throughput: incomplete word";
  if length w = 0 then infinity
  else begin
    let hi = Bounds.cyclic_upper inst in
    if hi <= 0. then 0.
    else Util.dichotomic_max ~lo:0. ~hi (fun rate ->
        rate <= 0. || feasible inst ~rate w)
  end

let omega1 ~n ~m =
  if n < 0 || m < 0 then invalid_arg "Word.omega1";
  if n = 0 then Array.make m Instance.Guarded
  else begin
    let body = ref [] in
    for i = n downto 1 do
      let ai = (i * m / n) - ((i - 1) * m / n) in
      body := (Instance.Open :: List.init ai (fun _ -> Instance.Guarded)) @ !body
    done;
    Array.of_list !body
  end

let omega2 ~n ~m =
  if n < 0 || m < 0 then invalid_arg "Word.omega2";
  if m = 0 then Array.make n Instance.Open
  else begin
    let ceil_div a b = (a + b - 1) / b in
    let body = ref [] in
    for i = m downto 1 do
      let bi = ceil_div (i * n) m - ceil_div ((i - 1) * n) m in
      body := (Instance.Guarded :: List.init bi (fun _ -> Instance.Open)) @ !body
    done;
    Array.of_list !body
  end

let binomial n k =
  let k = min k (n - k) in
  if k < 0 then 0
  else begin
    let acc = ref 1 in
    for i = 1 to k do
      acc := !acc * (n - k + i) / i
    done;
    !acc
  end

let enumerate ~n ~m =
  if n < 0 || m < 0 then invalid_arg "Word.enumerate";
  if n + m > 50 || binomial (n + m) m > 2_000_000 then
    invalid_arg "Word.enumerate: too many words";
  let rec go n m =
    if n = 0 && m = 0 then [ [] ]
    else
      let with_open =
        if n > 0 then List.map (fun w -> Instance.Open :: w) (go (n - 1) m) else []
      in
      let with_guarded =
        if m > 0 then List.map (fun w -> Instance.Guarded :: w) (go n (m - 1)) else []
      in
      with_open @ with_guarded
  in
  List.map Array.of_list (go n m)
