open Platform

type report = {
  bandwidth_ok : bool;
  firewall_ok : bool;
  bin_ok : bool;
  source_receives : bool;
  acyclic : bool;
  throughput : float;
}

let check ?(eps = Util.eps) inst g =
  let size = Instance.size inst in
  if Flowgraph.Graph.node_count g <> size then
    invalid_arg "Verify.check: node count mismatch";
  let b = inst.Instance.bandwidth in
  let bandwidth_ok = ref true and firewall_ok = ref true in
  for i = 0 to size - 1 do
    if not (Util.fle ~eps (Flowgraph.Graph.out_weight g i) b.(i)) then
      bandwidth_ok := false
  done;
  Flowgraph.Graph.iter_edges
    (fun ~src ~dst _w ->
      if Instance.is_guarded inst src && Instance.is_guarded inst dst then
        firewall_ok := false)
    g;
  let bin_ok =
    match inst.Instance.bin with
    | None -> true
    | Some caps ->
      let ok = ref true in
      for i = 0 to size - 1 do
        if not (Util.fle ~eps (Flowgraph.Graph.in_weight g i) caps.(i)) then
          ok := false
      done;
      !ok
  in
  let source_receives = Flowgraph.Graph.in_edges g 0 <> [] in
  let acyclic = Flowgraph.Topo.is_acyclic g in
  let throughput =
    if size = 1 then infinity else Flowgraph.Maxflow.min_broadcast_flow g ~src:0
  in
  {
    bandwidth_ok = !bandwidth_ok;
    firewall_ok = !firewall_ok;
    bin_ok;
    source_receives;
    acyclic;
    throughput;
  }

let valid ?eps inst g =
  let r = check ?eps inst g in
  r.bandwidth_ok && r.firewall_ok && r.bin_ok

let achieves ?eps inst g ~rate =
  let r = check ?eps inst g in
  r.bandwidth_ok && r.firewall_ok && r.bin_ok
  && Util.fge ~eps:1e-6 r.throughput rate
