(** A built broadcast overlay: the instance it was computed for, the target
    rate, a topological order of the nodes and the communication graph,
    bundled so that dynamic operations (the churn handling of {!Repair})
    can reason about all four consistently.

    Fresh overlays come from the Theorem 4.1 pipeline; repaired overlays
    keep the same shape but their order is no longer necessarily an
    increasing-order word (nodes joined under churn are appended last). *)

type t = {
  instance : Platform.Instance.t;  (** sorted instance *)
  rate : float;  (** target rate the graph was built for *)
  order : int array;
      (** topological order of the scheme: [order.(0) = 0] (the source),
          then every other node exactly once; every edge goes forward *)
  graph : Flowgraph.Graph.t;
}

val build : ?rate:float -> Platform.Instance.t -> t
(** [build inst] computes the optimal low-degree acyclic overlay
    (Theorem 4.1 pipeline); [rate] forces a sub-optimal target (must be
    feasible, or [Invalid_argument] is raised). The instance must be
    sorted. *)

val verified_rate : t -> float
(** Max-flow throughput of the graph (the honest number after repairs). *)

val positions : t -> int array
(** [pos] with [pos.(v)] the position of node [v] in [order]. *)

val well_formed : t -> bool
(** Structural sanity: order is a permutation starting at the source, all
    edges go forward in it, and the graph respects bandwidth and firewall
    constraints. *)

val edge_distance : Flowgraph.Graph.t -> Flowgraph.Graph.t -> int
(** Number of edge insertions, deletions and re-weightings (beyond a 1e-9
    relative tolerance) separating two graphs — the churn cost of moving a
    live swarm from one overlay to another, every change being a TCP
    connection to open, close or re-shape. *)
