open Platform
module Q = Rational.Q

type receiver = Instance.node_class * Q.t

let of_instance ?max_den inst =
  let conv x = Q.of_float_approx ?max_den x in
  let b = inst.Instance.bandwidth in
  let receivers =
    List.init
      (Instance.size inst - 1)
      (fun k ->
        let v = k + 1 in
        (Instance.node_class inst v, conv b.(v)))
  in
  (conv b.(0), receivers)

(* One conservative step over exact state (avail_open, avail_guarded,
   waste); [None] when the node cannot be fed. *)
let step ~rate (o, g, w) (cls, bw) =
  match cls with
  | Instance.Guarded ->
    if Q.(o < rate) then None else Some (Q.sub o rate, Q.add g bw, w)
  | Instance.Open ->
    if Q.(Q.add o g < rate) then None
    else begin
      let from_open = Q.max Q.zero (Q.sub rate g) in
      Some
        ( Q.sub (Q.add o bw) from_open,
          Q.max Q.zero (Q.sub g rate),
          Q.add w from_open )
    end

let accounting ~b0 ~rate receivers =
  if Q.(rate <= zero) then invalid_arg "Exact_q: rate must be positive";
  let rec go st acc = function
    | [] -> Some (List.rev acc)
    | r :: rest -> begin
      match step ~rate st r with
      | None -> None
      | Some st' -> go st' (st' :: acc) rest
    end
  in
  go (b0, Q.zero, Q.zero) [] receivers

let feasible ~b0 ~rate receivers = accounting ~b0 ~rate receivers <> None

let sequence_throughput ~b0 receivers =
  (* Mirror of Word.sequence_throughput, exactly. *)
  let best = ref None in
  let consider num den =
    if den > 0 then begin
      let candidate = Q.div num (Q.of_int den) in
      match !best with
      | Some b when Q.(b <= candidate) -> ()
      | _ -> best := Some candidate
    end
  in
  let rec go bo bg i j taus = function
    | [] -> ()
    | (cls, bw) :: rest -> begin
      match cls with
      | Instance.Guarded ->
        consider (Q.add b0 bo) (j + 1);
        List.iter
          (fun (i_tau, bg_tau) ->
            consider (Q.add (Q.add b0 bo) bg_tau) (1 + j + i_tau))
          taus;
        go bo (Q.add bg bw) i (j + 1) taus rest
      | Instance.Open ->
        consider (Q.add (Q.add b0 bo) bg) (i + j + 1);
        go (Q.add bo bw) bg (i + 1) j ((i + 1, bg) :: taus) rest
    end
  in
  go Q.zero Q.zero 0 0 [] receivers;
  match !best with
  | None -> invalid_arg "Exact_q.sequence_throughput: empty sequence"
  | Some t -> t

let receivers_of_word ~opens ~guardeds word =
  let opens = ref opens and guardeds = ref guardeds in
  Array.to_list word
  |> List.map (fun cls ->
         match cls with
         | Instance.Open -> begin
           match !opens with
           | bw :: rest ->
             opens := rest;
             (cls, bw)
           | [] -> invalid_arg "Exact_q: word needs more open nodes"
         end
         | Instance.Guarded -> begin
           match !guardeds with
           | bw :: rest ->
             guardeds := rest;
             (cls, bw)
           | [] -> invalid_arg "Exact_q: word needs more guarded nodes"
         end)

let optimal_acyclic ~b0 ~opens ~guardeds =
  let non_increasing l =
    let rec go = function
      | a :: (b :: _ as rest) -> Q.(b <= a) && go rest
      | _ -> true
    in
    go l
  in
  if not (non_increasing opens && non_increasing guardeds) then
    invalid_arg "Exact_q.optimal_acyclic: bandwidths must be sorted non-increasing";
  let words = Word.enumerate ~n:(List.length opens) ~m:(List.length guardeds) in
  match words with
  | [] -> invalid_arg "Exact_q.optimal_acyclic: empty instance"
  | first :: _ ->
    List.fold_left
      (fun (best_t, best_w) w ->
        let t = sequence_throughput ~b0 (receivers_of_word ~opens ~guardeds w) in
        if Q.(t > best_t) then (t, w) else (best_t, best_w))
      ( sequence_throughput ~b0 (receivers_of_word ~opens ~guardeds first),
        first )
      words
