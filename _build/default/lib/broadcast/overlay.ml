open Platform

type t = {
  instance : Instance.t;
  rate : float;
  order : int array;
  graph : Flowgraph.Graph.t;
}

let of_word inst ~rate word =
  {
    instance = inst;
    rate;
    order = Word.to_order word inst;
    graph = Low_degree.build inst ~rate word;
  }

let build ?rate inst =
  match rate with
  | None ->
    let t, w = Greedy.optimal_acyclic inst in
    let rate = t *. (1. -. (4. *. Util.eps)) in
    (* Re-derive the witness at the backed-off rate so word and rate are
       mutually consistent. *)
    let word = match Greedy.test inst ~rate with Some w' -> w' | None -> w in
    of_word inst ~rate word
  | Some rate -> begin
    match Greedy.test inst ~rate with
    | None -> invalid_arg "Overlay.build: rate is not feasible"
    | Some word -> of_word inst ~rate word
  end

let verified_rate t =
  if Instance.size t.instance <= 1 then infinity
  else Flowgraph.Maxflow.min_broadcast_flow t.graph ~src:0

let positions t =
  let pos = Array.make (Array.length t.order) (-1) in
  Array.iteri (fun i v -> pos.(v) <- i) t.order;
  pos

let well_formed t =
  let size = Instance.size t.instance in
  Array.length t.order = size
  && t.order.(0) = 0
  && begin
    let seen = Array.make size false in
    Array.for_all
      (fun v ->
        v >= 0 && v < size
        &&
        if seen.(v) then false
        else begin
          seen.(v) <- true;
          true
        end)
      t.order
  end
  && begin
    let pos = positions t in
    Flowgraph.Graph.fold_edges
      (fun ~src ~dst _w ok -> ok && pos.(src) < pos.(dst))
      t.graph true
  end
  && Verify.valid t.instance t.graph

let edge_distance a b =
  let eps = 1e-9 in
  let differs w w' = Float.abs (w -. w') > eps *. Float.max 1. (Float.max w w') in
  let count = ref 0 in
  Flowgraph.Graph.iter_edges
    (fun ~src ~dst w ->
      if differs w (Flowgraph.Graph.edge_weight b ~src ~dst) then incr count)
    a;
  (* Edges present only in b. *)
  Flowgraph.Graph.iter_edges
    (fun ~src ~dst _w ->
      if Flowgraph.Graph.edge_weight a ~src ~dst = 0. then incr count)
    b;
  !count
