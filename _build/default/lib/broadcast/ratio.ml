open Platform

type comparison = {
  cyclic : float;
  acyclic : float;
  omega_best : float;
  proof_word : float;
  word : Word.t;
}

let compare_instance inst =
  let n = inst.Instance.n and m = inst.Instance.m in
  if n + m < 1 then invalid_arg "Ratio.compare_instance: no receiver";
  let cyclic = Bounds.cyclic_upper inst in
  let acyclic, word = Greedy.optimal_acyclic inst in
  let w1 = Word.omega1 ~n ~m and w2 = Word.omega2 ~n ~m in
  let t1 = Word.optimal_throughput inst w1 in
  let t2 = Word.optimal_throughput inst w2 in
  let proof_word =
    (* Theorem 6.2's case analysis keys on the (homogenized) open
       bandwidth o against T* (=1 for tight instances): omega1 when open
       nodes are individually strong enough, omega2 otherwise. *)
    if n = 0 then t2
    else begin
      let mean_open = Instance.open_sum inst /. float_of_int n in
      if mean_open >= cyclic then t1 else t2
    end
  in
  { cyclic; acyclic; omega_best = Float.max t1 t2; proof_word; word }

let ratio c = if c.cyclic <= 0. then 1. else c.acyclic /. c.cyclic

let five_sevenths_instance ~epsilon =
  if epsilon <= 0. || epsilon >= 0.5 then
    invalid_arg "Ratio.five_sevenths_instance: need 0 < epsilon < 1/2";
  Instance.create
    ~bandwidth:[| 1.; 1. +. (2. *. epsilon); 0.5 -. epsilon; 0.5 -. epsilon |]
    ~n:1 ~m:2 ()

let sigma1_throughput ~epsilon = 2. /. 3. *. (1. +. epsilon)
let sigma2_throughput ~epsilon = 0.75 -. (epsilon /. 2.)

let sqrt41_alpha = (sqrt 41. -. 3.) /. 8.

let sqrt41_instance ~k ?(max_den = 40) () =
  if k < 1 then invalid_arg "Ratio.sqrt41_instance: need k >= 1";
  let q_alpha = Rational.Q.of_float_approx ~max_den sqrt41_alpha in
  let p = q_alpha.Rational.Q.num and q = q_alpha.Rational.Q.den in
  let alpha = Rational.Q.to_float q_alpha in
  let n = k * q and m = k * p in
  let inst =
    Instance.homogeneous ~n ~m ~b0:1. ~bopen:alpha ~bguarded:(1. /. alpha)
  in
  (inst, alpha)

let sqrt41_acyclic_upper ~alpha =
  if alpha <= 0. || alpha >= 1. then
    invalid_arg "Ratio.sqrt41_acyclic_upper: need 0 < alpha < 1";
  let f x = ((alpha *. float_of_int x) +. 1.) /. 2. in
  let g x =
    ((alpha *. float_of_int x) +. (1. /. alpha) +. 1.) /. float_of_int (x + 2)
  in
  let x_lo = int_of_float (Float.floor (1. /. alpha)) in
  let x_hi = int_of_float (Float.ceil (1. /. alpha)) in
  Float.max (f x_lo) (g x_hi)

let open_only_lower_bound ~n =
  if n < 1 then invalid_arg "Ratio.open_only_lower_bound: need n >= 1";
  1. -. (1. /. float_of_int n)

let guarded_lower_bound = 5. /. 7.
