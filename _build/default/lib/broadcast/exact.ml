open Platform

let order_throughput inst sigma =
  let total = inst.Instance.n + inst.Instance.m in
  if Array.length sigma <> total then
    invalid_arg "Exact.order_throughput: order must list all non-source nodes";
  let seen = Array.make (Instance.size inst) false in
  let receivers =
    Array.to_list sigma
    |> List.map (fun v ->
           if v < 1 || v > total then
             invalid_arg "Exact.order_throughput: node out of range";
           if seen.(v) then invalid_arg "Exact.order_throughput: duplicate node";
           seen.(v) <- true;
           (Instance.node_class inst v, inst.Instance.bandwidth.(v)))
  in
  Word.sequence_throughput ~b0:inst.Instance.bandwidth.(0) receivers

let optimal_acyclic_words inst =
  if not (Instance.sorted inst) then
    invalid_arg "Exact.optimal_acyclic_words: instance must be sorted";
  let words = Word.enumerate ~n:inst.Instance.n ~m:inst.Instance.m in
  match words with
  | [] -> invalid_arg "Exact.optimal_acyclic_words: empty instance"
  | first :: _ ->
    List.fold_left
      (fun (best_t, best_w) w ->
        let t = Word.optimal_throughput_closed_form inst w in
        if t > best_t then (t, w) else (best_t, best_w))
      (neg_infinity, first) words

(* All permutations of a list, in no particular order. *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

let optimal_acyclic_orders inst =
  let total = inst.Instance.n + inst.Instance.m in
  if total > 8 then invalid_arg "Exact.optimal_acyclic_orders: instance too large";
  if total = 0 then invalid_arg "Exact.optimal_acyclic_orders: empty instance";
  let orders = permutations (List.init total (fun k -> k + 1)) in
  List.fold_left
    (fun (best_t, best_o) order ->
      let sigma = Array.of_list order in
      let t = order_throughput inst sigma in
      if t > best_t then (t, sigma) else (best_t, best_o))
    (neg_infinity, [||]) orders
