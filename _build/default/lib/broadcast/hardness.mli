(** NP-completeness and unbounded-degree gadgets (Theorem 3.1, Figure 6).

    Theorem 3.1 reduces 3-PARTITION to degree-constrained optimal
    broadcast: given [3p] integers [a i] with [sum = p T] and
    [T/4 < a i < T/2], a scheme of throughput [T] in which every node
    keeps its outdegree at the lower bound [ceil (b i / T)] exists iff the
    integers can be partitioned into [p] triples each summing to [T]. This
    module builds the reduction instance (Figure 8), solves small
    3-PARTITION instances exactly, and converts a partition into the
    witness scheme.

    Figure 6's family shows the cyclic/guarded case needs unbounded
    degrees: source bandwidth [1], one open node of bandwidth [m - 1], and
    [m] guarded nodes of bandwidth [1/m] each force source outdegree [m]
    in any optimal (throughput-1) scheme, against a degree lower bound of
    [ceil (b0 / T)] which equals [1]. *)

(** {1 3-PARTITION} *)

val three_partition : int array -> (int * int * int) list option
(** [three_partition a] partitions the [3 p] values into triples of equal
    sum [sum a / p] (returning index triples), or [None]. Backtracking
    search — exponential in the worst case, fine for gadget-size inputs.
    Raises [Invalid_argument] when the length is not a positive multiple
    of 3 or the sum is not divisible by [p]. *)

val reduction : int array -> Platform.Instance.t * float
(** [reduction a] is the broadcast instance of the proof (all nodes open):
    source [3 p T], intermediate nodes [a i] sorted non-increasing, [p]
    final nodes of bandwidth [0]; paired with the target throughput
    [T = sum a / p]. Requires the 3-PARTITION side conditions
    [T/4 < a i < T/2]. *)

val scheme_of_partition :
  int array -> (int * int * int) list -> Flowgraph.Graph.t
(** [scheme_of_partition a triples] is the witness scheme on
    [reduction a]'s instance: the source feeds every intermediate node at
    rate [T]; the three intermediates of triple [j] feed final node [j] at
    their full bandwidth. Indices in [triples] refer to the {e sorted}
    bandwidth order used by {!reduction}. The scheme achieves throughput
    [T] with every outdegree exactly [ceil (b i / T)]. *)

(** {1 Unbounded degree (Figure 6)} *)

val unbounded_degree_instance : m:int -> Platform.Instance.t
(** Requires [m >= 2]. Cyclic optimum [T* = 1]. *)

val unbounded_degree_scheme : m:int -> Flowgraph.Graph.t
(** The optimal cyclic scheme: source sends [1/m] to every guarded node,
    the open node sends [(m-1)/m] to every guarded node, every guarded
    node sends its full [1/m] to the open node. Throughput [1], source
    outdegree [m]. *)
