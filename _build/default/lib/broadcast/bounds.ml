open Platform

let cyclic_upper inst =
  let b0 = inst.Instance.bandwidth.(0) in
  let o = Instance.open_sum inst and g = Instance.guarded_sum inst in
  let n = inst.Instance.n and m = inst.Instance.m in
  let bound = ref b0 in
  if m > 0 then bound := Float.min !bound ((b0 +. o) /. float_of_int m);
  if n + m > 0 then
    bound := Float.min !bound ((b0 +. o +. g) /. float_of_int (n + m));
  !bound

let cyclic_open_optimal inst =
  if inst.Instance.m <> 0 then
    invalid_arg "Bounds.cyclic_open_optimal: instance has guarded nodes";
  cyclic_upper inst

let acyclic_open_optimal inst =
  if inst.Instance.m <> 0 then
    invalid_arg "Bounds.acyclic_open_optimal: instance has guarded nodes";
  let n = inst.Instance.n in
  if n < 1 then invalid_arg "Bounds.acyclic_open_optimal: need n >= 1";
  if not (Instance.sorted inst) then
    invalid_arg "Bounds.acyclic_open_optimal: instance must be sorted";
  let b = inst.Instance.bandwidth in
  (* S_(n-1) = b0 + ... + b_(n-1): every node except the last one (which
     can stay a leaf) contributes. *)
  let s = ref 0. in
  for i = 0 to n - 1 do
    s := !s +. b.(i)
  done;
  Float.min b.(0) (!s /. float_of_int n)

let degree_lower_bound inst ~t i =
  Util.ceil_ratio inst.Instance.bandwidth.(i) t
