(** Acyclic-versus-cyclic throughput comparison (Section VI).

    The paper proves [T*ac / T* >= 1 - 1/n] without guarded nodes
    (Theorem 6.1), a tight [5/7] worst case with guarded nodes
    (Theorem 6.2), and an asymptotic gap at [(1 + sqrt 41) / 8 ~ 0.925]
    (Theorem 6.3). This module builds the extremal gadgets and computes
    the ratio on arbitrary instances — the machinery behind Figures 7, 18
    and 19. *)

type comparison = {
  cyclic : float;  (** closed-form optimal cyclic throughput (Lemma 5.1) *)
  acyclic : float;  (** optimal acyclic throughput (Greedy + dichotomy) *)
  omega_best : float;
      (** best of [T*ac(omega1)] and [T*ac(omega2)] — the distributed-
          friendly schemes of Appendix XII (blue curves) *)
  proof_word : float;
      (** [T*ac] of the single word used in Theorem 6.2's case analysis
          (red curves): [omega1] when the mean open bandwidth is at least
          the cyclic optimum, [omega2] otherwise *)
  word : Word.t;  (** witness word for [acyclic] *)
}

val compare_instance : Platform.Instance.t -> comparison
(** Requires a sorted instance with at least one non-source node. *)

val ratio : comparison -> float
(** [acyclic / cyclic], [1.] when both are zero. *)

(** {1 Extremal gadgets} *)

val five_sevenths_instance : epsilon:float -> Platform.Instance.t
(** Theorem 6.2's tight gadget: source [1], one open node [1 + 2 eps], two
    guarded nodes [1/2 - eps]. Its cyclic optimum is [1]; at
    [epsilon = 1/14] both orderings [sigma1 = 0123] and [sigma2 = 0213]
    achieve exactly [T*ac = 5/7]. *)

val sigma1_throughput : epsilon:float -> float
(** [T*ac(sigma1) = 2/3 (1 + eps)] — closed form from the paper. *)

val sigma2_throughput : epsilon:float -> float
(** [T*ac(sigma2) = 3/4 - eps/2]. *)

val sqrt41_alpha : float
(** [(sqrt 41 - 3) / 8 ~ 0.42539] — the bandwidth ratio of Theorem 6.3's
    family. *)

val sqrt41_instance : k:int -> ?max_den:int -> unit -> Platform.Instance.t * float
(** [(instance, alpha)] — the family [I(alpha, k)] of Theorem 6.3 with
    [alpha = p/q] the best rational approximation of {!sqrt41_alpha} with
    denominator at most [max_den] (default 40, giving [17/40]): source
    [1], [k q] open nodes of bandwidth [alpha], [k p] guarded nodes of
    bandwidth [1/alpha]. Its cyclic optimum is [1]; its acyclic optimum
    approaches [(1 + sqrt 41) / 8 ~ 0.925] and never reaches [1]. *)

val sqrt41_acyclic_upper : alpha:float -> float
(** The paper's bound [max (f_alpha (floor (1/alpha)),
    g_alpha (ceil (1/alpha)))] with [f_alpha x = (alpha x + 1) / 2] and
    [g_alpha x = (alpha x + 1/alpha + 1) / (x + 2)] — an upper bound on
    [T*ac] for the family, independent of [k]. *)

(** {1 Worst-case guarantees under test} *)

val open_only_lower_bound : n:int -> float
(** Theorem 6.1: [1 - 1/n]. *)

val guarded_lower_bound : float
(** Theorem 6.2: [5/7]. *)
