(** Exhaustive-search oracles.

    These are deliberately brute-force reference implementations used to
    validate the polynomial algorithms on small instances:

    - {!optimal_acyclic_words} maximizes [T*ac(pi)] over {e all} encoding
      words — exact by Lemma 4.2 (increasing orders dominate);
    - {!optimal_acyclic_orders} maximizes over {e all} node orderings,
      including non-increasing ones — validating Lemma 4.2 itself;
    - {!order_throughput} evaluates a single arbitrary ordering via the
      conservative closed form (exact by Lemma 4.3: conservative solutions
      dominate for every fixed order). *)

val order_throughput : Platform.Instance.t -> int array -> float
(** [order_throughput inst sigma] is [T*ac(sigma)] for an arbitrary
    permutation [sigma] of the non-source nodes [1 .. n+m] (the source is
    implicitly first). Does not require the instance to be sorted. *)

val optimal_acyclic_words : Platform.Instance.t -> float * Word.t
(** Maximum of [T*ac(w)] over all [C(n+m, m)] words, with a witness.
    Requires a sorted instance; inherits {!Word.enumerate}'s size limit. *)

val optimal_acyclic_orders : Platform.Instance.t -> float * int array
(** Maximum of [T*ac(sigma)] over all [(n+m)!] orderings, with a witness.
    Raises [Invalid_argument] beyond [n + m > 8]. *)
