(** Bandwidth distributions used in the paper's average-case study
    (Appendix XII): uniform, power-law (Pareto), and log-normal, each
    parameterized by mean and standard deviation exactly as the paper
    states them, plus sampling from an arbitrary empirical pool (the
    PlanetLab substitute).

    All samplers draw from a {!Splitmix.t} stream, so experiments are
    deterministic given the seed. *)

type t =
  | Uniform of { lo : float; hi : float }
      (** Uniform on [\[lo, hi\]]. The paper's [Unif100] is
          [Uniform {lo = 1.; hi = 100.}]. *)
  | Pareto of { mean : float; std : float }
      (** Pareto (type I power law) with prescribed mean and standard
          deviation. [Power1] is mean 100 / std 100; [Power2] is mean 100 /
          std 1000. *)
  | Lognormal of { mean : float; std : float }
      (** Log-normal with prescribed mean and standard deviation. [LN1] is
          100/100, [LN2] is 100/1000. *)
  | Empirical of float array
      (** Uniform sampling with replacement from a pool of observed values
          (the paper's [PLab] scenario). The array must be non-empty. *)

val sample : t -> Splitmix.t -> float
(** [sample d rng] draws one value from [d]. All samples are strictly
    positive for the built-in parameterizations. *)

val sampler : t -> Splitmix.t -> float
(** Staged form of {!sample}: [let draw = sampler d] precomputes the
    distribution's derived parameters (Pareto shape/scale, log-normal
    mu/sigma) once, so per-draw cost is a couple of arithmetic operations.
    [sampler d rng] and [sample d rng] consume identical randomness and
    return identical values. Prefer this in sampling loops. *)

val sample_many : t -> Splitmix.t -> int -> float array
(** [sample_many d rng k] draws [k] independent values. *)

val name : t -> string
(** Short display name, matching the paper's labels where applicable
    ([Unif\[1,100\]], [Pareto(100,100)], ...). *)

val mean : t -> float
(** Theoretical (or pool) mean of the distribution. *)

(** {1 Paper presets} *)

val unif100 : t
val power1 : t
val power2 : t
val ln1 : t
val ln2 : t

(** {1 Low-level samplers} *)

val gaussian : Splitmix.t -> float
(** Standard normal via Box–Muller (one value per call; the spare is
    discarded to keep the stream usage deterministic per call). *)

val pareto_params : mean:float -> std:float -> float * float
(** [pareto_params ~mean ~std] returns [(alpha, x_m)], the shape and scale of
    the Pareto type-I law with the given first two moments. Requires
    [std > 0] (the shape solves [alpha (alpha - 2) = (mean/std)^2]... i.e.
    [alpha = 1 + sqrt (1 + (mean/std)^2)], which always exceeds 2, so the
    variance is finite). *)

val lognormal_params : mean:float -> std:float -> float * float
(** [lognormal_params ~mean ~std] returns [(mu, sigma)] of the underlying
    normal law. *)
