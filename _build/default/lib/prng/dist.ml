type t =
  | Uniform of { lo : float; hi : float }
  | Pareto of { mean : float; std : float }
  | Lognormal of { mean : float; std : float }
  | Empirical of float array

let gaussian rng =
  (* Box-Muller; guard against log 0 by excluding u1 = 0. *)
  let rec positive () =
    let u = Splitmix.next_float rng in
    if u > 0. then u else positive ()
  in
  let u1 = positive () and u2 = Splitmix.next_float rng in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let pareto_params ~mean ~std =
  if std <= 0. then invalid_arg "Dist.pareto_params: std must be positive";
  let r = mean /. std in
  (* Moments of Pareto(alpha, x_m): mean = alpha x_m / (alpha - 1),
     var / mean^2 = 1 / (alpha (alpha - 2)); solving
     alpha^2 - 2 alpha - r^2 = 0 for alpha > 2. *)
  let alpha = 1. +. sqrt (1. +. (r *. r)) in
  let x_m = mean *. (alpha -. 1.) /. alpha in
  (alpha, x_m)

let lognormal_params ~mean ~std =
  if mean <= 0. then invalid_arg "Dist.lognormal_params: mean must be positive";
  let sigma2 = log (1. +. ((std /. mean) ** 2.)) in
  let mu = log mean -. (sigma2 /. 2.) in
  (mu, sqrt sigma2)

(* Staged sampling: derived parameters are computed once when the
   distribution is fixed, not per draw. *)
let sampler d =
  match d with
  | Uniform { lo; hi } ->
    let span = hi -. lo in
    fun rng -> lo +. (span *. Splitmix.next_float rng)
  | Pareto { mean; std } ->
    let alpha, x_m = pareto_params ~mean ~std in
    let inv_alpha = -1. /. alpha in
    fun rng ->
      let rec u () =
        let v = Splitmix.next_float rng in
        if v < 1. then v else u ()
      in
      x_m *. ((1. -. u ()) ** inv_alpha)
  | Lognormal { mean; std } ->
    let mu, sigma = lognormal_params ~mean ~std in
    fun rng -> exp (mu +. (sigma *. gaussian rng))
  | Empirical pool ->
    if Array.length pool = 0 then invalid_arg "Dist.sample: empty pool";
    fun rng -> pool.(Splitmix.next_below rng (Array.length pool))

let sample d rng = sampler d rng

let sample_many d rng k =
  let draw = sampler d in
  Array.init k (fun _ -> draw rng)

let name = function
  | Uniform { lo; hi } -> Printf.sprintf "Unif[%g,%g]" lo hi
  | Pareto { mean; std } -> Printf.sprintf "Pareto(%g,%g)" mean std
  | Lognormal { mean; std } -> Printf.sprintf "LogNormal(%g,%g)" mean std
  | Empirical _ -> "Empirical"

let mean = function
  | Uniform { lo; hi } -> (lo +. hi) /. 2.
  | Pareto { mean; _ } | Lognormal { mean; _ } -> mean
  | Empirical pool ->
    Array.fold_left ( +. ) 0. pool /. float_of_int (Array.length pool)

let unif100 = Uniform { lo = 1.; hi = 100. }
let power1 = Pareto { mean = 100.; std = 100. }
let power2 = Pareto { mean = 100.; std = 1000. }
let ln1 = Lognormal { mean = 100.; std = 100. }
let ln2 = Lognormal { mean = 100.; std = 1000. }
