lib/prng/splitmix.mli:
