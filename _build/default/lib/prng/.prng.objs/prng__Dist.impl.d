lib/prng/dist.ml: Array Float Printf Splitmix
