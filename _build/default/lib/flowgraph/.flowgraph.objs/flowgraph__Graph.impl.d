lib/flowgraph/graph.ml: Array Float Format Hashtbl List Option
