lib/flowgraph/topo.mli: Graph
