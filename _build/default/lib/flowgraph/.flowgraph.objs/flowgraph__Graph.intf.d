lib/flowgraph/graph.mli: Format
