lib/flowgraph/maxflow.ml: Array Float Graph Hashtbl List Queue
