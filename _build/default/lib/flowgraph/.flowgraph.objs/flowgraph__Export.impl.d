lib/flowgraph/export.ml: Arborescence Array Buffer Graph List Printf
