lib/flowgraph/arborescence.ml: Array Float Graph List Topo
