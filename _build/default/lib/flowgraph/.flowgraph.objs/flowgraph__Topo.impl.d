lib/flowgraph/topo.ml: Array Graph List
