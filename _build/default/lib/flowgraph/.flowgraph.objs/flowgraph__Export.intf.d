lib/flowgraph/export.mli: Arborescence Graph
