lib/flowgraph/maxflow.mli: Graph
