lib/flowgraph/arborescence.mli: Graph
