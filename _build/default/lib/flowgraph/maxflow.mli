(** Maximum flow on float-capacity digraphs (Dinic's algorithm).

    The throughput of a broadcast scheme is
    [min over i of maxflow (C0 -> Ci)] on the weighted communication graph
    (paper, Section II-D); this module is the verification oracle behind
    that definition. Dinic runs in [O(V^2 E)] in general — far below what
    the test instances require — and capacities are floats, so a relative
    tolerance [eps] bounds the residual-capacity cutoff. *)

val max_flow : ?eps:float -> Graph.t -> src:int -> dst:int -> float
(** [max_flow g ~src ~dst] is the value of a maximum [src]-[dst] flow in
    [g], treating edge weights as capacities. [eps] (default [1e-12])
    is the smallest residual capacity considered usable. Requires
    [src <> dst]. The input graph is not modified. *)

val min_broadcast_flow : ?eps:float -> Graph.t -> src:int -> float
(** [min_broadcast_flow g ~src] is
    [min over all v <> src of max_flow g ~src ~dst:v] — the broadcast
    throughput of the scheme described by [g]. Returns [infinity] on a
    single-node graph. *)

val flow_assignment :
  ?eps:float -> Graph.t -> src:int -> dst:int -> float * Graph.t
(** [flow_assignment g ~src ~dst] additionally returns the flow itself as a
    graph (edge weight = flow routed on that edge), for callers that need a
    witness (e.g. decomposition into paths). *)
