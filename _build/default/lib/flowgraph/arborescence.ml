type tree = {
  weight : float;
  parent : int array;
}

let decompose ?(eps = 1e-6) g ~root =
  if not (Topo.is_acyclic g) then
    invalid_arg "Arborescence.decompose: graph has a cycle";
  let k = Graph.node_count g in
  if root < 0 || root >= k then invalid_arg "Arborescence.decompose: bad root";
  (* Determine the common rate T and the set of receiving nodes. *)
  let rate = ref None in
  for v = 0 to k - 1 do
    if v <> root then begin
      let w = Graph.in_weight g v in
      if w > eps then
        match !rate with
        | None -> rate := Some w
        | Some t ->
          if Float.abs (w -. t) > eps *. Float.max 1. t then
            invalid_arg
              "Arborescence.decompose: non-uniform in-weights (not a \
               constant-rate scheme)"
    end
  done;
  match !rate with
  | None -> []
  | Some t ->
    let remaining = Graph.copy g in
    let cutoff = eps *. Float.max 1. t in
    let trees = ref [] in
    let total = ref 0. in
    while t -. !total > cutoff do
      let parent = Array.make k (-1) in
      let weight = ref (t -. !total) in
      for v = 0 to k - 1 do
        if v <> root && Graph.in_weight g v > eps then begin
          (* Choose the heaviest remaining in-edge: a fair heuristic that
             keeps the number of trees small. *)
          let best = ref (-1) and best_w = ref 0. in
          List.iter
            (fun (u, w) ->
              if w > !best_w then begin
                best := u;
                best_w := w
              end)
            (Graph.in_edges remaining v);
          if !best < 0 then
            invalid_arg
              "Arborescence.decompose: a node ran out of incoming weight \
               (in-weights below the common rate)";
          parent.(v) <- !best;
          weight := Float.min !weight !best_w
        end
      done;
      Array.iteri
        (fun v u -> if u >= 0 then Graph.add_edge remaining ~src:u ~dst:v (-. !weight))
        parent;
      trees := { weight = !weight; parent } :: !trees;
      total := !total +. !weight
    done;
    List.rev !trees

let recompose trees ~node_count =
  let g = Graph.create node_count in
  List.iter
    (fun { weight; parent } ->
      Array.iteri
        (fun v u -> if u >= 0 then Graph.add_edge g ~src:u ~dst:v weight)
        parent)
    trees;
  g

let tree_depth { parent; _ } =
  let k = Array.length parent in
  let memo = Array.make k (-1) in
  let rec depth v =
    if memo.(v) >= 0 then memo.(v)
    else begin
      let d = if parent.(v) < 0 then 0 else 1 + depth parent.(v) in
      memo.(v) <- d;
      d
    end
  in
  let best = ref 0 in
  for v = 0 to k - 1 do
    if parent.(v) >= 0 then best := max !best (depth v)
  done;
  !best
