(** Decomposition of an acyclic broadcast scheme into weighted broadcast
    trees.

    The paper (Section II-C) notes that the weighted overlay "can be
    decomposed into a set of weighted broadcast trees" (Schrijver, vol. B,
    ch. 53), which specifies which data goes on which edge at each time
    step. For the acyclic schemes produced by the algorithms in this
    repository — where every non-source node receives flow at exactly the
    target rate [T] — the decomposition is computed greedily: repeatedly
    pick, for every non-source node, an incoming edge with remaining
    weight; in a DAG these choices always form an arborescence rooted at
    the source; peel off the minimum chosen weight and recurse. Each round
    zeroes at least one edge, so at most [edge_count] trees are produced. *)

type tree = {
  weight : float;  (** rate carried by this tree *)
  parent : int array;
      (** [parent.(v)] is the node feeding [v] in this tree; [-1] for the
          root (and for nodes outside the tree, which only happens if they
          receive no flow at all). *)
}

val decompose : ?eps:float -> Graph.t -> root:int -> tree list
(** [decompose g ~root] splits [g] into weighted arborescences covering all
    nodes with positive in-weight. Requires [g] acyclic and every
    non-[root] node's in-weight equal to the common rate [T] (within a
    [eps]-relative check, default [1e-6]); raises [Invalid_argument]
    otherwise. The returned weights sum to [T]. *)

val recompose : tree list -> node_count:int -> Graph.t
(** [recompose trees ~node_count] rebuilds the edge-weight graph implied by
    the trees (inverse of {!decompose}, up to float accumulation). *)

val tree_depth : tree -> int
(** Longest root-to-leaf hop count of the tree. *)
