(** Export of communication graphs for external tooling.

    A release-quality broadcast library must hand its overlays to other
    systems: visualization (Graphviz), deployment (a JSON description of
    which connections to open at which rate), and schedulers (the
    broadcast-tree decomposition as an explicit edge/tree table). All
    emitters are dependency-free string builders. *)

val to_dot :
  ?name:string ->
  ?node_label:(int -> string) ->
  ?node_class:(int -> string option) ->
  Graph.t ->
  string
(** [to_dot g] renders a Graphviz digraph: one node per vertex (labelled by
    [node_label], default ["C<i>"]) and one edge per positive-weight arc,
    labelled with its rate. [node_class] may return a style class:
    ["source"], ["open"], ["guarded"] get distinct shapes/colors, other
    strings are ignored. *)

val to_json : Graph.t -> string
(** [to_json g] is a compact JSON object
    [{"nodes": <count>, "edges": [{"src": i, "dst": j, "rate": w}, ...]}]
    with edges sorted by [(src, dst)] for reproducible output. *)

val schedule_to_json : Arborescence.tree list -> string
(** Renders a tree decomposition as JSON:
    [{"trees": [{"rate": w, "parent": [-1, 0, ...]}, ...]}] — the form a
    block-scheduler consumes (tree [k] carries the byte ranges congruent
    to its share of the rate). *)
