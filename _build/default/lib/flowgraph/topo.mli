(** Topological structure of communication graphs.

    A broadcast scheme is {e acyclic} iff its communication graph admits a
    topological order (Section II-D); these helpers implement that test and
    produce the witness order [sigma]. *)

val sort : Graph.t -> int array option
(** [sort g] is [Some order] where [order] lists all nodes such that every
    edge goes from an earlier to a later position, or [None] if [g] has a
    directed cycle. Kahn's algorithm; ties are broken by smallest node
    index, so the output is deterministic. *)

val is_acyclic : Graph.t -> bool

val find_cycle : Graph.t -> int list option
(** [find_cycle g] returns the node sequence of some directed cycle
    ([v1; v2; ...; vk] with edges [v1->v2 ... vk->v1]), or [None] if the
    graph is acyclic. *)

val depth_from : Graph.t -> int -> int array
(** [depth_from g root] is, for each node, the length (in hops) of the
    longest path from [root] following positive-weight edges, or [-1] for
    unreachable nodes. Requires the graph to be acyclic. This is the
    scheme-depth metric discussed in the paper's conclusion (delay
    minimization perspective). *)
