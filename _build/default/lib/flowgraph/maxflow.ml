(* Dinic's algorithm on an arena of forward/backward arc pairs. The arena
   is rebuilt per call from the input graph; verification workloads call
   max_flow O(size) times on O(size)-edge graphs, which stays cheap. *)

type arena = {
  (* arc i: head.(i) = destination, cap.(i) = residual capacity;
     arc i lxor 1 is its reverse. *)
  head : int array;
  cap : float array;
  adj : int list array;  (* arc indices leaving each node *)
  level : int array;
  arc_of_edge : (int * int, int) Hashtbl.t;
      (* forward-arc index of each original (src, dst) edge, recorded at
         build time so flow readback does not depend on iteration order *)
}

let build g =
  let k = Graph.node_count g in
  let arcs = Graph.edge_count g in
  let head = Array.make (2 * arcs) 0 in
  let cap = Array.make (2 * arcs) 0. in
  let adj = Array.make k [] in
  let arc_of_edge = Hashtbl.create arcs in
  let next = ref 0 in
  Graph.iter_edges
    (fun ~src ~dst w ->
      let a = !next in
      next := a + 2;
      head.(a) <- dst;
      cap.(a) <- w;
      head.(a + 1) <- src;
      cap.(a + 1) <- 0.;
      adj.(src) <- a :: adj.(src);
      adj.(dst) <- (a + 1) :: adj.(dst);
      Hashtbl.replace arc_of_edge (src, dst) a)
    g;
  { head; cap; adj; level = Array.make k (-1); arc_of_edge }

let bfs eps a ~src ~dst =
  Array.fill a.level 0 (Array.length a.level) (-1);
  a.level.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun arc ->
        let v = a.head.(arc) in
        if a.cap.(arc) > eps && a.level.(v) < 0 then begin
          a.level.(v) <- a.level.(u) + 1;
          Queue.add v q
        end)
      a.adj.(u)
  done;
  a.level.(dst) >= 0

(* Blocking flow by DFS with per-node arc cursors. *)
let rec dfs eps a cursors ~dst u pushed =
  if u = dst then pushed
  else
    match cursors.(u) with
    | [] -> 0.
    | arc :: rest ->
      let v = a.head.(arc) in
      if a.cap.(arc) > eps && a.level.(v) = a.level.(u) + 1 then begin
        let sent = dfs eps a cursors ~dst v (Float.min pushed a.cap.(arc)) in
        if sent > eps then begin
          a.cap.(arc) <- a.cap.(arc) -. sent;
          a.cap.(arc lxor 1) <- a.cap.(arc lxor 1) +. sent;
          sent
        end
        else begin
          cursors.(u) <- rest;
          dfs eps a cursors ~dst u pushed
        end
      end
      else begin
        cursors.(u) <- rest;
        dfs eps a cursors ~dst u pushed
      end

let run ?(eps = 1e-12) g ~src ~dst =
  if src = dst then invalid_arg "Maxflow: src = dst";
  let k = Graph.node_count g in
  if src < 0 || src >= k || dst < 0 || dst >= k then
    invalid_arg "Maxflow: node out of range";
  let a = build g in
  let total = ref 0. in
  while bfs eps a ~src ~dst do
    let cursors = Array.copy a.adj in
    let continue = ref true in
    while !continue do
      let sent = dfs eps a cursors ~dst src infinity in
      if sent > eps then total := !total +. sent else continue := false
    done
  done;
  (!total, a)

let max_flow ?eps g ~src ~dst = fst (run ?eps g ~src ~dst)

let min_broadcast_flow ?eps g ~src =
  let k = Graph.node_count g in
  let best = ref infinity in
  for v = 0 to k - 1 do
    if v <> src then best := Float.min !best (max_flow ?eps g ~src ~dst:v)
  done;
  !best

let flow_assignment ?(eps = 1e-12) g ~src ~dst =
  let value, a = run ~eps g ~src ~dst in
  (* Flow on a forward arc = original capacity - residual = reverse cap. *)
  let flow = Graph.create (Graph.node_count g) in
  Graph.iter_edges
    (fun ~src:u ~dst:v _w ->
      let arc = Hashtbl.find a.arc_of_edge (u, v) in
      let f = a.cap.(arc + 1) in
      if f > eps then Graph.set_edge flow ~src:u ~dst:v f)
    g;
  (value, flow)
