let sorted_edges g =
  Graph.fold_edges (fun ~src ~dst w acc -> (src, dst, w) :: acc) g []
  |> List.sort compare

let to_dot ?(name = "overlay") ?(node_label = Printf.sprintf "C%d")
    ?(node_class = fun _ -> None) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" name);
  Buffer.add_string buf "  rankdir=LR;\n  node [fontname=\"sans-serif\"];\n";
  for v = 0 to Graph.node_count g - 1 do
    let style =
      match node_class v with
      | Some "source" -> ", shape=doublecircle, style=filled, fillcolor=\"#ffd27f\""
      | Some "open" -> ", shape=circle"
      | Some "guarded" -> ", shape=box, style=filled, fillcolor=\"#d7e3f4\""
      | Some _ | None -> ", shape=circle"
    in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\"%s];\n" v (node_label v) style)
  done;
  List.iter
    (fun (src, dst, w) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%.3g\"];\n" src dst w))
    (sorted_edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_json g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "{\"nodes\": %d, \"edges\": [" (Graph.node_count g));
  List.iteri
    (fun i (src, dst, w) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "{\"src\": %d, \"dst\": %d, \"rate\": %.12g}" src dst w))
    (sorted_edges g);
  Buffer.add_string buf "]}";
  Buffer.contents buf

let schedule_to_json trees =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"trees\": [";
  List.iteri
    (fun i tree ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "{\"rate\": %.12g, \"parent\": [" tree.Arborescence.weight);
      Array.iteri
        (fun v p ->
          if v > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (string_of_int p))
        tree.Arborescence.parent;
      Buffer.add_string buf "]}")
    trees;
  Buffer.add_string buf "]}";
  Buffer.contents buf
