lib/rational/q.ml: Float Format List Printf Stdlib
