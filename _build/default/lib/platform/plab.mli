(** Synthetic substitute for the PlanetLab outgoing-bandwidth measurements.

    The paper's [PLab] scenario samples node bandwidths uniformly from
    outgoing-bandwidth values measured on PlanetLab with the last-mile
    estimation of Beaumont, Eyraud-Dubois & Won (EuroPar 2011). That trace
    is not redistributable, so this module synthesizes a fixed pool with the
    same qualitative features reported for PlanetLab access links:

    - three modes — ADSL-class uplinks (~1–10 Mb/s), campus/commodity links
      (~10–100 Mb/s), and well-provisioned servers (~100–1000 Mb/s);
    - a heavy Pareto tail on the top mode;
    - several orders of magnitude of heterogeneity overall.

    The pool is generated deterministically (fixed seed) at module
    initialization, so every run of every experiment sees the same values.
    Substituting a real trace is a one-line change: build a
    [Prng.Dist.Empirical] from your measurements. *)

val pool : float array
(** The 500-entry synthetic bandwidth pool (Mb/s), sorted increasing. *)

val dist : Prng.Dist.t
(** [Empirical pool] — plug-in replacement for the paper's [PLab]
    distribution. *)

val summary : unit -> string
(** One-line five-number summary of the pool (min / quartiles / max), for
    logging and documentation. *)
