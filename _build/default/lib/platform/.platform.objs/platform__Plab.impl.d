lib/platform/plab.ml: Array Float Printf Prng
