lib/platform/instance.ml: Array Buffer Float Format Fun List Option Printf String
