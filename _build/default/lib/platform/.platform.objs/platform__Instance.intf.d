lib/platform/instance.mli: Format
