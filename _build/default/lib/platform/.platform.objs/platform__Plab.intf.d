lib/platform/plab.mli: Prng
