lib/platform/generator.ml: Array Float Instance List Prng
