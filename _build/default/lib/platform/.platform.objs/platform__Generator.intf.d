lib/platform/generator.mli: Instance Prng
