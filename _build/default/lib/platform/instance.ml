type node_class = Open | Guarded

type t = {
  bandwidth : float array;
  n : int;
  m : int;
  bin : float array option;
}

let create ?bin ~bandwidth ~n ~m () =
  if n < 0 || m < 0 then invalid_arg "Instance.create: negative class size";
  let size = 1 + n + m in
  if Array.length bandwidth <> size then
    invalid_arg "Instance.create: bandwidth length must be 1 + n + m";
  Array.iter
    (fun b ->
      if b < 0. || Float.is_nan b then
        invalid_arg "Instance.create: bandwidths must be non-negative")
    bandwidth;
  (match bin with
  | Some caps when Array.length caps <> size ->
    invalid_arg "Instance.create: bin length must be 1 + n + m"
  | _ -> ());
  { bandwidth = Array.copy bandwidth; n; m; bin = Option.map Array.copy bin }

let size t = 1 + t.n + t.m

let node_class t i =
  if i < 0 || i >= size t then invalid_arg "Instance.node_class: out of range";
  if i <= t.n then Open else Guarded

let is_open t i = node_class t i = Open
let is_guarded t i = node_class t i = Guarded

let sum_range a lo hi =
  let acc = ref 0. in
  for i = lo to hi do
    acc := !acc +. a.(i)
  done;
  !acc

let open_sum t = sum_range t.bandwidth 1 t.n
let guarded_sum t = sum_range t.bandwidth (t.n + 1) (t.n + t.m)
let total_sum t = sum_range t.bandwidth 0 (t.n + t.m)

let non_increasing a lo hi =
  let ok = ref true in
  for i = lo to hi - 1 do
    if a.(i) < a.(i + 1) then ok := false
  done;
  !ok

let sorted t =
  non_increasing t.bandwidth 1 t.n
  && non_increasing t.bandwidth (t.n + 1) (t.n + t.m)

let normalize t =
  let size = size t in
  let perm = Array.init size Fun.id in
  (* Stable sort of an index range by non-increasing bandwidth. *)
  let sort_range lo hi =
    if hi > lo then begin
      let idx = Array.init (hi - lo + 1) (fun k -> perm.(lo + k)) in
      let cmp i j = Float.compare t.bandwidth.(j) t.bandwidth.(i) in
      let sorted = List.stable_sort cmp (Array.to_list idx) in
      List.iteri (fun k i -> perm.(lo + k) <- i) sorted
    end
  in
  sort_range 1 t.n;
  sort_range (t.n + 1) (t.n + t.m);
  let bandwidth = Array.map (fun i -> t.bandwidth.(i)) perm in
  let bin = Option.map (fun caps -> Array.map (fun i -> caps.(i)) perm) t.bin in
  ({ t with bandwidth; bin }, perm)

let fig1 =
  create ~bandwidth:[| 6.; 5.; 5.; 4.; 1.; 1. |] ~n:2 ~m:3 ()

let homogeneous ~n ~m ~b0 ~bopen ~bguarded =
  let bandwidth =
    Array.init (1 + n + m) (fun i ->
        if i = 0 then b0 else if i <= n then bopen else bguarded)
  in
  create ~bandwidth ~n ~m ()

let tight_homogeneous ~n ~m ~delta =
  if n < 1 || m < 1 then invalid_arg "Instance.tight_homogeneous: need n, m >= 1";
  if delta < 0. || delta > float_of_int n then
    invalid_arg "Instance.tight_homogeneous: delta must lie in [0, n]";
  let nf = float_of_int n and mf = float_of_int m in
  homogeneous ~n ~m ~b0:1.
    ~bopen:((mf -. 1. +. delta) /. nf)
    ~bguarded:((nf -. delta) /. mf)

let equal a b =
  a.n = b.n && a.m = b.m
  && Array.for_all2 (fun x y -> Float.equal x y) a.bandwidth b.bandwidth

let pp fmt t =
  Format.fprintf fmt "{n=%d m=%d b0=%g O=%g G=%g}" t.n t.m t.bandwidth.(0)
    (open_sum t) (guarded_sum t)

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "source %.17g\n" t.bandwidth.(0));
  for i = 1 to t.n do
    Buffer.add_string buf (Printf.sprintf "open %.17g\n" t.bandwidth.(i))
  done;
  for i = t.n + 1 to t.n + t.m do
    Buffer.add_string buf (Printf.sprintf "guarded %.17g\n" t.bandwidth.(i))
  done;
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let source = ref None and opens = ref [] and guardeds = ref [] in
  let err = ref None in
  let parse_line ln line =
    let line =
      match String.index_opt line '#' with
      | Some k -> String.sub line 0 k
      | None -> line
    in
    let line = String.trim line in
    if line <> "" then
      match String.split_on_char ' ' line |> List.filter (( <> ) "") with
      | [ kind; value ] -> begin
        match (kind, float_of_string_opt value) with
        | _, None -> err := Some (Printf.sprintf "line %d: bad number %S" ln value)
        | "source", Some b ->
          if !source = None then source := Some b
          else err := Some (Printf.sprintf "line %d: duplicate source" ln)
        | "open", Some b -> opens := b :: !opens
        | "guarded", Some b -> guardeds := b :: !guardeds
        | _, Some _ -> err := Some (Printf.sprintf "line %d: unknown kind %S" ln kind)
      end
      | _ -> err := Some (Printf.sprintf "line %d: expected '<kind> <bandwidth>'" ln)
  in
  List.iteri (fun i line -> if !err = None then parse_line (i + 1) line) lines;
  match (!err, !source) with
  | Some e, _ -> Error e
  | None, None -> Error "missing 'source <b>' line"
  | None, Some b0 ->
    let opens = List.rev !opens and guardeds = List.rev !guardeds in
    let bandwidth = Array.of_list ((b0 :: opens) @ guardeds) in
    (try Ok (create ~bandwidth ~n:(List.length opens) ~m:(List.length guardeds) ())
     with Invalid_argument msg -> Error msg)
