(** Random instance generation following the paper's average-case protocol
    (Appendix XII).

    Each of the [total] non-source nodes draws its bandwidth independently
    from a distribution and is open with probability [p_open] (guarded
    otherwise). To "concentrate on difficult instances", the source
    bandwidth is set to the optimal cyclic throughput of the resulting
    platform — the unique fixed point of Lemma 5.1's closed form under
    [b0 = T*] — so the source is neither a bottleneck nor able to feed
    everyone by itself. *)

type spec = {
  total : int;  (** number of non-source nodes, [>= 1] *)
  p_open : float;  (** probability that a node is open, in [\[0, 1\]] *)
  dist : Prng.Dist.t;  (** bandwidth distribution *)
}

val source_fixed_point : open_sum:float -> guarded_sum:float -> n:int -> m:int -> float
(** [source_fixed_point ~open_sum ~guarded_sum ~n ~m] is the value [b0]
    satisfying [b0 = min (b0, (b0 + O) / m, (b0 + O + G) / (n + m))] as an
    equality with the binding non-trivial constraint, i.e.
    [min (O / (m - 1)) ((O + G) / (n + m - 1))] with each term dropped when
    its denominator is [<= 0]. Falls back to the per-node average when no
    constraint binds (n + m <= 1). *)

val generate : spec -> Prng.Splitmix.t -> Instance.t
(** [generate spec rng] draws one instance, already {!Instance.normalize}d
    (classes sorted by non-increasing bandwidth). The class of each node and
    its bandwidth consume exactly two draws from [rng] per node, so streams
    are reproducible. *)

val generate_many : spec -> Prng.Splitmix.t -> int -> Instance.t list
(** [generate_many spec rng k] draws [k] independent instances. *)
