type spec = {
  total : int;
  p_open : float;
  dist : Prng.Dist.t;
}

let source_fixed_point ~open_sum ~guarded_sum ~n ~m =
  let candidates = ref [] in
  if m >= 2 then candidates := (open_sum /. float_of_int (m - 1)) :: !candidates;
  if n + m >= 2 then
    candidates :=
      ((open_sum +. guarded_sum) /. float_of_int (n + m - 1)) :: !candidates;
  match !candidates with
  | [] ->
    (* Degenerate single-node platform: any positive source rate works;
       use the total bandwidth (or 1 if the platform is empty). *)
    Float.max 1. (open_sum +. guarded_sum)
  | l -> List.fold_left Float.min infinity l

let generate spec rng =
  if spec.total < 1 then invalid_arg "Generator.generate: total must be >= 1";
  if spec.p_open < 0. || spec.p_open > 1. then
    invalid_arg "Generator.generate: p_open must lie in [0, 1]";
  let classes =
    Array.init spec.total (fun _ -> Prng.Splitmix.next_float rng < spec.p_open)
  in
  let bandwidths =
    let draw = Prng.Dist.sampler spec.dist in
    Array.init spec.total (fun _ -> draw rng)
  in
  let opens = ref [] and guardeds = ref [] in
  Array.iteri
    (fun i is_open ->
      if is_open then opens := bandwidths.(i) :: !opens
      else guardeds := bandwidths.(i) :: !guardeds)
    classes;
  let opens = List.rev !opens and guardeds = List.rev !guardeds in
  let n = List.length opens and m = List.length guardeds in
  let open_sum = List.fold_left ( +. ) 0. opens in
  let guarded_sum = List.fold_left ( +. ) 0. guardeds in
  let b0 = source_fixed_point ~open_sum ~guarded_sum ~n ~m in
  let bandwidth = Array.of_list ((b0 :: opens) @ guardeds) in
  let t = Instance.create ~bandwidth ~n ~m () in
  fst (Instance.normalize t)

let generate_many spec rng k = List.init k (fun _ -> generate spec rng)
