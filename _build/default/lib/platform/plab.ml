let pool_size = 500

(* Mixture weights and per-mode samplers. The modes follow the access-link
   classes reported in PlanetLab bandwidth studies: most nodes sit on
   campus-class links, a minority on ADSL-class uplinks, and a few on
   server-class links with a heavy upper tail. *)
let synthesize () =
  let rng = Prng.Splitmix.create 0x506C616E4C6162L (* "PlanLab" *) in
  let adsl = Prng.Dist.Lognormal { mean = 4.; std = 3. } in
  let campus = Prng.Dist.Lognormal { mean = 45.; std = 30. } in
  let server = Prng.Dist.Pareto { mean = 300.; std = 400. } in
  let sample_one () =
    let u = Prng.Splitmix.next_float rng in
    let d = if u < 0.25 then adsl else if u < 0.85 then campus else server in
    (* Clamp to a physically plausible range: 256 kb/s .. 1 Gb/s. *)
    Float.min 1000. (Float.max 0.256 (Prng.Dist.sample d rng))
  in
  let values = Array.init pool_size (fun _ -> sample_one ()) in
  Array.sort Float.compare values;
  values

let pool = synthesize ()

let dist = Prng.Dist.Empirical pool

let summary () =
  let q p = pool.(int_of_float (p *. float_of_int (pool_size - 1))) in
  Printf.sprintf
    "PLab pool (n=%d, Mb/s): min=%.2f q25=%.2f median=%.2f q75=%.2f max=%.2f"
    pool_size pool.(0) (q 0.25) (q 0.5) (q 0.75)
    pool.(pool_size - 1)
