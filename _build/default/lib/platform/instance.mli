(** Problem instances of the bounded multi-port broadcast problem.

    An instance is a source node [C0] (always an open node), [n] open nodes
    [C1 .. Cn] and [m] guarded nodes [C(n+1) .. C(n+m)], each with an
    outgoing bandwidth [b i]. Input bandwidths are assumed unbounded by the
    paper; an optional per-node incoming cap is carried for the model
    extension exercised by the verification oracle.

    The algorithms of the paper require nodes of each class to be sorted by
    non-increasing bandwidth (Lemma 4.2 shows increasing orders dominate);
    {!normalize} establishes that invariant and records the permutation so
    results can be mapped back to original node identities. *)

type node_class = Open | Guarded

type t = private {
  bandwidth : float array;
      (** [bandwidth.(i)] is the outgoing bandwidth of [Ci]; index 0 is the
          source. All entries are non-negative. *)
  n : int;  (** number of open nodes besides the source *)
  m : int;  (** number of guarded nodes *)
  bin : float array option;
      (** optional incoming caps, same indexing; [None] = unbounded *)
}

val create : ?bin:float array -> bandwidth:float array -> n:int -> m:int -> unit -> t
(** [create ~bandwidth ~n ~m ()] builds an instance. [bandwidth] must have
    length [1 + n + m]: source, then the [n] open nodes, then the [m]
    guarded nodes. Raises [Invalid_argument] on negative bandwidths or
    length mismatch. The node order is kept as given (use {!normalize} to
    sort). *)

val size : t -> int
(** [size t] is [1 + n + m], the total number of nodes. *)

val node_class : t -> int -> node_class
(** [node_class t i] is the class of node [Ci]. The source is [Open].
    Raises [Invalid_argument] if [i] is out of range. *)

val is_open : t -> int -> bool
val is_guarded : t -> int -> bool

val open_sum : t -> float
(** [open_sum t] is [O], the total bandwidth of non-source open nodes. *)

val guarded_sum : t -> float
(** [guarded_sum t] is [G], the total bandwidth of guarded nodes. *)

val total_sum : t -> float
(** [b0 + O + G]. *)

val sorted : t -> bool
(** [sorted t] holds when open nodes [C1..Cn] and guarded nodes
    [C(n+1)..C(n+m)] are each in non-increasing bandwidth order. *)

val normalize : t -> t * int array
(** [normalize t] returns [(t', perm)] where [t'] has each class sorted by
    non-increasing bandwidth and [perm.(new_index) = old_index]. The sort is
    stable so equal-bandwidth nodes keep their relative order. *)

val fig1 : t
(** The running example of the paper (Figure 1): source [b0 = 6], open
    nodes [5; 5], guarded nodes [4; 1; 1]. Optimal cyclic throughput 4.4,
    optimal acyclic throughput 4. *)

val homogeneous : n:int -> m:int -> b0:float -> bopen:float -> bguarded:float -> t
(** Homogeneous instance: all open nodes share [bopen], all guarded share
    [bguarded] (Section VI's worst-case families). *)

val tight_homogeneous : n:int -> m:int -> delta:float -> t
(** The tight homogeneous instances of Theorem 6.2's proof: [b0 = 1], open
    bandwidth [(m - 1 + delta) / n], guarded bandwidth [(n - delta) / m],
    so that [b0 = (b0 + O + G) / (n + m) = T*] and [b0 + O >= m T*].
    Requires [n >= 1], [m >= 1] and [0 <= delta <= n]. *)

val equal : t -> t -> bool
(** Structural equality (same classes and bandwidths). *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-line summary. *)

val to_string : t -> string
(** Full textual serialization (one node per line), parsable by
    {!of_string}. *)

val of_string : string -> (t, string) result
(** Parse the {!to_string} format: a line [source <b>] then lines
    [open <b>] / [guarded <b>] in any order ([#] comments and blank lines
    ignored). *)
