type t = {
  bout : float array;
  bin : float array;
}

let predict m i j =
  if i = j then invalid_arg "Model.predict: i = j";
  Float.min m.bout.(i) m.bin.(j)

let synthetic_matrix ?(noise = 0.) m rng =
  let k = Array.length m.bout in
  if Array.length m.bin <> k then invalid_arg "Model.synthetic_matrix: size mismatch";
  Array.init k (fun i ->
      Array.init k (fun j ->
          if i = j then nan
          else begin
            let base = predict m i j in
            if noise <= 0. then base
            else begin
              (* Multiplicative log-normal noise with unit median. *)
              let z = Prng.Dist.gaussian rng in
              base *. exp (noise *. z)
            end
          end))

(* Exact coordinate update: given targets (cap_j, y_j), minimize
   f(x) = sum_j (min (x, cap_j) - y_j)^2.
   On the segment where exactly the caps >= x are active, f is quadratic
   with minimum at the mean of the corresponding y's; scan segments in
   decreasing cap order. *)
let best_capacity pairs =
  match pairs with
  | [] -> 0.
  | _ ->
    let sorted =
      List.sort (fun (c1, _) (c2, _) -> Float.compare c2 c1) pairs
    in
    let arr = Array.of_list sorted in
    let total = Array.length arr in
    (* active set = indices 0 .. a - 1 have cap >= x. Candidate minima:
       for each a, x = mean of y over active set, clamped to the segment
       [cap(a-1) ... cap(a-2)]... simpler: evaluate f at every candidate
       (segment means and breakpoints) and keep the best. *)
    let f x =
      Array.fold_left
        (fun acc (c, y) ->
          let p = Float.min x c -. y in
          acc +. (p *. p))
        0. arr
    in
    let candidates = ref [] in
    let sum_y = ref 0. in
    for a = 1 to total do
      let _, y = arr.(a - 1) in
      sum_y := !sum_y +. y;
      (* Segment: x in [cap of arr.(a-1) upper? ...] — active set is the
         a largest caps when x <= cap.(a-1) and (a = total or x > cap.(a)). *)
      let mean = !sum_y /. float_of_int a in
      let hi = fst arr.(a - 1) in
      let lo = if a = total then 0. else fst arr.(a) in
      let clamped = Float.max lo (Float.min hi mean) in
      candidates := clamped :: hi :: !candidates
    done;
    List.fold_left
      (fun best x -> if f x < f best then x else best)
      (fst arr.(0)) !candidates

let valid_entry v = not (Float.is_nan v)

let fit ?(rounds = 25) matrix =
  let k = Array.length matrix in
  Array.iter
    (fun row -> if Array.length row <> k then invalid_arg "Model.fit: not square")
    matrix;
  let bout =
    Array.init k (fun i ->
        Array.fold_left
          (fun acc v -> if valid_entry v then Float.max acc v else acc)
          0. matrix.(i))
  in
  let bin =
    Array.init k (fun j ->
        let acc = ref 0. in
        for i = 0 to k - 1 do
          if i <> j && valid_entry matrix.(i).(j) then
            acc := Float.max !acc matrix.(i).(j)
        done;
        !acc)
  in
  for _ = 1 to rounds do
    for i = 0 to k - 1 do
      let pairs = ref [] in
      for j = 0 to k - 1 do
        if i <> j && valid_entry matrix.(i).(j) then
          pairs := (bin.(j), matrix.(i).(j)) :: !pairs
      done;
      if !pairs <> [] then bout.(i) <- best_capacity !pairs
    done;
    for j = 0 to k - 1 do
      let pairs = ref [] in
      for i = 0 to k - 1 do
        if i <> j && valid_entry matrix.(i).(j) then
          pairs := (bout.(i), matrix.(i).(j)) :: !pairs
      done;
      if !pairs <> [] then bin.(j) <- best_capacity !pairs
    done
  done;
  { bout; bin }

let rmse m matrix =
  let k = Array.length matrix in
  let acc = ref 0. and count = ref 0 in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      if i <> j && valid_entry matrix.(i).(j) then begin
        let e = predict m i j -. matrix.(i).(j) in
        acc := !acc +. (e *. e);
        incr count
      end
    done
  done;
  if !count = 0 then 0. else sqrt (!acc /. float_of_int !count)

let to_instance m ~source ~guarded =
  let k = Array.length m.bout in
  if source < 0 || source >= k then invalid_arg "Model.to_instance: bad source";
  if Array.length guarded <> k then invalid_arg "Model.to_instance: flags size mismatch";
  if guarded.(source) then invalid_arg "Model.to_instance: source must be open";
  let opens = ref [] and guardeds = ref [] in
  for v = k - 1 downto 0 do
    if v <> source then
      if guarded.(v) then guardeds := v :: !guardeds else opens := v :: !opens
  done;
  let order = (source :: !opens) @ !guardeds in
  let bandwidth = Array.of_list (List.map (fun v -> m.bout.(v)) order) in
  let bin = Array.of_list (List.map (fun v -> m.bin.(v)) order) in
  let inst =
    Platform.Instance.create ~bin ~bandwidth ~n:(List.length !opens)
      ~m:(List.length !guardeds) ()
  in
  let inst, perm = Platform.Instance.normalize inst in
  let pre = Array.of_list order in
  (inst, Array.map (fun p -> pre.(p)) perm)
