(** Last-mile (bounded multi-port) model instantiation — the Bedibe
    substitute.

    The paper instantiates its platform model with Bedibe (Beaumont,
    Eyraud-Dubois & Won, EuroPar 2011): from a matrix of point-to-point
    available-bandwidth measurements, estimate per-node outgoing and
    incoming capacities such that the achievable bandwidth between [Ci]
    and [Cj] is [min (bout i) (bin j)]. This module reimplements that
    estimation: alternating least-squares on the last-mile prediction
    error, each coordinate update solved exactly (the objective is
    piecewise quadratic in one capacity once the others are fixed).

    The pipeline [measurements -> fit -> instance -> broadcast overlay]
    is exercised end-to-end in [examples/planetlab_overlay.ml]. *)

type t = {
  bout : float array;  (** estimated outgoing capacity per node *)
  bin : float array;  (** estimated incoming capacity per node *)
}

val predict : t -> int -> int -> float
(** [predict m i j] is [min m.bout.(i) m.bin.(j)] — the last-mile estimate
    of the [i -> j] bandwidth. Requires [i <> j]. *)

val synthetic_matrix :
  ?noise:float -> t -> Prng.Splitmix.t -> float array array
(** [synthetic_matrix m rng] builds a full measurement matrix from a
    ground-truth model, with i.i.d. multiplicative log-normal noise of
    standard deviation [noise] (default [0.], exact measurements).
    Diagonal entries are [nan] (no self-measurements). *)

val fit : ?rounds:int -> float array array -> t
(** [fit matrix] estimates a last-mile model from a measurement matrix
    ([nan] entries are treated as missing). [rounds] alternating sweeps
    (default 25). Initialization: [bout i = max over j of matrix i j],
    [bin j = max over i] — exact when measurements are noise-free. *)

val rmse : t -> float array array -> float
(** Root-mean-square prediction error over non-[nan] off-diagonal
    entries. *)

val to_instance :
  t -> source:int -> guarded:bool array -> Platform.Instance.t * int array
(** [to_instance m ~source ~guarded] builds a (normalized) broadcast
    instance whose outgoing bandwidths are [m.bout] and whose incoming
    caps are [m.bin]: node [source] becomes [C0], the remaining nodes are
    split by the [guarded] flags (indexed like [m.bout]; [guarded.(source)]
    must be false). Also returns the permutation mapping new indices to
    original ones. *)
