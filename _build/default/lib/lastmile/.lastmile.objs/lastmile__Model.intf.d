lib/lastmile/model.mli: Platform Prng
