lib/lastmile/model.ml: Array Float List Platform Prng
