(* bmp — bounded multi-port broadcast toolbox.

   Subcommands:
     solve      compute throughputs and a low-degree overlay for an instance
     generate   draw a random instance (paper's average-case protocol)
     exp        run one paper experiment by name (fig1, fig7, ...)
     exp-all    run every experiment (the EXPERIMENTS.md content)
     simulate   run the randomized transport on a computed overlay
     stream     flat-arena event-heap dataplane (delay/occupancy at scale)
     scheme     build / check / show / export persistent scheme artifacts *)

open Cmdliner

(* Exit-code contract: usage/parse errors (bad flags, unreadable or
   malformed input files) exit 2 via [die]; domain failures on valid
   input (infeasible rate, failed verification, audit violation) exit 1
   via [fail]. *)
let die msg =
  Printf.eprintf "error: %s\n" msg;
  exit 2

let fail msg =
  Printf.eprintf "error: %s\n" msg;
  exit 1

(* Turn I/O errors into clean CLI failures instead of "internal error"
   tracebacks. Deliberately does NOT catch [Invalid_argument]: that would
   also swallow genuine programming errors (array bounds, broken library
   preconditions) as exit-code-2 CLI errors. The few call sites where
   [Invalid_argument] legitimately reflects bad user input (parsing,
   infeasible construction parameters) handle it explicitly with
   [or_invalid]. *)
let or_die f = try f () with Sys_error msg -> die msg

(* For calls whose [Invalid_argument] is a user-input error (e.g. a
   construction on a degenerate hand-written instance), not a bug. *)
let or_invalid f = try f () with Invalid_argument msg -> die msg

let read_all ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 4096
     done
   with End_of_file -> ());
  Buffer.contents buf

let read_text path =
  or_die (fun () ->
      if path = "-" then read_all stdin
      else begin
        let ic = open_in path in
        Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_all ic)
      end)

let read_instance path =
  let content = read_text path in
  match Platform.Instance.of_string content with
  | Ok inst -> or_invalid (fun () -> fst (Platform.Instance.normalize inst))
  | Error msg -> die (Printf.sprintf "cannot parse %s: %s" path msg)

let instance_arg =
  let doc = "Instance file (lines: 'source B', 'open B', 'guarded B'); '-' for stdin." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"INSTANCE" ~doc)

(* solve *)

let solve_kind =
  let doc = "Scheme family: 'acyclic' (Theorem 4.1) or 'cyclic' (Theorem 5.2, open-only)." in
  Arg.(value & opt (enum [ ("acyclic", `Acyclic); ("cyclic", `Cyclic) ]) `Acyclic
       & info [ "k"; "kind" ] ~doc)

let show_scheme =
  let doc = "Print the overlay edges." in
  Arg.(value & flag & info [ "edges" ] ~doc)

let dot_out =
  let doc = "Write the overlay as a Graphviz file." in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)

let json_out =
  let doc = "Write the overlay as JSON." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let write_file path content =
  or_die @@ fun () ->
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)

(* Shared -j/--jobs option: worker-domain count for parallel sweeps. *)
let jobs_arg =
  let doc =
    "Worker domains for parallel work (default: one per core). Results \
     are identical for every value, including 1."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let check_jobs = function
  | Some j when j < 1 -> die "--jobs must be >= 1"
  | jobs -> jobs

let solve_cmd =
  let run path kind edges dot json =
    let inst = read_instance path in
    Printf.printf "instance: n=%d open, m=%d guarded, b0=%g\n"
      inst.Platform.Instance.n inst.Platform.Instance.m
      inst.Platform.Instance.bandwidth.(0);
    Printf.printf "cyclic optimum T* (Lemma 5.1)      : %.6f\n"
      (Broadcast.Bounds.cyclic_upper inst);
    let t_ac, word = Broadcast.Greedy.optimal_acyclic inst in
    Printf.printf "acyclic optimum T*ac (Theorem 4.1) : %.6f (word %s)\n" t_ac
      (Broadcast.Word.to_string word);
    let rate, scheme =
      (* A degenerate hand-written instance (e.g. zero bandwidth
         everywhere) can make the construction infeasible — that is a
         user-input error, not a bug. *)
      or_invalid @@ fun () ->
      match kind with
      | `Acyclic -> Broadcast.Low_degree.build_optimal inst
      | `Cyclic ->
        if inst.Platform.Instance.m > 0 then
          die "cyclic construction requires open nodes only";
        let t = Broadcast.Bounds.cyclic_open_optimal inst in
        (t, Broadcast.Cyclic_open.build inst)
    in
    let graph = Broadcast.Scheme.graph scheme in
    let report = Broadcast.Scheme.report scheme in
    let degrees = Broadcast.Metrics.scheme_report scheme in
    Printf.printf "built scheme: rate %.6f, max-flow throughput %.6f, %s\n" rate
      report.Broadcast.Verify.throughput
      (if report.Broadcast.Verify.acyclic then "acyclic" else "cyclic");
    Printf.printf "degree excess over ceil(b/T): max %d\n"
      degrees.Broadcast.Metrics.max_excess;
    if edges then
      Flowgraph.Graph.iter_edges
        (fun ~src ~dst w -> Printf.printf "  C%d -> C%d : %.6f\n" src dst w)
        graph;
    let node_class v =
      if v = 0 then Some "source"
      else if Platform.Instance.is_guarded inst v then Some "guarded"
      else Some "open"
    in
    Option.iter
      (fun path ->
        write_file path (Flowgraph.Export.to_dot ~node_class graph);
        Printf.printf "wrote %s\n" path)
      dot;
    Option.iter
      (fun path ->
        write_file path (Flowgraph.Export.to_json graph);
        Printf.printf "wrote %s\n" path)
      json
  in
  let info = Cmd.info "solve" ~doc:"Compute optimal throughputs and build an overlay." in
  Cmd.v info
    Term.(const run $ instance_arg $ solve_kind $ show_scheme $ dot_out $ json_out)

(* generate *)

let generate_cmd =
  let total =
    Arg.(value & opt int 20 & info [ "n"; "nodes" ] ~doc:"Number of non-source nodes.")
  in
  let p_open =
    Arg.(value & opt float 0.7 & info [ "p"; "p-open" ] ~doc:"Probability a node is open.")
  in
  let dist =
    let dist_conv =
      Arg.enum
        [
          ("unif100", Prng.Dist.unif100);
          ("power1", Prng.Dist.power1);
          ("power2", Prng.Dist.power2);
          ("ln1", Prng.Dist.ln1);
          ("ln2", Prng.Dist.ln2);
          ("plab", Platform.Plab.dist);
        ]
    in
    Arg.(value & opt dist_conv Prng.Dist.unif100
         & info [ "d"; "dist" ] ~doc:"Bandwidth distribution (unif100, power1, power2, ln1, ln2, plab).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let count =
    Arg.(value & opt int 1
         & info [ "count" ] ~docv:"COUNT"
             ~doc:"Number of instances to draw (in parallel when > 1).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"PREFIX"
             ~doc:"Write instances to PREFIX-0001.txt, PREFIX-0002.txt, ... \
                   (required when $(b,--count) > 1).")
  in
  let run total p dist seed count out jobs =
    let jobs = check_jobs jobs in
    if total < 1 then die "--nodes must be >= 1";
    if p < 0. || p > 1. then die "--p-open must lie in [0, 1]";
    if count < 1 then die "--count must be >= 1";
    if count > 1 && out = None then die "--count > 1 requires --out PREFIX";
    (* Seeding discipline: instance k always consumes split k of the root
       stream, so a batch is reproducible instance-by-instance and
       identical for every --jobs value. *)
    let root = Prng.Splitmix.create (Int64.of_int seed) in
    let streams = Prng.Splitmix.split_n root count in
    let spec = { Platform.Generator.total; p_open = p; dist } in
    let instances =
      Parallel.Pool.map_range ?jobs count (fun k ->
          or_invalid (fun () -> Platform.Generator.generate spec streams.(k)))
    in
    match out with
    | None -> print_string (Platform.Instance.to_string instances.(0))
    | Some prefix ->
      Array.iteri
        (fun k inst ->
          let path = Printf.sprintf "%s-%04d.txt" prefix (k + 1) in
          write_file path (Platform.Instance.to_string inst);
          Printf.printf "wrote %s\n" path)
        instances
  in
  let info =
    Cmd.info "generate"
      ~doc:"Draw random instances (source pinned to the cyclic optimum)."
  in
  Cmd.v info Term.(const run $ total $ p_open $ dist $ seed $ count $ out $ jobs_arg)

(* exp *)

let exp_cmd =
  let name_arg =
    let names = String.concat ", " (List.map (fun e -> e.Experiments.Registry.name) Experiments.Registry.all) in
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"NAME" ~doc:("Experiment name: " ^ names ^ "."))
  in
  let run name jobs =
    let jobs = check_jobs jobs in
    match Experiments.Registry.find name with
    | Some e ->
      e.Experiments.Registry.run ?jobs Format.std_formatter;
      Format.pp_print_flush Format.std_formatter ()
    | None -> die (Printf.sprintf "unknown experiment %S (try 'bmp exp-all')" name)
  in
  let info = Cmd.info "exp" ~doc:"Run one paper experiment." in
  Cmd.v info Term.(const run $ name_arg $ jobs_arg)

let exp_all_cmd =
  let run jobs =
    let jobs = check_jobs jobs in
    Experiments.Registry.run_all ?jobs Format.std_formatter;
    Format.pp_print_flush Format.std_formatter ()
  in
  let info = Cmd.info "exp-all" ~doc:"Run every paper experiment (tables and figures)." in
  Cmd.v info Term.(const run $ jobs_arg)

(* trees *)

let trees_cmd =
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Write the tree schedule as JSON.")
  in
  let run path json =
    let inst = read_instance path in
    let rate, scheme =
      or_invalid (fun () -> Broadcast.Low_degree.build_optimal inst)
    in
    let trees =
      or_invalid (fun () ->
          Flowgraph.Arborescence.decompose (Broadcast.Scheme.graph scheme) ~root:0)
    in
    Printf.printf "overlay rate %.6f decomposed into %d broadcast trees:\n" rate
      (List.length trees);
    List.iteri
      (fun k tree ->
        Printf.printf "  tree %d: rate %.6f, depth %d\n" k
          tree.Flowgraph.Arborescence.weight
          (Flowgraph.Arborescence.tree_depth tree))
      trees;
    Option.iter
      (fun path ->
        write_file path (Flowgraph.Export.schedule_to_json trees);
        Printf.printf "wrote %s\n" path)
      json
  in
  let info =
    Cmd.info "trees"
      ~doc:"Decompose the optimal overlay into weighted broadcast trees."
  in
  Cmd.v info Term.(const run $ instance_arg $ json_out)

(* selfcheck *)

let selfcheck_cmd =
  let run () =
    let failures = Experiments.Selfcheck.print Format.std_formatter in
    Format.pp_print_flush Format.std_formatter ();
    if failures > 0 then exit 1
  in
  let info =
    Cmd.info "selfcheck"
      ~doc:"Run the built-in validation battery (paper constants, oracle             agreement, scheme validity)."
  in
  Cmd.v info Term.(const run $ const ())

(* simulate *)

let simulate_cmd =
  let chunks =
    Arg.(value & opt int 300 & info [ "chunks" ] ~doc:"Number of chunks to broadcast.")
  in
  let streaming = Arg.(value & flag & info [ "streaming" ] ~doc:"Live-stream release schedule.") in
  let run path chunks streaming =
    if chunks < 1 then die "--chunks must be >= 1";
    let inst = read_instance path in
    let rate, scheme =
      or_invalid (fun () -> Broadcast.Low_degree.build_optimal inst)
    in
    let config = { Massoulie.Sim.default_config with chunks; streaming } in
    let r = Massoulie.Sim.simulate ~config (Broadcast.Scheme.graph scheme) ~rate in
    Printf.printf "overlay rate           : %.6f\n" rate;
    Printf.printf "delivered all chunks   : %b\n" r.Massoulie.Sim.delivered_all;
    Printf.printf "completion time        : %.3f (ideal %.3f)\n"
      r.Massoulie.Sim.completion_time
      (float_of_int chunks /. rate);
    Printf.printf "efficiency             : %.4f\n" r.Massoulie.Sim.efficiency;
    Printf.printf "worst lag (chunk-times): %.1f\n"
      (r.Massoulie.Sim.max_lag *. rate);
    Printf.printf "transfers              : %d\n" r.Massoulie.Sim.transfers
  in
  let info =
    Cmd.info "simulate"
      ~doc:"Build the optimal low-degree overlay and run randomized transport on it."
  in
  Cmd.v info Term.(const run $ instance_arg $ chunks $ streaming)

(* stream: flat-arena dataplane *)

let stream_run_cmd =
  let chunks =
    Arg.(value & opt int 1024
         & info [ "chunks" ] ~doc:"Number of chunks to broadcast.")
  in
  let streaming =
    Arg.(value & flag & info [ "streaming" ] ~doc:"Live-stream release schedule.")
  in
  let jitter =
    Arg.(value & opt float 0.
         & info [ "jitter" ]
             ~doc:"Relative bandwidth fluctuation per transfer (0 = ideal links).")
  in
  let seed =
    Arg.(value & opt int64 42L & info [ "seed" ] ~doc:"PRNG seed.")
  in
  let discipline =
    let doc =
      "Chunk-pick discipline: 'random' (uniform useful chunk, single-draw), \
       'oracle' (reservoir scan, bit-compatible with 'bmp simulate'), or \
       'inorder' (per-neighbor FIFO queues, lowest useful chunk first)."
    in
    Arg.(value & opt string "random" & info [ "discipline" ] ~docv:"NAME" ~doc)
  in
  let no_dedup =
    Arg.(value & flag
         & info [ "no-dedup" ]
             ~doc:"Allow a chunk already in flight toward a receiver to be \
                   picked again (duplicates are discarded on arrival).")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Write the canonical single-line JSON metrics record.")
  in
  let run path chunks streaming jitter seed discipline no_dedup metrics_out =
    if chunks < 1 then die "--chunks must be >= 1";
    if jitter < 0. then die "--jitter must be >= 0";
    let discipline =
      match Stream.Dataplane.discipline_of_name discipline with
      | Some d -> d
      | None ->
        die (Printf.sprintf
               "unknown discipline %S (random, oracle or inorder)" discipline)
    in
    let inst = read_instance path in
    let rate, scheme =
      or_invalid (fun () -> Broadcast.Low_degree.build_optimal inst)
    in
    let csr = Broadcast.Scheme.snapshot scheme in
    let config =
      {
        Stream.Dataplane.default_config with
        chunks;
        streaming;
        jitter;
        seed;
        discipline;
        dedup_inflight = not no_dedup;
      }
    in
    let r = Stream.Dataplane.run ~config csr ~rate in
    let module D = Stream.Dataplane in
    Printf.printf "overlay rate           : %.6f\n" rate;
    Printf.printf "nodes / arcs           : %d / %d\n"
      (Flowgraph.Csr.node_count csr) (Flowgraph.Csr.edge_count csr);
    Printf.printf "delivered all chunks   : %b\n" r.D.delivered_all;
    Printf.printf "completion time        : %.3f (ideal %.3f)\n"
      r.D.completion_time
      (float_of_int chunks /. rate);
    Printf.printf "achieved rate          : %.6f (efficiency %.4f)\n"
      r.D.achieved_rate r.D.efficiency;
    Printf.printf "events / transfers     : %d / %d (%d duplicates)\n"
      r.D.events r.D.transfers r.D.duplicates;
    Printf.printf "delay p50/p90/p99/max  : %.3f / %.3f / %.3f / %.3f\n"
      r.D.delay.D.p50 r.D.delay.D.p90 r.D.delay.D.p99 r.D.delay.D.max;
    Printf.printf "startup p50/p99/max    : %.3f / %.3f / %.3f\n"
      r.D.startup.D.p50 r.D.startup.D.p99 r.D.startup.D.max;
    Printf.printf "send queues peak/mean  : %d / %.4f\n"
      r.D.peak_queue r.D.mean_queue;
    (match metrics_out with
     | None -> ()
     | Some out ->
       let json =
         D.metrics_to_json ~config ~nodes:(Flowgraph.Csr.node_count csr)
           ~edges:(Flowgraph.Csr.edge_count csr) ~rate r
       in
       write_file out (json ^ "\n");
       Printf.printf "wrote %s\n" out);
    if not r.D.delivered_all then fail "broadcast did not complete"
  in
  let info =
    Cmd.info "run"
      ~doc:"Build the optimal low-degree overlay and stream chunks over it \
            with the flat-arena event-heap dataplane."
  in
  Cmd.v info
    Term.(const run $ instance_arg $ chunks $ streaming $ jitter $ seed
          $ discipline $ no_dedup $ metrics_out)

let stream_cmd =
  let doc =
    "Streaming dataplane: per-neighbor-queue broadcast dynamics at scale."
  in
  Cmd.group (Cmd.info "stream" ~doc) [ stream_run_cmd ]

(* scheme: persistent artifacts *)

let read_scheme path =
  match Broadcast.Scheme.of_json (read_text path) with
  | Ok s -> s
  | Error msg -> die (Printf.sprintf "cannot load scheme %s: %s" path msg)

let write_scheme path s =
  let doc = Broadcast.Scheme.to_json s ^ "\n" in
  if path = "-" then print_string doc
  else begin
    write_file path doc;
    Printf.printf "wrote %s\n" path
  end

let scheme_file_arg =
  let doc = "Scheme file (bmp-scheme JSON); '-' for stdin." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SCHEME" ~doc)

let scheme_build_cmd =
  let kind =
    let doc =
      "Construction: 'acyclic' (Theorem 4.1), 'cyclic' (Theorem 5.2, open-only) \
       or 'min-depth' (depth-optimized acyclic)."
    in
    Arg.(value
         & opt (enum [ ("acyclic", `Acyclic); ("cyclic", `Cyclic); ("min-depth", `Min_depth) ]) `Acyclic
         & info [ "k"; "kind" ] ~doc)
  in
  let rate_arg =
    let doc = "Target rate (default: the family's optimal rate, with back-off)." in
    Arg.(value & opt (some float) None & info [ "rate" ] ~docv:"RATE" ~doc)
  in
  let out =
    let doc = "Output scheme file ('-' for stdout)." in
    Arg.(value & opt string "-" & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let run path kind rate out =
    let inst = read_instance path in
    let word_at rate =
      match Broadcast.Greedy.test inst ~rate with
      | Some word -> word
      | None -> fail (Printf.sprintf "rate %g is not feasible for this instance" rate)
    in
    let scheme =
      or_invalid @@ fun () ->
      match kind with
      | `Acyclic -> begin
        match rate with
        | None -> snd (Broadcast.Low_degree.build_optimal inst)
        | Some rate -> Broadcast.Low_degree.build inst ~rate (word_at rate)
      end
      | `Min_depth -> begin
        match rate with
        | None -> snd (Broadcast.Depth.build_optimal inst)
        | Some rate -> Broadcast.Depth.build inst ~rate (word_at rate)
      end
      | `Cyclic ->
        if inst.Platform.Instance.m > 0 then
          die "cyclic construction requires open nodes only";
        Broadcast.Cyclic_open.build ?t:rate inst
    in
    write_scheme out scheme
  in
  let info =
    Cmd.info "build" ~doc:"Build a scheme artifact from an instance and serialize it."
  in
  Cmd.v info Term.(const run $ instance_arg $ kind $ rate_arg $ out)

let print_scheme_report s =
  let r = Broadcast.Scheme.report s in
  Format.printf "%a@." Broadcast.Scheme.pp s;
  Printf.printf "throughput (oracle)  : %.6f\n" r.Broadcast.Verify.throughput;
  Printf.printf "achieves target rate : %b\n" (Broadcast.Scheme.achieves_target s);
  Printf.printf "acyclic              : %b\n" r.Broadcast.Verify.acyclic;
  Printf.printf "bandwidth / firewall / caps ok: %b / %b / %b\n"
    r.Broadcast.Verify.bandwidth_ok r.Broadcast.Verify.firewall_ok
    r.Broadcast.Verify.bin_ok

let scheme_check_cmd =
  let reserialize =
    let doc =
      "Re-serialize the loaded scheme to $(docv) (canonical bytes — identical \
       to a fresh serialization of the same artifact)."
    in
    Arg.(value & opt (some string) None & info [ "reserialize" ] ~docv:"FILE" ~doc)
  in
  let run path reserialize =
    let s = read_scheme path in
    print_scheme_report s;
    Option.iter (fun out -> write_scheme out s) reserialize;
    if not (Broadcast.Scheme.achieves_target s) then exit 1
  in
  let info =
    Cmd.info "check"
      ~doc:"Load a scheme file, re-verify it against the max-flow oracle, and exit \
            non-zero if it misses its target rate."
  in
  Cmd.v info Term.(const run $ scheme_file_arg $ reserialize)

let scheme_show_cmd =
  let edges = Arg.(value & flag & info [ "edges" ] ~doc:"Print the overlay edges.") in
  let run path edges =
    let s = read_scheme path in
    print_scheme_report s;
    let degrees = Broadcast.Metrics.scheme_report s in
    Printf.printf "max degree excess    : %d\n" degrees.Broadcast.Metrics.max_excess;
    (match (Broadcast.Scheme.provenance s).Broadcast.Scheme.degree_bound with
    | Some bound ->
      Printf.printf "promised excess bound: +%d (%s)\n" bound
        (if degrees.Broadcast.Metrics.max_excess <= bound then "kept" else "VIOLATED")
    | None -> print_string "promised excess bound: none\n");
    if Broadcast.Scheme.is_acyclic s then
      Printf.printf "depth                : %d\n" (Broadcast.Metrics.scheme_depth s);
    let node, cut = Broadcast.Metrics.scheme_bottleneck s in
    Printf.printf "bottleneck           : C%d at %.6f\n" node cut;
    if edges then
      Flowgraph.Graph.iter_edges
        (fun ~src ~dst w -> Printf.printf "  C%d -> C%d : %.6f\n" src dst w)
        (Broadcast.Scheme.graph s)
  in
  let info = Cmd.info "show" ~doc:"Summarize a scheme file (provenance, metrics, degrees)." in
  Cmd.v info Term.(const run $ scheme_file_arg $ edges)

let scheme_export_cmd =
  let dot_out =
    Arg.(value & opt (some string) None
         & info [ "dot" ] ~docv:"FILE" ~doc:"Write the overlay as a Graphviz file.")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Write the bare graph as legacy JSON.")
  in
  let run path dot json =
    let s = read_scheme path in
    if dot = None && json = None then die "nothing to do: pass --dot and/or --json";
    let inst = Broadcast.Scheme.instance s in
    let node_class v =
      if v = 0 then Some "source"
      else if Platform.Instance.is_guarded inst v then Some "guarded"
      else Some "open"
    in
    let graph = Broadcast.Scheme.graph s in
    let emit out content =
      if out = "-" then print_string content
      else begin
        write_file out content;
        Printf.printf "wrote %s\n" out
      end
    in
    Option.iter (fun out -> emit out (Flowgraph.Export.to_dot ~node_class graph)) dot;
    Option.iter
      (fun out -> emit out (Flowgraph.Export.to_json graph ^ "\n"))
      json
  in
  let info = Cmd.info "export" ~doc:"Convert a scheme file to Graphviz or bare-graph JSON." in
  Cmd.v info Term.(const run $ scheme_file_arg $ dot_out $ json_out)

let scheme_cmd =
  let doc = "Build, verify, inspect and convert persistent scheme artifacts." in
  Cmd.group (Cmd.info "scheme" ~doc)
    [ scheme_build_cmd; scheme_check_cmd; scheme_show_cmd; scheme_export_cmd ]

(* churn: fault injection *)

let read_trace path =
  match Churn.Trace.of_json (read_text path) with
  | Ok t -> t
  | Error msg -> die (Printf.sprintf "cannot load trace %s: %s" path msg)

let trace_events_arg =
  Arg.(value & opt int 100
       & info [ "events" ] ~docv:"N" ~doc:"Number of churn events (generated traces).")

let trace_seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed for trace generation.")

(* Self-healing options shared by `churn run` and `tracker serve`. *)

let policy_arg =
  Arg.(value
       & opt (enum [ ("patch", `Patch); ("rebuild", `Rebuild); ("adaptive", `Adaptive) ])
           `Adaptive
       & info [ "policy" ] ~doc:"Self-healing policy: patch, rebuild or adaptive.")

let min_ratio_arg =
  Arg.(value & opt float 0.5
       & info [ "min-ratio" ] ~docv:"R"
           ~doc:"Adaptive: rebuild when rate/optimal falls below R.")

let degree_slack_arg =
  Arg.(value & opt int 4
       & info [ "degree-slack" ] ~docv:"D"
           ~doc:"Adaptive: rebuild when degree drift exceeds the promised \
                 bound by more than D.")

let headroom_arg =
  Arg.(value & opt float 0.9
       & info [ "headroom" ] ~docv:"H"
           ~doc:"Build the initial overlay at H times the optimal rate.")

let rebuild_headroom_arg =
  Arg.(value & opt float 0.8
       & info [ "rebuild-headroom" ] ~docv:"H"
           ~doc:"Policy-ordered rebuilds target H times the optimum (spare \
                 capacity for later patches).")

let audit_conv =
  let parse s =
    match Churn.Audit.of_name s with
    | Some l -> Ok l
    | None ->
      Error
        (`Msg
           (Printf.sprintf
              "unknown audit level %S (off|on|check|strict|certificate[:K])" s))
  in
  Arg.conv
    (parse, fun ppf l -> Format.pp_print_string ppf (Churn.Audit.level_name l))

let audit_arg =
  Arg.(value & opt audit_conv Churn.Audit.Check
       & info [ "audit" ]
           ~doc:"Invariant auditing: $(b,off), $(b,on) (default: the full \
                 per-event scan), $(b,strict) (adds the max-flow \
                 cross-check) or $(b,certificate[:K]) (delta-scoped fast \
                 path re-checking only what each event disturbed, with a \
                 full strict audit every K events as a backstop; default \
                 K = 64, 0 = never). Never changes the replay's results.")

let engine_conv =
  let parse s =
    match Churn.Audit.engine_of_name s with
    | Some e -> Ok e
    | None -> Error (`Msg (Printf.sprintf "unknown engine %S (full|incremental)" s))
  in
  Arg.conv
    (parse, fun ppf e -> Format.pp_print_string ppf (Churn.Audit.engine_name e))

let engine_arg ~default ~doc =
  Arg.(value & opt engine_conv default & info [ "engine" ] ~docv:"ENGINE" ~doc)

let check_healing_opts ~min_ratio ~degree_slack ~headroom ~rebuild_headroom =
  if not (headroom > 0. && headroom <= 1.) then die "--headroom must lie in (0, 1]";
  if not (rebuild_headroom > 0. && rebuild_headroom <= 1.) then
    die "--rebuild-headroom must lie in (0, 1]";
  if not (min_ratio >= 0. && min_ratio <= 1.) then
    die "--min-ratio must lie in [0, 1]";
  if degree_slack < 0 then die "--degree-slack must be >= 0"

let policy_of ~min_ratio ~degree_slack = function
  | `Patch -> Churn.Policy.Always_patch
  | `Rebuild -> Churn.Policy.Always_rebuild
  | `Adaptive -> Churn.Policy.Adaptive { min_ratio; degree_slack }

(* The headroomed initial overlay both churn replays and the tracker
   serve: built at [headroom] times the acyclic optimum. *)
let healing_overlay inst ~headroom =
  or_invalid @@ fun () ->
  let t, _ = Broadcast.Greedy.optimal_acyclic inst in
  Broadcast.Overlay.build ~rate:(t *. headroom) inst

let churn_gen_trace_cmd =
  let max_batch =
    Arg.(value & opt int 5
         & info [ "max-batch" ] ~docv:"K" ~doc:"Largest correlated failure batch.")
  in
  let max_flash =
    Arg.(value & opt int 8
         & info [ "max-flash" ] ~docv:"K" ~doc:"Largest flash-crowd join burst.")
  in
  let out =
    Arg.(value & opt string "-"
         & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output trace file ('-' for stdout).")
  in
  let run events seed max_batch max_flash out =
    if events < 0 then die "--events must be >= 0";
    if max_batch < 1 then die "--max-batch must be >= 1";
    if max_flash < 1 then die "--max-flash must be >= 1";
    let mix = { Churn.Trace.default_mix with max_batch; max_flash } in
    let trace =
      Churn.Trace.gen ~mix ~events (Prng.Splitmix.create (Int64.of_int seed))
    in
    let doc = Churn.Trace.to_json trace ^ "\n" in
    if out = "-" then print_string doc
    else begin
      write_file out doc;
      Printf.printf "wrote %s (%d events)\n" out (Churn.Trace.length trace)
    end
  in
  let info =
    Cmd.info "gen-trace"
      ~doc:"Generate a seeded adversarial churn trace (bmp-trace JSON)."
  in
  Cmd.v info
    Term.(const run $ trace_events_arg $ trace_seed_arg $ max_batch $ max_flash $ out)

let churn_run_cmd =
  let trace_file =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Replay this bmp-trace file instead of generating one from \
                   $(b,--events)/$(b,--seed).")
  in
  let timeline_arg =
    Arg.(value & flag & info [ "timeline" ] ~doc:"Print one line per event.")
  in
  let final_scheme_arg =
    Arg.(value & opt (some string) None
         & info [ "final-scheme" ] ~docv:"FILE"
             ~doc:"Write the post-replay scheme artifact (bmp-scheme JSON) to \
                   $(docv) ('-' for stdout).")
  in
  let run path trace_file events seed policy min_ratio degree_slack headroom
      rebuild_headroom audit engine timeline final_scheme =
    check_healing_opts ~min_ratio ~degree_slack ~headroom ~rebuild_headroom;
    let inst = read_instance path in
    let trace =
      match trace_file with
      | Some f -> read_trace f
      | None ->
        if events < 0 then die "--events must be >= 0";
        Churn.Trace.gen ~events (Prng.Splitmix.create (Int64.of_int seed))
    in
    let policy = policy_of ~min_ratio ~degree_slack policy in
    let overlay = healing_overlay inst ~headroom in
    let on_event (r : Churn.Engine.record) =
      if timeline then
        Printf.printf
          "%4d %-11s %-7s n=%-4d rate=%-9.3f opt=%-9.3f ratio=%.3f edges=%-4d \
           churn=%-6d excess=%-3d rebuilds=%d\n"
          r.Churn.Engine.index
          (Churn.Trace.label r.Churn.Engine.event)
          (match r.Churn.Engine.action with
          | Churn.Engine.Patched -> "patch"
          | Churn.Engine.Rebuilt -> "rebuild"
          | Churn.Engine.Skipped -> "skip")
          r.Churn.Engine.size r.Churn.Engine.rate r.Churn.Engine.optimal
          r.Churn.Engine.ratio r.Churn.Engine.churn_edges
          r.Churn.Engine.cumulative_churn r.Churn.Engine.max_excess
          r.Churn.Engine.rebuilds
    in
    match
      Churn.Engine.run ~policy ~audit ~engine ~rebuild_headroom ~on_event
        overlay trace
    with
    | exception Churn.Audit.Violation { index; what } ->
      Printf.eprintf "audit violation at event %d: %s\n" index what;
      exit 1
    | result ->
      let s = result.Churn.Engine.summary in
      Printf.printf "policy          : %s\n" (Churn.Policy.name policy);
      Printf.printf "audit           : %s\n" (Churn.Audit.level_name audit);
      Printf.printf "engine          : %s\n" (Churn.Audit.engine_name engine);
      Printf.printf "events          : %d (%d applied, %d skipped)\n" s.Churn.Engine.events
        s.Churn.Engine.applied s.Churn.Engine.skipped;
      Printf.printf "rebuilds        : %d\n" s.Churn.Engine.rebuilds;
      Printf.printf "edge churn      : %d\n" s.Churn.Engine.total_churn;
      Printf.printf "rate ratio      : min %.4f, mean %.4f\n" s.Churn.Engine.min_ratio
        s.Churn.Engine.mean_ratio;
      Printf.printf "final overlay   : %d nodes, rate %.6f (optimal %.6f)\n"
        s.Churn.Engine.final_size s.Churn.Engine.final_rate
        s.Churn.Engine.final_optimal;
      Option.iter
        (fun out ->
          write_scheme out
            (Broadcast.Overlay.scheme result.Churn.Engine.overlay))
        final_scheme
  in
  let info =
    Cmd.info "run"
      ~doc:"Replay a churn trace against an instance's overlay under a \
            self-healing policy, auditing every event."
  in
  let engine =
    engine_arg ~default:Churn.Audit.Full
      ~doc:
        "Rate-maintenance engine: $(b,full) (stateless, default) or \
         $(b,incremental) (warm-start max-flow threaded across events; with \
         $(b,--audit strict) every event differentially cross-checks it \
         against a from-scratch solve). The knob never changes the replay's \
         results."
  in
  Cmd.v info
    Term.(const run $ instance_arg $ trace_file $ trace_events_arg $ trace_seed_arg
          $ policy_arg $ min_ratio_arg $ degree_slack_arg $ headroom_arg
          $ rebuild_headroom_arg $ audit_arg $ engine $ timeline_arg
          $ final_scheme_arg)

let churn_cmd =
  let doc = "Fault injection: generate churn traces and replay them under self-healing policies." in
  Cmd.group (Cmd.info "churn" ~doc) [ churn_gen_trace_cmd; churn_run_cmd ]

(* tracker: long-running daemon serving NDJSON requests *)

let tracker_serve_cmd =
  let socket_arg =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Listen on a Unix domain socket and serve one connection \
                   instead of stdin/stdout.")
  in
  let batch_arg =
    Arg.(value & opt int 1
         & info [ "batch" ] ~docv:"N"
             ~doc:"Coalesce up to N queued mutations into one repair + one \
                   audit (1 = serve every request immediately).")
  in
  let window_arg =
    Arg.(value & opt float 50.
         & info [ "window-ms" ] ~docv:"MS"
             ~doc:"Admission window: flush a partial batch after MS \
                   milliseconds without new input.")
  in
  let max_line_arg =
    Arg.(value & opt int 65536
         & info [ "max-line" ] ~docv:"BYTES"
             ~doc:"Answer request lines longer than BYTES with an \
                   'oversized' error response.")
  in
  let state_out_arg =
    Arg.(value & opt (some string) None
         & info [ "state-out" ] ~docv:"FILE"
             ~doc:"On exit, write the final scheme artifact (bmp-scheme \
                   JSON) to $(docv).")
  in
  let trace_out_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"On exit, write the committed (coalesced) event trace \
                   (bmp-trace JSON) to $(docv) — replaying it offline with \
                   'bmp churn run --trace' reproduces the served scheme.")
  in
  let deterministic_arg =
    Arg.(value & flag
         & info [ "deterministic" ]
             ~doc:"Zero every latency_us field so the response stream is \
                   byte-deterministic (golden tests).")
  in
  let run path socket batch window_ms max_line state_out trace_out
      deterministic policy min_ratio degree_slack headroom rebuild_headroom
      audit engine =
    check_healing_opts ~min_ratio ~degree_slack ~headroom ~rebuild_headroom;
    if batch < 1 then die "--batch must be >= 1";
    if not (window_ms >= 0.) then die "--window-ms must be >= 0";
    if max_line < 16 then die "--max-line must be >= 16";
    let inst = read_instance path in
    let overlay = healing_overlay inst ~headroom in
    let config =
      {
        Tracker.Session.policy = policy_of ~min_ratio ~degree_slack policy;
        audit;
        engine;
        rebuild_headroom = Some rebuild_headroom;
        batch;
        max_line;
        clock =
          (if deterministic then fun () -> 0. else Unix.gettimeofday);
      }
    in
    let session = Tracker.Session.create config overlay in
    let stopping = ref false in
    let on_signal = Sys.Signal_handle (fun _ -> stopping := true) in
    Sys.set_signal Sys.sigint on_signal;
    Sys.set_signal Sys.sigterm on_signal;
    let serve input output =
      Tracker.Daemon.serve ~window_s:(window_ms /. 1000.)
        ~stop:(fun () -> !stopping)
        session ~input ~output
    in
    (match socket with
    | None -> serve Unix.stdin stdout
    | Some path ->
      or_die @@ fun () ->
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 1;
      Printf.eprintf "tracker: listening on %s\n%!" path;
      (* Sequential multi-client: when a client disconnects, the daemon
         accepts the next one against the same live session, so scheme
         state and sequence numbering persist across connections. Only a
         shutdown request or a signal ends the loop. *)
      let accept () =
        match Unix.accept sock with
        | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          None (* interrupted while waiting for a client: clean exit *)
        | conn, _ ->
          let out = Unix.out_channel_of_descr conn in
          Some
            ( conn,
              out,
              fun () ->
                (try flush out with Sys_error _ -> ());
                (try Unix.close conn with Unix.Unix_error _ -> ()) )
      in
      Tracker.Daemon.serve_loop ~window_s:(window_ms /. 1000.)
        ~stop:(fun () -> !stopping)
        session ~accept;
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ()));
    (* Final snapshots; stdout stays pure NDJSON, reporting goes to
       stderr. *)
    Option.iter
      (fun out ->
        write_file out
          (Broadcast.Scheme.to_json
             (Broadcast.Overlay.scheme (Tracker.Session.live session))
          ^ "\n");
        Printf.eprintf "tracker: wrote %s\n" out)
      state_out;
    Option.iter
      (fun out ->
        write_file out
          (Churn.Trace.to_json (Tracker.Session.executed session) ^ "\n");
        Printf.eprintf "tracker: wrote %s\n" out)
      trace_out;
    let c = Tracker.Session.counters session in
    Printf.eprintf
      "tracker: served %d requests (%d events in %d batches, %d errors, %d \
       rollbacks, %d queries)\n"
      c.Tracker.Session.requests c.Tracker.Session.events
      c.Tracker.Session.batches c.Tracker.Session.errors
      c.Tracker.Session.rollbacks c.Tracker.Session.queries
  in
  let info =
    Cmd.info "serve"
      ~doc:"Own a live scheme and serve NDJSON join/leave/degrade/restore \
            requests until EOF, shutdown or SIGINT; drains the queue and \
            snapshots the final state on exit."
  in
  let engine =
    engine_arg ~default:Churn.Audit.Incremental
      ~doc:
        "Rate-maintenance engine: $(b,incremental) (default — warm-start \
         max-flow, steady-state cost is the per-request delta) or $(b,full) \
         (stateless re-derivation)."
  in
  Cmd.v info
    Term.(const run $ instance_arg $ socket_arg $ batch_arg $ window_arg
          $ max_line_arg $ state_out_arg $ trace_out_arg $ deterministic_arg
          $ policy_arg $ min_ratio_arg $ degree_slack_arg $ headroom_arg
          $ rebuild_headroom_arg $ audit_arg $ engine)

let tracker_cmd =
  let doc = "Long-running tracker daemon: a live scheme served over NDJSON." in
  Cmd.group (Cmd.info "tracker" ~doc) [ tracker_serve_cmd ]

let () =
  let doc = "bounded multi-port broadcast: overlays, bounds and experiments" in
  let info = Cmd.info "bmp" ~version:"1.0.0" ~doc in
  let code =
    Cmd.eval
      (Cmd.group info
         [ solve_cmd; generate_cmd; exp_cmd; exp_all_cmd; simulate_cmd;
           stream_cmd; trees_cmd; scheme_cmd; churn_cmd; tracker_cmd;
           selfcheck_cmd ])
  in
  (* cmdliner reports its own usage errors (unknown subcommand, bad flag
     value) as 124; the bmp contract is exit 2 for those. *)
  exit (if code = Cmd.Exit.cli_error then 2 else code)
