(* Benchmark harness.

   Two parts, in one executable (run with `dune exec bench/main.exe`):

   1. Reproduction of every table and figure of the paper — the experiment
      drivers from lib/experiments, printed in paper order. Pass [--fast]
      to shrink the two expensive sweeps (Figure 7 grid, Figure 19
      replication) for smoke runs.

   2. Bechamel micro-benchmarks — one [Test.make] per experiment family,
      timing the algorithm that regenerates it (GreedyTest, Algorithm 1,
      the Theorem 4.1 pipeline, the Theorem 5.2 construction, max-flow
      verification, instance generation, the transport simulator, the
      last-mile fit). This substantiates the paper's claim that "all
      proposed algorithms are very efficient in time complexity". *)

open Bechamel
open Toolkit

let fast = Array.exists (( = ) "--fast") Sys.argv

(* ------------------------------------------------------------------ *)
(* Part 1: table/figure reproduction                                   *)
(* ------------------------------------------------------------------ *)

let run_experiments () =
  let fmt = Format.std_formatter in
  print_endline "######################################################";
  print_endline "## Part 1: reproduction of the paper's tables/figures";
  print_endline "######################################################";
  if fast then begin
    (* Same artifacts, smaller sweeps. *)
    Experiments.Fig1_example.print fmt;
    Experiments.Fig6_unbounded.print ~ms:[ 2; 4; 8 ] fmt;
    Experiments.Fig7_surface.print ~ns:[ 10; 40; 100 ] ~ms:[ 10; 40; 100 ] fmt;
    Experiments.Fig8_hardness.print ~seeds:[ 1; 2 ] fmt;
    Experiments.Cyclic_walkthrough.print fmt;
    Experiments.Fig18_worst.print fmt;
    Experiments.Thm63_family.print ~ks:[ 1; 2 ] fmt;
    Experiments.Fig19_average.print ~config:Experiments.Fig19_average.quick_config fmt;
    Experiments.Massoulie_validation.print ~chunks:150 fmt;
    Experiments.Lastmile_validation.print ~noises:[ 0.; 0.2 ] fmt;
    Experiments.Churn_repair.print fmt;
    Experiments.Depth_ablation.print fmt;
    Experiments.Jitter_resilience.print ~jitters:[ 0.; 0.1; 0.5 ] fmt;
    Experiments.One_port_comparison.print fmt
  end
  else Experiments.Registry.run_all fmt;
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* Part 2: micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

(* Pre-built workloads shared by the timed closures (allocation happens
   outside the timed region). *)

let fig1 = Platform.Instance.fig1

let mixed_instance n =
  let rng = Prng.Splitmix.create 17L in
  Platform.Generator.generate
    { Platform.Generator.total = n; p_open = 0.7; dist = Prng.Dist.unif100 }
    rng

let open_instance n =
  let rng = Prng.Splitmix.create 18L in
  Platform.Generator.generate
    { Platform.Generator.total = n; p_open = 1.; dist = Prng.Dist.unif100 }
    rng

let inst100 = mixed_instance 100
let inst1000 = mixed_instance 1000
let open100 = open_instance 100

let rate100, word100 =
  let t, w = Broadcast.Greedy.optimal_acyclic inst100 in
  (t *. (1. -. 4e-9), w)

let scheme100 =
  Broadcast.Scheme.graph (Broadcast.Low_degree.build inst100 ~rate:rate100 word100)

let fig1_scheme = Broadcast.Scheme.graph (snd (Broadcast.Low_degree.build_optimal fig1))
let gadget57 = Broadcast.Ratio.five_sevenths_instance ~epsilon:(1. /. 14.)
let sqrt41_inst = fst (Broadcast.Ratio.sqrt41_instance ~k:1 ())

let lastmile_matrix =
  let rng = Prng.Splitmix.create 19L in
  let bout = Array.init 20 (fun _ -> Prng.Dist.sample Platform.Plab.dist rng) in
  let truth = { Lastmile.Model.bout; bin = Array.map (fun b -> 2. *. b) bout } in
  Lastmile.Model.synthetic_matrix ~noise:0.1 truth rng

let overlay100 =
  let t, _ = Broadcast.Greedy.optimal_acyclic inst100 in
  Broadcast.Overlay.build ~rate:(t *. 0.9) inst100

let omega1000 =
  Broadcast.Word.omega1 ~n:inst1000.Platform.Instance.n
    ~m:inst1000.Platform.Instance.m

let tests =
  [
    (* Table I / Figure 5: one linear-time GreedyTest call. *)
    Test.make ~name:"tableI/greedy-test-fig1"
      (Staged.stage (fun () -> Broadcast.Greedy.test fig1 ~rate:4.0));
    (* Figure 3 / Algorithm 1 on 100 open nodes. *)
    Test.make ~name:"alg1/acyclic-open-100"
      (Staged.stage (fun () -> Broadcast.Acyclic_open.build open100));
    (* Theorem 4.1: dichotomic search for T*ac, n+m = 100 and 1000. *)
    Test.make ~name:"thm41/optimal-acyclic-100"
      (Staged.stage (fun () -> Broadcast.Greedy.optimal_acyclic inst100));
    Test.make ~name:"thm41/optimal-acyclic-1000"
      (Staged.stage (fun () -> Broadcast.Greedy.optimal_acyclic inst1000));
    (* Lemma 4.6: low-degree scheme construction. *)
    Test.make ~name:"lemma46/low-degree-100"
      (Staged.stage (fun () ->
           Broadcast.Low_degree.build inst100 ~rate:rate100 word100));
    (* Theorem 5.2: cyclic construction. *)
    Test.make ~name:"thm52/cyclic-open-100"
      (Staged.stage (fun () -> Broadcast.Cyclic_open.build open100));
    (* Verification oracle (Section II-D definition). *)
    Test.make ~name:"verify/maxflow-fig1"
      (Staged.stage (fun () ->
           Flowgraph.Maxflow.min_broadcast_flow fig1_scheme ~src:0));
    Test.make ~name:"verify/maxflow-100"
      (Staged.stage (fun () ->
           Flowgraph.Maxflow.min_broadcast_flow scheme100 ~src:0));
    (* Structure-aware fast path (acyclic incoming-cut) on the same scheme. *)
    Test.make ~name:"verify/fast-path-100"
      (Staged.stage (fun () ->
           Flowgraph.Maxflow.broadcast_throughput scheme100 ~src:0));
    (* Batch API over a small fleet: full reports for five schemes. *)
    Test.make ~name:"verify/check-batch-5x100"
      (Staged.stage
         (let batch = List.init 5 (fun _ -> (inst100, scheme100)) in
          fun () -> Broadcast.Verify.check_batch batch));
    (* Early-exit rate certification at the achieved rate. *)
    Test.make ~name:"verify/achieves-100"
      (Staged.stage (fun () ->
           Broadcast.Verify.achieves inst100 scheme100 ~rate:rate100));
    (* Figure 7: one surface cell. *)
    Test.make ~name:"fig7/cell-50x21"
      (Staged.stage (fun () -> Experiments.Fig7_surface.compute_cell ~n:50 ~m:21));
    (* Figure 18: full comparison on the 5/7 gadget. *)
    Test.make ~name:"fig18/compare-gadget"
      (Staged.stage (fun () -> Broadcast.Ratio.compare_instance gadget57));
    (* Theorem 6.3: optimal acyclic on the sqrt41 family. *)
    Test.make ~name:"thm63/greedy-sqrt41-k1"
      (Staged.stage (fun () -> Broadcast.Greedy.optimal_acyclic sqrt41_inst));
    (* Figure 19: one replicate (generation + three throughputs). *)
    Test.make ~name:"fig19/replicate-n100"
      (Staged.stage
         (let rng = Prng.Splitmix.create 20L in
          fun () ->
            let inst =
              Platform.Generator.generate
                {
                  Platform.Generator.total = 100;
                  p_open = 0.7;
                  dist = Prng.Dist.unif100;
                }
                rng
            in
            Broadcast.Ratio.compare_instance inst));
    (* Canonical-word evaluation at n + m = 1000 (the distributed-friendly
       scheme of Appendix XII). *)
    Test.make ~name:"fig19/omega-eval-1000"
      (Staged.stage (fun () ->
           Broadcast.Word.optimal_throughput inst1000 omega1000));
    (* Transport simulation (E11). *)
    Test.make ~name:"massoulie/sim-fig1-100chunks"
      (Staged.stage (fun () ->
           Massoulie.Sim.simulate
             ~config:{ Massoulie.Sim.default_config with chunks = 100 }
             fig1_scheme ~rate:3.99));
    (* Last-mile fit (E12). *)
    Test.make ~name:"lastmile/fit-20x20"
      (Staged.stage (fun () -> Lastmile.Model.fit lastmile_matrix));
    (* Arborescence decomposition (Section II-C scheduling step). *)
    Test.make ~name:"decompose/arborescence-100"
      (Staged.stage (fun () -> Flowgraph.Arborescence.decompose scheme100 ~root:0));
    (* E13 extension: one local repair vs its full rebuild. *)
    Test.make ~name:"churn/leave-patch-100"
      (Staged.stage (fun () -> Broadcast.Repair.leave overlay100 ~node:50));
    Test.make ~name:"churn/join-patch-100"
      (Staged.stage (fun () ->
           Broadcast.Repair.join overlay100 ~bandwidth:42. ~cls:Platform.Instance.Open));
    (* E14 extension: min-depth construction. *)
    Test.make ~name:"depth/min-depth-100"
      (Staged.stage (fun () -> Broadcast.Depth.build inst100 ~rate:rate100 word100));
    (* E15 extension: simulation under jitter. *)
    Test.make ~name:"jitter/sim-fig1-jitter0.2"
      (Staged.stage (fun () ->
           Massoulie.Sim.simulate
             ~config:
               { Massoulie.Sim.default_config with chunks = 100; jitter = 0.2 }
             fig1_scheme ~rate:3.99));
    (* E16 extension: one-port baseline simulation. *)
    Test.make ~name:"oneport/sim-12nodes"
      (Staged.stage
         (let bout = Array.make 13 10. and bin = Array.make 13 20. in
          let guarded = Array.make 13 false in
          fun () ->
            Massoulie.One_port.simulate
              ~config:{ Massoulie.One_port.default_config with chunks = 60 }
              ~bout ~bin ~guarded ()));
    (* Exact-rational certification of T*ac on the 5/7 gadget. *)
    Test.make ~name:"exactq/five-sevenths"
      (Staged.stage (fun () ->
           Broadcast.Exact_q.optimal_acyclic ~b0:Rational.Q.one
             ~opens:[ Rational.Q.make 8 7 ]
             ~guardeds:[ Rational.Q.make 3 7; Rational.Q.make 3 7 ]));
  ]

let benchmark test =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~stabilize:true ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  Analyze.all ols Instance.monotonic_clock raw

let pp_ns fmt ns =
  if ns < 1e3 then Format.fprintf fmt "%8.1f ns" ns
  else if ns < 1e6 then Format.fprintf fmt "%8.2f us" (ns /. 1e3)
  else if ns < 1e9 then Format.fprintf fmt "%8.2f ms" (ns /. 1e6)
  else Format.fprintf fmt "%8.3f s " (ns /. 1e9)

let run_benchmarks () =
  print_endline "\n######################################################";
  print_endline "## Part 2: Bechamel micro-benchmarks (per call)";
  print_endline "######################################################";
  Format.printf "@.%-32s %12s %8s@." "benchmark" "time/call" "r^2";
  Format.printf "%s@." (String.make 56 '-');
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name ols ->
          let estimate =
            match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
          in
          let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
          Format.printf "%-32s %a %8.4f@."
            (match String.index_opt name ' ' with
            | Some i -> String.sub name (i + 1) (String.length name - i - 1)
            | None -> name)
            pp_ns estimate r2)
        results)
    tests

(* Ablation: dichotomic-search depth vs accuracy (the numerical knob
   DESIGN.md documents). *)
let run_dichotomy_ablation () =
  print_endline "\n######################################################";
  print_endline "## Ablation: dichotomic iterations vs T*ac accuracy";
  print_endline "######################################################";
  let reference, _ = Broadcast.Greedy.optimal_acyclic ~iterations:100 inst100 in
  Format.printf "@.%10s %16s %14s@." "iterations" "T*ac" "rel. error";
  List.iter
    (fun iterations ->
      let t, _ = Broadcast.Greedy.optimal_acyclic ~iterations inst100 in
      Format.printf "%10d %16.10f %14.2e@." iterations t
        (Float.abs (t -. reference) /. reference))
    [ 10; 20; 30; 40; 60; 100 ];
  print_endline
    "~53 bisections exhaust double precision; the search now stops early\n\
     once the bracket closes below 1e-12 relative (~40 probes in practice\n\
     -- Util.dichotomic_search reports the count), and each probe costs\n\
     one O(n+m) GreedyTest pass."

let () =
  run_experiments ();
  run_benchmarks ();
  run_dichotomy_ablation ();
  print_endline "\nbench: done." 
