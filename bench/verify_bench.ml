(* Micro-benchmark for the verification engine's flowgraph core.

   Compares, on the same schemes, three ways of computing the broadcast
   throughput [min over v of maxflow (C0 -> v)]:

   - legacy     : Maxflow_legacy.min_broadcast_flow — the pre-CSR batch
                  Dinic (int list adjacency, adjacency copied per phase,
                  recursive blocking-flow DFS), kept as the frozen oracle;
   - csr        : Maxflow.min_broadcast_flow — the CSR arena (flat arc
                  arrays, blit-reset cursors, ring-buffer BFS, iterative
                  blocking flow);
   - structured : Maxflow.broadcast_throughput — the O(V + E) incoming-cut
                  fast path on acyclic schemes, batch CSR Dinic otherwise.

   It also measures the full verify-plus-metrics consumer path two ways:

   - split      : Verify.check + Metrics.degree_report (+ Metrics.depth on
                  acyclic schemes) on the bare graph — each call walks or
                  re-freezes the graph on its own;
   - artifact   : Scheme.create + Scheme.report + Metrics.scheme_report
                  (+ Metrics.scheme_depth) — one construction-time
                  validation, one shared CSR snapshot for every query.

   Each case asserts that the engines agree within 1e-6 relative error,
   prints a table, and appends its row to BENCH_verify.json (written in
   the current directory) so the performance trajectory is tracked across
   PRs. Run with `make bench-verify` or
   `dune exec -- bench/verify_bench.exe`. *)

(* Wall-clock and GC probes shared with the other bench executables
   (slow calls measured once, fast calls averaged — see
   bench/bench_util.mli). *)
let time = Bench_util.time

let mixed_instance ?(p_open = 0.7) ~seed n =
  let rng = Prng.Splitmix.create seed in
  Platform.Generator.generate
    { Platform.Generator.total = n; p_open; dist = Prng.Dist.unif100 }
    rng

let acyclic_scheme n =
  let inst = mixed_instance ~seed:(Int64.of_int (41 + n)) n in
  let t, word = Broadcast.Greedy.optimal_acyclic inst in
  let rate = t *. (1. -. 4e-9) in
  (inst, Broadcast.Low_degree.build inst ~rate word)

let cyclic_scheme n =
  let inst = mixed_instance ~p_open:1. ~seed:(Int64.of_int (97 + n)) n in
  (inst, Broadcast.Cyclic_open.build inst)

type row = {
  name : string;
  nodes : int;
  edges : int;
  acyclic : bool;
  legacy_s : float;
  csr_s : float;
  structured_s : float;
  split_s : float;
  artifact_s : float;
  (* GC profile of the structured fast path — the ROADMAP's
     "zero-allocation hot paths" target, so allocation regressions show
     up in BENCH_verify.json next to the latency columns. *)
  minor_words_per_call : float;
  major_collections : int;
  agree : bool;
}

let close a b = Float.abs (a -. b) <= 1e-6 *. Float.max 1. (Float.max a b)

let case name (inst, scheme) =
  let g = Broadcast.Scheme.graph scheme in
  let rate = Broadcast.Scheme.rate scheme in
  let provenance = Broadcast.Scheme.provenance scheme in
  let acyclic = Flowgraph.Topo.is_acyclic g in
  let legacy_v, legacy_s =
    time (fun () -> Flowgraph.Maxflow_legacy.min_broadcast_flow g ~src:0)
  in
  let csr_v, csr_s =
    time (fun () -> Flowgraph.Maxflow.min_broadcast_flow g ~src:0)
  in
  let structured_v, structured_gc =
    Bench_util.time_gc (fun () -> Flowgraph.Maxflow.broadcast_throughput g ~src:0)
  in
  let structured_s = structured_gc.Bench_util.seconds in
  (* Consumer path, old style: every query re-reads the mutable graph. *)
  let split () =
    let r = Broadcast.Verify.check inst g in
    let d = Broadcast.Metrics.degree_report inst ~t:rate g in
    let depth = if acyclic then Broadcast.Metrics.depth g else 0 in
    (r.Broadcast.Verify.throughput, d.Broadcast.Metrics.max_excess, depth)
  in
  (* Consumer path, artifact style: one validated Scheme, one shared CSR
     snapshot. A fresh Scheme per call keeps the memoization honest — we
     time construction + first-use, not cache hits. *)
  let artifact () =
    let s = Broadcast.Scheme.create ~provenance inst g in
    let r = Broadcast.Scheme.report s in
    let d = Broadcast.Metrics.scheme_report s in
    let depth = if acyclic then Broadcast.Metrics.scheme_depth s else 0 in
    (r.Broadcast.Verify.throughput, d.Broadcast.Metrics.max_excess, depth)
  in
  let (split_t, split_exc, split_depth), split_s = time split in
  let (art_t, art_exc, art_depth), artifact_s = time artifact in
  {
    name;
    nodes = Flowgraph.Graph.node_count g;
    edges = Flowgraph.Graph.edge_count g;
    acyclic;
    legacy_s;
    csr_s;
    structured_s;
    split_s;
    artifact_s;
    minor_words_per_call = structured_gc.Bench_util.minor_words_per_call;
    major_collections = structured_gc.Bench_util.major_collections;
    agree =
      close legacy_v csr_v && close legacy_v structured_v
      && close split_t art_t && split_exc = art_exc && split_depth = art_depth;
  }

(* Verify.check_batch over a fleet of schemes — the driver-facing entry
   point (one structural pass + one throughput per scheme). *)
let batch_fleet_case schemes =
  let pairs =
    List.map (fun (inst, s) -> (inst, Broadcast.Scheme.graph s)) schemes
  in
  let _, t = time (fun () -> Broadcast.Verify.check_batch pairs) in
  let reports = Broadcast.Verify.check_batch pairs in
  let ok =
    List.for_all
      (fun r ->
        r.Broadcast.Verify.bandwidth_ok && r.Broadcast.Verify.firewall_ok)
      reports
  in
  (t, List.length pairs, ok)

let json_escape s = s (* names are plain ASCII identifiers *)

let emit_json rows (fleet_s, fleet_n, fleet_ok) path =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"benchmark\": \"verify\",\n  \"unit\": \"seconds_per_call\",\n";
  p "  \"cases\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"name\": \"%s\", \"nodes\": %d, \"edges\": %d, \"acyclic\": \
         %b,\n\
        \     \"legacy_s\": %.6e, \"csr_s\": %.6e, \"structured_s\": %.6e,\n\
        \     \"split_s\": %.6e, \"artifact_s\": %.6e,\n\
        \     \"minor_words_per_call\": %.1f, \"major_collections\": %d,\n\
        \     \"speedup_csr\": %.2f, \"speedup_structured\": %.2f, \
         \"speedup_artifact\": %.2f, \"agree\": %b}%s\n"
        (json_escape r.name) r.nodes r.edges r.acyclic r.legacy_s r.csr_s
        r.structured_s r.split_s r.artifact_s r.minor_words_per_call
        r.major_collections (r.legacy_s /. r.csr_s)
        (r.legacy_s /. r.structured_s)
        (r.split_s /. r.artifact_s)
        r.agree
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ],\n";
  p
    "  \"check_batch\": {\"schemes\": %d, \"total_s\": %.6e, \"all_valid\": \
     %b}\n"
    fleet_n fleet_s fleet_ok;
  p "}\n";
  close_out oc

let () =
  (* Per-n scheme construction is independent (each case seeds its own
     PRNG stream), so it runs on the domain pool; the timed measurements
     below stay strictly sequential to keep timings undisturbed. *)
  let specs =
    [|
      ("acyclic-n200", `Acyclic, 200);
      ("acyclic-n500", `Acyclic, 500);
      ("acyclic-n1000", `Acyclic, 1000);
      ("acyclic-n5000", `Acyclic, 5000);
      ("acyclic-n10000", `Acyclic, 10000);
      ("cyclic-n200", `Cyclic, 200);
      ("cyclic-n400", `Cyclic, 400);
      ("cyclic-n1000", `Cyclic, 1000);
      ("cyclic-n5000", `Cyclic, 5000);
      ("cyclic-n10000", `Cyclic, 10000);
    |]
  in
  let cases =
    Parallel.Pool.map_array specs (fun (name, kind, n) ->
        ( name,
          match kind with
          | `Acyclic -> acyclic_scheme n
          | `Cyclic -> cyclic_scheme n ))
    |> Array.to_list
  in
  let rows = List.map (fun (name, s) -> case name s) cases in
  let fleet =
    batch_fleet_case
      (Array.to_list
         (Parallel.Pool.map_range 20 (fun i -> acyclic_scheme (150 + (5 * i)))))
  in
  Printf.printf "%-15s %6s %6s %8s %12s %12s %12s %12s %12s %10s %5s %8s %8s %6s\n"
    "case" "nodes" "edges" "acyclic" "legacy/s" "csr/s" "struct/s" "split/s"
    "artif/s" "minw/call" "majgc" "x-csr" "x-struct" "agree";
  List.iter
    (fun r ->
      Printf.printf
        "%-15s %6d %6d %8b %12.3e %12.3e %12.3e %12.3e %12.3e %10.1f %5d \
         %8.1f %8.1f %6b\n"
        r.name r.nodes r.edges r.acyclic r.legacy_s r.csr_s r.structured_s
        r.split_s r.artifact_s r.minor_words_per_call r.major_collections
        (r.legacy_s /. r.csr_s)
        (r.legacy_s /. r.structured_s)
        r.agree)
    rows;
  let fleet_s, fleet_n, fleet_ok = fleet in
  Printf.printf "check_batch: %d schemes in %.3e s (%.3e s/scheme), valid=%b\n"
    fleet_n fleet_s
    (fleet_s /. float_of_int fleet_n)
    fleet_ok;
  emit_json rows fleet "BENCH_verify.json";
  let bad = List.filter (fun r -> not r.agree) rows in
  if bad <> [] then begin
    List.iter (fun r -> Printf.eprintf "DISAGREEMENT in %s\n" r.name) bad;
    exit 1
  end;
  (* Acceptance tripwires for the CSR core: the flat-array engine must
     beat the legacy list engine by at least 2x on cyclic schemes with
     n >= 400, and the structure-aware verifier must beat it by at least
     3x on acyclic schemes with n >= 200. *)
  let gate_csr =
    List.filter (fun r -> (not r.acyclic) && r.nodes >= 400) rows
    |> List.for_all (fun r -> r.legacy_s /. r.csr_s >= 2.)
  in
  if not gate_csr then begin
    Printf.eprintf "speedup gate (csr >= 2x legacy on cyclic n >= 400) FAILED\n";
    exit 1
  end;
  let gate_structured =
    List.filter (fun r -> r.acyclic && r.nodes >= 200) rows
    |> List.for_all (fun r -> r.legacy_s /. r.structured_s >= 3.)
  in
  if not gate_structured then begin
    Printf.eprintf
      "speedup gate (structured >= 3x legacy on acyclic n >= 200) FAILED\n";
    exit 1
  end;
  (* Artifact tripwire: the Scheme path (construction-time validation plus
     one shared snapshot) must not lose to the split path (which re-walks
     or re-freezes the graph per query). 10% slack absorbs timer noise on
     the mid-size cases. *)
  let gate_artifact =
    List.filter (fun r -> r.nodes >= 1000) rows
    |> List.for_all (fun r -> r.artifact_s <= 1.10 *. r.split_s)
  in
  if not gate_artifact then begin
    Printf.eprintf
      "artifact gate (scheme path <= 1.1x split path on n >= 1000) FAILED\n";
    exit 1
  end;
  print_endline "verify_bench: ok (BENCH_verify.json written)"
