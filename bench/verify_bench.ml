(* Micro-benchmark for the batch verification engine.

   Compares, on the same schemes, three ways of computing the broadcast
   throughput [min over v of maxflow (C0 -> v)]:

   - plain      : one Dinic run per destination, residual network rebuilt
                  every time (the pre-engine oracle);
   - batch      : Maxflow.min_broadcast_flow — one shared residual arena,
                  sinks in increasing incoming-capacity order, early exit
                  at the running minimum;
   - structured : Maxflow.broadcast_throughput — the O(V + E) incoming-cut
                  fast path on acyclic schemes, batch Dinic otherwise.

   Each case asserts that all three values agree within 1e-6 relative
   error, prints a table, and appends its row to BENCH_verify.json (written
   in the current directory) so the performance trajectory is tracked
   across PRs. Run with `make bench` or `dune exec -- bench/verify_bench.exe`. *)

let time f =
  let once () =
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    Unix.gettimeofday () -. t0
  in
  let first = once () in
  if first > 0.5 then first
  else begin
    let reps = max 3 (int_of_float (0.3 /. Float.max 1e-7 first)) in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Sys.opaque_identity (f ()))
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  end

let mixed_instance ?(p_open = 0.7) ~seed n =
  let rng = Prng.Splitmix.create seed in
  Platform.Generator.generate
    { Platform.Generator.total = n; p_open; dist = Prng.Dist.unif100 }
    rng

let acyclic_scheme n =
  let inst = mixed_instance ~seed:(Int64.of_int (41 + n)) n in
  let t, word = Broadcast.Greedy.optimal_acyclic inst in
  let rate = t *. (1. -. 4e-9) in
  (inst, Broadcast.Low_degree.build inst ~rate word)

let cyclic_scheme n =
  let inst = mixed_instance ~p_open:1. ~seed:(Int64.of_int (97 + n)) n in
  (inst, Broadcast.Cyclic_open.build inst)

let plain_min_dinic g =
  let k = Flowgraph.Graph.node_count g in
  let best = ref infinity in
  for v = 1 to k - 1 do
    best := Float.min !best (Flowgraph.Maxflow.max_flow g ~src:0 ~dst:v)
  done;
  !best

type row = {
  name : string;
  nodes : int;
  edges : int;
  acyclic : bool;
  plain_s : float;
  batch_s : float;
  structured_s : float;
  agree : bool;
}

let close a b = Float.abs (a -. b) <= 1e-6 *. Float.max 1. (Float.max a b)

let case name (_, g) =
  let plain = plain_min_dinic g in
  let batch = Flowgraph.Maxflow.min_broadcast_flow g ~src:0 in
  let structured = Flowgraph.Maxflow.broadcast_throughput g ~src:0 in
  {
    name;
    nodes = Flowgraph.Graph.node_count g;
    edges = Flowgraph.Graph.edge_count g;
    acyclic = Flowgraph.Topo.is_acyclic g;
    plain_s = time (fun () -> plain_min_dinic g);
    batch_s = time (fun () -> Flowgraph.Maxflow.min_broadcast_flow g ~src:0);
    structured_s = time (fun () -> Flowgraph.Maxflow.broadcast_throughput g ~src:0);
    agree = close plain batch && close plain structured;
  }

(* Verify.check_batch over a fleet of schemes — the driver-facing entry
   point (one structural pass + one throughput per scheme). *)
let batch_fleet_case schemes =
  let pairs = List.map (fun (inst, g) -> (inst, g)) schemes in
  let t = time (fun () -> Broadcast.Verify.check_batch pairs) in
  let reports = Broadcast.Verify.check_batch pairs in
  let ok =
    List.for_all
      (fun r ->
        r.Broadcast.Verify.bandwidth_ok && r.Broadcast.Verify.firewall_ok)
      reports
  in
  (t, List.length pairs, ok)

let json_escape s = s (* names are plain ASCII identifiers *)

let emit_json rows (fleet_s, fleet_n, fleet_ok) path =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"benchmark\": \"verify\",\n  \"unit\": \"seconds_per_call\",\n";
  p "  \"cases\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"name\": \"%s\", \"nodes\": %d, \"edges\": %d, \"acyclic\": \
         %b,\n\
        \     \"plain_dinic_s\": %.6e, \"batch_dinic_s\": %.6e, \
         \"structured_s\": %.6e,\n\
        \     \"speedup_batch\": %.2f, \"speedup_structured\": %.2f, \
         \"agree\": %b}%s\n"
        (json_escape r.name) r.nodes r.edges r.acyclic r.plain_s r.batch_s
        r.structured_s (r.plain_s /. r.batch_s)
        (r.plain_s /. r.structured_s)
        r.agree
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ],\n";
  p
    "  \"check_batch\": {\"schemes\": %d, \"total_s\": %.6e, \"all_valid\": \
     %b}\n"
    fleet_n fleet_s fleet_ok;
  p "}\n";
  close_out oc

let () =
  (* Per-n scheme construction is independent (each case seeds its own
     PRNG stream), so it runs on the domain pool; the timed measurements
     below stay strictly sequential to keep timings undisturbed. *)
  let specs =
    [|
      ("acyclic-n200", `Acyclic, 200);
      ("acyclic-n500", `Acyclic, 500);
      ("acyclic-n1000", `Acyclic, 1000);
      ("cyclic-n200", `Cyclic, 200);
      ("cyclic-n400", `Cyclic, 400);
    |]
  in
  let cases =
    Parallel.Pool.map_array specs (fun (name, kind, n) ->
        ( name,
          match kind with
          | `Acyclic -> acyclic_scheme n
          | `Cyclic -> cyclic_scheme n ))
    |> Array.to_list
  in
  let rows = List.map (fun (name, s) -> case name s) cases in
  let fleet =
    batch_fleet_case
      (Array.to_list
         (Parallel.Pool.map_range 20 (fun i -> acyclic_scheme (150 + (5 * i)))))
  in
  Printf.printf "%-14s %6s %6s %8s %12s %12s %12s %8s %8s %6s\n" "case" "nodes"
    "edges" "acyclic" "plain/s" "batch/s" "struct/s" "x-batch" "x-struct"
    "agree";
  List.iter
    (fun r ->
      Printf.printf "%-14s %6d %6d %8b %12.3e %12.3e %12.3e %8.1f %8.1f %6b\n"
        r.name r.nodes r.edges r.acyclic r.plain_s r.batch_s r.structured_s
        (r.plain_s /. r.batch_s)
        (r.plain_s /. r.structured_s)
        r.agree)
    rows;
  let fleet_s, fleet_n, fleet_ok = fleet in
  Printf.printf "check_batch: %d schemes in %.3e s (%.3e s/scheme), valid=%b\n"
    fleet_n fleet_s
    (fleet_s /. float_of_int fleet_n)
    fleet_ok;
  emit_json rows fleet "BENCH_verify.json";
  let bad = List.filter (fun r -> not r.agree) rows in
  if bad <> [] then begin
    List.iter (fun r -> Printf.eprintf "DISAGREEMENT in %s\n" r.name) bad;
    exit 1
  end;
  (* Acceptance tripwire for the engine: the structure-aware verifier must
     beat per-destination Dinic by at least 3x on acyclic schemes with
     n >= 200. *)
  let gate =
    List.filter (fun r -> r.acyclic && r.nodes >= 200) rows
    |> List.for_all (fun r -> r.plain_s /. r.structured_s >= 3.)
  in
  if not gate then begin
    Printf.eprintf "speedup gate (>= 3x on acyclic n >= 200) FAILED\n";
    exit 1
  end;
  print_endline "verify_bench: ok (BENCH_verify.json written)"
