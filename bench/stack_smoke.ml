(* Stack-safety smoke test for the flowgraph core.

   Builds a path graph of depth n (default 50000, overridable via argv)
   and runs every deep traversal the verification pipeline depends on:
   topological order, acyclicity, structured throughput, and the
   blocking-flow max-flow — first on the path, then on the length-n ring
   obtained by closing it. A recursive DFS would overflow at this depth
   under an 8 MiB stack; CI runs this binary under `ulimit -s 8192` to
   pin the iterative implementations down.

   Everything here is O(n): no all-sinks batch calls, which would be
   quadratic on a path of this length. *)

module G = Flowgraph.Graph
module Csr = Flowgraph.Csr
module MF = Flowgraph.Maxflow

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let check what expected got =
  if Float.abs (got -. expected) > 1e-9 then
    fail "stack_smoke: %s = %g, expected %g" what got expected

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 50_000 in
  if n < 2 then fail "stack_smoke: n must be >= 2";
  let g = G.create n in
  for i = 0 to n - 2 do
    G.add_edge g ~src:i ~dst:(i + 1) (1. +. float_of_int (i mod 7))
  done;
  let c = Csr.of_graph g in
  if not (Csr.is_acyclic c) then fail "stack_smoke: path graph reported cyclic";
  (match Csr.topo_order c with
  | None -> fail "stack_smoke: topo_order failed on path graph"
  | Some order ->
    if order.(0) <> 0 || order.(n - 1) <> n - 1 then
      fail "stack_smoke: topo_order endpoints wrong");
  (* Bottleneck of the path is the weight-1 arc: max-flow and structured
     throughput both equal 1. *)
  check "path max_flow" 1. (MF.max_flow g ~src:0 ~dst:(n - 1));
  check "path broadcast_throughput" 1. (MF.broadcast_throughput g ~src:0);
  (* Close the ring: cycle detection and the cyclic Dinic path must also
     survive depth n. *)
  G.add_edge g ~src:(n - 1) ~dst:0 1.;
  let c' = Csr.of_graph g in
  if Csr.is_acyclic c' then fail "stack_smoke: ring reported acyclic";
  (match Csr.find_cycle c' with
  | None -> fail "stack_smoke: ring cycle missed"
  | Some cycle ->
    if List.length cycle <> n then
      fail "stack_smoke: cycle length %d, expected %d" (List.length cycle) n);
  check "ring max_flow" 1. (MF.max_flow g ~src:0 ~dst:(n - 1));
  Printf.printf "stack_smoke: ok (depth %d, iterative traversals only)\n" n
