(* Wall-clock benchmark for the parallel sweep engine (Parallel.Pool).

   Runs the two heavy experiment sweeps — the Figure 7 ratio surface
   (576 cells) and the Figure 19 average-case grid (quick config) — at
   jobs = 1 and jobs = 4, asserts the rendered output is byte-identical
   (the pool's determinism contract), and appends the timings to
   BENCH_sweep.json together with the machine's core count.

   The > 2x speedup tripwire only arms when the host actually has >= 4
   cores (Domain.recommended_domain_count): on fewer cores extra domains
   cannot buy wall-clock time and the run records timings without
   gating. Run with `make bench-sweep` or
   `dune exec -- bench/sweep_bench.exe`. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (Unix.gettimeofday () -. t0, result)

let render print =
  let buf = Buffer.create 65536 in
  let fmt = Format.formatter_of_buffer buf in
  print fmt;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

type sweep = {
  name : string;
  workload : string;
  jobs1_s : float;
  jobs4_s : float;
  identical : bool;
}

let bench_sweep ~name ~workload print =
  let jobs1_s, out1 = time (fun () -> render (print ~jobs:1)) in
  let jobs4_s, out4 = time (fun () -> render (print ~jobs:4)) in
  { name; workload; jobs1_s; jobs4_s; identical = String.equal out1 out4 }

let emit_json ~cores sweeps path =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"benchmark\": \"sweep\",\n  \"unit\": \"seconds_per_sweep\",\n";
  p "  \"cores\": %d,\n" cores;
  p "  \"sweeps\": [\n";
  List.iteri
    (fun i s ->
      p
        "    {\"name\": \"%s\", \"workload\": \"%s\",\n\
        \     \"jobs1_s\": %.6e, \"jobs4_s\": %.6e, \"speedup\": %.2f, \
         \"identical\": %b}%s\n"
        s.name s.workload s.jobs1_s s.jobs4_s (s.jobs1_s /. s.jobs4_s)
        s.identical
        (if i = List.length sweeps - 1 then "" else ","))
    sweeps;
  p "  ]\n}\n";
  close_out oc

let () =
  let cores = Domain.recommended_domain_count () in
  let sweeps =
    [
      bench_sweep ~name:"fig7-surface" ~workload:"default grid (576 cells)"
        (fun ~jobs fmt -> Experiments.Fig7_surface.print ~jobs fmt);
      bench_sweep ~name:"fig19-average" ~workload:"quick config (12 cells)"
        (fun ~jobs fmt ->
          Experiments.Fig19_average.print ~jobs
            ~config:Experiments.Fig19_average.quick_config fmt);
    ]
  in
  Printf.printf "%-14s %-28s %10s %10s %8s %10s\n" "sweep" "workload"
    "jobs=1/s" "jobs=4/s" "speedup" "identical";
  List.iter
    (fun s ->
      Printf.printf "%-14s %-28s %10.3f %10.3f %8.2f %10b\n" s.name s.workload
        s.jobs1_s s.jobs4_s (s.jobs1_s /. s.jobs4_s) s.identical)
    sweeps;
  Printf.printf "cores: %d\n" cores;
  emit_json ~cores sweeps "BENCH_sweep.json";
  let divergent = List.filter (fun s -> not s.identical) sweeps in
  if divergent <> [] then begin
    List.iter
      (fun s -> Printf.eprintf "OUTPUT DIVERGENCE (jobs 1 vs 4) in %s\n" s.name)
      divergent;
    exit 1
  end;
  (* The speedup gate needs real parallel hardware to be meaningful. *)
  if cores >= 4 then begin
    let gate = List.for_all (fun s -> s.jobs1_s /. s.jobs4_s >= 2.) sweeps in
    if not gate then begin
      Printf.eprintf "speedup gate (>= 2x at jobs=4 on >= 4 cores) FAILED\n";
      exit 1
    end
  end
  else
    Printf.printf
      "speedup gate skipped: only %d core(s) available (needs >= 4)\n" cores;
  print_endline "sweep_bench: ok (BENCH_sweep.json written)"
