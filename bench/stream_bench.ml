(* Throughput benchmark for the flat-arena streaming dataplane.

   Three scales, one BENCH_stream.json (written in the current
   directory):

   - n = 10^4, paper overlay: a Generator instance solved by
     Low_degree.build_optimal (the pipeline the CLI runs), simulated
     twice over the SAME trajectory — Stream.Dataplane with the
     [Oracle_reservoir] discipline and the boxed-structure
     Massoulie.Sim oracle. The two are bit-identical on identical
     seeds (same PRNG consumption, same event order — see
     lib/massoulie/sim.mli), so truncating both at the same horizon
     compares equal work: events/s is the dataplane's event count over
     each engine's wall clock. Gates: flat >= 20x legacy, and
     minor-words/event <= 16 measured on a [Random_useful] run of the
     same cell (the loop itself is allocation-free; the residue is
     arena warm-up and the PRNG state box, amortised over the run).

   - n = 10^5 and 10^6 (--full only), synthetic overlay: every node v
     pulls from preds v-1, v/2, 2v/3 (deduplicated) with equal shares
     summing to rate 1 — a low-degree mesh with the m ~= 2.7n density
     of the paper's overlays, built straight into a Graph because
     solving 10^5-node instances is the verification engine's job, not
     this bench's. Run to completion under the default [Random_useful]
     discipline. Gates: >= 10^6 events/s at n = 10^5; the n = 10^6 row
     must complete, and reports peak RSS (VmHWM).

   Quick mode (default, `make bench-stream`, CI) runs only the n = 10^4
   row — the legacy comparison is the expensive half. `--full`
   (`make bench-stream-full`) adds the two synthetic rows. Timings on
   loaded single-core runners are noisy; the gate margins (measured
   ~34x, ~4 mw/ev, ~1.2e6 ev/s) absorb that. *)

let flat_horizon = 6.
(* Truncation horizon for the n = 10^4 cell. The first 6 time units of
   the k = 16384 run hold ~1e5 events — enough signal, while keeping
   the legacy engine (O(k) candidate scans per pick) under ~20 s. *)

let gate_speedup_min = 20.
let gate_minor_words_per_event_max = 16.
let gate_events_per_s_min = 1e6

type row = {
  name : string;
  nodes : int;
  edges : int;
  chunks : int;
  horizon : float;  (* max_time both engines ran under *)
  events : int;  (* dataplane events processed *)
  flat_s : float;
  flat_events_per_s : float;
  legacy_s : float;  (* nan when the legacy engine was not run *)
  legacy_events_per_s : float;  (* nan likewise *)
  speedup : float;  (* nan likewise *)
  minor_words_per_event : float;
  major_collections : int;
  completion_time : float;
  peak_rss_kb : int;
}

(* One dataplane run bracketed by the GC probe. A single cold call —
   the runs are seconds long, repetition buys nothing, and the arena
   warm-up is deliberately charged to the row (it is part of the cost
   of a run at that scale). *)
let run_flat ~config csr ~rate =
  Gc.minor ();
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let r = Stream.Dataplane.run ~config csr ~rate in
  let flat_s = Unix.gettimeofday () -. t0 in
  let g1 = Gc.quick_stat () in
  let events = r.Stream.Dataplane.events in
  let minor_words_per_event =
    (g1.Gc.minor_words -. g0.Gc.minor_words) /. float_of_int (max 1 events)
  in
  ( r,
    flat_s,
    minor_words_per_event,
    g1.Gc.major_collections - g0.Gc.major_collections )

(* n = 10^4 paper-pipeline cell: flat vs legacy on the same truncated
   trajectory. *)
let paper_row () =
  let rng = Prng.Splitmix.create 7L in
  let inst =
    Platform.Generator.generate
      {
        Platform.Generator.total = 9999;
        p_open = 0.5;
        dist = Prng.Dist.Uniform { lo = 1.; hi = 10. };
      }
      rng
  in
  let rate, scheme = Broadcast.Low_degree.build_optimal inst in
  let csr = Broadcast.Scheme.snapshot scheme in
  let g = Broadcast.Scheme.graph scheme in
  let chunks = 16384 in
  let dc =
    {
      Stream.Dataplane.default_config with
      chunks;
      max_time = flat_horizon;
      discipline = Stream.Dataplane.Oracle_reservoir;
    }
  in
  let r, flat_s, _, _ = run_flat ~config:dc csr ~rate in
  (* The allocation gate measures the production discipline: the
     reservoir oracle consumes one PRNG draw per candidate (O(chunks)
     draws per pick, each leaving an Int64 box behind — that is exactly
     the inefficiency [Random_useful] replaces with a single draw), so
     its minor-words/event scales with [chunks] and says nothing about
     the event loop itself. *)
  let _, _, mw, majors =
    run_flat
      ~config:{ dc with discipline = Stream.Dataplane.Random_useful }
      csr ~rate
  in
  (* The flat run is under a second — on a loaded runner a single sample
     can double. Best-of-three tames that; the legacy side runs tens of
     seconds and self-averages. Allocation counts are deterministic, so
     the first sample's GC numbers stand. *)
  let flat_s =
    let best = ref flat_s in
    for _ = 1 to 2 do
      let t0 = Unix.gettimeofday () in
      ignore (Sys.opaque_identity (Stream.Dataplane.run ~config:dc csr ~rate));
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let sc = { Massoulie.Sim.default_config with chunks; max_time = flat_horizon } in
  let t0 = Unix.gettimeofday () in
  let lr = Massoulie.Sim.simulate ~config:sc g ~rate in
  let legacy_s = Unix.gettimeofday () -. t0 in
  (* Same trajectory => same transfers; a cheap cross-check that the
     speedup really compares equal work. *)
  if lr.Massoulie.Sim.transfers <> r.Stream.Dataplane.transfers then begin
    Printf.eprintf
      "stream_bench: trajectory divergence (legacy %d transfers, flat %d)\n"
      lr.Massoulie.Sim.transfers r.Stream.Dataplane.transfers;
    exit 1
  end;
  let events = r.Stream.Dataplane.events in
  let ev = float_of_int events in
  {
    name = "paper-n1e4";
    nodes = Flowgraph.Csr.node_count csr;
    edges = Flowgraph.Csr.edge_count csr;
    chunks;
    horizon = flat_horizon;
    events;
    flat_s;
    flat_events_per_s = ev /. flat_s;
    legacy_s;
    legacy_events_per_s = ev /. legacy_s;
    speedup = legacy_s /. flat_s;
    minor_words_per_event = mw;
    major_collections = majors;
    completion_time = r.Stream.Dataplane.completion_time;
    peak_rss_kb = Bench_util.vm_hwm_kb ();
  }

(* Synthetic low-degree overlay: preds v-1, v/2, 2v/3 (deduplicated),
   equal shares summing to unit rate into every node. *)
let synthetic_csr n =
  let g = Flowgraph.Graph.create n in
  for v = 1 to n - 1 do
    let preds = List.sort_uniq compare [ v - 1; v / 2; 2 * v / 3 ] in
    let share = 1. /. float_of_int (List.length preds) in
    List.iter (fun u -> Flowgraph.Graph.add_edge g ~src:u ~dst:v share) preds
  done;
  Flowgraph.Csr.of_graph g

let synthetic_row ?(samples = 1) ~name ~n ~chunks () =
  let csr = synthetic_csr n in
  let dc = { Stream.Dataplane.default_config with chunks } in
  let r, flat_s, mw, majors = run_flat ~config:dc csr ~rate:1. in
  (* Gated rows take the best of [samples] wall clocks (see the flat
     run above); allocation numbers come from the first sample. *)
  let flat_s =
    let best = ref flat_s in
    for _ = 2 to samples do
      let t0 = Unix.gettimeofday () in
      ignore (Sys.opaque_identity (Stream.Dataplane.run ~config:dc csr ~rate:1.));
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  if not r.Stream.Dataplane.delivered_all then begin
    Printf.eprintf "stream_bench: %s did not complete\n" name;
    exit 1
  end;
  let events = r.Stream.Dataplane.events in
  {
    name;
    nodes = n;
    edges = Flowgraph.Csr.edge_count csr;
    chunks;
    horizon = dc.Stream.Dataplane.max_time;
    events;
    flat_s;
    flat_events_per_s = float_of_int events /. flat_s;
    legacy_s = nan;
    legacy_events_per_s = nan;
    speedup = nan;
    minor_words_per_event = mw;
    major_collections = majors;
    completion_time = r.Stream.Dataplane.completion_time;
    peak_rss_kb = Bench_util.vm_hwm_kb ();
  }

let fnum oc x =
  (* Non-finite (the truncated row never "completes"; rows without a
     legacy run carry nan) has no JSON literal — emit null. *)
  if Float.is_finite x then Printf.fprintf oc "%.6e" x
  else output_string oc "null"

let emit_json rows path =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"format\": \"bmp-stream-bench\",\n  \"version\": 1,\n";
  p "  \"benchmark\": \"stream\",\n  \"unit\": \"events_per_second\",\n";
  p "  \"gate_speedup_min\": %.1f,\n" gate_speedup_min;
  p "  \"gate_minor_words_per_event_max\": %.1f,\n"
    gate_minor_words_per_event_max;
  p "  \"gate_events_per_s_min\": %.6e,\n" gate_events_per_s_min;
  p "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"name\": \"%s\", \"nodes\": %d, \"edges\": %d, \"chunks\": \
         %d, \"horizon\": %.6e,\n\
        \     \"events\": %d, \"flat_s\": %.6e, \"flat_events_per_s\": \
         %.6e,\n\
        \     \"legacy_s\": "
        r.name r.nodes r.edges r.chunks r.horizon r.events r.flat_s
        r.flat_events_per_s;
      fnum oc r.legacy_s;
      p ", \"legacy_events_per_s\": ";
      fnum oc r.legacy_events_per_s;
      p ", \"speedup\": ";
      fnum oc r.speedup;
      p ",\n     \"minor_words_per_event\": %.3f, \"major_collections\": %d,\n"
        r.minor_words_per_event r.major_collections;
      p "     \"completion_time\": ";
      fnum oc r.completion_time;
      p ", \"peak_rss_kb\": %d}%s\n" r.peak_rss_kb
        (if i = List.length rows - 1 then "" else ",")
    )
    rows;
  p "  ]\n}\n";
  close_out oc

let () =
  let full = Array.exists (( = ) "--full") Sys.argv in
  let rows = ref [ paper_row () ] in
  if full then begin
    rows :=
      !rows
      @ [ synthetic_row ~samples:2 ~name:"synthetic-n1e5" ~n:100_000 ~chunks:64 () ];
    rows :=
      !rows @ [ synthetic_row ~name:"synthetic-n1e6" ~n:1_000_000 ~chunks:16 () ]
  end;
  let rows = !rows in
  Printf.printf "%-15s %8s %8s %6s %9s %10s %12s %12s %8s %8s %6s %10s\n" "row"
    "nodes" "edges" "chunks" "events" "flat/s" "flat-ev/s" "legacy-ev/s"
    "speedup" "mw/ev" "majgc" "rss-kb";
  List.iter
    (fun r ->
      Printf.printf
        "%-15s %8d %8d %6d %9d %10.3e %12.3e %12.3e %8.1f %8.2f %6d %10d\n"
        r.name r.nodes r.edges r.chunks r.events r.flat_s r.flat_events_per_s
        r.legacy_events_per_s r.speedup r.minor_words_per_event
        r.major_collections r.peak_rss_kb)
    rows;
  emit_json rows "BENCH_stream.json";
  let fail = ref false in
  List.iter
    (fun r ->
      if r.name = "paper-n1e4" then begin
        if r.speedup < gate_speedup_min then begin
          Printf.eprintf
            "stream_bench: speedup gate (flat >= %.0fx legacy at n = 10^4) \
             FAILED: %.1fx\n"
            gate_speedup_min r.speedup;
          fail := true
        end;
        if r.minor_words_per_event > gate_minor_words_per_event_max then begin
          Printf.eprintf
            "stream_bench: allocation gate (<= %.0f minor words/event) \
             FAILED: %.2f\n"
            gate_minor_words_per_event_max r.minor_words_per_event;
          fail := true
        end
      end;
      if r.name = "synthetic-n1e5" && r.flat_events_per_s < gate_events_per_s_min
      then begin
        Printf.eprintf
          "stream_bench: rate gate (>= %.1e events/s at n = 10^5) FAILED: \
           %.3e\n"
          gate_events_per_s_min r.flat_events_per_s;
        fail := true
      end)
    rows;
  if !fail then exit 1;
  print_endline "stream_bench: ok (BENCH_stream.json written)"
