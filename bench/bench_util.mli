(** Shared measurement helpers for the bench executables. *)

type gc_sample = {
  seconds : float;  (** wall seconds per call *)
  minor_words_per_call : float;  (** minor-heap words allocated per call *)
  major_collections : int;  (** major GC cycles over the measured reps *)
}

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its value together with the per-call
    wall seconds. Calls slower than 0.5 s are measured once; faster
    calls are averaged over enough repetitions to cover ~0.3 s. *)

val time_gc : (unit -> 'a) -> 'a * gc_sample
(** [time_gc f] is [time f] extended with a GC probe: the measured
    repetitions are bracketed by [Gc.quick_stat] (after a [Gc.minor] to
    drain the caller's pending minor heap), so the sample reports the
    minor-heap words allocated per call and the number of major
    collections triggered across the reps. *)

val vm_hwm_kb : unit -> int
(** Peak resident set size of this process in KiB ([VmHWM] from
    [/proc/self/status]); [0] where /proc is unavailable. *)
