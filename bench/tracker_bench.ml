(* Wall-clock benchmark for the tracker daemon's serving loop
   (Tracker.Session, no transport IO).

   For each population size, builds a platform from a fixed seed and
   renders a bursty NDJSON request stream — alternating runs of joins
   and leaves, the arrival pattern batch admission exists for — then
   serves the identical stream through two sessions:

   - unbatched: batch = 1, every request is one engine event (one
     repair, one O(V + E) metrics/audit pass);
   - batched:   batch = [batch_size], runs coalesce into one
     Fail_batch / Flash_crowd each (one repair, one audit per run).

   Both sessions end by asserting they served every request. The gate:
   at n = 10^4 the batched session must serve at least 2x the requests/s
   of the unbatched one — if coalescing stops amortizing the per-event
   O(V + E) cost, the tracker's admission window is dead weight.

   Run with `make bench-tracker` or `dune exec -- bench/tracker_bench.exe`. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (Unix.gettimeofday () -. t0, result)

type row = {
  nodes : int;
  requests : int;
  mode : string;
  batch : int;
  events : int;  (** coalesced events committed to the engine *)
  seconds : float;
  requests_per_s : float;
}

let batch_size = 32
let run_len = 16

(* Bursty request stream: alternating runs of [run_len] joins and
   [run_len] leaves, rendered once as NDJSON lines so both sessions
   parse identical bytes. Join/leave alternation keeps the population
   near its starting size for the whole stream. *)
let request_lines ~requests rng =
  List.init requests (fun i ->
      if i / run_len mod 2 = 0 then
        let bandwidth = 1. +. float_of_int (Prng.Splitmix.next_below rng 100) in
        Churn.Trace.event_to_json
          (Churn.Trace.Join { bandwidth; guarded = false })
      else
        Churn.Trace.event_to_json
          (Churn.Trace.Leave { pick = Prng.Splitmix.next_below rng 1_000_000 }))

let overlay_of ~nodes =
  let rng = Prng.Splitmix.create (Int64.of_int (7100 + nodes)) in
  let inst =
    Platform.Generator.generate
      { Platform.Generator.total = nodes; p_open = 0.7; dist = Prng.Dist.unif100 }
      rng
  in
  let t, _ = Broadcast.Greedy.optimal_acyclic inst in
  Broadcast.Overlay.build ~rate:(t *. 0.9) inst

let serve ~nodes ~batch ~mode overlay lines =
  let config = { Tracker.Session.default_config with batch } in
  let session = Tracker.Session.create config overlay in
  let answered = ref 0 in
  let seconds, () =
    time (fun () ->
        List.iter
          (fun line ->
            answered := !answered + List.length (Tracker.Session.submit session line))
          lines;
        answered := !answered + List.length (Tracker.Session.flush session))
  in
  let requests = List.length lines in
  if !answered <> requests then begin
    Printf.printf "FAIL: %s session at n=%d answered %d of %d requests\n" mode
      nodes !answered requests;
    exit 1
  end;
  let c = Tracker.Session.counters session in
  if c.Tracker.Session.errors > 0 || c.Tracker.Session.rollbacks > 0 then begin
    Printf.printf "FAIL: %s session at n=%d hit %d errors, %d rollbacks\n" mode
      nodes c.Tracker.Session.errors c.Tracker.Session.rollbacks;
    exit 1
  end;
  {
    nodes;
    requests;
    mode;
    batch;
    events = c.Tracker.Session.events;
    seconds;
    requests_per_s = float_of_int requests /. seconds;
  }

let bench ~nodes ~requests =
  let overlay = overlay_of ~nodes in
  let lines =
    request_lines ~requests (Prng.Splitmix.create (Int64.of_int (7200 + nodes)))
  in
  let unbatched = serve ~nodes ~batch:1 ~mode:"unbatched" overlay lines in
  let batched = serve ~nodes ~batch:batch_size ~mode:"batched" overlay lines in
  [ unbatched; batched ]

let gate_nodes = 10_000
let gate_min_speedup = 2.0

let emit_json rows ~speedup_at_gate path =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"benchmark\": \"tracker\",\n  \"unit\": \"requests_per_second\",\n";
  p "  \"batch_size\": %d,\n" batch_size;
  p "  \"run_len\": %d,\n" run_len;
  p "  \"gate_nodes\": %d,\n" gate_nodes;
  p "  \"gate_min_speedup\": %.1f,\n" gate_min_speedup;
  p "  \"speedup_at_gate\": %.2f,\n" speedup_at_gate;
  p "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"nodes\": %d, \"requests\": %d, \"mode\": \"%s\", \
         \"batch\": %d, \"events\": %d, \"seconds\": %.6e, \
         \"requests_per_s\": %.1f}%s\n"
        r.nodes r.requests r.mode r.batch r.events r.seconds r.requests_per_s
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ]\n}\n";
  close_out oc

let () =
  let rows =
    List.concat
      [ bench ~nodes:10_000 ~requests:128; bench ~nodes:100_000 ~requests:32 ]
  in
  Printf.printf "%-8s %-9s %-10s %-6s %-7s %10s %12s\n" "nodes" "requests"
    "mode" "batch" "events" "seconds" "requests/s";
  List.iter
    (fun r ->
      Printf.printf "%-8d %-9d %-10s %-6d %-7d %10.3f %12.1f\n" r.nodes
        r.requests r.mode r.batch r.events r.seconds r.requests_per_s)
    rows;
  let rate ~nodes ~mode =
    match
      List.find_opt (fun r -> r.nodes = nodes && String.equal r.mode mode) rows
    with
    | Some r -> r.requests_per_s
    | None ->
      Printf.printf "FAIL: missing %s row at n=%d\n" mode nodes;
      exit 1
  in
  let speedup_at_gate =
    rate ~nodes:gate_nodes ~mode:"batched" /. rate ~nodes:gate_nodes ~mode:"unbatched"
  in
  Printf.printf "batched/unbatched speedup at n=%d: %.2fx\n" gate_nodes
    speedup_at_gate;
  emit_json rows ~speedup_at_gate "BENCH_tracker.json";
  print_endline "wrote BENCH_tracker.json";
  if speedup_at_gate < gate_min_speedup then begin
    Printf.printf "FAIL: batched serving %.2fx < %.1fx unbatched at n=%d\n"
      speedup_at_gate gate_min_speedup gate_nodes;
    exit 1
  end
