(* Shared measurement helpers for the bench executables.

   Every bench in this directory needs the same three things: a wall
   clock that is cheap for slow calls and averaged for fast ones, a GC
   probe that attributes minor-heap allocation and major collections to
   the measured call, and the process peak RSS. Centralising them keeps
   the JSON columns comparable across BENCH_*.json files. *)

type gc_sample = {
  seconds : float;  (* wall seconds per call *)
  minor_words_per_call : float;  (* minor-heap words allocated per call *)
  major_collections : int;  (* major GC cycles over the measured reps *)
}

(* Times [f], returning its value and the per-call seconds. Slow calls
   (> 0.5 s) are measured exactly once so large cases stay affordable;
   fast calls are averaged over enough reps to cover ~0.3 s. *)
let time f =
  let t0 = Unix.gettimeofday () in
  let value = f () in
  let first = Unix.gettimeofday () -. t0 in
  if first > 0.5 then (value, first)
  else begin
    let reps = max 3 (int_of_float (0.3 /. Float.max 1e-7 first)) in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Sys.opaque_identity (f ()))
    done;
    (value, (Unix.gettimeofday () -. t0) /. float_of_int reps)
  end

(* Like [time], but brackets the measured reps with [Gc.quick_stat] so
   the sample carries allocation pressure, not just latency. A
   [Gc.minor] first drains the pending minor heap, otherwise the first
   rep is charged for the caller's leftovers. *)
let time_gc f =
  let t0 = Unix.gettimeofday () in
  let value = f () in
  let first = Unix.gettimeofday () -. t0 in
  let reps =
    if first > 0.5 then 1
    else max 3 (int_of_float (0.3 /. Float.max 1e-7 first))
  in
  Gc.minor ();
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (Sys.opaque_identity (f ()))
  done;
  let seconds = (Unix.gettimeofday () -. t0) /. float_of_int reps in
  let g1 = Gc.quick_stat () in
  let minor_words_per_call =
    (g1.Gc.minor_words -. g0.Gc.minor_words) /. float_of_int reps
  in
  ( value,
    {
      seconds;
      minor_words_per_call;
      major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
    } )

(* Peak resident set size of this process in KiB, from the kernel's
   VmHWM accounting. 0 when /proc is unavailable (non-Linux), so
   callers can report it as best-effort. *)
let vm_hwm_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      let rec scan acc =
        match input_line ic with
        | exception End_of_file -> acc
        | line ->
            let acc =
              try Scanf.sscanf line "VmHWM: %d kB" (fun kb -> kb)
              with Scanf.Scan_failure _ | End_of_file | Failure _ -> acc
            in
            scan acc
      in
      let kb = scan 0 in
      close_in ic;
      kb
