(* Wall-clock benchmark for the fault-injection engine (Churn.Engine).

   For each population size, builds a platform and an adversarial trace
   from fixed seeds, replays the trace once with auditing off and once at
   Audit.Check level, asserts both runs end in the identical state (the
   auditor is an observer, not an actor), and appends the timings to
   BENCH_churn.json.

   Two gates:

   - auditing must not cost more than 3x the unaudited replay — the
     auditor's per-event work is O(V + E) array scans against a repair
     that already measures its own rate, so a larger multiple means an
     accidental slow path (e.g. a max-flow call) leaked into Check level;
   - warm-start flow maintenance (Maxflow.Incremental) must beat a
     from-scratch min-over-sinks solve by at least 5x per single-node
     event once n >= 10000 — below that the incremental machinery is not
     paying for its bookkeeping.

   Run with `make bench-churn` or `dune exec -- bench/churn_bench.exe`. *)

module MF = Flowgraph.Maxflow
module MFI = Flowgraph.Maxflow.Incremental

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (Unix.gettimeofday () -. t0, result)

type row = {
  nodes : int;
  events : int;
  unaudited_s : float;
  audited_s : float;
  events_per_s : float;
  overhead : float;
  identical : bool;
  incremental_s : float;  (** warm-start solve per single-node event *)
  full_recompute_s : float;  (** from-scratch solve on the same snapshots *)
  speedup : float;  (** [full_recompute_s /. incremental_s] *)
  agree : bool;  (** warm and from-scratch values matched on every event *)
}

let setup ~nodes ~events =
  let rng = Prng.Splitmix.create (Int64.of_int (9200 + nodes)) in
  let inst =
    Platform.Generator.generate
      { Platform.Generator.total = nodes; p_open = 0.7; dist = Prng.Dist.unif100 }
      rng
  in
  let t, _ = Broadcast.Greedy.optimal_acyclic inst in
  let overlay = Broadcast.Overlay.build ~rate:(t *. 0.9) inst in
  let trace = Churn.Trace.gen ~events rng in
  (overlay, trace)

let fingerprint (r : Churn.Engine.result) =
  let s = r.Churn.Engine.summary in
  Printf.sprintf "%d/%d/%d/%d/%.12g/%.12g" s.Churn.Engine.applied
    s.Churn.Engine.rebuilds s.Churn.Engine.total_churn s.Churn.Engine.final_size
    s.Churn.Engine.final_rate s.Churn.Engine.min_ratio

(* The incremental micro-benchmark: a run of single-node degrade events
   (each a bandwidth delta on one node, no renumbering churn beyond the
   repair's own), solved warm against solved from scratch on identical
   snapshots. Repairs happen outside the timed sections — both engines
   time pure flow work. The initial warm solve (create) is also outside:
   steady-state maintenance is what the column measures. *)
let single_node_deltas = 8

let microbench ~nodes =
  let overlay, _ = setup ~nodes ~events:0 in
  let size = Platform.Instance.size (Broadcast.Overlay.instance overlay) in
  let steps = ref [] in
  let o = ref overlay in
  for i = 1 to single_node_deltas do
    let node = 1 + (i * 7919 mod (size - 1)) in
    let b = (Broadcast.Overlay.instance !o).Platform.Instance.bandwidth.(node) in
    let factor = if i mod 2 = 0 then 0.6 else 0.85 in
    let o', (stats : Broadcast.Repair.stats) =
      Broadcast.Repair.degrade !o ~node ~bandwidth:(b *. factor)
    in
    o := o';
    steps :=
      (stats.Broadcast.Repair.node_map,
       Broadcast.Scheme.snapshot (Broadcast.Overlay.scheme o'))
      :: !steps
  done;
  let steps = List.rev !steps in
  let inc =
    MFI.create (Broadcast.Scheme.snapshot (Broadcast.Overlay.scheme overlay)) ~src:0
  in
  let warm = ref [] in
  let incremental_s, () =
    time (fun () ->
        List.iter
          (fun (map, snap) ->
            MFI.apply inc ~map snap;
            warm := MFI.value inc :: !warm)
          steps)
  in
  let scratch = ref [] in
  let full_recompute_s, () =
    time (fun () ->
        List.iter
          (fun (_, snap) ->
            scratch := MF.min_broadcast_flow_csr snap ~src:0 :: !scratch)
          steps)
  in
  let agree =
    List.for_all2
      (fun w s -> Float.abs (w -. s) <= Broadcast.Verify.flow_slack s)
      !warm !scratch
  in
  let per x = x /. float_of_int single_node_deltas in
  (per incremental_s, per full_recompute_s, agree)

let bench ~nodes ~events =
  let overlay, trace = setup ~nodes ~events in
  let run audit = Churn.Engine.run ~policy:Churn.Policy.Always_patch ~audit overlay trace in
  let unaudited_s, r_off = time (fun () -> run Churn.Audit.Off) in
  let audited_s, r_chk = time (fun () -> run Churn.Audit.Check) in
  let incremental_s, full_recompute_s, agree = microbench ~nodes in
  {
    nodes;
    events;
    unaudited_s;
    audited_s;
    events_per_s = float_of_int events /. unaudited_s;
    overhead = audited_s /. unaudited_s;
    identical = String.equal (fingerprint r_off) (fingerprint r_chk);
    incremental_s;
    full_recompute_s;
    speedup = full_recompute_s /. incremental_s;
    agree;
  }

let emit_json rows path =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"benchmark\": \"churn\",\n  \"unit\": \"seconds_per_trace\",\n";
  p "  \"gate_overhead_max\": 3.0,\n";
  p "  \"gate_incremental_speedup_min\": 5.0,\n";
  p "  \"gate_incremental_speedup_nodes\": 10000,\n";
  p "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"nodes\": %d, \"events\": %d, \"unaudited_s\": %.6e, \
         \"audited_s\": %.6e,\n\
        \     \"events_per_s\": %.1f, \"overhead\": %.2f, \"identical\": %b,\n\
        \     \"incremental_s\": %.6e, \"full_recompute_s\": %.6e, \
         \"speedup\": %.1f, \"agree\": %b}%s\n"
        r.nodes r.events r.unaudited_s r.audited_s r.events_per_s r.overhead
        r.identical r.incremental_s r.full_recompute_s r.speedup r.agree
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ]\n}\n";
  close_out oc

let () =
  let rows =
    [
      bench ~nodes:200 ~events:300;
      bench ~nodes:1000 ~events:150;
      bench ~nodes:5000 ~events:50;
      bench ~nodes:10000 ~events:30;
    ]
  in
  Printf.printf "%-7s %-7s %12s %12s %10s %9s %10s %12s %12s %8s\n" "nodes"
    "events" "unaudited/s" "audited/s" "events/s" "overhead" "identical"
    "incr/ev" "full/ev" "speedup";
  List.iter
    (fun r ->
      Printf.printf "%-7d %-7d %12.3f %12.3f %10.1f %9.2f %10b %12.6f %12.6f %8.1f\n"
        r.nodes r.events r.unaudited_s r.audited_s r.events_per_s r.overhead
        r.identical r.incremental_s r.full_recompute_s r.speedup)
    rows;
  emit_json rows "BENCH_churn.json";
  print_endline "wrote BENCH_churn.json";
  let divergent = List.filter (fun r -> not r.identical) rows in
  if divergent <> [] then begin
    List.iter
      (fun r -> Printf.printf "FAIL: audited run diverged at n=%d\n" r.nodes)
      divergent;
    exit 1
  end;
  let disagree = List.filter (fun r -> not r.agree) rows in
  if disagree <> [] then begin
    List.iter
      (fun r ->
        Printf.printf "FAIL: warm value diverged from from-scratch at n=%d\n"
          r.nodes)
      disagree;
    exit 1
  end;
  let slow = List.filter (fun r -> r.overhead > 3.0) rows in
  if slow <> [] then begin
    List.iter
      (fun r ->
        Printf.printf "FAIL: audit overhead %.2fx > 3x at n=%d\n" r.overhead
          r.nodes)
      slow;
    exit 1
  end;
  let lagging =
    List.filter (fun r -> r.nodes >= 10000 && r.speedup < 5.0) rows
  in
  if lagging <> [] then begin
    List.iter
      (fun r ->
        Printf.printf
          "FAIL: incremental speedup %.1fx < 5x for single-node events at n=%d\n"
          r.speedup r.nodes)
      lagging;
    exit 1
  end
