(* Wall-clock benchmark for the fault-injection engine (Churn.Engine).

   For each population size, builds a platform and an adversarial trace
   from fixed seeds, replays the trace once with auditing off and once at
   Audit.Check level, asserts both runs end in the identical state (the
   auditor is an observer, not an actor), and appends the timings to
   BENCH_churn.json.

   Three gates:

   - auditing must not cost more than 3x the unaudited replay — the
     auditor's per-event work is O(V + E) array scans against a repair
     that already measures its own rate, so a larger multiple means an
     accidental slow path (e.g. a max-flow call) leaked into Check level;
   - warm-start flow maintenance (Maxflow.Incremental) must beat a
     from-scratch min-over-sinks solve by at least 5x per single-node
     event once n >= 10000 — below that the incremental machinery is not
     paying for its bookkeeping;
   - the delta-scoped Certificate audit (warm engine + delta-scoped
     re-checks, the tracker's serving fast path) must beat the Strict
     per-event audit cost by at least 10x once n >= 10000 — the
     sublinear-per-event claim of the certificate design, measured end
     to end through Engine.run.

   Run with `make bench-churn` or `dune exec -- bench/churn_bench.exe`. *)

module MF = Flowgraph.Maxflow
module MFI = Flowgraph.Maxflow.Incremental

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (Unix.gettimeofday () -. t0, result)

type row = {
  nodes : int;
  events : int;
  unaudited_s : float;
  audited_s : float;
  events_per_s : float;
  overhead : float;
  identical : bool;
  incremental_s : float;  (** warm-start solve per single-node event *)
  full_recompute_s : float;  (** from-scratch solve on the same snapshots *)
  speedup : float;  (** [full_recompute_s /. incremental_s] *)
  agree : bool;  (** warm and from-scratch values matched on every event *)
  delta_audit_s : float;
      (** per-event cost of the certificate fast path on top of the
          unaudited replay (warm engine + delta-scoped audit) *)
  strict_audit_s : float;  (** per-event cost of the Strict audit *)
  delta_audit_speedup : float;  (** [strict_audit_s /. delta_audit_s] *)
  minor_words_per_event : float;
      (** minor-heap words the unaudited replay allocates per event *)
  major_collections : int;
      (** major GC cycles over the measured unaudited replay *)
}

let setup ~nodes ~events =
  let rng = Prng.Splitmix.create (Int64.of_int (9200 + nodes)) in
  let inst =
    Platform.Generator.generate
      { Platform.Generator.total = nodes; p_open = 0.7; dist = Prng.Dist.unif100 }
      rng
  in
  let t, _ = Broadcast.Greedy.optimal_acyclic inst in
  let overlay = Broadcast.Overlay.build ~rate:(t *. 0.9) inst in
  let trace = Churn.Trace.gen ~events rng in
  (overlay, trace)

let fingerprint (r : Churn.Engine.result) =
  let s = r.Churn.Engine.summary in
  Printf.sprintf "%d/%d/%d/%d/%.12g/%.12g" s.Churn.Engine.applied
    s.Churn.Engine.rebuilds s.Churn.Engine.total_churn s.Churn.Engine.final_size
    s.Churn.Engine.final_rate s.Churn.Engine.min_ratio

(* The incremental micro-benchmark: a run of single-node degrade events
   (each a bandwidth delta on one node, no renumbering churn beyond the
   repair's own), solved warm against solved from scratch on identical
   snapshots. Repairs happen outside the timed sections — both engines
   time pure flow work. The initial warm solve (create) is also outside:
   steady-state maintenance is what the column measures. *)
let single_node_deltas = 8

let microbench ~nodes =
  let overlay, _ = setup ~nodes ~events:0 in
  let size = Platform.Instance.size (Broadcast.Overlay.instance overlay) in
  let steps = ref [] in
  let o = ref overlay in
  for i = 1 to single_node_deltas do
    let node = 1 + (i * 7919 mod (size - 1)) in
    let b = (Broadcast.Overlay.instance !o).Platform.Instance.bandwidth.(node) in
    let factor = if i mod 2 = 0 then 0.6 else 0.85 in
    let o', (stats : Broadcast.Repair.stats) =
      Broadcast.Repair.degrade !o ~node ~bandwidth:(b *. factor)
    in
    o := o';
    steps :=
      (stats.Broadcast.Repair.node_map,
       Broadcast.Scheme.snapshot (Broadcast.Overlay.scheme o'))
      :: !steps
  done;
  let steps = List.rev !steps in
  let inc =
    MFI.create (Broadcast.Scheme.snapshot (Broadcast.Overlay.scheme overlay)) ~src:0
  in
  let warm = ref [] in
  let incremental_s, () =
    time (fun () ->
        List.iter
          (fun (map, snap) ->
            MFI.apply inc ~map snap;
            warm := MFI.value inc :: !warm)
          steps)
  in
  let scratch = ref [] in
  let full_recompute_s, () =
    time (fun () ->
        List.iter
          (fun (_, snap) ->
            scratch := MF.min_broadcast_flow_csr snap ~src:0 :: !scratch)
          steps)
  in
  let agree =
    List.for_all2
      (fun w s -> Float.abs (w -. s) <= Broadcast.Verify.flow_slack s)
      !warm !scratch
  in
  let per x = x /. float_of_int single_node_deltas in
  (per incremental_s, per full_recompute_s, agree)

(* Per-event Strict audit cost, measured through the real engine on a
   short trace prefix — at n = 10^4 a Strict audit is a from-scratch
   max-flow per event (seconds), so timing it on the full trace would
   dominate the whole benchmark for no extra signal. *)
let strict_probe_events = 12

let strict_audit_cost ~nodes =
  let overlay, trace = setup ~nodes ~events:strict_probe_events in
  let run audit =
    Churn.Engine.run ~policy:Churn.Policy.Always_patch ~audit overlay trace
  in
  let off_s, _ = time (fun () -> run Churn.Audit.Off) in
  let strict_s, _ = time (fun () -> run Churn.Audit.Strict) in
  Float.max ((strict_s -. off_s) /. float_of_int strict_probe_events) 1e-9

let bench ~nodes ~events =
  let overlay, trace = setup ~nodes ~events in
  let run ?engine audit =
    Churn.Engine.run ~policy:Churn.Policy.Always_patch ~audit ?engine overlay
      trace
  in
  let r_off, gc = Bench_util.time_gc (fun () -> run Churn.Audit.Off) in
  let unaudited_s = gc.Bench_util.seconds in
  let audited_s, r_chk = time (fun () -> run Churn.Audit.Check) in
  (* The serving fast path end to end: warm incremental engine plus the
     delta-scoped Certificate audit (no backstop, so the timing is the
     pure fast path). Its replay must stay byte-identical — the audit
     level and the engine are observers, never actors. *)
  let cert_s, r_cert =
    time (fun () ->
        run ~engine:Churn.Audit.Incremental
          (Churn.Audit.Certificate { strict_every = 0 }))
  in
  let delta_audit_s =
    Float.max ((cert_s -. unaudited_s) /. float_of_int events) 1e-9
  in
  let strict_audit_s = strict_audit_cost ~nodes in
  let incremental_s, full_recompute_s, agree = microbench ~nodes in
  {
    nodes;
    events;
    unaudited_s;
    audited_s;
    events_per_s = float_of_int events /. unaudited_s;
    overhead = audited_s /. unaudited_s;
    identical =
      String.equal (fingerprint r_off) (fingerprint r_chk)
      && String.equal (fingerprint r_off) (fingerprint r_cert);
    incremental_s;
    full_recompute_s;
    speedup = full_recompute_s /. incremental_s;
    agree;
    delta_audit_s;
    strict_audit_s;
    delta_audit_speedup = strict_audit_s /. delta_audit_s;
    minor_words_per_event =
      gc.Bench_util.minor_words_per_call /. float_of_int events;
    major_collections = gc.Bench_util.major_collections;
  }

let emit_json rows path =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"benchmark\": \"churn\",\n  \"unit\": \"seconds_per_trace\",\n";
  p "  \"gate_overhead_max\": 3.0,\n";
  p "  \"gate_incremental_speedup_min\": 5.0,\n";
  p "  \"gate_incremental_speedup_nodes\": 10000,\n";
  p "  \"gate_delta_audit_speedup_min\": 10.0,\n";
  p "  \"gate_delta_audit_speedup_nodes\": 10000,\n";
  p "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"nodes\": %d, \"events\": %d, \"unaudited_s\": %.6e, \
         \"audited_s\": %.6e,\n\
        \     \"events_per_s\": %.1f, \"overhead\": %.2f, \"identical\": %b,\n\
        \     \"incremental_s\": %.6e, \"full_recompute_s\": %.6e, \
         \"speedup\": %.1f, \"agree\": %b,\n\
        \     \"delta_audit_s\": %.6e, \"strict_audit_s\": %.6e, \
         \"delta_audit_speedup\": %.1f,\n\
        \     \"minor_words_per_event\": %.1f, \"major_collections\": %d}%s\n"
        r.nodes r.events r.unaudited_s r.audited_s r.events_per_s r.overhead
        r.identical r.incremental_s r.full_recompute_s r.speedup r.agree
        r.delta_audit_s r.strict_audit_s r.delta_audit_speedup
        r.minor_words_per_event r.major_collections
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ]\n}\n";
  close_out oc

let () =
  let rows =
    [
      bench ~nodes:200 ~events:300;
      bench ~nodes:1000 ~events:150;
      bench ~nodes:5000 ~events:50;
      bench ~nodes:10000 ~events:30;
    ]
  in
  Printf.printf
    "%-7s %-7s %12s %12s %10s %9s %10s %12s %12s %8s %12s %12s %9s %12s %6s\n"
    "nodes" "events" "unaudited/s" "audited/s" "events/s" "overhead"
    "identical" "incr/ev" "full/ev" "speedup" "delta-aud/ev" "strict-aud/ev"
    "aud-spdup" "minorw/ev" "majgc";
  List.iter
    (fun r ->
      Printf.printf
        "%-7d %-7d %12.3f %12.3f %10.1f %9.2f %10b %12.6f %12.6f %8.1f \
         %12.6f %12.6f %9.1f %12.1f %6d\n"
        r.nodes r.events r.unaudited_s r.audited_s r.events_per_s r.overhead
        r.identical r.incremental_s r.full_recompute_s r.speedup
        r.delta_audit_s r.strict_audit_s r.delta_audit_speedup
        r.minor_words_per_event r.major_collections)
    rows;
  emit_json rows "BENCH_churn.json";
  print_endline "wrote BENCH_churn.json";
  let divergent = List.filter (fun r -> not r.identical) rows in
  if divergent <> [] then begin
    List.iter
      (fun r -> Printf.printf "FAIL: audited run diverged at n=%d\n" r.nodes)
      divergent;
    exit 1
  end;
  let disagree = List.filter (fun r -> not r.agree) rows in
  if disagree <> [] then begin
    List.iter
      (fun r ->
        Printf.printf "FAIL: warm value diverged from from-scratch at n=%d\n"
          r.nodes)
      disagree;
    exit 1
  end;
  let slow = List.filter (fun r -> r.overhead > 3.0) rows in
  if slow <> [] then begin
    List.iter
      (fun r ->
        Printf.printf "FAIL: audit overhead %.2fx > 3x at n=%d\n" r.overhead
          r.nodes)
      slow;
    exit 1
  end;
  let lagging =
    List.filter (fun r -> r.nodes >= 10000 && r.speedup < 5.0) rows
  in
  if lagging <> [] then begin
    List.iter
      (fun r ->
        Printf.printf
          "FAIL: incremental speedup %.1fx < 5x for single-node events at n=%d\n"
          r.speedup r.nodes)
      lagging;
    exit 1
  end;
  let audit_lagging =
    List.filter (fun r -> r.nodes >= 10000 && r.delta_audit_speedup < 10.0) rows
  in
  if audit_lagging <> [] then begin
    List.iter
      (fun r ->
        Printf.printf
          "FAIL: certificate audit speedup %.1fx < 10x over strict at n=%d\n"
          r.delta_audit_speedup r.nodes)
      audit_lagging;
    exit 1
  end
