(* Wall-clock benchmark for the fault-injection engine (Churn.Engine).

   For each population size, builds a platform and an adversarial trace
   from fixed seeds, replays the trace once with auditing off and once at
   Audit.Check level, asserts both runs end in the identical state (the
   auditor is an observer, not an actor), and appends the timings to
   BENCH_churn.json.

   The gate: auditing must not cost more than 3x the unaudited replay —
   the auditor's per-event work is O(V + E) array scans against a repair
   that already measures its own rate, so a larger multiple means an
   accidental slow path (e.g. a max-flow call) leaked into Check level.
   Run with `make bench-churn` or `dune exec -- bench/churn_bench.exe`. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (Unix.gettimeofday () -. t0, result)

type row = {
  nodes : int;
  events : int;
  unaudited_s : float;
  audited_s : float;
  events_per_s : float;
  overhead : float;
  identical : bool;
}

let setup ~nodes ~events =
  let rng = Prng.Splitmix.create (Int64.of_int (9200 + nodes)) in
  let inst =
    Platform.Generator.generate
      { Platform.Generator.total = nodes; p_open = 0.7; dist = Prng.Dist.unif100 }
      rng
  in
  let t, _ = Broadcast.Greedy.optimal_acyclic inst in
  let overlay = Broadcast.Overlay.build ~rate:(t *. 0.9) inst in
  let trace = Churn.Trace.gen ~events rng in
  (overlay, trace)

let fingerprint (r : Churn.Engine.result) =
  let s = r.Churn.Engine.summary in
  Printf.sprintf "%d/%d/%d/%d/%.12g/%.12g" s.Churn.Engine.applied
    s.Churn.Engine.rebuilds s.Churn.Engine.total_churn s.Churn.Engine.final_size
    s.Churn.Engine.final_rate s.Churn.Engine.min_ratio

let bench ~nodes ~events =
  let overlay, trace = setup ~nodes ~events in
  let run audit = Churn.Engine.run ~policy:Churn.Policy.Always_patch ~audit overlay trace in
  let unaudited_s, r_off = time (fun () -> run Churn.Audit.Off) in
  let audited_s, r_chk = time (fun () -> run Churn.Audit.Check) in
  {
    nodes;
    events;
    unaudited_s;
    audited_s;
    events_per_s = float_of_int events /. unaudited_s;
    overhead = audited_s /. unaudited_s;
    identical = String.equal (fingerprint r_off) (fingerprint r_chk);
  }

let emit_json rows path =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"benchmark\": \"churn\",\n  \"unit\": \"seconds_per_trace\",\n";
  p "  \"gate_overhead_max\": 3.0,\n";
  p "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"nodes\": %d, \"events\": %d, \"unaudited_s\": %.6e, \
         \"audited_s\": %.6e,\n\
        \     \"events_per_s\": %.1f, \"overhead\": %.2f, \"identical\": %b}%s\n"
        r.nodes r.events r.unaudited_s r.audited_s r.events_per_s r.overhead
        r.identical
        (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ]\n}\n";
  close_out oc

let () =
  let rows =
    [
      bench ~nodes:200 ~events:300;
      bench ~nodes:1000 ~events:150;
      bench ~nodes:5000 ~events:50;
    ]
  in
  Printf.printf "%-7s %-7s %12s %12s %10s %9s %10s\n" "nodes" "events"
    "unaudited/s" "audited/s" "events/s" "overhead" "identical";
  List.iter
    (fun r ->
      Printf.printf "%-7d %-7d %12.3f %12.3f %10.1f %9.2f %10b\n" r.nodes
        r.events r.unaudited_s r.audited_s r.events_per_s r.overhead r.identical)
    rows;
  emit_json rows "BENCH_churn.json";
  print_endline "wrote BENCH_churn.json";
  let divergent = List.filter (fun r -> not r.identical) rows in
  if divergent <> [] then begin
    List.iter
      (fun r -> Printf.printf "FAIL: audited run diverged at n=%d\n" r.nodes)
      divergent;
    exit 1
  end;
  let slow = List.filter (fun r -> r.overhead > 3.0) rows in
  if slow <> [] then begin
    List.iter
      (fun r ->
        Printf.printf "FAIL: audit overhead %.2fx > 3x at n=%d\n" r.overhead
          r.nodes)
      slow;
    exit 1
  end
