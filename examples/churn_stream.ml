(* Keeping a broadcast overlay alive under churn — the open problem the
   paper's conclusion points at, using the local-repair extension.

   A 30-peer swarm streams at 90% of its optimal rate (the headroom is
   what makes local repair possible). Peers then leave and join one by
   one; after each event we patch the overlay locally and print how many
   connections moved and how much of the target rate survived, rebuilding
   from scratch only when the patch has degraded too far.

   Run with: dune exec examples/churn_stream.exe *)

let headroom = 0.9

let build inst =
  let t, _ = Broadcast.Greedy.optimal_acyclic inst in
  Broadcast.Overlay.build ~rate:(t *. headroom) inst

let () =
  let rng = Prng.Splitmix.create 321L in
  let inst =
    Platform.Generator.generate
      { Platform.Generator.total = 30; p_open = 0.7; dist = Prng.Dist.unif100 }
      rng
  in
  let overlay = ref (build inst) in
  Printf.printf "initial swarm: %d peers, streaming at %.2f (=%d%% of optimum)\n\n"
    (Platform.Instance.size inst - 1)
    (Broadcast.Overlay.rate !overlay)
    (int_of_float (100. *. headroom));
  Printf.printf "%-28s %12s %14s %10s\n" "event" "patch edges" "rebuild edges" "rate kept";
  for step = 1 to 12 do
    let size = Platform.Instance.size (Broadcast.Overlay.instance !overlay) in
    let leaving = size > 10 && Prng.Splitmix.next_float rng < 0.5 in
    let label, (patched, stats) =
      if leaving then begin
        let node = 1 + Prng.Splitmix.next_below rng (size - 1) in
        let b =
          (Broadcast.Overlay.instance !overlay).Platform.Instance.bandwidth.(node)
        in
        ( Printf.sprintf "%2d. peer leaves (b=%.1f)" step b,
          Broadcast.Repair.leave !overlay ~node )
      end
      else begin
        let bandwidth = Prng.Dist.sample Prng.Dist.unif100 rng in
        let cls =
          if Prng.Splitmix.next_float rng < 0.7 then Platform.Instance.Open
          else Platform.Instance.Guarded
        in
        ( Printf.sprintf "%2d. peer joins (b=%.1f,%s)" step bandwidth
            (match cls with Platform.Instance.Open -> "open" | _ -> "NAT"),
          Broadcast.Repair.join !overlay ~bandwidth ~cls )
      end
    in
    let target = headroom *. stats.Broadcast.Repair.optimal_after in
    let kept =
      if target > 0. then Float.min 1. (stats.Broadcast.Repair.rate_after /. target)
      else 1.
    in
    Printf.printf "%-28s %12d %14d %9.1f%%\n" label
      stats.Broadcast.Repair.patch_edges stats.Broadcast.Repair.rebuild_edges
      (100. *. kept);
    if kept < 0.8 then begin
      Printf.printf "    -> degraded too far, full rebuild\n";
      overlay := build (Broadcast.Overlay.instance patched)
    end
    else overlay := patched
  done;
  let final = !overlay in
  Printf.printf "\nfinal swarm: %d peers, verified rate %.2f (target %.2f)\n"
    (Platform.Instance.size (Broadcast.Overlay.instance final) - 1)
    (Broadcast.Overlay.verified_rate final)
    (Broadcast.Overlay.rate final)
