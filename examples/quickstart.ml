(* Quickstart: compute an optimal-rate, low-degree broadcast overlay for a
   small heterogeneous platform with firewalled nodes.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A platform: the source (b0 = 6), two open nodes, three guarded nodes
     behind NATs/firewalls — the running example of the paper (Fig. 1). *)
  let instance =
    Platform.Instance.create
      ~bandwidth:[| 6.; 5.; 5.; 4.; 1.; 1. |]
      ~n:2 ~m:3 ()
  in

  (* Upper bound over all (even cyclic) schemes - Lemma 5.1 closed form. *)
  let t_star = Broadcast.Bounds.cyclic_upper instance in
  Printf.printf "optimal cyclic throughput T* : %g\n" t_star;

  (* Optimal acyclic throughput and a witness ordering - Theorem 4.1. *)
  let t_ac, word = Broadcast.Greedy.optimal_acyclic instance in
  Printf.printf "optimal acyclic throughput   : %g (order word %s)\n" t_ac
    (Broadcast.Word.to_string word);

  (* Build the low-degree overlay achieving it - Lemma 4.6. The result is
     a verified scheme artifact carrying its own provenance. *)
  let rate, scheme = Broadcast.Low_degree.build_optimal instance in
  let overlay = Broadcast.Scheme.graph scheme in
  Printf.printf "\noverlay at rate %g (%s):\n" rate
    (Broadcast.Scheme.algorithm_name
       (Broadcast.Scheme.provenance scheme).Broadcast.Scheme.algorithm);
  Flowgraph.Graph.iter_edges
    (fun ~src ~dst w -> Printf.printf "  C%d -> C%d at %.3f\n" src dst w)
    overlay;

  (* Check it with the independent max-flow oracle, and inspect degrees.
     Both queries share the scheme's cached snapshot. *)
  let report = Broadcast.Scheme.report scheme in
  Printf.printf "\nverified throughput (max-flow): %.3f; acyclic: %b\n"
    report.Broadcast.Verify.throughput report.Broadcast.Verify.acyclic;
  let degrees = Broadcast.Metrics.scheme_report scheme in
  Array.iteri
    (fun i o ->
      Printf.printf "  C%d: outdegree %d (lower bound %d)\n" i o
        (Broadcast.Bounds.degree_lower_bound instance ~t:rate i))
    degrees.Broadcast.Metrics.degrees;

  (* Decompose the overlay into weighted broadcast trees (Schrijver-style),
     the form a scheduler can consume directly. *)
  let trees = Flowgraph.Arborescence.decompose overlay ~root:0 in
  Printf.printf "\nbroadcast-tree decomposition: %d trees\n" (List.length trees);
  List.iter
    (fun tree ->
      Printf.printf "  tree of rate %.3f, depth %d\n"
        tree.Flowgraph.Arborescence.weight
        (Flowgraph.Arborescence.tree_depth tree))
    trees
