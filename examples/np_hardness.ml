(* The NP-completeness gadget as an executable demonstration (Theorem 3.1).

   We embed a 3-PARTITION instance into a broadcast platform, solve the
   3-PARTITION exactly, and exhibit the degree-tight broadcast scheme the
   reduction promises: throughput T with EVERY outdegree at the lower bound
   ceil(b_i / T). We also show what the polynomial algorithm does on the
   same instance — optimal throughput, but with its allowed +1 degree
   slack, which is exactly why it escapes the hardness.

   Run with: dune exec examples/np_hardness.exe *)

let () =
  (* p = 3 triples, each summing to T = 100; T/4 < a_i < T/2 holds. *)
  let a = [| 26; 33; 41; 27; 35; 38; 30; 31; 39 |] in
  let p = Array.length a / 3 in
  (* Solve on the sorted order used by the reduction instance. *)
  let sorted = Array.copy a in
  Array.sort (fun x y -> compare y x) sorted;
  let instance, t = Broadcast.Hardness.reduction sorted in
  Printf.printf "3-PARTITION: %d values, %d triples, target sum T = %g\n"
    (Array.length a) p t;

  (match Broadcast.Hardness.three_partition sorted with
  | None -> print_endline "no partition exists (reduction: no tight-degree scheme)"
  | Some triples ->
    print_endline "partition found:";
    List.iter
      (fun (x, y, z) ->
        Printf.printf "  {%d, %d, %d} (sum %d)\n" sorted.(x) sorted.(y)
          sorted.(z)
          (sorted.(x) + sorted.(y) + sorted.(z)))
      triples;
    let scheme = Broadcast.Hardness.scheme_of_partition sorted triples in
    let ok = Broadcast.Verify.achieves instance scheme ~rate:t in
    let degrees = Broadcast.Metrics.degree_report instance ~t scheme in
    Printf.printf
      "witness scheme: throughput %g verified: %b; max degree excess: %d \
       (tight!)\n"
      t ok degrees.Broadcast.Metrics.max_excess);

  (* The polynomial-time algorithm on the same instance: same throughput,
     +1 degree slack. *)
  let t_ac = Broadcast.Bounds.acyclic_open_optimal instance in
  let scheme = Broadcast.Acyclic_open.build instance in
  let degrees = Broadcast.Metrics.scheme_report scheme in
  Printf.printf
    "\nAlgorithm 1 on the gadget: throughput %g, max degree excess %d \
     (the +1 slack of Section III-B)\n"
    t_ac degrees.Broadcast.Metrics.max_excess
