(* Live streaming to a swarm with NATed viewers — the paper's motivating
   CoolStreaming/PPLive scenario.

   A 60-peer swarm is drawn from the PlanetLab-like bandwidth pool, 40% of
   peers sit behind NATs (guarded). We build the optimal low-degree acyclic
   overlay, then push a live stream through it with the randomized
   chunk-exchange transport and measure the playout delay viewers need.

   Run with: dune exec examples/live_streaming.exe *)

let () =
  let rng = Prng.Splitmix.create 2024L in
  let spec =
    { Platform.Generator.total = 60; p_open = 0.6; dist = Platform.Plab.dist }
  in
  let swarm = Platform.Generator.generate spec rng in
  Printf.printf "swarm: %d open peers, %d NATed peers, source uplink %.1f Mb/s\n"
    swarm.Platform.Instance.n swarm.Platform.Instance.m
    swarm.Platform.Instance.bandwidth.(0);

  let t_star = Broadcast.Bounds.cyclic_upper swarm in
  let rate, scheme = Broadcast.Low_degree.build_optimal swarm in
  let overlay = Broadcast.Scheme.graph scheme in
  Printf.printf "stream rate: %.2f Mb/s (cyclic upper bound %.2f -> %.1f%% achieved)\n"
    rate t_star (100. *. rate /. t_star);

  let degrees = Broadcast.Metrics.scheme_report scheme in
  Printf.printf "max connections per peer: %d (max excess over ceil(b/T): %d)\n"
    (Broadcast.Metrics.max_outdegree_csr (Broadcast.Scheme.snapshot scheme))
    degrees.Broadcast.Metrics.max_excess;
  Printf.printf "overlay depth (hops from source): %d\n"
    (Broadcast.Metrics.scheme_depth scheme);

  (* Streaming simulation. Chunk duration matters: a chunk must be small
     enough that the slowest overlay edge can relay it quickly, otherwise
     viewers behind that edge buffer for chunk_size / slowest_edge_rate.
     We compare two chunk durations. *)
  let slowest_edge =
    Flowgraph.Graph.fold_edges
      (fun ~src:_ ~dst:_ w acc -> Float.min acc w)
      overlay infinity
  in
  Printf.printf "slowest overlay edge: %.2f Mb/s\n" slowest_edge;
  let run_stream seconds_per_chunk chunks =
    let config =
      {
        Massoulie.Sim.default_config with
        chunks;
        chunk_size = seconds_per_chunk *. rate;
        streaming = true;
        seed = 7L;
        (* Allow duplicate deliveries (Massoulié's actual policy): a slow
           edge must not hold a chunk hostage while fast edges idle. *)
        dedup_inflight = false;
      }
    in
    let sim = Massoulie.Sim.simulate ~config overlay ~rate in
    if not sim.Massoulie.Sim.delivered_all then
      Printf.printf "  %4.2f s chunks: stream did not complete in the horizon\n"
        seconds_per_chunk
    else
      Printf.printf
        "  %4.2f s chunks: worst playout buffering %7.1f s over %d chunks \
         (%.0f s of stream, %d/%d duplicate transfers)\n"
        seconds_per_chunk sim.Massoulie.Sim.max_lag chunks
        (float_of_int chunks *. seconds_per_chunk)
        sim.Massoulie.Sim.duplicates sim.Massoulie.Sim.transfers
  in
  print_endline "\nstreaming simulation (buffering needed by the worst viewer):";
  run_stream 1.0 150;
  run_stream 0.1 1500
