(* The full pipeline of the paper's Section II-C, end to end:

     point-to-point bandwidth measurements
       -> last-mile model estimation (the Bedibe step)
       -> broadcast instance
       -> optimal low-degree overlay (Theorem 4.1)
       -> max-flow verification.

   Measurements are synthesized from a hidden ground-truth last-mile model
   with 10% multiplicative noise, so the example also shows how much of the
   final throughput survives the estimation error.

   Run with: dune exec examples/planetlab_overlay.exe *)

let () =
  let nodes = 30 in
  let rng = Prng.Splitmix.create 99L in

  (* Hidden ground truth: uplinks from the PlanetLab-like pool, downlinks
     1-3x the uplink. *)
  let bout = Array.init nodes (fun _ -> Prng.Dist.sample Platform.Plab.dist rng) in
  let bin = Array.map (fun b -> b *. (1. +. (2. *. Prng.Splitmix.next_float rng))) bout in
  let truth = { Lastmile.Model.bout; bin } in

  (* "Measure" every pair with 10% noise, then re-estimate the model. *)
  let matrix = Lastmile.Model.synthetic_matrix ~noise:0.1 truth rng in
  let fitted = Lastmile.Model.fit matrix in
  Printf.printf "last-mile fit over %d^2 measurements: RMSE %.2f Mb/s\n" nodes
    (Lastmile.Model.rmse fitted matrix);

  (* Best-provisioned node becomes the source; 30%% of the others are
     behind firewalls. *)
  let source = ref 0 in
  Array.iteri (fun i b -> if b > fitted.Lastmile.Model.bout.(!source) then source := i)
    fitted.Lastmile.Model.bout;
  let guarded =
    Array.init nodes (fun i -> i <> !source && Prng.Splitmix.next_float rng < 0.3)
  in
  let instance, back_perm = Lastmile.Model.to_instance fitted ~source:!source ~guarded in
  Printf.printf "instance: source C0 (node %d), %d open, %d guarded\n" !source
    instance.Platform.Instance.n instance.Platform.Instance.m;

  (* The paper assumes incoming bandwidths are never the bottleneck; with
     measured downlink caps the broadcast rate is additionally limited by
     the weakest receiver's downlink, so clip the target rate. *)
  let t_ac, _ = Broadcast.Greedy.optimal_acyclic instance in
  let min_bin =
    match instance.Platform.Instance.bin with
    | None -> infinity
    | Some caps ->
      let worst = ref infinity in
      Array.iteri (fun i c -> if i > 0 then worst := Float.min !worst c) caps;
      !worst
  in
  let rate = Float.min (t_ac *. (1. -. 1e-6)) min_bin in
  let scheme =
    match Broadcast.Greedy.test instance ~rate with
    | Some word -> Broadcast.Low_degree.build instance ~rate word
    | None -> failwith "clipped rate should be feasible"
  in
  let overlay = Broadcast.Scheme.graph scheme in
  let report = Broadcast.Scheme.report scheme in
  Printf.printf
    "uplink-only optimum %.2f Mb/s; weakest downlink %.2f -> overlay rate %.2f \
     Mb/s\n"
    t_ac min_bin rate;
  Printf.printf "max-flow check: %.2f Mb/s; incoming caps respected: %b\n"
    report.Broadcast.Verify.throughput report.Broadcast.Verify.bin_ok;

  (* Map a few overlay edges back to original node identities. *)
  print_endline "sample overlay edges (original node ids):";
  let shown = ref 0 in
  Flowgraph.Graph.iter_edges
    (fun ~src ~dst w ->
      if !shown < 8 then begin
        incr shown;
        Printf.printf "  node %2d -> node %2d at %.2f Mb/s\n" back_perm.(src)
          back_perm.(dst) w
      end)
    overlay
