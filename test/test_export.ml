(* Tests for the DOT/JSON overlay exporters. *)

module G = Flowgraph.Graph

let sample () =
  let g = G.create 3 in
  G.add_edge g ~src:0 ~dst:1 2.5;
  G.add_edge g ~src:1 ~dst:2 1.25;
  g

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_dot () =
  let dot =
    Flowgraph.Export.to_dot
      ~node_class:(fun v -> if v = 0 then Some "source" else Some "open")
      (sample ())
  in
  Alcotest.(check bool) "digraph header" true (contains dot "digraph \"overlay\"");
  Alcotest.(check bool) "edge 0->1" true (contains dot "n0 -> n1 [label=\"2.5\"]");
  Alcotest.(check bool) "edge 1->2" true (contains dot "n1 -> n2 [label=\"1.25\"]");
  Alcotest.(check bool) "source styled" true (contains dot "doublecircle");
  Alcotest.(check bool) "closed" true (contains dot "}\n")

let test_dot_custom_labels () =
  let dot =
    Flowgraph.Export.to_dot ~name:"g2" ~node_label:(Printf.sprintf "peer-%d") (sample ())
  in
  Alcotest.(check bool) "custom name" true (contains dot "digraph \"g2\"");
  Alcotest.(check bool) "custom label" true (contains dot "label=\"peer-2\"")

let test_json () =
  let json = Flowgraph.Export.to_json (sample ()) in
  Alcotest.(check string) "exact json"
    "{\"nodes\": 3, \"edges\": [{\"src\": 0, \"dst\": 1, \"rate\": 2.5}, \
     {\"src\": 1, \"dst\": 2, \"rate\": 1.25}]}"
    json

let test_json_empty () =
  Alcotest.(check string) "empty graph" "{\"nodes\": 2, \"edges\": []}"
    (Flowgraph.Export.to_json (G.create 2))

let test_schedule_json () =
  let scheme =
    Broadcast.Scheme.graph
      (Broadcast.Acyclic_open.build
         (Platform.Instance.create ~bandwidth:[| 6.; 5.; 4.; 3. |] ~n:3 ~m:0 ()))
  in
  let trees = Flowgraph.Arborescence.decompose scheme ~root:0 in
  let json = Flowgraph.Export.schedule_to_json trees in
  Alcotest.(check bool) "has trees" true (contains json "{\"trees\": [{\"rate\":");
  Alcotest.(check bool) "root parent -1" true (contains json "[-1");
  (* One 'parent' array per tree. *)
  let count_occurrences hay needle =
    let rec go i acc =
      if i + String.length needle > String.length hay then acc
      else if String.sub hay i (String.length needle) = needle then
        go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "parents arrays" (List.length trees)
    (count_occurrences json "\"parent\"")

let test_dot_escaping () =
  (* Hostile names and labels (quotes, backslashes, newlines) must come
     out escaped, never as raw bytes that break DOT's quoted strings. *)
  let dot =
    Flowgraph.Export.to_dot ~name:{|over"lay\|}
      ~node_label:(fun v -> Printf.sprintf "peer \"%d\"\nrack\\2" v)
      (sample ())
  in
  Alcotest.(check bool) "name quote escaped" true
    (contains dot {|digraph "over\"lay\\"|});
  Alcotest.(check bool) "label quote escaped" true
    (contains dot {|label="peer \"1\"\nrack\\2"|});
  Alcotest.(check bool) "no raw newline inside a label" false
    (contains dot "peer \"1\"\nrack")

let ok_graph = function
  | Ok g -> g
  | Error e -> Alcotest.failf "valid graph rejected: %s" e

let test_graph_of_json_roundtrip () =
  let g = sample () in
  let g' =
    ok_graph (Flowgraph.Export.graph_of_json (Flowgraph.Export.to_json ~precision:17 g))
  in
  Alcotest.(check bool) "exact roundtrip" true (G.equal ~eps:0. g g')

let rejects what text =
  match Flowgraph.Export.graph_of_json text with
  | Ok _ -> Alcotest.failf "%s accepted" what
  | Error _ -> ()

let test_graph_of_json_rejects () =
  rejects "negative rate"
    {|{"nodes": 2, "edges": [{"src": 0, "dst": 1, "rate": -1}]}|};
  rejects "zero rate"
    {|{"nodes": 2, "edges": [{"src": 0, "dst": 1, "rate": 0}]}|};
  rejects "NaN rate"
    {|{"nodes": 2, "edges": [{"src": 0, "dst": 1, "rate": nan}]}|};
  rejects "src out of range"
    {|{"nodes": 2, "edges": [{"src": 2, "dst": 1, "rate": 1}]}|};
  rejects "negative dst"
    {|{"nodes": 2, "edges": [{"src": 0, "dst": -1, "rate": 1}]}|};
  rejects "self loop"
    {|{"nodes": 2, "edges": [{"src": 1, "dst": 1, "rate": 1}]}|};
  rejects "duplicate edge"
    {|{"nodes": 2, "edges": [{"src": 0, "dst": 1, "rate": 1}, {"src": 0, "dst": 1, "rate": 2}]}|};
  rejects "unknown field" {|{"nodes": 2, "edges": [], "color": "red"}|};
  rejects "missing nodes" {|{"edges": []}|};
  rejects "missing rate" {|{"nodes": 2, "edges": [{"src": 0, "dst": 1}]}|};
  rejects "negative node count" {|{"nodes": -1, "edges": []}|}

let suites =
  [
    ( "export",
      [
        Alcotest.test_case "dot rendering" `Quick test_dot;
        Alcotest.test_case "dot custom labels" `Quick test_dot_custom_labels;
        Alcotest.test_case "dot escaping" `Quick test_dot_escaping;
        Alcotest.test_case "json rendering" `Quick test_json;
        Alcotest.test_case "json empty" `Quick test_json_empty;
        Alcotest.test_case "json import roundtrip" `Quick
          test_graph_of_json_roundtrip;
        Alcotest.test_case "json import rejects" `Quick
          test_graph_of_json_rejects;
        Alcotest.test_case "schedule json" `Quick test_schedule_json;
      ] );
  ]
