(* Tests for the low-degree scheme construction (Lemma 4.6 / Theorem 4.1). *)

open Platform

let check_lemma_46_degrees s =
  let d = Broadcast.Metrics.scheme_report s in
  (match d.Broadcast.Metrics.max_excess_guarded with
  | Some e when e > 1 -> Alcotest.failf "guarded excess %d > 1" e
  | _ -> ());
  (match d.Broadcast.Metrics.max_excess_open with
  | Some e when e > 3 -> Alcotest.failf "open excess %d > 3" e
  | None -> Alcotest.fail "open class (source included) cannot be empty"
  | _ -> ());
  if d.Broadcast.Metrics.opens_above 2 > 1 then
    Alcotest.failf "%d open nodes above +2 (at most one allowed)"
      (d.Broadcast.Metrics.opens_above 2)

let test_fig1 () =
  let inst = Instance.fig1 in
  let rate = 4.0 in
  let w = Broadcast.Word.of_string "gogog" in
  let s = Broadcast.Low_degree.build inst ~rate w in
  ignore (Helpers.check_artifact s ~rate);
  Alcotest.(check bool) "acyclic" true (Broadcast.Scheme.is_acyclic s);
  Alcotest.(check string) "provenance" "theorem41"
    (Broadcast.Scheme.algorithm_name
       (Broadcast.Scheme.provenance s).Broadcast.Scheme.algorithm);
  check_lemma_46_degrees s;
  (* Every non-source node receives exactly the rate. *)
  let g = Broadcast.Scheme.graph s in
  for v = 1 to 5 do
    Helpers.close ~tol:1e-6 "in-weight" (Flowgraph.Graph.in_weight g v) rate
  done

let test_acyclicity_respects_word_order () =
  let inst = Instance.fig1 in
  let w = Broadcast.Word.of_string "gogog" in
  let g = Broadcast.Scheme.graph (Broadcast.Low_degree.build inst ~rate:4. w) in
  let order = Broadcast.Word.to_order w inst in
  let pos = Array.make 6 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  Flowgraph.Graph.iter_edges
    (fun ~src ~dst _ ->
      if pos.(src) >= pos.(dst) then
        Alcotest.failf "edge %d->%d violates word order" src dst)
    g

let test_rejects_infeasible () =
  let inst = Instance.fig1 in
  let w = Broadcast.Word.of_string "ggoog" in
  (* ggoog needs 8 units of source bandwidth at rate 4: must fail. *)
  try
    ignore (Broadcast.Low_degree.build inst ~rate:4. w);
    Alcotest.fail "infeasible word accepted"
  with Invalid_argument _ -> ()

let test_build_optimal_fig1 () =
  let rate, s = Broadcast.Low_degree.build_optimal Instance.fig1 in
  Helpers.close ~tol:1e-6 "rate ~ 4" rate 4.;
  ignore (Helpers.check_artifact s ~rate)

(* The full Theorem 4.1 statement, property-tested: optimal throughput,
   acyclic, firewall-safe, with the Lemma 4.6 degree bounds. *)
let prop_theorem41 =
  QCheck.Test.make ~name:"Theorem 4.1 pipeline" ~count:60
    (Helpers.instance_arb ~max_open:12 ~max_guarded:12) (fun inst ->
      let rate, scheme = Broadcast.Low_degree.build_optimal inst in
      QCheck.assume (rate > 1e-6);
      let report = Helpers.check_artifact scheme ~rate in
      if not report.Broadcast.Verify.acyclic then Alcotest.fail "cyclic scheme";
      check_lemma_46_degrees scheme;
      true)

(* Firewall constraint holds even on guarded-heavy instances. *)
let prop_firewall =
  QCheck.Test.make ~name:"no guarded-guarded edges" ~count:40
    (Helpers.instance_arb ~max_open:3 ~max_guarded:15) (fun inst ->
      let rate, scheme = Broadcast.Low_degree.build_optimal inst in
      QCheck.assume (rate > 1e-6);
      let ok = ref true in
      Flowgraph.Graph.iter_edges
        (fun ~src ~dst _ ->
          if Instance.is_guarded inst src && Instance.is_guarded inst dst then
            ok := false)
        (Broadcast.Scheme.graph scheme);
      !ok)

(* Guarded senders always serve consecutive intervals of open nodes (the
   key structural step in the proof of Lemma 4.6). *)
let prop_guarded_interval =
  QCheck.Test.make ~name:"guarded nodes feed open intervals" ~count:40
    (Helpers.instance_arb ~max_open:10 ~max_guarded:10) (fun inst ->
      let t, _ = Broadcast.Greedy.optimal_acyclic inst in
      let rate = t *. 0.99 in
      QCheck.assume (rate > 1e-6);
      let word =
        match Broadcast.Greedy.test inst ~rate with
        | Some w -> w
        | None -> QCheck.assume_fail ()
      in
      let scheme =
        Broadcast.Scheme.graph (Broadcast.Low_degree.build inst ~rate word)
      in
      (* Lemma 4.6's proof: every guarded node uploads to a consecutive
         interval of OPEN nodes. Open nodes are fed in index order, so the
         receivers' node indices must be consecutive. *)
      let ok = ref true in
      for g = inst.Instance.n + 1 to inst.Instance.n + inst.Instance.m do
        let receivers =
          Flowgraph.Graph.out_edges scheme g
          |> List.map (fun (v, _) ->
                 if Instance.is_guarded inst v then
                   Alcotest.failf "guarded node %d feeds guarded node %d" g v;
                 v)
          |> List.sort compare
        in
        let rec consecutive = function
          | a :: b :: rest -> b = a + 1 && consecutive (b :: rest)
          | _ -> true
        in
        if not (consecutive receivers) then ok := false
      done;
      !ok)

let suites =
  [
    ( "low_degree",
      [
        Alcotest.test_case "fig1 construction" `Quick test_fig1;
        Alcotest.test_case "edges follow word order" `Quick test_acyclicity_respects_word_order;
        Alcotest.test_case "rejects infeasible word" `Quick test_rejects_infeasible;
        Alcotest.test_case "build_optimal on fig1" `Quick test_build_optimal_fig1;
        QCheck_alcotest.to_alcotest prop_theorem41;
        QCheck_alcotest.to_alcotest prop_firewall;
        QCheck_alcotest.to_alcotest prop_guarded_interval;
      ] );
  ]
