(* Tests for the verification oracle and the degree/depth metrics. *)

open Platform
module G = Flowgraph.Graph

(* Each call returns a fresh throwaway graph, so the mutation-based
   violation tests below never alias a live Scheme artifact. *)
let fig1_valid_scheme () =
  Broadcast.Scheme.graph
    (Broadcast.Low_degree.build Instance.fig1 ~rate:4.
       (Broadcast.Word.of_string "gogog"))

let test_valid_scheme_report () =
  let r = Broadcast.Verify.check Instance.fig1 (fig1_valid_scheme ()) in
  Alcotest.(check bool) "bandwidth" true r.Broadcast.Verify.bandwidth_ok;
  Alcotest.(check bool) "firewall" true r.Broadcast.Verify.firewall_ok;
  Alcotest.(check bool) "bin" true r.Broadcast.Verify.bin_ok;
  Alcotest.(check bool) "acyclic" true r.Broadcast.Verify.acyclic;
  Alcotest.(check bool) "no inflow at source" false r.Broadcast.Verify.source_receives;
  Helpers.close ~tol:1e-6 "throughput" r.Broadcast.Verify.throughput 4.

let test_detects_bandwidth_violation () =
  let g = fig1_valid_scheme () in
  G.add_edge g ~src:4 ~dst:1 5. (* C4 has b = 1 *);
  let r = Broadcast.Verify.check Instance.fig1 g in
  Alcotest.(check bool) "violation detected" false r.Broadcast.Verify.bandwidth_ok

let test_detects_firewall_violation () =
  let g = fig1_valid_scheme () in
  G.add_edge g ~src:3 ~dst:4 0.1 (* guarded -> guarded *);
  let r = Broadcast.Verify.check Instance.fig1 g in
  Alcotest.(check bool) "firewall breach detected" false r.Broadcast.Verify.firewall_ok

let test_detects_bin_violation () =
  let inst =
    Instance.create ~bin:[| 10.; 0.5 |] ~bandwidth:[| 2.; 1. |] ~n:1 ~m:0 ()
  in
  let g = G.create 2 in
  G.add_edge g ~src:0 ~dst:1 1.;
  let r = Broadcast.Verify.check inst g in
  Alcotest.(check bool) "bin cap violated" false r.Broadcast.Verify.bin_ok;
  Alcotest.(check bool) "achieves refuses" false
    (Broadcast.Verify.achieves inst g ~rate:0.9)

let test_detects_cycle () =
  let g = fig1_valid_scheme () in
  G.add_edge g ~src:5 ~dst:0 0.1;
  let r = Broadcast.Verify.check Instance.fig1 g in
  Alcotest.(check bool) "cycle flagged" false r.Broadcast.Verify.acyclic;
  Alcotest.(check bool) "source inflow flagged" true r.Broadcast.Verify.source_receives

let test_throughput_is_min_flow () =
  (* Remove a sliver from one receiver: throughput becomes that node's
     in-flow. *)
  let g = fig1_valid_scheme () in
  let w = G.edge_weight g ~src:0 ~dst:3 in
  G.set_edge g ~src:0 ~dst:3 (w -. 1.);
  let r = Broadcast.Verify.check Instance.fig1 g in
  Helpers.close ~tol:1e-6 "degraded throughput" r.Broadcast.Verify.throughput 3.

let test_node_count_mismatch () =
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Verify.check: node count mismatch") (fun () ->
      ignore (Broadcast.Verify.check Instance.fig1 (G.create 3)))

let test_degree_report () =
  let g = fig1_valid_scheme () in
  let d = Broadcast.Metrics.degree_report Instance.fig1 ~t:4. g in
  Alcotest.(check int) "degrees length" 6 (Array.length d.Broadcast.Metrics.degrees);
  Array.iteri
    (fun i o -> Alcotest.(check int) "degree matches graph" (G.out_degree g i) o)
    d.Broadcast.Metrics.degrees;
  Array.iteri
    (fun i e ->
      Alcotest.(check int) "excess consistent"
        (d.Broadcast.Metrics.degrees.(i)
        - Broadcast.Bounds.degree_lower_bound Instance.fig1 ~t:4. i)
        e)
    d.Broadcast.Metrics.excess;
  Alcotest.(check bool) "guarded max present" true
    (d.Broadcast.Metrics.max_excess_guarded <> None);
  Alcotest.(check int) "opens_above large k" 0 (d.Broadcast.Metrics.opens_above 100)

let test_degree_report_open_only () =
  (* m = 0: the guarded class is empty, so its maximum must be [None]
     rather than a min_int sentinel. *)
  let inst =
    Instance.create ~bandwidth:[| 4.; 2.; 2. |] ~n:2 ~m:0 ()
  in
  let g = G.create 3 in
  G.add_edge g ~src:0 ~dst:1 2.;
  G.add_edge g ~src:1 ~dst:2 2.;
  let d = Broadcast.Metrics.degree_report inst ~t:2. g in
  Alcotest.(check (option int)) "guarded empty" None
    d.Broadcast.Metrics.max_excess_guarded;
  (match d.Broadcast.Metrics.max_excess_open with
  | Some e -> Alcotest.(check bool) "open max sane" true (e > min_int)
  | None -> Alcotest.fail "open class includes the source");
  Alcotest.(check int) "overall max unchanged" d.Broadcast.Metrics.max_excess
    (Array.fold_left max min_int d.Broadcast.Metrics.excess)

let test_degree_report_guarded_only () =
  (* n = 0: every receiver is guarded; the open class still contains the
     source, so its maximum is the source's excess. *)
  let inst =
    Instance.create ~bandwidth:[| 4.; 2.; 2. |] ~n:0 ~m:2 ()
  in
  let g = G.create 3 in
  G.add_edge g ~src:0 ~dst:1 2.;
  G.add_edge g ~src:0 ~dst:2 2.;
  let d = Broadcast.Metrics.degree_report inst ~t:2. g in
  Alcotest.(check (option int)) "open = source excess"
    (Some d.Broadcast.Metrics.excess.(0))
    d.Broadcast.Metrics.max_excess_open;
  Alcotest.(check (option int)) "guarded max present"
    (Some (max d.Broadcast.Metrics.excess.(1) d.Broadcast.Metrics.excess.(2)))
    d.Broadcast.Metrics.max_excess_guarded

let test_depth_and_max_outdegree () =
  let g = G.create 4 in
  G.add_edge g ~src:0 ~dst:1 1.;
  G.add_edge g ~src:1 ~dst:2 1.;
  G.add_edge g ~src:1 ~dst:3 1.;
  Alcotest.(check int) "depth" 2 (Broadcast.Metrics.depth g);
  Alcotest.(check int) "max outdegree" 2 (Broadcast.Metrics.max_outdegree g)

let suites =
  [
    ( "verify",
      [
        Alcotest.test_case "valid scheme report" `Quick test_valid_scheme_report;
        Alcotest.test_case "bandwidth violation" `Quick test_detects_bandwidth_violation;
        Alcotest.test_case "firewall violation" `Quick test_detects_firewall_violation;
        Alcotest.test_case "incoming cap violation" `Quick test_detects_bin_violation;
        Alcotest.test_case "cycle detection" `Quick test_detects_cycle;
        Alcotest.test_case "throughput = min max-flow" `Quick test_throughput_is_min_flow;
        Alcotest.test_case "node count mismatch" `Quick test_node_count_mismatch;
      ] );
    ( "metrics",
      [
        Alcotest.test_case "degree report" `Quick test_degree_report;
        Alcotest.test_case "degree report, open-only" `Quick test_degree_report_open_only;
        Alcotest.test_case "degree report, guarded-only" `Quick
          test_degree_report_guarded_only;
        Alcotest.test_case "depth and max outdegree" `Quick test_depth_and_max_outdegree;
      ] );
  ]
