(* Regenerates the golden artifacts pinned by test_scheme.ml and
   test_churn.ml:

     dune exec test/gen_golden.exe > test/golden/fig1_scheme.json
     dune exec test/gen_golden.exe -- trace > test/golden/churn_trace.json

   Only do this after an intentional format change (and bump the
   corresponding format_version accordingly). *)

let () =
  match Sys.argv with
  | [| _; "trace" |] ->
    let trace = Churn.Trace.gen ~events:12 (Prng.Splitmix.create 2024L) in
    print_string (Churn.Trace.to_json trace ^ "\n")
  | _ ->
    let scheme =
      Broadcast.Low_degree.build Platform.Instance.fig1 ~rate:4.
        (Broadcast.Word.of_string "gogog")
    in
    print_string (Broadcast.Scheme.to_json scheme ^ "\n")
