(* Regenerates the golden scheme artifact pinned by test_scheme.ml:

     dune exec test/gen_golden.exe > test/golden/fig1_scheme.json

   Only do this after an intentional format change (and bump
   Scheme.format_version accordingly). *)

let () =
  let scheme =
    Broadcast.Low_degree.build Platform.Instance.fig1 ~rate:4.
      (Broadcast.Word.of_string "gogog")
  in
  print_string (Broadcast.Scheme.to_json scheme ^ "\n")
