(* Tests for the experiment drivers: statistics helpers, table rendering,
   and the headline numbers each paper artifact must reproduce. *)

let null_formatter =
  Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let test_stats_basics () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  Helpers.close "mean" (Experiments.Stats.mean xs) 3.;
  Helpers.close "std" (Experiments.Stats.std xs) (sqrt 2.);
  Helpers.close "median" (Experiments.Stats.quantile xs 0.5) 3.;
  Helpers.close "q0" (Experiments.Stats.quantile xs 0.) 1.;
  Helpers.close "q1" (Experiments.Stats.quantile xs 1.) 5.;
  Helpers.close "interpolated" (Experiments.Stats.quantile xs 0.125) 1.5;
  let f = Experiments.Stats.five_numbers xs in
  Helpers.close "q25" f.Experiments.Stats.q25 2.;
  Helpers.close "q75" f.Experiments.Stats.q75 4.;
  Helpers.close "below 3" (Experiments.Stats.fraction_below xs 3.) 0.4

let test_stats_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats: empty sample") (fun () ->
      ignore (Experiments.Stats.mean [||]));
  Alcotest.check_raises "bad p" (Invalid_argument "Stats.quantile: p out of range")
    (fun () -> ignore (Experiments.Stats.quantile [| 1. |] 1.5))

let test_tab_render () =
  let out =
    Experiments.Tab.render ~header:[ "a"; "bb" ] [ [ "xxx"; "y" ]; [ "z" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "header + rule + 2 rows (+ trailing)" 5 (List.length lines);
  Alcotest.(check bool) "contains rule" true
    (String.length (List.nth lines 1) > 0 && (List.nth lines 1).[0] = '-')

let test_fig1_data () =
  let d = Experiments.Fig1_example.compute () in
  Helpers.close "cyclic 4.4" d.Experiments.Fig1_example.cyclic 4.4;
  Helpers.close ~tol:1e-6 "acyclic 4" d.Experiments.Fig1_example.acyclic 4.;
  Alcotest.(check string) "word" "gogog"
    (Broadcast.Word.to_string d.Experiments.Fig1_example.word);
  Alcotest.(check (array int)) "order" [| 0; 3; 1; 4; 2; 5 |]
    d.Experiments.Fig1_example.order;
  Helpers.close ~tol:1e-6 "scheme throughput"
    d.Experiments.Fig1_example.scheme_throughput 4.;
  Alcotest.(check bool) "guarded excess <= 1" true
    (d.Experiments.Fig1_example.max_excess_guarded <= 1);
  Alcotest.(check bool) "open excess <= 3" true
    (d.Experiments.Fig1_example.max_excess_open <= 3)

let test_fig6_data () =
  let r = Experiments.Fig6_unbounded.compute ~m:6 in
  Helpers.close "cyclic 1" r.Experiments.Fig6_unbounded.cyclic 1.;
  Helpers.close ~tol:1e-6 "scheme achieves 1"
    r.Experiments.Fig6_unbounded.scheme_throughput 1.;
  Alcotest.(check int) "source degree m" 6 r.Experiments.Fig6_unbounded.source_degree;
  Alcotest.(check int) "bound 1" 1 r.Experiments.Fig6_unbounded.degree_bound;
  Alcotest.(check bool) "acyclic below cyclic" true
    (r.Experiments.Fig6_unbounded.acyclic < 1.)

let test_fig7_cell () =
  let c = Experiments.Fig7_surface.compute_cell ~n:100 ~m:42 in
  (* The Theorem 6.3 valley: ratio close to 0.925, clearly below 1. *)
  Alcotest.(check bool) "valley below 0.94" true
    (c.Experiments.Fig7_surface.ratio < 0.94);
  Alcotest.(check bool) "above 5/7" true
    (c.Experiments.Fig7_surface.ratio >= (5. /. 7.) -. 1e-9)

let test_fig7_surface_summary () =
  let s = Experiments.Fig7_surface.compute ~ns:[ 2; 4; 8 ] ~ms:[ 2; 4; 8 ] () in
  Alcotest.(check int) "grid size" 9 (List.length s.Experiments.Fig7_surface.cells);
  let g = s.Experiments.Fig7_surface.global_min in
  Alcotest.(check bool) "min in range" true
    (g.Experiments.Fig7_surface.ratio >= (5. /. 7.) -. 1e-9
    && g.Experiments.Fig7_surface.ratio <= 1. +. 1e-9)

let test_fig18_tight_point () =
  let r = Experiments.Fig18_worst.compute ~epsilon:(1. /. 14.) in
  Helpers.close ~tol:1e-9 "sigma1 = 5/7" r.Experiments.Fig18_worst.sigma1 (5. /. 7.);
  Helpers.close ~tol:1e-9 "sigma2 = 5/7" r.Experiments.Fig18_worst.sigma2 (5. /. 7.);
  Helpers.close ~tol:1e-9 "ratio = 5/7" r.Experiments.Fig18_worst.ratio (5. /. 7.);
  Helpers.close ~tol:1e-9 "measured = closed"
    r.Experiments.Fig18_worst.sigma1_measured r.Experiments.Fig18_worst.sigma1

let test_thm63_data () =
  let r = Experiments.Thm63_family.compute ~k:1 in
  Helpers.close "cyclic 1" r.Experiments.Thm63_family.cyclic 1.;
  Alcotest.(check bool) "acyclic below bound" true
    (r.Experiments.Thm63_family.acyclic <= r.Experiments.Thm63_family.bound +. 1e-6);
  Alcotest.(check bool) "bound near limit" true
    (Float.abs (r.Experiments.Thm63_family.bound -. r.Experiments.Thm63_family.limit)
    < 0.01)

let test_fig19_cell () =
  let c =
    Experiments.Fig19_average.compute_cell ~dist:Prng.Dist.unif100 ~name:"Unif100"
      ~n:15 ~p:0.7 ~replicates:25 ~seed:5L
  in
  Alcotest.(check bool) "mean ratio in (0.7, 1]" true
    (c.Experiments.Fig19_average.acyclic_mean > 0.7
    && c.Experiments.Fig19_average.acyclic_mean <= 1. +. 1e-9);
  Alcotest.(check bool) "omega below acyclic mean + eps" true
    (c.Experiments.Fig19_average.omega_mean
    <= c.Experiments.Fig19_average.acyclic_mean +. 1e-6);
  Alcotest.(check bool) "boxplot ordered" true
    (let f = c.Experiments.Fig19_average.acyclic in
     f.Experiments.Stats.min <= f.Experiments.Stats.q25
     && f.Experiments.Stats.q25 <= f.Experiments.Stats.median
     && f.Experiments.Stats.median <= f.Experiments.Stats.q75
     && f.Experiments.Stats.q75 <= f.Experiments.Stats.max)

let test_massoulie_rows () =
  let rows = Experiments.Massoulie_validation.compute ~chunks:120 () in
  Alcotest.(check int) "three overlays" 3 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "efficiency positive" true
        (r.Experiments.Massoulie_validation.efficiency > 0.3))
    rows

let test_lastmile_rows () =
  let r = Experiments.Lastmile_validation.compute ~nodes:20 ~noise:0. ~seed:3L () in
  Helpers.close ~tol:1e-6 "noise-free rmse 0" r.Experiments.Lastmile_validation.rmse 0.;
  Helpers.close ~tol:1e-6 "throughputs agree"
    r.Experiments.Lastmile_validation.throughput_fitted
    r.Experiments.Lastmile_validation.throughput_true

let test_registry () =
  Alcotest.(check int) "sixteen experiments" 16 (List.length Experiments.Registry.all);
  List.iter
    (fun e ->
      match Experiments.Registry.find e.Experiments.Registry.name with
      | Some found ->
        Alcotest.(check string) "found by name" e.Experiments.Registry.name
          found.Experiments.Registry.name
      | None -> Alcotest.failf "%s not found" e.Experiments.Registry.name)
    Experiments.Registry.all;
  Alcotest.(check bool) "unknown name" true (Experiments.Registry.find "nope" = None)

let test_cheap_experiments_run () =
  (* Smoke-run the cheap drivers end to end (output discarded). *)
  List.iter
    (fun name ->
      match Experiments.Registry.find name with
      | Some e -> e.Experiments.Registry.run null_formatter
      | None -> Alcotest.failf "missing experiment %s" name)
    [ "fig1"; "fig6"; "fig8"; "cyclic"; "fig18"; "thm63"; "churn"; "depth" ]

let test_cyclic_walkthrough_rows () =
  let rows = Experiments.Cyclic_walkthrough.examples () in
  List.iter
    (fun r ->
      Helpers.close ~tol:1e-6 "achieves 5" r.Experiments.Cyclic_walkthrough.throughput 5.;
      Alcotest.(check bool) "needed a cycle" false r.Experiments.Cyclic_walkthrough.acyclic;
      Alcotest.(check bool) "degree bound" true
        r.Experiments.Cyclic_walkthrough.degree_bound_ok)
    rows

let suites =
  [
    ( "stats+tab",
      [
        Alcotest.test_case "stats basics" `Quick test_stats_basics;
        Alcotest.test_case "stats errors" `Quick test_stats_errors;
        Alcotest.test_case "table rendering" `Quick test_tab_render;
      ] );
    ( "experiments",
      [
        Alcotest.test_case "E1 fig1 numbers" `Quick test_fig1_data;
        Alcotest.test_case "E4 fig6 numbers" `Quick test_fig6_data;
        Alcotest.test_case "E5 fig7 valley cell" `Quick test_fig7_cell;
        Alcotest.test_case "E5 fig7 surface" `Quick test_fig7_surface_summary;
        Alcotest.test_case "E8 fig18 tight point" `Quick test_fig18_tight_point;
        Alcotest.test_case "E9 thm63 numbers" `Quick test_thm63_data;
        Alcotest.test_case "E10 fig19 cell" `Quick test_fig19_cell;
        Alcotest.test_case "E11 massoulie rows" `Quick test_massoulie_rows;
        Alcotest.test_case "E12 lastmile rows" `Quick test_lastmile_rows;
        Alcotest.test_case "E7 cyclic walkthrough" `Quick test_cyclic_walkthrough_rows;
        Alcotest.test_case "registry" `Quick test_registry;
        Alcotest.test_case "cheap drivers run" `Quick test_cheap_experiments_run;
      ] );
  ]

(* -- E13/E14 extension experiments -- *)

let test_churn_summary () =
  let s = Experiments.Churn_repair.run ~nodes:20 ~events:10 ~headroom:0.75 () in
  Alcotest.(check int) "events" 10 s.Experiments.Churn_repair.events;
  Alcotest.(check bool) "patch cheaper on average" true
    (s.Experiments.Churn_repair.patch_edges_mean
    <= s.Experiments.Churn_repair.rebuild_edges_mean);
  Alcotest.(check bool) "kept in [0, 1]" true
    (s.Experiments.Churn_repair.kept_mean >= 0.
    && s.Experiments.Churn_repair.kept_mean <= 1. +. 1e-9)

let test_churn_validation () =
  try
    ignore (Experiments.Churn_repair.run ~headroom:1.5 ());
    Alcotest.fail "headroom > 1 accepted"
  with Invalid_argument _ -> ()

let test_depth_ablation_rows () =
  let rows = Experiments.Depth_ablation.compute ~nodes:30 ~fractions:[ 1.0; 0.5 ] () in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun r ->
      let p = r.Experiments.Depth_ablation.point in
      Alcotest.(check bool) "depths positive" true
        (p.Broadcast.Depth.fifo_depth >= 1 && p.Broadcast.Depth.min_depth >= 1))
    rows

let extension_suites =
  [
    ( "extensions",
      [
        Alcotest.test_case "E13 churn summary" `Quick test_churn_summary;
        Alcotest.test_case "E13 churn validation" `Quick test_churn_validation;
        Alcotest.test_case "E14 depth ablation" `Quick test_depth_ablation_rows;
      ] );
  ]

let suites = suites @ extension_suites

let test_selfcheck_all_pass () =
  let outcomes = Experiments.Selfcheck.run_all () in
  Alcotest.(check int) "nine checks" 9 (List.length outcomes);
  List.iter
    (fun o ->
      if not o.Experiments.Selfcheck.passed then
        Alcotest.failf "selfcheck %s failed: %s" o.Experiments.Selfcheck.name
          o.Experiments.Selfcheck.detail)
    outcomes

let suites =
  match List.rev suites with
  | (name, cases) :: rest ->
    List.rev
      (( name,
         cases @ [ Alcotest.test_case "selfcheck battery" `Quick test_selfcheck_all_pass ] )
      :: rest)
  | [] -> suites
