(* Tests for the Scheme artifact layer: smart-constructor invariants,
   memoized snapshot/report caches, canonical JSON round-trips, and the
   golden serialized bytes of the paper's Figure 1 scheme. *)

open Platform
module G = Flowgraph.Graph
module Scheme = Broadcast.Scheme

let fig1_scheme () =
  Broadcast.Low_degree.build Instance.fig1 ~rate:4.
    (Broadcast.Word.of_string "gogog")

let imported rate = { Scheme.algorithm = Scheme.Imported; rate; degree_bound = None }

let test_create_validations () =
  let inst = Instance.create ~bandwidth:[| 4.; 2.; 2. |] ~n:2 ~m:0 () in
  (try
     ignore (Scheme.create ~provenance:(imported 1.) inst (G.create 2));
     Alcotest.fail "node-count mismatch accepted"
   with Invalid_argument _ -> ());
  (try
     let unsorted = Instance.create ~bandwidth:[| 4.; 1.; 2. |] ~n:2 ~m:0 () in
     ignore (Scheme.create ~provenance:(imported 1.) unsorted (G.create 3));
     Alcotest.fail "unsorted instance accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Scheme.create ~provenance:(imported 0.) inst (G.create 3));
     Alcotest.fail "zero rate accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Scheme.create ~provenance:(imported Float.nan) inst (G.create 3));
     Alcotest.fail "NaN rate accepted"
   with Invalid_argument _ -> ());
  (try
     let g = G.create 3 in
     G.add_edge g ~src:1 ~dst:2 5. (* b1 = 2 *);
     ignore (Scheme.create ~provenance:(imported 1.) inst g);
     Alcotest.fail "bandwidth violation accepted"
   with Invalid_argument _ -> ());
  try
    let guarded = Instance.create ~bandwidth:[| 4.; 2.; 2. |] ~n:0 ~m:2 () in
    let g = G.create 3 in
    G.add_edge g ~src:1 ~dst:2 0.5;
    ignore (Scheme.create ~provenance:(imported 1.) guarded g);
    Alcotest.fail "guarded-to-guarded edge accepted"
  with Invalid_argument _ -> ()

let test_graph_copied () =
  (* The constructor must copy, so caller-side mutation cannot reach the
     artifact. *)
  let inst = Instance.create ~bandwidth:[| 4.; 2. |] ~n:1 ~m:0 () in
  let g = G.create 2 in
  G.add_edge g ~src:0 ~dst:1 1.;
  let s = Scheme.create ~provenance:(imported 1.) inst g in
  G.set_edge g ~src:0 ~dst:1 4.;
  Helpers.close "artifact keeps its own weights"
    (G.edge_weight (Scheme.graph s) ~src:0 ~dst:1)
    1.

let test_memoized_caches () =
  let s = fig1_scheme () in
  Alcotest.(check bool) "snapshot cached" true
    (Scheme.snapshot s == Scheme.snapshot s);
  Alcotest.(check bool) "report cached" true (Scheme.report s == Scheme.report s)

let test_report_fields () =
  let s = fig1_scheme () in
  Helpers.close ~tol:1e-6 "throughput" (Scheme.throughput s) 4.;
  Alcotest.(check bool) "acyclic" true (Scheme.is_acyclic s);
  Alcotest.(check bool) "achieves target" true (Scheme.achieves_target s);
  Alcotest.(check int) "size" 6 (Scheme.size s);
  Alcotest.(check bool) "edges present" true (Scheme.edge_count s > 0)

let test_algorithm_names_roundtrip () =
  List.iter
    (fun a ->
      match Scheme.algorithm_of_name (Scheme.algorithm_name a) with
      | Ok a' -> Alcotest.(check bool) "name roundtrip" true (a = a')
      | Error e -> Alcotest.failf "name roundtrip failed: %s" e)
    [
      Scheme.Algorithm1;
      Scheme.Theorem41;
      Scheme.Min_depth;
      Scheme.Theorem52;
      Scheme.Imported;
      Scheme.Repaired Scheme.Theorem41;
      Scheme.Repaired (Scheme.Repaired Scheme.Algorithm1);
    ];
  match Scheme.algorithm_of_name "frobnicate" with
  | Ok _ -> Alcotest.fail "unknown algorithm accepted"
  | Error _ -> ()

(* Provenance name parsing recognizes repaired(<alg>) by prefix/suffix
   and recursion; pin that arbitrarily nested provenance survives both
   the name codec and the full artifact JSON round-trip. *)

let algorithm_gen =
  QCheck.Gen.(
    sized_size (int_bound 6)
    @@ fix (fun self n ->
           let base =
             oneofl
               [
                 Scheme.Algorithm1;
                 Scheme.Theorem41;
                 Scheme.Min_depth;
                 Scheme.Theorem52;
                 Scheme.Imported;
               ]
           in
           if n <= 0 then base
           else
             frequency
               [ (1, base); (3, map (fun a -> Scheme.Repaired a) (self (n - 1))) ]))

let prop_provenance_name_roundtrip =
  QCheck.Test.make ~name:"provenance names round-trip (nested repaired)"
    ~count:300
    (QCheck.make ~print:Scheme.algorithm_name algorithm_gen)
    (fun a -> Scheme.algorithm_of_name (Scheme.algorithm_name a) = Ok a)

let test_nested_repaired_json_roundtrip () =
  let inst = Instance.create ~bandwidth:[| 4.; 2. |] ~n:1 ~m:0 () in
  let g = G.create 2 in
  G.add_edge g ~src:0 ~dst:1 1.;
  List.iter
    (fun algorithm ->
      let s =
        Scheme.create
          ~provenance:{ Scheme.algorithm; rate = 1.; degree_bound = Some 2 }
          inst g
      in
      let text = Scheme.to_json s in
      match Scheme.of_json text with
      | Error e ->
        Alcotest.failf "%s does not reload: %s"
          (Scheme.algorithm_name algorithm) e
      | Ok s' ->
        Alcotest.(check bool)
          (Scheme.algorithm_name algorithm ^ " provenance survives")
          true
          ((Scheme.provenance s').Scheme.algorithm = algorithm);
        Alcotest.(check string) "canonical bytes are stable" text
          (Scheme.to_json s'))
    [
      Scheme.Repaired Scheme.Algorithm1;
      Scheme.Repaired (Scheme.Repaired Scheme.Algorithm1);
      Scheme.Repaired (Scheme.Repaired (Scheme.Repaired Scheme.Imported));
    ]

let test_malformed_repaired_names_rejected () =
  List.iter
    (fun name ->
      match Scheme.algorithm_of_name name with
      | Ok _ -> Alcotest.failf "accepted %S" name
      | Error _ -> ())
    [
      "repaired(";
      "repaired()";
      "repaired";
      "repaired(algorithm1";
      "repaired(frobnicate)";
      "repaired(repaired())";
      "REPAIRED(algorithm1)";
      "repaired(algorithm1))";
    ]

let same_report (a : Broadcast.Verify.report) (b : Broadcast.Verify.report) =
  a.Broadcast.Verify.bandwidth_ok = b.Broadcast.Verify.bandwidth_ok
  && a.Broadcast.Verify.firewall_ok = b.Broadcast.Verify.firewall_ok
  && a.Broadcast.Verify.bin_ok = b.Broadcast.Verify.bin_ok
  && a.Broadcast.Verify.acyclic = b.Broadcast.Verify.acyclic
  && a.Broadcast.Verify.fast_path = b.Broadcast.Verify.fast_path
  && a.Broadcast.Verify.source_receives = b.Broadcast.Verify.source_receives
  && a.Broadcast.Verify.throughput = b.Broadcast.Verify.throughput

let test_json_roundtrip () =
  let s = fig1_scheme () in
  match Scheme.of_json (Scheme.to_json s) with
  | Error e -> Alcotest.failf "roundtrip rejected: %s" e
  | Ok s' ->
    Alcotest.(check bool) "equal artifact" true (Scheme.equal s s');
    Alcotest.(check bool) "identical report" true
      (same_report (Scheme.report s) (Scheme.report s'));
    Alcotest.(check string) "identical bytes" (Scheme.to_json s)
      (Scheme.to_json s')

let test_json_roundtrip_cyclic () =
  (* A cyclic scheme with Theorem 5.2 provenance survives the disk too. *)
  let inst = Instance.create ~bandwidth:[| 5.; 5.; 3.; 2. |] ~n:3 ~m:0 () in
  let s = Broadcast.Cyclic_open.build ~t:5. inst in
  match Scheme.of_json (Scheme.to_json s) with
  | Error e -> Alcotest.failf "cyclic roundtrip rejected: %s" e
  | Ok s' ->
    Alcotest.(check bool) "equal artifact" true (Scheme.equal s s');
    Alcotest.(check bool) "still cyclic" false (Scheme.is_acyclic s');
    Alcotest.(check bool) "identical report" true
      (same_report (Scheme.report s) (Scheme.report s'))

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_json_golden () =
  (* The serialized Figure 1 scheme is pinned byte-for-byte: any encoding
     change must bump format_version and regenerate the golden file with
     `dune exec test/gen_golden.exe`. *)
  let golden = read_file "golden/fig1_scheme.json" in
  Alcotest.(check string) "golden bytes"
    golden
    (Scheme.to_json (fig1_scheme ()) ^ "\n")

let test_json_deterministic_across_domains () =
  (* Byte-identical output no matter which domain built the artifact —
     serialization must not depend on construction history or timing. *)
  let reference = Scheme.to_json (fig1_scheme ()) in
  let all =
    Parallel.Pool.map_range 4 (fun _ -> Scheme.to_json (fig1_scheme ()))
  in
  Array.iter
    (fun j -> Alcotest.(check string) "domain-independent bytes" reference j)
    all

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* Replace every occurrence of [sub] in [s] by [by]. *)
let replace ~sub ~by s =
  let ls = String.length s and ln = String.length sub in
  let buf = Buffer.create ls in
  let i = ref 0 in
  while !i < ls do
    if !i + ln <= ls && String.sub s !i ln = sub then begin
      Buffer.add_string buf by;
      i := !i + ln
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let check_rejected what text =
  match Scheme.of_json text with
  | Ok _ -> Alcotest.failf "%s accepted" what
  | Error _ -> ()

let test_of_json_rejects () =
  let valid = Scheme.to_json (fig1_scheme ()) in
  check_rejected "garbage" "not json at all";
  check_rejected "wrong format tag"
    (replace ~sub:"bmp-scheme" ~by:"other-format" valid);
  check_rejected "future version"
    (replace ~sub:"\"version\": 1," ~by:"\"version\": 99," valid);
  check_rejected "unknown top-level field"
    (replace ~sub:"\"version\": 1," ~by:"\"version\": 1, \"extra\": 0," valid);
  check_rejected "unknown algorithm"
    (replace ~sub:"theorem41" ~by:"theorem99" valid);
  (* A guarded-to-guarded edge smuggled into an otherwise valid file: the
     create invariants run on load and must reject it. *)
  check_rejected "firewall violation"
    (replace ~sub:"\"edges\": [" ~by:"\"edges\": [{\"src\": 3, \"dst\": 4, \"rate\": 0.125}, "
       valid)

let test_pp () =
  let s = fig1_scheme () in
  let text = Format.asprintf "%a" Scheme.pp s in
  Alcotest.(check bool) "mentions algorithm" true (contains text "theorem41")

let suites =
  [
    ( "scheme",
      [
        Alcotest.test_case "create validations" `Quick test_create_validations;
        Alcotest.test_case "graph copied" `Quick test_graph_copied;
        Alcotest.test_case "memoized caches" `Quick test_memoized_caches;
        Alcotest.test_case "report fields" `Quick test_report_fields;
        Alcotest.test_case "algorithm names" `Quick test_algorithm_names_roundtrip;
        Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "json roundtrip (cyclic)" `Quick
          test_json_roundtrip_cyclic;
        Alcotest.test_case "json golden bytes" `Quick test_json_golden;
        Alcotest.test_case "json deterministic across domains" `Quick
          test_json_deterministic_across_domains;
        Alcotest.test_case "of_json rejects" `Quick test_of_json_rejects;
        Alcotest.test_case "pp" `Quick test_pp;
        Alcotest.test_case "nested repaired provenance round-trips" `Quick
          test_nested_repaired_json_roundtrip;
        Alcotest.test_case "malformed repaired names rejected" `Quick
          test_malformed_repaired_names_rejected;
        QCheck_alcotest.to_alcotest prop_provenance_name_roundtrip;
      ] );
  ]
