(* Tests for exact rational arithmetic. *)

module Q = Rational.Q

let q = Alcotest.testable Q.pp Q.equal

let test_normalization () =
  Alcotest.check q "2/4 = 1/2" (Q.make 1 2) (Q.make 2 4);
  Alcotest.check q "-2/-4 = 1/2" (Q.make 1 2) (Q.make (-2) (-4));
  Alcotest.check q "2/-4 = -1/2" (Q.make (-1) 2) (Q.make 2 (-4));
  Alcotest.check q "0/7 = 0" Q.zero (Q.make 0 7);
  Alcotest.(check int) "den positive" 2 (Q.make 2 (-4)).Q.den

let test_zero_den () =
  Alcotest.check_raises "zero denominator" (Invalid_argument "Q.make: zero denominator")
    (fun () -> ignore (Q.make 1 0))

let test_arithmetic () =
  let a = Q.make 1 3 and b = Q.make 1 6 in
  Alcotest.check q "1/3 + 1/6 = 1/2" (Q.make 1 2) (Q.add a b);
  Alcotest.check q "1/3 - 1/6 = 1/6" (Q.make 1 6) (Q.sub a b);
  Alcotest.check q "1/3 * 1/6 = 1/18" (Q.make 1 18) (Q.mul a b);
  Alcotest.check q "1/3 / 1/6 = 2" (Q.of_int 2) (Q.div a b);
  Alcotest.check q "neg" (Q.make (-1) 3) (Q.neg a);
  Alcotest.check q "abs" a (Q.abs (Q.neg a));
  Alcotest.check q "div by negative" (Q.make (-2) 1) (Q.div a (Q.make (-1) 6))

let test_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true Q.(make 1 3 < make 1 2);
  Alcotest.(check bool) "5/7 > 0.714/1000 style" true Q.(make 5 7 > make 714 1000);
  Alcotest.(check bool) "equal" true Q.(make 10 14 = make 5 7);
  Alcotest.(check int) "compare sign" (-1) (Q.compare (Q.make (-1) 2) Q.zero);
  Alcotest.check q "min" (Q.make 1 3) (Q.min (Q.make 1 3) (Q.make 1 2));
  Alcotest.check q "max" (Q.make 1 2) (Q.max (Q.make 1 3) (Q.make 1 2))

let test_ceil_div () =
  (* The paper's degree lower bound ceil(b / T). *)
  Alcotest.(check int) "ceil(5/7)" 1 (Q.ceil_div (Q.of_int 5) (Q.of_int 7));
  Alcotest.(check int) "ceil(14/7)" 2 (Q.ceil_div (Q.of_int 14) (Q.of_int 7));
  Alcotest.(check int) "ceil(15/7)" 3 (Q.ceil_div (Q.of_int 15) (Q.of_int 7));
  Alcotest.(check int) "ceil(0/7)" 0 (Q.ceil_div Q.zero (Q.of_int 7));
  Alcotest.(check int) "ceil((3/2)/(1/2))" 3
    (Q.ceil_div (Q.make 3 2) (Q.make 1 2));
  Alcotest.check_raises "negative dividend"
    (Invalid_argument "Q.ceil_div: dividend must be non-negative") (fun () ->
      ignore (Q.ceil_div (Q.of_int (-1)) Q.one));
  Alcotest.check_raises "non-positive divisor"
    (Invalid_argument "Q.ceil_div: divisor must be positive") (fun () ->
      ignore (Q.ceil_div Q.one Q.zero))

let test_of_float_approx () =
  Alcotest.check q "5/7" (Q.make 5 7) (Q.of_float_approx (5. /. 7.));
  Alcotest.check q "integer" (Q.of_int 3) (Q.of_float_approx 3.0);
  Alcotest.check q "negative" (Q.make (-5) 7) (Q.of_float_approx (-5. /. 7.));
  (* (sqrt 41 - 3) / 8 with small denominators: 17/40 (Theorem 6.3). *)
  let alpha = Q.of_float_approx ~max_den:40 ((sqrt 41. -. 3.) /. 8.) in
  Alcotest.check q "sqrt41 alpha ~ 17/40" (Q.make 17 40) alpha

let test_of_float_approx_non_finite () =
  let rejects what x =
    try
      ignore (Q.of_float_approx x);
      Alcotest.failf "%s accepted" what
    with Invalid_argument _ -> ()
  in
  rejects "nan" Float.nan;
  rejects "+inf" Float.infinity;
  rejects "-inf" Float.neg_infinity;
  (* Magnitudes past the int63 range must overflow, not wrap silently. *)
  Alcotest.check_raises "huge magnitude" Q.Overflow (fun () ->
      ignore (Q.of_float_approx 1e300));
  Alcotest.check_raises "negative huge magnitude" Q.Overflow (fun () ->
      ignore (Q.of_float_approx (-1e300)));
  Alcotest.check_raises "just past int63" Q.Overflow (fun () ->
      ignore (Q.of_float_approx 0x1p62));
  (* Large but representable stays exact. *)
  Alcotest.check q "2^40" (Q.of_int (1 lsl 40)) (Q.of_float_approx 0x1p40)

let test_overflow () =
  let big = Q.of_int max_int in
  Alcotest.check_raises "multiplication overflows" Q.Overflow (fun () ->
      ignore (Q.mul big (Q.of_int 2)))

let test_sum_and_string () =
  Alcotest.check q "sum" (Q.of_int 1)
    (Q.sum [ Q.make 1 2; Q.make 1 3; Q.make 1 6 ]);
  Alcotest.(check string) "to_string fraction" "5/7" (Q.to_string (Q.make 5 7));
  Alcotest.(check string) "to_string integer" "3" (Q.to_string (Q.of_int 3))

let test_to_float () =
  Alcotest.(check (float 1e-12)) "to_float" (5. /. 7.) (Q.to_float (Q.make 5 7))

(* QCheck properties on small rationals (no overflow in range). *)
let small_q =
  QCheck.map
    (fun (n, d) -> Q.make n (1 + abs d))
    QCheck.(pair (int_range (-1000) 1000) (int_range 0 1000))

let prop_add_commutative =
  QCheck.Test.make ~name:"add commutative" ~count:500 (QCheck.pair small_q small_q)
    (fun (a, b) -> Q.equal (Q.add a b) (Q.add b a))

let prop_mul_distributes =
  QCheck.Test.make ~name:"mul distributes over add" ~count:500
    (QCheck.triple small_q small_q small_q) (fun (a, b, c) ->
      Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)))

let prop_compare_matches_float =
  QCheck.Test.make ~name:"compare consistent with floats" ~count:500
    (QCheck.pair small_q small_q) (fun (a, b) ->
      let fc = Float.compare (Q.to_float a) (Q.to_float b) in
      let qc = Q.compare a b in
      (* Distinct small rationals are far apart in float terms. *)
      (fc = 0 && qc = 0) || fc * qc > 0 || Float.abs (Q.to_float a -. Q.to_float b) < 1e-9)

let prop_add_sub_roundtrip =
  QCheck.Test.make ~name:"(a + b) - b = a" ~count:500 (QCheck.pair small_q small_q)
    (fun (a, b) -> Q.equal a (Q.sub (Q.add a b) b))

let suites =
  [
    ( "rational",
      [
        Alcotest.test_case "normalization" `Quick test_normalization;
        Alcotest.test_case "zero denominator rejected" `Quick test_zero_den;
        Alcotest.test_case "arithmetic" `Quick test_arithmetic;
        Alcotest.test_case "comparisons" `Quick test_compare;
        Alcotest.test_case "ceil_div (degree bound)" `Quick test_ceil_div;
        Alcotest.test_case "of_float_approx" `Quick test_of_float_approx;
        Alcotest.test_case "of_float_approx rejects non-finite" `Quick
          test_of_float_approx_non_finite;
        Alcotest.test_case "overflow detection" `Quick test_overflow;
        Alcotest.test_case "sum / to_string" `Quick test_sum_and_string;
        Alcotest.test_case "to_float" `Quick test_to_float;
        QCheck_alcotest.to_alcotest prop_add_commutative;
        QCheck_alcotest.to_alcotest prop_mul_distributes;
        QCheck_alcotest.to_alcotest prop_compare_matches_float;
        QCheck_alcotest.to_alcotest prop_add_sub_roundtrip;
      ] );
  ]
