(* Tests for the graph substrate: adjacency bookkeeping, Dinic max-flow,
   topological structure and arborescence decomposition. *)

module G = Flowgraph.Graph

let close ?(tol = 1e-9) what a b =
  if Float.abs (a -. b) > tol *. Float.max 1. (Float.abs b) then
    Alcotest.failf "%s: %g vs %g" what a b

(* JSON lexer: the number path must reject literals that only overflow
   to non-finite floats (1e999 parses to infinity under a bare
   float_of_string) with a positioned error, while plain underflow to
   0.0 stays legal — it IS a finite float. *)

let test_json_rejects_non_finite_numbers () =
  let rejected text =
    match Flowgraph.Json.parse text with
    | Ok _ -> Alcotest.failf "accepted %s" text
    | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%s error is positioned (%s)" text msg)
        true
        (String.length msg >= 13 && String.sub msg 0 13 = "JSON error at")
  in
  rejected "1e999";
  rejected "-1e999";
  rejected "1e99999999";
  rejected "[1, 2, 1e999]";
  rejected "{\"bandwidth\": -1e999}";
  let accepted text expected =
    match Flowgraph.Json.parse text with
    | Ok (Flowgraph.Json.Num v) ->
      Alcotest.(check (float 0.)) (text ^ " parses finite") expected v
    | Ok _ -> Alcotest.failf "%s parsed to a non-number" text
    | Error msg -> Alcotest.failf "rejected %s: %s" text msg
  in
  (* Huge negative exponents underflow to 0.0 — finite, accepted. *)
  accepted "1e-999" 0.;
  accepted "-1e-999" (-0.);
  accepted "1e-99999999" 0.;
  accepted "1.7976931348623157e308" Float.max_float

let test_edges_basic () =
  let g = G.create 4 in
  Alcotest.(check int) "empty" 0 (G.edge_count g);
  G.add_edge g ~src:0 ~dst:1 2.;
  G.add_edge g ~src:0 ~dst:1 3.;
  close "accumulated" (G.edge_weight g ~src:0 ~dst:1) 5.;
  Alcotest.(check int) "one edge" 1 (G.edge_count g);
  G.set_edge g ~src:0 ~dst:1 1.5;
  close "set" (G.edge_weight g ~src:0 ~dst:1) 1.5;
  G.add_edge g ~src:0 ~dst:1 (-1.5);
  Alcotest.(check int) "removed at zero" 0 (G.edge_count g);
  close "absent weight" (G.edge_weight g ~src:0 ~dst:1) 0.

let test_edges_validation () =
  let g = G.create 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph: self loop") (fun () ->
      G.add_edge g ~src:1 ~dst:1 1.);
  Alcotest.check_raises "out of range" (Invalid_argument "Graph: node out of range")
    (fun () -> G.add_edge g ~src:0 ~dst:3 1.);
  let non_finite = Invalid_argument "Graph: non-finite weight" in
  Alcotest.check_raises "nan" non_finite (fun () -> G.set_edge g ~src:0 ~dst:1 nan);
  Alcotest.check_raises "inf" non_finite (fun () ->
      G.set_edge g ~src:0 ~dst:1 infinity);
  Alcotest.check_raises "-inf" non_finite (fun () ->
      G.set_edge g ~src:0 ~dst:1 neg_infinity);
  (* An accumulation that overflows to infinity must be caught too. *)
  G.set_edge g ~src:0 ~dst:1 max_float;
  Alcotest.check_raises "overflow to inf" non_finite (fun () ->
      G.add_edge g ~src:0 ~dst:1 max_float);
  Alcotest.(check int) "rejected edge not inserted" 1 (G.edge_count g);
  close "rejected edge left intact" (G.edge_weight g ~src:0 ~dst:1) max_float

let test_of_matrix_non_finite () =
  let reject what c =
    Alcotest.check_raises what
      (Invalid_argument "Graph.of_matrix: non-finite entry") (fun () ->
        ignore (G.of_matrix c))
  in
  reject "inf entry" [| [| 0.; infinity |]; [| 0.; 0. |] |];
  (* NaN compares false against everything, so before the explicit check
     it slipped through of_matrix as an absent edge. *)
  reject "nan entry" [| [| 0.; nan |]; [| 0.; 0. |] |];
  reject "-inf entry" [| [| 0.; 1. |]; [| neg_infinity; 0. |] |]

let test_in_out_consistency () =
  let g = G.create 5 in
  G.add_edge g ~src:0 ~dst:1 1.;
  G.add_edge g ~src:0 ~dst:2 2.;
  G.add_edge g ~src:1 ~dst:2 3.;
  G.add_edge g ~src:3 ~dst:2 4.;
  close "out 0" (G.out_weight g 0) 3.;
  close "in 2" (G.in_weight g 2) 9.;
  Alcotest.(check int) "out degree 0" 2 (G.out_degree g 0);
  Alcotest.(check int) "in edges of 2" 3 (List.length (G.in_edges g 2));
  let total_out = ref 0. and total_in = ref 0. in
  for v = 0 to 4 do
    total_out := !total_out +. G.out_weight g v;
    total_in := !total_in +. G.in_weight g v
  done;
  close "flow conservation of bookkeeping" !total_out !total_in

let test_matrix_roundtrip () =
  let c = [| [| 0.; 1.; 2. |]; [| 0.; 0.; 3. |]; [| 0.5; 0.; 0. |] |] in
  let g = G.of_matrix c in
  Alcotest.(check bool) "roundtrip" true (G.equal (G.of_matrix (G.to_matrix g)) g);
  close "entry" (G.edge_weight g ~src:2 ~dst:0) 0.5

let test_copy_scale () =
  let g = G.create 3 in
  G.add_edge g ~src:0 ~dst:1 2.;
  let g' = G.copy g in
  G.add_edge g' ~src:0 ~dst:1 1.;
  close "copy independent" (G.edge_weight g ~src:0 ~dst:1) 2.;
  let s = G.scale g 2.5 in
  close "scaled" (G.edge_weight s ~src:0 ~dst:1) 5.

(* -- max flow -- *)

let diamond () =
  (* 0 -> {1, 2} -> 3 with a cross edge; classic value 4 + 3 = ... *)
  let g = G.create 4 in
  G.add_edge g ~src:0 ~dst:1 3.;
  G.add_edge g ~src:0 ~dst:2 2.;
  G.add_edge g ~src:1 ~dst:3 2.;
  G.add_edge g ~src:1 ~dst:2 1.;
  G.add_edge g ~src:2 ~dst:3 3.;
  g

let test_maxflow_known () =
  let g = diamond () in
  close "diamond" (Flowgraph.Maxflow.max_flow g ~src:0 ~dst:3) 5.;
  let g2 = G.create 2 in
  G.add_edge g2 ~src:0 ~dst:1 7.5;
  close "single edge" (Flowgraph.Maxflow.max_flow g2 ~src:0 ~dst:1) 7.5;
  let g3 = G.create 3 in
  G.add_edge g3 ~src:0 ~dst:1 7.5;
  close "disconnected" (Flowgraph.Maxflow.max_flow g3 ~src:0 ~dst:2) 0.

let test_maxflow_needs_back_edges () =
  (* The textbook case where a greedy augmentation must be undone. *)
  let g = G.create 4 in
  G.add_edge g ~src:0 ~dst:1 1.;
  G.add_edge g ~src:0 ~dst:2 1.;
  G.add_edge g ~src:1 ~dst:2 1.;
  G.add_edge g ~src:1 ~dst:3 1.;
  G.add_edge g ~src:2 ~dst:3 1.;
  close "needs residual arcs" (Flowgraph.Maxflow.max_flow g ~src:0 ~dst:3) 2.

let test_maxflow_cycle () =
  (* Max-flow must be correct on cyclic graphs (cyclic schemes rely on it). *)
  let g = G.create 3 in
  G.add_edge g ~src:0 ~dst:1 1.;
  G.add_edge g ~src:1 ~dst:2 2.;
  G.add_edge g ~src:2 ~dst:1 2.;
  close "through cycle" (Flowgraph.Maxflow.max_flow g ~src:0 ~dst:2) 1.

let test_maxflow_invalid () =
  let g = G.create 2 in
  Alcotest.check_raises "src = dst" (Invalid_argument "Maxflow: src = dst") (fun () ->
      ignore (Flowgraph.Maxflow.max_flow g ~src:1 ~dst:1))

let random_graph rng nodes density =
  let g = G.create nodes in
  for i = 0 to nodes - 1 do
    for j = 0 to nodes - 1 do
      if i <> j && Prng.Splitmix.next_float rng < density then
        G.add_edge g ~src:i ~dst:j (1. +. (9. *. Prng.Splitmix.next_float rng))
    done
  done;
  g

let test_maxflow_bounds_random () =
  let rng = Prng.Splitmix.create 55L in
  for _ = 1 to 40 do
    let g = random_graph rng 8 0.4 in
    let v = Flowgraph.Maxflow.max_flow g ~src:0 ~dst:7 in
    Alcotest.(check bool) "non-negative" true (v >= 0.);
    Alcotest.(check bool) "cut bound (out of src)" true (v <= G.out_weight g 0 +. 1e-9);
    Alcotest.(check bool) "cut bound (into dst)" true (v <= G.in_weight g 7 +. 1e-9)
  done

let test_flow_assignment_conservation () =
  let rng = Prng.Splitmix.create 56L in
  for _ = 1 to 25 do
    let g = random_graph rng 8 0.4 in
    let v, flow = Flowgraph.Maxflow.flow_assignment g ~src:0 ~dst:7 in
    (* Flow within capacity. *)
    G.iter_edges
      (fun ~src ~dst w ->
        if w > G.edge_weight g ~src ~dst +. 1e-9 then
          Alcotest.failf "flow %g exceeds capacity %g" w (G.edge_weight g ~src ~dst))
      flow;
    (* Conservation at inner nodes; net out of src = value. *)
    for n = 1 to 6 do
      close "conservation" (G.in_weight flow n) (G.out_weight flow n)
    done;
    close "value at source" (G.out_weight flow 0 -. G.in_weight flow 0) v;
    close "value at sink" (G.in_weight flow 7 -. G.out_weight flow 7) v
  done

let test_flow_of_solver_matches () =
  let rng = Prng.Splitmix.create 57L in
  for _ = 1 to 15 do
    let g = random_graph rng 9 0.35 in
    let s = Flowgraph.Maxflow.solver g ~src:0 in
    for dst = 1 to 8 do
      let v, flow = Flowgraph.Maxflow.flow_of_solver s ~dst in
      let v', flow' = Flowgraph.Maxflow.flow_assignment g ~src:0 ~dst in
      close "solver/one-shot value" v v';
      (* Same engine over the same canonical arena: identical witnesses. *)
      Alcotest.(check bool) "solver/one-shot witness" true (G.equal flow flow');
      for n = 1 to 8 do
        if n <> dst then
          close "conservation" (G.in_weight flow n) (G.out_weight flow n)
      done;
      close "value at source" (G.out_weight flow 0 -. G.in_weight flow 0) v;
      close "value at sink" (G.in_weight flow dst -. G.out_weight flow dst) v
    done
  done

let test_min_broadcast_flow () =
  let g = diamond () in
  (* maxflow to 1 = 3 (direct); to 2 = 2 + 1 = 3; to 3 = 5 -> min 3. *)
  close "broadcast min" (Flowgraph.Maxflow.min_broadcast_flow g ~src:0) 3.

(* -- topo -- *)

let test_topo_sort () =
  let g = G.create 4 in
  G.add_edge g ~src:2 ~dst:1 1.;
  G.add_edge g ~src:0 ~dst:2 1.;
  G.add_edge g ~src:1 ~dst:3 1.;
  (match Flowgraph.Topo.sort g with
  | None -> Alcotest.fail "DAG reported cyclic"
  | Some order ->
    let pos = Array.make 4 0 in
    Array.iteri (fun i v -> pos.(v) <- i) order;
    G.iter_edges
      (fun ~src ~dst _ ->
        if pos.(src) >= pos.(dst) then Alcotest.fail "edge goes backwards")
      g);
  Alcotest.(check bool) "acyclic" true (Flowgraph.Topo.is_acyclic g);
  G.add_edge g ~src:3 ~dst:0 1.;
  Alcotest.(check bool) "cycle detected" false (Flowgraph.Topo.is_acyclic g)

let test_find_cycle () =
  let g = G.create 4 in
  G.add_edge g ~src:0 ~dst:1 1.;
  G.add_edge g ~src:1 ~dst:2 1.;
  G.add_edge g ~src:2 ~dst:0 1.;
  (match Flowgraph.Topo.find_cycle g with
  | None -> Alcotest.fail "cycle missed"
  | Some cycle ->
    let k = List.length cycle in
    Alcotest.(check bool) "length >= 2" true (k >= 2);
    (* Every consecutive pair (and the wrap-around) must be an edge. *)
    let arr = Array.of_list cycle in
    for i = 0 to k - 1 do
      let u = arr.(i) and v = arr.((i + 1) mod k) in
      if G.edge_weight g ~src:u ~dst:v <= 0. then
        Alcotest.failf "cycle uses absent edge %d->%d" u v
    done);
  let dag = G.create 2 in
  G.add_edge dag ~src:0 ~dst:1 1.;
  Alcotest.(check bool) "no cycle on DAG" true (Flowgraph.Topo.find_cycle dag = None)

let test_depth () =
  let g = G.create 5 in
  G.add_edge g ~src:0 ~dst:1 1.;
  G.add_edge g ~src:1 ~dst:2 1.;
  G.add_edge g ~src:0 ~dst:3 1.;
  let d = Flowgraph.Topo.depth_from g 0 in
  Alcotest.(check (array int)) "depths" [| 0; 1; 2; 1; -1 |] d

(* -- arborescence decomposition -- *)

let test_decompose_algorithm1 () =
  (* Decompose the Algorithm 1 scheme on a real instance. *)
  let inst =
    Platform.Instance.create ~bandwidth:[| 6.; 5.; 4.; 3.; 0. |] ~n:4 ~m:0 ()
  in
  let t = Broadcast.Bounds.acyclic_open_optimal inst in
  let scheme = Broadcast.Scheme.graph (Broadcast.Acyclic_open.build inst) in
  let trees = Flowgraph.Arborescence.decompose scheme ~root:0 in
  let total = List.fold_left (fun acc tr -> acc +. tr.Flowgraph.Arborescence.weight) 0. trees in
  close ~tol:1e-6 "weights sum to T" total t;
  let rebuilt =
    Flowgraph.Arborescence.recompose trees ~node_count:(G.node_count scheme)
  in
  Alcotest.(check bool) "recompose = original" true (G.equal ~eps:1e-6 rebuilt scheme);
  (* Each tree must reach every receiver through valid parents. *)
  List.iter
    (fun tr ->
      let parent = tr.Flowgraph.Arborescence.parent in
      for v = 1 to Array.length parent - 1 do
        if parent.(v) < 0 then Alcotest.failf "node %d outside tree" v
      done;
      Alcotest.(check bool) "depth positive" true
        (Flowgraph.Arborescence.tree_depth tr >= 1))
    trees

let test_decompose_rejects () =
  let g = G.create 3 in
  G.add_edge g ~src:0 ~dst:1 2.;
  G.add_edge g ~src:0 ~dst:2 1.;
  (* In-weights 2 and 1 differ: not a constant-rate scheme. *)
  (try
     ignore (Flowgraph.Arborescence.decompose g ~root:0);
     Alcotest.fail "non-uniform accepted"
   with Invalid_argument _ -> ());
  let cyc = G.create 2 in
  G.add_edge cyc ~src:0 ~dst:1 1.;
  G.add_edge cyc ~src:1 ~dst:0 1.;
  try
    ignore (Flowgraph.Arborescence.decompose cyc ~root:0);
    Alcotest.fail "cyclic accepted"
  with Invalid_argument _ -> ()

let test_decompose_empty () =
  let g = G.create 3 in
  Alcotest.(check int) "no flow, no trees" 0
    (List.length (Flowgraph.Arborescence.decompose g ~root:0))

let suites =
  [
    ( "json",
      [
        Alcotest.test_case "non-finite number literals rejected" `Quick
          test_json_rejects_non_finite_numbers;
      ] );
    ( "graph",
      [
        Alcotest.test_case "edge bookkeeping" `Quick test_edges_basic;
        Alcotest.test_case "validation" `Quick test_edges_validation;
        Alcotest.test_case "of_matrix rejects non-finite" `Quick
          test_of_matrix_non_finite;
        Alcotest.test_case "in/out consistency" `Quick test_in_out_consistency;
        Alcotest.test_case "matrix roundtrip" `Quick test_matrix_roundtrip;
        Alcotest.test_case "copy and scale" `Quick test_copy_scale;
      ] );
    ( "maxflow",
      [
        Alcotest.test_case "known values" `Quick test_maxflow_known;
        Alcotest.test_case "residual arcs used" `Quick test_maxflow_needs_back_edges;
        Alcotest.test_case "cyclic graphs" `Quick test_maxflow_cycle;
        Alcotest.test_case "invalid arguments" `Quick test_maxflow_invalid;
        Alcotest.test_case "cut bounds (random)" `Quick test_maxflow_bounds_random;
        Alcotest.test_case "flow conservation (random)" `Quick test_flow_assignment_conservation;
        Alcotest.test_case "flow_of_solver = flow_assignment" `Quick
          test_flow_of_solver_matches;
        Alcotest.test_case "broadcast minimum" `Quick test_min_broadcast_flow;
      ] );
    ( "topo",
      [
        Alcotest.test_case "topological sort" `Quick test_topo_sort;
        Alcotest.test_case "find_cycle" `Quick test_find_cycle;
        Alcotest.test_case "depth_from" `Quick test_depth;
      ] );
    ( "arborescence",
      [
        Alcotest.test_case "decompose Algorithm 1 scheme" `Quick test_decompose_algorithm1;
        Alcotest.test_case "rejects invalid schemes" `Quick test_decompose_rejects;
        Alcotest.test_case "empty scheme" `Quick test_decompose_empty;
      ] );
  ]
