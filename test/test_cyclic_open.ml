(* Tests for the cyclic construction of Theorem 5.2. *)

open Platform

let check_theorem52_degrees s =
  let inst = Broadcast.Scheme.instance s in
  let t = Broadcast.Scheme.rate s in
  let d = Broadcast.Metrics.scheme_report s in
  Array.iteri
    (fun i o ->
      let bound = max (Broadcast.Bounds.degree_lower_bound inst ~t i + 2) 4 in
      if o > bound then Alcotest.failf "node %d: degree %d > bound %d" i o bound)
    d.Broadcast.Metrics.degrees

let test_fig12 () =
  (* b = (5, 5, 3, 2), T = 5 (Figures 11-12; i0 = n case). *)
  let inst = Instance.create ~bandwidth:[| 5.; 5.; 3.; 2. |] ~n:3 ~m:0 () in
  let s = Broadcast.Cyclic_open.build ~t:5. inst in
  ignore (Helpers.check_artifact s ~rate:5.);
  Alcotest.(check bool) "cyclic" false (Broadcast.Scheme.is_acyclic s);
  Alcotest.(check string) "provenance" "theorem52"
    (Broadcast.Scheme.algorithm_name
       (Broadcast.Scheme.provenance s).Broadcast.Scheme.algorithm);
  check_theorem52_degrees s

let test_fig17 () =
  (* b = (5, 5, 4, 4, 4, 3), T = 5 (Figures 14-17; induction case). *)
  let inst = Instance.create ~bandwidth:[| 5.; 5.; 4.; 4.; 4.; 3. |] ~n:5 ~m:0 () in
  let s = Broadcast.Cyclic_open.build ~t:5. inst in
  ignore (Helpers.check_artifact s ~rate:5.);
  Alcotest.(check bool) "cyclic" false (Broadcast.Scheme.is_acyclic s);
  check_theorem52_degrees s;
  (* P1 holds for the most recently inserted pair (earlier pairs are
     modified by later insertions): c(n, n-1) + c(n-1, n) = T. *)
  let g = Broadcast.Scheme.graph s in
  Helpers.close ~tol:1e-6 "property P1"
    (Flowgraph.Graph.edge_weight g ~src:4 ~dst:5
    +. Flowgraph.Graph.edge_weight g ~src:5 ~dst:4)
    5.

let test_no_deficit_stays_acyclic () =
  (* When Algorithm 1 already reaches T, the output is the acyclic scheme. *)
  let inst = Instance.create ~bandwidth:[| 6.; 5.; 4.; 3. |] ~n:3 ~m:0 () in
  let t = Broadcast.Bounds.cyclic_open_optimal inst in
  (* T* = min(6, 18/3) = 6 > T*ac = 5: deficit occurs. Use a smaller t. *)
  let s = Broadcast.Cyclic_open.build ~t:4.5 inst in
  Alcotest.(check bool) "acyclic when feasible" true (Broadcast.Scheme.is_acyclic s);
  (* No deficit means the artifact is literally Algorithm 1's. *)
  Alcotest.(check string) "provenance" "algorithm1"
    (Broadcast.Scheme.algorithm_name
       (Broadcast.Scheme.provenance s).Broadcast.Scheme.algorithm);
  ignore (Helpers.check_artifact s ~rate:4.5);
  ignore t

let test_gap_instance () =
  (* An instance where cyclic strictly beats acyclic. *)
  let inst = Instance.create ~bandwidth:[| 6.; 5.; 4.; 3. |] ~n:3 ~m:0 () in
  let t_cy = Broadcast.Bounds.cyclic_open_optimal inst in
  let t_ac = Broadcast.Bounds.acyclic_open_optimal inst in
  Alcotest.(check bool) "cyclic strictly better" true (t_cy > t_ac +. 0.5);
  let s = Broadcast.Cyclic_open.build inst in
  ignore (Helpers.check_artifact s ~rate:t_cy);
  check_theorem52_degrees s

let test_rejects () =
  let inst = Instance.create ~bandwidth:[| 6.; 5.; 4.; 3. |] ~n:3 ~m:0 () in
  (try
     ignore (Broadcast.Cyclic_open.build ~t:6.5 inst);
     Alcotest.fail "infeasible rate accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Broadcast.Cyclic_open.build Instance.fig1);
    Alcotest.fail "guarded instance accepted"
  with Invalid_argument _ -> ()

(* Theorem 5.2, property-tested at the optimal rate on random sorted
   open-only instances. *)
let prop_theorem52 =
  QCheck.Test.make ~name:"Theorem 5.2: optimal cyclic with bounded degrees"
    ~count:60 (Helpers.open_instance_arb ~max_open:15) (fun inst ->
      let t = Broadcast.Bounds.cyclic_open_optimal inst in
      QCheck.assume (t > 1e-6);
      (* Back off an epsilon so max-flow verification is clean. *)
      let t = t *. (1. -. 1e-9) in
      let s = Broadcast.Cyclic_open.build ~t inst in
      ignore (Helpers.check_artifact s ~rate:t);
      check_theorem52_degrees s;
      true)

(* The construction also works at any sub-optimal rate. *)
let prop_suboptimal_rates =
  QCheck.Test.make ~name:"cyclic construction at fractional rates" ~count:40
    (QCheck.pair
       (Helpers.open_instance_arb ~max_open:10)
       (QCheck.float_range 0.3 0.95))
    (fun (inst, frac) ->
      let t = Broadcast.Bounds.cyclic_open_optimal inst *. frac in
      QCheck.assume (t > 1e-6);
      let s = Broadcast.Cyclic_open.build ~t inst in
      ignore (Helpers.check_artifact s ~rate:t);
      true)

let suites =
  [
    ( "cyclic_open",
      [
        Alcotest.test_case "Figures 11-12 example" `Quick test_fig12;
        Alcotest.test_case "Figures 14-17 example" `Quick test_fig17;
        Alcotest.test_case "acyclic when no deficit" `Quick test_no_deficit_stays_acyclic;
        Alcotest.test_case "cyclic beats acyclic" `Quick test_gap_instance;
        Alcotest.test_case "rejects bad inputs" `Quick test_rejects;
        QCheck_alcotest.to_alcotest prop_theorem52;
        QCheck_alcotest.to_alcotest prop_suboptimal_rates;
      ] );
  ]
