(* Shared QCheck generators and checking utilities for the broadcast test
   suites. *)

open Platform

let close ?(tol = 1e-9) what a b =
  if Float.abs (a -. b) > tol *. Float.max 1. (Float.abs b) then
    Alcotest.failf "%s: %g vs %g" what a b

(* A positive bandwidth with several orders of magnitude of spread, so
   generated instances cover both homogeneous and pathological shapes. *)
let bandwidth_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun x -> 1. +. (99. *. x)) (float_bound_inclusive 1.);
        map (fun x -> 0.1 +. x) (float_bound_inclusive 1.);
        map (fun x -> 100. +. (900. *. x)) (float_bound_inclusive 1.);
        return 1.;
      ])

(* Sorted instance with [n] open nodes, [m] guarded nodes, and a source at
   least as strong as needed to avoid the degenerate b0 = 0 corner. *)
let instance_gen ~max_open ~max_guarded =
  QCheck.Gen.(
    int_range 1 max_open >>= fun n ->
    int_range 0 max_guarded >>= fun m ->
    array_repeat (1 + n + m) bandwidth_gen >>= fun bandwidth ->
    let inst = Instance.create ~bandwidth ~n ~m () in
    return (fst (Instance.normalize inst)))

(* Shrink an instance by dropping one non-source node at a time (keeping
   at least one open node, the generator's invariant), so a failing
   property minimizes to the fewest nodes that still break it. *)
let instance_shrink inst yield =
  let b = inst.Instance.bandwidth in
  let n = inst.Instance.n and m = inst.Instance.m in
  let size = 1 + n + m in
  for v = size - 1 downto 1 do
    if (Instance.is_open inst v && n > 1) || Instance.is_guarded inst v then begin
      let b' = Array.init (size - 1) (fun i -> if i < v then b.(i) else b.(i + 1)) in
      let n' = if Instance.is_open inst v then n - 1 else n in
      let m' = if Instance.is_guarded inst v then m - 1 else m in
      yield (fst (Instance.normalize (Instance.create ~bandwidth:b' ~n:n' ~m:m' ())))
    end
  done

let instance_arb ~max_open ~max_guarded =
  QCheck.make
    ~print:(fun t -> Format.asprintf "%a / %s" Instance.pp t (Instance.to_string t))
    ~shrink:instance_shrink
    (instance_gen ~max_open ~max_guarded)

let open_instance_arb ~max_open = instance_arb ~max_open ~max_guarded:0

(* {2 Churn-trace generation with real shrinking}

   [Churn.Trace.gen] draws whole traces from a seed, so shrinking the
   seed would jump to an unrelated trace. The arbitrary below shrinks
   structurally instead: drop half the events, drop single events, then
   shrink events in place (smaller picks, ungarded/cheaper joins,
   factors halved towards the no-op 1, batch/burst members dropped) —
   counterexamples minimize to the few events that actually matter. *)

let shrink_event e yield =
  let open Churn.Trace in
  match e with
  | Leave { pick } ->
    QCheck.Shrink.int pick (fun pick -> yield (Leave { pick }))
  | Join { bandwidth; guarded } ->
    if guarded then yield (Join { bandwidth; guarded = false });
    if bandwidth > 1. then
      yield (Join { bandwidth = Float.max 1. (bandwidth /. 2.); guarded })
  | Degrade { pick; factor } ->
    QCheck.Shrink.int pick (fun pick -> yield (Degrade { pick; factor }));
    let f = (factor +. 1.) /. 2. in
    if f > factor +. 1e-9 && f <= 1. then yield (Degrade { pick; factor = f })
  | Restore { pick; factor } ->
    QCheck.Shrink.int pick (fun pick -> yield (Restore { pick; factor }));
    let f = (factor +. 1.) /. 2. in
    if f > factor +. 1e-9 && f <= 1. then yield (Restore { pick; factor = f })
  | Fail_batch { picks } ->
    List.iteri
      (fun i _ ->
        let picks = List.filteri (fun j _ -> j <> i) picks in
        if picks <> [] then yield (Fail_batch { picks }))
      picks;
    QCheck.Shrink.list_elems QCheck.Shrink.int picks (fun picks ->
        yield (Fail_batch { picks }))
  | Flash_crowd { arrivals } ->
    List.iteri
      (fun i _ ->
        let arrivals = List.filteri (fun j _ -> j <> i) arrivals in
        if arrivals <> [] then yield (Flash_crowd { arrivals }))
      arrivals

let shrink_trace t yield =
  let evs = t.Churn.Trace.events in
  let n = Array.length evs in
  if n > 1 then begin
    (* big steps first: half the trace from either end *)
    yield { Churn.Trace.events = Array.sub evs 0 (n / 2) };
    yield { Churn.Trace.events = Array.sub evs (n / 2) (n - (n / 2)) }
  end;
  for i = 0 to n - 1 do
    yield
      {
        Churn.Trace.events =
          Array.init (n - 1) (fun j -> if j < i then evs.(j) else evs.(j + 1));
      }
  done;
  Array.iteri
    (fun i e ->
      shrink_event e (fun e' ->
          let evs' = Array.copy evs in
          evs'.(i) <- e';
          yield { Churn.Trace.events = evs' }))
    evs

let trace_gen ?mix ~events () =
  QCheck.Gen.(
    int_bound 1_000_000 >>= fun seed ->
    return
      (Churn.Trace.gen ?mix ~events
         (Prng.Splitmix.create (Int64.of_int (0x7ace + seed)))))

let trace_arb ?mix ~events () =
  QCheck.make ~print:Churn.Trace.to_json ~shrink:shrink_trace
    (trace_gen ?mix ~events ())

(* Check that a scheme delivers [rate] to every node, structurally. *)
let check_scheme ?(what = "scheme") inst scheme ~rate =
  let report = Broadcast.Verify.check inst scheme in
  if not report.Broadcast.Verify.bandwidth_ok then
    Alcotest.failf "%s: bandwidth constraint violated" what;
  if not report.Broadcast.Verify.firewall_ok then
    Alcotest.failf "%s: guarded-guarded edge" what;
  if not (Broadcast.Util.fge ~eps:1e-6 report.Broadcast.Verify.throughput rate) then
    Alcotest.failf "%s: throughput %g below target %g" what
      report.Broadcast.Verify.throughput rate;
  report

(* Same checks through a Scheme artifact's memoized report. *)
let check_artifact ?(what = "scheme") s ~rate =
  let report = Broadcast.Scheme.report s in
  if not report.Broadcast.Verify.bandwidth_ok then
    Alcotest.failf "%s: bandwidth constraint violated" what;
  if not report.Broadcast.Verify.firewall_ok then
    Alcotest.failf "%s: guarded-guarded edge" what;
  if not (Broadcast.Util.fge ~eps:1e-6 report.Broadcast.Verify.throughput rate) then
    Alcotest.failf "%s: throughput %g below target %g" what
      report.Broadcast.Verify.throughput rate;
  report
