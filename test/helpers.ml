(* Shared QCheck generators and checking utilities for the broadcast test
   suites. *)

open Platform

let close ?(tol = 1e-9) what a b =
  if Float.abs (a -. b) > tol *. Float.max 1. (Float.abs b) then
    Alcotest.failf "%s: %g vs %g" what a b

(* A positive bandwidth with several orders of magnitude of spread, so
   generated instances cover both homogeneous and pathological shapes. *)
let bandwidth_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun x -> 1. +. (99. *. x)) (float_bound_inclusive 1.);
        map (fun x -> 0.1 +. x) (float_bound_inclusive 1.);
        map (fun x -> 100. +. (900. *. x)) (float_bound_inclusive 1.);
        return 1.;
      ])

(* Sorted instance with [n] open nodes, [m] guarded nodes, and a source at
   least as strong as needed to avoid the degenerate b0 = 0 corner. *)
let instance_gen ~max_open ~max_guarded =
  QCheck.Gen.(
    int_range 1 max_open >>= fun n ->
    int_range 0 max_guarded >>= fun m ->
    array_repeat (1 + n + m) bandwidth_gen >>= fun bandwidth ->
    let inst = Instance.create ~bandwidth ~n ~m () in
    return (fst (Instance.normalize inst)))

let instance_arb ~max_open ~max_guarded =
  QCheck.make
    ~print:(fun t -> Format.asprintf "%a / %s" Instance.pp t (Instance.to_string t))
    (instance_gen ~max_open ~max_guarded)

let open_instance_arb ~max_open = instance_arb ~max_open ~max_guarded:0

(* Check that a scheme delivers [rate] to every node, structurally. *)
let check_scheme ?(what = "scheme") inst scheme ~rate =
  let report = Broadcast.Verify.check inst scheme in
  if not report.Broadcast.Verify.bandwidth_ok then
    Alcotest.failf "%s: bandwidth constraint violated" what;
  if not report.Broadcast.Verify.firewall_ok then
    Alcotest.failf "%s: guarded-guarded edge" what;
  if not (Broadcast.Util.fge ~eps:1e-6 report.Broadcast.Verify.throughput rate) then
    Alcotest.failf "%s: throughput %g below target %g" what
      report.Broadcast.Verify.throughput rate;
  report

(* Same checks through a Scheme artifact's memoized report. *)
let check_artifact ?(what = "scheme") s ~rate =
  let report = Broadcast.Scheme.report s in
  if not report.Broadcast.Verify.bandwidth_ok then
    Alcotest.failf "%s: bandwidth constraint violated" what;
  if not report.Broadcast.Verify.firewall_ok then
    Alcotest.failf "%s: guarded-guarded edge" what;
  if not (Broadcast.Util.fge ~eps:1e-6 report.Broadcast.Verify.throughput rate) then
    Alcotest.failf "%s: throughput %g below target %g" what
      report.Broadcast.Verify.throughput rate;
  report
