(* Tests for the randomized-broadcast transport simulator and its event
   queue. *)

module G = Flowgraph.Graph
module Sim = Massoulie.Sim

let test_pqueue_order () =
  let q = Massoulie.Pqueue.create () in
  Alcotest.(check bool) "empty" true (Massoulie.Pqueue.is_empty q);
  List.iter (fun k -> Massoulie.Pqueue.push q k (int_of_float k))
    [ 5.; 1.; 3.; 2.; 4.; 0.5 ];
  Alcotest.(check int) "size" 6 (Massoulie.Pqueue.size q);
  Alcotest.(check (option (float 0.))) "peek" (Some 0.5) (Massoulie.Pqueue.peek_key q);
  let rec drain acc =
    match Massoulie.Pqueue.pop q with
    | None -> List.rev acc
    | Some (k, _) -> drain (k :: acc)
  in
  Alcotest.(check (list (float 0.))) "sorted drain" [ 0.5; 1.; 2.; 3.; 4.; 5. ]
    (drain [])

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue drains sorted" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 200) (float_range 0. 1000.))
    (fun keys ->
      let q = Massoulie.Pqueue.create () in
      List.iter (fun k -> Massoulie.Pqueue.push q k ()) keys;
      let rec drain acc =
        match Massoulie.Pqueue.pop q with
        | None -> List.rev acc
        | Some (k, ()) -> drain (k :: acc)
      in
      drain [] = List.sort Float.compare keys)

let fig1_overlay () =
  let rate, scheme = Broadcast.Low_degree.build_optimal Platform.Instance.fig1 in
  (rate, Broadcast.Scheme.graph scheme)

let test_delivers_fig1 () =
  let rate, overlay = fig1_overlay () in
  let config = { Sim.default_config with chunks = 300 } in
  let r = Sim.simulate ~config overlay ~rate in
  Alcotest.(check bool) "delivered" true r.Sim.delivered_all;
  Alcotest.(check bool) "efficiency sane" true
    (r.Sim.efficiency > 0.8 && r.Sim.efficiency <= 1.0 +. 1e-9);
  Alcotest.(check int) "no duplicates with dedup" 0 r.Sim.duplicates;
  (* Exactly K chunks must reach each of the 5 receivers. *)
  Alcotest.(check int) "transfer count" (300 * 5) r.Sim.transfers

let test_efficiency_improves_with_chunks () =
  let rate, overlay = fig1_overlay () in
  let eff chunks =
    (Sim.simulate ~config:{ Sim.default_config with chunks } overlay ~rate)
      .Sim.efficiency
  in
  Alcotest.(check bool) "more chunks, closer to rate" true
    (eff 400 > eff 20 -. 0.02)

let test_completion_lower_bound () =
  (* Completion can never beat the ideal K * size / rate. *)
  let rate, overlay = fig1_overlay () in
  let config = { Sim.default_config with chunks = 100 } in
  let r = Sim.simulate ~config overlay ~rate in
  Alcotest.(check bool) "completion >= ideal" true
    (r.Sim.completion_time >= (100. /. rate) -. 1e-9)

let test_streaming_mode () =
  let rate, overlay = fig1_overlay () in
  let config = { Sim.default_config with chunks = 200; streaming = true } in
  let r = Sim.simulate ~config overlay ~rate in
  Alcotest.(check bool) "delivered" true r.Sim.delivered_all;
  (* The last chunk is only released at (K-1)/rate. *)
  Alcotest.(check bool) "completion after last release" true
    (r.Sim.completion_time >= 199. /. rate);
  Alcotest.(check bool) "lag positive and below horizon" true
    (r.Sim.max_lag > 0. && r.Sim.max_lag < 1e5)

let test_dedup_off_allows_duplicates () =
  (* On an overlay with parallel paths of very different speeds, duplicates
     appear once dedup is off, and delivery still completes. *)
  let g = G.create 4 in
  G.add_edge g ~src:0 ~dst:1 10.;
  G.add_edge g ~src:0 ~dst:2 10.;
  G.add_edge g ~src:1 ~dst:2 0.5;
  G.add_edge g ~src:2 ~dst:3 10.;
  let config = { Sim.default_config with chunks = 200; dedup_inflight = false } in
  let r = Sim.simulate ~config g ~rate:10. in
  Alcotest.(check bool) "delivered" true r.Sim.delivered_all;
  Alcotest.(check bool) "some duplicates" true (r.Sim.duplicates > 0)

let test_determinism () =
  let rate, overlay = fig1_overlay () in
  let config = { Sim.default_config with chunks = 150 } in
  let a = Sim.simulate ~config overlay ~rate in
  let b = Sim.simulate ~config overlay ~rate in
  Alcotest.(check (float 0.)) "same seed same completion" a.Sim.completion_time
    b.Sim.completion_time;
  Alcotest.(check int) "same transfers" a.Sim.transfers b.Sim.transfers

let test_undelivered_on_dead_overlay () =
  (* A node with no in-edges can never complete. *)
  let g = G.create 3 in
  G.add_edge g ~src:0 ~dst:1 1.;
  let r = Sim.simulate ~config:{ Sim.default_config with chunks = 10 } g ~rate:1. in
  Alcotest.(check bool) "not delivered" false r.Sim.delivered_all;
  Alcotest.(check bool) "completion infinite" true (r.Sim.completion_time = infinity);
  Alcotest.(check (float 0.)) "efficiency zero" 0. r.Sim.efficiency

let test_single_node () =
  let g = G.create 1 in
  let r = Sim.simulate ~config:{ Sim.default_config with chunks = 5 } g ~rate:1. in
  Alcotest.(check bool) "trivially delivered" true r.Sim.delivered_all;
  Alcotest.(check (float 0.)) "zero time" 0. r.Sim.completion_time

let test_invalid_configs () =
  let g = G.create 2 in
  G.add_edge g ~src:0 ~dst:1 1.;
  (try
     ignore (Sim.simulate g ~rate:0.);
     Alcotest.fail "zero rate accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Sim.simulate ~config:{ Sim.default_config with chunks = 0 } g ~rate:1.);
    Alcotest.fail "zero chunks accepted"
  with Invalid_argument _ -> ()

(* Transport delivers (close to) the computed rate on random optimal
   overlays — the paper's architectural claim. *)
let prop_transport_achieves_rate =
  QCheck.Test.make ~name:"transport efficiency > 0.4 on random overlays" ~count:10
    (Helpers.instance_arb ~max_open:8 ~max_guarded:5) (fun inst ->
      let rate, scheme = Broadcast.Low_degree.build_optimal inst in
      let overlay = Broadcast.Scheme.graph scheme in
      QCheck.assume (rate > 1e-6);
      (* dedup off: with extreme heterogeneity a sliver edge would
         otherwise hold single chunks hostage for its whole transfer
         time (see the Sim.config documentation). *)
      let config =
        { Sim.default_config with chunks = 150; dedup_inflight = false }
      in
      let r = Sim.simulate ~config overlay ~rate in
      r.Sim.delivered_all && r.Sim.efficiency > 0.4)

let suites =
  [
    ( "pqueue",
      [
        Alcotest.test_case "ordering" `Quick test_pqueue_order;
        QCheck_alcotest.to_alcotest prop_pqueue_sorts;
      ] );
    ( "massoulie",
      [
        Alcotest.test_case "delivers fig1" `Quick test_delivers_fig1;
        Alcotest.test_case "efficiency grows with chunks" `Quick test_efficiency_improves_with_chunks;
        Alcotest.test_case "completion lower bound" `Quick test_completion_lower_bound;
        Alcotest.test_case "streaming mode" `Quick test_streaming_mode;
        Alcotest.test_case "duplicates without dedup" `Quick test_dedup_off_allows_duplicates;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "dead overlay" `Quick test_undelivered_on_dead_overlay;
        Alcotest.test_case "single node" `Quick test_single_node;
        Alcotest.test_case "invalid configs" `Quick test_invalid_configs;
        QCheck_alcotest.to_alcotest prop_transport_achieves_rate;
      ] );
  ]

(* -- jitter extension -- *)

let test_jitter_validation () =
  let g = G.create 2 in
  G.add_edge g ~src:0 ~dst:1 1.;
  try
    ignore (Sim.simulate ~config:{ Sim.default_config with jitter = -0.1 } g ~rate:1.);
    Alcotest.fail "negative jitter accepted"
  with Invalid_argument _ -> ()

let test_jitter_still_delivers () =
  let rate, overlay = fig1_overlay () in
  let config =
    { Sim.default_config with chunks = 200; jitter = 0.3; dedup_inflight = false }
  in
  let r = Sim.simulate ~config overlay ~rate in
  Alcotest.(check bool) "delivered under jitter" true r.Sim.delivered_all;
  Alcotest.(check bool) "efficiency still sane" true (r.Sim.efficiency > 0.5)

let test_jitter_zero_matches_baseline () =
  let rate, overlay = fig1_overlay () in
  let config = { Sim.default_config with chunks = 100 } in
  let a = Sim.simulate ~config overlay ~rate in
  let b = Sim.simulate ~config:{ config with jitter = 0. } overlay ~rate in
  Alcotest.(check (float 0.)) "jitter 0 is exact baseline" a.Sim.completion_time
    b.Sim.completion_time

let jitter_suite =
  [
    ( "jitter",
      [
        Alcotest.test_case "validation" `Quick test_jitter_validation;
        Alcotest.test_case "delivers under jitter" `Quick test_jitter_still_delivers;
        Alcotest.test_case "zero jitter baseline" `Quick test_jitter_zero_matches_baseline;
      ] );
  ]

let suites = suites @ jitter_suite
