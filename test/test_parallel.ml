(* Tests for Parallel.Pool: the work-sharing engine behind the experiment
   sweeps, and its determinism contract (bit-identical output for every
   worker count). *)

let int_array = Alcotest.(array int)

(* A work item heavy enough that chunks genuinely interleave across
   domains, and whose value depends on the index in a non-trivial way. *)
let work i =
  let rng = Prng.Splitmix.create (Int64.of_int (i + 1)) in
  let acc = ref 0L in
  for _ = 1 to 100 do
    acc := Int64.add !acc (Prng.Splitmix.next rng)
  done;
  Int64.to_int !acc

let test_map_range_basic () =
  Alcotest.check int_array "squares" [| 0; 1; 4; 9; 16 |]
    (Parallel.Pool.map_range ~jobs:2 5 (fun i -> i * i));
  Alcotest.check int_array "empty" [||] (Parallel.Pool.map_range ~jobs:4 0 work);
  Alcotest.check int_array "single" [| work 0 |]
    (Parallel.Pool.map_range ~jobs:4 1 work)

let test_determinism () =
  (* The tentpole contract: jobs in {1, 2, 7} produce identical arrays,
     including a chunk size that does not divide the workload. *)
  let reference = Parallel.Pool.map_range ~jobs:1 101 work in
  List.iter
    (fun jobs ->
      Alcotest.check int_array
        (Printf.sprintf "jobs=%d" jobs)
        reference
        (Parallel.Pool.map_range ~jobs 101 work))
    [ 1; 2; 7 ];
  Alcotest.check int_array "chunk=3" reference
    (Parallel.Pool.map_range ~jobs:2 ~chunk:3 101 work)

let test_invalid_arguments () =
  let rejects what f =
    try
      ignore (f ());
      Alcotest.failf "%s accepted" what
    with Invalid_argument _ -> ()
  in
  rejects "jobs = 0" (fun () -> Parallel.Pool.map_range ~jobs:0 4 work);
  rejects "negative jobs" (fun () -> Parallel.Pool.map_range ~jobs:(-2) 4 work);
  rejects "negative n" (fun () -> Parallel.Pool.map_range ~jobs:2 (-1) work);
  rejects "chunk = 0" (fun () -> Parallel.Pool.map_range ~jobs:2 ~chunk:0 4 work)

let test_exception_propagation () =
  Alcotest.check_raises "worker failure reaches caller" (Failure "boom")
    (fun () ->
      ignore
        (Parallel.Pool.map_range ~jobs:3 50 (fun i ->
             if i = 17 then failwith "boom" else work i)));
  (* Inline (jobs = 1) path propagates too. *)
  Alcotest.check_raises "inline failure" (Failure "boom") (fun () ->
      ignore
        (Parallel.Pool.map_range ~jobs:1 5 (fun i ->
             if i = 3 then failwith "boom" else i)))

let test_map_array_list () =
  Alcotest.check int_array "map_array" [| 2; 4; 6 |]
    (Parallel.Pool.map_array ~jobs:2 [| 1; 2; 3 |] (fun x -> 2 * x));
  Alcotest.(check (list int))
    "map_list order" [ 10; 20; 30; 40 ]
    (Parallel.Pool.map_list ~jobs:3 [ 1; 2; 3; 4 ] (fun x -> 10 * x))

let test_split_n () =
  let streams () = Prng.Splitmix.split_n (Prng.Splitmix.create 42L) 5 in
  let firsts t = Array.map Prng.Splitmix.next t in
  let a = firsts (streams ()) and b = firsts (streams ()) in
  Alcotest.(check int) "count" 5 (Array.length a);
  Alcotest.(check bool) "deterministic" true (a = b);
  (* Streams must be pairwise distinct — the whole point of splitting. *)
  let distinct = Array.to_list a |> List.sort_uniq Int64.compare in
  Alcotest.(check int) "distinct streams" 5 (List.length distinct);
  Alcotest.check_raises "negative count"
    (Invalid_argument "Splitmix.split_n: negative count") (fun () ->
      ignore (Prng.Splitmix.split_n (Prng.Splitmix.create 1L) (-1)))

let render print =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  print fmt;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let test_sweep_output_identical () =
  (* End-to-end determinism of a full driver: rendered tables must be
     byte-identical across worker counts. *)
  let j1 = render (Experiments.Fig18_worst.print ~jobs:1) in
  let j5 = render (Experiments.Fig18_worst.print ~jobs:5) in
  Alcotest.(check string) "fig18 jobs 1 vs 5" j1 j5

let tiny_config seed =
  {
    Experiments.Fig19_average.dists = [ ("unif", Prng.Dist.unif100) ];
    ns = [ 8; 12 ];
    ps = [ 0.4; 0.8 ];
    replicates = 4;
    seed;
  }

let prop_fig19_parallel_matches_sequential =
  QCheck.Test.make ~name:"fig19: parallel cells = sequential recomputation"
    ~count:8
    QCheck.(pair (int_range 2 7) (map Int64.of_int (int_range 1 10000)))
    (fun (jobs, seed) ->
      let cfg = tiny_config seed in
      let seq = Experiments.Fig19_average.compute ~jobs:1 cfg in
      let par = Experiments.Fig19_average.compute ~jobs cfg in
      seq = par)

let suites =
  [
    ( "parallel",
      [
        Alcotest.test_case "map_range basics" `Quick test_map_range_basic;
        Alcotest.test_case "determinism across jobs {1,2,7}" `Quick
          test_determinism;
        Alcotest.test_case "invalid arguments" `Quick test_invalid_arguments;
        Alcotest.test_case "exception propagation" `Quick
          test_exception_propagation;
        Alcotest.test_case "map_array / map_list" `Quick test_map_array_list;
        Alcotest.test_case "split_n seeding" `Quick test_split_n;
        Alcotest.test_case "fig18 output identical across jobs" `Quick
          test_sweep_output_identical;
        QCheck_alcotest.to_alcotest prop_fig19_parallel_matches_sequential;
      ] );
  ]
