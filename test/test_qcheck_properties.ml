(* Property-based tests over random sorted instances (QCheck generators
   from Helpers): the paper's guarantees that must hold on *every*
   instance, not just the worked examples — Algorithm 1's degree bound,
   GreedyTest's characterization of feasible rates, the closed-form
   cyclic optimum being achieved by the Theorem 5.2 construction, and the
   batch verifier agreeing with the Dinic oracle on constructed schemes. *)

open Broadcast

let property ?(count = 80) name arb f = QCheck.Test.make ~count ~name arb f

(* Algorithm 1 (R2): degree <= ceil (b i / T) + 1 on open-only instances,
   at the optimal throughput. *)
let alg1_degree_bound =
  property "Algorithm 1 degree bound (+1)"
    (Helpers.open_instance_arb ~max_open:14)
    (fun inst ->
      let t = Bounds.acyclic_open_optimal inst in
      QCheck.assume (t > 1e-9);
      let scheme = Acyclic_open.build inst in
      let d = Metrics.scheme_report scheme in
      d.Metrics.max_excess <= 1)

(* Algorithm 1 must also deliver the rate it promises — checked through
   the verification oracle (acyclic fast path). *)
let alg1_achieves =
  property "Algorithm 1 achieves T*ac"
    (Helpers.open_instance_arb ~max_open:14)
    (fun inst ->
      let t = Bounds.acyclic_open_optimal inst in
      QCheck.assume (t > 1e-9);
      let scheme = Acyclic_open.build inst in
      let r = Scheme.report scheme in
      r.Verify.bandwidth_ok && r.Verify.acyclic && r.Verify.fast_path
      && Util.fge ~eps:1e-6 r.Verify.throughput t)

(* GreedyTest (R3): returns a word valid at the tested rate iff
   rate <= T*ac (Lemma 4.5), probed strictly below and strictly above the
   optimum found by the dichotomic search. *)
let greedy_iff =
  property "GreedyTest word validity iff rate <= T*ac"
    (Helpers.instance_arb ~max_open:10 ~max_guarded:8)
    (fun inst ->
      let t_ac, _ = Greedy.optimal_acyclic inst in
      QCheck.assume (t_ac > 1e-9);
      let below = t_ac *. 0.99 in
      let above = (t_ac *. 1.01) +. 1e-3 in
      let valid_below =
        match Greedy.test inst ~rate:below with
        | Some w -> Word.complete w inst && Word.feasible inst ~rate:below w
        | None -> false
      in
      valid_below && Greedy.test inst ~rate:above = None)

(* The canonical interleavings are acyclic words, so they can never beat
   the acyclic optimum (Appendix XII sanity). *)
let omega_below_optimum =
  property "omega words never exceed T*ac"
    (Helpers.instance_arb ~max_open:10 ~max_guarded:8)
    (fun inst ->
      let t_ac, _ = Greedy.optimal_acyclic inst in
      let n = inst.Platform.Instance.n and m = inst.Platform.Instance.m in
      let tol = 1e-6 *. Float.max 1. t_ac in
      Word.optimal_throughput inst (Word.omega1 ~n ~m) <= t_ac +. tol
      && Word.optimal_throughput inst (Word.omega2 ~n ~m) <= t_ac +. tol)

(* Lemma 4.6 (R4): the low-degree construction keeps guarded excess <= 1,
   open excess <= 3, and at most one open node above +2. *)
let low_degree_bounds =
  property "low-degree scheme degree bounds"
    (Helpers.instance_arb ~max_open:10 ~max_guarded:8)
    (fun inst ->
      let t_ac, word = Greedy.optimal_acyclic inst in
      QCheck.assume (t_ac > 1e-9);
      let rate = t_ac *. (1. -. 4e-9) in
      let scheme = Low_degree.build inst ~rate word in
      let d = Metrics.scheme_report scheme in
      (match d.Metrics.max_excess_open with Some e -> e <= 3 | None -> false)
      && (match d.Metrics.max_excess_guarded with Some e -> e <= 1 | None -> true)
      && d.Metrics.opens_above 2 <= 1)

(* Bounds (R5/R6): the closed form min (b0, (b0 + O) / n) is exactly the
   throughput achieved by the Theorem 5.2 cyclic construction. *)
let cyclic_closed_form_achieved =
  property "cyclic closed form = achieved rate"
    (Helpers.open_instance_arb ~max_open:12)
    (fun inst ->
      let t_star = Bounds.cyclic_open_optimal inst in
      QCheck.assume (t_star > 1e-9);
      let scheme = Cyclic_open.build inst in
      let r = Scheme.report scheme in
      r.Verify.bandwidth_ok && r.Verify.firewall_ok
      && Util.feq ~eps:1e-6 r.Verify.throughput t_star)

(* The engine itself: structure-aware throughput = plain per-destination
   Dinic on the schemes this library constructs. *)
let fast_verifier_differential =
  property "batch verifier = plain Dinic on constructed schemes"
    (Helpers.instance_arb ~max_open:10 ~max_guarded:8)
    (fun inst ->
      let t_ac, word = Greedy.optimal_acyclic inst in
      QCheck.assume (t_ac > 1e-9);
      let scheme =
        Scheme.graph (Low_degree.build inst ~rate:(t_ac *. (1. -. 4e-9)) word)
      in
      let plain = ref infinity in
      for v = 1 to Flowgraph.Graph.node_count scheme - 1 do
        plain :=
          Float.min !plain (Flowgraph.Maxflow.max_flow scheme ~src:0 ~dst:v)
      done;
      let fast = Flowgraph.Maxflow.broadcast_throughput scheme ~src:0 in
      Float.abs (fast -. !plain) <= 1e-6 *. Float.max 1. !plain)

let suites =
  [
    ( "qcheck-properties",
      List.map QCheck_alcotest.to_alcotest
        [
          alg1_degree_bound;
          alg1_achieves;
          greedy_iff;
          omega_below_optimum;
          low_degree_bounds;
          cyclic_closed_form_achieved;
          fast_verifier_differential;
        ] );
  ]
