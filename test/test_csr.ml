(* Unit tests for the CSR snapshot layer: faithfulness to the source
   graph, canonical iteration order, the stack-safe traversals, and the
   deterministic Kahn tie-breaking contract shared with Topo.sort. *)

module G = Flowgraph.Graph
module Csr = Flowgraph.Csr

let close ?(tol = 1e-12) what a b =
  if Float.abs (a -. b) > tol *. Float.max 1. (Float.abs b) then
    Alcotest.failf "%s: %g vs %g" what a b

let random_graph rng nodes density =
  let g = G.create nodes in
  for i = 0 to nodes - 1 do
    for j = 0 to nodes - 1 do
      if i <> j && Prng.Splitmix.next_float rng < density then
        G.add_edge g ~src:i ~dst:j (0.1 +. (9.9 *. Prng.Splitmix.next_float rng))
    done
  done;
  g

let test_of_graph_faithful () =
  let rng = Prng.Splitmix.create 201L in
  for _ = 1 to 30 do
    let n = 1 + int_of_float (12. *. Prng.Splitmix.next_float rng) in
    let g = random_graph rng n 0.4 in
    let c = Csr.of_graph g in
    Alcotest.(check int) "node count" (G.node_count g) (Csr.node_count c);
    Alcotest.(check int) "edge count" (G.edge_count g) (Csr.edge_count c);
    for v = 0 to n - 1 do
      Alcotest.(check int) "out degree" (G.out_degree g v) (Csr.out_degree c v);
      Alcotest.(check int) "in degree"
        (List.length (G.in_edges g v))
        (Csr.in_degree c v);
      close "out weight" (Csr.out_weight c v) (G.out_weight g v);
      close "in weight" (Csr.in_weight c v) (G.in_weight g v)
    done;
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if u <> v then
          close "edge weight" (Csr.edge_weight c ~src:u ~dst:v)
            (G.edge_weight g ~src:u ~dst:v)
      done
    done
  done

let test_canonical_order () =
  let rng = Prng.Splitmix.create 202L in
  for _ = 1 to 10 do
    let g = random_graph rng 10 0.5 in
    let c = Csr.of_graph g in
    let last = ref (-1, -1) in
    Csr.iter_edges
      (fun ~src ~dst _w ->
        if (src, dst) <= !last then
          Alcotest.failf "iteration not in (src, dst) order at %d->%d" src dst;
        last := (src, dst))
      c
  done

let test_snapshot_frozen () =
  let g = G.create 3 in
  G.add_edge g ~src:0 ~dst:1 2.;
  let c = Csr.of_graph g in
  G.add_edge g ~src:0 ~dst:1 1.;
  G.add_edge g ~src:1 ~dst:2 5.;
  close "weight frozen" (Csr.edge_weight c ~src:0 ~dst:1) 2.;
  Alcotest.(check int) "edge count frozen" 1 (Csr.edge_count c)

let test_topo_order_deterministic () =
  (* Same graph as Topo.sort's unit test: ties break on smallest index. *)
  let g = G.create 4 in
  G.add_edge g ~src:2 ~dst:1 1.;
  G.add_edge g ~src:0 ~dst:2 1.;
  G.add_edge g ~src:1 ~dst:3 1.;
  (match Csr.topo_order (Csr.of_graph g) with
  | None -> Alcotest.fail "DAG reported cyclic"
  | Some order -> Alcotest.(check (array int)) "order" [| 0; 2; 1; 3 |] order);
  (match Flowgraph.Topo.sort g with
  | None -> Alcotest.fail "Topo.sort reported cyclic"
  | Some order ->
    Alcotest.(check (array int)) "Topo.sort agrees" [| 0; 2; 1; 3 |] order);
  G.add_edge g ~src:3 ~dst:0 1.;
  Alcotest.(check bool) "cyclic" true (Csr.topo_order (Csr.of_graph g) = None)

let test_acyclicity_agreement () =
  let rng = Prng.Splitmix.create 203L in
  for _ = 1 to 40 do
    let g = random_graph rng 8 0.3 in
    let c = Csr.of_graph g in
    let by_order = Csr.topo_order c <> None in
    Alcotest.(check bool) "is_acyclic = topo_order" by_order (Csr.is_acyclic c);
    Alcotest.(check bool) "Topo.is_acyclic agrees" by_order
      (Flowgraph.Topo.is_acyclic g)
  done

let test_min_incoming_cut () =
  let rng = Prng.Splitmix.create 204L in
  for _ = 1 to 20 do
    let g = random_graph rng 9 0.4 in
    let c = Csr.of_graph g in
    let w, v = Csr.min_incoming_cut c ~src:0 in
    let best = ref infinity in
    for u = 1 to 8 do
      best := Float.min !best (G.in_weight g u)
    done;
    close "cut value" w !best;
    close "argmin consistent" (G.in_weight g v) w;
    Alcotest.(check bool) "argmin not src" true (v <> 0)
  done;
  (* Single node: (infinity, src). *)
  let one = Csr.of_graph (G.create 1) in
  Alcotest.(check bool) "single node" true
    (Csr.min_incoming_cut one ~src:0 = (infinity, 0))

let test_empty_and_fringe () =
  let empty = Csr.of_graph (G.create 5) in
  Alcotest.(check int) "no edges" 0 (Csr.edge_count empty);
  Alcotest.(check bool) "empty acyclic" true (Csr.is_acyclic empty);
  Alcotest.(check bool) "empty order" true
    (Csr.topo_order empty = Some [| 0; 1; 2; 3; 4 |]);
  Alcotest.(check bool) "no cycle" true (Csr.find_cycle empty = None);
  close "cut of empty" (fst (Csr.min_incoming_cut empty ~src:0)) 0.;
  let zero = Csr.of_graph (G.create 0) in
  Alcotest.(check int) "zero nodes" 0 (Csr.node_count zero);
  Alcotest.(check bool) "zero-node acyclic" true (Csr.is_acyclic zero)

(* Deep structures: the traversals and the blocking-flow DFS must not
   recurse. n = 20000 would already overflow a recursive DFS under small
   stacks; the CI smoke test pushes this to 50000 under ulimit -s. *)
let test_deep_structures () =
  let n = 20_000 in
  let g = G.create n in
  for i = 0 to n - 2 do
    G.add_edge g ~src:i ~dst:(i + 1) (1. +. float_of_int (i mod 7))
  done;
  let c = Csr.of_graph g in
  Alcotest.(check bool) "deep path acyclic" true (Csr.is_acyclic c);
  (match Csr.topo_order c with
  | None -> Alcotest.fail "deep path reported cyclic"
  | Some order ->
    Alcotest.(check int) "order starts at 0" 0 order.(0);
    Alcotest.(check int) "order ends at n-1" (n - 1) order.(n - 1));
  close "deep path max-flow"
    (Flowgraph.Maxflow.max_flow g ~src:0 ~dst:(n - 1))
    1.;
  close "deep structured throughput"
    (Flowgraph.Maxflow.broadcast_throughput g ~src:0)
    1.;
  (* Close the ring: a cycle of length n. *)
  G.add_edge g ~src:(n - 1) ~dst:0 1.;
  let c' = Csr.of_graph g in
  Alcotest.(check bool) "ring cyclic" false (Csr.is_acyclic c');
  (match Csr.find_cycle c' with
  | None -> Alcotest.fail "ring cycle missed"
  | Some cycle -> Alcotest.(check int) "full ring" n (List.length cycle));
  close "deep cyclic max-flow"
    (Flowgraph.Maxflow.max_flow g ~src:0 ~dst:(n - 1))
    1.

(* patch_rows: replacing a few rows must be bit-for-bit identical to a
   fresh freeze of the mutated graph — the invariant the repair layer's
   byte-deterministic fast path (Scheme.apply_delta) rests on. Structural
   equality on the whole record compares every array, floats included. *)
let test_patch_rows_matches_of_graph () =
  let rng = Prng.Splitmix.create 203L in
  for _ = 1 to 30 do
    let n = 3 + int_of_float (10. *. Prng.Splitmix.next_float rng) in
    let g = random_graph rng n 0.4 in
    let base = Csr.of_graph g in
    let rows =
      List.init n (fun v -> v)
      |> List.filter (fun _ -> Prng.Splitmix.next_float rng < 0.4)
    in
    let rows = if rows = [] then [ 0 ] else rows in
    List.iter
      (fun u ->
        (* wipe the row, then grow a fresh random out-neighbourhood *)
        List.iter (fun (d, _) -> G.set_edge g ~src:u ~dst:d 0.) (G.out_edges g u);
        for d = 0 to n - 1 do
          if d <> u && Prng.Splitmix.next_float rng < 0.3 then
            G.set_edge g ~src:u ~dst:d (0.1 +. Prng.Splitmix.next_float rng)
        done)
      rows;
    let edges =
      List.map
        (fun u ->
          G.out_edges g u
          |> List.sort (fun (a, _) (b, _) -> compare a b)
          |> Array.of_list)
        rows
    in
    let patched =
      Csr.patch_rows base ~rows:(Array.of_list rows)
        ~edges:(Array.of_list edges)
    in
    Alcotest.(check bool) "patched snapshot == fresh freeze, bit for bit" true
      (patched = Csr.of_graph g)
  done

let test_patch_rows_appends_nodes () =
  let rng = Prng.Splitmix.create 204L in
  let g = random_graph rng 8 0.4 in
  let base = Csr.of_graph g in
  (* A join-shaped patch: newcomer 8 fed by node 0 — the feeder row and
     the (empty) newcomer row are the disturbed rows. *)
  let feeder =
    (G.out_edges g 0 |> List.sort (fun (a, _) (b, _) -> compare a b))
    @ [ (8, 2.5) ]
    |> Array.of_list
  in
  let patched = Csr.patch_rows ~n:9 base ~rows:[| 0; 8 |] ~edges:[| feeder; [||] |] in
  let g' = G.create 9 in
  G.iter_edges (fun ~src ~dst w -> G.add_edge g' ~src ~dst w) g;
  G.add_edge g' ~src:0 ~dst:8 2.5;
  Alcotest.(check bool) "appended node == fresh freeze, bit for bit" true
    (patched = Csr.of_graph g')

let test_patch_rows_validation () =
  let g = random_graph (Prng.Splitmix.create 205L) 6 0.5 in
  let base = Csr.of_graph g in
  let expect what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" what
  in
  expect "shrinking n" (fun () ->
      Csr.patch_rows ~n:5 base ~rows:[||] ~edges:[||]);
  expect "rows/edges length mismatch" (fun () ->
      Csr.patch_rows base ~rows:[| 1 |] ~edges:[||]);
  expect "row out of range" (fun () ->
      Csr.patch_rows base ~rows:[| 6 |] ~edges:[| [||] |]);
  expect "rows not strictly increasing" (fun () ->
      Csr.patch_rows base ~rows:[| 2; 2 |] ~edges:[| [||]; [||] |]);
  expect "unsorted row" (fun () ->
      Csr.patch_rows base ~rows:[| 0 |] ~edges:[| [| (2, 1.); (1, 1.) |] |]);
  expect "self loop" (fun () ->
      Csr.patch_rows base ~rows:[| 0 |] ~edges:[| [| (0, 1.) |] |]);
  expect "nonpositive weight" (fun () ->
      Csr.patch_rows base ~rows:[| 0 |] ~edges:[| [| (1, 0.) |] |]);
  expect "appended row left unpatched" (fun () ->
      Csr.patch_rows ~n:8 base ~rows:[| 6 |] ~edges:[| [||] |])

let suites =
  [
    ( "csr",
      [
        Alcotest.test_case "of_graph faithful" `Quick test_of_graph_faithful;
        Alcotest.test_case "canonical iteration order" `Quick
          test_canonical_order;
        Alcotest.test_case "snapshot frozen at build" `Quick
          test_snapshot_frozen;
        Alcotest.test_case "topo_order deterministic ties" `Quick
          test_topo_order_deterministic;
        Alcotest.test_case "acyclicity agreement" `Quick
          test_acyclicity_agreement;
        Alcotest.test_case "min_incoming_cut" `Quick test_min_incoming_cut;
        Alcotest.test_case "empty and fringe snapshots" `Quick
          test_empty_and_fringe;
        Alcotest.test_case "deep structures (stack safety)" `Quick
          test_deep_structures;
        Alcotest.test_case "patch_rows == fresh freeze" `Quick
          test_patch_rows_matches_of_graph;
        Alcotest.test_case "patch_rows appends nodes" `Quick
          test_patch_rows_appends_nodes;
        Alcotest.test_case "patch_rows validation" `Quick
          test_patch_rows_validation;
      ] );
  ]
