(* The BENCH_churn.json contract and the CLI surface around the
   incremental engine.

   The golden file pins the benchmark's JSON schema — CI dashboards and
   the gate checks in bench/churn_bench.ml parse these exact keys, so a
   rename or type change must show up here as a deliberate golden
   update, not as a silent drift. The CLI tests drive the real bmp
   binary (a dune dependency of this test) to pin the [--engine] flag's
   help text, its accepted values, and the engine's inertness on real
   replays. *)

module Json = Flowgraph.Json

(* Anchor data and binary paths at the test executable, so the suite
   works both under `dune runtest` (cwd = test dir) and `dune exec`
   from the repo root. *)
let at path = Filename.concat (Filename.dirname Sys.executable_name) path

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let parse_golden () =
  match Json.parse (read_file (at "golden/bench_churn_schema.json")) with
  | Ok doc -> doc
  | Error msg -> Alcotest.failf "golden bench schema unreadable: %s" msg

let num what doc key =
  match Option.map Json.to_float (Json.member key doc) with
  | Some (Ok x) -> x
  | _ -> Alcotest.failf "%s: missing or non-numeric %S" what key

let bool_ what doc key =
  match Json.member key doc with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.failf "%s: missing or non-boolean %S" what key

let test_bench_schema_golden () =
  let doc = parse_golden () in
  (match Json.member "benchmark" doc with
  | Some (Json.Str "churn") -> ()
  | _ -> Alcotest.fail "benchmark key must be \"churn\"");
  Alcotest.(check (float 0.)) "overhead gate" 3.0 (num "top" doc "gate_overhead_max");
  Alcotest.(check (float 0.)) "speedup gate" 5.0
    (num "top" doc "gate_incremental_speedup_min");
  Alcotest.(check (float 0.)) "speedup gate scope" 10000.
    (num "top" doc "gate_incremental_speedup_nodes");
  Alcotest.(check (float 0.)) "delta audit gate" 10.0
    (num "top" doc "gate_delta_audit_speedup_min");
  Alcotest.(check (float 0.)) "delta audit gate scope" 10000.
    (num "top" doc "gate_delta_audit_speedup_nodes");
  let rows =
    match Json.member "rows" doc with
    | Some (Json.Arr rows) -> rows
    | _ -> Alcotest.fail "rows must be an array"
  in
  Alcotest.(check bool) "at least one row" true (rows <> []);
  List.iteri
    (fun i row ->
      let what = Printf.sprintf "row %d" i in
      List.iter
        (fun key -> ignore (num what row key))
        [
          "nodes"; "events"; "unaudited_s"; "audited_s"; "events_per_s";
          "overhead"; "incremental_s"; "full_recompute_s"; "speedup";
          "delta_audit_s"; "strict_audit_s"; "delta_audit_speedup";
          "minor_words_per_event"; "major_collections";
        ];
      ignore (bool_ what row "identical");
      ignore (bool_ what row "agree");
      if num what row "incremental_s" <= 0. then
        Alcotest.failf "%s: incremental_s must be positive" what;
      if num what row "delta_audit_s" <= 0. then
        Alcotest.failf "%s: delta_audit_s must be positive" what;
      if
        num what row "nodes" >= num "top" doc "gate_incremental_speedup_nodes"
        && num what row "speedup" < num "top" doc "gate_incremental_speedup_min"
      then Alcotest.failf "%s: golden sample itself fails the speedup gate" what;
      if
        num what row "nodes" >= num "top" doc "gate_delta_audit_speedup_nodes"
        && num what row "delta_audit_speedup"
           < num "top" doc "gate_delta_audit_speedup_min"
      then
        Alcotest.failf "%s: golden sample itself fails the delta audit gate"
          what)
    rows

let test_engine_names_roundtrip () =
  List.iter
    (fun e ->
      match Churn.Audit.engine_of_name (Churn.Audit.engine_name e) with
      | Some e' when e' = e -> ()
      | _ -> Alcotest.fail "engine_name / engine_of_name do not round-trip")
    [ Churn.Audit.Full; Churn.Audit.Incremental ];
  Alcotest.(check bool) "unknown name rejected" true
    (Churn.Audit.engine_of_name "warm" = None)

let test_audit_names_roundtrip () =
  List.iter
    (fun l ->
      match Churn.Audit.of_name (Churn.Audit.level_name l) with
      | Some l' when l' = l -> ()
      | _ ->
        Alcotest.failf "audit level %S does not round-trip"
          (Churn.Audit.level_name l))
    [
      Churn.Audit.Off; Churn.Audit.Check; Churn.Audit.Strict;
      Churn.Audit.Certificate { strict_every = 0 };
      Churn.Audit.Certificate { strict_every = 7 };
      Churn.Audit.Certificate { strict_every = Churn.Audit.default_backstop };
    ];
  Alcotest.(check bool) "\"on\" is Check" true
    (Churn.Audit.of_name "on" = Some Churn.Audit.Check);
  Alcotest.(check bool) "bare certificate gets the default backstop" true
    (Churn.Audit.of_name "certificate"
    = Some
        (Churn.Audit.Certificate
           { strict_every = Churn.Audit.default_backstop }));
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" s)
        true
        (Churn.Audit.of_name s = None))
    [ "certificate:"; "certificate:-1"; "certificate:x"; "paranoid"; "" ]

(* {2 Driving the real binary} *)

let bmp = at "../bin/bmp.exe"

let run_capture cmd =
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (status, Buffer.contents buf)

let run_ok cmd =
  match run_capture cmd with
  | Unix.WEXITED 0, out -> out
  | _, out -> Alcotest.failf "command failed: %s\n%s" cmd out

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Generate a fresh 16-node instance in a throwaway directory and hand
   its path (plus the directory, for scratch files) to [k]. *)
let with_instance k =
  let dir = Filename.temp_file "bmp_cli" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      ignore
        (run_ok
           (Printf.sprintf "%s generate -n 16 --seed 3 -o %s 2>/dev/null" bmp
              (Filename.quote (Filename.concat dir "cli"))));
      k ~dir (Filename.concat dir "cli-0001.txt"))

let test_churn_run_help_covers_engine () =
  let help = run_ok (bmp ^ " churn run --help=plain 2>/dev/null") in
  List.iter
    (fun needle ->
      if not (contains help needle) then
        Alcotest.failf "churn run --help does not mention %S" needle)
    [ "--engine"; "full"; "incremental"; "warm-start"; "--audit"; "--policy" ]

let test_churn_run_engine_flag () =
  with_instance (fun ~dir:_ inst ->
      let replay engine =
        run_ok
          (Printf.sprintf
             "%s churn run %s --events 40 --seed 11 --audit strict --engine %s"
             bmp (Filename.quote inst) engine)
      in
      let full = replay "full" and incr = replay "incremental" in
      (* Identical replays modulo the one line naming the engine. *)
      let strip s =
        String.split_on_char '\n' s
        |> List.filter (fun l -> not (contains l "engine"))
        |> String.concat "\n"
      in
      Alcotest.(check string) "engine knob never changes replay output"
        (strip full) (strip incr);
      Alcotest.(check bool) "engine line reported" true
        (contains incr "incremental");
      match run_capture (Printf.sprintf "%s churn run %s --engine warm 2>&1" bmp (Filename.quote inst)) with
      | Unix.WEXITED 2, _ -> ()
      | Unix.WEXITED n, out ->
        Alcotest.failf "bogus --engine value: expected exit 2, got %d\n%s" n out
      | _, _ -> Alcotest.fail "bogus --engine value: killed by a signal")

let test_churn_run_audit_flag () =
  with_instance (fun ~dir:_ inst ->
      let replay audit =
        run_ok
          (Printf.sprintf
             "%s churn run %s --events 40 --seed 11 --engine incremental \
              --audit %s --timeline"
             bmp (Filename.quote inst) audit)
      in
      (* The audit level is an observer: a certificate replay matches the
         strict replay byte for byte, modulo the one line naming it. *)
      let strict = replay "strict" and cert = replay "certificate:4" in
      let strip s =
        String.split_on_char '\n' s
        |> List.filter (fun l -> not (contains l "audit"))
        |> String.concat "\n"
      in
      Alcotest.(check string) "audit knob never changes replay output"
        (strip strict) (strip cert);
      Alcotest.(check bool) "audit line reported" true
        (contains cert "certificate:4");
      match
        run_capture
          (Printf.sprintf "%s churn run %s --audit paranoid 2>&1" bmp
             (Filename.quote inst))
      with
      | Unix.WEXITED 2, _ -> ()
      | Unix.WEXITED n, out ->
        Alcotest.failf "bogus --audit value: expected exit 2, got %d\n%s" n out
      | _, _ -> Alcotest.fail "bogus --audit value: killed by a signal")

(* {2 Exit-code contract}

   Usage and CLI parse errors exit 2; domain failures (infeasible rate,
   a scheme that misses its recorded target) exit 1. Scripts and CI
   lean on this split to tell "you called it wrong" from "the artifact
   is bad", so pin both classes against the real binary. *)

let check_exit what expected cmd =
  match run_capture cmd with
  | Unix.WEXITED n, out ->
    if n <> expected then
      Alcotest.failf "%s: expected exit %d, got %d\n%s" what expected n out
  | _, out -> Alcotest.failf "%s: killed by a signal\n%s" what out

let test_usage_errors_exit_2 () =
  check_exit "unknown subcommand" 2 (bmp ^ " frobnicate 2>&1");
  check_exit "unknown nested subcommand" 2 (bmp ^ " scheme frobnicate 2>&1");
  check_exit "unknown flag" 2 (bmp ^ " generate --no-such-flag 2>&1");
  check_exit "bad flag value" 2
    (bmp ^ " churn run /nonexistent.txt --engine warm 2>&1")

let test_domain_failures_exit_1 () =
  with_instance (fun ~dir inst ->
      let q = Filename.quote inst in
      check_exit "infeasible rate" 1
        (Printf.sprintf "%s scheme build %s --rate 1e9 2>&1" bmp q);
      (* A scheme whose recorded target rate is tampered above anything
         achievable must fail `scheme check` with exit 1 — that is the
         "failed verification" leg of the contract. *)
      let good = Filename.concat dir "good.json" in
      let bad = Filename.concat dir "bad.json" in
      ignore
        (run_ok
           (Printf.sprintf "%s scheme build %s -o %s 2>/dev/null" bmp q
              (Filename.quote good)));
      check_exit "intact scheme passes check" 0
        (Printf.sprintf "%s scheme check %s >/dev/null 2>&1" bmp
           (Filename.quote good));
      let doc = read_file good in
      let needle = "\"rate\": " in
      let start =
        let n = String.length doc and nn = String.length needle in
        let rec go i =
          if i + nn > n then Alcotest.fail "scheme JSON lacks a rate field"
          else if String.sub doc i nn = needle then i + nn
          else go (i + 1)
        in
        go 0
      in
      let stop = String.index_from doc start ',' in
      let oc = open_out_bin bad in
      output_string oc (String.sub doc 0 start);
      output_string oc "1000000";
      output_string oc (String.sub doc stop (String.length doc - stop));
      close_out oc;
      check_exit "failed verification" 1
        (Printf.sprintf "%s scheme check %s >/dev/null 2>&1" bmp
           (Filename.quote bad)))

let suites =
  [
    ( "bench-cli",
      [
        Alcotest.test_case "BENCH_churn.json schema golden" `Quick
          test_bench_schema_golden;
        Alcotest.test_case "engine names round-trip" `Quick
          test_engine_names_roundtrip;
        Alcotest.test_case "audit level names round-trip" `Quick
          test_audit_names_roundtrip;
        Alcotest.test_case "churn run --audit certificate replays identically"
          `Quick test_churn_run_audit_flag;
        Alcotest.test_case "churn run --help covers --engine" `Quick
          test_churn_run_help_covers_engine;
        Alcotest.test_case "churn run --engine replays identically" `Quick
          test_churn_run_engine_flag;
        Alcotest.test_case "usage errors exit 2" `Quick test_usage_errors_exit_2;
        Alcotest.test_case "domain failures exit 1" `Quick
          test_domain_failures_exit_1;
      ] );
  ]
