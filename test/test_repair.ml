(* Tests for the Overlay bundle and the churn-repair operations. *)

open Platform

let build_fig1 () = Broadcast.Overlay.build Instance.fig1

let test_overlay_build () =
  let o = build_fig1 () in
  Helpers.close ~tol:1e-6 "rate ~ 4" (Broadcast.Overlay.rate o) 4.;
  Alcotest.(check bool) "well formed" true (Broadcast.Overlay.well_formed o);
  Helpers.close ~tol:1e-6 "verified rate" (Broadcast.Overlay.verified_rate o) 4.;
  Alcotest.(check (array int)) "order = sigma 031425" [| 0; 3; 1; 4; 2; 5 |]
    o.Broadcast.Overlay.order

let test_overlay_forced_rate () =
  let o = Broadcast.Overlay.build ~rate:3. Instance.fig1 in
  Alcotest.(check bool) "well formed" true (Broadcast.Overlay.well_formed o);
  Alcotest.(check bool) "verified >= 3" true
    (Broadcast.Overlay.verified_rate o >= 3. -. 1e-6);
  Alcotest.check_raises "infeasible rate"
    (Invalid_argument "Overlay.build: rate is not feasible") (fun () ->
      ignore (Broadcast.Overlay.build ~rate:5. Instance.fig1))

let test_edge_distance () =
  let module G = Flowgraph.Graph in
  let a = G.create 3 and b = G.create 3 in
  G.add_edge a ~src:0 ~dst:1 1.;
  G.add_edge a ~src:0 ~dst:2 1.;
  G.add_edge b ~src:0 ~dst:1 1.;
  G.add_edge b ~src:1 ~dst:2 1.;
  (* 0->2 removed, 1->2 added. *)
  Alcotest.(check int) "two changes" 2 (Broadcast.Overlay.edge_distance a b);
  Alcotest.(check int) "self distance" 0 (Broadcast.Overlay.edge_distance a a);
  G.set_edge b ~src:0 ~dst:1 2.;
  Alcotest.(check int) "reweight counts" 3 (Broadcast.Overlay.edge_distance a b)

let overlay_with_headroom inst headroom =
  let t, _ = Broadcast.Greedy.optimal_acyclic inst in
  Broadcast.Overlay.build ~rate:(t *. headroom) inst

let test_leave_basic () =
  let o = overlay_with_headroom Instance.fig1 0.75 in
  (* Remove the last guarded node (C5): it feeds nobody, clean case. *)
  let o', stats = Broadcast.Repair.leave o ~node:5 in
  Alcotest.(check int) "one fewer node" 5
    (Instance.size (Broadcast.Overlay.instance o'));
  Alcotest.(check int) "m decremented" 2
    (Broadcast.Overlay.instance o').Instance.m;
  Alcotest.(check bool) "well formed" true (Broadcast.Overlay.well_formed o');
  Alcotest.(check bool) "rate kept" true
    (stats.Broadcast.Repair.rate_after >= Broadcast.Overlay.rate o -. 1e-6);
  Alcotest.(check bool) "patch cheaper than rebuild" true
    (stats.Broadcast.Repair.patch_edges <= stats.Broadcast.Repair.rebuild_edges)

let test_leave_open_node () =
  let o = overlay_with_headroom Instance.fig1 0.6 in
  let o', stats = Broadcast.Repair.leave o ~node:1 in
  Alcotest.(check int) "n decremented" 1
    (Broadcast.Overlay.instance o').Instance.n;
  Alcotest.(check bool) "well formed" true (Broadcast.Overlay.well_formed o');
  Alcotest.(check bool) "optimal recomputed" true
    (stats.Broadcast.Repair.optimal_after > 0.)

let test_leave_validation () =
  let o = build_fig1 () in
  (try
     ignore (Broadcast.Repair.leave o ~node:0);
     Alcotest.fail "source removal accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Broadcast.Repair.leave o ~node:6);
    Alcotest.fail "out of range accepted"
  with Invalid_argument _ -> ()

let test_join_open () =
  let o = overlay_with_headroom Instance.fig1 0.8 in
  let o', stats = Broadcast.Repair.join o ~bandwidth:4.5 ~cls:Instance.Open in
  let inst' = Broadcast.Overlay.instance o' in
  Alcotest.(check int) "n incremented" 3 inst'.Instance.n;
  Alcotest.(check bool) "still sorted" true (Instance.sorted inst');
  Alcotest.(check bool) "well formed" true (Broadcast.Overlay.well_formed o');
  (* 4.5 slots between the 5s and the... position 3 in open class. *)
  Helpers.close "inserted bandwidth" inst'.Instance.bandwidth.(3) 4.5;
  Alcotest.(check bool) "newcomer fed at full target" true
    (stats.Broadcast.Repair.rate_after >= Broadcast.Overlay.rate o -. 1e-6)

let test_join_guarded () =
  let o = overlay_with_headroom Instance.fig1 0.8 in
  let o', _stats = Broadcast.Repair.join o ~bandwidth:2. ~cls:Instance.Guarded in
  let inst' = Broadcast.Overlay.instance o' in
  Alcotest.(check int) "m incremented" 4 inst'.Instance.m;
  Alcotest.(check bool) "still sorted" true (Instance.sorted inst');
  Alcotest.(check bool) "well formed" true (Broadcast.Overlay.well_formed o');
  (* The newcomer (a guarded node) must be fed by open nodes only. *)
  let p = Broadcast.Overlay.positions o' in
  let newcomer =
    o'.Broadcast.Overlay.order.(Array.length o'.Broadcast.Overlay.order - 1)
  in
  ignore p;
  List.iter
    (fun (u, _) ->
      Alcotest.(check bool) "open feeder" true (Instance.is_open inst' u))
    (Flowgraph.Graph.in_edges (Broadcast.Overlay.graph o') newcomer)

let test_join_validation () =
  let o = build_fig1 () in
  try
    ignore (Broadcast.Repair.join o ~bandwidth:(-1.) ~cls:Instance.Open);
    Alcotest.fail "negative bandwidth accepted"
  with Invalid_argument _ -> ()

let test_rebuild () =
  let o = overlay_with_headroom Instance.fig1 0.8 in
  let o', stats = Broadcast.Repair.rebuild o in
  Alcotest.(check bool) "rebuild reaches optimum" true
    (stats.Broadcast.Repair.rate_after >= stats.Broadcast.Repair.optimal_after -. 1e-6);
  Alcotest.(check bool) "well formed" true (Broadcast.Overlay.well_formed o');
  Alcotest.(check int) "patch = rebuild cost" stats.Broadcast.Repair.patch_edges
    stats.Broadcast.Repair.rebuild_edges

(* Property: with headroom, any single departure is absorbed — the patched
   overlay stays well-formed and every remaining node keeps receiving at
   least SOME rate; with generous headroom the full target survives. *)
let prop_leave_well_formed =
  QCheck.Test.make ~name:"leave keeps overlays well-formed" ~count:40
    (QCheck.pair (Helpers.instance_arb ~max_open:10 ~max_guarded:6) QCheck.(int_range 0 1000))
    (fun (inst, pick) ->
      let t, _ = Broadcast.Greedy.optimal_acyclic inst in
      QCheck.assume (t > 1e-6 && Instance.size inst > 2);
      let o = Broadcast.Overlay.build ~rate:(t *. 0.7) inst in
      let node = 1 + (pick mod (Instance.size inst - 1)) in
      let o', stats = Broadcast.Repair.leave o ~node in
      Broadcast.Overlay.well_formed o'
      && stats.Broadcast.Repair.rate_after >= 0.
      && stats.Broadcast.Repair.patch_edges >= 0)

let prop_join_keeps_target =
  QCheck.Test.make ~name:"join feeds the newcomer without hurting others" ~count:40
    (QCheck.triple
       (Helpers.instance_arb ~max_open:10 ~max_guarded:6)
       (QCheck.float_range 0.5 100.)
       QCheck.bool)
    (fun (inst, bandwidth, open_cls) ->
      let t, _ = Broadcast.Greedy.optimal_acyclic inst in
      QCheck.assume (t > 1e-6);
      let o = Broadcast.Overlay.build ~rate:(t *. 0.7) inst in
      let cls = if open_cls then Instance.Open else Instance.Guarded in
      let o', stats = Broadcast.Repair.join o ~bandwidth ~cls in
      (* Existing nodes keep their full reception: only edges toward the
         newcomer are added, so the rate cannot drop below the target
         unless the newcomer itself is starved. *)
      Broadcast.Overlay.well_formed o'
      && stats.Broadcast.Repair.rate_after <= Broadcast.Overlay.rate o +. 1e-6)

(* Structural safety of a leave followed by a join, on the resulting
   Scheme artifact itself: the firewall holds, no sender exceeds its
   bandwidth, the patched scheme stays acyclic, and provenance records
   the repair. *)
let prop_leave_join_structure =
  QCheck.Test.make ~name:"leave then join keeps schemes structurally sound"
    ~count:40
    (QCheck.triple
       (Helpers.instance_arb ~max_open:10 ~max_guarded:6)
       QCheck.(int_range 0 1000)
       (QCheck.pair (QCheck.float_range 0.5 50.) QCheck.bool))
    (fun (inst, pick, (bandwidth, open_cls)) ->
      let t, _ = Broadcast.Greedy.optimal_acyclic inst in
      QCheck.assume (t > 1e-6 && Instance.size inst > 2);
      let o = Broadcast.Overlay.build ~rate:(t *. 0.7) inst in
      let node = 1 + (pick mod (Instance.size inst - 1)) in
      let o1, _ = Broadcast.Repair.leave o ~node in
      let cls = if open_cls then Instance.Open else Instance.Guarded in
      let o2, _ = Broadcast.Repair.join o1 ~bandwidth ~cls in
      let s = Broadcast.Overlay.scheme o2 in
      let inst' = Broadcast.Scheme.instance s in
      let g = Broadcast.Scheme.graph s in
      let b = inst'.Instance.bandwidth in
      Flowgraph.Graph.iter_edges
        (fun ~src ~dst _ ->
          if Instance.is_guarded inst' src && Instance.is_guarded inst' dst then
            Alcotest.failf "guarded edge %d->%d after repair" src dst)
        g;
      for v = 0 to Instance.size inst' - 1 do
        if not (Broadcast.Util.fle ~eps:1e-6 (Flowgraph.Graph.out_weight g v) b.(v))
        then
          Alcotest.failf "node %d sends %g > b = %g after repair" v
            (Flowgraph.Graph.out_weight g v)
            b.(v)
      done;
      (match (Broadcast.Scheme.provenance s).Broadcast.Scheme.algorithm with
      | Broadcast.Scheme.Repaired _ -> ()
      | a ->
        Alcotest.failf "provenance not Repaired: %s"
          (Broadcast.Scheme.algorithm_name a));
      Broadcast.Scheme.is_acyclic s)

(* A leave followed by re-joining an identical node restores feasibility
   of the original target. *)
let test_leave_join_roundtrip () =
  let o = overlay_with_headroom Instance.fig1 0.7 in
  let b5 = Instance.fig1.Instance.bandwidth.(5) in
  let o1, _ = Broadcast.Repair.leave o ~node:5 in
  let o2, stats = Broadcast.Repair.join o1 ~bandwidth:b5 ~cls:Instance.Guarded in
  Alcotest.(check int) "size restored" 6
    (Instance.size (Broadcast.Overlay.instance o2));
  Alcotest.(check bool) "instance equal to original" true
    (Instance.equal (Broadcast.Overlay.instance o2) Instance.fig1);
  Alcotest.(check bool) "target rate kept" true
    (stats.Broadcast.Repair.rate_after >= Broadcast.Overlay.rate o -. 1e-6)

let suites =
  [
    ( "overlay",
      [
        Alcotest.test_case "build" `Quick test_overlay_build;
        Alcotest.test_case "forced rate" `Quick test_overlay_forced_rate;
        Alcotest.test_case "edge distance" `Quick test_edge_distance;
      ] );
    ( "repair",
      [
        Alcotest.test_case "leave (leaf node)" `Quick test_leave_basic;
        Alcotest.test_case "leave (open node)" `Quick test_leave_open_node;
        Alcotest.test_case "leave validation" `Quick test_leave_validation;
        Alcotest.test_case "join (open)" `Quick test_join_open;
        Alcotest.test_case "join (guarded)" `Quick test_join_guarded;
        Alcotest.test_case "join validation" `Quick test_join_validation;
        Alcotest.test_case "rebuild" `Quick test_rebuild;
        Alcotest.test_case "leave/join roundtrip" `Quick test_leave_join_roundtrip;
        QCheck_alcotest.to_alcotest prop_leave_well_formed;
        QCheck_alcotest.to_alcotest prop_join_keeps_target;
        QCheck_alcotest.to_alcotest prop_leave_join_structure;
      ] );
  ]
