(* Tests for Algorithm 1 (acyclic schemes on open nodes only). *)

open Platform

let test_fig3_structure () =
  (* Deterministic example: b = (6, 5, 4, 3), T*ac = 5. *)
  let inst = Instance.create ~bandwidth:[| 6.; 5.; 4.; 3. |] ~n:3 ~m:0 () in
  let t = Broadcast.Bounds.acyclic_open_optimal inst in
  Helpers.close "T*ac" t 5.;
  let s = Broadcast.Acyclic_open.build inst in
  ignore (Helpers.check_artifact s ~rate:t);
  Alcotest.(check string) "provenance" "algorithm1"
    (Broadcast.Scheme.algorithm_name
       (Broadcast.Scheme.provenance s).Broadcast.Scheme.algorithm);
  let g = Broadcast.Scheme.graph s in
  (* Source fills C1 (5) then starts C2 with its remaining 1; C1 fills the
     rest of C2 and starts C3... consecutive-interval structure. *)
  Helpers.close "c01" (Flowgraph.Graph.edge_weight g ~src:0 ~dst:1) 5.;
  Helpers.close "c02" (Flowgraph.Graph.edge_weight g ~src:0 ~dst:2) 1.;
  Helpers.close "c12" (Flowgraph.Graph.edge_weight g ~src:1 ~dst:2) 4.;
  Helpers.close "c13" (Flowgraph.Graph.edge_weight g ~src:1 ~dst:3) 1.;
  Helpers.close "c23" (Flowgraph.Graph.edge_weight g ~src:2 ~dst:3) 4.

let test_every_node_receives_rate () =
  let inst = Instance.create ~bandwidth:[| 10.; 8.; 8.; 2.; 1.; 1. |] ~n:5 ~m:0 () in
  let t = Broadcast.Bounds.acyclic_open_optimal inst in
  let g = Broadcast.Scheme.graph (Broadcast.Acyclic_open.build inst) in
  for v = 1 to 5 do
    Helpers.close ~tol:1e-6 "in-weight = T" (Flowgraph.Graph.in_weight g v) t
  done

let test_lower_rate () =
  let inst = Instance.create ~bandwidth:[| 6.; 5.; 4.; 3. |] ~n:3 ~m:0 () in
  let s = Broadcast.Acyclic_open.build ~t:2.5 inst in
  ignore (Helpers.check_artifact s ~rate:2.5);
  Alcotest.(check bool) "acyclic" true (Broadcast.Scheme.is_acyclic s)

let test_rejects () =
  let inst = Instance.create ~bandwidth:[| 6.; 5.; 4.; 3. |] ~n:3 ~m:0 () in
  (try
     ignore (Broadcast.Acyclic_open.build ~t:5.5 inst);
     Alcotest.fail "infeasible rate accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Broadcast.Acyclic_open.build Instance.fig1);
    Alcotest.fail "guarded instance accepted"
  with Invalid_argument _ -> ()

let test_first_deficit () =
  let inst = Instance.create ~bandwidth:[| 5.; 5.; 3.; 2. |] ~n:3 ~m:0 () in
  (* At T = 5 (the cyclic optimum): S2 = 13 < 15 -> i0 = 3 (Fig 11). *)
  Alcotest.(check (option int)) "fig11 deficit" (Some 3)
    (Broadcast.Acyclic_open.first_deficit inst ~t:5.);
  (* At T*ac there is no deficit. *)
  let t_ac = Broadcast.Bounds.acyclic_open_optimal inst in
  Alcotest.(check (option int)) "no deficit at T*ac" None
    (Broadcast.Acyclic_open.first_deficit inst ~t:t_ac)

(* Property: on random sorted open instances, Algorithm 1 achieves T*ac
   acyclically with outdegrees at most ceil(b/T) + 1 (Section III-B). *)
let prop_algorithm1 =
  QCheck.Test.make ~name:"Algorithm 1: optimal, acyclic, degree +1" ~count:60
    (Helpers.open_instance_arb ~max_open:20) (fun inst ->
      let t = Broadcast.Bounds.acyclic_open_optimal inst in
      QCheck.assume (t > 1e-6);
      let s = Broadcast.Acyclic_open.build inst in
      ignore (Helpers.check_artifact s ~rate:(t *. (1. -. 1e-9)));
      if not (Broadcast.Scheme.is_acyclic s) then Alcotest.fail "cyclic output";
      let d = Broadcast.Metrics.scheme_report s in
      if d.Broadcast.Metrics.max_excess > 1 then
        Alcotest.failf "degree excess %d > 1" d.Broadcast.Metrics.max_excess;
      true)

(* Property: the closed form really is an upper bound for acyclic schemes —
   cross-checked against the exhaustive word oracle on small instances. *)
let prop_closed_form_is_optimal =
  QCheck.Test.make ~name:"closed form matches exhaustive optimum" ~count:40
    (Helpers.open_instance_arb ~max_open:7) (fun inst ->
      let t = Broadcast.Bounds.acyclic_open_optimal inst in
      let t_brute, _ = Broadcast.Exact.optimal_acyclic_words inst in
      Helpers.close ~tol:1e-9 "closed form vs brute force" t t_brute;
      true)

let suites =
  [
    ( "acyclic_open",
      [
        Alcotest.test_case "Figure 3 structure" `Quick test_fig3_structure;
        Alcotest.test_case "every node receives T" `Quick test_every_node_receives_rate;
        Alcotest.test_case "sub-optimal target rate" `Quick test_lower_rate;
        Alcotest.test_case "rejects bad inputs" `Quick test_rejects;
        Alcotest.test_case "first_deficit" `Quick test_first_deficit;
        QCheck_alcotest.to_alcotest prop_algorithm1;
        QCheck_alcotest.to_alcotest prop_closed_form_is_optimal;
      ] );
  ]
