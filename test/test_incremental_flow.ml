(* Differential harness for the warm-start incremental max-flow solver
   (Flowgraph.Maxflow.Incremental) behind the churn engine's
   [--engine incremental] knob.

   The heart is a QCheck property replaying random traces against random
   platforms with the incremental engine under a Strict audit — which
   already cross-checks the warm value against a from-scratch Dinic
   after every event — plus a probe that re-asserts the same equality
   independently, compares [achieves_rate] verdicts at rates bracketing
   the optimum, and checks the audit verdict itself is identical with
   and without the warm state. Around it: targeted unit cases for the
   paths where incremental solvers rot (leave of a saturated relay, a
   join that re-saturates, degrade to zero, restore, back-to-back deltas
   on the same node), the cyclic cold-fallback, and a regression pinning
   that the trace shrinker minimizes counterexamples. *)

open Platform
module MF = Flowgraph.Maxflow
module MFI = Flowgraph.Maxflow.Incremental
module Csr = Flowgraph.Csr

let slack = Broadcast.Verify.flow_slack

let overlay_of_seed ?(total = 14) ?(headroom = 0.9) seed =
  let rng = Prng.Splitmix.create (Int64.of_int (0x1f0c + seed)) in
  let inst =
    Platform.Generator.generate
      { Platform.Generator.total; p_open = 0.7; dist = Prng.Dist.unif100 }
      rng
  in
  let t, _ = Broadcast.Greedy.optimal_acyclic inst in
  Broadcast.Overlay.build ~rate:(t *. headroom) inst

let snapshot o = Broadcast.Scheme.snapshot (Broadcast.Overlay.scheme o)

(* The differential assertion: warm value against a from-scratch CSR
   Dinic on the overlay's snapshot, within the library's flow slack. *)
let assert_matches_scratch what inc o =
  let snap = snapshot o in
  let warm = MFI.value inc in
  let scratch = MF.min_broadcast_flow_csr snap ~src:0 in
  if
    (Float.is_finite warm || Float.is_finite scratch)
    && Float.abs (warm -. scratch) > slack scratch
  then
    Alcotest.failf "%s: warm value %.12g vs from-scratch Dinic %.12g" what warm
      scratch;
  scratch

(* Identical achieves_rate verdicts at rates bracketing the optimum.
   Rates sit at least 10 flow-slacks away from the value, where the two
   engines' float noise (each within one slack of the other) cannot flip
   a verdict. *)
let assert_verdicts_agree what inc o scratch =
  if Float.is_finite scratch && scratch > 0. then
    List.iter
      (fun rate ->
        let warm = MFI.achieves_rate inc ~rate in
        let full = MF.achieves_rate_csr (snapshot o) ~src:0 ~rate in
        if warm <> full then
          Alcotest.failf "%s: verdicts differ at rate %.12g (warm %b, full %b)"
            what rate warm full)
      [
        0.5 *. scratch;
        scratch -. (10. *. slack scratch);
        scratch +. (10. *. slack scratch);
        2. *. scratch;
      ]

let audit_outcome ?flow ~index o =
  match Churn.Audit.check Churn.Audit.Strict ~index ?flow o with
  | () -> None
  | exception Churn.Audit.Violation { what; _ } -> Some what

let probe ~index o flow =
  match flow with
  | None -> Alcotest.fail "incremental engine did not thread its state"
  | Some inc ->
    let what = Printf.sprintf "event %d" index in
    let scratch = assert_matches_scratch what inc o in
    assert_verdicts_agree what inc o scratch;
    let without = audit_outcome ~index o in
    let with_flow = audit_outcome ~flow:inc ~index o in
    if without <> with_flow then
      Alcotest.failf
        "%s: audit outcome differs across engines (full: %s, incremental: %s)"
        what
        (Option.value ~default:"ok" without)
        (Option.value ~default:"ok" with_flow)

(* ~300 random platforms x random 50-event traces, checked after every
   event. Headroom varies so some runs start saturated; the policy
   varies so the rebase path (policy rebuilds) is exercised too. *)
let prop_differential =
  QCheck.Test.make ~count:300
    ~name:"incremental = from-scratch Dinic after every event"
    (QCheck.pair
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
       (Helpers.trace_arb ~events:50 ()))
    (fun (seed, trace) ->
      let headroom = [| 1.0; 0.9; 0.7 |].(seed mod 3) in
      let policy =
        if seed mod 7 = 0 then Churn.Policy.adaptive_default
        else Churn.Policy.Always_patch
      in
      let o = overlay_of_seed ~headroom seed in
      let result =
        Churn.Engine.run ~policy ~audit:Churn.Audit.Strict
          ~engine:Churn.Audit.Incremental ~probe o trace
      in
      ignore result;
      true)

(* The engine knob must never change the run itself: identical timeline
   and summary whichever engine maintains the rate. *)
let prop_engine_knob_inert =
  QCheck.Test.make ~count:60 ~name:"engine knob never changes run results"
    (QCheck.pair
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
       (Helpers.trace_arb ~events:30 ()))
    (fun (seed, trace) ->
      let run engine =
        Churn.Engine.run ~audit:Churn.Audit.Check ~engine
          (overlay_of_seed seed) trace
      in
      let a = run Churn.Audit.Full and b = run Churn.Audit.Incremental in
      a.Churn.Engine.summary = b.Churn.Engine.summary
      && a.Churn.Engine.timeline = b.Churn.Engine.timeline)

(* {2 Targeted unit cases} *)

(* Apply one repair operation to both the overlay and the warm state,
   and check the warm value differentially. *)
let step what inc o (o', (stats : Broadcast.Repair.stats)) =
  MFI.apply inc ~map:stats.Broadcast.Repair.node_map (snapshot o');
  ignore o;
  let scratch = assert_matches_scratch what inc o' in
  assert_verdicts_agree what inc o' scratch;
  o'

(* A relay on a fully saturated overlay: every upstream byte it forwards
   must be refunded along its decomposition paths when it leaves. *)
let test_leave_saturated_relay () =
  let o = overlay_of_seed ~headroom:1.0 3 in
  let inc = MFI.create (snapshot o) ~src:0 in
  ignore (assert_matches_scratch "initial" inc o);
  let snap = snapshot o in
  let relay = ref (-1) in
  for v = Csr.node_count snap - 1 downto 1 do
    if Csr.out_degree snap v > 0 then relay := v
  done;
  if !relay < 0 then Alcotest.fail "no relay in the saturated overlay";
  let o = step "leave relay" inc o (Broadcast.Repair.leave o ~node:!relay) in
  (* and a second casualty on the already-degraded overlay *)
  ignore (step "leave again" inc o (Broadcast.Repair.leave o ~node:1))

(* A join can re-saturate the overlay: the newcomer is fed from spare
   capacity, shifting in-weights and possibly the critical sink. *)
let test_join_resaturates () =
  let o = overlay_of_seed ~headroom:0.7 5 in
  let inc = MFI.create (snapshot o) ~src:0 in
  let o =
    step "join strong" inc o
      (Broadcast.Repair.join o ~bandwidth:500. ~cls:Instance.Open)
  in
  (* a second join onto the (possibly) saturated overlay: admitted at
     rate 0, which collapses the cut — the warm value must follow. *)
  ignore
    (step "join saturated" inc o
       (Broadcast.Repair.join o ~bandwidth:40. ~cls:Instance.Open))

let test_degrade_to_zero_then_restore () =
  let o = overlay_of_seed ~headroom:0.9 7 in
  let inc = MFI.create (snapshot o) ~src:0 in
  let node = 2 in
  let b = (Broadcast.Overlay.instance o).Instance.bandwidth.(node) in
  let o', (stats : Broadcast.Repair.stats) =
    Broadcast.Repair.degrade o ~node ~bandwidth:0.
  in
  let node' = stats.Broadcast.Repair.node_map.(node) in
  let o' = step "degrade to zero" inc o (o', stats) in
  ignore
    (step "restore" inc o'
       (Broadcast.Repair.restore o' ~node:node' ~bandwidth:b))

let test_back_to_back_same_node () =
  let o = overlay_of_seed ~headroom:0.9 11 in
  let inc = MFI.create (snapshot o) ~src:0 in
  let node = 3 in
  let b = (Broadcast.Overlay.instance o).Instance.bandwidth.(node) in
  let o1, (s1 : Broadcast.Repair.stats) =
    Broadcast.Repair.degrade o ~node ~bandwidth:(b *. 0.5)
  in
  let node1 = s1.Broadcast.Repair.node_map.(node) in
  let o1 = step "first degrade" inc o (o1, s1) in
  let o2, (s2 : Broadcast.Repair.stats) =
    Broadcast.Repair.degrade o1 ~node:node1 ~bandwidth:(b *. 0.1)
  in
  let node2 = s2.Broadcast.Repair.node_map.(node1) in
  let o2 = step "second degrade, same node" inc o1 (o2, s2) in
  ignore
    (step "restore, same node" inc o2
       (Broadcast.Repair.restore o2 ~node:node2 ~bandwidth:b))

(* Identity event: same snapshot, identity map — nothing to refund, the
   warm value survives untouched. *)
let test_identity_apply () =
  let o = overlay_of_seed 13 in
  let snap = snapshot o in
  let inc = MFI.create snap ~src:0 in
  let before = MFI.value inc in
  MFI.apply inc ~map:(MFI.identity_map (Csr.node_count snap)) snap;
  Alcotest.(check bool)
    "no flow refunded" true
    ((MFI.last_stats inc).MFI.refunded = 0.);
  Helpers.close "value unchanged" (MFI.value inc) before

(* Cyclic snapshots (unreachable through Repair, allowed by the API)
   fall back to the full from-scratch solve, flagged as cold. *)
let test_cyclic_cold_fallback () =
  let g = Flowgraph.Graph.create 4 in
  Flowgraph.Graph.add_edge g ~src:0 ~dst:1 4.;
  Flowgraph.Graph.add_edge g ~src:1 ~dst:2 3.;
  Flowgraph.Graph.add_edge g ~src:2 ~dst:1 1.;
  Flowgraph.Graph.add_edge g ~src:2 ~dst:3 2.;
  let c = Csr.of_graph g in
  let inc = MFI.create c ~src:0 in
  Alcotest.(check bool) "cold" false (MFI.is_warm inc);
  Helpers.close ~tol:1e-6 "cold value = full Dinic" (MFI.value inc)
    (MF.min_broadcast_flow_csr c ~src:0);
  (* back to an acyclic snapshot: the solver warms up again *)
  Flowgraph.Graph.set_edge g ~src:2 ~dst:1 0.;
  let c' = Csr.of_graph g in
  MFI.apply inc ~map:(MFI.identity_map 4) c';
  Alcotest.(check bool) "warm again" true (MFI.is_warm inc);
  Helpers.close ~tol:1e-6 "warm value = full Dinic" (MFI.value inc)
    (MF.min_broadcast_flow_csr c' ~src:0)

let test_map_validation () =
  let o = overlay_of_seed 17 in
  let snap = snapshot o in
  let inc = MFI.create snap ~src:0 in
  (try
     MFI.apply inc ~map:[| 0 |] snap;
     Alcotest.fail "short map accepted"
   with Invalid_argument _ -> ());
  let map = MFI.identity_map (Csr.node_count snap) in
  map.(0) <- -1;
  try
    MFI.apply inc ~map snap;
    Alcotest.fail "departing source accepted"
  with Invalid_argument _ -> ()

(* {2 Shrinking regression}

   A seeded known-bad property over generated traces must minimize: the
   structural shrinker (drop half / drop one / shrink events in place)
   lands on a counterexample of at most 3 events, where seed-based
   generation used to print the full 100-event trace. *)
let test_trace_shrinks_to_few_events () =
  let cell =
    QCheck.Test.make_cell ~count:200 ~name:"traces never degrade (known bad)"
      (Helpers.trace_arb ~events:100 ())
      (fun t ->
        Array.for_all
          (fun e ->
            match e with Churn.Trace.Degrade _ -> false | _ -> true)
          t.Churn.Trace.events)
  in
  let result =
    QCheck.Test.check_cell ~rand:(Random.State.make [| 0x5eed |]) cell
  in
  match QCheck.TestResult.get_state result with
  | QCheck.TestResult.Failed { instances = c :: _ } ->
    let events =
      Array.length c.QCheck.TestResult.instance.Churn.Trace.events
    in
    if events > 3 then
      Alcotest.failf "counterexample kept %d events (expected <= 3)" events;
    if c.QCheck.TestResult.shrink_steps = 0 then
      Alcotest.fail "shrinker never ran"
  | _ -> Alcotest.fail "the seeded known-bad property did not fail"

(* The instance shrinker must only yield well-formed sorted instances
   (the generator's own invariant), or shrinking would crash mid-search. *)
let test_instance_shrink_well_formed () =
  let inst =
    fst
      (Instance.normalize
         (Instance.create ~bandwidth:[| 10.; 8.; 5.; 3.; 2. |] ~n:2 ~m:2 ()))
  in
  let count = ref 0 in
  Helpers.instance_shrink inst (fun inst' ->
      incr count;
      Alcotest.(check bool) "sorted" true (Instance.sorted inst');
      Alcotest.(check bool)
        "smaller" true
        (Instance.size inst' < Instance.size inst));
  Alcotest.(check bool) "yields candidates" true (!count > 0)

let suites =
  [
    ( "incremental-flow",
      [
        QCheck_alcotest.to_alcotest prop_differential;
        QCheck_alcotest.to_alcotest prop_engine_knob_inert;
        Alcotest.test_case "leave of saturated relay" `Quick
          test_leave_saturated_relay;
        Alcotest.test_case "join that re-saturates" `Quick
          test_join_resaturates;
        Alcotest.test_case "degrade to zero, restore" `Quick
          test_degrade_to_zero_then_restore;
        Alcotest.test_case "back-to-back deltas, same node" `Quick
          test_back_to_back_same_node;
        Alcotest.test_case "identity apply is free" `Quick
          test_identity_apply;
        Alcotest.test_case "cyclic cold fallback" `Quick
          test_cyclic_cold_fallback;
        Alcotest.test_case "map validation" `Quick test_map_validation;
        Alcotest.test_case "trace shrinker minimizes" `Quick
          test_trace_shrinks_to_few_events;
        Alcotest.test_case "instance shrinker well-formed" `Quick
          test_instance_shrink_well_formed;
      ] );
  ]
