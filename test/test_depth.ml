(* Tests for the depth-aware scheme construction. *)

open Platform

let test_fig1_depth_build () =
  let inst = Instance.fig1 in
  let w = Broadcast.Word.of_string "gogog" in
  let s = Broadcast.Depth.build inst ~rate:4. w in
  ignore (Helpers.check_artifact s ~rate:4.);
  Alcotest.(check bool) "acyclic" true (Broadcast.Scheme.is_acyclic s);
  Alcotest.(check string) "provenance" "min-depth"
    (Broadcast.Scheme.algorithm_name
       (Broadcast.Scheme.provenance s).Broadcast.Scheme.algorithm);
  let g = Broadcast.Scheme.graph s in
  for v = 1 to 5 do
    Helpers.close ~tol:1e-6 "in-rate" (Flowgraph.Graph.in_weight g v) 4.
  done

let test_build_optimal () =
  let inst = Instance.fig1 in
  let rate, s = Broadcast.Depth.build_optimal inst in
  ignore (Helpers.check_artifact s ~rate);
  Helpers.close ~tol:1e-6 "optimal rate" rate 4.

let test_fraction_validation () =
  (try
     ignore (Broadcast.Depth.build_optimal ~fraction:0. Instance.fig1);
     Alcotest.fail "zero fraction accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Broadcast.Depth.build_optimal ~fraction:1.5 Instance.fig1);
    Alcotest.fail "fraction > 1 accepted"
  with Invalid_argument _ -> ()

let test_infeasible_word () =
  let inst = Instance.fig1 in
  let w = Broadcast.Word.of_string "ggoog" in
  try
    ignore (Broadcast.Depth.build inst ~rate:4. w);
    Alcotest.fail "infeasible word accepted"
  with Invalid_argument _ -> ()

let test_tradeoff_monotone () =
  (* A wide homogeneous platform: depth must drop as rate backs off. *)
  let inst =
    Instance.homogeneous ~n:64 ~m:0 ~b0:1. ~bopen:1. ~bguarded:0.
  in
  let points = Broadcast.Depth.tradeoff ~fractions:[ 1.0; 0.5 ] inst in
  match points with
  | [ full; half ] ->
    Alcotest.(check bool) "half rate is shallower" true
      (half.Broadcast.Depth.min_depth <= full.Broadcast.Depth.min_depth);
    (* At half rate on a homogeneous platform each node can feed two
       others: depth should be near log2(n), far below n. *)
    Alcotest.(check bool) "near-logarithmic at half rate" true
      (half.Broadcast.Depth.min_depth <= 14);
    Alcotest.(check bool) "chain-like at full rate" true
      (full.Broadcast.Depth.min_depth >= 16)
  | _ -> Alcotest.fail "expected two tradeoff points"

(* Min-depth schemes are never deeper than the FIFO scheme built from the
   same word at the same rate. *)
let prop_depth_no_worse =
  QCheck.Test.make ~name:"min-depth <= FIFO depth" ~count:40
    (Helpers.instance_arb ~max_open:12 ~max_guarded:8) (fun inst ->
      let t, _ = Broadcast.Greedy.optimal_acyclic inst in
      QCheck.assume (t > 1e-6);
      let rate = t *. 0.8 in
      match Broadcast.Greedy.test inst ~rate with
      | None -> QCheck.assume_fail ()
      | Some word ->
        let fifo = Broadcast.Low_degree.build inst ~rate word in
        let shallow = Broadcast.Depth.build inst ~rate word in
        Broadcast.Metrics.scheme_depth shallow
        <= Broadcast.Metrics.scheme_depth fifo)

(* Same feasibility envelope: whenever the FIFO construction succeeds, the
   min-depth one does too, and both verify at the same rate. *)
let prop_same_feasibility =
  QCheck.Test.make ~name:"depth build verifies like FIFO" ~count:40
    (Helpers.instance_arb ~max_open:10 ~max_guarded:8) (fun inst ->
      let t, _ = Broadcast.Greedy.optimal_acyclic inst in
      QCheck.assume (t > 1e-6);
      let rate = t *. (1. -. (4. *. Broadcast.Util.eps)) in
      match Broadcast.Greedy.test inst ~rate with
      | None -> QCheck.assume_fail ()
      | Some word ->
        let shallow = Broadcast.Depth.build inst ~rate word in
        ignore (Helpers.check_artifact shallow ~rate);
        Broadcast.Scheme.is_acyclic shallow)

let suites =
  [
    ( "depth",
      [
        Alcotest.test_case "fig1 construction" `Quick test_fig1_depth_build;
        Alcotest.test_case "build_optimal" `Quick test_build_optimal;
        Alcotest.test_case "fraction validation" `Quick test_fraction_validation;
        Alcotest.test_case "infeasible word" `Quick test_infeasible_word;
        Alcotest.test_case "tradeoff monotone" `Quick test_tradeoff_monotone;
        QCheck_alcotest.to_alcotest prop_depth_no_worse;
        QCheck_alcotest.to_alcotest prop_same_feasibility;
      ] );
  ]
