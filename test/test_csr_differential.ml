(* QCheck differential suite for the CSR Dinic engine: on ~300 random
   graphs — acyclic and cyclic, including zero-edge and single-node
   fringes — the CSR engine (Maxflow), the frozen legacy list engine
   (Maxflow_legacy) and, on DAGs, the O(V + E) incoming-cut closed form
   (Topo.min_incoming_cut) must produce equal broadcast-flow values
   within eps and identical achieves_rate verdicts. *)

module G = Flowgraph.Graph
module MF = Flowgraph.Maxflow
module Legacy = Flowgraph.Maxflow_legacy

let close what a b =
  (* Relative 1e-6, with infinities compared exactly (single-node and
     unreachable fringes produce infinity / 0). *)
  if a = b then true
  else if
    Float.abs (a -. b)
    <= 1e-6 *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))
  then true
  else QCheck.Test.fail_reportf "%s: %g vs %g" what a b

(* Graph shapes: n in [1, 24] covers the single-node fringe; density 0
   covers the zero-edge fringe; [`Dag] restricts edges to i < j. *)
let build_graph kind n density seed =
  let rng = Prng.Splitmix.create (Int64.of_int (0x5eed + seed)) in
  let g = G.create n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let forward_only = kind = `Dag in
      if i <> j && ((not forward_only) || i < j)
         && Prng.Splitmix.next_float rng < density
      then G.add_edge g ~src:i ~dst:j (0.1 +. (9.9 *. Prng.Splitmix.next_float rng))
    done
  done;
  g

(* Shrink towards small sparse graphs: fewer nodes first (the dominant
   simplification), then lower density, then a smaller seed — so a
   failing case minimizes to a graph a human can draw. *)
let case_shrink (kind, n, d, seed) yield =
  QCheck.Shrink.int n (fun n -> if n >= 1 then yield (kind, n, d, seed));
  List.iter
    (fun d' -> if d' < d then yield (kind, n, d', seed))
    [ 0.; 0.15; 0.3; 0.5 ];
  QCheck.Shrink.int seed (fun seed -> yield (kind, n, d, seed))

let case_arb kinds =
  QCheck.make
    ~print:(fun (kind, n, d, seed) ->
      Printf.sprintf "%s n=%d density=%g seed=%d"
        (match kind with `Dag -> "dag" | `Digraph -> "digraph")
        n d seed)
    ~shrink:case_shrink
    QCheck.Gen.(
      oneofl kinds >>= fun kind ->
      int_range 1 24 >>= fun n ->
      oneofl [ 0.; 0.15; 0.3; 0.5 ] >>= fun d ->
      int_bound 1_000_000 >>= fun seed -> return (kind, n, d, seed))

let property ?(count = 100) name arb f = QCheck.Test.make ~count ~name arb f

(* CSR batch = legacy batch = incoming cut, on DAGs. *)
let dag_three_way =
  property "CSR = legacy = incoming cut (DAGs)" (case_arb [ `Dag ])
    (fun (kind, n, d, seed) ->
      let g = build_graph kind n d seed in
      let csr_v = MF.min_broadcast_flow g ~src:0 in
      let legacy_v = Legacy.min_broadcast_flow g ~src:0 in
      let cut = fst (Flowgraph.Topo.min_incoming_cut g ~src:0) in
      close "csr vs legacy" csr_v legacy_v
      && close "csr vs cut" csr_v cut
      && close "structured vs cut" (MF.broadcast_throughput g ~src:0) cut)

(* CSR = legacy on arbitrary digraphs (cyclic included), for the batch
   minimum and for a single-sink max-flow. *)
let digraph_two_way =
  property "CSR = legacy Dinic (digraphs)" (case_arb [ `Dag; `Digraph ])
    (fun (kind, n, d, seed) ->
      let g = build_graph kind n d seed in
      let csr_v = MF.min_broadcast_flow g ~src:0 in
      let legacy_v = Legacy.min_broadcast_flow g ~src:0 in
      close "batch minimum" csr_v legacy_v
      && (n = 1
         || close "single sink"
              (MF.max_flow g ~src:0 ~dst:(n - 1))
              (Legacy.max_flow g ~src:0 ~dst:(n - 1)))
      && close "structured" (MF.broadcast_throughput g ~src:0) legacy_v)

(* Identical achieves_rate verdicts at rates straddling the optimum. *)
let achieves_verdicts =
  property "achieves_rate verdicts identical" (case_arb [ `Dag; `Digraph ])
    (fun (kind, n, d, seed) ->
      let g = build_graph kind n d seed in
      let t = Legacy.min_broadcast_flow g ~src:0 in
      let rates =
        if t = infinity then [ 0.; 1.; 1e12 ]
        else if t <= 0. then [ 0.; 0.1; 1. ]
        else [ 0.; 0.5 *. t; 0.9 *. t; 1.1 *. t; 2. *. t ]
      in
      List.for_all
        (fun rate ->
          let csr = MF.achieves_rate g ~src:0 ~rate in
          let legacy = Legacy.achieves_rate g ~src:0 ~rate in
          if csr <> legacy then
            QCheck.Test.fail_reportf
              "verdicts differ at rate %g (t = %g): csr %b, legacy %b" rate t
              csr legacy
          else true)
        rates)

(* The repair path reports rate_after through the scheme's memoized
   report — the CSR structured fast path on acyclic overlays. The plain
   generic engine on the patched graph must agree. *)
let repair_rate_agrees_with_plain_flow =
  QCheck.Test.make ~count:40 ~name:"repair rate_after = plain max-flow"
    (QCheck.pair
       (Helpers.instance_arb ~max_open:10 ~max_guarded:6)
       QCheck.(int_range 0 1000))
    (fun (inst, pick) ->
      let t, _ = Broadcast.Greedy.optimal_acyclic inst in
      QCheck.assume (t > 1e-6 && Platform.Instance.size inst > 2);
      let o = Broadcast.Overlay.build ~rate:(t *. 0.7) inst in
      let node = 1 + (pick mod (Platform.Instance.size inst - 1)) in
      let leave, leave_stats = Broadcast.Repair.leave o ~node in
      let join, join_stats =
        Broadcast.Repair.join leave ~bandwidth:(float_of_int (1 + (pick mod 50)))
          ~cls:Platform.Instance.Open
      in
      List.for_all
        (fun (what, o', (stats : Broadcast.Repair.stats)) ->
          let plain =
            MF.min_broadcast_flow (Broadcast.Overlay.graph o') ~src:0
          in
          close (what ^ ": fast path vs plain Dinic")
            stats.Broadcast.Repair.rate_after plain)
        [ ("leave", leave, leave_stats); ("join", join, join_stats) ])

let suites =
  [
    ( "csr-differential",
      List.map QCheck_alcotest.to_alcotest
        [
          dag_three_way; digraph_two_way; achieves_verdicts;
          repair_rate_agrees_with_plain_flow;
        ] );
  ]
