(* Tests for the tracker daemon layer (lib/tracker): request parsing,
   scripted sessions with the deterministic clock, batch coalescing,
   audit rollback, the served-stream == offline-replay byte identity,
   and the transport loop over a real pipe. *)

module Session = Tracker.Session
module Protocol = Tracker.Protocol
module Trace = Churn.Trace

let small_overlay ?(n = 25) ?(headroom = 0.9) seed =
  let rng = Prng.Splitmix.create seed in
  let inst =
    Platform.Generator.generate
      { Platform.Generator.total = n; p_open = 0.7; dist = Prng.Dist.unif100 }
      rng
  in
  let t, _ = Broadcast.Greedy.optimal_acyclic inst in
  Broadcast.Overlay.build ~rate:(t *. headroom) inst

(* Deterministic sessions: zeroed clock, everything else the daemon's
   defaults (Check audit, incremental engine). *)
let config ?(batch = 1) ?(max_line = 4096) () =
  { Session.default_config with Session.batch; max_line; clock = (fun () -> 0.) }

let scheme_bytes o = Broadcast.Scheme.to_json (Broadcast.Overlay.scheme o)

let submit_all session lines =
  List.concat_map (fun line -> Session.submit session line) lines

let field response key =
  (* Responses are flat-ish JSON; pull a member out with the strict
     parser so tests also exercise response well-formedness. *)
  match Flowgraph.Json.parse response with
  | Error msg -> Alcotest.failf "unparseable response %s: %s" response msg
  | Ok v -> Flowgraph.Json.member key v

let str_field response key =
  match field response key with
  | Some (Flowgraph.Json.Str s) -> s
  | _ -> Alcotest.failf "response lacks string %S: %s" key response

let int_field response key =
  match field response key with
  | Some (Flowgraph.Json.Num x) -> int_of_float x
  | _ -> Alcotest.failf "response lacks number %S: %s" key response

(* Request parsing *)

let test_parse_requests () =
  let p line = Protocol.parse_request ~max_line:4096 line in
  (match p "{\"type\": \"query\"}" with
  | Ok Protocol.Query -> ()
  | _ -> Alcotest.fail "query not parsed");
  (match p "{\"type\": \"shutdown\"}" with
  | Ok Protocol.Shutdown -> ()
  | _ -> Alcotest.fail "shutdown not parsed");
  (match p "{\"type\": \"leave\", \"pick\": 7}" with
  | Ok (Protocol.Event (Trace.Leave { pick = 7 })) -> ()
  | _ -> Alcotest.fail "leave not parsed");
  let code line =
    match p line with
    | Error (code, _) -> code
    | Ok _ -> Alcotest.failf "accepted %s" line
  in
  Alcotest.(check string) "not json" "parse" (code "nope");
  Alcotest.(check string) "not an object" "invalid" (code "[1, 2]");
  Alcotest.(check string) "missing type" "invalid" (code "{\"pick\": 1}");
  Alcotest.(check string) "unknown type" "invalid" (code "{\"type\": \"x\"}");
  Alcotest.(check string) "query with extras" "invalid"
    (code "{\"type\": \"query\", \"x\": 1}");
  Alcotest.(check string) "bad domain" "invalid"
    (code "{\"type\": \"leave\", \"pick\": -1}");
  Alcotest.(check string) "non-finite bandwidth" "parse"
    (code "{\"type\": \"join\", \"bandwidth\": 1e999, \"guarded\": false}");
  match Protocol.parse_request ~max_line:8 "{\"type\": \"query\"}" with
  | Error ("oversized", _) -> ()
  | _ -> Alcotest.fail "oversized line accepted"

(* Scripted session *)

let script =
  [
    "{\"type\": \"join\", \"bandwidth\": 25, \"guarded\": false}";
    "{\"type\": \"join\", \"bandwidth\": 12, \"guarded\": true}";
    "{\"type\": \"leave\", \"pick\": 3}";
    "{\"type\": \"query\"}";
    "not json";
    "{\"type\": \"degrade\", \"pick\": 2, \"factor\": 0.5}";
    "{\"type\": \"shutdown\"}";
  ]

let run_script () =
  let session = Session.create (config ()) (small_overlay 42L) in
  (submit_all session script, session)

let test_scripted_session () =
  let responses, session = run_script () in
  Alcotest.(check int) "one response per request" (List.length script)
    (List.length responses);
  List.iteri
    (fun i r ->
      Alcotest.(check int) "seq numbers request lines" (i + 1) (int_field r "seq");
      Alcotest.(check int) "latency zeroed by the deterministic clock" 0
        (int_field r "latency_us");
      Alcotest.(check string) "format tag" "bmp-tracker" (str_field r "format"))
    responses;
  let statuses = List.map (fun r -> str_field r "status") responses in
  Alcotest.(check (list string)) "statuses"
    [ "ok"; "ok"; "ok"; "ok"; "error"; "ok"; "ok" ]
    statuses;
  Alcotest.(check string) "bad line gets a parse error" "parse"
    (str_field (List.nth responses 4) "code");
  let c = Session.counters session in
  Alcotest.(check int) "events committed" 4 c.Session.events;
  Alcotest.(check int) "one error" 1 c.Session.errors;
  Alcotest.(check bool) "session stopped" true (Session.shutting_down session);
  (* Requests after shutdown are refused, with a response. *)
  match Session.submit session "{\"type\": \"query\"}" with
  | [ r ] -> Alcotest.(check string) "refused" "shutdown" (str_field r "code")
  | _ -> Alcotest.fail "post-shutdown request not answered"

let test_scripted_session_deterministic () =
  let r1, _ = run_script () and r2, _ = run_script () in
  Alcotest.(check (list string)) "same script, same bytes" r1 r2

let test_empty_lines_skipped () =
  let session = Session.create (config ()) (small_overlay 42L) in
  Alcotest.(check (list string)) "empty line: no response" []
    (Session.submit session "");
  Alcotest.(check (list string)) "CR-only line: no response" []
    (Session.submit session "\r");
  let rs = Session.submit session "{\"type\": \"query\"}" in
  Alcotest.(check int) "empty lines consumed no seq" 1
    (int_field (List.hd rs) "seq")

(* Batching *)

let test_batch_coalesces_leaves () =
  let session = Session.create (config ~batch:4 ()) (small_overlay 42L) in
  let leaves =
    List.init 4 (fun i ->
        Trace.event_to_json (Trace.Leave { pick = 10 + i }))
  in
  let responses = submit_all session leaves in
  Alcotest.(check int) "all four answered at the flush" 4
    (List.length responses);
  List.iter
    (fun r ->
      Alcotest.(check string) "served as one correlated failure" "fail-batch"
        (str_field r "event");
      Alcotest.(check int) "same batch id" 1 (int_field r "batch"))
    responses;
  let c = Session.counters session in
  Alcotest.(check int) "one engine event" 1 c.Session.events;
  Alcotest.(check int) "one batch" 1 c.Session.batches;
  match (Session.executed session).Trace.events with
  | [| Trace.Fail_batch { picks = [ 10; 11; 12; 13 ] } |] -> ()
  | _ -> Alcotest.fail "committed trace is not the coalesced Fail_batch"

let test_batch_coalesces_joins () =
  let session = Session.create (config ~batch:3 ()) (small_overlay 42L) in
  let joins =
    List.init 3 (fun i ->
        Trace.event_to_json
          (Trace.Join { bandwidth = 10. +. float_of_int i; guarded = i = 1 }))
  in
  let responses = submit_all session joins in
  List.iter
    (fun r ->
      Alcotest.(check string) "served as one flash crowd" "flash-crowd"
        (str_field r "event"))
    responses;
  match (Session.executed session).Trace.events with
  | [| Trace.Flash_crowd { arrivals = [ (10., false); (11., true); (12., false) ] } |]
    -> ()
  | _ -> Alcotest.fail "committed trace is not the coalesced Flash_crowd"

let test_mixed_batch_passes_singletons_through () =
  let session = Session.create (config ~batch:4 ()) (small_overlay 42L) in
  let lines =
    List.map Trace.event_to_json
      [
        Trace.Leave { pick = 1 };
        Trace.Degrade { pick = 2; factor = 0.5 };
        Trace.Leave { pick = 3 };
        Trace.Leave { pick = 4 };
      ]
  in
  let responses = submit_all session lines in
  Alcotest.(check (list string)) "degrade breaks the leave run"
    [ "leave"; "degrade"; "fail-batch"; "fail-batch" ]
    (List.map (fun r -> str_field r "event") responses);
  Alcotest.(check int) "three engine events" 3
    (Session.counters session).Session.events

let test_query_flushes_partial_batch () =
  let session = Session.create (config ~batch:8 ()) (small_overlay 42L) in
  Alcotest.(check (list string)) "mutations queue silently" []
    (submit_all session
       [
         Trace.event_to_json (Trace.Join { bandwidth = 5.; guarded = false });
         Trace.event_to_json (Trace.Join { bandwidth = 6.; guarded = false });
       ]);
  Alcotest.(check int) "two pending" 2 (Session.pending session);
  let rs = Session.submit session "{\"type\": \"query\"}" in
  Alcotest.(check int) "flush responses + query answer" 3 (List.length rs);
  Alcotest.(check int) "queue empty after query" 0 (Session.pending session);
  let query = List.nth rs 2 in
  match field query "query" with
  | Some q ->
    (match Flowgraph.Json.member "events" q with
    | Some (Flowgraph.Json.Num n) ->
      Alcotest.(check int) "query reports the flushed event" 1 (int_of_float n)
    | _ -> Alcotest.fail "query body lacks events")
  | None -> Alcotest.fail "no query body"

(* Population floor, as served *)

let test_floor_skips_leave () =
  (* source + 2 receivers: the engine's floor — leaves cannot apply. *)
  let inst =
    match Platform.Instance.of_string "source 10\nopen 5\nopen 3\n" with
    | Ok i -> fst (Platform.Instance.normalize i)
    | Error e -> Alcotest.fail e
  in
  let t, _ = Broadcast.Greedy.optimal_acyclic inst in
  let overlay = Broadcast.Overlay.build ~rate:(t *. 0.9) inst in
  let session = Session.create (config ()) overlay in
  let rs = Session.submit session (Trace.event_to_json (Trace.Leave { pick = 0 })) in
  Alcotest.(check string) "floor leave answered as skipped" "skipped"
    (str_field (List.hd rs) "action");
  Alcotest.(check int) "population unchanged" 3
    (int_field (List.hd rs) "size")

(* Rollback *)

let test_rollback_on_violation () =
  let overlay = small_overlay 42L in
  let before = scheme_bytes overlay in
  let arm = ref true in
  let probe ~index:_ _ _ =
    if !arm then begin
      arm := false;
      raise (Churn.Audit.Violation { index = 0; what = "probe forced" })
    end
  in
  let session = Session.create ~probe (config ~batch:2 ()) overlay in
  let rs =
    submit_all session
      [
        Trace.event_to_json (Trace.Join { bandwidth = 9.; guarded = false });
        Trace.event_to_json (Trace.Join { bandwidth = 8.; guarded = false });
      ]
  in
  Alcotest.(check int) "both requests answered" 2 (List.length rs);
  List.iter
    (fun r ->
      Alcotest.(check string) "audit error" "audit" (str_field r "code");
      Alcotest.(check string) "error status" "error" (str_field r "status"))
    rs;
  let c = Session.counters session in
  Alcotest.(check int) "one rollback" 1 c.Session.rollbacks;
  Alcotest.(check int) "nothing committed" 0 c.Session.events;
  Alcotest.(check int) "no committed trace" 0
    (Trace.length (Session.executed session));
  Alcotest.(check string) "overlay rolled back to the last good state"
    before
    (scheme_bytes (Session.live session));
  (* The restarted engine keeps serving. *)
  let rs =
    submit_all session
      [
        Trace.event_to_json (Trace.Join { bandwidth = 7.; guarded = false });
        Trace.event_to_json (Trace.Join { bandwidth = 6.; guarded = false });
      ]
  in
  Alcotest.(check (list string)) "post-rollback batch serves"
    [ "ok"; "ok" ]
    (List.map (fun r -> str_field r "status") rs);
  Alcotest.(check int) "post-rollback commit" 1
    (Session.counters session).Session.events

(* Served stream == offline replay *)

let test_served_matches_offline_replay () =
  let overlay = small_overlay 77L in
  let session = Session.create (config ~batch:3 ()) overlay in
  let lines =
    List.map Trace.event_to_json
      [
        Trace.Join { bandwidth = 20.; guarded = false };
        Trace.Join { bandwidth = 15.; guarded = true };
        Trace.Leave { pick = 4 };
        Trace.Leave { pick = 9 };
        Trace.Degrade { pick = 2; factor = 0.5 };
        Trace.Join { bandwidth = 30.; guarded = false };
        Trace.Restore { pick = 2; factor = 0.5 };
        Trace.Leave { pick = 1 };
      ]
  in
  ignore (submit_all session lines);
  ignore (Session.flush session);
  let executed = Session.executed session in
  Alcotest.(check bool) "coalescing shrank the stream" true
    (Trace.length executed < List.length lines);
  let cfg = Session.config session in
  let replay =
    Churn.Engine.run ~policy:cfg.Session.policy ~audit:cfg.Session.audit
      ~engine:cfg.Session.engine
      ?rebuild_headroom:cfg.Session.rebuild_headroom overlay executed
  in
  Alcotest.(check string) "served scheme == offline replay, byte for byte"
    (scheme_bytes replay.Churn.Engine.overlay)
    (scheme_bytes (Session.live session));
  (* And the trace itself survives its own wire format. *)
  match Trace.of_json (Trace.to_json executed) with
  | Ok t ->
    Alcotest.(check string) "executed trace round-trips" (Trace.to_json executed)
      (Trace.to_json t)
  | Error e -> Alcotest.failf "executed trace does not parse: %s" e

(* Transport loop over a real pipe *)

let serve_through_pipe ?(config = config ()) script =
  let overlay = small_overlay 42L in
  let session = Session.create config overlay in
  let r, w = Unix.pipe () in
  let payload = Bytes.of_string script in
  let n = Unix.write w payload 0 (Bytes.length payload) in
  Alcotest.(check int) "script written whole" (Bytes.length payload) n;
  Unix.close w;
  let out_path = Filename.temp_file "tracker_test" ".ndjson" in
  let out = open_out out_path in
  Tracker.Daemon.serve ~window_s:0.005 session ~input:r ~output:out;
  close_out out;
  Unix.close r;
  let ic = open_in out_path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove out_path;
  (List.rev !lines, session)

let test_daemon_pipe_matches_direct_session () =
  let script = String.concat "\n" script ^ "\n" in
  let piped, _ = serve_through_pipe script in
  let direct, _ = run_script () in
  Alcotest.(check (list string)) "daemon == direct session" direct piped

let test_daemon_trailing_line_and_eof () =
  (* No trailing newline and no shutdown: EOF must still drain. *)
  let piped, session =
    serve_through_pipe "{\"type\": \"join\", \"bandwidth\": 5, \"guarded\": false}"
  in
  Alcotest.(check int) "unterminated request answered at EOF" 1
    (List.length piped);
  Alcotest.(check string) "and applied" "join" (str_field (List.hd piped) "event");
  Alcotest.(check int) "committed" 1 (Session.counters session).Session.events

let test_daemon_oversized_line () =
  let cfg = config ~max_line:64 () in
  let big = String.make 4096 'x' in
  let script =
    big ^ "\n{\"type\": \"join\", \"bandwidth\": 5, \"guarded\": false}\n"
  in
  let piped, session = serve_through_pipe ~config:cfg script in
  Alcotest.(check int) "both lines answered" 2 (List.length piped);
  Alcotest.(check string) "oversized error first" "oversized"
    (str_field (List.nth piped 0) "code");
  Alcotest.(check string) "stream recovers after the discard" "join"
    (str_field (List.nth piped 1) "event");
  Alcotest.(check int) "only the join committed" 1
    (Session.counters session).Session.events

(* Sequential multi-client accept loop: one live session outlives its
   clients, so scheme state and the request sequence numbering persist
   across back-to-back connections, and a shutdown request ends the
   daemon rather than just its client. *)
let test_daemon_serve_loop_multiple_clients () =
  let overlay = small_overlay 42L in
  let session = Session.create (config ()) overlay in
  let scripts =
    [
      "{\"type\": \"join\", \"bandwidth\": 9, \"guarded\": false}\n\
       {\"type\": \"query\"}\n";
      "{\"type\": \"query\"}\n{\"type\": \"shutdown\"}\n";
      (* Never served: the shutdown above must end the loop first. *)
      "{\"type\": \"query\"}\n";
    ]
  in
  let remaining = ref scripts in
  let served = ref [] in
  let accept () =
    match !remaining with
    | [] -> None
    | script :: rest ->
      remaining := rest;
      let r, w = Unix.pipe () in
      let payload = Bytes.of_string script in
      Alcotest.(check int) "script written whole" (Bytes.length payload)
        (Unix.write w payload 0 (Bytes.length payload));
      Unix.close w;
      let path = Filename.temp_file "tracker_loop" ".ndjson" in
      let out = open_out path in
      served := path :: !served;
      Some
        ( r,
          out,
          fun () ->
            close_out out;
            Unix.close r )
  in
  Tracker.Daemon.serve_loop ~window_s:0.005 session ~accept;
  let outputs =
    List.rev_map
      (fun path ->
        let ic = open_in path in
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        close_in ic;
        Sys.remove path;
        List.rev !lines)
      !served
  in
  Alcotest.(check int) "shutdown ends the loop after two clients" 1
    (List.length !remaining);
  Alcotest.(check bool) "session shut down" true
    (Session.shutting_down session);
  match outputs with
  | [ first; second ] ->
    Alcotest.(check int) "first client answered in full" 2 (List.length first);
    Alcotest.(check int) "second client answered in full" 2
      (List.length second);
    Alcotest.(check (list int)) "sequence numbering spans connections"
      [ 1; 2; 3; 4 ]
      (List.map (fun r -> int_field r "seq") (first @ second));
    Alcotest.(check string) "join served on the first connection" "join"
      (str_field (List.hd first) "event");
    (* The second client queries the same live scheme the first one
       mutated: the join is visible in its event counter. *)
    (match field (List.hd second) "query" with
    | Some q ->
      (match Flowgraph.Json.member "events" q with
      | Some (Flowgraph.Json.Num n) ->
        Alcotest.(check int) "state persists across connections" 1
          (int_of_float n)
      | _ -> Alcotest.fail "query body lacks events")
    | None -> Alcotest.fail "no query body on the second connection");
    Alcotest.(check int) "one committed event across both clients" 1
      (Session.counters session).Session.events
  | outs -> Alcotest.failf "expected two served clients, got %d" (List.length outs)

let suites =
  [
    ( "tracker",
      [
        Alcotest.test_case "parse requests" `Quick test_parse_requests;
        Alcotest.test_case "scripted session" `Quick test_scripted_session;
        Alcotest.test_case "scripted session deterministic" `Quick
          test_scripted_session_deterministic;
        Alcotest.test_case "empty lines skipped" `Quick test_empty_lines_skipped;
        Alcotest.test_case "batch coalesces leaves" `Quick
          test_batch_coalesces_leaves;
        Alcotest.test_case "batch coalesces joins" `Quick
          test_batch_coalesces_joins;
        Alcotest.test_case "mixed batch keeps singletons" `Quick
          test_mixed_batch_passes_singletons_through;
        Alcotest.test_case "query flushes partial batch" `Quick
          test_query_flushes_partial_batch;
        Alcotest.test_case "population floor served as skip" `Quick
          test_floor_skips_leave;
        Alcotest.test_case "audit violation rolls back" `Quick
          test_rollback_on_violation;
        Alcotest.test_case "served == offline replay" `Quick
          test_served_matches_offline_replay;
        Alcotest.test_case "daemon over a pipe" `Quick
          test_daemon_pipe_matches_direct_session;
        Alcotest.test_case "daemon drains at EOF" `Quick
          test_daemon_trailing_line_and_eof;
        Alcotest.test_case "daemon bounds oversized lines" `Quick
          test_daemon_oversized_line;
        Alcotest.test_case "serve loop: back-to-back clients share state"
          `Quick test_daemon_serve_loop_multiple_clients;
      ] );
  ]
