(* Tests for the fault-injection layer (lib/churn): trace generation and
   persistence, the event engine, self-healing policies, the invariant
   auditor, and the golden bytes of the bmp-trace format. *)

open Platform

let overlay_with_headroom inst headroom =
  let t, _ = Broadcast.Greedy.optimal_acyclic inst in
  Broadcast.Overlay.build ~rate:(t *. headroom) inst

let small_overlay ?(n = 25) ?(headroom = 0.9) seed =
  let rng = Prng.Splitmix.create seed in
  let inst =
    Platform.Generator.generate
      { Platform.Generator.total = n; p_open = 0.7; dist = Prng.Dist.unif100 }
      rng
  in
  (overlay_with_headroom inst headroom, rng)

(* Trace generation *)

let test_gen_deterministic () =
  let t1 = Churn.Trace.gen ~events:80 (Prng.Splitmix.create 5L) in
  let t2 = Churn.Trace.gen ~events:80 (Prng.Splitmix.create 5L) in
  Alcotest.(check string) "same seed, same bytes" (Churn.Trace.to_json t1)
    (Churn.Trace.to_json t2);
  let t3 = Churn.Trace.gen ~events:80 (Prng.Splitmix.create 6L) in
  Alcotest.(check bool) "different seed, different trace" false
    (Churn.Trace.to_json t1 = Churn.Trace.to_json t3)

let test_gen_mix_covers_all_kinds () =
  let t = Churn.Trace.gen ~events:400 (Prng.Splitmix.create 11L) in
  let labels =
    Array.fold_left
      (fun acc e -> Churn.Trace.label e :: acc)
      [] t.Churn.Trace.events
    |> List.sort_uniq compare
  in
  Alcotest.(check (list string))
    "all six kinds appear in 400 events"
    [ "degrade"; "fail-batch"; "flash-crowd"; "join"; "leave"; "restore" ]
    labels

let test_gen_validation () =
  (try
     ignore (Churn.Trace.gen ~events:(-1) (Prng.Splitmix.create 1L));
     Alcotest.fail "negative event count accepted"
   with Invalid_argument _ -> ());
  let bad = { Churn.Trace.default_mix with Churn.Trace.max_batch = 0 } in
  try
    ignore (Churn.Trace.gen ~mix:bad ~events:1 (Prng.Splitmix.create 1L));
    Alcotest.fail "max_batch = 0 accepted"
  with Invalid_argument _ -> ()

(* Persistence *)

let test_json_roundtrip () =
  let t = Churn.Trace.gen ~events:120 (Prng.Splitmix.create 77L) in
  let js = Churn.Trace.to_json t in
  match Churn.Trace.of_json js with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok t' ->
    Alcotest.(check int) "length kept" (Churn.Trace.length t)
      (Churn.Trace.length t');
    Alcotest.(check string) "canonical bytes" js (Churn.Trace.to_json t')

let expect_error what text =
  match Churn.Trace.of_json text with
  | Ok _ -> Alcotest.failf "%s: accepted" what
  | Error _ -> ()

let test_json_strict () =
  expect_error "unknown top-level field"
    {|{"format": "bmp-trace", "version": 1, "events": [], "extra": 0}|};
  expect_error "wrong format tag"
    {|{"format": "bmp-scheme", "version": 1, "events": []}|};
  expect_error "unsupported version"
    {|{"format": "bmp-trace", "version": 2, "events": []}|};
  expect_error "unknown event type"
    {|{"format": "bmp-trace", "version": 1, "events": [{"type": "reboot"}]}|};
  expect_error "unknown event field"
    {|{"format": "bmp-trace", "version": 1, "events": [{"type": "leave", "pick": 1, "x": 2}]}|};
  expect_error "negative pick"
    {|{"format": "bmp-trace", "version": 1, "events": [{"type": "leave", "pick": -1}]}|};
  expect_error "factor above 1"
    {|{"format": "bmp-trace", "version": 1, "events": [{"type": "degrade", "pick": 0, "factor": 1.5}]}|};
  expect_error "factor zero"
    {|{"format": "bmp-trace", "version": 1, "events": [{"type": "restore", "pick": 0, "factor": 0}]}|};
  expect_error "negative bandwidth"
    {|{"format": "bmp-trace", "version": 1, "events": [{"type": "join", "bandwidth": -3, "guarded": false}]}|};
  expect_error "empty batch"
    {|{"format": "bmp-trace", "version": 1, "events": [{"type": "fail-batch", "picks": []}]}|};
  expect_error "empty flash crowd"
    {|{"format": "bmp-trace", "version": 1, "events": [{"type": "flash-crowd", "arrivals": []}]}|};
  match
    Churn.Trace.of_json
      {|{"format": "bmp-trace", "version": 1, "events": [{"type": "leave", "pick": 3}]}|}
  with
  | Ok t -> Alcotest.(check int) "minimal trace loads" 1 (Churn.Trace.length t)
  | Error e -> Alcotest.failf "minimal trace rejected: %s" e

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_json_golden () =
  (* The trace format is pinned byte-for-byte: any encoding change must
     bump Trace.format_version and regenerate the golden file with
     `dune exec test/gen_golden.exe -- trace`. *)
  let golden = read_file "golden/churn_trace.json" in
  let trace = Churn.Trace.gen ~events:12 (Prng.Splitmix.create 2024L) in
  Alcotest.(check string) "golden bytes" golden (Churn.Trace.to_json trace ^ "\n");
  match Churn.Trace.of_json golden with
  | Ok t -> Alcotest.(check string) "golden re-parses canonically" golden
              (Churn.Trace.to_json t ^ "\n")
  | Error e -> Alcotest.failf "golden trace rejected: %s" e

(* Engine *)

let test_engine_deterministic () =
  let run () =
    let o, rng = small_overlay 31L in
    let trace = Churn.Trace.gen ~events:60 rng in
    let r =
      Churn.Engine.run ~policy:Churn.Policy.adaptive_default
        ~audit:Churn.Audit.Check ~rebuild_headroom:0.8 o trace
    in
    let s = r.Churn.Engine.summary in
    Printf.sprintf "%d/%d/%d/%.12g/%.12g" s.Churn.Engine.rebuilds
      s.Churn.Engine.total_churn s.Churn.Engine.final_size
      s.Churn.Engine.final_rate s.Churn.Engine.min_ratio
  in
  Alcotest.(check string) "replay is reproducible" (run ()) (run ())

let test_engine_summary_coherent () =
  let o, rng = small_overlay 17L in
  let trace = Churn.Trace.gen ~events:50 rng in
  let r = Churn.Engine.run ~audit:Churn.Audit.Strict o trace in
  let s = r.Churn.Engine.summary in
  Alcotest.(check int) "applied + skipped = events" s.Churn.Engine.events
    (s.Churn.Engine.applied + s.Churn.Engine.skipped);
  Alcotest.(check int) "timeline covers the trace" s.Churn.Engine.events
    (List.length r.Churn.Engine.timeline);
  Alcotest.(check bool) "min <= mean" true
    (s.Churn.Engine.min_ratio <= s.Churn.Engine.mean_ratio +. 1e-9);
  Alcotest.(check bool) "final overlay well-formed" true
    (Broadcast.Overlay.well_formed r.Churn.Engine.overlay);
  let last = List.nth r.Churn.Engine.timeline (s.Churn.Engine.events - 1) in
  Alcotest.(check int) "cumulative churn matches summary"
    s.Churn.Engine.total_churn last.Churn.Engine.cumulative_churn

let test_policy_extremes () =
  let trace_of rng = Churn.Trace.gen ~events:40 rng in
  let o, rng = small_overlay 23L in
  let trace = trace_of rng in
  let patch =
    (Churn.Engine.run ~policy:Churn.Policy.Always_patch ~audit:Churn.Audit.Check
       o trace)
      .Churn.Engine.summary
  in
  let rebuild =
    (Churn.Engine.run ~policy:Churn.Policy.Always_rebuild
       ~audit:Churn.Audit.Check ~rebuild_headroom:0.8 o trace)
      .Churn.Engine.summary
  in
  let adaptive =
    (Churn.Engine.run ~policy:Churn.Policy.adaptive_default
       ~audit:Churn.Audit.Check ~rebuild_headroom:0.8 o trace)
      .Churn.Engine.summary
  in
  Alcotest.(check int) "always-patch never rebuilds" 0 patch.Churn.Engine.rebuilds;
  Alcotest.(check int) "always-rebuild rebuilds every applied event"
    rebuild.Churn.Engine.applied rebuild.Churn.Engine.rebuilds;
  Alcotest.(check bool) "adaptive rebuilds less than always-rebuild" true
    (adaptive.Churn.Engine.rebuilds < rebuild.Churn.Engine.rebuilds);
  Alcotest.(check bool) "adaptive holds more rate than always-patch" true
    (adaptive.Churn.Engine.min_ratio >= patch.Churn.Engine.min_ratio);
  Alcotest.(check bool) "adaptive churns less than always-rebuild" true
    (adaptive.Churn.Engine.total_churn < rebuild.Churn.Engine.total_churn)

let test_audit_catches_corruption () =
  (* Hand the engine a corrupted overlay: an order that lists a backward
     edge. The auditor must name the offending event. *)
  let o, _ = small_overlay 41L in
  let order = Array.copy (Broadcast.Overlay.order o) in
  let tmp = order.(1) in
  order.(1) <- order.(Array.length order - 1);
  order.(Array.length order - 1) <- tmp;
  let corrupted = Broadcast.Overlay.of_scheme (Broadcast.Overlay.scheme o) ~order in
  match Churn.Audit.check Churn.Audit.Check ~index:7 corrupted with
  | () -> Alcotest.fail "auditor accepted a backward order"
  | exception Churn.Audit.Violation { index; what = _ } ->
    Alcotest.(check int) "violation carries the event index" 7 index

let test_degrade_restore_cancel () =
  let o, _ = small_overlay 51L in
  let inst = Broadcast.Overlay.instance o in
  let node = Instance.size inst - 1 in
  let b = inst.Instance.bandwidth.(node) in
  let o1, s1 = Broadcast.Repair.degrade o ~node ~bandwidth:(b *. 0.4) in
  Alcotest.(check bool) "degrade is a repair" true
    (s1.Broadcast.Repair.patch_edges >= 0);
  (* The degraded node may sit elsewhere after the class re-sort; find a
     node carrying the degraded bandwidth and restore it. *)
  let inst1 = Broadcast.Overlay.instance o1 in
  let node1 =
    let target = b *. 0.4 in
    let found = ref (-1) in
    Array.iteri
      (fun v bv ->
        if !found < 0 && v > 0 && Float.abs (bv -. target) <= 1e-9 *. Float.max 1. target
        then found := v)
      inst1.Instance.bandwidth;
    !found
  in
  Alcotest.(check bool) "degraded node present" true (node1 >= 0);
  let o2, s2 = Broadcast.Repair.restore o1 ~node:node1 ~bandwidth:b in
  Alcotest.(check bool) "well formed after restore" true
    (Broadcast.Overlay.well_formed o2);
  Alcotest.(check bool) "restore recovers the rate" true
    (s2.Broadcast.Repair.rate_after >= s1.Broadcast.Repair.rate_after -. 1e-9)

let test_leave_batch_matches_engine () =
  let o, _ = small_overlay 61L in
  let size = Instance.size (Broadcast.Overlay.instance o) in
  let nodes = [ 1; size / 2; size - 1 ] |> List.sort_uniq compare in
  let o', stats = Broadcast.Repair.leave_batch o ~nodes in
  Alcotest.(check int) "all casualties removed"
    (size - List.length nodes)
    (Instance.size (Broadcast.Overlay.instance o'));
  Alcotest.(check bool) "well formed" true (Broadcast.Overlay.well_formed o');
  Alcotest.(check bool) "rate measured" true
    (stats.Broadcast.Repair.rate_after >= 0.)

(* Satellite: a join on a saturated overlay (zero headroom) must admit the
   newcomer at rate 0 and report it as starved — never raise. *)
let test_join_saturated_regression () =
  let o = overlay_with_headroom Instance.fig1 1.0 in
  let o', stats = Broadcast.Repair.join o ~bandwidth:3. ~cls:Instance.Open in
  Alcotest.(check bool) "well formed" true (Broadcast.Overlay.well_formed o');
  Alcotest.(check bool) "newcomer reported starved" true
    (stats.Broadcast.Repair.starved <> []);
  Alcotest.(check bool) "rate drops below the target (newcomer underfed)" true
    (stats.Broadcast.Repair.rate_after < Broadcast.Overlay.rate o -. 1e-6);
  (* The engine rides through the same event, audited. *)
  let trace =
    { Churn.Trace.events = [| Churn.Trace.Join { bandwidth = 3.; guarded = false } |] }
  in
  let r = Churn.Engine.run ~audit:Churn.Audit.Strict o trace in
  Alcotest.(check int) "event applied, not skipped" 1
    r.Churn.Engine.summary.Churn.Engine.applied

(* Satellite regression: a join right after a batch failure drove the
   population to the engine's floor must see the post-failure topology,
   never a stale one. The repair path itself cannot go stale — every
   repair materializes a fresh Scheme whose snapshot is frozen at
   construction — so the one hazard is aliasing: [Scheme.graph] used to
   hand out the memoized mutable view, and a caller scribbling on it
   would silently diverge from the frozen snapshot that [join]'s
   capacity scan and the auditor both read. [Scheme.graph] now returns a
   copy; this pins both halves. *)
let test_join_after_floor_batch_not_stale () =
  let o, _ = small_overlay ~n:8 73L in
  let size = Instance.size (Broadcast.Overlay.instance o) in
  (* Fail everything down to the floor: source plus two survivors. *)
  let nodes = List.init (size - 3) (fun i -> i + 1) in
  let o1, _ = Broadcast.Repair.leave_batch o ~nodes in
  Alcotest.(check int) "at the floor" 3
    (Broadcast.Scheme.size (Broadcast.Overlay.scheme o1));
  (* Scribble on the graph view of the floored overlay before joining:
     with an aliased view this would corrupt the capacity scan below. *)
  let view = Broadcast.Scheme.graph (Broadcast.Overlay.scheme o1) in
  Flowgraph.Graph.set_edge view ~src:0 ~dst:1 0.;
  Flowgraph.Graph.set_edge view ~src:0 ~dst:2 0.;
  let snap = Broadcast.Scheme.snapshot (Broadcast.Overlay.scheme o1) in
  Alcotest.(check bool) "snapshot untouched by view mutation" true
    (Flowgraph.Csr.out_weight snap 0 > 0.);
  let o2, stats = Broadcast.Repair.join o1 ~bandwidth:5. ~cls:Instance.Open in
  Alcotest.(check bool) "well formed after floor join" true
    (Broadcast.Overlay.well_formed o2);
  Alcotest.(check int) "population grew off the floor" 4
    (Broadcast.Scheme.size (Broadcast.Overlay.scheme o2));
  (* The join's reported rate must agree with an independent re-check of
     the post-join artifact — the two diverge if any cached state from
     before the batch failure leaked into the join. *)
  let report = Broadcast.Scheme.report (Broadcast.Overlay.scheme o2) in
  Alcotest.(check bool) "reported rate matches fresh verification" true
    (Float.abs
       (stats.Broadcast.Repair.rate_after
       -. report.Broadcast.Verify.throughput)
    <= Broadcast.Verify.flow_slack report.Broadcast.Verify.throughput);
  (* The engine rides the same cliff audited, with the warm flow state
     crossing the floor event by event. *)
  let events =
    [|
      Churn.Trace.Fail_batch { picks = List.init (size - 3) (fun i -> i) };
      Churn.Trace.Join { bandwidth = 5.; guarded = false };
    |]
  in
  let r =
    Churn.Engine.run ~audit:Churn.Audit.Strict ~engine:Churn.Audit.Incremental
      o { Churn.Trace.events }
  in
  Alcotest.(check int) "both events applied" 2
    r.Churn.Engine.summary.Churn.Engine.applied

(* Population-floor semantics, pinned as regressions. A trace that
   would drain the platform completely must stall at the floor — the
   source plus two receivers — with every surplus leave recorded as
   [Skipped] and the strict auditor green throughout. *)
let test_drain_trace_stalls_at_floor () =
  let o, _ = small_overlay ~n:8 83L in
  let size = Broadcast.Scheme.size (Broadcast.Overlay.scheme o) in
  let events =
    Array.init (2 * size) (fun i -> Churn.Trace.Leave { pick = 3 + (5 * i) })
  in
  let r =
    Churn.Engine.run ~audit:Churn.Audit.Strict ~engine:Churn.Audit.Incremental o
      { Churn.Trace.events }
  in
  Alcotest.(check int) "population stalls at the floor" 3
    (Broadcast.Scheme.size (Broadcast.Overlay.scheme r.Churn.Engine.overlay));
  Alcotest.(check int) "exactly size - 3 leaves applied" (size - 3)
    r.Churn.Engine.summary.Churn.Engine.applied;
  Alcotest.(check int) "the surplus is skipped, not dropped"
    ((2 * size) - (size - 3))
    r.Churn.Engine.summary.Churn.Engine.skipped;
  List.iter
    (fun (rec_ : Churn.Engine.record) ->
      if rec_.Churn.Engine.size < 3 then
        Alcotest.failf "event %d dipped below the floor" rec_.Churn.Engine.index;
      if rec_.Churn.Engine.index >= size - 3 then
        Alcotest.(check bool) "floored leave is skipped" true
          (rec_.Churn.Engine.action = Churn.Engine.Skipped))
    r.Churn.Engine.timeline;
  Alcotest.(check bool) "well formed at the floor" true
    (Broadcast.Overlay.well_formed r.Churn.Engine.overlay)

(* A correlated failure whose casualty list straddles the floor is
   trimmed, not refused: the engine applies exactly the picks that keep
   three survivors and drops the rest of the batch on the ground. *)
let test_fail_batch_straddles_floor () =
  let o, _ = small_overlay ~n:8 97L in
  let size = Broadcast.Scheme.size (Broadcast.Overlay.scheme o) in
  (* Twice as many picks as the platform can afford to lose. *)
  let events =
    [| Churn.Trace.Fail_batch { picks = List.init (2 * size) (fun i -> i) } |]
  in
  let r =
    Churn.Engine.run ~audit:Churn.Audit.Strict ~engine:Churn.Audit.Incremental o
      { Churn.Trace.events }
  in
  Alcotest.(check int) "batch trimmed to the floor" 3
    (Broadcast.Scheme.size (Broadcast.Overlay.scheme r.Churn.Engine.overlay));
  Alcotest.(check int) "the trimmed batch still applies" 1
    r.Churn.Engine.summary.Churn.Engine.applied;
  Alcotest.(check bool) "well formed after the straddling batch" true
    (Broadcast.Overlay.well_formed r.Churn.Engine.overlay);
  (* At the floor a further batch has no casualty budget at all, so the
     whole event is skipped rather than partially applied. *)
  let r2 =
    Churn.Engine.run ~audit:Churn.Audit.Strict r.Churn.Engine.overlay
      { Churn.Trace.events = [| Churn.Trace.Fail_batch { picks = [ 1; 2; 3 ] } |] }
  in
  Alcotest.(check int) "batch at the floor is skipped" 1
    r2.Churn.Engine.summary.Churn.Engine.skipped;
  Alcotest.(check int) "population unchanged at the floor" 3
    (Broadcast.Scheme.size (Broadcast.Overlay.scheme r2.Churn.Engine.overlay))

(* Satellite property: random interleaved event sequences keep every
   invariant at every step — the strict auditor IS the assertion. *)
let prop_engine_invariants =
  QCheck.Test.make ~name:"100-event traces sustain all invariants (strict audit)"
    ~count:10
    (QCheck.pair QCheck.(int_range 1 1_000_000) QCheck.bool)
    (fun (seed, adaptive) ->
      let o, rng = small_overlay ~n:15 (Int64.of_int seed) in
      let trace = Churn.Trace.gen ~events:100 rng in
      let policy =
        if adaptive then Churn.Policy.adaptive_default else Churn.Policy.Always_patch
      in
      let r =
        Churn.Engine.run ~policy ~audit:Churn.Audit.Strict ~rebuild_headroom:0.8
          o trace
      in
      List.for_all
        (fun (rec_ : Churn.Engine.record) ->
          rec_.Churn.Engine.ratio <= 1. +. 1e-6
          && rec_.Churn.Engine.rate >= 0.
          && rec_.Churn.Engine.size >= 3)
        r.Churn.Engine.timeline
      && Broadcast.Overlay.well_formed r.Churn.Engine.overlay)

(* Tentpole differential: the certificate-trusting audit must be
   indistinguishable from Strict — same verdict, same timeline, same
   summary — on random platform/trace pairs, across both engines and
   backstop cadences. Shrinking (helpers.ml) minimizes any divergence to
   the few events that matter. *)
let prop_certificate_matches_strict =
  QCheck.Test.make
    ~name:"certificate audit == strict: verdict, timeline and summary"
    ~count:300
    (QCheck.pair
       (Helpers.instance_arb ~max_open:8 ~max_guarded:4)
       (Helpers.trace_arb ~events:25 ()))
    (fun (inst, trace) ->
      let overlay = overlay_with_headroom inst 0.9 in
      let run audit engine =
        match
          Churn.Engine.run ~policy:Churn.Policy.adaptive_default ~audit ~engine
            ~rebuild_headroom:0.8 overlay trace
        with
        | r -> Ok (r.Churn.Engine.timeline, r.Churn.Engine.summary)
        | exception Churn.Audit.Violation { index; what = _ } -> Error index
      in
      let reference = run Churn.Audit.Strict Churn.Audit.Full in
      List.for_all
        (fun (audit, engine) -> run audit engine = reference)
        [
          (Churn.Audit.Strict, Churn.Audit.Incremental);
          (Churn.Audit.Certificate { strict_every = 0 }, Churn.Audit.Full);
          ( Churn.Audit.Certificate { strict_every = 0 },
            Churn.Audit.Incremental );
          ( Churn.Audit.Certificate { strict_every = 3 },
            Churn.Audit.Incremental );
        ])

(* The certificate's trust boundary, pinned on a hand-corrupted overlay:
   a backward edge (a cycle seed) out of a row the delta names is caught
   by the delta-scoped acyclicity check; the same corruption behind a
   delta that claims the row untouched is — by design — trusted by the
   certificate and only caught by the Strict backstop or a full Check. *)
let test_certificate_delta_scoped_acyclicity () =
  let o, _ = small_overlay 41L in
  let order = Array.copy (Broadcast.Overlay.order o) in
  let tmp = order.(1) in
  order.(1) <- order.(Array.length order - 1);
  order.(Array.length order - 1) <- tmp;
  let corrupted =
    Broadcast.Overlay.of_scheme (Broadcast.Overlay.scheme o) ~order
  in
  (* Find a row whose out-edges now go backward in the corrupted order. *)
  let pos = Broadcast.Overlay.positions corrupted in
  let csr = Broadcast.Scheme.snapshot (Broadcast.Overlay.scheme corrupted) in
  let bad = ref (-1) in
  Flowgraph.Csr.iter_edges
    (fun ~src ~dst _ -> if !bad < 0 && pos.(src) >= pos.(dst) then bad := src)
    csr;
  Alcotest.(check bool) "corruption produced a backward edge" true (!bad >= 0);
  let size = Broadcast.Scheme.size (Broadcast.Overlay.scheme corrupted) in
  let stats_with touched =
    {
      Broadcast.Repair.patch_edges = 0;
      rebuild_edges = 0;
      rate_after = Broadcast.Overlay.verified_rate corrupted;
      optimal_after = infinity;
      starved = [];
      node_map = Array.init size (fun v -> v);
      delta =
        {
          Broadcast.Repair.full = false;
          identity = true;
          touched;
          added = [||];
          removed = [||];
          reweighted = [||];
        };
    }
  in
  let cert = Churn.Audit.Certificate { strict_every = 0 } in
  (match
     Churn.Audit.check cert ~index:5 ~stats:(stats_with [| !bad |]) corrupted
   with
  | () -> Alcotest.fail "certificate accepted a backward edge on a touched row"
  | exception Churn.Audit.Violation { index; what } ->
    Alcotest.(check int) "violation carries the event index" 5 index;
    Alcotest.(check bool) "names the backward edge" true
      (let contains s sub =
         let n = String.length s and m = String.length sub in
         let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
         go 0
       in
       contains what "backward"));
  (* A lying delta is trusted — that is the certificate's contract... *)
  (match
     Churn.Audit.check cert ~index:5 ~stats:(stats_with [||]) corrupted
   with
  | () -> ()
  | exception Churn.Audit.Violation _ ->
    Alcotest.fail "certificate did not trust an untouched-claiming delta");
  (* ...and both the full Check scan and the Strict backstop catch what
     the trusting fast path cannot see. *)
  (match Churn.Audit.check Churn.Audit.Check ~index:5 corrupted with
  | () -> Alcotest.fail "full check missed the backward edge"
  | exception Churn.Audit.Violation _ -> ());
  match
    Churn.Audit.check
      (Churn.Audit.Certificate { strict_every = 5 })
      ~index:5 ~stats:(stats_with [||]) corrupted
  with
  | () -> Alcotest.fail "strict backstop missed the backward edge"
  | exception Churn.Audit.Violation _ -> ()

(* Experiment acceptance: the adaptive policy strictly beats always-patch
   on worst-case throughput at a fraction of always-rebuild's churn. *)
let test_policy_comparison_acceptance () =
  let rows = Experiments.Churn_policies.compare_policies ~jobs:2 () in
  let find p =
    List.find (fun (r : Experiments.Churn_policies.row) -> r.policy = p) rows
  in
  let patch = find Churn.Policy.Always_patch in
  let rebuild = find Churn.Policy.Always_rebuild in
  let adaptive =
    List.find
      (fun (r : Experiments.Churn_policies.row) ->
        match r.policy with Churn.Policy.Adaptive _ -> true | _ -> false)
      rows
  in
  Alcotest.(check bool) "adaptive min ratio strictly beats always-patch" true
    (adaptive.min_ratio > patch.min_ratio);
  Alcotest.(check bool) "adaptive churn within 25% of always-rebuild" true
    (float_of_int adaptive.total_churn
    <= 0.25 *. float_of_int rebuild.total_churn)

let suites =
  [
    ( "churn trace",
      [
        Alcotest.test_case "seeded generation is deterministic" `Quick
          test_gen_deterministic;
        Alcotest.test_case "default mix covers all event kinds" `Quick
          test_gen_mix_covers_all_kinds;
        Alcotest.test_case "generation validation" `Quick test_gen_validation;
        Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "strict reader rejections" `Quick test_json_strict;
        Alcotest.test_case "json golden bytes" `Quick test_json_golden;
      ] );
    ( "churn engine",
      [
        Alcotest.test_case "replay deterministic" `Quick test_engine_deterministic;
        Alcotest.test_case "summary coherent" `Quick test_engine_summary_coherent;
        Alcotest.test_case "policy extremes" `Quick test_policy_extremes;
        Alcotest.test_case "auditor catches corruption" `Quick
          test_audit_catches_corruption;
        Alcotest.test_case "degrade/restore cancel" `Quick
          test_degrade_restore_cancel;
        Alcotest.test_case "correlated batch failure" `Quick
          test_leave_batch_matches_engine;
        Alcotest.test_case "join after floor batch sees fresh state" `Quick
          test_join_after_floor_batch_not_stale;
        Alcotest.test_case "draining trace stalls at the floor" `Quick
          test_drain_trace_stalls_at_floor;
        Alcotest.test_case "fail batch straddling the floor is trimmed" `Quick
          test_fail_batch_straddles_floor;
        Alcotest.test_case "saturated join admits at rate 0" `Quick
          test_join_saturated_regression;
        Alcotest.test_case "policy comparison acceptance" `Slow
          test_policy_comparison_acceptance;
        Alcotest.test_case "certificate delta-scoped acyclicity + trust boundary"
          `Quick test_certificate_delta_scoped_acyclicity;
        QCheck_alcotest.to_alcotest prop_engine_invariants;
        QCheck_alcotest.to_alcotest prop_certificate_matches_strict;
      ] );
  ]
