(* Tests for the flat-arena streaming dataplane: the event heap's
   ordering and recycling contracts, bit-exact differential equality
   against the Massoulie.Sim reference on every mode combination, the
   rate-convergence property the ISSUE gates on, and byte-determinism
   of the metrics JSON when sweep cells shard through Parallel.Pool. *)

module G = Flowgraph.Graph
module D = Stream.Dataplane
module Sim = Massoulie.Sim

(* {2 Event heap} *)

let drain h =
  let rec go acc =
    if Stream.Eheap.pop h then
      go ((Stream.Eheap.popped_time h, Stream.Eheap.popped_payload h) :: acc)
    else List.rev acc
  in
  go []

let test_eheap_order () =
  let h = Stream.Eheap.create ~capacity:4 () in
  Alcotest.(check bool) "empty" true (Stream.Eheap.is_empty h);
  List.iteri
    (fun i k -> Stream.Eheap.add h k i)
    [ 5.; 1.; 3.; 2.; 4.; 0.5; 2.5 ];
  Alcotest.(check int) "size" 7 (Stream.Eheap.size h);
  Alcotest.(check (option (float 0.))) "peek" (Some 0.5)
    (Stream.Eheap.peek_time h);
  Alcotest.(check (list (float 0.))) "sorted drain"
    [ 0.5; 1.; 2.; 2.5; 3.; 4.; 5. ]
    (List.map fst (drain h));
  Alcotest.(check bool) "drained" true (Stream.Eheap.is_empty h)

let test_eheap_fifo_ties () =
  (* Equal keys pop in insertion order — the determinism contract the
     differential oracle rests on. *)
  let h = Stream.Eheap.create () in
  for p = 0 to 9 do
    Stream.Eheap.add h 7. p
  done;
  Stream.Eheap.add h 3. 100;
  Alcotest.(check (list (pair (float 0.) int))) "FIFO among ties"
    ((3., 100) :: List.init 10 (fun p -> (7., p)))
    (drain h)

let test_eheap_freelist_recycles () =
  (* Interleaved add/pop far beyond the initial capacity must never
     grow the arena: pops recycle ids through the free-list. *)
  let h = Stream.Eheap.create ~capacity:4 () in
  for round = 0 to 999 do
    Stream.Eheap.add h (float_of_int round) round;
    Stream.Eheap.add h (float_of_int (10_000 + round)) (-round);
    Alcotest.(check bool) "pop" true (Stream.Eheap.pop h);
    Alcotest.(check int) "oldest first" round (Stream.Eheap.popped_payload h)
  done;
  (* 1000 leftovers (the far-future events): the arena did grow, but
     pops after heavy recycling still drain in order. *)
  Alcotest.(check int) "leftovers" 1000 (Stream.Eheap.size h);
  let times = List.map fst (drain h) in
  Alcotest.(check (list (float 0.))) "still sorted" (List.sort compare times)
    times

(* {2 Differential oracle: Dataplane(Oracle_reservoir) == Sim} *)

let small_instance ~n ~seed =
  let rng = Prng.Splitmix.create seed in
  Platform.Generator.generate
    { Platform.Generator.total = n; p_open = 0.4;
      dist = Prng.Dist.Uniform { lo = 1.; hi = 10. } }
    rng

let check_oracle_equal name (sc : Sim.config) (dc : D.config) g csr ~rate =
  let a = Sim.simulate ~config:sc g ~rate in
  let b = D.run ~config:dc csr ~rate in
  Alcotest.(check (float 0.))
    (name ^ ": completion bit-identical")
    a.Sim.completion_time b.D.completion_time;
  Alcotest.(check (array (float 0.)))
    (name ^ ": per-node completions bit-identical")
    a.Sim.per_node_completion b.D.per_node_completion;
  Alcotest.(check int) (name ^ ": transfers") a.Sim.transfers b.D.transfers;
  Alcotest.(check int) (name ^ ": duplicates") a.Sim.duplicates b.D.duplicates;
  Alcotest.(check (float 0.)) (name ^ ": max_lag") a.Sim.max_lag b.D.max_lag

let test_oracle_differential () =
  let inst = small_instance ~n:24 ~seed:99L in
  let rate, scheme = Broadcast.Low_degree.build_optimal inst in
  let g = Broadcast.Scheme.graph scheme in
  let csr = Broadcast.Scheme.snapshot scheme in
  let sc = { Sim.default_config with chunks = 120 } in
  let dc = { D.default_config with chunks = 120; discipline = D.Oracle_reservoir } in
  check_oracle_equal "file-dedup" sc dc g csr ~rate;
  check_oracle_equal "file-nodedup"
    { sc with dedup_inflight = false }
    { dc with dedup_inflight = false }
    g csr ~rate;
  check_oracle_equal "stream-dedup" { sc with streaming = true }
    { dc with streaming = true } g csr ~rate;
  check_oracle_equal "stream-jitter"
    { sc with streaming = true; jitter = 0.3; dedup_inflight = false }
    { dc with streaming = true; jitter = 0.3; dedup_inflight = false }
    g csr ~rate;
  check_oracle_equal "file-jitter" { sc with jitter = 0.15 }
    { dc with jitter = 0.15 } g csr ~rate

let test_oracle_differential_fig1 () =
  let rate, scheme = Broadcast.Low_degree.build_optimal Platform.Instance.fig1 in
  let g = Broadcast.Scheme.graph scheme in
  let csr = Broadcast.Scheme.snapshot scheme in
  check_oracle_equal "fig1"
    { Sim.default_config with chunks = 300 }
    { D.default_config with chunks = 300; discipline = D.Oracle_reservoir }
    g csr ~rate

(* {2 Dataplane behaviour on its own} *)

let fig1_snapshot () =
  let rate, scheme = Broadcast.Low_degree.build_optimal Platform.Instance.fig1 in
  (rate, Broadcast.Scheme.snapshot scheme)

let test_delivers_fig1 () =
  let rate, csr = fig1_snapshot () in
  let r = D.run ~config:{ D.default_config with chunks = 300 } csr ~rate in
  Alcotest.(check bool) "delivered" true r.D.delivered_all;
  Alcotest.(check int) "transfer count" (300 * 5) r.D.transfers;
  Alcotest.(check int) "no duplicates with dedup" 0 r.D.duplicates;
  Alcotest.(check bool) "efficiency sane" true
    (r.D.efficiency > 0.8 && r.D.efficiency <= 1.0 +. 1e-9);
  Alcotest.(check bool) "queues were used" true (r.D.peak_queue > 0);
  Alcotest.(check bool) "startup before completion" true
    (r.D.startup.D.max <= r.D.completion_time)

let test_disciplines_deliver () =
  let rate, csr = fig1_snapshot () in
  List.iter
    (fun discipline ->
      let r =
        D.run ~config:{ D.default_config with chunks = 128; discipline } csr ~rate
      in
      Alcotest.(check bool)
        (D.discipline_name discipline ^ " delivered")
        true r.D.delivered_all)
    [ D.Random_useful; D.Oracle_reservoir; D.Serve_in_order ]

let test_inorder_deterministic () =
  (* Serve_in_order consumes no randomness: any seed, same trajectory. *)
  let rate, csr = fig1_snapshot () in
  let run seed =
    D.run
      ~config:
        { D.default_config with chunks = 100; discipline = D.Serve_in_order; seed }
      csr ~rate
  in
  let a = run 1L and b = run 424242L in
  Alcotest.(check (float 0.)) "seed-independent" a.D.completion_time
    b.D.completion_time;
  Alcotest.(check int) "same transfers" a.D.transfers b.D.transfers

let test_dedup_off_duplicates () =
  let g = G.create 4 in
  G.add_edge g ~src:0 ~dst:1 10.;
  G.add_edge g ~src:0 ~dst:2 10.;
  G.add_edge g ~src:1 ~dst:2 0.5;
  G.add_edge g ~src:2 ~dst:3 10.;
  let csr = Flowgraph.Csr.of_graph g in
  let r =
    D.run
      ~config:{ D.default_config with chunks = 200; dedup_inflight = false }
      csr ~rate:10.
  in
  Alcotest.(check bool) "delivered" true r.D.delivered_all;
  Alcotest.(check bool) "some duplicates" true (r.D.duplicates > 0)

let test_undelivered_dead_overlay () =
  let g = G.create 3 in
  G.add_edge g ~src:0 ~dst:1 1.;
  let csr = Flowgraph.Csr.of_graph g in
  let r = D.run ~config:{ D.default_config with chunks = 10 } csr ~rate:1. in
  Alcotest.(check bool) "not delivered" false r.D.delivered_all;
  Alcotest.(check bool) "completion infinite" true
    (r.D.completion_time = infinity);
  Alcotest.(check (float 0.)) "achieved rate zero" 0. r.D.achieved_rate

(* {2 Rate convergence (ISSUE gate): achieved_rate -> verified rate} *)

let prop_rate_convergence =
  QCheck.Test.make ~name:"achieved rate converges to verified rate" ~count:15
    QCheck.(pair (int_range 6 18) (int_range 0 10_000))
    (fun (n, seed) ->
      let inst = small_instance ~n ~seed:(Int64.of_int (7 + seed)) in
      let rate, scheme = Broadcast.Low_degree.build_optimal inst in
      QCheck.assume (rate > 1e-9);
      let csr = Broadcast.Scheme.snapshot scheme in
      (* dedup off: a sliver in-arc can otherwise hold a chunk hostage
         for its whole transfer time, putting a floor on completion
         that does not vanish with k (see Sim's dedup_inflight docs). *)
      let achieved chunks =
        let r =
          D.run
            ~config:{ D.default_config with chunks; dedup_inflight = false }
            csr ~rate
        in
        if not r.D.delivered_all then QCheck.assume_fail ();
        r.D.achieved_rate /. rate
      in
      let coarse = achieved 32 and fine = achieved 512 in
      (* Startup/pipelining losses shrink as k grows; at k = 512 the
         achieved rate must be within 25% of the verified rate and no
         worse than the coarse run (small tolerance for randomness). *)
      fine >= coarse -. 0.05 && fine > 0.75 && fine <= 1. +. 1e-9)

(* {2 Metrics JSON: byte-determinism across Parallel.Pool sharding} *)

let metrics_cells () =
  let rate, csr = fig1_snapshot () in
  let cells =
    [|
      { D.default_config with chunks = 40 };
      { D.default_config with chunks = 80; streaming = true };
      { D.default_config with chunks = 60; discipline = D.Serve_in_order };
      { D.default_config with chunks = 50; jitter = 0.2; dedup_inflight = false };
      { D.default_config with chunks = 70; discipline = D.Oracle_reservoir };
    |]
  in
  fun ~jobs ->
    Parallel.Pool.map_array ~jobs cells (fun config ->
        let r = D.run ~config csr ~rate in
        D.metrics_to_json ~config
          ~nodes:(Flowgraph.Csr.node_count csr)
          ~edges:(Flowgraph.Csr.edge_count csr)
          ~rate r)

let test_metrics_json_jobs_invariant () =
  let run = metrics_cells () in
  let a = run ~jobs:1 and b = run ~jobs:2 in
  Alcotest.(check (array string)) "jobs 1 vs 2 byte-identical" a b;
  Array.iter
    (fun s ->
      Alcotest.(check bool) "single line" false (String.contains s '\n');
      match Flowgraph.Json.parse s with
      | Error msg -> Alcotest.failf "metrics JSON unparseable: %s" msg
      | Ok doc -> (
          match Flowgraph.Json.member "format" doc with
          | Some (Flowgraph.Json.Str "bmp-stream-metrics") -> ()
          | _ -> Alcotest.fail "format key missing"))
    a

(* {2 BENCH_stream.json schema golden} *)

let at path = Filename.concat (Filename.dirname Sys.executable_name) path

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_bench_stream_schema_golden () =
  let module Json = Flowgraph.Json in
  let doc =
    match Json.parse (read_file (at "golden/bench_stream_schema.json")) with
    | Ok doc -> doc
    | Error msg -> Alcotest.failf "golden bench schema unreadable: %s" msg
  in
  let num what d key =
    match Option.map Json.to_float (Json.member key d) with
    | Some (Ok x) -> x
    | _ -> Alcotest.failf "%s: missing or non-numeric %S" what key
  in
  (match Json.member "format" doc with
  | Some (Json.Str "bmp-stream-bench") -> ()
  | _ -> Alcotest.fail "format key must be \"bmp-stream-bench\"");
  Alcotest.(check (float 0.)) "version" 1. (num "top" doc "version");
  Alcotest.(check (float 0.)) "speedup gate" 20. (num "top" doc "gate_speedup_min");
  Alcotest.(check (float 0.)) "alloc gate" 16.
    (num "top" doc "gate_minor_words_per_event_max");
  Alcotest.(check (float 0.)) "rate gate" 1e6
    (num "top" doc "gate_events_per_s_min");
  let rows =
    match Json.member "rows" doc with
    | Some (Json.Arr rows) -> rows
    | _ -> Alcotest.fail "rows must be an array"
  in
  Alcotest.(check bool) "at least one row" true (rows <> []);
  List.iteri
    (fun i row ->
      let what = Printf.sprintf "row %d" i in
      (match Json.member "name" row with
      | Some (Json.Str _) -> ()
      | _ -> Alcotest.failf "%s: missing name" what);
      List.iter
        (fun key -> ignore (num what row key))
        [
          "nodes"; "edges"; "chunks"; "horizon"; "events"; "flat_s";
          "flat_events_per_s"; "minor_words_per_event"; "major_collections";
          "peak_rss_kb";
        ];
      (* legacy columns are null on the synthetic rows, numeric on the
         paper row — either way the key must be present. *)
      List.iter
        (fun key ->
          match Json.member key row with
          | Some (Json.Num _) | Some Json.Null -> ()
          | _ -> Alcotest.failf "%s: %S must be number or null" what key)
        [ "legacy_s"; "legacy_events_per_s"; "speedup"; "completion_time" ])
    rows;
  (* The paper row (the CI-gated cell) must be first and carry a real
     legacy measurement. *)
  match rows with
  | first :: _ -> (
      match (Json.member "name" first, Json.member "speedup" first) with
      | Some (Json.Str "paper-n1e4"), Some (Json.Num _) -> ()
      | _ -> Alcotest.fail "first row must be paper-n1e4 with numeric speedup")
  | [] -> ()

let suites =
  [
    ( "stream",
      [
        Alcotest.test_case "eheap sorted drain" `Quick test_eheap_order;
        Alcotest.test_case "eheap FIFO ties" `Quick test_eheap_fifo_ties;
        Alcotest.test_case "eheap free-list recycling" `Quick
          test_eheap_freelist_recycles;
        Alcotest.test_case "oracle differential (generator)" `Quick
          test_oracle_differential;
        Alcotest.test_case "oracle differential (fig1)" `Quick
          test_oracle_differential_fig1;
        Alcotest.test_case "delivers fig1" `Quick test_delivers_fig1;
        Alcotest.test_case "all disciplines deliver" `Quick
          test_disciplines_deliver;
        Alcotest.test_case "in-order is seed-independent" `Quick
          test_inorder_deterministic;
        Alcotest.test_case "dedup off allows duplicates" `Quick
          test_dedup_off_duplicates;
        Alcotest.test_case "dead overlay undelivered" `Quick
          test_undelivered_dead_overlay;
        Alcotest.test_case "metrics JSON jobs-invariant" `Quick
          test_metrics_json_jobs_invariant;
        Alcotest.test_case "BENCH_stream schema golden" `Quick
          test_bench_stream_schema_golden;
        QCheck_alcotest.to_alcotest prop_rate_convergence;
      ] );
  ]
