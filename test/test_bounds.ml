(* Tests for the closed-form throughput bounds and float conventions. *)

open Platform

let close ?(tol = 1e-9) what a b =
  if Float.abs (a -. b) > tol *. Float.max 1. (Float.abs b) then
    Alcotest.failf "%s: %g vs %g" what a b

let test_fig1_cyclic () =
  (* Lemma 5.1 on Figure 1: min (6, 16/3, 22/5) = 4.4. *)
  close "fig1" (Broadcast.Bounds.cyclic_upper Instance.fig1) 4.4

let test_cyclic_cases () =
  (* Source-limited. *)
  let t = Instance.create ~bandwidth:[| 1.; 50.; 50. |] ~n:2 ~m:0 () in
  close "source limited" (Broadcast.Bounds.cyclic_upper t) 1.;
  (* Guarded-demand limited: m = 2 guarded, b0 + O = 3 -> 1.5. *)
  let t = Instance.create ~bandwidth:[| 2.; 1.; 10.; 10. |] ~n:1 ~m:2 () in
  close "guarded limited" (Broadcast.Bounds.cyclic_upper t) 1.5;
  (* Total-bandwidth limited. *)
  let t = Instance.create ~bandwidth:[| 4.; 1.; 1.; 1. |] ~n:3 ~m:0 () in
  close "total limited" (Broadcast.Bounds.cyclic_upper t) (7. /. 3.)

let test_acyclic_open_formula () =
  (* T*ac = min (b0, S_(n-1) / n). *)
  let t = Instance.create ~bandwidth:[| 6.; 5.; 4.; 3. |] ~n:3 ~m:0 () in
  close "S2/3" (Broadcast.Bounds.acyclic_open_optimal t) 5.;
  let t = Instance.create ~bandwidth:[| 2.; 5.; 4.; 3. |] ~n:3 ~m:0 () in
  close "b0 binds" (Broadcast.Bounds.acyclic_open_optimal t) 2.;
  (* Single node: T = b0 (the node receives directly). *)
  let t = Instance.create ~bandwidth:[| 2.; 7. |] ~n:1 ~m:0 () in
  close "n=1" (Broadcast.Bounds.acyclic_open_optimal t) 2.

let test_acyclic_vs_cyclic_open () =
  (* Theorem 6.1: on open-only instances the gap is at most bn / (b0+O). *)
  let t = Instance.create ~bandwidth:[| 6.; 5.; 4.; 3. |] ~n:3 ~m:0 () in
  let ac = Broadcast.Bounds.acyclic_open_optimal t in
  let cy = Broadcast.Bounds.cyclic_open_optimal t in
  Alcotest.(check bool) "ac <= cy" true (ac <= cy +. 1e-12);
  Alcotest.(check bool) "ratio >= 1 - 1/n" true (ac /. cy >= 1. -. (1. /. 3.) -. 1e-12)

let test_guard_clauses () =
  (try
     ignore (Broadcast.Bounds.acyclic_open_optimal Instance.fig1);
     Alcotest.fail "guarded instance accepted"
   with Invalid_argument _ -> ());
  let unsorted = Instance.create ~bandwidth:[| 6.; 3.; 5. |] ~n:2 ~m:0 () in
  try
    ignore (Broadcast.Bounds.acyclic_open_optimal unsorted);
    Alcotest.fail "unsorted instance accepted"
  with Invalid_argument _ -> ()

let test_degree_lower_bound () =
  let t = Instance.fig1 in
  Alcotest.(check int) "source: ceil(6/4.4) = 2" 2
    (Broadcast.Bounds.degree_lower_bound t ~t:4.4 0);
  Alcotest.(check int) "C3: ceil(4/4.4) = 1" 1
    (Broadcast.Bounds.degree_lower_bound t ~t:4.4 3);
  Alcotest.(check int) "zero bandwidth" 0
    (Broadcast.Bounds.degree_lower_bound
       (Instance.create ~bandwidth:[| 1.; 0. |] ~n:1 ~m:0 ())
       ~t:1. 1)

let test_ceil_ratio_tolerance () =
  Alcotest.(check int) "exact multiple" 2 (Broadcast.Util.ceil_ratio 8. 4.);
  Alcotest.(check int) "epsilon above multiple stays" 2
    (Broadcast.Util.ceil_ratio (8. +. 1e-12) 4.);
  Alcotest.(check int) "clearly above rounds up" 3
    (Broadcast.Util.ceil_ratio 8.1 4.);
  Alcotest.(check int) "zero" 0 (Broadcast.Util.ceil_ratio 0. 4.)

let test_dichotomic_max () =
  let sup = Broadcast.Util.dichotomic_max ~lo:0. ~hi:10. (fun x -> x <= Float.pi) in
  if Float.abs (sup -. Float.pi) > 1e-9 then Alcotest.failf "sup = %g" sup;
  close "hi feasible" (Broadcast.Util.dichotomic_max ~lo:0. ~hi:1. (fun _ -> true)) 1.;
  close "lo infeasible" (Broadcast.Util.dichotomic_max ~lo:0.5 ~hi:1. (fun _ -> false)) 0.5

let test_dichotomic_search () =
  let open Broadcast.Util in
  (* Feasible at hi: no bisection needed. *)
  let s = dichotomic_search ~lo:0. ~hi:1. (fun _ -> true) in
  Alcotest.(check bool) "hi feasible" true s.feasible;
  Alcotest.(check bool) "hi converged" true s.converged;
  Alcotest.(check int) "hi probes = 1" 1 s.probes;
  close "hi value" s.value 1.;
  (* Infeasible everywhere: reports lo with feasible = false instead of
     silently returning it as if it were a supremum. *)
  let s = dichotomic_search ~lo:0.5 ~hi:1. (fun _ -> false) in
  Alcotest.(check bool) "lo infeasible" false s.feasible;
  Alcotest.(check int) "lo probes = 2" 2 s.probes;
  close "lo value" s.value 0.5;
  (* Threshold search terminates early on interval width, well under the
     100-probe budget, and still nails the supremum. *)
  let s = dichotomic_search ~lo:0. ~hi:10. (fun x -> x <= Float.pi) in
  Alcotest.(check bool) "pi feasible" true s.feasible;
  Alcotest.(check bool) "pi converged" true s.converged;
  Alcotest.(check bool) "early termination" true (s.probes < 70);
  close "pi value" s.value Float.pi;
  (* An exhausted iteration budget reports converged = false. *)
  let s =
    dichotomic_search ~iterations:5 ~epsilon:0. ~lo:0. ~hi:10.
      (fun x -> x <= Float.pi)
  in
  Alcotest.(check bool) "budget exhausted" false s.converged;
  (* Degenerate and invalid intervals. *)
  let s = dichotomic_search ~lo:2. ~hi:2. (fun x -> x <= 2.) in
  close "point interval" s.value 2.;
  try
    ignore (dichotomic_search ~lo:1. ~hi:0. (fun _ -> true));
    Alcotest.fail "hi < lo accepted"
  with Invalid_argument _ -> ()

let test_float_comparisons () =
  let open Broadcast.Util in
  Alcotest.(check bool) "feq tolerant" true (feq 1. (1. +. 1e-12));
  Alcotest.(check bool) "feq distinguishes" false (feq 1. 1.001);
  Alcotest.(check bool) "fle" true (fle 1. (1. -. 1e-12));
  Alcotest.(check bool) "flt strict" false (flt 1. (1. +. 1e-12));
  Alcotest.(check bool) "flt real" true (flt 1. 1.1);
  Alcotest.(check bool) "scale relative" true (feq 1e12 (1e12 +. 1.))

let suites =
  [
    ( "bounds",
      [
        Alcotest.test_case "fig1 cyclic = 4.4" `Quick test_fig1_cyclic;
        Alcotest.test_case "cyclic binding cases" `Quick test_cyclic_cases;
        Alcotest.test_case "acyclic open formula" `Quick test_acyclic_open_formula;
        Alcotest.test_case "Theorem 6.1 gap" `Quick test_acyclic_vs_cyclic_open;
        Alcotest.test_case "guard clauses" `Quick test_guard_clauses;
        Alcotest.test_case "degree lower bound" `Quick test_degree_lower_bound;
      ] );
    ( "util",
      [
        Alcotest.test_case "ceil_ratio tolerance" `Quick test_ceil_ratio_tolerance;
        Alcotest.test_case "dichotomic search" `Quick test_dichotomic_max;
        Alcotest.test_case "dichotomic search diagnostics" `Quick
          test_dichotomic_search;
        Alcotest.test_case "tolerant comparisons" `Quick test_float_comparisons;
      ] );
  ]
