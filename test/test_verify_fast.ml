(* Differential tests for the batch verification engine: on hundreds of
   random acyclic and cyclic schemes, the structure-aware verifier
   (incoming-cut fast path + shared-residual batch Dinic) must agree with
   the plain oracle — one Dinic run per destination on a freshly built
   residual network — within 1e-6 relative error. *)

module G = Flowgraph.Graph
module MF = Flowgraph.Maxflow

let close ?(tol = 1e-6) what a b =
  if Float.abs (a -. b) > tol *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))
  then Alcotest.failf "%s: %g vs %g" what a b

(* The pre-engine oracle: rebuild the residual network for every sink. *)
let plain_min_dinic g =
  let k = G.node_count g in
  let best = ref infinity in
  for v = 1 to k - 1 do
    best := Float.min !best (MF.max_flow g ~src:0 ~dst:v)
  done;
  !best

let random_dag rng nodes density =
  let g = G.create nodes in
  for i = 0 to nodes - 1 do
    for j = i + 1 to nodes - 1 do
      if Prng.Splitmix.next_float rng < density then
        G.add_edge g ~src:i ~dst:j (0.1 +. (9.9 *. Prng.Splitmix.next_float rng))
    done
  done;
  g

let random_digraph rng nodes density =
  let g = G.create nodes in
  for i = 0 to nodes - 1 do
    for j = 0 to nodes - 1 do
      if i <> j && Prng.Splitmix.next_float rng < density then
        G.add_edge g ~src:i ~dst:j (0.1 +. (9.9 *. Prng.Splitmix.next_float rng))
    done
  done;
  g

let test_differential_random_dags () =
  let rng = Prng.Splitmix.create 101L in
  for i = 1 to 100 do
    let nodes = 3 + (i mod 20) in
    let g = random_dag rng nodes 0.4 in
    let plain = plain_min_dinic g in
    let fast = MF.broadcast_throughput g ~src:0 in
    let batch = MF.min_broadcast_flow g ~src:0 in
    close (Printf.sprintf "dag %d fast" i) fast plain;
    close (Printf.sprintf "dag %d batch" i) batch plain
  done

let test_differential_random_digraphs () =
  let rng = Prng.Splitmix.create 102L in
  for i = 1 to 100 do
    let nodes = 3 + (i mod 15) in
    let g = random_digraph rng nodes 0.3 in
    let plain = plain_min_dinic g in
    close (Printf.sprintf "digraph %d fast" i)
      (MF.broadcast_throughput g ~src:0)
      plain;
    close (Printf.sprintf "digraph %d batch" i)
      (MF.min_broadcast_flow g ~src:0)
      plain
  done

(* Real schemes from the paper's constructions: Lemma 4.6 low-degree
   (acyclic) and Theorem 5.2 cyclic schemes on random instances. *)
let random_instance rng ~p_open n =
  Platform.Generator.generate
    { Platform.Generator.total = n; p_open; dist = Prng.Dist.unif100 }
    rng

let test_differential_constructed_schemes () =
  let rng = Prng.Splitmix.create 103L in
  for i = 1 to 20 do
    let inst = random_instance rng ~p_open:0.7 (5 + (3 * i)) in
    let t_ac, word = Broadcast.Greedy.optimal_acyclic inst in
    if t_ac > 1e-9 then begin
      let g =
        Broadcast.Scheme.graph
          (Broadcast.Low_degree.build inst ~rate:(t_ac *. (1. -. 4e-9)) word)
      in
      Alcotest.(check bool)
        "low-degree scheme is acyclic" true
        (Flowgraph.Topo.is_acyclic g);
      close (Printf.sprintf "low-degree %d" i)
        (MF.broadcast_throughput g ~src:0)
        (plain_min_dinic g)
    end
  done;
  for i = 1 to 20 do
    let inst = random_instance rng ~p_open:1. (5 + (3 * i)) in
    let g = Broadcast.Scheme.graph (Broadcast.Cyclic_open.build inst) in
    close (Printf.sprintf "cyclic-open %d" i)
      (MF.broadcast_throughput g ~src:0)
      (plain_min_dinic g)
  done

let test_solver_reuse_matches_fresh () =
  let rng = Prng.Splitmix.create 104L in
  for _ = 1 to 10 do
    let g = random_digraph rng 10 0.35 in
    let s = MF.solver g ~src:0 in
    for v = 1 to 9 do
      close
        (Printf.sprintf "solver sink %d" v)
        (MF.solve s ~dst:v)
        (MF.max_flow g ~src:0 ~dst:v)
    done
  done

let test_solve_limit_semantics () =
  let rng = Prng.Splitmix.create 105L in
  for i = 1 to 20 do
    let g = random_digraph rng 9 0.4 in
    let f = MF.max_flow g ~src:0 ~dst:8 in
    let s = MF.solver g ~src:0 in
    (* Limit above the optimum: exact value. *)
    close (Printf.sprintf "limit above %d" i)
      (MF.solve ~limit:((2. *. f) +. 1.) s ~dst:8)
      f;
    (* Limit below the optimum: certified, i.e. in [limit, f]. *)
    if f > 0.1 then begin
      let limit = f /. 2. in
      let v = MF.solve ~limit s ~dst:8 in
      if v < limit || v > f +. 1e-9 then
        Alcotest.failf "limited solve %d: %g not in [%g, %g]" i v limit f
    end
  done

let test_achieves_rate_differential () =
  let rng = Prng.Splitmix.create 106L in
  for i = 1 to 30 do
    let g = random_digraph rng 8 0.4 in
    let t = plain_min_dinic g in
    if Float.is_finite t && t > 0.1 then begin
      Alcotest.(check bool)
        (Printf.sprintf "achieves below %d" i)
        true
        (MF.achieves_rate g ~src:0 ~rate:(0.9 *. t));
      Alcotest.(check bool)
        (Printf.sprintf "achieves above %d" i)
        false
        (MF.achieves_rate g ~src:0 ~rate:(1.1 *. t))
    end
  done

let test_check_batch_matches_check () =
  let rng = Prng.Splitmix.create 107L in
  let pairs =
    List.init 8 (fun i ->
        let inst = random_instance rng ~p_open:0.8 (4 + i) in
        let t_ac, word = Broadcast.Greedy.optimal_acyclic inst in
        let g =
          Broadcast.Scheme.graph
            (Broadcast.Low_degree.build inst ~rate:(t_ac *. (1. -. 4e-9)) word)
        in
        (inst, g))
  in
  let batch = Broadcast.Verify.check_batch pairs in
  List.iter2
    (fun (inst, g) r ->
      let r' = Broadcast.Verify.check inst g in
      Alcotest.(check bool) "same structural verdicts" true
        (r.Broadcast.Verify.bandwidth_ok = r'.Broadcast.Verify.bandwidth_ok
        && r.Broadcast.Verify.firewall_ok = r'.Broadcast.Verify.firewall_ok
        && r.Broadcast.Verify.bin_ok = r'.Broadcast.Verify.bin_ok
        && r.Broadcast.Verify.acyclic = r'.Broadcast.Verify.acyclic
        && r.Broadcast.Verify.fast_path = r'.Broadcast.Verify.fast_path);
      close "same throughput" r.Broadcast.Verify.throughput
        r'.Broadcast.Verify.throughput)
    pairs batch

let test_fast_path_flag_and_bottleneck () =
  let inst = Platform.Instance.fig1 in
  let g =
    Broadcast.Scheme.graph
      (Broadcast.Low_degree.build inst ~rate:4. (Broadcast.Word.of_string "gogog"))
  in
  let r = Broadcast.Verify.check inst g in
  Alcotest.(check bool) "acyclic scheme uses fast path" true
    r.Broadcast.Verify.fast_path;
  let node, rate = Broadcast.Metrics.bottleneck g in
  Alcotest.(check bool) "bottleneck is a receiver" true (node >= 1 && node <= 5);
  close "bottleneck rate = throughput" rate r.Broadcast.Verify.throughput;
  (* Force a cycle: the report must fall back to Dinic and agree. *)
  G.add_edge g ~src:5 ~dst:0 0.1;
  let r' = Broadcast.Verify.check inst g in
  Alcotest.(check bool) "cyclic scheme uses Dinic" false
    r'.Broadcast.Verify.fast_path;
  close "cyclic throughput still exact" r'.Broadcast.Verify.throughput
    (plain_min_dinic g)

let test_corner_cases () =
  (* Single node: no receiver, infinite throughput, trivially achieved. *)
  let one = Platform.Instance.create ~bandwidth:[| 3. |] ~n:0 ~m:0 () in
  let g1 = G.create 1 in
  let r = Broadcast.Verify.check one g1 in
  Alcotest.(check bool) "single-node throughput infinite" true
    (r.Broadcast.Verify.throughput = infinity);
  Alcotest.(check bool) "single-node achieves" true
    (Broadcast.Verify.achieves one g1 ~rate:1e9);
  Alcotest.(check bool) "single-node maxflow batch" true
    (MF.broadcast_throughput g1 ~src:0 = infinity);
  (* Unreachable receiver: throughput 0 on both paths. *)
  let g = G.create 3 in
  G.add_edge g ~src:0 ~dst:1 2.;
  close "unreachable fast" (MF.broadcast_throughput g ~src:0) 0.;
  close "unreachable batch" (MF.min_broadcast_flow g ~src:0) 0.;
  Alcotest.(check bool) "unreachable achieves fails" false
    (MF.achieves_rate g ~src:0 ~rate:0.5)

let suites =
  [
    ( "verify-fast",
      [
        Alcotest.test_case "differential: random DAGs" `Quick
          test_differential_random_dags;
        Alcotest.test_case "differential: random digraphs" `Quick
          test_differential_random_digraphs;
        Alcotest.test_case "differential: constructed schemes" `Quick
          test_differential_constructed_schemes;
        Alcotest.test_case "solver reuse = fresh max_flow" `Quick
          test_solver_reuse_matches_fresh;
        Alcotest.test_case "solve limit semantics" `Quick
          test_solve_limit_semantics;
        Alcotest.test_case "achieves_rate differential" `Quick
          test_achieves_rate_differential;
        Alcotest.test_case "check_batch = check" `Quick
          test_check_batch_matches_check;
        Alcotest.test_case "fast-path flag and bottleneck" `Quick
          test_fast_path_flag_and_bottleneck;
        Alcotest.test_case "corner cases" `Quick test_corner_cases;
      ] );
  ]
