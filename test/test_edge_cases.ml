(* Adversarial and degenerate platforms exercised through the whole
   pipeline: zero-bandwidth nodes, guarded-only platforms, massive ties,
   weak sources, and a large-instance smoke test. *)

open Platform

let test_guarded_only () =
  (* n = 0: every guarded node is fed by the source alone, so
     T*ac = b0 / m. *)
  let inst = Instance.create ~bandwidth:[| 6.; 9.; 9.; 9. |] ~n:0 ~m:3 () in
  let t, w = Broadcast.Greedy.optimal_acyclic inst in
  Helpers.close ~tol:1e-9 "T*ac = b0/m" t 2.;
  Alcotest.(check string) "word all guarded" "ggg" (Broadcast.Word.to_string w);
  Helpers.close "cyclic also b0/m" (Broadcast.Bounds.cyclic_upper inst) 2.;
  let rate, scheme = Broadcast.Low_degree.build_optimal inst in
  ignore (Helpers.check_artifact scheme ~rate);
  (* The guarded nodes' own bandwidth is unusable: only source edges. *)
  Flowgraph.Graph.iter_edges
    (fun ~src ~dst:_ _ -> Alcotest.(check int) "all from source" 0 src)
    (Broadcast.Scheme.graph scheme)

let test_single_guarded_receiver () =
  let inst = Instance.create ~bandwidth:[| 3.; 100. |] ~n:0 ~m:1 () in
  let t, _ = Broadcast.Greedy.optimal_acyclic inst in
  Helpers.close ~tol:1e-9 "T = b0" t 3.

let test_zero_bandwidth_tail () =
  (* Pure sinks (b = 0) must be served and cost nothing in degree. *)
  let inst =
    Instance.create ~bandwidth:[| 9.; 6.; 0.; 3.; 0.; 0. |] ~n:2 ~m:3 ()
    |> Instance.normalize |> fst
  in
  let rate, scheme = Broadcast.Low_degree.build_optimal inst in
  Alcotest.(check bool) "positive rate" true (rate > 0.);
  ignore (Helpers.check_artifact scheme ~rate);
  (* Zero-bandwidth nodes never send. *)
  let g = Broadcast.Scheme.graph scheme in
  for v = 0 to Instance.size inst - 1 do
    if inst.Instance.bandwidth.(v) = 0. then
      Alcotest.(check int) "sink sends nothing" 0 (Flowgraph.Graph.out_degree g v)
  done

let test_zero_source () =
  (* b0 = 0: nothing can be broadcast; every optimum is 0 and the search
     degrades gracefully. *)
  let inst = Instance.create ~bandwidth:[| 0.; 5.; 5. |] ~n:2 ~m:0 () in
  Helpers.close "cyclic 0" (Broadcast.Bounds.cyclic_upper inst) 0.;
  let t, _ = Broadcast.Greedy.optimal_acyclic inst in
  Helpers.close "acyclic 0" t 0.

let test_all_equal () =
  (* Full tie-breaking stress: 20 identical nodes, half guarded. *)
  let inst = Instance.homogeneous ~n:10 ~m:10 ~b0:7. ~bopen:7. ~bguarded:7. in
  let t, _ = Broadcast.Greedy.optimal_acyclic inst in
  let t_cyc = Broadcast.Bounds.cyclic_upper inst in
  Alcotest.(check bool) "close to cyclic" true (t >= 0.9 *. t_cyc);
  let rate, scheme = Broadcast.Low_degree.build_optimal inst in
  ignore (Helpers.check_artifact scheme ~rate);
  let d = Broadcast.Metrics.scheme_report scheme in
  Alcotest.(check bool) "lemma 4.6 degrees" true (d.Broadcast.Metrics.max_excess <= 3)

let test_weak_source () =
  (* The source is the bottleneck: T = b0, everyone else has slack. *)
  let inst = Instance.create ~bandwidth:[| 1.; 50.; 50.; 50.; 50. |] ~n:4 ~m:0 () in
  let t = Broadcast.Bounds.acyclic_open_optimal inst in
  Helpers.close "T = b0" t 1.;
  let s = Broadcast.Acyclic_open.build inst in
  ignore (Helpers.check_artifact s ~rate:1.)

let test_strong_guarded () =
  (* Guarded nodes hold nearly all the bandwidth; open relays are scarce.
     The greedy must interleave to recycle guarded bandwidth. *)
  let inst =
    Instance.create ~bandwidth:[| 2.; 1.; 40.; 40.; 40. |] ~n:1 ~m:3 ()
  in
  let t, w = Broadcast.Greedy.optimal_acyclic inst in
  (* T*: guarded demand 3T <= b0 + O = 3 -> T <= 1; open+source supply
     everything else. *)
  Alcotest.(check bool) "T at most 1" true (t <= 1. +. 1e-9);
  Alcotest.(check bool) "T positive" true (t > 0.5);
  (* The first letter must be guarded (conserve open bandwidth). *)
  Alcotest.(check bool) "starts guarded" true (w.(0) = Instance.Guarded)

let test_large_instance_smoke () =
  (* n + m = 2000: the full Theorem 4.1 pipeline stays fast and correct
     (structural checks only; max-flow verification would dominate). *)
  let rng = Prng.Splitmix.create 77L in
  let inst =
    Generator.generate
      { Generator.total = 2000; p_open = 0.7; dist = Prng.Dist.ln1 }
      rng
  in
  let rate, scheme = Broadcast.Low_degree.build_optimal inst in
  Alcotest.(check bool) "positive rate" true (rate > 0.);
  Alcotest.(check bool) "acyclic" true (Broadcast.Scheme.is_acyclic scheme);
  let g = Broadcast.Scheme.graph scheme in
  let ok = ref true in
  for v = 1 to Instance.size inst - 1 do
    if not (Broadcast.Util.feq ~eps:1e-6 (Flowgraph.Graph.in_weight g v) rate)
    then ok := false
  done;
  Alcotest.(check bool) "every node receives the rate" true !ok;
  let d = Broadcast.Metrics.scheme_report scheme in
  Alcotest.(check bool) "degree bounds at scale" true
    (d.Broadcast.Metrics.max_excess <= 3)

let test_normalize_idempotent () =
  let inst = Instance.create ~bandwidth:[| 1.; 3.; 9.; 2.; 8. |] ~n:2 ~m:2 () in
  let once, _ = Instance.normalize inst in
  let twice, perm = Instance.normalize once in
  Alcotest.(check bool) "idempotent" true (Instance.equal once twice);
  Alcotest.(check (array int)) "identity permutation" [| 0; 1; 2; 3; 4 |] perm

let test_tiny_bandwidth_scale () =
  (* At magnitudes far below 1 the library's tolerance floor (absolute
     1e-9 near zero) dominates: results stay correct only to ~0.1%.
     Rescale bandwidths towards O(1) for exact work — this test pins the
     documented graceful degradation. *)
  let inst =
    Instance.create
      ~bandwidth:[| 6e-7; 5e-7; 5e-7; 4e-7; 1e-7; 1e-7 |]
      ~n:2 ~m:3 ()
  in
  let t, _ = Broadcast.Greedy.optimal_acyclic inst in
  Helpers.close ~tol:1e-2 "fig1 scaled down" (t /. 4e-7) 1.

let test_huge_bandwidth_scale () =
  let inst =
    Instance.create
      ~bandwidth:[| 6e9; 5e9; 5e9; 4e9; 1e9; 1e9 |]
      ~n:2 ~m:3 ()
  in
  let t, _ = Broadcast.Greedy.optimal_acyclic inst in
  Helpers.close ~tol:1e-6 "fig1 scaled up" (t /. 4e9) 1.

let suites =
  [
    ( "edge_cases",
      [
        Alcotest.test_case "guarded-only platform" `Quick test_guarded_only;
        Alcotest.test_case "single guarded receiver" `Quick test_single_guarded_receiver;
        Alcotest.test_case "zero-bandwidth sinks" `Quick test_zero_bandwidth_tail;
        Alcotest.test_case "zero source" `Quick test_zero_source;
        Alcotest.test_case "all-equal ties" `Quick test_all_equal;
        Alcotest.test_case "weak source" `Quick test_weak_source;
        Alcotest.test_case "guarded-heavy bandwidth" `Quick test_strong_guarded;
        Alcotest.test_case "2000-node smoke" `Quick test_large_instance_smoke;
        Alcotest.test_case "normalize idempotent" `Quick test_normalize_idempotent;
        Alcotest.test_case "tiny magnitudes" `Quick test_tiny_bandwidth_scale;
        Alcotest.test_case "huge magnitudes" `Quick test_huge_bandwidth_scale;
      ] );
  ]
