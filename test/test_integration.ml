(* End-to-end integration: the complete pipeline the paper describes in
   Section II-C, from measurements to a running broadcast.

     measurement matrix -> last-mile fit -> instance -> T* bounds
       -> greedy word -> low-degree overlay -> max-flow verification
       -> broadcast-tree decomposition -> randomized transport
       -> churn repair

   One deterministic scenario, every interface crossed for real. *)

open Platform

let test_full_pipeline () =
  let nodes = 25 in
  let rng = Prng.Splitmix.create 4242L in
  (* 1. Ground-truth platform and noisy measurements. *)
  let bout = Array.init nodes (fun _ -> Prng.Dist.sample Platform.Plab.dist rng) in
  let bin = Array.map (fun b -> 3. *. b) bout in
  let truth = { Lastmile.Model.bout; bin } in
  let matrix = Lastmile.Model.synthetic_matrix ~noise:0.05 truth rng in
  (* 2. Model estimation. *)
  let fitted = Lastmile.Model.fit matrix in
  Alcotest.(check bool) "fit error bounded" true
    (Lastmile.Model.rmse fitted matrix < 0.3 *. Lastmile.Model.rmse
                                            { Lastmile.Model.bout = Array.make nodes 0.;
                                              bin = Array.make nodes 0. }
                                            matrix);
  (* 3. Instance: strongest node as source, 40% NATed. *)
  let source = ref 0 in
  Array.iteri
    (fun i b -> if b > fitted.Lastmile.Model.bout.(!source) then source := i)
    fitted.Lastmile.Model.bout;
  let guarded =
    Array.init nodes (fun i -> i <> !source && Prng.Splitmix.next_float rng < 0.4)
  in
  let inst, _perm = Lastmile.Model.to_instance fitted ~source:!source ~guarded in
  Alcotest.(check bool) "sorted" true (Instance.sorted inst);
  (* 4. Bounds and the greedy optimum. *)
  let t_cyc = Broadcast.Bounds.cyclic_upper inst in
  let t_ac, word = Broadcast.Greedy.optimal_acyclic inst in
  Alcotest.(check bool) "T*ac <= T*" true (t_ac <= t_cyc +. 1e-9);
  Alcotest.(check bool) "Theorem 6.2 floor" true
    (t_ac >= (5. /. 7.) *. t_cyc -. 1e-6);
  Alcotest.(check bool) "witness complete" true (Broadcast.Word.complete word inst);
  (* 5. Overlay and verification (through the scheme artifact). *)
  let rate, scheme = Broadcast.Low_degree.build_optimal inst in
  let overlay = Broadcast.Scheme.graph scheme in
  let report = Broadcast.Scheme.report scheme in
  Alcotest.(check bool) "structurally valid" true
    (report.Broadcast.Verify.bandwidth_ok && report.Broadcast.Verify.firewall_ok);
  Alcotest.(check bool) "throughput delivered" true
    (Broadcast.Util.fge ~eps:1e-6 report.Broadcast.Verify.throughput rate);
  (* 6. Broadcast-tree decomposition reconstructs the overlay. *)
  let trees = Flowgraph.Arborescence.decompose overlay ~root:0 in
  let rebuilt =
    Flowgraph.Arborescence.recompose trees ~node_count:(Instance.size inst)
  in
  Alcotest.(check bool) "decomposition exact" true
    (Flowgraph.Graph.equal ~eps:(1e-4 *. rate) rebuilt overlay);
  let total_rate =
    List.fold_left (fun acc t -> acc +. t.Flowgraph.Arborescence.weight) 0. trees
  in
  Alcotest.(check bool) "tree rates sum to the rate" true
    (Float.abs (total_rate -. rate) < 1e-5 *. rate);
  (* 7. Transport achieves the rate. *)
  let sim =
    Massoulie.Sim.simulate
      ~config:
        { Massoulie.Sim.default_config with chunks = 200; dedup_inflight = false }
      overlay ~rate
  in
  Alcotest.(check bool) "transport delivers" true sim.Massoulie.Sim.delivered_all;
  Alcotest.(check bool) "transport efficiency" true (sim.Massoulie.Sim.efficiency > 0.4);
  (* 8. Survive one churn event with headroom. *)
  let o = Broadcast.Overlay.build ~rate:(t_ac *. 0.85) inst in
  let o', stats = Broadcast.Repair.leave o ~node:(Instance.size inst - 1) in
  Alcotest.(check bool) "repair well-formed" true (Broadcast.Overlay.well_formed o');
  Alcotest.(check bool) "repair cheap" true
    (stats.Broadcast.Repair.patch_edges <= stats.Broadcast.Repair.rebuild_edges)

let test_serialization_pipeline () =
  (* CLI-style roundtrip: generate -> serialize -> parse -> solve. *)
  let rng = Prng.Splitmix.create 9L in
  let inst =
    Generator.generate { Generator.total = 12; p_open = 0.6; dist = Prng.Dist.unif100 } rng
  in
  match Instance.of_string (Instance.to_string inst) with
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e
  | Ok inst' ->
    let inst', _ = Instance.normalize inst' in
    let t1, _ = Broadcast.Greedy.optimal_acyclic inst in
    let t2, _ = Broadcast.Greedy.optimal_acyclic inst' in
    Helpers.close ~tol:1e-12 "identical optimum after roundtrip" t1 t2

let suites =
  [
    ( "integration",
      [
        Alcotest.test_case "full pipeline" `Quick test_full_pipeline;
        Alcotest.test_case "serialization pipeline" `Quick test_serialization_pipeline;
      ] );
  ]
