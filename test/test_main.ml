(* Entry point aggregating every suite; run with `dune runtest`. *)

let () =
  Alcotest.run "bounded_multiport"
    (Test_prng.suites @ Test_rational.suites @ Test_instance.suites
   @ Test_flowgraph.suites @ Test_bounds.suites @ Test_acyclic_open.suites
   @ Test_word.suites @ Test_greedy.suites @ Test_low_degree.suites
   @ Test_cyclic_open.suites @ Test_exact.suites @ Test_ratio.suites
   @ Test_hardness.suites @ Test_verify_metrics.suites @ Test_massoulie.suites
   @ Test_lastmile.suites @ Test_repair.suites @ Test_depth.suites
   @ Test_export.suites @ Test_exact_q.suites @ Test_one_port.suites
   @ Test_edge_cases.suites @ Test_integration.suites
   @ Test_experiments.suites @ Test_verify_fast.suites
   @ Test_csr.suites @ Test_csr_differential.suites
   @ Test_parallel.suites @ Test_qcheck_properties.suites
   @ Test_scheme.suites @ Test_churn.suites @ Test_incremental_flow.suites
   @ Test_tracker.suites @ Test_cli_bench.suites @ Test_stream.suites)
