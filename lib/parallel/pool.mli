(** Deterministic multicore work pool (OCaml 5 Domains).

    All experiment sweeps in this repository are embarrassingly parallel:
    hundreds of independent (cell, replicate) work items, each a pure
    function of its index once its PRNG stream has been derived. This
    pool runs such workloads across a fixed number of domains while
    keeping the output {e bit-identical for every worker count}:

    - results land in a preallocated slot per index, so assembly order
      never depends on scheduling;
    - work items must not share mutable state — derive per-item PRNGs by
      {!Prng.Splitmix.split} (or {!Prng.Splitmix.split_n}) from a root
      stream before submitting;
    - [jobs = 1] (and every workload of fewer than 2 items) runs inline
      in the calling domain, in index order, spawning nothing.

    Scheduling is chunked index-range work stealing from a shared atomic
    cursor: cheap enough for sub-millisecond items, adaptive enough for
    the heavily skewed cells of the Figure 7 grid (cost grows with [n]).

    An exception raised by a work item cancels the remaining chunks and
    is re-raised (with its backtrace) in the calling domain once every
    worker has stopped. *)

val default_jobs : unit -> int
(** Number of workers used when [?jobs] is omitted:
    [Domain.recommended_domain_count ()], at least 1. *)

val map_range : ?jobs:int -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [map_range n f] is [[| f 0; ...; f (n - 1) |]], computed on
    [min jobs n] domains. [chunk] is the number of consecutive indices a
    worker claims at a time (default [n / (8 * jobs)], at least 1).
    Raises [Invalid_argument] if [n < 0], [jobs < 1] or [chunk < 1];
    re-raises the first exception raised by [f]. *)

val map_array : ?jobs:int -> ?chunk:int -> 'a array -> ('a -> 'b) -> 'b array
(** [map_array a f] is [map_range (Array.length a) (fun i -> f a.(i))]. *)

val map_list : ?jobs:int -> ?chunk:int -> 'a list -> ('a -> 'b) -> 'b list
(** List counterpart of {!map_array}, preserving order. *)
