(* Domain-based work pool with deterministic output.

   Work is an index range [0, n); workers claim fixed-size chunks from a
   shared atomic cursor and write each result into its own slot of a
   preallocated array, so the output is a pure function of the work items
   — identical for any worker count, including 1 (which runs inline in
   the calling domain, spawning nothing).

   Determinism contract for callers: the function passed to [map_range]
   must depend only on its index (derive per-item PRNGs by splitting a
   root stream *before* submitting, never share a mutable generator
   between items). Under that discipline results are bit-identical for
   any [jobs] value. *)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let resolve_jobs = function
  | None -> default_jobs ()
  | Some j ->
    if j < 1 then invalid_arg "Pool.map_range: jobs must be >= 1";
    j

(* Sequential fallback, evaluating items in index order. *)
let map_seq n f =
  if n = 0 then [||]
  else begin
    let out = Array.make n (f 0) in
    for i = 1 to n - 1 do
      out.(i) <- f i
    done;
    out
  end

let map_range ?jobs ?chunk n f =
  if n < 0 then invalid_arg "Pool.map_range: negative item count";
  let jobs = min (resolve_jobs jobs) n in
  let chunk =
    match chunk with
    | None -> max 1 (n / (max 1 jobs * 8))
    | Some c ->
      if c < 1 then invalid_arg "Pool.map_range: chunk must be >= 1";
      c
  in
  if jobs <= 1 then map_seq n f
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let lo = Atomic.fetch_and_add cursor chunk in
        if lo >= n || Atomic.get failure <> None then continue := false
        else
          try
            for i = lo to min n (lo + chunk) - 1 do
              results.(i) <- Some (f i)
            done
          with e ->
            (* Keep the first failure (with its backtrace); losers of the
               race just stop claiming chunks. *)
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set failure None (Some (e, bt)));
            continue := false
      done
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      Array.map
        (function Some v -> v | None -> assert false (* every slot filled *))
        results
  end

let map_array ?jobs ?chunk a f =
  map_range ?jobs ?chunk (Array.length a) (fun i -> f a.(i))

let map_list ?jobs ?chunk l f =
  Array.to_list (map_array ?jobs ?chunk (Array.of_list l) f)
