(* Flat-arena discrete-event streaming dataplane over a frozen CSR
   snapshot.

   Same execution model as Massoulie.Sim — every overlay arc is an
   independent pipe that picks a useful chunk whenever it is free — but
   every piece of simulator state lives in preallocated int/float
   arrays indexed by CSR arc ids:

     owned / inflight   chunk bitsets, 63 chunks per word, one row per node
     carrying, duration per-arc transfer state (-1 idle, -2 disabled)
     qlen               per-neighbor send-queue backlog, exact at all times
     Eheap              index-based 4-ary event heap, arena + free-list

   so the steady-state event loop performs no heap allocation (measured
   as minor-words/event in bench/stream_bench.ml).

   Under [Oracle_reservoir] the dataplane consumes the PRNG stream in
   exactly the same order as (the determinism-fixed) Massoulie.Sim:
   identical candidate scan order, identical reservoir draws, identical
   jitter draws, identical event tie-breaking. test/test_stream.ml
   checks completion times are equal bit-for-bit at small n. *)

type discipline =
  | Random_useful
  | Oracle_reservoir
  | Serve_in_order

type config = {
  chunks : int;
  chunk_size : float;
  seed : int64;
  max_time : float;
  streaming : bool;
  jitter : float;
  dedup_inflight : bool;
  discipline : discipline;
}

let default_config =
  {
    chunks = 200;
    chunk_size = 1.;
    seed = 42L;
    max_time = 1e6;
    streaming = false;
    jitter = 0.;
    dedup_inflight = true;
    discipline = Random_useful;
  }

type quantiles = { p50 : float; p90 : float; p99 : float; max : float }

type result = {
  delivered_all : bool;
  completion_time : float;
  per_node_completion : float array;
  achieved_rate : float;
  efficiency : float;
  events : int;
  transfers : int;
  duplicates : int;
  max_lag : float;
  delay : quantiles;
  startup : quantiles;
  peak_queue : int;
  mean_queue : float;
}

let discipline_name = function
  | Random_useful -> "random"
  | Oracle_reservoir -> "oracle"
  | Serve_in_order -> "inorder"

let discipline_of_name = function
  | "random" -> Some Random_useful
  | "oracle" -> Some Oracle_reservoir
  | "inorder" -> Some Serve_in_order
  | _ -> None

(* 63 usable bits per OCaml int word. *)
let bits = 63

(* floor(c / 63) by multiply-shift: classic ocamlopt emits a hardware
   divide for [c / 63] (it only strength-reduces powers of two), and
   the arrival path performs several word/bit splits per event.
   1090785346 = ceil(2^36 / 63) with error 62, so the identity is exact
   for 0 <= c < 2^36/62 — far beyond any chunk count, and the product
   stays below 2^62 (no overflow). *)
let[@inline] div_bits c = (c * 1090785346) lsr 36
let[@inline] mod_bits c = c - (bits * div_bits c)

(* Number of trailing zeros, [x <> 0]. Branchy binary search — only hit
   once per delivered candidate, and every branch reads a register. *)
let[@inline] ntz x =
  let n = ref 0 and x = ref x in
  if !x land 0x7FFFFFFF = 0 then begin
    n := !n + 31;
    x := !x lsr 31
  end;
  if !x land 0xFFFF = 0 then begin
    n := !n + 16;
    x := !x lsr 16
  end;
  if !x land 0xFF = 0 then begin
    n := !n + 8;
    x := !x lsr 8
  end;
  if !x land 0xF = 0 then begin
    n := !n + 4;
    x := !x lsr 4
  end;
  if !x land 0x3 = 0 then begin
    n := !n + 2;
    x := !x lsr 2
  end;
  if !x land 0x1 = 0 then incr n;
  !n

(* SWAR population count for a 63-bit word. The classic 64-bit masks
   are truncated to OCaml's 63-bit ints: after [x lsr 1] bit 62 is
   clear, so the first mask only needs even bits up to 60, and the
   final byte-sum (<= 63) fits in bits 56..62, which survive the
   multiplication's truncation mod 2^63. *)
let[@inline] popcount x =
  let x = x - ((x lsr 1) land 0x1555555555555555) in
  let x = (x land 0x3333333333333333) + ((x lsr 2) land 0x3333333333333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (x * 0x0101010101010101) lsr 56

(* Delay histogram resolution: bins of chunk_time/16 up to 1024
   chunk-times, overflow clamped into the last bin ([max] stays exact). *)
let hist_bins = 16 * 1024

let quantile_of_hist hist total bin_w exact_max q =
  if total = 0 then 0.
  else begin
    let target = q *. float_of_int total in
    let cum = ref 0 and b = ref 0 and found = ref (-1) in
    while !found < 0 && !b < hist_bins do
      cum := !cum + hist.(!b);
      if float_of_int !cum >= target then found := !b;
      incr b
    done;
    let b = if !found < 0 then hist_bins - 1 else !found in
    Float.min (float_of_int (b + 1) *. bin_w) exact_max
  end

let exact_quantile sorted q =
  let cnt = Array.length sorted in
  if cnt = 0 then 0.
  else sorted.(min (cnt - 1) (int_of_float (q *. float_of_int cnt)))

let run ?(config = default_config) (csr : Flowgraph.Csr.t) ~rate =
  if rate <= 0. then invalid_arg "Dataplane.run: rate must be positive";
  if config.chunks < 1 || config.chunk_size <= 0. then
    invalid_arg "Dataplane.run: bad chunk configuration";
  if config.jitter < 0. then invalid_arg "Dataplane.run: negative jitter";
  let n = csr.Flowgraph.Csr.n and m = csr.Flowgraph.Csr.m in
  let row_off = csr.Flowgraph.Csr.row_off
  and arc_dst = csr.Flowgraph.Csr.col
  and arc_w = csr.Flowgraph.Csr.w
  and pred_off = csr.Flowgraph.Csr.pred_off
  and pred_src = csr.Flowgraph.Csr.pred_src
  and pred_edge = csr.Flowgraph.Csr.pred_edge in
  let k = config.chunks in
  let wpn = (k + bits - 1) / bits in
  let rng = Prng.Splitmix.create config.seed in
  let dedup = config.dedup_inflight in
  let jitter_span = if config.jitter > 0. then log (1. +. config.jitter) else 0. in
  (* Arc arena. carrying: -2 disabled (too slow for the horizon, same
     filter as Massoulie.Sim), -1 idle, >= 0 chunk in flight. *)
  let carrying = Array.make m (-2) in
  let duration = Array.make m infinity in
  let arc_src = Array.make m 0 in
  for v = 0 to n - 1 do
    for a = row_off.(v) to row_off.(v + 1) - 1 do
      arc_src.(a) <- v
    done
  done;
  let enabled_arcs = ref 0 in
  for a = 0 to m - 1 do
    let w = arc_w.(a) in
    if w > 0. && config.chunk_size /. w < config.max_time then begin
      duration.(a) <- config.chunk_size /. w;
      carrying.(a) <- -1;
      incr enabled_arcs
    end
  done;
  (* Ownership bitsets, one wpn-word row per node. *)
  let owned = Array.make (n * wpn) 0 in
  let inflight = Array.make (n * wpn) 0 in
  let owned_count = Array.make n 0 in
  let release_time =
    Array.init k (fun c ->
        if config.streaming then float_of_int c *. config.chunk_size /. rate else 0.)
  in
  if not config.streaming then begin
    for wi = 0 to wpn - 1 do
      let lo = wi * bits in
      let width = min bits (k - lo) in
      (* All [width] low bits; OCaml ints are exactly 63 bits wide, so
         the full-word mask is -1 (shifting by 63 is unspecified). *)
      owned.(wi) <- (if width = bits then -1 else (1 lsl width) - 1)
    done;
    owned_count.(0) <- k
  end;
  let first_arrival = Array.make n infinity in
  let per_node_completion = Array.make n infinity in
  per_node_completion.(0) <-
    (if config.streaming then release_time.(k - 1) else 0.);
  if not config.streaming then first_arrival.(0) <- 0.;
  let complete_nodes = ref (if config.streaming then 0 else 1) in
  (* Per-neighbor send queues: qlen.(a) = |{c : src owns c, dst lacks
     c}| — the exact backlog of arc [a], counting the chunk currently on
     the wire. Kept incrementally; the time integral of the total gives
     the mean occupancy without any per-arc scan. *)
  let qlen = Array.make m 0 in
  let total_q = ref 0 in
  let peak_q = ref 0 in
  let q_integral = ref 0. in
  let last_event_time = ref 0. in
  if not config.streaming then
    for a = row_off.(0) to row_off.(1) - 1 do
      if carrying.(a) >= -1 then begin
        qlen.(a) <- k;
        total_q := !total_q + k
      end
    done;
  if !total_q > 0 then peak_q := k;
  (* Event heap. Payloads: [0, m) = arrival on that arc, [m, m + k) =
     release of chunk (payload - m). Sized to the worst case — one
     in-flight transfer per enabled arc plus all pending releases — so
     it never grows mid-run. *)
  let heap = Eheap.create ~capacity:(!enabled_arcs + k + 1) () in
  let transfers = ref 0 and duplicates = ref 0 and events = ref 0 in
  (* Delay histogram (per-delivery lag behind release; in file mode the
     release times are all 0, so this is the absolute arrival time —
     the same convention as Massoulie.Sim's max_lag). *)
  let chunk_time = config.chunk_size /. rate in
  let bin_w = chunk_time /. 16. in
  let inv_bin_w = 1. /. bin_w in
  let hist = Array.make hist_bins 0 in
  let delay_count = ref 0 in
  let delay_max = ref 0. in
  (* [now] lives in a one-element float array so the helper functions
     below take only int arguments — classic ocamlopt would box a float
     parameter at every (non-inlined) call, and this loop must stay
     allocation-free. *)
  let now = Array.make 1 0. in
  let disc =
    match config.discipline with
    | Random_useful -> 0
    | Oracle_reservoir -> 1
    | Serve_in_order -> 2
  in
  (* Uniformly random useful chunk for idle arc [a] = (u, v), or -1.

     Oracle_reservoir consumes one next_below per candidate in
     ascending chunk order — bit-compatible with Massoulie.Sim's
     reservoir scan. Random_useful draws the same uniform distribution
     with a single next_below: the candidate count comes straight from
     the [qlen] backlog invariant (minus an O(indeg) in-flight
     correction when dedup is on — every in-flight chunk toward [v]
     sits on exactly one in-arc, so scanning [v]'s predecessors'
     [carrying] enumerates the inflight bitset), then one word-skip
     pass locates the j-th candidate bit. No counting scan, so a pick
     costs O(words/2) instead of O(k) — this is where the 20×-over-
     legacy bench gate is won. Serve_in_order takes the lowest useful
     chunk — the per-neighbor-queue streaming discipline (playback
     order) — and is PRNG-free. *)
  let pick a u v =
    let sb = u * wpn and db = v * wpn in
    if disc = 1 then begin
      let choice = ref (-1) and seen = ref 0 in
      for wi = 0 to wpn - 1 do
        let cand =
          owned.(sb + wi)
          land lnot owned.(db + wi)
          land (if dedup then lnot inflight.(db + wi) else -1)
        in
        let x = ref cand in
        while !x <> 0 do
          let b = !x land - !x in
          incr seen;
          if Prng.Splitmix.next_below rng !seen = 0 then
            choice := (wi * bits) + ntz b;
          x := !x lxor b
        done
      done;
      !choice
    end
    else if disc = 2 then begin
      (* Lowest useful chunk: first non-empty candidate word. *)
      let wi = ref 0 and c = ref (-1) in
      while !c < 0 && !wi < wpn do
        let cand =
          Array.unsafe_get owned (sb + !wi)
          land lnot (Array.unsafe_get owned (db + !wi))
          land
          (if dedup then lnot (Array.unsafe_get inflight (db + !wi)) else -1)
        in
        if cand <> 0 then c := (!wi * bits) + ntz cand;
        incr wi
      done;
      !c
    end
    else begin
      (* |owned(u) \ owned(v)| minus the chunks already on the wire
         toward v — exactly popcount of the candidate mask. *)
      let total = ref (Array.unsafe_get qlen a) in
      if dedup then
        for p = pred_off.(v) to pred_off.(v + 1) - 1 do
          let c = Array.unsafe_get carrying (Array.unsafe_get pred_edge p) in
          if
            c >= 0
            && Array.unsafe_get owned (sb + div_bits c)
               land (1 lsl mod_bits c)
               <> 0
          then decr total
        done;
      if !total <= 0 then -1
      else begin
        (* One draw for the whole pick, then word-skip to the j-th
           candidate: whole words are skipped by popcount, only the
           final word is walked bit by bit. *)
        let j = ref (Prng.Splitmix.next_below rng !total) in
        let wi = ref 0 and c = ref (-1) in
        while !c < 0 do
          let cand =
            Array.unsafe_get owned (sb + !wi)
            land lnot (Array.unsafe_get owned (db + !wi))
            land
            (if dedup then lnot (Array.unsafe_get inflight (db + !wi))
             else -1)
          in
          let pc = popcount cand in
          if !j < pc then begin
            let x = ref cand in
            while !j > 0 do
              x := !x land (!x - 1);
              decr j
            done;
            c := (!wi * bits) + ntz (!x land - !x)
          end
          else begin
            j := !j - pc;
            incr wi
          end
        done;
        !c
      end
    end
  in
  let try_start_from u a =
    if
      carrying.(a) = -1
      (* Empty send queue => empty candidate mask, in every discipline
         (the mask is a subset of the backlog set); skipping the scan
         consumes no PRNG draws either way, so the oracle stream is
         unaffected. *)
      && qlen.(a) > 0
    then begin
      let v = arc_dst.(a) in
      let c = pick a u v in
      if c >= 0 then begin
        Array.unsafe_set carrying a c;
        let wi = (v * wpn) + div_bits c in
        Array.unsafe_set inflight wi
          (Array.unsafe_get inflight wi lor (1 lsl mod_bits c));
        let d =
          if jitter_span = 0. then duration.(a)
          else
            let u = (2. *. Prng.Splitmix.next_float rng) -. 1. in
            duration.(a) *. exp (u *. jitter_span)
        in
        Eheap.add heap (now.(0) +. d) a
      end
    end
  in
  let wake_out v =
    for a = row_off.(v) to row_off.(v + 1) - 1 do
      try_start_from v a
    done
  in
  (* Send-queue bookkeeping when [v] acquires chunk [c]: every out-arc
     whose head still lacks [c] gains a pending chunk; every in-arc
     whose tail already has [c] loses one. *)
  let queues_on_learn v c =
    let wi = div_bits c and bit = 1 lsl mod_bits c in
    for a = row_off.(v) to row_off.(v + 1) - 1 do
      if
        Array.unsafe_get carrying a >= -1
        && Array.unsafe_get owned ((Array.unsafe_get arc_dst a * wpn) + wi)
           land bit
           = 0
      then begin
        let q = Array.unsafe_get qlen a + 1 in
        Array.unsafe_set qlen a q;
        incr total_q;
        if q > !peak_q then peak_q := q
      end
    done;
    for p = pred_off.(v) to pred_off.(v + 1) - 1 do
      let e = Array.unsafe_get pred_edge p in
      if
        Array.unsafe_get carrying e >= -1
        && Array.unsafe_get owned ((Array.unsafe_get pred_src p * wpn) + wi)
           land bit
           <> 0
      then begin
        Array.unsafe_set qlen e (Array.unsafe_get qlen e - 1);
        decr total_q
      end
    done
  in
  let learn v c =
    let wi = (v * wpn) + div_bits c and bit = 1 lsl mod_bits c in
    if Array.unsafe_get owned wi land bit = 0 then begin
      Array.unsafe_set owned wi (Array.unsafe_get owned wi lor bit);
      owned_count.(v) <- owned_count.(v) + 1;
      let t = now.(0) in
      if owned_count.(v) = 1 then first_arrival.(v) <- t;
      let d = t -. Array.unsafe_get release_time c in
      let b = int_of_float (d *. inv_bin_w) in
      let b = if b >= hist_bins then hist_bins - 1 else b in
      Array.unsafe_set hist b (Array.unsafe_get hist b + 1);
      incr delay_count;
      if d > !delay_max then delay_max := d;
      if owned_count.(v) = k then begin
        per_node_completion.(v) <- t;
        incr complete_nodes
      end;
      queues_on_learn v c;
      wake_out v
    end
  in
  (* Seed events — releases in ascending chunk order, exactly as
     Massoulie.Sim pushes them, so FIFO tie-breaking agrees. *)
  if config.streaming then
    for c = 0 to k - 1 do
      Eheap.add heap release_time.(c) (m + c)
    done
  else wake_out 0;
  let running = ref true in
  while !running do
    if not (Eheap.pop heap) then running := false
    else begin
      let t = Eheap.popped_time heap in
      if t > config.max_time then running := false
      else begin
        (* Advance the queue-occupancy integral to this event. *)
        q_integral :=
          !q_integral +. (float_of_int !total_q *. (t -. !last_event_time));
        last_event_time := t;
        now.(0) <- t;
        incr events;
        let p = Eheap.popped_payload heap in
        if p >= m then begin
          (* Release of chunk [p - m] at the source. *)
          let c = p - m in
          let wi = div_bits c and bit = 1 lsl mod_bits c in
          owned.(wi) <- owned.(wi) lor bit;
          owned_count.(0) <- owned_count.(0) + 1;
          if owned_count.(0) = 1 then first_arrival.(0) <- t;
          if owned_count.(0) = k then begin
            per_node_completion.(0) <- t;
            incr complete_nodes
          end;
          queues_on_learn 0 c;
          wake_out 0
        end
        else begin
          let a = p in
          let c = Array.unsafe_get carrying a in
          let v = Array.unsafe_get arc_dst a in
          Array.unsafe_set carrying a (-1);
          let wi = (v * wpn) + div_bits c and bit = 1 lsl mod_bits c in
          Array.unsafe_set inflight wi
            (Array.unsafe_get inflight wi land lnot bit);
          incr transfers;
          if Array.unsafe_get owned wi land bit <> 0 then incr duplicates
          else learn v c;
          (* The sender is free again — same wake order as the oracle:
             the receiver's out-arcs first (inside [learn]), then the
             freed arc. *)
          try_start_from arc_src.(a) a;
          if !complete_nodes = n then running := false
        end
      end
    end
  done;
  let delivered_all = !complete_nodes = n in
  let completion_time = Array.fold_left Float.max 0. per_node_completion in
  let completion_time = if delivered_all then completion_time else infinity in
  let ideal = float_of_int k *. config.chunk_size /. rate in
  let efficiency =
    if delivered_all && completion_time > 0. then ideal /. completion_time
    else 0.
  in
  let achieved_rate =
    if delivered_all && completion_time > 0. then
      float_of_int k *. config.chunk_size /. completion_time
    else 0.
  in
  let delay =
    {
      p50 = quantile_of_hist hist !delay_count bin_w !delay_max 0.50;
      p90 = quantile_of_hist hist !delay_count bin_w !delay_max 0.90;
      p99 = quantile_of_hist hist !delay_count bin_w !delay_max 0.99;
      max = !delay_max;
    }
  in
  let startup =
    let xs = Array.sub first_arrival 1 (max 0 (n - 1)) in
    Array.sort Float.compare xs;
    {
      p50 = exact_quantile xs 0.50;
      p90 = exact_quantile xs 0.90;
      p99 = exact_quantile xs 0.99;
      max = (if Array.length xs = 0 then 0. else xs.(Array.length xs - 1));
    }
  in
  let mean_queue =
    if !last_event_time > 0. && !enabled_arcs > 0 then
      !q_integral /. (!last_event_time *. float_of_int !enabled_arcs)
    else 0.
  in
  {
    delivered_all;
    completion_time;
    per_node_completion;
    achieved_rate;
    efficiency;
    events = !events;
    transfers = !transfers;
    duplicates = !duplicates;
    max_lag = !delay_max;
    delay;
    startup;
    peak_queue = !peak_q;
    mean_queue;
  }

(* {2 Canonical metrics serialization} *)

let json_float x =
  if Float.is_finite x then Printf.sprintf "%.17g" x else "null"

let quantiles_json q =
  Printf.sprintf {|{"p50": %s, "p90": %s, "p99": %s, "max": %s}|}
    (json_float q.p50) (json_float q.p90) (json_float q.p99) (json_float q.max)

let metrics_to_json ~config ~nodes ~edges ~rate r =
  Printf.sprintf
    {|{"format": "bmp-stream-metrics", "version": 1, "nodes": %d, "edges": %d, "rate": %s, "chunks": %d, "streaming": %b, "jitter": %s, "discipline": "%s", "delivered_all": %b, "completion_time": %s, "achieved_rate": %s, "efficiency": %s, "events": %d, "transfers": %d, "duplicates": %d, "delay": %s, "startup": %s, "peak_queue": %d, "mean_queue": %s}|}
    nodes edges (json_float rate) config.chunks config.streaming
    (json_float config.jitter)
    (discipline_name config.discipline)
    r.delivered_all (json_float r.completion_time)
    (json_float r.achieved_rate) (json_float r.efficiency) r.events r.transfers
    r.duplicates (quantiles_json r.delay) (quantiles_json r.startup)
    r.peak_queue (json_float r.mean_queue)
