(* Index-based 4-ary min-heap over an event arena with an embedded
   free-list.

   Event records live in parallel flat arrays (time / payload / seq)
   indexed by a stable event id. The heap array holds event ids ordered
   by (time, seq); [slot] doubles as the embedded free-list: for a live
   event it is unused bookkeeping (kept for debug invariants), for a
   free id it holds the next free id (or -1). All operations after
   warm-up are allocation-free: ids are recycled through the free-list
   and the arrays only grow (doubling) when more events are in flight
   than ever before.

   A 4-ary layout keeps the tree half as deep as a binary heap —
   sift-down does more comparisons per level but those hit one or two
   cache lines of the same flat arrays, which is the right trade for
   event queues whose size tracks the number of busy links (10^5–10^6
   entries at the bench's largest n).

   The sift loops use unsafe array accesses: every index is either a
   heap position < size <= capacity or an event id < capacity, both
   enforced by [add]/[grow], and the bench gate (bench/stream_bench.ml)
   counts every nanosecond of this path at 10^7 events per run. *)

type t = {
  mutable time : float array;  (* event id -> key *)
  mutable payload : int array;  (* event id -> caller payload *)
  mutable seq : int array;  (* event id -> insertion sequence (FIFO ties) *)
  mutable slot : int array;  (* free id -> next free id; -1 terminates *)
  mutable heap : int array;  (* heap position -> event id *)
  mutable size : int;
  mutable free : int;  (* head of the free-list, -1 when exhausted *)
  mutable next_seq : int;
  (* Most recently popped event, written here instead of returned as a
     tuple: a one-element float array keeps the time unboxed (a mutable
     float field of this mixed record would allocate a fresh box on
     every pop). *)
  popped : float array;
  mutable popped_payload : int;
}

let create ?(capacity = 16) () =
  let capacity = max 4 capacity in
  let slot = Array.init capacity (fun i -> i + 1) in
  slot.(capacity - 1) <- -1;
  {
    time = Array.make capacity 0.;
    payload = Array.make capacity 0;
    seq = Array.make capacity 0;
    slot;
    heap = Array.make capacity 0;
    size = 0;
    free = 0;
    next_seq = 0;
    popped = Array.make 1 nan;
    popped_payload = -1;
  }

let size t = t.size
let is_empty t = t.size = 0

(* Strict total order on events: earlier time first, FIFO among equal
   times. [seq] is unique, so there are no true ties and pop order is
   independent of the heap's arity or internal layout. *)
let[@inline] before t a b =
  let ta = Array.unsafe_get t.time a and tb = Array.unsafe_get t.time b in
  ta < tb
  || (ta = tb && Array.unsafe_get t.seq a < Array.unsafe_get t.seq b)

let[@inline never] grow t =
  let cap = Array.length t.heap in
  let cap' = 2 * cap in
  let time = Array.make cap' 0.
  and payload = Array.make cap' 0
  and seq = Array.make cap' 0
  and slot = Array.make cap' (-1)
  and heap = Array.make cap' 0 in
  Array.blit t.time 0 time 0 cap;
  Array.blit t.payload 0 payload 0 cap;
  Array.blit t.seq 0 seq 0 cap;
  Array.blit t.slot 0 slot 0 cap;
  Array.blit t.heap 0 heap 0 cap;
  (* Chain the fresh ids onto the free-list. *)
  for i = cap to cap' - 2 do
    slot.(i) <- i + 1
  done;
  slot.(cap' - 1) <- t.free;
  t.free <- cap;
  t.time <- time;
  t.payload <- payload;
  t.seq <- seq;
  t.slot <- slot;
  t.heap <- heap

let sift_up t pos =
  let id = Array.unsafe_get t.heap pos in
  let pos = ref pos in
  while
    !pos > 0
    &&
    let parent = (!pos - 1) / 4 in
    before t id (Array.unsafe_get t.heap parent)
  do
    let parent = (!pos - 1) / 4 in
    Array.unsafe_set t.heap !pos (Array.unsafe_get t.heap parent);
    pos := parent
  done;
  Array.unsafe_set t.heap !pos id

let sift_down t =
  let id = Array.unsafe_get t.heap 0 in
  let idt = Array.unsafe_get t.time id and ids = Array.unsafe_get t.seq id in
  let pos = ref 0 in
  let continue = ref true in
  while !continue do
    let first = (4 * !pos) + 1 in
    if first >= t.size then continue := false
    else begin
      let last = min (first + 3) (t.size - 1) in
      (* Track the best child's key in locals so each child's (time,
         seq) is loaded exactly once per level. *)
      let best = ref first in
      let bid = Array.unsafe_get t.heap first in
      let bt = ref (Array.unsafe_get t.time bid)
      and bs = ref (Array.unsafe_get t.seq bid) in
      for c = first + 1 to last do
        let cid = Array.unsafe_get t.heap c in
        let ct = Array.unsafe_get t.time cid in
        if ct < !bt || (ct = !bt && Array.unsafe_get t.seq cid < !bs) then begin
          best := c;
          bt := ct;
          bs := Array.unsafe_get t.seq cid
        end
      done;
      if !bt < idt || (!bt = idt && !bs < ids) then begin
        Array.unsafe_set t.heap !pos (Array.unsafe_get t.heap !best);
        pos := !best
      end
      else continue := false
    end
  done;
  Array.unsafe_set t.heap !pos id

(* [@inline] so the float argument crosses into the caller's frame
   without the box classic ocamlopt materialises for non-inlined calls
   with float parameters. *)
let[@inline] add t time payload =
  if t.free < 0 then grow t;
  let id = t.free in
  t.free <- Array.unsafe_get t.slot id;
  Array.unsafe_set t.time id time;
  Array.unsafe_set t.payload id payload;
  Array.unsafe_set t.seq id t.next_seq;
  t.next_seq <- t.next_seq + 1;
  Array.unsafe_set t.heap t.size id;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let[@inline] pop t =
  if t.size = 0 then false
  else begin
    let id = Array.unsafe_get t.heap 0 in
    Array.unsafe_set t.popped 0 (Array.unsafe_get t.time id);
    t.popped_payload <- Array.unsafe_get t.payload id;
    (* Recycle the id through the free-list. *)
    Array.unsafe_set t.slot id t.free;
    t.free <- id;
    t.size <- t.size - 1;
    if t.size > 0 then begin
      Array.unsafe_set t.heap 0 (Array.unsafe_get t.heap t.size);
      sift_down t
    end;
    true
  end

let[@inline] popped_time t = Array.unsafe_get t.popped 0
let[@inline] popped_payload t = t.popped_payload

let peek_time t = if t.size = 0 then None else Some t.time.(t.heap.(0))
