(** Index-based 4-ary min-heap for discrete-event simulation.

    Event records (key time, integer payload) live in preallocated flat
    arrays indexed by recycled event ids — an embedded free-list threads
    through the id arena — so the queue performs {e zero heap
    allocation} per event once warmed up: {!add} and {!pop} only read
    and write int/float array cells, growing (by doubling) only when
    more events are simultaneously in flight than ever before.

    Pop order is a strict total order: increasing time, FIFO among
    events with exactly equal times (insertion sequence). This makes
    every simulation driven by the heap deterministic independent of the
    heap's internal layout, and matches the tie-breaking contract of the
    boxed {!Massoulie.Pqueue} it replaces, so the two simulators can be
    compared event-for-event. *)

type t

val create : ?capacity:int -> unit -> t
(** [create ~capacity ()] preallocates room for [capacity] in-flight
    events (default 16, minimum 4). Size it to the number of concurrent
    transfers — one per busy overlay link — to avoid any growth during
    the run. *)

val size : t -> int
val is_empty : t -> bool

val add : t -> float -> int -> unit
(** [add t time payload] schedules an event. Allocation-free unless the
    arena must grow. *)

val pop : t -> bool
(** Removes the minimum event, [false] on an empty heap. The removed
    event's fields are read through {!popped_time}/{!popped_payload} —
    returning them directly would box a tuple per event. They remain
    valid until the next {!pop}. *)

val popped_time : t -> float
val popped_payload : t -> int

val peek_time : t -> float option
(** Key of the next event to pop. Allocates an option — not for the hot
    loop. *)
