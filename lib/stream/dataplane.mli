(** Million-node discrete-event streaming dataplane.

    Runs the per-neighbor-queue broadcast dynamics (the execution model
    of "Optimal Distributed Broadcasting with Per-neighbor Queues",
    arXiv:1301.5107 — the setting the source paper's overlays target,
    "up to millions of online users") over a frozen {!Flowgraph.Csr}
    snapshot. Same model as {!Massoulie.Sim} — every overlay arc is an
    independent pipe of one-chunk transfer time [chunk_size / c i j]
    that grabs a useful chunk whenever it is free — but all simulator
    state is preallocated flat arrays indexed by CSR arc ids:

    - chunk ownership and in-flight dedup as 63-bit-word bitsets;
    - per-arc transfer state and {e per-neighbor send-queue} backlogs
      ([qlen.(a) = ] number of chunks the tail owns and the head still
      lacks, maintained incrementally — exact occupancy, no scans);
    - an index-based 4-ary event heap ({!Eheap}) with an embedded
      free-list instead of the boxed {!Massoulie.Pqueue}.

    The event loop performs no per-event heap allocation in steady
    state ([bench/stream_bench.ml] gates minor-words/event), which is
    what makes n = 10^5–10^6 runs feasible: it measures what rate-only
    verification cannot — dissemination-delay distribution, queue
    occupancy, startup latency and achieved rate on the computed
    overlays at platform scale. *)

type discipline =
  | Random_useful
      (** uniformly random useful chunk, one PRNG draw per pick (count
          candidates, then select) — the default, and the fast
          equivalent of {!Oracle_reservoir} (same distribution,
          different stream) *)
  | Oracle_reservoir
      (** uniformly random useful chunk via a reservoir scan consuming
          one draw per candidate in ascending chunk order —
          bit-compatible with {!Massoulie.Sim}: identical seeds give
          identical completion times (the differential-oracle mode) *)
  | Serve_in_order
      (** lowest-index useful chunk — the per-neighbor-queue streaming
          discipline (playback order); PRNG-free and deterministic *)

type config = {
  chunks : int;  (** number of chunks, [>= 1] *)
  chunk_size : float;  (** data units per chunk, [> 0] *)
  seed : int64;
  max_time : float;  (** simulation horizon safeguard *)
  streaming : bool;
      (** live-stream release schedule: chunk [c] appears at the source
          at [c * chunk_size / rate] *)
  jitter : float;
      (** per-transfer log-uniform duration fluctuation in
          [[1/(1+jitter), 1+jitter]]; [0.] = ideal links. Same model and
          PRNG consumption as {!Massoulie.Sim}. *)
  dedup_inflight : bool;
      (** when [true], a chunk already flying toward a receiver is not
          picked by its other in-arcs *)
  discipline : discipline;
}

val default_config : config
(** 200 chunks of size 1, seed 42, horizon [1e6], file mode, no jitter,
    dedup on, [Random_useful]. Matches {!Massoulie.Sim.default_config}
    field-for-field on the shared fields. *)

type quantiles = { p50 : float; p90 : float; p99 : float; max : float }
(** [p50]/[p90]/[p99] are upper bin edges of a chunk-time/16 histogram
    (delay) or exact order statistics (startup); [max] is always
    exact. *)

type result = {
  delivered_all : bool;
  completion_time : float;  (** [infinity] when not delivered *)
  per_node_completion : float array;
  achieved_rate : float;
      (** [chunks * chunk_size / completion_time], [0.] if undelivered —
          converges to the verified broadcast rate as [chunks] grows *)
  efficiency : float;  (** [ideal / completion_time], as in {!Massoulie.Sim} *)
  events : int;  (** heap events processed (arrivals + releases) *)
  transfers : int;
  duplicates : int;
  max_lag : float;
      (** worst delivery delay behind release (file mode: worst absolute
          arrival time) — {!Massoulie.Sim.result.max_lag} *)
  delay : quantiles;
      (** per-delivery delay behind the chunk's release time, over all
          transfer deliveries *)
  startup : quantiles;
      (** first-chunk arrival time per non-source node — the time a
          viewer waits before playback can start *)
  peak_queue : int;  (** max per-arc send-queue backlog over the run *)
  mean_queue : float;
      (** time-averaged backlog per enabled arc over [[0, t_end]] *)
}

val discipline_name : discipline -> string
(** ["random"], ["oracle"], ["inorder"] — the CLI identifiers. *)

val discipline_of_name : string -> discipline option

val run : ?config:config -> Flowgraph.Csr.t -> rate:float -> result
(** [run csr ~rate] simulates the broadcast to completion (or the
    horizon). Node [0] is the source; [rate] must be positive. Arcs too
    slow to deliver one chunk within the horizon are disabled, as in
    {!Massoulie.Sim}. The call allocates its arenas up front — O(n·k/63
    + m) words — and then runs allocation-free. *)

val metrics_to_json :
  config:config -> nodes:int -> edges:int -> rate:float -> result -> string
(** Canonical single-line JSON (format ["bmp-stream-metrics"],
    version 1, floats at 17 significant digits, non-finite values as
    [null]) — byte-deterministic for a given (snapshot, config, rate),
    pinned by the [make stream-smoke] golden. *)
