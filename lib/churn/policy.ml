open Broadcast

type t =
  | Always_patch
  | Always_rebuild
  | Adaptive of { min_ratio : float; degree_slack : int }

let adaptive_default = Adaptive { min_ratio = 0.8; degree_slack = 2 }

let name = function
  | Always_patch -> "patch"
  | Always_rebuild -> "rebuild"
  | Adaptive { min_ratio; degree_slack } ->
    Printf.sprintf "adaptive(r=%g,d=%d)" min_ratio degree_slack

type observation = { rate : float; optimal : float; max_excess : int }

type state = {
  policy : t;
  mutable promised : int;  (** degree bound captured at the last build *)
  mutable drift : int;  (** running max of (max_excess - promised) since *)
}

(* Theorem 4.1's worst-class additive bound — the promise to fall back on
   when provenance carries none (repaired/imported schemes). *)
let default_promise = 3

let promise_of o =
  match (Scheme.provenance (Overlay.scheme o)).Scheme.degree_bound with
  | Some b -> b
  | None -> default_promise

let init policy o = { policy; promised = promise_of o; drift = 0 }

let decide st obs =
  match st.policy with
  | Always_patch -> false
  | Always_rebuild -> true
  | Adaptive { min_ratio; degree_slack } ->
    if not (min_ratio >= 0. && min_ratio <= 1.) then
      invalid_arg "Policy.decide: min_ratio must lie in [0, 1]";
    if degree_slack < 0 then
      invalid_arg "Policy.decide: degree_slack must be non-negative";
    st.drift <- max st.drift (obs.max_excess - st.promised);
    let ratio =
      if obs.optimal > 0. && Float.is_finite obs.optimal then
        obs.rate /. obs.optimal
      else 1.
    in
    ratio < min_ratio || st.drift > degree_slack

let note_rebuild st o =
  st.promised <- promise_of o;
  st.drift <- 0
