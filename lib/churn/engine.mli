(** Discrete-event fault injection over live overlays.

    [run] replays a {!Trace.t} against an {!Overlay.t}: each event is
    applied through the corresponding {!Broadcast.Repair} operation, the
    configured {!Policy} decides whether to follow the local patch with a
    full rebuild, the {!Audit} level re-checks every invariant, and a
    per-event timeline plus a summary come back for reporting. The whole
    run is deterministic: same overlay, trace, policy and audit level —
    same result, byte for byte.

    Event semantics:

    - node-targeting events resolve their abstract [pick] against the
      current population as [1 + pick mod (size - 1)] (never the source);
    - a [Leave] is skipped when the overlay has 3 or fewer nodes, and a
      [Fail_batch] keeps at most [size - 3] distinct casualties (dropping
      the excess picks), so the overlay never shrinks below a source plus
      two receivers mid-run;
    - [Degrade] multiplies the picked node's bandwidth by its factor;
      [Restore] divides by it (so a degrade/restore pair at equal factors
      cancels);
    - a [Flash_crowd] applies its arrivals as successive joins and
      reports them as one timeline record. *)

open Broadcast

type action =
  | Patched  (** local repair only *)
  | Rebuilt  (** local repair followed by a policy-ordered rebuild *)
  | Skipped  (** event could not apply (population too small) *)

type record = {
  index : int;  (** position of the event in the trace *)
  event : Trace.event;
  action : action;
  size : int;  (** population after the event *)
  rate : float;  (** measured throughput after the event *)
  optimal : float;  (** optimal acyclic rate of the instance after *)
  ratio : float;  (** [rate /. optimal], 1 when the optimum is 0 *)
  churn_edges : int;  (** edges touched by this event (patch + rebuild) *)
  cumulative_churn : int;
  max_excess : int;  (** worst additive outdegree excess after the event *)
  rebuilds : int;  (** cumulative rebuild count *)
}

type summary = {
  events : int;  (** trace length *)
  applied : int;
  skipped : int;
  rebuilds : int;
  total_churn : int;  (** total edge churn (repair + rebuild cost) *)
  min_ratio : float;  (** worst rate / optimal over applied events; 1 if none *)
  mean_ratio : float;  (** mean over applied events; 1 if none *)
  final_size : int;
  final_rate : float;
  final_optimal : float;
}

type result = { overlay : Overlay.t; timeline : record list; summary : summary }

val run :
  ?policy:Policy.t ->
  ?audit:Audit.level ->
  ?engine:Audit.engine ->
  ?rebuild_headroom:float ->
  ?on_event:(record -> unit) ->
  ?probe:
    (index:int ->
    Overlay.t ->
    Flowgraph.Maxflow.Incremental.t option ->
    unit) ->
  Overlay.t ->
  Trace.t ->
  result
(** [run o trace] replays the whole trace. [policy] defaults to
    [Policy.Always_patch]; [audit] to [Audit.Off].

    [engine] (default [Audit.Full]) selects the rate-maintenance engine:
    under [Audit.Incremental] a {!Flowgraph.Maxflow.Incremental} state is
    created from the starting overlay and moved across every applied
    event via the repair's [node_map] (a policy rebuild rebases it cold —
    the rewiring invalidates most warm flow anyway), and the auditor
    receives the handle, adding the warm-value agreement checks of
    {!Audit.check}. The knob changes what is maintained and audited,
    never the run's outputs: timeline, summary and final overlay are
    byte-identical across engines.

    [probe] is a test hook called after each applied event's audit with
    the event index, the live overlay and the warm state (when the
    incremental engine is on) — the differential harness uses it to
    cross-check the warm value after {e every} event.

    [rebuild_headroom]
    is forwarded to {!Broadcast.Repair.rebuild}: without it a rebuild
    targets the exact optimum and leaves no spare upload capacity, so on
    a growing population every post-rebuild join collapses the rate to 0
    and (under an adaptive policy) triggers a rebuild storm; a headroom
    below 1 is how an operator breaks that cycle. [on_event] streams
    each record as it is produced (the CLI's [--timeline]). Raises
    {!Audit.Violation} on the first audit failure, with the event
    index. *)

(** {2 Stepwise driving}

    [run] is a fold of {!step} over a trace. Long-running consumers — the
    tracker daemon ({!Tracker}) above all — hold a {!state} and feed it
    events one at a time as requests arrive, so a single engine (policy
    drift state, warm flow, counters) survives an unbounded stream.
    Driving [step] over the events of a trace in order reproduces [run]
    on that trace byte for byte: same records, same summary, same final
    overlay. *)

type state
(** A live engine: the current overlay plus every piece of cross-event
    state ([run]'s loop variables — policy state, warm incremental flow,
    counters, last record). Mutable; not thread-safe. *)

val start :
  ?policy:Policy.t ->
  ?audit:Audit.level ->
  ?engine:Audit.engine ->
  ?rebuild_headroom:float ->
  ?probe:
    (index:int ->
    Overlay.t ->
    Flowgraph.Maxflow.Incremental.t option ->
    unit) ->
  Overlay.t ->
  state
(** [start o] opens a live engine on overlay [o]. The optional arguments
    are exactly {!run}'s (defaults included); under [Audit.Incremental]
    the warm flow state is created here, from [o]. *)

val step : ?defer_audit:bool -> state -> Trace.event -> record
(** [step st e] applies one event — repair, policy decision, optional
    rebuild, warm-flow maintenance, audit, probe — and returns its
    record. Event indices count from 0 in [start] order.

    [defer_audit] (default [false]) postpones the audit of an applied
    event until {!flush_audit} or the next non-deferred applied step,
    letting a batch of steps pay for one audit of the final state instead
    of one per event. Only the latest applied step's audit is pending at
    any time — intermediate deferred audits are superseded, which is the
    point. Skipped events never audit (deferred or not), exactly as in
    {!run}. Raises {!Audit.Violation} on an inline audit failure; the
    state should then be considered poisoned and discarded. *)

val flush_audit : state -> unit
(** Runs the audit left pending by [step ~defer_audit:true], if any,
    against the current overlay. No-op when nothing is pending. Raises
    {!Audit.Violation} on failure. *)

val live : state -> Overlay.t
(** The current overlay. *)

val progress : state -> summary
(** Summary over the steps taken so far — the same value [run] would
    report for the trace consumed so far. *)
