open Broadcast
module Instance = Platform.Instance
module Csr = Flowgraph.Csr

exception Violation of { index : int; what : string }

type level = Off | Check | Strict

let level_name = function Off -> "off" | Check -> "check" | Strict -> "strict"

type engine = Full | Incremental

let engine_name = function Full -> "full" | Incremental -> "incremental"

let engine_of_name = function
  | "full" -> Some Full
  | "incremental" -> Some Incremental
  | _ -> None

let fail index fmt = Printf.ksprintf (fun what -> raise (Violation { index; what })) fmt

(* Relative slack matching the library's flow-comparison tolerance. *)
let slack = Verify.flow_slack

let check_order index o =
  let order = Overlay.order o in
  let n = Scheme.size (Overlay.scheme o) in
  if Array.length order <> n then
    fail index "order length %d, %d nodes" (Array.length order) n;
  if n > 0 && order.(0) <> 0 then
    fail index "order does not start at the source (order.(0) = %d)" order.(0);
  let seen = Array.make n false in
  Array.iter
    (fun v ->
      if v < 0 || v >= n then fail index "order mentions out-of-range node %d" v;
      if seen.(v) then fail index "order mentions node %d twice" v;
      seen.(v) <- true)
    order;
  let pos = Overlay.positions o in
  Csr.iter_edges
    (fun ~src ~dst _ ->
      if pos.(src) >= pos.(dst) then
        fail index "edge %d -> %d goes backward in the topological order" src dst)
    (Scheme.snapshot (Overlay.scheme o))

let check_structure index o =
  let scheme = Overlay.scheme o in
  let inst = Scheme.instance scheme in
  let csr = Scheme.snapshot scheme in
  let n = Instance.size inst in
  for v = 0 to n - 1 do
    let out = Csr.out_weight csr v in
    let b = inst.Instance.bandwidth.(v) in
    if not (Util.fle out b) then
      fail index "node %d uploads %.12g over its bandwidth %.12g" v out b
  done;
  Csr.iter_edges
    (fun ~src ~dst w ->
      if w > 0. && Instance.is_guarded inst src && Instance.is_guarded inst dst then
        fail index "firewall violation: guarded %d sends to guarded %d" src dst)
    csr;
  (match inst.Instance.bin with
  | None -> ()
  | Some bin ->
    for v = 1 to n - 1 do
      let w = Csr.in_weight csr v in
      if not (Util.fle w bin.(v)) then
        fail index "node %d receives %.12g over its incoming cap %.12g" v w bin.(v)
    done);
  if not (Csr.is_acyclic csr) then fail index "overlay graph has a directed cycle"

let check_rate level index ?stats ?flow o =
  let scheme = Overlay.scheme o in
  let csr = Scheme.snapshot scheme in
  let cut, _ = Csr.min_incoming_cut csr ~src:0 in
  let reported = Overlay.verified_rate o in
  if Float.is_finite cut || Float.is_finite reported then
    if Float.abs (cut -. reported) > slack cut then
      fail index
        "incoming-cut rate %.12g disagrees with the memoized report %.12g" cut
        reported;
  (match stats with
  | None -> ()
  | Some (s : Repair.stats) ->
    if Float.is_finite cut || Float.is_finite s.Repair.rate_after then
      if Float.abs (cut -. s.Repair.rate_after) > slack cut then
        fail index "repair reported rate_after %.12g but the overlay carries %.12g"
          s.Repair.rate_after cut;
    if
      Float.is_finite s.Repair.optimal_after
      && cut > s.Repair.optimal_after +. slack s.Repair.optimal_after
    then
      fail index "rate %.12g exceeds the reported optimum %.12g" cut
        s.Repair.optimal_after);
  (* Warm-engine agreement: the incremental solver tracks this overlay
     (the engine applied the event's node map before auditing), so its
     warm value must match the cut the snapshot carries — an O(1)
     comparison at Check level. *)
  (match flow with
  | None -> ()
  | Some inc ->
    let warm = Flowgraph.Maxflow.Incremental.value inc in
    if Flowgraph.Maxflow.Incremental.size inc <> Scheme.size scheme then
      fail index "incremental state tracks %d nodes, overlay has %d"
        (Flowgraph.Maxflow.Incremental.size inc)
        (Scheme.size scheme);
    if Float.is_finite cut || Float.is_finite warm then
      if Float.abs (cut -. warm) > slack cut then
        fail index "incremental warm value %.12g disagrees with the cut %.12g"
          warm cut);
  if level = Strict && Float.is_finite cut then begin
    let full = Flowgraph.Maxflow.min_broadcast_flow_csr csr ~src:0 in
    if Float.abs (cut -. full) > slack cut then
      fail index "fast-path rate %.12g disagrees with max-flow %.12g" cut full;
    (* Maximum paranoia: the warm-start value against the from-scratch
       Dinic, every event — the differential harness the incremental
       solver is gated on. *)
    match flow with
    | None -> ()
    | Some inc ->
      let warm = Flowgraph.Maxflow.Incremental.value inc in
      if Float.abs (full -. warm) > slack full then
        fail index
          "incremental warm value %.12g disagrees with from-scratch Dinic \
           %.12g"
          warm full
  end

let check level ~index ?stats ?flow o =
  match level with
  | Off -> ()
  | Check | Strict ->
    check_order index o;
    check_structure index o;
    check_rate level index ?stats ?flow o
