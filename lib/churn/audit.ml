open Broadcast
module Instance = Platform.Instance
module Csr = Flowgraph.Csr

exception Violation of { index : int; what : string }

type level = Off | Check | Strict | Certificate of { strict_every : int }

let default_backstop = 64

let level_name = function
  | Off -> "off"
  | Check -> "check"
  | Strict -> "strict"
  | Certificate { strict_every } -> Printf.sprintf "certificate:%d" strict_every

let of_name = function
  | "off" -> Some Off
  | "check" | "on" -> Some Check
  | "strict" -> Some Strict
  | "certificate" -> Some (Certificate { strict_every = default_backstop })
  | name ->
    let prefix = "certificate:" in
    let pl = String.length prefix in
    if String.length name > pl && String.sub name 0 pl = prefix then
      match int_of_string_opt (String.sub name pl (String.length name - pl)) with
      | Some k when k >= 0 -> Some (Certificate { strict_every = k })
      | _ -> None
    else None

type engine = Full | Incremental

let engine_name = function Full -> "full" | Incremental -> "incremental"

let engine_of_name = function
  | "full" -> Some Full
  | "incremental" -> Some Incremental
  | _ -> None

let fail index fmt = Printf.ksprintf (fun what -> raise (Violation { index; what })) fmt

(* Relative slack matching the library's flow-comparison tolerance. *)
let slack = Verify.flow_slack

let check_order index o =
  let order = Overlay.order o in
  let n = Scheme.size (Overlay.scheme o) in
  if Array.length order <> n then
    fail index "order length %d, %d nodes" (Array.length order) n;
  if n > 0 && order.(0) <> 0 then
    fail index "order does not start at the source (order.(0) = %d)" order.(0);
  let seen = Array.make n false in
  Array.iter
    (fun v ->
      if v < 0 || v >= n then fail index "order mentions out-of-range node %d" v;
      if seen.(v) then fail index "order mentions node %d twice" v;
      seen.(v) <- true)
    order;
  let pos = Overlay.positions o in
  Csr.iter_edges
    (fun ~src ~dst _ ->
      if pos.(src) >= pos.(dst) then
        fail index "edge %d -> %d goes backward in the topological order" src dst)
    (Scheme.snapshot (Overlay.scheme o))

let check_structure index o =
  let scheme = Overlay.scheme o in
  let inst = Scheme.instance scheme in
  let csr = Scheme.snapshot scheme in
  let n = Instance.size inst in
  for v = 0 to n - 1 do
    let out = Csr.out_weight csr v in
    let b = inst.Instance.bandwidth.(v) in
    if not (Util.fle out b) then
      fail index "node %d uploads %.12g over its bandwidth %.12g" v out b
  done;
  Csr.iter_edges
    (fun ~src ~dst w ->
      if w > 0. && Instance.is_guarded inst src && Instance.is_guarded inst dst then
        fail index "firewall violation: guarded %d sends to guarded %d" src dst)
    csr;
  (match inst.Instance.bin with
  | None -> ()
  | Some bin ->
    for v = 1 to n - 1 do
      let w = Csr.in_weight csr v in
      if not (Util.fle w bin.(v)) then
        fail index "node %d receives %.12g over its incoming cap %.12g" v w bin.(v)
    done);
  if not (Csr.is_acyclic csr) then fail index "overlay graph has a directed cycle"

let check_rate level index ?stats ?flow o =
  let scheme = Overlay.scheme o in
  let csr = Scheme.snapshot scheme in
  let cut, _ = Csr.min_incoming_cut csr ~src:0 in
  let reported = Overlay.verified_rate o in
  if Float.is_finite cut || Float.is_finite reported then
    if Float.abs (cut -. reported) > slack cut then
      fail index
        "incoming-cut rate %.12g disagrees with the memoized report %.12g" cut
        reported;
  (match stats with
  | None -> ()
  | Some (s : Repair.stats) ->
    if Float.is_finite cut || Float.is_finite s.Repair.rate_after then
      if Float.abs (cut -. s.Repair.rate_after) > slack cut then
        fail index "repair reported rate_after %.12g but the overlay carries %.12g"
          s.Repair.rate_after cut;
    if
      Float.is_finite s.Repair.optimal_after
      && cut > s.Repair.optimal_after +. slack s.Repair.optimal_after
    then
      fail index "rate %.12g exceeds the reported optimum %.12g" cut
        s.Repair.optimal_after);
  (* Warm-engine agreement: the incremental solver tracks this overlay
     (the engine applied the event's node map before auditing), so its
     warm value must match the cut the snapshot carries — an O(1)
     comparison at Check level. *)
  (match flow with
  | None -> ()
  | Some inc ->
    let warm = Flowgraph.Maxflow.Incremental.value inc in
    if Flowgraph.Maxflow.Incremental.size inc <> Scheme.size scheme then
      fail index "incremental state tracks %d nodes, overlay has %d"
        (Flowgraph.Maxflow.Incremental.size inc)
        (Scheme.size scheme);
    if Float.is_finite cut || Float.is_finite warm then
      if Float.abs (cut -. warm) > slack cut then
        fail index "incremental warm value %.12g disagrees with the cut %.12g"
          warm cut);
  if level = Strict && Float.is_finite cut then begin
    let full = Flowgraph.Maxflow.min_broadcast_flow_csr csr ~src:0 in
    if Float.abs (cut -. full) > slack cut then
      fail index "fast-path rate %.12g disagrees with max-flow %.12g" cut full;
    (* Maximum paranoia: the warm-start value against the from-scratch
       Dinic, every event — the differential harness the incremental
       solver is gated on. *)
    match flow with
    | None -> ()
    | Some inc ->
      let warm = Flowgraph.Maxflow.Incremental.value inc in
      if Float.abs (full -. warm) > slack full then
        fail index
          "incremental warm value %.12g disagrees with from-scratch Dinic \
           %.12g"
          warm full
  end

(* Certificate-trusting fast path: the base overlay passed its audit at
   the previous event (or the Strict backstop), the repair names exactly
   what it disturbed, and the warm incremental flow is the rate witness —
   so only the disturbed region is re-checked. Order sanity stays O(n)
   int passes; everything else is O(sum of touched degrees). *)
let check_certificate index ?stats:(s : Repair.stats option) ?flow o =
  let scheme = Overlay.scheme o in
  let inst = Scheme.instance scheme in
  let csr = Scheme.snapshot scheme in
  let n = Scheme.size scheme in
  let order = Overlay.order o in
  if Array.length order <> n then
    fail index "order length %d, %d nodes" (Array.length order) n;
  if n > 0 && order.(0) <> 0 then
    fail index "order does not start at the source (order.(0) = %d)" order.(0);
  let pos = Array.make (max 1 n) (-1) in
  Array.iteri
    (fun i v ->
      if v < 0 || v >= n then fail index "order mentions out-of-range node %d" v;
      if pos.(v) >= 0 then fail index "order mentions node %d twice" v;
      pos.(v) <- i)
    order;
  let delta =
    match s with Some s -> s.Repair.delta | None -> Repair.full_delta
  in
  (* Delta-scoped structure: caps, firewall and order-forwardness on the
     touched rows only. Untouched edges kept their (renamed) endpoints
     and their forward positions — that is the certificate. *)
  Array.iter
    (fun v ->
      if v < 0 || v >= n then
        fail index "delta names out-of-range node %d" v;
      let out = Csr.out_weight csr v in
      let b = inst.Instance.bandwidth.(v) in
      if not (Util.fle out b) then
        fail index "node %d uploads %.12g over its bandwidth %.12g" v out b;
      (match inst.Instance.bin with
      | Some bin when v > 0 ->
        let w = Csr.in_weight csr v in
        if not (Util.fle w bin.(v)) then
          fail index "node %d receives %.12g over its incoming cap %.12g" v w
            bin.(v)
      | _ -> ());
      let guarded = Instance.is_guarded inst v in
      for e = csr.Csr.row_off.(v) to csr.Csr.row_off.(v + 1) - 1 do
        let dst = csr.Csr.col.(e) in
        if pos.(v) >= pos.(dst) then
          fail index "edge %d -> %d goes backward in the topological order" v
            dst;
        if guarded && Instance.is_guarded inst dst then
          fail index "firewall violation: guarded %d sends to guarded %d" v dst
      done)
    delta.Repair.touched;
  (* Rate: trust the warm flow as the witness instead of rescanning the
     cut — O(1) comparisons against the memoized report and the repair's
     claim. *)
  let reported = Overlay.verified_rate o in
  (match s with
  | None -> ()
  | Some s ->
    if Float.is_finite reported || Float.is_finite s.Repair.rate_after then
      if Float.abs (reported -. s.Repair.rate_after) > slack reported then
        fail index
          "repair reported rate_after %.12g but the overlay carries %.12g"
          s.Repair.rate_after reported);
  match flow with
  | None -> ()
  | Some inc ->
    let module I = Flowgraph.Maxflow.Incremental in
    if I.size inc <> n then
      fail index "incremental state tracks %d nodes, overlay has %d"
        (I.size inc) n;
    let warm = I.value inc in
    if Float.is_finite reported || Float.is_finite warm then
      if Float.abs (reported -. warm) > slack reported then
        fail index
          "incremental warm value %.12g disagrees with the memoized report \
           %.12g"
          warm reported;
    (* Flow conservation on the disturbed nodes: the drain sweeps leave
       at most 1e-9 imbalance per event, so the accumulated bound grows
       with the trace position. *)
    if I.is_warm inc && Float.is_finite warm then begin
      let sink = I.critical_sink inc in
      let tol =
        Float.max (slack warm) (float_of_int (index + 1) *. 1e-9)
      in
      Array.iter
        (fun v ->
          let balance = I.node_balance inc ~node:v in
          let expected =
            if v = 0 then -.warm else if v = sink then warm else 0.
          in
          if Float.abs (balance -. expected) > tol then
            fail index
              "warm flow is not conserved at node %d (balance %.12g, \
               expected %.12g)"
              v balance expected)
        delta.Repair.touched
    end

let check level ~index ?stats ?flow o =
  match level with
  | Off -> ()
  | Check | Strict ->
    check_order index o;
    check_structure index o;
    check_rate level index ?stats ?flow o
  | Certificate { strict_every } ->
    let backstop = strict_every > 0 && index mod strict_every = 0 in
    let full_fallback =
      match stats with
      | Some (s : Repair.stats) -> s.Repair.delta.Repair.full
      | None -> true
    in
    if backstop then begin
      check_order index o;
      check_structure index o;
      check_rate Strict index ?stats ?flow o
    end
    else if full_fallback then begin
      (* No usable delta (a rebuild, or an audit without repair stats):
         fall back to the full Check-level scan. *)
      check_order index o;
      check_structure index o;
      check_rate Check index ?stats ?flow o
    end
    else check_certificate index ?stats ?flow o
