module Json = Flowgraph.Json

type event =
  | Leave of { pick : int }
  | Join of { bandwidth : float; guarded : bool }
  | Degrade of { pick : int; factor : float }
  | Restore of { pick : int; factor : float }
  | Fail_batch of { picks : int list }
  | Flash_crowd of { arrivals : (float * bool) list }

type t = { events : event array }

let length t = Array.length t.events

let label = function
  | Leave _ -> "leave"
  | Join _ -> "join"
  | Degrade _ -> "degrade"
  | Restore _ -> "restore"
  | Fail_batch _ -> "fail-batch"
  | Flash_crowd _ -> "flash-crowd"

(* Seeded generation *)

type mix = {
  w_leave : float;
  w_join : float;
  w_degrade : float;
  w_restore : float;
  w_fail_batch : float;
  w_flash_crowd : float;
  max_batch : int;
  max_flash : int;
  p_guarded : float;
  dist : Prng.Dist.t;
}

let default_mix =
  {
    w_leave = 0.30;
    w_join = 0.30;
    w_degrade = 0.15;
    w_restore = 0.10;
    w_fail_batch = 0.10;
    w_flash_crowd = 0.05;
    max_batch = 5;
    max_flash = 8;
    p_guarded = 0.3;
    dist = Prng.Dist.unif100;
  }

(* Picks are raw non-negative integers; the engine folds them into the
   live population with a modulus, so any bound wide enough to avoid
   aliasing artifacts works. *)
let pick_space = 1_000_000

let check_mix m =
  let w =
    [ m.w_leave; m.w_join; m.w_degrade; m.w_restore; m.w_fail_batch; m.w_flash_crowd ]
  in
  if List.exists (fun x -> not (Float.is_finite x) || x < 0.) w then
    invalid_arg "Trace.gen: mix weights must be finite and non-negative";
  if List.fold_left ( +. ) 0. w <= 0. then
    invalid_arg "Trace.gen: mix weights must not all be zero";
  if m.max_batch < 1 then invalid_arg "Trace.gen: max_batch must be >= 1";
  if m.max_flash < 1 then invalid_arg "Trace.gen: max_flash must be >= 1";
  if not (m.p_guarded >= 0. && m.p_guarded <= 1.) then
    invalid_arg "Trace.gen: p_guarded must lie in [0, 1]"

let gen ?(mix = default_mix) ~events rng =
  if events < 0 then invalid_arg "Trace.gen: negative event count";
  check_mix mix;
  let total =
    mix.w_leave +. mix.w_join +. mix.w_degrade +. mix.w_restore
    +. mix.w_fail_batch +. mix.w_flash_crowd
  in
  let draw = Prng.Dist.sampler mix.dist in
  let pick () = Prng.Splitmix.next_below rng pick_space in
  let factor () = 0.1 +. (0.8 *. Prng.Splitmix.next_float rng) in
  let arrival () =
    let bandwidth = draw rng in
    let guarded = Prng.Splitmix.next_float rng < mix.p_guarded in
    (bandwidth, guarded)
  in
  let one () =
    let x = Prng.Splitmix.next_float rng *. total in
    if x < mix.w_leave then Leave { pick = pick () }
    else if x < mix.w_leave +. mix.w_join then
      let bandwidth, guarded = arrival () in
      Join { bandwidth; guarded }
    else if x < mix.w_leave +. mix.w_join +. mix.w_degrade then
      Degrade { pick = pick (); factor = factor () }
    else if x < mix.w_leave +. mix.w_join +. mix.w_degrade +. mix.w_restore then
      Restore { pick = pick (); factor = factor () }
    else if
      x
      < mix.w_leave +. mix.w_join +. mix.w_degrade +. mix.w_restore
        +. mix.w_fail_batch
    then begin
      let k = 1 + Prng.Splitmix.next_below rng mix.max_batch in
      Fail_batch { picks = List.init k (fun _ -> pick ()) }
    end
    else begin
      let k = 1 + Prng.Splitmix.next_below rng mix.max_flash in
      Flash_crowd { arrivals = List.init k (fun _ -> arrival ()) }
    end
  in
  { events = Array.init events (fun _ -> one ()) }

(* Persistence — same canonical-bytes / strict-reader discipline as the
   bmp-scheme artifact format. *)

let format_version = 1

let float_str v = Printf.sprintf "%.17g" v

let add_event_json buf e =
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  match e with
  | Leave { pick } -> p "{\"type\": \"leave\", \"pick\": %d}" pick
  | Join { bandwidth; guarded } ->
    p "{\"type\": \"join\", \"bandwidth\": %s, \"guarded\": %b}"
      (float_str bandwidth) guarded
  | Degrade { pick; factor } ->
    p "{\"type\": \"degrade\", \"pick\": %d, \"factor\": %s}" pick
      (float_str factor)
  | Restore { pick; factor } ->
    p "{\"type\": \"restore\", \"pick\": %d, \"factor\": %s}" pick
      (float_str factor)
  | Fail_batch { picks } ->
    p "{\"type\": \"fail-batch\", \"picks\": [%s]}"
      (String.concat ", " (List.map string_of_int picks))
  | Flash_crowd { arrivals } ->
    p "{\"type\": \"flash-crowd\", \"arrivals\": [%s]}"
      (String.concat ", "
         (List.map
            (fun (bandwidth, guarded) ->
              Printf.sprintf "{\"bandwidth\": %s, \"guarded\": %b}"
                (float_str bandwidth) guarded)
            arrivals))

let to_json t =
  let buf = Buffer.create 4096 in
  Printf.ksprintf (Buffer.add_string buf)
    "{\"format\": \"bmp-trace\", \"version\": %d, \"events\": [" format_version;
  Array.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ", ";
      add_event_json buf e)
    t.events;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let ( let* ) = Result.bind

let no_unknown_fields ctx allowed v =
  match v with
  | Json.Obj fields ->
    (match List.find_opt (fun (k, _) -> not (List.mem k allowed)) fields with
    | Some (k, _) -> Error (Printf.sprintf "%s: unknown field %S" ctx k)
    | None -> Ok ())
  | _ -> Error (Printf.sprintf "%s: expected an object" ctx)

let field ctx k v =
  match Json.member k v with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "%s: missing field %S" ctx k)

let int_field ctx k v =
  let* x = field ctx k v in
  Result.map_error (fun e -> Printf.sprintf "%s: %s: %s" ctx k e) (Json.to_int x)

let float_field ctx k v =
  let* x = field ctx k v in
  Result.map_error (fun e -> Printf.sprintf "%s: %s: %s" ctx k e) (Json.to_float x)

let bool_field ctx k v =
  let* x = field ctx k v in
  match x with
  | Json.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "%s: %s: expected a boolean" ctx k)

let pick_ok ctx pick =
  if pick >= 0 then Ok pick
  else Error (Printf.sprintf "%s: pick must be non-negative" ctx)

let factor_ok ctx factor =
  if factor > 0. && factor <= 1. then Ok factor
  else Error (Printf.sprintf "%s: factor must lie in (0, 1]" ctx)

let bandwidth_ok ctx bandwidth =
  if bandwidth >= 0. then Ok bandwidth
  else Error (Printf.sprintf "%s: bandwidth must be non-negative" ctx)

let arrival_of_json ctx v =
  let* () = no_unknown_fields ctx [ "bandwidth"; "guarded" ] v in
  let* bandwidth = float_field ctx "bandwidth" v in
  let* bandwidth = bandwidth_ok ctx bandwidth in
  let* guarded = bool_field ctx "guarded" v in
  Ok (bandwidth, guarded)

let list_of ctx parse = function
  | Json.Arr l ->
    let* rev =
      List.fold_left
        (fun acc x ->
          let* acc = acc in
          let* v = parse x in
          Ok (v :: acc))
        (Ok []) l
    in
    Ok (List.rev rev)
  | _ -> Error (ctx ^ ": expected an array")

let event_of_json_ctx ctx v =
  let* kind = field ctx "type" v in
  let* kind =
    Result.map_error (fun e -> ctx ^ ": type: " ^ e) (Json.to_string_exn kind)
  in
  match kind with
  | "leave" ->
    let* () = no_unknown_fields ctx [ "type"; "pick" ] v in
    let* pick = int_field ctx "pick" v in
    let* pick = pick_ok ctx pick in
    Ok (Leave { pick })
  | "join" ->
    let* () = no_unknown_fields ctx [ "type"; "bandwidth"; "guarded" ] v in
    let* bandwidth = float_field ctx "bandwidth" v in
    let* bandwidth = bandwidth_ok ctx bandwidth in
    let* guarded = bool_field ctx "guarded" v in
    Ok (Join { bandwidth; guarded })
  | "degrade" | "restore" ->
    let* () = no_unknown_fields ctx [ "type"; "pick"; "factor" ] v in
    let* pick = int_field ctx "pick" v in
    let* pick = pick_ok ctx pick in
    let* factor = float_field ctx "factor" v in
    let* factor = factor_ok ctx factor in
    Ok (if kind = "degrade" then Degrade { pick; factor } else Restore { pick; factor })
  | "fail-batch" ->
    let* () = no_unknown_fields ctx [ "type"; "picks" ] v in
    let* picks = field ctx "picks" v in
    let* picks =
      list_of ctx
        (fun x ->
          let* p = Result.map_error (fun e -> ctx ^ ": picks: " ^ e) (Json.to_int x) in
          pick_ok ctx p)
        picks
    in
    if picks = [] then Error (ctx ^ ": picks must not be empty")
    else Ok (Fail_batch { picks })
  | "flash-crowd" ->
    let* () = no_unknown_fields ctx [ "type"; "arrivals" ] v in
    let* arrivals = field ctx "arrivals" v in
    let* arrivals = list_of ctx (arrival_of_json (ctx ^ ": arrival")) arrivals in
    if arrivals = [] then Error (ctx ^ ": arrivals must not be empty")
    else Ok (Flash_crowd { arrivals })
  | other -> Error (Printf.sprintf "%s: unknown event type %S" ctx other)

let event_of_json i v = event_of_json_ctx (Printf.sprintf "event %d" i) v

(* Single-event codecs, exposed for consumers that speak the trace
   format one event at a time (the tracker daemon's NDJSON wire). *)

let event_to_json e =
  let buf = Buffer.create 64 in
  add_event_json buf e;
  Buffer.contents buf

let event_of_json_value v = event_of_json_ctx "event" v

let of_json text =
  let* v = Json.parse text in
  let ctx = "trace" in
  let* () = no_unknown_fields ctx [ "format"; "version"; "events" ] v in
  let* fmt = field ctx "format" v in
  let* fmt = Result.map_error (fun e -> ctx ^ ": format: " ^ e) (Json.to_string_exn fmt) in
  let* () =
    if fmt = "bmp-trace" then Ok ()
    else Error (Printf.sprintf "trace: not a bmp-trace file (format %S)" fmt)
  in
  let* version = int_field ctx "version" v in
  let* () =
    if version = format_version then Ok ()
    else
      Error
        (Printf.sprintf
           "trace: unsupported format version %d (this library reads version %d)"
           version format_version)
  in
  let* events = field ctx "events" v in
  match events with
  | Json.Arr l ->
    let* rev =
      List.fold_left
        (fun acc x ->
          let* acc = acc in
          let* e = event_of_json (List.length acc) x in
          Ok (e :: acc))
        (Ok []) l
    in
    Ok { events = Array.of_list (List.rev rev) }
  | _ -> Error "trace: events: expected an array"
