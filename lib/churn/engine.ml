open Broadcast
module Instance = Platform.Instance

type action = Patched | Rebuilt | Skipped

type record = {
  index : int;
  event : Trace.event;
  action : action;
  size : int;
  rate : float;
  optimal : float;
  ratio : float;
  churn_edges : int;
  cumulative_churn : int;
  max_excess : int;
  rebuilds : int;
}

type summary = {
  events : int;
  applied : int;
  skipped : int;
  rebuilds : int;
  total_churn : int;
  min_ratio : float;
  mean_ratio : float;
  final_size : int;
  final_rate : float;
  final_optimal : float;
}

type result = { overlay : Overlay.t; timeline : record list; summary : summary }

(* Smallest population the engine maintains: the source plus two
   receivers, so every repair operation stays within its contract. *)
let min_population = 3

let resolve_pick ~size pick = 1 + (pick mod (size - 1))

let ratio_of ~rate ~optimal =
  if optimal > 0. && Float.is_finite optimal then rate /. optimal else 1.

let cls_of guarded = if guarded then Instance.Guarded else Instance.Open

(* Distinct casualties for a correlated failure, keeping at least
   [min_population] survivors; picks beyond that budget are dropped. *)
let resolve_batch ~size picks =
  let budget = size - min_population in
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun pick ->
      let v = resolve_pick ~size pick in
      if Hashtbl.length seen >= budget || Hashtbl.mem seen v then None
      else begin
        Hashtbl.add seen v ();
        Some v
      end)
    picks

let apply o (event : Trace.event) =
  let size = Scheme.size (Overlay.scheme o) in
  match event with
  | Leave { pick } ->
    if size <= min_population then None
    else Some (Repair.leave o ~node:(resolve_pick ~size pick))
  | Join { bandwidth; guarded } ->
    Some (Repair.join o ~bandwidth ~cls:(cls_of guarded))
  | Degrade { pick; factor } ->
    let node = resolve_pick ~size pick in
    let b = (Overlay.instance o).Instance.bandwidth.(node) in
    Some (Repair.degrade o ~node ~bandwidth:(b *. factor))
  | Restore { pick; factor } ->
    let node = resolve_pick ~size pick in
    let b = (Overlay.instance o).Instance.bandwidth.(node) in
    Some (Repair.restore o ~node ~bandwidth:(b /. factor))
  | Fail_batch { picks } ->
    (match resolve_batch ~size picks with
    | [] -> None
    | nodes -> Some (Repair.leave_batch o ~nodes))
  | Flash_crowd { arrivals } ->
    let o, edges, last =
      List.fold_left
        (fun (o, edges, acc) (bandwidth, guarded) ->
          let o, (stats : Repair.stats) =
            Repair.join o ~bandwidth ~cls:(cls_of guarded)
          in
          (* The burst is one event to the caller, so its node map is the
             composition of the per-join renumberings. *)
          let map =
            match acc with
            | None -> stats.Repair.node_map
            | Some (map, _) ->
              Array.map
                (fun v -> if v < 0 then -1 else stats.Repair.node_map.(v))
                map
          in
          (o, edges + stats.patch_edges, Some (map, stats)))
        (o, 0, None) arrivals
    in
    (match last with
    | None -> None
    | Some (map, stats) ->
      Some (o, { stats with Repair.patch_edges = edges; node_map = map }))

let run ?(policy = Policy.Always_patch) ?(audit = Audit.Off)
    ?(engine = Audit.Full) ?rebuild_headroom ?on_event ?probe start trace =
  let state = Policy.init policy start in
  let overlay = ref start in
  (* Warm flow state, threaded through the whole trace under the
     incremental engine; the knob changes what is *maintained and
     audited*, never what the run produces — timelines and summaries are
     byte-identical across engines. *)
  let flow =
    match engine with
    | Audit.Full -> None
    | Audit.Incremental ->
      Some
        (Flowgraph.Maxflow.Incremental.create
           (Scheme.snapshot (Overlay.scheme start))
           ~src:0)
  in
  let timeline = ref [] in
  let applied = ref 0 in
  let skipped = ref 0 in
  let rebuilds = ref 0 in
  let churn = ref 0 in
  let min_ratio = ref 1. in
  let sum_ratio = ref 0. in
  Array.iteri
    (fun index event ->
      let record =
        match apply !overlay event with
        | None ->
          incr skipped;
          let o = !overlay in
          let rate = Overlay.verified_rate o in
          {
            index;
            event;
            action = Skipped;
            size = Scheme.size (Overlay.scheme o);
            rate;
            optimal = rate;
            ratio = 1.;
            churn_edges = 0;
            cumulative_churn = !churn;
            max_excess = (Metrics.scheme_report (Overlay.scheme o)).max_excess;
            rebuilds = !rebuilds;
          }
        | Some (patched, (stats : Repair.stats)) ->
          incr applied;
          let max_excess =
            (Metrics.scheme_report (Overlay.scheme patched)).max_excess
          in
          let obs =
            {
              Policy.rate = stats.rate_after;
              optimal = stats.optimal_after;
              max_excess;
            }
          in
          let o, action, churn_edges, (fstats : Repair.stats), max_excess =
            if Policy.decide state obs then begin
              let rebuilt, (rstats : Repair.stats) =
                Repair.rebuild ?headroom:rebuild_headroom patched
              in
              incr rebuilds;
              Policy.note_rebuild state rebuilt;
              ( rebuilt,
                Rebuilt,
                stats.patch_edges + rstats.patch_edges,
                rstats,
                (Metrics.scheme_report (Overlay.scheme rebuilt)).max_excess )
            end
            else (patched, Patched, stats.patch_edges, stats, max_excess)
          in
          let rate = fstats.rate_after and optimal = fstats.optimal_after in
          overlay := o;
          churn := !churn + churn_edges;
          let ratio = ratio_of ~rate ~optimal in
          min_ratio := Float.min !min_ratio ratio;
          sum_ratio := !sum_ratio +. ratio;
          (match flow with
          | None -> ()
          | Some inc ->
            let snap = Scheme.snapshot (Overlay.scheme o) in
            (match action with
            | Rebuilt ->
              (* A rebuild rewires the whole overlay; warm state would
                 refund nearly everything, so restart cold. *)
              Flowgraph.Maxflow.Incremental.rebase inc snap
            | Patched | Skipped ->
              Flowgraph.Maxflow.Incremental.apply inc
                ~map:fstats.Repair.node_map snap));
          Audit.check audit ~index ~stats:fstats ?flow o;
          (match probe with
          | Some f -> f ~index o flow
          | None -> ());
          {
            index;
            event;
            action;
            size = Scheme.size (Overlay.scheme o);
            rate;
            optimal;
            ratio;
            churn_edges;
            cumulative_churn = !churn;
            max_excess;
            rebuilds = !rebuilds;
          }
      in
      (match on_event with Some f -> f record | None -> ());
      timeline := record :: !timeline)
    trace.Trace.events;
  let final = !overlay in
  let final_rate = Overlay.verified_rate final in
  let final_optimal =
    match !timeline with
    | r :: _ when r.action <> Skipped -> r.optimal
    | _ -> final_rate
  in
  {
    overlay = final;
    timeline = List.rev !timeline;
    summary =
      {
        events = Trace.length trace;
        applied = !applied;
        skipped = !skipped;
        rebuilds = !rebuilds;
        total_churn = !churn;
        min_ratio = !min_ratio;
        mean_ratio =
          (if !applied = 0 then 1. else !sum_ratio /. float_of_int !applied);
        final_size = Scheme.size (Overlay.scheme final);
        final_rate;
        final_optimal;
      };
  }
