open Broadcast
module Instance = Platform.Instance

type action = Patched | Rebuilt | Skipped

type record = {
  index : int;
  event : Trace.event;
  action : action;
  size : int;
  rate : float;
  optimal : float;
  ratio : float;
  churn_edges : int;
  cumulative_churn : int;
  max_excess : int;
  rebuilds : int;
}

type summary = {
  events : int;
  applied : int;
  skipped : int;
  rebuilds : int;
  total_churn : int;
  min_ratio : float;
  mean_ratio : float;
  final_size : int;
  final_rate : float;
  final_optimal : float;
}

type result = { overlay : Overlay.t; timeline : record list; summary : summary }

(* Smallest population the engine maintains: the source plus two
   receivers, so every repair operation stays within its contract. *)
let min_population = 3

let resolve_pick ~size pick = 1 + (pick mod (size - 1))

let ratio_of ~rate ~optimal =
  if optimal > 0. && Float.is_finite optimal then rate /. optimal else 1.

let cls_of guarded = if guarded then Instance.Guarded else Instance.Open

(* Distinct casualties for a correlated failure, keeping at least
   [min_population] survivors; picks beyond that budget are dropped. *)
let resolve_batch ~size picks =
  let budget = size - min_population in
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun pick ->
      let v = resolve_pick ~size pick in
      if Hashtbl.length seen >= budget || Hashtbl.mem seen v then None
      else begin
        Hashtbl.add seen v ();
        Some v
      end)
    picks

(* Compose two consecutive repair deltas: [d1] speaks the intermediate
   overlay's ids, [map] is the second event's renumbering, [d2] the final
   ids. Only the fields the delta-scoped auditor consumes are merged
   exactly ([full], [identity], [touched]); the edge lists keep the
   latest event's view. Any full delta poisons the composition — the
   auditor then falls back to a full scan, which is always sound. *)
let compose_delta (d1 : Repair.delta) ~map (d2 : Repair.delta) =
  if d1.Repair.full || d2.Repair.full then Repair.full_delta
  else begin
    let touched =
      List.sort_uniq compare
        (Array.fold_left
           (fun acc v -> if map.(v) >= 0 then map.(v) :: acc else acc)
           (Array.to_list d2.Repair.touched)
           d1.Repair.touched)
    in
    {
      d2 with
      Repair.identity = d1.Repair.identity && d2.Repair.identity;
      touched = Array.of_list touched;
    }
  end

let apply o (event : Trace.event) =
  let size = Scheme.size (Overlay.scheme o) in
  match event with
  | Leave { pick } ->
    if size <= min_population then None
    else Some (Repair.leave o ~node:(resolve_pick ~size pick))
  | Join { bandwidth; guarded } ->
    Some (Repair.join o ~bandwidth ~cls:(cls_of guarded))
  | Degrade { pick; factor } ->
    let node = resolve_pick ~size pick in
    let b = (Overlay.instance o).Instance.bandwidth.(node) in
    Some (Repair.degrade o ~node ~bandwidth:(b *. factor))
  | Restore { pick; factor } ->
    let node = resolve_pick ~size pick in
    let b = (Overlay.instance o).Instance.bandwidth.(node) in
    Some (Repair.restore o ~node ~bandwidth:(b /. factor))
  | Fail_batch { picks } ->
    (match resolve_batch ~size picks with
    | [] -> None
    | nodes -> Some (Repair.leave_batch o ~nodes))
  | Flash_crowd { arrivals } ->
    let o, edges, last =
      List.fold_left
        (fun (o, edges, acc) (bandwidth, guarded) ->
          let o, (stats : Repair.stats) =
            Repair.join o ~bandwidth ~cls:(cls_of guarded)
          in
          (* The burst is one event to the caller, so its node map (and
             its disturbance delta) is the composition of the per-join
             renumberings. *)
          let map, stats =
            match acc with
            | None -> (stats.Repair.node_map, stats)
            | Some (map, (prev : Repair.stats)) ->
              ( Array.map
                  (fun v -> if v < 0 then -1 else stats.Repair.node_map.(v))
                  map,
                {
                  stats with
                  Repair.delta =
                    compose_delta prev.Repair.delta ~map:stats.Repair.node_map
                      stats.Repair.delta;
                } )
          in
          (o, edges + stats.patch_edges, Some (map, stats)))
        (o, 0, None) arrivals
    in
    (match last with
    | None -> None
    | Some (map, stats) ->
      Some (o, { stats with Repair.patch_edges = edges; node_map = map }))

(* Resumable engine state: [run] is now a fold of [step] over the trace,
   and long-running consumers (the tracker daemon) drive [step] directly
   so one engine survives an unbounded request stream. All counters and
   the policy/warm-flow state live here; the stepping order of operations
   is exactly the old [run] loop, so replays stay byte-identical. *)
type state = {
  pstate : Policy.state;
  audit : Audit.level;
  rebuild_headroom : float option;
  probe :
    (index:int -> Overlay.t -> Flowgraph.Maxflow.Incremental.t option -> unit)
    option;
  flow : Flowgraph.Maxflow.Incremental.t option;
  mutable overlay : Overlay.t;
  mutable steps : int;
  mutable applied : int;
  mutable skipped : int;
  mutable rebuilds : int;
  mutable churn : int;
  mutable min_ratio : float;
  mutable sum_ratio : float;
  mutable last : record option;
  (* Audit deferred by [step ~defer_audit:true], waiting for
     [flush_audit]: index and repair stats of the latest applied event. *)
  mutable pending_audit : (int * Repair.stats) option;
}

let start ?(policy = Policy.Always_patch) ?(audit = Audit.Off)
    ?(engine = Audit.Full) ?rebuild_headroom ?probe overlay =
  (* Warm flow state, threaded across every subsequent step under the
     incremental engine; the knob changes what is *maintained and
     audited*, never what the run produces — timelines and summaries are
     byte-identical across engines. *)
  let flow =
    match engine with
    | Audit.Full -> None
    | Audit.Incremental ->
      Some
        (Flowgraph.Maxflow.Incremental.create
           (Scheme.snapshot (Overlay.scheme overlay))
           ~src:0)
  in
  {
    pstate = Policy.init policy overlay;
    audit;
    rebuild_headroom;
    probe;
    flow;
    overlay;
    steps = 0;
    applied = 0;
    skipped = 0;
    rebuilds = 0;
    churn = 0;
    min_ratio = 1.;
    sum_ratio = 0.;
    last = None;
    pending_audit = None;
  }

let live st = st.overlay

let flush_audit st =
  match st.pending_audit with
  | None -> ()
  | Some (index, stats) ->
    st.pending_audit <- None;
    Audit.check st.audit ~index ~stats ?flow:st.flow st.overlay

let step ?(defer_audit = false) st event =
  let index = st.steps in
  st.steps <- st.steps + 1;
  let record =
    match apply st.overlay event with
    | None ->
      st.skipped <- st.skipped + 1;
      let o = st.overlay in
      let rate = Overlay.verified_rate o in
      {
        index;
        event;
        action = Skipped;
        size = Scheme.size (Overlay.scheme o);
        rate;
        optimal = rate;
        ratio = 1.;
        churn_edges = 0;
        cumulative_churn = st.churn;
        max_excess = (Metrics.scheme_report (Overlay.scheme o)).max_excess;
        rebuilds = st.rebuilds;
      }
    | Some (patched, (stats : Repair.stats)) ->
      st.applied <- st.applied + 1;
      let max_excess =
        (Metrics.scheme_report (Overlay.scheme patched)).max_excess
      in
      let obs =
        { Policy.rate = stats.rate_after; optimal = stats.optimal_after; max_excess }
      in
      let o, action, churn_edges, (fstats : Repair.stats), max_excess =
        if Policy.decide st.pstate obs then begin
          let rebuilt, (rstats : Repair.stats) =
            Repair.rebuild ?headroom:st.rebuild_headroom patched
          in
          st.rebuilds <- st.rebuilds + 1;
          Policy.note_rebuild st.pstate rebuilt;
          ( rebuilt,
            Rebuilt,
            stats.patch_edges + rstats.patch_edges,
            rstats,
            (Metrics.scheme_report (Overlay.scheme rebuilt)).max_excess )
        end
        else (patched, Patched, stats.patch_edges, stats, max_excess)
      in
      let rate = fstats.rate_after and optimal = fstats.optimal_after in
      st.overlay <- o;
      st.churn <- st.churn + churn_edges;
      let ratio = ratio_of ~rate ~optimal in
      st.min_ratio <- Float.min st.min_ratio ratio;
      st.sum_ratio <- st.sum_ratio +. ratio;
      (match st.flow with
      | None -> ()
      | Some inc ->
        let snap = Scheme.snapshot (Overlay.scheme o) in
        (match action with
        | Rebuilt ->
          (* A rebuild rewires the whole overlay; warm state would
             refund nearly everything, so restart cold. *)
          Flowgraph.Maxflow.Incremental.rebase inc snap
        | Patched | Skipped ->
          Flowgraph.Maxflow.Incremental.apply inc
            ~map:fstats.Repair.node_map snap));
      if defer_audit then begin
        (* Superseding a still-pending audit must not shrink its scope:
           carry the pending delta forward through this event's
           renumbering so the eventual flush re-checks everything any
           deferred event in the batch disturbed. *)
        let fstats =
          match st.pending_audit with
          | None -> fstats
          | Some (_, (prev : Repair.stats)) ->
            {
              fstats with
              Repair.delta =
                compose_delta prev.Repair.delta ~map:fstats.Repair.node_map
                  fstats.Repair.delta;
            }
        in
        st.pending_audit <- Some (index, fstats)
      end
      else begin
        (* An inline audit of the current state also covers whatever an
           earlier deferred step left pending. *)
        st.pending_audit <- None;
        Audit.check st.audit ~index ~stats:fstats ?flow:st.flow o
      end;
      (match st.probe with Some f -> f ~index o st.flow | None -> ());
      {
        index;
        event;
        action;
        size = Scheme.size (Overlay.scheme o);
        rate;
        optimal;
        ratio;
        churn_edges;
        cumulative_churn = st.churn;
        max_excess;
        rebuilds = st.rebuilds;
      }
  in
  st.last <- Some record;
  record

let progress st =
  let final = st.overlay in
  let final_rate = Overlay.verified_rate final in
  let final_optimal =
    match st.last with
    | Some r when r.action <> Skipped -> r.optimal
    | _ -> final_rate
  in
  {
    events = st.steps;
    applied = st.applied;
    skipped = st.skipped;
    rebuilds = st.rebuilds;
    total_churn = st.churn;
    min_ratio = st.min_ratio;
    mean_ratio =
      (if st.applied = 0 then 1. else st.sum_ratio /. float_of_int st.applied);
    final_size = Scheme.size (Overlay.scheme final);
    final_rate;
    final_optimal;
  }

let run ?policy ?audit ?engine ?rebuild_headroom ?on_event ?probe start_overlay
    trace =
  let st = start ?policy ?audit ?engine ?rebuild_headroom ?probe start_overlay in
  let timeline = ref [] in
  Array.iter
    (fun event ->
      let record = step st event in
      (match on_event with Some f -> f record | None -> ());
      timeline := record :: !timeline)
    trace.Trace.events;
  { overlay = st.overlay; timeline = List.rev !timeline; summary = progress st }
