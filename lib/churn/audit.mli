(** Invariant auditor for the fault-injection engine.

    After every applied churn event the engine can re-check the live
    overlay from scratch — an independent scan over the scheme's cached
    {!Flowgraph.Csr} snapshot, not a replay of the constructor's checks —
    and fail loudly with the index of the offending event. This is the
    robustness harness's tripwire: a repair bug corrupts the overlay at
    event [k], the auditor names [k], and the trace seed reproduces it
    deterministically.

    Checked at {!Check} level (all O(V + E) array scans):

    - the topological order is a permutation starting at the source and
      every edge goes forward in it;
    - no node exceeds its outgoing bandwidth (relative [Util.eps]);
    - no guarded node sends to a guarded node;
    - incoming caps are respected when the instance has them;
    - the snapshot is acyclic;
    - the measured rate (minimal incoming cut — the structured fast path)
      agrees with the overlay's memoized report and, when given, with the
      repair's reported [rate_after];
    - the rate does not exceed the reported optimum beyond the library's
      [1e-6] relative flow slack.

    {!Strict} additionally cross-checks the cut against a full max-flow
    computation ({!Flowgraph.Maxflow.min_broadcast_flow_csr}) — the
    generic oracle the fast path is differentially tested against. *)

open Broadcast

exception Violation of { index : int; what : string }
(** [index] is the 0-based position of the event in the trace after which
    the invariant broke. *)

type level =
  | Off  (** no auditing (benchmark baseline) *)
  | Check  (** structural + fast-path rate audit after every event *)
  | Strict  (** {!Check} plus the max-flow cross-check *)

val level_name : level -> string
(** ["off"], ["check"], ["strict"]. *)

val check :
  level -> index:int -> ?stats:Repair.stats -> Overlay.t -> unit
(** [check lvl ~index ?stats o] audits [o]; raises {!Violation} carrying
    [index] and a description on the first broken invariant. [Off] checks
    nothing. [stats] enables the agreement checks against the repair's
    own numbers. *)
