(** Invariant auditor for the fault-injection engine.

    After every applied churn event the engine can re-check the live
    overlay from scratch — an independent scan over the scheme's cached
    {!Flowgraph.Csr} snapshot, not a replay of the constructor's checks —
    and fail loudly with the index of the offending event. This is the
    robustness harness's tripwire: a repair bug corrupts the overlay at
    event [k], the auditor names [k], and the trace seed reproduces it
    deterministically.

    Checked at {!Check} level (all O(V + E) array scans):

    - the topological order is a permutation starting at the source and
      every edge goes forward in it;
    - no node exceeds its outgoing bandwidth (relative [Util.eps]);
    - no guarded node sends to a guarded node;
    - incoming caps are respected when the instance has them;
    - the snapshot is acyclic;
    - the measured rate (minimal incoming cut — the structured fast path)
      agrees with the overlay's memoized report and, when given, with the
      repair's reported [rate_after];
    - the rate does not exceed the reported optimum beyond the library's
      [1e-6] relative flow slack.

    {!Strict} additionally cross-checks the cut against a full max-flow
    computation ({!Flowgraph.Maxflow.min_broadcast_flow_csr}) — the
    generic oracle the fast path is differentially tested against.

    When the engine maintains warm flow state
    ({!Flowgraph.Maxflow.Incremental}, the [--engine incremental] knob),
    the auditor receives the handle and adds engine-agreement checks:
    {!Check} compares the warm value against the snapshot's incoming cut
    (O(1) — the value is already maintained), and {!Strict} additionally
    compares it against the from-scratch Dinic value it computes anyway —
    so a Strict incremental run is a per-event differential test of the
    warm-start solver. *)

open Broadcast

exception Violation of { index : int; what : string }
(** [index] is the 0-based position of the event in the trace after which
    the invariant broke. *)

type level =
  | Off  (** no auditing (benchmark baseline) *)
  | Check  (** structural + fast-path rate audit after every event *)
  | Strict  (** {!Check} plus the max-flow cross-check *)
  | Certificate of { strict_every : int }
      (** delta-scoped fast path: trusts the previous event's verdict and
          the warm incremental flow as the rate witness, and re-checks
          only what {!Broadcast.Repair.delta} says the event disturbed —
          caps/firewall/order-forwardness on the touched rows, flow
          conservation on the disturbed nodes, O(1) rate agreement. A
          rebuild (or an audit handed no stats) falls back to the full
          {!Check} scan for that event, and every [strict_every]-th event
          (trace index multiple; [0] = never) runs the full {!Strict}
          audit as a backstop. Verdicts are identical to {!Strict} on
          every trace the engine can produce — the QCheck differential
          suite pins this. *)

val level_name : level -> string
(** ["off"], ["check"], ["strict"], ["certificate:<k>"] — every name
    {!of_name} accepts. *)

val of_name : string -> level option
(** Inverse of {!level_name} (the CLI's [--audit] parser). Also accepts
    ["on"] for {!Check} and bare ["certificate"] for the default
    backstop cadence (every 64 events). *)

val default_backstop : int
(** Strict-backstop cadence of bare ["certificate"]: [64]. *)

type engine =
  | Full  (** stateless: every rate is re-derived from the snapshot *)
  | Incremental
      (** warm-start: the engine threads a
          {!Flowgraph.Maxflow.Incremental} state through the trace and
          hands it to the auditor after every event *)

val engine_name : engine -> string
(** ["full"], ["incremental"]. *)

val engine_of_name : string -> engine option
(** Inverse of {!engine_name} (the CLI's [--engine] parser). *)

val check :
  level ->
  index:int ->
  ?stats:Repair.stats ->
  ?flow:Flowgraph.Maxflow.Incremental.t ->
  Overlay.t ->
  unit
(** [check lvl ~index ?stats ?flow o] audits [o]; raises {!Violation}
    carrying [index] and a description on the first broken invariant.
    [Off] checks nothing. [stats] enables the agreement checks against
    the repair's own numbers; [flow] — the warm incremental state, which
    must already mirror [o] — enables the engine-agreement checks
    described above. *)
