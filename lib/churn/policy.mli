(** Pluggable self-healing policies.

    After every churn event the {!Engine} patches the overlay locally
    ({!Broadcast.Repair}) and then asks a policy whether to pay for a
    full rebuild (the Theorem 4.1 pipeline on the new instance). The two
    extremes bracket the design space; {!Adaptive} is the interesting
    middle ground the churn experiments compare against them:

    - {!Always_patch} never rebuilds — minimal churn, throughput decays;
    - {!Always_rebuild} rebuilds after every event — optimal throughput,
      maximal churn;
    - {!Adaptive} rebuilds only when the patched overlay's measured rate
      falls below [min_ratio] of the recomputed optimum, or when degree
      drift (the running maximum of the actual additive outdegree excess
      over the bound promised at the last build) exceeds the promised
      bound by more than [degree_slack]. A rebuild resets the drift
      tracker and re-captures the promise — hysteresis, so one bad event
      does not trigger a rebuild storm. *)

open Broadcast

type t =
  | Always_patch
  | Always_rebuild
  | Adaptive of { min_ratio : float; degree_slack : int }

val adaptive_default : t
(** [Adaptive { min_ratio = 0.8; degree_slack = 2 }]. *)

val name : t -> string
(** ["patch"], ["rebuild"], or ["adaptive(r=<min_ratio>,d=<slack>)"]. *)

type observation = {
  rate : float;  (** measured throughput of the patched overlay *)
  optimal : float;  (** optimal acyclic rate of the current instance *)
  max_excess : int;  (** worst additive outdegree excess right now *)
}

type state
(** Mutable per-run policy state (the drift tracker). *)

val init : t -> Overlay.t -> state
(** Capture the overlay's promised degree bound (3 — the Theorem 4.1
    worst-class bound — when its provenance promises none). *)

val decide : state -> observation -> bool
(** [true] means rebuild now. Updates the drift tracker as a side
    effect. Raises [Invalid_argument] if an {!Adaptive} policy has
    [min_ratio] outside [0, 1] or negative [degree_slack]. *)

val note_rebuild : state -> Overlay.t -> unit
(** Inform the state that a rebuild happened: resets degree drift and
    re-captures the promised bound from the fresh overlay. *)
