(** Deterministic fault-injection traces.

    A trace is a finite sequence of churn events replayed against a live
    overlay by {!Engine}. Traces are {e abstract}: node-targeting events
    carry a raw non-negative [pick] that the engine resolves against the
    overlay's population at application time ([1 + pick mod (size - 1)]),
    so one trace applies to any overlay and stays meaningful while the
    population grows and shrinks. This is what makes traces portable
    artifacts — the same file drives an n = 10 smoke test and an
    n = 5000 benchmark.

    Traces come from two equally deterministic sources:

    - {!gen}: seeded generation from a {!Prng.Splitmix} stream under an
      event {!mix} (the adversarial default mixes leaves, joins,
      bandwidth degrades/restores, correlated batch failures and
      flash-crowd join bursts);
    - {!of_json}: a strict, versioned JSON file (format [bmp-trace],
      version {!format_version}) following the [bmp-scheme] reader
      discipline — unknown fields, unsupported versions, non-finite
      numbers and out-of-domain parameters are rejected with an
      explanatory message, never loaded.

    {!to_json} is canonical and byte-deterministic (floats at 17
    significant digits, one line), so [of_json (to_json t)] round-trips
    exactly and golden files can pin the format. *)

type event =
  | Leave of { pick : int }  (** one node departs *)
  | Join of { bandwidth : float; guarded : bool }  (** one node arrives *)
  | Degrade of { pick : int; factor : float }
      (** a node's upload capacity is multiplied by [factor], in (0, 1] *)
  | Restore of { pick : int; factor : float }
      (** a node's upload capacity is divided by [factor], in (0, 1] *)
  | Fail_batch of { picks : int list }
      (** correlated failure: the picked nodes vanish in one event *)
  | Flash_crowd of { arrivals : (float * bool) list }
      (** join burst: [(bandwidth, guarded)] newcomers in one event *)

type t = { events : event array }

val length : t -> int

val label : event -> string
(** Short human label ("leave", "join", "degrade", "restore",
    "fail-batch", "flash-crowd") — the [type] tag of the JSON form. *)

(** {2 Seeded generation} *)

type mix = {
  w_leave : float;
  w_join : float;
  w_degrade : float;
  w_restore : float;
  w_fail_batch : float;
  w_flash_crowd : float;
      (** relative (positive, not necessarily normalized) weights of the
          six event kinds *)
  max_batch : int;  (** largest correlated failure, [>= 1] *)
  max_flash : int;  (** largest flash-crowd burst, [>= 1] *)
  p_guarded : float;  (** probability a newcomer is guarded, in [0, 1] *)
  dist : Prng.Dist.t;  (** newcomer bandwidth distribution *)
}

val default_mix : mix
(** The adversarial default: leaves and joins dominate (weight 0.3 each),
    degrades 0.15, restores 0.10, correlated failures 0.10 (up to 5
    casualties), flash crowds 0.05 (up to 8 arrivals); newcomers are
    guarded with probability 0.3 and draw from [Unif\[1,100\]]. *)

val gen : ?mix:mix -> events:int -> Prng.Splitmix.t -> t
(** [gen ~events rng] draws a trace of [events] events. Deterministic in
    the stream state; generation consumes the stream sequentially, so a
    trace is a pure function of its seed. Raises [Invalid_argument] on a
    negative count or an invalid mix. *)

(** {2 Persistence} *)

val format_version : int
(** Version number written into (and required from) trace files; this
    library writes and reads version [1]. *)

val to_json : t -> string
(** Canonical one-line serialization:

    {v
{"format": "bmp-trace", "version": 1, "events": [{"type": "leave", "pick": 17}, ...]}
    v}

    Byte-deterministic: the same trace always serializes to the same
    bytes. *)

val of_json : string -> (t, string) result
(** Strict inverse of {!to_json}: validates the format tag and version,
    every event's field set and domains ([pick >= 0], [factor] in (0, 1],
    finite non-negative bandwidths, non-empty batches). Unknown fields or
    event types are errors, not warnings. *)

(** {2 Single-event codecs}

    The event objects inside a trace file are also the wire format of the
    tracker daemon ({!Tracker}): one NDJSON request line per event. These
    expose the per-event halves of {!to_json}/{!of_json} so that layer
    reuses the exact same bytes and the exact same strict validation. *)

val event_to_json : event -> string
(** Canonical one-line JSON object for one event — the same bytes
    {!to_json} embeds in the [events] array. *)

val event_of_json_value : Flowgraph.Json.t -> (event, string) result
(** Strict single-event reader over an already-parsed JSON value, with
    the same field-set and domain validation as {!of_json}. *)
