(** Exact rational arithmetic over native integers.

    The tight worst-case results of the paper (the [5/7] ratio of Theorem
    6.2, the [(1 + sqrt 41) / 8] family of Theorem 6.3 approximated by
    rationals, Table I's exact bandwidth accounting) are statements about
    exact arithmetic; verifying them with floats would only establish them
    up to rounding. This module provides normalized rationals with overflow
    detection — all the paper's gadgets involve tiny numerators, so native
    [int] range (63 bits) is ample, and any overflow raises rather than
    silently wrapping. *)

type t = private { num : int; den : int }
(** A rational in lowest terms with [den > 0]. [num = 0] implies [den = 1]. *)

exception Overflow
(** Raised when an intermediate product would exceed native-int range. *)

val make : int -> int -> t
(** [make num den] normalizes [num/den]. Requires [den <> 0]. *)

val of_int : int -> t

val zero : t
val one : t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** [div a b] requires [b <> zero]. *)

val neg : t -> t
val abs : t -> t
val min : t -> t -> t
val max : t -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t

val ceil_div : t -> t -> int
(** [ceil_div a b] is [ceil (a / b)] as an integer; the degree lower bound
    [ceil (bi / T)] of the paper. Requires [b > zero] and [a >= zero]. *)

val to_float : t -> float
val of_float_approx : ?max_den:int -> float -> t
(** Best rational approximation with denominator at most [max_den]
    (default [10_000]), by continued fractions. Used to embed measured
    bandwidths into exact gadgets. Raises [Invalid_argument] on NaN or
    infinite input and {!Overflow} when the magnitude exceeds native-int
    range (>= [2^62]). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val sum : t list -> t
