type t = { num : int; den : int }

exception Overflow

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* Overflow-checked native multiplication: the product of two ints fits iff
   dividing it back recovers the operands. *)
let mul_int a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a then raise Overflow else p

let add_int a b =
  let s = a + b in
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then raise Overflow;
  s

let make num den =
  if den = 0 then invalid_arg "Q.make: zero denominator";
  if num = 0 then { num = 0; den = 1 }
  else
    let sign = if (num < 0) = (den < 0) then 1 else -1 in
    let num = abs num and den = abs den in
    let g = gcd num den in
    { num = sign * (num / g); den = den / g }

let of_int n = { num = n; den = 1 }

let zero = of_int 0
let one = of_int 1

let add a b =
  let g = gcd a.den b.den in
  let da = a.den / g and db = b.den / g in
  make (add_int (mul_int a.num db) (mul_int b.num da)) (mul_int a.den db)

let neg a = { a with num = -a.num }

let sub a b = add a (neg b)

let mul a b =
  (* Cross-reduce before multiplying to keep intermediates small. *)
  let g1 = gcd (abs a.num) b.den and g2 = gcd (abs b.num) a.den in
  let g1 = if g1 = 0 then 1 else g1 and g2 = if g2 = 0 then 1 else g2 in
  make (mul_int (a.num / g1) (b.num / g2)) (mul_int (a.den / g2) (b.den / g1))

let div a b =
  if b.num = 0 then invalid_arg "Q.div: division by zero";
  mul a { num = b.den; den = abs b.num } |> fun r ->
  if b.num < 0 then neg r else r

let abs a = { a with num = abs a.num }

let compare a b =
  (* a.num/a.den ? b.num/b.den <=> a.num*b.den ? b.num*a.den, both dens > 0. *)
  Stdlib.compare (mul_int a.num b.den) (mul_int b.num a.den)

let equal a b = compare a b = 0
let ( = ) = equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0

let min a b = if a <= b then a else b
let max a b = if a >= b then a else b

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div

let ceil_div a b =
  if Stdlib.( <= ) b.num 0 then invalid_arg "Q.ceil_div: divisor must be positive";
  if Stdlib.( < ) a.num 0 then invalid_arg "Q.ceil_div: dividend must be non-negative";
  let q = div a b in
  (* ceil(num/den) for num >= 0, den > 0. *)
  Stdlib.( / ) (add_int q.num (Stdlib.( - ) q.den 1)) q.den

let to_float a = float_of_int a.num /. float_of_int a.den

let of_float_approx ?(max_den = 10_000) x =
  if Float.is_nan x || (Stdlib.( = ) (Float.abs x) Float.infinity) then
    invalid_arg "Q.of_float_approx: not a finite float";
  (* int_of_float is unspecified outside [min_int, max_int]; every float
     of magnitude >= 2^62 is out of native-int range (and, being >= 2^53,
     would take the is_integer branch below). *)
  if Stdlib.( >= ) (Float.abs x) 0x1p62 then raise Overflow;
  if Float.is_integer x then of_int (int_of_float x)
  else begin
    let negative = Stdlib.( < ) x 0. in
    let x = Float.abs x in
    (* Continued-fraction convergents p/q until the denominator cap. *)
    let rec loop x p0 q0 p1 q1 =
      let a = int_of_float (Float.floor x) in
      let p2 = add_int (mul_int a p1) p0 and q2 = add_int (mul_int a q1) q0 in
      if Stdlib.( > ) q2 max_den then (p1, q1)
      else
        let frac = x -. Float.floor x in
        if Stdlib.( < ) frac 1e-12 then (p2, q2)
        else loop (1. /. frac) p1 q1 p2 q2
    in
    let a0 = int_of_float (Float.floor x) in
    let frac0 = x -. Float.floor x in
    let p, q =
      if Stdlib.( < ) frac0 1e-12 then (a0, 1)
      else loop (1. /. frac0) 1 0 a0 1
    in
    make (if negative then -p else p) q
  end

let to_string a =
  if Stdlib.( = ) a.den 1 then string_of_int a.num
  else Printf.sprintf "%d/%d" a.num a.den

let pp fmt a = Format.pp_print_string fmt (to_string a)

let sum l = List.fold_left add zero l
