type config = {
  chunks : int;
  chunk_size : float;
  seed : int64;
  max_time : float;
  streaming : bool;
  jitter : float;
  dedup_inflight : bool;
}

let default_config =
  {
    chunks = 200;
    chunk_size = 1.;
    seed = 42L;
    max_time = 1e6;
    streaming = false;
    jitter = 0.;
    dedup_inflight = true;
  }

type result = {
  delivered_all : bool;
  completion_time : float;
  per_node_completion : float array;
  efficiency : float;
  max_lag : float;
  transfers : int;
  duplicates : int;
}

type event =
  | Arrival of int  (** edge index whose in-flight chunk lands *)
  | Release of int  (** streaming: source publishes this chunk *)

type edge = {
  src : int;
  dst : int;
  duration : float;  (** transfer time of one chunk on this edge *)
  mutable carrying : int;  (** chunk in flight, [-1] when idle *)
}

let simulate ?(config = default_config) overlay ~rate =
  if rate <= 0. then invalid_arg "Sim.simulate: rate must be positive";
  if config.chunks < 1 || config.chunk_size <= 0. then
    invalid_arg "Sim.simulate: bad chunk configuration";
  if config.jitter < 0. then invalid_arg "Sim.simulate: negative jitter";
  let nodes = Flowgraph.Graph.node_count overlay in
  let k = config.chunks in
  let rng = Prng.Splitmix.create config.seed in
  (* Edge arena, in canonical (src, dst) order — Graph.iter_edges order
     depends on hashtable insertion history, and the wake-up order below
     consumes the PRNG, so without sorting the results would depend on
     how the overlay was constructed. Canonical order (plus the FIFO
     tie-breaking Pqueue) makes the run a pure function of (snapshot,
     config, rate) and lines this simulator up event-for-event with
     Stream.Dataplane, which walks CSR rows in the same order. *)
  let edges = ref [] in
  Flowgraph.Graph.iter_edges
    (fun ~src ~dst w ->
      (* Edges too slow to deliver a single chunk within the horizon would
         only pin chunks in flight forever; leave them out. *)
      if w > 0. && config.chunk_size /. w < config.max_time then
        edges :=
          { src; dst; duration = config.chunk_size /. w; carrying = -1 } :: !edges)
    overlay;
  let edges =
    Array.of_list
      (List.sort
         (fun a b -> if a.src <> b.src then compare a.src b.src else compare a.dst b.dst)
         !edges)
  in
  let out_edges = Array.make nodes [] in
  for e = Array.length edges - 1 downto 0 do
    out_edges.(edges.(e).src) <- e :: out_edges.(edges.(e).src)
  done;
  (* Ownership: owned.(v).(c); the source's ownership in streaming mode is
     governed by the release clock. *)
  let owned = Array.init nodes (fun _ -> Bytes.make k '\000') in
  let owned_count = Array.make nodes 0 in
  let inflight = Array.init nodes (fun _ -> Bytes.make k '\000') in
  let release_time =
    Array.init k (fun c ->
        if config.streaming then float_of_int c *. config.chunk_size /. rate else 0.)
  in
  if not config.streaming then begin
    Bytes.fill owned.(0) 0 k '\001';
    owned_count.(0) <- k
  end;
  let arrival_time = Array.make_matrix nodes k infinity in
  for c = 0 to k - 1 do
    arrival_time.(0).(c) <- release_time.(c)
  done;
  let per_node_completion = Array.make nodes infinity in
  per_node_completion.(0) <- (if config.streaming then release_time.(k - 1) else 0.);
  let complete_nodes = ref (if config.streaming then 0 else 1) in
  let queue = Pqueue.create () in
  let transfers = ref 0 and duplicates = ref 0 in
  (* Pick a uniformly random chunk owned by src, not owned by nor flying
     to dst (reservoir sampling over the ownership bitmaps). *)
  let pick_useful src dst =
    let choice = ref (-1) and seen = ref 0 in
    let s = owned.(src) and d = owned.(dst) and f = inflight.(dst) in
    for c = 0 to k - 1 do
      if
        Bytes.get s c = '\001'
        && Bytes.get d c = '\000'
        && ((not config.dedup_inflight) || Bytes.get f c = '\000')
      then begin
        incr seen;
        if Prng.Splitmix.next_below rng !seen = 0 then choice := c
      end
    done;
    !choice
  in
  let try_start now e =
    let edge = edges.(e) in
    if edge.carrying < 0 then begin
      let c = pick_useful edge.src edge.dst in
      if c >= 0 then begin
        edge.carrying <- c;
        Bytes.set inflight.(edge.dst) c '\001';
        let duration =
          if config.jitter <= 0. then edge.duration
          else begin
            (* Log-uniform factor in [1/(1+j), 1+j]: symmetric slowdowns
               and speedups around the nominal rate. *)
            let span = log (1. +. config.jitter) in
            let u = (2. *. Prng.Splitmix.next_float rng) -. 1. in
            edge.duration *. exp (u *. span)
          end
        in
        Pqueue.push queue (now +. duration) (Arrival e)
      end
    end
  in
  let wake_out now v = List.iter (try_start now) out_edges.(v) in
  let learn now v c =
    if Bytes.get owned.(v) c = '\000' then begin
      Bytes.set owned.(v) c '\001';
      owned_count.(v) <- owned_count.(v) + 1;
      arrival_time.(v).(c) <- now;
      if owned_count.(v) = k then begin
        per_node_completion.(v) <- now;
        incr complete_nodes
      end;
      wake_out now v
    end
  in
  (* Seed events. *)
  if config.streaming then
    Array.iteri (fun c t -> Pqueue.push queue t (Release c)) release_time
  else wake_out 0. 0;
  let finished () = !complete_nodes = nodes in
  let rec loop () =
    match Pqueue.pop queue with
    | None -> ()
    | Some (now, _) when now > config.max_time -> ()
    | Some (now, Release c) ->
      Bytes.set owned.(0) c '\001';
      owned_count.(0) <- owned_count.(0) + 1;
      if owned_count.(0) = k then begin
        per_node_completion.(0) <- now;
        incr complete_nodes
      end;
      wake_out now 0;
      loop ()
    | Some (now, Arrival e) ->
      let edge = edges.(e) in
      let c = edge.carrying in
      edge.carrying <- -1;
      Bytes.set inflight.(edge.dst) c '\000';
      incr transfers;
      if Bytes.get owned.(edge.dst) c = '\001' then incr duplicates
      else learn now edge.dst c;
      (* The sender is free again. *)
      try_start now e;
      if not (finished ()) then loop ()
  in
  loop ();
  let delivered_all = finished () in
  let completion_time =
    Array.fold_left Float.max 0. per_node_completion
  in
  let ideal = float_of_int k *. config.chunk_size /. rate in
  let efficiency =
    if delivered_all && completion_time > 0. then ideal /. completion_time
    else 0.
  in
  let max_lag =
    let worst = ref 0. in
    for v = 0 to nodes - 1 do
      for c = 0 to k - 1 do
        if arrival_time.(v).(c) < infinity then
          worst := Float.max !worst (arrival_time.(v).(c) -. release_time.(c))
      done
    done;
    !worst
  in
  {
    delivered_all;
    completion_time = (if delivered_all then completion_time else infinity);
    per_node_completion;
    efficiency;
    max_lag;
    transfers = !transfers;
    duplicates = !duplicates;
  }
