(* Binary min-heap ordered by (key, insertion sequence): equal keys pop
   in FIFO order, so drain order is a strict total order independent of
   the heap's internal layout. Simulations driven by this queue are
   therefore comparable event-for-event with Stream.Eheap (which has the
   same tie-breaking contract). *)

type 'a t = {
  mutable keys : float array;
  mutable seqs : int array;
  mutable values : 'a option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () =
  {
    keys = Array.make 16 0.;
    seqs = Array.make 16 0;
    values = Array.make 16 None;
    size = 0;
    next_seq = 0;
  }

let is_empty q = q.size = 0

let size q = q.size

let grow q =
  let cap = Array.length q.keys in
  let keys = Array.make (2 * cap) 0. in
  let seqs = Array.make (2 * cap) 0 in
  let values = Array.make (2 * cap) None in
  Array.blit q.keys 0 keys 0 q.size;
  Array.blit q.seqs 0 seqs 0 q.size;
  Array.blit q.values 0 values 0 q.size;
  q.keys <- keys;
  q.seqs <- seqs;
  q.values <- values

(* Earlier key first; FIFO among equal keys ([seqs] entries are unique). *)
let before q i j =
  q.keys.(i) < q.keys.(j) || (q.keys.(i) = q.keys.(j) && q.seqs.(i) < q.seqs.(j))

let swap q i j =
  let k = q.keys.(i) and s = q.seqs.(i) and v = q.values.(i) in
  q.keys.(i) <- q.keys.(j);
  q.seqs.(i) <- q.seqs.(j);
  q.values.(i) <- q.values.(j);
  q.keys.(j) <- k;
  q.seqs.(j) <- s;
  q.values.(j) <- v

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before q i parent then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && before q l !smallest then smallest := l;
  if r < q.size && before q r !smallest then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let push q key v =
  if q.size = Array.length q.keys then grow q;
  q.keys.(q.size) <- key;
  q.seqs.(q.size) <- q.next_seq;
  q.next_seq <- q.next_seq + 1;
  q.values.(q.size) <- Some v;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let key = q.keys.(0) and v = q.values.(0) in
    q.size <- q.size - 1;
    q.keys.(0) <- q.keys.(q.size);
    q.seqs.(0) <- q.seqs.(q.size);
    q.values.(0) <- q.values.(q.size);
    q.values.(q.size) <- None;
    if q.size > 0 then sift_down q 0;
    match v with
    | Some v -> Some (key, v)
    | None -> assert false
  end

let peek_key q = if q.size = 0 then None else Some q.keys.(0)
