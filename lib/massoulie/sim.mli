(** Discrete-event simulator of Massoulié-style randomized broadcast on a
    fixed overlay (the transport layer the paper delegates to reference
    [4], "Randomized decentralized broadcasting algorithms").

    The message is split into [chunks] equal chunks. Every overlay edge
    [(i, j)] of rate [c i j] is an independent pipe that transfers one
    chunk in [chunk_size / c i j] time units; whenever a pipe is free it
    picks a {e random useful} chunk — one that [i] owns, [j] does not own,
    and no other pipe is currently carrying to [j] — and goes idle when no
    such chunk exists (woken when [i] learns a new chunk). The source
    (node 0) owns everything from the start in file mode; in streaming
    mode chunk [k] is released at time [k * chunk_size / rate], modelling
    a live stream produced at the target rate.

    The paper's claim validated by this simulator: on the overlays built
    by the broadcast algorithms (constant rate into every node, no
    contention), randomized chunk exchange actually delivers the computed
    throughput, up to startup/pipelining losses that vanish as [chunks]
    grows.

    {2 Determinism contract (differential oracle)}

    A run is a pure function of the overlay's {e edge set}, the config
    and [rate] — independent of how the overlay graph was constructed:
    the edge arena is sorted into canonical [(src, dst)] order, idle
    edges wake in ascending canonical order, and simultaneous events
    pop in FIFO (insertion) order ({!Pqueue}). Under these rules the
    simulator consumes its PRNG in exactly the same sequence as
    {!Stream.Dataplane} run with [Oracle_reservoir] on the same frozen
    snapshot, so the two produce {e identical} completion times,
    per-node completions and transfer counts on identical seeds — the
    small-n differential oracle for the flat-arena dataplane
    (test/test_stream.ml). This module stays the readable reference
    implementation; use {!Stream.Dataplane} for n beyond a few
    thousand. *)

type config = {
  chunks : int;  (** number of chunks, [>= 1] *)
  chunk_size : float;  (** data units per chunk, [> 0] *)
  seed : int64;
  max_time : float;  (** simulation horizon safeguard *)
  streaming : bool;  (** live-stream release schedule *)
  jitter : float;
      (** relative bandwidth fluctuation: each individual transfer's
          duration is scaled by an independent factor drawn uniformly in
          [[1/(1+jitter), 1+jitter]] (geometric-mean preserving). [0.] =
          ideal links. Models the "small variations of resource
          performance" the paper's conclusion claims the overlays are
          resilient to. *)
  dedup_inflight : bool;
      (** when [true] (default) a chunk already in flight toward a receiver
          is not picked by its other in-edges — no duplicate transfers, but
          a very slow edge can hold a chunk hostage for its whole transfer
          time. [false] matches Massoulié's algorithm more closely: senders
          pick among everything the receiver lacks, duplicates are
          discarded on arrival (counted in [duplicates]). Use [false] for
          latency-sensitive streaming over overlays with sliver edges. *)
}

val default_config : config
(** 200 chunks of size 1, seed 42, horizon [1e6], file mode, no jitter,
    in-flight dedup on. *)

type result = {
  delivered_all : bool;  (** every node got every chunk before the horizon *)
  completion_time : float;
      (** time the last node completed ([infinity] if not delivered) *)
  per_node_completion : float array;
  efficiency : float;
      (** [ideal / completion_time] where
          [ideal = chunks * chunk_size / rate] — approaches 1 from below
          for large [chunks] on a throughput-[rate] overlay *)
  max_lag : float;
      (** streaming mode: worst difference between a chunk's arrival at a
          node and its release time (the playout delay a viewer needs);
          in file mode this equals [completion_time] *)
  transfers : int;  (** total chunk transfers performed *)
  duplicates : int;  (** transfers discarded because the chunk had already arrived *)
}

val simulate : ?config:config -> Flowgraph.Graph.t -> rate:float -> result
(** [simulate overlay ~rate] runs the broadcast to completion (or to the
    horizon). [rate] must be positive; node [0] is the source. *)
