(** Minimal binary min-heap priority queue, keyed by float.

    O(log n) insert and extract-min, {e stable}: bindings with equal
    keys pop in insertion (FIFO) order. This makes every simulation
    driven by the queue fully determined by its push sequence — the
    same tie-breaking contract as the flat {!Stream.Eheap} — which is
    what lets {!Sim} serve as an event-for-event differential oracle
    for the streaming dataplane. (Before the dataplane existed ties
    broke arbitrarily by heap layout; the simulators could not be
    compared exactly.) *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push q key v] inserts [v] with priority [key]. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum-key binding. *)

val peek_key : 'a t -> float option
