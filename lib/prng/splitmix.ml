type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* Mixing function "mix64variant13" from the SplitMix64 reference
   implementation: two xor-shift-multiply rounds with distinct odd
   constants, which is enough to pass BigCrush when driven by a Weyl
   sequence. *)
(* The [@inline] annotations below keep the Int64 intermediates in
   registers: without them classic ocamlopt boxes the argument and
   result of every [mix]/[next] call, which dominates the per-event
   allocation of the streaming dataplane's hot loop (the only
   unavoidable box left is the [state] field write). Inlining does not
   change the generated streams. *)
let[@inline] mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let[@inline] next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let[@inline] next_float t =
  (* Top 53 bits scaled by 2^-53: uniform on [0,1) with full double
     precision granularity. *)
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits *. 0x1p-53

let next_below t n =
  if n <= 0 then invalid_arg "Splitmix.next_below: n must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. A while
     loop rather than an inner recursive function: the closure the
     latter builds to capture [t] and [n64] would be a per-call
     allocation on the dataplane's hot path. *)
  let n64 = Int64.of_int n in
  let result = ref (-1) in
  while !result < 0 do
    let bits = Int64.shift_right_logical (next t) 1 in
    let v = Int64.rem bits n64 in
    if Int64.sub (Int64.add (Int64.sub bits v) (Int64.sub n64 1L)) bits >= 0L
    then result := Int64.to_int v
  done;
  !result

let split t = create (next t)

let split_n t k =
  if k < 0 then invalid_arg "Splitmix.split_n: negative count";
  let out = Array.make k t in
  for i = 0 to k - 1 do
    out.(i) <- split t
  done;
  out
