type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* Mixing function "mix64variant13" from the SplitMix64 reference
   implementation: two xor-shift-multiply rounds with distinct odd
   constants, which is enough to pass BigCrush when driven by a Weyl
   sequence. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let next_float t =
  (* Top 53 bits scaled by 2^-53: uniform on [0,1) with full double
     precision granularity. *)
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits *. 0x1p-53

let next_below t n =
  if n <= 0 then invalid_arg "Splitmix.next_below: n must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let rec loop () =
    let bits = Int64.shift_right_logical (next t) 1 in
    let v = Int64.rem bits n64 in
    if Int64.sub (Int64.add (Int64.sub bits v) (Int64.sub n64 1L)) bits >= 0L
    then Int64.to_int v
    else loop ()
  in
  loop ()

let split t = create (next t)

let split_n t k =
  if k < 0 then invalid_arg "Splitmix.split_n: negative count";
  let out = Array.make k t in
  for i = 0 to k - 1 do
    out.(i) <- split t
  done;
  out
