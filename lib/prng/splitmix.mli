(** SplitMix64 pseudo-random generator core.

    A tiny, fast, statistically solid 64-bit PRNG (Steele, Lea & Flood,
    OOPSLA 2014). Used as the deterministic randomness source for every
    experiment in this repository so that all paper reproductions are
    bit-reproducible across runs and machines. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator seeded with [seed]. Distinct
    seeds yield independent-looking streams. *)

val copy : t -> t
(** [copy t] is a generator that will produce the same future stream as [t]
    without sharing state. *)

val next : t -> int64
(** [next t] advances the state and returns 64 uniformly distributed bits. *)

val next_float : t -> float
(** [next_float t] is a uniform float in [\[0, 1)], using the top 53 bits. *)

val next_below : t -> int -> int
(** [next_below t n] is a uniform integer in [\[0, n)]. Requires [n > 0].
    Uses rejection sampling, so the result is exactly uniform. *)

val split : t -> t
(** [split t] derives a new independent generator from [t], advancing [t].
    Useful to hand child streams to parallel experiment arms. *)

val split_n : t -> int -> t array
(** [split_n t k] is [k] successive {!split}s of [t] — one independent
    stream per parallel work item. Deriving all streams {e before}
    submitting work is the seeding discipline that makes sweeps
    bit-identical for any worker count ({!Parallel.Pool}): stream [i]
    depends only on [t]'s state and [i], never on execution order.
    Requires [k >= 0]. *)
