open Platform

type row = {
  overlay : string;
  rate : float;
  chunks : int;
  efficiency : float;
  stream_lag : float;
}

let run_overlay ~label overlay ~rate ~chunks =
  let config = { Massoulie.Sim.default_config with chunks } in
  let file = Massoulie.Sim.simulate ~config overlay ~rate in
  let stream =
    Massoulie.Sim.simulate ~config:{ config with streaming = true } overlay ~rate
  in
  let chunk_time = config.Massoulie.Sim.chunk_size /. rate in
  {
    overlay = label;
    rate;
    chunks;
    efficiency = file.Massoulie.Sim.efficiency;
    stream_lag = stream.Massoulie.Sim.max_lag /. chunk_time;
  }

let compute ?(chunks = 300) () =
  let fig1 = Instance.fig1 in
  let rate1, scheme1 = Broadcast.Low_degree.build_optimal fig1 in
  let inst2 = Instance.create ~bandwidth:[| 5.; 5.; 4.; 4.; 4.; 3. |] ~n:5 ~m:0 () in
  let scheme2 = Broadcast.Cyclic_open.build ~t:5.0 inst2 in
  let rng = Prng.Splitmix.create 7L in
  let spec =
    { Platform.Generator.total = 30; p_open = 0.7; dist = Prng.Dist.unif100 }
  in
  let inst3 = Platform.Generator.generate spec rng in
  let rate3, scheme3 = Broadcast.Low_degree.build_optimal inst3 in
  let graph = Broadcast.Scheme.graph in
  [
    run_overlay ~label:"Fig1 low-degree acyclic" (graph scheme1) ~rate:rate1 ~chunks;
    run_overlay ~label:"Thm 5.2 cyclic example" (graph scheme2) ~rate:5.0 ~chunks;
    run_overlay ~label:"random n=30 Unif100" (graph scheme3) ~rate:rate3 ~chunks;
  ]

let print ?chunks fmt =
  Format.pp_print_string fmt
    (Tab.section "E11 - Massoulie transport validation");
  let rows =
    List.map
      (fun r ->
        [
          r.overlay;
          Tab.fmt "%.4f" r.rate;
          string_of_int r.chunks;
          Tab.fmt "%.4f" r.efficiency;
          Tab.fmt "%.1f" r.stream_lag;
        ])
      (compute ?chunks ())
  in
  Format.pp_print_string fmt
    (Tab.render
       ~header:[ "overlay"; "computed rate"; "chunks"; "efficiency"; "lag (chunk-times)" ]
       rows);
  Format.pp_print_string fmt
    "Randomized chunk exchange on the computed overlays delivers the computed\n\
     rate up to pipelining startup (efficiency -> 1 as chunks grow).\n"
