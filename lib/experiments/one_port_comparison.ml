type row = {
  scenario : string;
  heterogeneity : float;
  one_port_rate : float;
  multi_port_rate : float;
  advantage : float;
}

let compute ?(nodes = 24) ?(chunks = 120) ?(seed = 31L) ?source_bout ~scenario ~dist () =
  let rng = Prng.Splitmix.create seed in
  (* Platform: heterogeneous uplinks; every downlink is a uniform multiple
     of the median uplink (typical asymmetric access links). This is the
     regime of the paper's motivating example: a fast server's uplink can
     feed many moderate downlinks concurrently — unless the model forces
     it to serve them one at a time. *)
  let bout = Array.init (nodes + 1) (fun _ -> Prng.Dist.sample dist rng) in
  (* A strong source, as in the paper's streaming scenarios. *)
  bout.(0) <- Option.value ~default:(Array.fold_left Float.max 1. bout) source_bout;
  let sorted = Array.copy bout in
  Array.sort Float.compare sorted;
  let median = sorted.(Array.length sorted / 2) in
  let bin = Array.map (fun _ -> 4. *. median) bout in
  let guarded =
    Array.init (nodes + 1) (fun i -> i > 0 && Prng.Splitmix.next_float rng < 0.3)
  in
  (* One-port baseline. *)
  let op =
    Massoulie.One_port.simulate
      ~config:{ Massoulie.One_port.default_config with chunks; seed = 7L }
      ~bout ~bin ~guarded ()
  in
  (* Multi-port pipeline: overlay at the downlink-clipped optimal rate. *)
  let model = { Lastmile.Model.bout; bin } in
  let inst, _perm = Lastmile.Model.to_instance model ~source:0 ~guarded in
  let t_ac, _ = Broadcast.Greedy.optimal_acyclic inst in
  let min_bin = Array.fold_left Float.min infinity bin in
  let rate = Float.min (t_ac *. (1. -. 1e-6)) min_bin in
  let mp_rate =
    match Broadcast.Greedy.test inst ~rate with
    | None -> 0.
    | Some word ->
      let overlay = Broadcast.Scheme.graph (Broadcast.Low_degree.build inst ~rate word) in
      let sim =
        Massoulie.Sim.simulate
          ~config:
            {
              Massoulie.Sim.default_config with
              chunks;
              dedup_inflight = false;
              seed = 7L;
            }
          overlay ~rate
      in
      if sim.Massoulie.Sim.delivered_all then
        float_of_int chunks /. sim.Massoulie.Sim.completion_time
      else 0.
  in
  let non_source = Array.sub bout 1 nodes in
  let hi = Array.fold_left Float.max 0. non_source in
  let lo = Array.fold_left Float.min infinity non_source in
  {
    scenario;
    heterogeneity = (if lo > 0. then hi /. lo else infinity);
    one_port_rate = op.Massoulie.One_port.achieved_rate;
    multi_port_rate = mp_rate;
    advantage =
      (if op.Massoulie.One_port.achieved_rate > 0. then
         mp_rate /. op.Massoulie.One_port.achieved_rate
       else infinity);
  }

let print fmt =
  Format.pp_print_string fmt
    (Tab.section "E16 (extension) - bounded multi-port vs one-port baseline");
  let rows =
    List.map
      (fun (scenario, dist) ->
        let r = compute ~scenario ~dist () in
        [
          r.scenario;
          Tab.fmt "%.0fx" r.heterogeneity;
          Tab.fmt "%.2f" r.one_port_rate;
          Tab.fmt "%.2f" r.multi_port_rate;
          Tab.fmt "%.2fx" r.advantage;
        ])
      [
        ("homogeneous", Prng.Dist.Uniform { lo = 50.; hi = 50.0001 });
        ("Unif100", Prng.Dist.unif100);
        ("PLab", Platform.Plab.dist);
        ("Power2", Prng.Dist.power2);
      ]
    @ [ (let r =
           (* The paper's own example: a server-class source uploading to
              DSL peers. *)
           compute ~scenario:"server+DSL" ~source_bout:1000.
             ~dist:(Prng.Dist.Uniform { lo = 1.5; hi = 2.5 }) ()
         in
         [
           r.scenario;
           Tab.fmt "%.0fx" (1000. /. 2.);
           Tab.fmt "%.2f" r.one_port_rate;
           Tab.fmt "%.2f" r.multi_port_rate;
           Tab.fmt "%.2fx" r.advantage;
         ]) ]
  in
  Format.pp_print_string fmt
    (Tab.render
       ~header:
         [ "scenario"; "heterogeneity"; "one-port rate"; "multi-port rate"; "advantage" ]
       rows);
  Format.pp_print_string fmt
    "One-port is competitive on homogeneous platforms; under heterogeneity\n\
     fast nodes serialize behind slow receivers and the bounded multi-port\n\
     overlay pulls ahead — the paper's Section II-A motivation.\n"
