(** E14 (extension): self-healing policy comparison under adversarial
    churn.

    Runs the {!Churn.Engine} fault-injection engine over a set of seeded
    platforms and traces, once per policy (always-patch, always-rebuild,
    adaptive), with the invariant auditor on, and aggregates the
    throughput / edge-churn trade-off. The seed streams are pre-split
    before the worker pool, so the output is byte-identical for any
    [--jobs]. *)

type config = {
  seeds : int;  (** number of independent platform/trace pairs *)
  nodes : int;
  p_open : float;
  events : int;  (** trace length per seed *)
  headroom : float;  (** initial build targets [headroom * optimum] *)
  rebuild_headroom : float;  (** policy-ordered rebuilds target this fraction *)
  adaptive : Churn.Policy.t;  (** the adaptive contender *)
  seed : int64;
}

val default_config : config
(** 5 seeds, n = 40, p_open 0.7, 150 events, headroom 0.9, rebuild
    headroom 0.8, [Adaptive { min_ratio = 0.5; degree_slack = 4 }],
    root seed 1407. *)

type row = {
  policy : Churn.Policy.t;
  min_ratio : float;  (** worst rate/optimal over all seeds and events *)
  mean_ratio : float;  (** mean of per-seed mean ratios *)
  rebuilds : int;  (** total across seeds *)
  total_churn : int;  (** total edge churn across seeds *)
}

val compare_policies : ?jobs:int -> ?config:config -> unit -> row list
(** One row per policy, in [patch; rebuild; adaptive] order. Every run is
    audited at {!Churn.Audit.Check} level — an invariant violation
    escapes as {!Churn.Audit.Violation}. *)

val print : ?jobs:int -> Format.formatter -> unit
