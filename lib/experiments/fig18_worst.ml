type row = {
  epsilon : float;
  sigma1 : float;
  sigma2 : float;
  sigma1_measured : float;
  sigma2_measured : float;
  acyclic : float;
  ratio : float;
}

let compute ~epsilon =
  let inst = Broadcast.Ratio.five_sevenths_instance ~epsilon in
  let c = Broadcast.Ratio.compare_instance inst in
  (* sigma1 = 0123 (open node first), sigma2 = 0213 (guarded first). *)
  let sigma1_measured = Broadcast.Exact.order_throughput inst [| 1; 2; 3 |] in
  let sigma2_measured = Broadcast.Exact.order_throughput inst [| 2; 1; 3 |] in
  {
    epsilon;
    sigma1 = Broadcast.Ratio.sigma1_throughput ~epsilon;
    sigma2 = Broadcast.Ratio.sigma2_throughput ~epsilon;
    sigma1_measured;
    sigma2_measured;
    acyclic = c.Broadcast.Ratio.acyclic;
    ratio = Broadcast.Ratio.ratio c;
  }

let default_epsilons =
  [ 0.01; 0.03; 0.05; 1. /. 14.; 0.09; 0.12; 0.2; 0.3 ]

let print ?jobs ?(epsilons = default_epsilons) fmt =
  Format.pp_print_string fmt
    (Tab.section "E8 - Figure 18 / Theorem 6.2: the 5/7 gadget");
  (* Each epsilon's row is an independent, PRNG-free computation. *)
  let rows =
    Parallel.Pool.map_list ?jobs epsilons
      (fun epsilon ->
        let r = compute ~epsilon in
        [
          Tab.fmt "%.5f" r.epsilon;
          Tab.fmt "%.5f" r.sigma1;
          Tab.fmt "%.5f" r.sigma1_measured;
          Tab.fmt "%.5f" r.sigma2;
          Tab.fmt "%.5f" r.sigma2_measured;
          Tab.fmt "%.5f" r.acyclic;
          Tab.fmt "%.5f" r.ratio;
          (if Float.abs (epsilon -. (1. /. 14.)) < 1e-12 then "<- tight (5/7)"
           else "");
        ])
  in
  Format.pp_print_string fmt
    (Tab.render
       ~header:
         [
           "epsilon"; "sigma1 (closed)"; "sigma1 (meas)"; "sigma2 (closed)";
           "sigma2 (meas)"; "T*ac"; "ratio"; "";
         ]
       rows);
  Format.fprintf fmt "5/7 = %.6f; worst-case bound of Theorem 6.2 is tight.@."
    (5. /. 7.)
