open Platform

type outcome = {
  name : string;
  passed : bool;
  detail : string;
}

let check name passed detail = { name; passed; detail }

let close a b tol = Float.abs (a -. b) <= tol *. Float.max 1. (Float.abs b)

let check_fig1 () =
  let inst = Instance.fig1 in
  let cyc = Broadcast.Bounds.cyclic_upper inst in
  let ac, w = Broadcast.Greedy.optimal_acyclic inst in
  check "fig1 constants"
    (close cyc 4.4 1e-12 && close ac 4. 1e-9
    && Broadcast.Word.to_string w = "gogog")
    (Printf.sprintf "T*=%.4f (4.4), T*ac=%.4f (4), word=%s (gogog)" cyc ac
       (Broadcast.Word.to_string w))

let check_table1 () =
  let expected = [ (2., 4., 0.); (7., 0., 0.); (3., 1., 0.); (5., 0., 3.); (1., 1., 3.) ] in
  match Broadcast.Greedy.test_trace Instance.fig1 ~rate:4. with
  | None, _ -> check "Table I" false "greedy failed at T = 4"
  | Some _, trace ->
    let ok =
      List.length trace = 5
      && List.for_all2
           (fun d (o, g, w) ->
             let s = d.Broadcast.Greedy.state in
             close s.Broadcast.Word.avail_open o 1e-12
             && close s.Broadcast.Word.avail_guarded g 1e-12
             && close s.Broadcast.Word.waste w 1e-12)
           trace expected
    in
    check "Table I" ok "O/G/W trace at T = 4 vs paper"

let check_five_sevenths () =
  let t, _ =
    Broadcast.Exact_q.optimal_acyclic ~b0:Rational.Q.one
      ~opens:[ Rational.Q.make 8 7 ]
      ~guardeds:[ Rational.Q.make 3 7; Rational.Q.make 3 7 ]
  in
  check "Theorem 6.2 gadget (exact)"
    (Rational.Q.equal t (Rational.Q.make 5 7))
    (Printf.sprintf "T*ac = %s (expect 5/7)" (Rational.Q.to_string t))

let check_greedy_vs_exact () =
  let rng = Prng.Splitmix.create 1001L in
  let failures = ref 0 in
  for _ = 1 to 40 do
    let inst =
      Generator.generate
        { Generator.total = 7; p_open = 0.5; dist = Prng.Dist.unif100 }
        rng
    in
    let tg, _ = Broadcast.Greedy.optimal_acyclic inst in
    let te, _ = Broadcast.Exact.optimal_acyclic_words inst in
    if not (close tg te 1e-6) then incr failures
  done;
  check "greedy = exhaustive (40 random)" (!failures = 0)
    (Printf.sprintf "%d mismatches" !failures)

let check_schemes_valid () =
  let rng = Prng.Splitmix.create 1002L in
  let failures = ref 0 in
  for _ = 1 to 20 do
    let inst =
      Generator.generate
        { Generator.total = 15; p_open = 0.7; dist = Prng.Dist.ln1 }
        rng
    in
    let rate, scheme = Broadcast.Low_degree.build_optimal inst in
    let r = Broadcast.Scheme.report scheme in
    let d = Broadcast.Metrics.scheme_report scheme in
    if
      not
        (r.Broadcast.Verify.bandwidth_ok && r.Broadcast.Verify.firewall_ok
        && r.Broadcast.Verify.acyclic
        && Broadcast.Util.fge ~eps:1e-6 r.Broadcast.Verify.throughput rate
        && d.Broadcast.Metrics.max_excess <= 3)
    then incr failures
  done;
  check "Theorem 4.1 schemes valid (20 random)" (!failures = 0)
    (Printf.sprintf "%d invalid schemes" !failures)

let check_cyclic_valid () =
  let rng = Prng.Splitmix.create 1003L in
  let failures = ref 0 in
  for _ = 1 to 20 do
    let inst =
      Generator.generate { Generator.total = 12; p_open = 1.; dist = Prng.Dist.unif100 } rng
    in
    let t = Broadcast.Bounds.cyclic_open_optimal inst *. (1. -. 1e-9) in
    if t > 0. then begin
      let scheme = Broadcast.Cyclic_open.build ~t inst in
      if not (Broadcast.Scheme.achieves_target scheme) then incr failures
    end
  done;
  check "Theorem 5.2 schemes valid (20 random)" (!failures = 0)
    (Printf.sprintf "%d invalid schemes" !failures)

let check_ratio_floor () =
  let rng = Prng.Splitmix.create 1004L in
  let worst = ref 1. in
  for _ = 1 to 60 do
    let inst =
      Generator.generate { Generator.total = 10; p_open = 0.5; dist = Prng.Dist.power1 } rng
    in
    let c = Broadcast.Ratio.compare_instance inst in
    if c.Broadcast.Ratio.cyclic > 1e-6 then
      worst := Float.min !worst (Broadcast.Ratio.ratio c)
  done;
  check "5/7 floor (60 random)"
    (!worst >= (5. /. 7.) -. 1e-6)
    (Printf.sprintf "worst ratio %.4f (floor %.4f)" !worst (5. /. 7.))

let check_transport () =
  let rate, scheme = Broadcast.Low_degree.build_optimal Instance.fig1 in
  let sim =
    Massoulie.Sim.simulate
      ~config:{ Massoulie.Sim.default_config with chunks = 200 }
      (Broadcast.Scheme.graph scheme) ~rate
  in
  check "transport delivers fig1"
    (sim.Massoulie.Sim.delivered_all && sim.Massoulie.Sim.efficiency > 0.8)
    (Printf.sprintf "efficiency %.3f" sim.Massoulie.Sim.efficiency)

let check_lastmile () =
  let rng = Prng.Splitmix.create 1005L in
  let bout = Array.init 15 (fun _ -> Prng.Dist.sample Prng.Dist.unif100 rng) in
  let truth = { Lastmile.Model.bout; bin = Array.map (fun b -> 2. *. b) bout } in
  let matrix = Lastmile.Model.synthetic_matrix truth rng in
  let fitted = Lastmile.Model.fit matrix in
  let rmse = Lastmile.Model.rmse fitted matrix in
  check "last-mile exact recovery" (rmse < 1e-6) (Printf.sprintf "RMSE %.2g" rmse)

let run_all () =
  [
    check_fig1 ();
    check_table1 ();
    check_five_sevenths ();
    check_greedy_vs_exact ();
    check_schemes_valid ();
    check_cyclic_valid ();
    check_ratio_floor ();
    check_transport ();
    check_lastmile ();
  ]

let print fmt =
  Format.pp_print_string fmt (Tab.section "selfcheck");
  let outcomes = run_all () in
  List.iter
    (fun o ->
      Format.fprintf fmt "%s  %-36s %s@."
        (if o.passed then "PASS" else "FAIL")
        o.name o.detail)
    outcomes;
  let failures = List.length (List.filter (fun o -> not o.passed) outcomes) in
  Format.fprintf fmt "@.%d/%d checks passed@."
    (List.length outcomes - failures)
    (List.length outcomes);
  failures
