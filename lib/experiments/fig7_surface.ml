open Platform

type cell = {
  n : int;
  m : int;
  ratio : float;
  worst_delta : float;
}

type surface = {
  cells : cell list;
  global_min : cell;
  witnesses : int;
  verified : int;
}

let delta_samples ~n ~m =
  let nf = float_of_int n in
  let candidates =
    [ 0.; nf /. 4.; nf /. 2.; 3. *. nf /. 4.; nf ]
    (* o = 1 crossover: (m - 1 + delta) / n = 1. *)
    @ [ nf -. float_of_int m +. 1. ]
  in
  List.sort_uniq Float.compare
    (List.filter (fun d -> d >= 0. && d <= nf) candidates)

(* One grid cell plus the data needed to rebuild the witness scheme of its
   worst delta: instance, witness word and T*ac. The scheme itself is only
   built by [compute], which verifies all cells in one batch. *)
let compute_cell_witness ~n ~m =
  let worst = ref infinity and worst_delta = ref 0. in
  let witness = ref None in
  List.iter
    (fun delta ->
      let inst = Instance.tight_homogeneous ~n ~m ~delta in
      let t_ac, word = Broadcast.Greedy.optimal_acyclic inst in
      let t_star = Broadcast.Bounds.cyclic_upper inst in
      let ratio = t_ac /. t_star in
      if ratio < !worst then begin
        worst := ratio;
        worst_delta := delta;
        witness := (if t_ac > 0. then Some (inst, word, t_ac) else None)
      end)
    (delta_samples ~n ~m);
  ({ n; m; ratio = !worst; worst_delta = !worst_delta }, !witness)

let compute_cell ~n ~m = fst (compute_cell_witness ~n ~m)

let build_witness (inst, word, t_ac) =
  (* Same slack as the bench harness: stay a hair under T*ac so the float
     feasibility check of the constructor cannot trip on the bisection
     residue. *)
  let rate = t_ac *. (1. -. 4e-9) in
  try Some (inst, Broadcast.Low_degree.build inst ~rate word, rate)
  with Invalid_argument _ -> None

(* Small sizes first (where the 5/7 corner lives), then every fifth value
   up to 100 as in the paper's plot. *)
let default_axis = [ 1; 2; 3; 4 ] @ List.init 20 (fun k -> 5 * (k + 1))

let compute ?jobs ?(ns = default_axis) ?(ms = default_axis) () =
  (* The grid is embarrassingly parallel and PRNG-free: each cell is a
     pure function of (n, m), so fanning out over domains cannot change
     the result for any worker count. *)
  let grid =
    Array.of_list (List.concat_map (fun n -> List.map (fun m -> (n, m)) ms) ns)
  in
  let cells_w =
    Parallel.Pool.map_array ?jobs grid (fun (n, m) -> compute_cell_witness ~n ~m)
    |> Array.to_list
  in
  let cells = List.map fst cells_w in
  match cells with
  | [] -> invalid_arg "Fig7_surface.compute: empty grid"
  | first :: _ ->
    let global_min =
      List.fold_left (fun acc c -> if c.ratio < acc.ratio then c else acc) first cells
    in
    (* Every witness scheme of the sweep goes through the verification
       oracle in one batch — all are acyclic, so each costs one O(V + E)
       incoming-cut pass. *)
    let schemes = List.filter_map build_witness (List.filter_map snd cells_w) in
    let reports =
      Broadcast.Verify.check_batch
        (List.map (fun (inst, s, _) -> (inst, Broadcast.Scheme.graph s)) schemes)
    in
    let verified =
      List.fold_left2
        (fun acc (_, _, rate) r ->
          if
            r.Broadcast.Verify.bandwidth_ok && r.Broadcast.Verify.firewall_ok
            && r.Broadcast.Verify.bin_ok && r.Broadcast.Verify.acyclic
            && Broadcast.Util.fge ~eps:1e-6 r.Broadcast.Verify.throughput rate
          then acc + 1
          else acc)
        0 schemes reports
    in
    { cells; global_min; witnesses = List.length schemes; verified }

(* Character ramp for the ASCII heat map: '#' is near 1, '.' near 5/7. *)
let glyph ratio =
  let ramp = [| '.'; ':'; '-'; '='; '+'; '*'; '%'; '#' |] in
  let lo = 5. /. 7. and hi = 1. in
  let pos = (ratio -. lo) /. (hi -. lo) in
  let idx = int_of_float (pos *. float_of_int (Array.length ramp - 1)) in
  ramp.(max 0 (min (Array.length ramp - 1) idx))

let print ?jobs ?(ns = default_axis) ?(ms = default_axis) fmt =
  Format.pp_print_string fmt
    (Tab.section "E5 - Figure 7: ratio surface on tight homogeneous instances");
  let surface = compute ?jobs ~ns ~ms () in
  let lookup =
    let tbl = Hashtbl.create 512 in
    List.iter (fun c -> Hashtbl.replace tbl (c.n, c.m) c) surface.cells;
    fun n m -> Hashtbl.find tbl (n, m)
  in
  Format.fprintf fmt "T*ac / T* heat map ('#' ~ 1.0, '.' ~ 5/7 = %.4f):@." (5. /. 7.);
  Format.fprintf fmt "        m -> %s@."
    (String.concat " " (List.map (Tab.fmt "%3d") ms));
  List.iter
    (fun n ->
      let line =
        String.concat ""
          (List.map (fun m -> Tab.fmt "  %c " (glyph (lookup n m).ratio)) ms)
      in
      Format.fprintf fmt "n = %3d      %s@." n line)
    ns;
  let g = surface.global_min in
  Format.fprintf fmt
    "@.global minimum: ratio %.5f at n = %d, m = %d (delta = %.2f); m/n = %.4f \
     (Theorem 6.3 valley at %.4f)@."
    g.ratio g.n g.m g.worst_delta
    (float_of_int g.m /. float_of_int g.n)
    Broadcast.Ratio.sqrt41_alpha;
  let below_08 =
    List.length (List.filter (fun c -> c.ratio < 0.8) surface.cells)
  in
  Format.fprintf fmt
    "cells below 0.8: %d / %d (paper: ratio > 0.8 except for few small/valley \
     instances)@."
    below_08 (List.length surface.cells);
  Format.fprintf fmt
    "witness schemes verified: %d / %d (batch oracle, acyclic fast path)@."
    surface.verified surface.witnesses
