(** Experiment E8 — Figure 18 / Theorem 6.2: the tight [5/7] gadget.

    Sweeps [epsilon] over the gadget (source 1, open [1 + 2 eps], two
    guarded [1/2 - eps]) and reports the closed-form throughputs of the
    two orderings [sigma1 = 0123] and [sigma2 = 0213]
    ([2/3 (1 + eps)] and [3/4 - eps/2]), the greedy optimum, and the
    acyclic/cyclic ratio. At [epsilon = 1/14] both orderings meet at
    exactly [5/7]. *)

type row = {
  epsilon : float;
  sigma1 : float;  (** closed form [2/3 (1 + eps)] *)
  sigma2 : float;  (** closed form [3/4 - eps/2] *)
  sigma1_measured : float;  (** [Exact.order_throughput] on [0123] *)
  sigma2_measured : float;  (** [Exact.order_throughput] on [0213] *)
  acyclic : float;  (** greedy optimum *)
  ratio : float;  (** over the cyclic optimum [1] *)
}

val compute : epsilon:float -> row

val print : ?jobs:int -> ?epsilons:float list -> Format.formatter -> unit
(** Default sweep includes the tight point [1/14]. Rows are computed on
    [jobs] domains (default = core count); each is PRNG-free, so the
    table is identical for every [jobs] value. *)
