type row = {
  nodes : int;
  chunks : int;
  rate : float;
  efficiency : float;
  delay_p50 : float;  (* chunk-times behind release *)
  delay_p99 : float;
  startup_p99 : float;  (* chunk-times before playback can start *)
  peak_queue : int;
  mean_queue : float;
}

let compute ?(chunks = 256) ?(seed = 31L) ~nodes () =
  let rng = Prng.Splitmix.create seed in
  let inst =
    Platform.Generator.generate
      { Platform.Generator.total = nodes; p_open = 0.6; dist = Prng.Dist.unif100 }
      rng
  in
  let rate, scheme = Broadcast.Low_degree.build_optimal inst in
  let csr = Broadcast.Scheme.snapshot scheme in
  let config =
    {
      Stream.Dataplane.default_config with
      chunks;
      streaming = true;
      (* dedup off, as in E15: sliver in-arcs must not hold chunks
         hostage, or delay tails measure the overlay's slowest edge
         instead of the queueing dynamics. *)
      dedup_inflight = false;
      seed = 29L;
    }
  in
  let r = Stream.Dataplane.run ~config csr ~rate in
  (* Normalise times to chunk-times so rows with different rates
     compare: one chunk-time = chunk_size / rate. *)
  let ct = config.Stream.Dataplane.chunk_size /. rate in
  {
    nodes;
    chunks;
    rate;
    efficiency = r.Stream.Dataplane.efficiency;
    delay_p50 = r.Stream.Dataplane.delay.Stream.Dataplane.p50 /. ct;
    delay_p99 = r.Stream.Dataplane.delay.Stream.Dataplane.p99 /. ct;
    startup_p99 = r.Stream.Dataplane.startup.Stream.Dataplane.p99 /. ct;
    peak_queue = r.Stream.Dataplane.peak_queue;
    mean_queue = r.Stream.Dataplane.mean_queue;
  }

let default_nodes = [ 50; 200; 800 ]
let default_chunks = [ 64; 256; 1024 ]

let compute_grid ?jobs ?(nodes = default_nodes) ?(chunks = default_chunks) () =
  let cells =
    Array.of_list
      (List.concat_map (fun n -> List.map (fun k -> (n, k)) chunks) nodes)
  in
  Array.to_list
    (Parallel.Pool.map_array ?jobs cells (fun (n, k) ->
         compute ~chunks:k ~nodes:n ()))

let print ?jobs fmt =
  Format.pp_print_string fmt
    (Tab.section
       "E18 (extension) - streaming delay and queue occupancy at scale");
  let rows = compute_grid ?jobs () in
  let cells =
    List.map
      (fun r ->
        [
          Tab.fmt "%d" r.nodes;
          Tab.fmt "%d" r.chunks;
          Tab.fmt "%.4f" r.efficiency;
          Tab.fmt "%.1f" r.delay_p50;
          Tab.fmt "%.1f" r.delay_p99;
          Tab.fmt "%.1f" r.startup_p99;
          Tab.fmt "%d" r.peak_queue;
          Tab.fmt "%.2f" r.mean_queue;
        ])
      rows
  in
  Format.pp_print_string fmt
    (Tab.render
       ~header:
         [
           "nodes"; "chunks"; "efficiency"; "delay p50"; "delay p99";
           "startup p99"; "peak q"; "mean q";
         ]
       cells);
  Format.pp_print_string fmt
    "Delays are in chunk-times (chunk_size / rate). Efficiency climbs with\n\
     chunks while startup latency depends only on the overlay depth, and\n\
     the delay tail grows sub-linearly in the stream length — the playout\n\
     lag relative to the whole stream vanishes as chunks grows; queue\n\
     backlogs stay modest at every platform size.\n"
