(** Name-indexed registry of all experiment drivers, shared by the CLI and
    the benchmark harness. *)

type entry = {
  name : string;  (** CLI identifier, e.g. ["fig7"] *)
  paper_artifact : string;  (** e.g. ["Figure 7"] *)
  description : string;
  run : ?jobs:int -> Format.formatter -> unit;
      (** default-parameter run; [jobs] bounds the worker-domain count of
          the driver's parallel sweeps (ignored by drivers that have
          none). Output is identical for every [jobs] value. *)
}

val all : entry list
(** In paper order. *)

val find : string -> entry option

val run_all : ?jobs:int -> Format.formatter -> unit
(** Runs every experiment with default parameters — the content of
    EXPERIMENTS.md. *)
