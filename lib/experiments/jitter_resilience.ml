type row = {
  jitter : float;
  efficiency : float;
  stream_lag : float;
}

let compute ?(nodes = 40) ?(chunks = 400) ?(seed = 23L) ~jitter () =
  let rng = Prng.Splitmix.create seed in
  let inst =
    Platform.Generator.generate
      { Platform.Generator.total = nodes; p_open = 0.7; dist = Prng.Dist.unif100 }
      rng
  in
  let rate, scheme = Broadcast.Low_degree.build_optimal inst in
  let overlay = Broadcast.Scheme.graph scheme in
  let base =
    {
      Massoulie.Sim.default_config with
      chunks;
      jitter;
      dedup_inflight = false;
      seed = 29L;
    }
  in
  let file = Massoulie.Sim.simulate ~config:base overlay ~rate in
  let stream =
    Massoulie.Sim.simulate ~config:{ base with streaming = true } overlay ~rate
  in
  {
    jitter;
    efficiency = file.Massoulie.Sim.efficiency;
    stream_lag = stream.Massoulie.Sim.max_lag *. rate /. base.Massoulie.Sim.chunk_size;
  }

let print ?(jitters = [ 0.; 0.02; 0.05; 0.1; 0.2; 0.5 ]) fmt =
  Format.pp_print_string fmt
    (Tab.section "E15 (extension) - resilience to bandwidth fluctuations");
  let rows =
    List.map
      (fun jitter ->
        let r = compute ~jitter () in
        [
          Tab.fmt "%.2f" r.jitter;
          Tab.fmt "%.4f" r.efficiency;
          Tab.fmt "%.0f" r.stream_lag;
        ])
      jitters
  in
  Format.pp_print_string fmt
    (Tab.render ~header:[ "jitter"; "efficiency"; "lag (chunk-times)" ] rows);
  Format.pp_print_string fmt
    "Randomized chunk selection absorbs small per-transfer fluctuations —\n\
     the paper's resilience claim; degradation stays gentle well past 10%.\n"
