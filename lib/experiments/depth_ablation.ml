type row = {
  point : Broadcast.Depth.tradeoff_point;
  fifo_lag : float;
  min_depth_lag : float;
}

let stream_lag overlay ~rate =
  let config =
    {
      Massoulie.Sim.default_config with
      chunks = 250;
      streaming = true;
      dedup_inflight = false;
      seed = 13L;
    }
  in
  let r = Massoulie.Sim.simulate ~config overlay ~rate in
  if r.Massoulie.Sim.delivered_all then r.Massoulie.Sim.max_lag *. rate
  else infinity

let compute ?(nodes = 60) ?(fractions = [ 1.0; 0.9; 0.75; 0.5 ]) ?(seed = 5L) () =
  let rng = Prng.Splitmix.create seed in
  let inst =
    Platform.Generator.generate
      { Platform.Generator.total = nodes; p_open = 0.8; dist = Prng.Dist.unif100 }
      rng
  in
  let points = Broadcast.Depth.tradeoff ~fractions inst in
  List.map
    (fun (point : Broadcast.Depth.tradeoff_point) ->
      let rate = point.Broadcast.Depth.rate in
      match Broadcast.Greedy.test inst ~rate with
      | None -> { point; fifo_lag = nan; min_depth_lag = nan }
      | Some word ->
        let fifo = Broadcast.Low_degree.build inst ~rate word in
        let shallow = Broadcast.Depth.build inst ~rate word in
        {
          point;
          fifo_lag = stream_lag (Broadcast.Scheme.graph fifo) ~rate;
          min_depth_lag = stream_lag (Broadcast.Scheme.graph shallow) ~rate;
        })
    points

let print fmt =
  Format.pp_print_string fmt
    (Tab.section "E14 (ablation) - depth vs throughput vs degree");
  let rows =
    List.map
      (fun r ->
        let p = r.point in
        [
          Tab.fmt "%.2f" p.Broadcast.Depth.fraction;
          Tab.fmt "%.2f" p.Broadcast.Depth.rate;
          string_of_int p.Broadcast.Depth.fifo_depth;
          string_of_int p.Broadcast.Depth.min_depth;
          string_of_int p.Broadcast.Depth.fifo_max_excess;
          string_of_int p.Broadcast.Depth.min_depth_max_excess;
          Tab.fmt "%.0f" r.fifo_lag;
          Tab.fmt "%.0f" r.min_depth_lag;
        ])
      (compute ())
  in
  Format.pp_print_string fmt
    (Tab.render
       ~header:
         [
           "rate/T*ac"; "rate"; "depth FIFO"; "depth min"; "excess FIFO";
           "excess min"; "lag FIFO"; "lag min";
         ]
       rows);
  Format.pp_print_string fmt
    "The target-rate fraction is the real depth lever: backing off the rate\n\
     flattens the overlay towards log(n). Min-depth sender selection only\n\
     shaves the tail (earliest-sender is already nearly depth-greedy, since\n\
     early nodes are shallow) and costs extra connections. Lag (chunk-times)\n\
     loosely follows depth but is dominated by the slowest overlay edges.\n"
