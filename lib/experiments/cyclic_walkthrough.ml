open Platform

type row = {
  label : string;
  bandwidths : float array;
  t : float;
  deficit_index : int option;
  throughput : float;
  acyclic : bool;
  max_excess : int;
  degree_bound_ok : bool;
}

let compute inst ~t ~label =
  let scheme = Broadcast.Cyclic_open.build ~t inst in
  let report = Broadcast.Scheme.report scheme in
  let degrees = Broadcast.Metrics.scheme_report scheme in
  let bound_ok =
    let ok = ref true in
    Array.iteri
      (fun i o ->
        let bound =
          max (Broadcast.Bounds.degree_lower_bound inst ~t i + 2) 4
        in
        if o > bound then ok := false)
      degrees.Broadcast.Metrics.degrees;
    !ok
  in
  {
    label;
    bandwidths = inst.Instance.bandwidth;
    t;
    deficit_index = Broadcast.Acyclic_open.first_deficit inst ~t;
    throughput = report.Broadcast.Verify.throughput;
    acyclic = report.Broadcast.Verify.acyclic;
    max_excess = degrees.Broadcast.Metrics.max_excess;
    degree_bound_ok = bound_ok;
  }

let examples () =
  let fig11 = Instance.create ~bandwidth:[| 5.; 5.; 3.; 2. |] ~n:3 ~m:0 () in
  let fig14 = Instance.create ~bandwidth:[| 5.; 5.; 4.; 4.; 4.; 3. |] ~n:5 ~m:0 () in
  [
    compute fig11 ~t:5. ~label:"Fig 11-12 (i0 = n)";
    compute fig14 ~t:5. ~label:"Fig 14-17 (induction)";
  ]

let print fmt =
  Format.pp_print_string fmt
    (Tab.section "E7 - Figures 11-17: cyclic construction (Theorem 5.2)");
  let rows =
    List.map
      (fun r ->
        [
          r.label;
          String.concat ","
            (Array.to_list (Array.map (Tab.fmt "%g") r.bandwidths));
          Tab.fmt "%g" r.t;
          (match r.deficit_index with None -> "-" | Some i -> string_of_int i);
          Tab.fmt "%.4f" r.throughput;
          string_of_bool (not r.acyclic);
          string_of_int r.max_excess;
          string_of_bool r.degree_bound_ok;
        ])
      (examples ())
  in
  Format.pp_print_string fmt
    (Tab.render
       ~header:[ "example"; "b"; "T"; "i0"; "maxflow T"; "cyclic?"; "max excess"; "deg ok" ]
       rows)
