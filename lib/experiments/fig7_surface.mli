(** Experiment E5 — Figure 7: worst-case acyclic/cyclic ratio over tight
    homogeneous instances.

    A tight homogeneous instance (Theorem 6.2's proof) has [b0 = T* = 1],
    [n] open nodes of bandwidth [(m - 1 + delta) / n] and [m] guarded
    nodes of bandwidth [(n - delta) / m] for some [delta] in [\[0, n\]].
    For each [(n, m)] on a grid the driver minimizes [T*ac] over a set of
    [delta] samples (the interval endpoints, the [o = 1] crossover that
    splits the proof's case analysis, and quartile points) — reproducing
    the ratio surface: a valley at [5/7] for tiny instances, a persistent
    dip below 1 along [m ~ 0.4254 n] (Theorem 6.3), and ratios above 0.8
    almost everywhere else. *)

type cell = {
  n : int;
  m : int;
  ratio : float;  (** worst [T*ac / T*] over the delta samples *)
  worst_delta : float;
}

type surface = {
  cells : cell list;
  global_min : cell;
  witnesses : int;
      (** number of worst-delta witness schemes built by Lemma 4.6 *)
  verified : int;
      (** witnesses confirmed valid and at-rate by
          {!Broadcast.Verify.check_batch} — should equal [witnesses] *)
}

val delta_samples : n:int -> m:int -> float list

val compute_cell : n:int -> m:int -> cell

val compute : ?jobs:int -> ?ns:int list -> ?ms:int list -> unit -> surface
(** Default grids: [5, 10, ..., 100] on both axes. Cells are computed on
    [jobs] domains ({!Parallel.Pool}; default = core count) — each cell
    is a pure function of [(n, m)], so the surface is identical for every
    [jobs] value. Every cell's worst-delta witness scheme is rebuilt and
    cross-checked against the verification oracle in a single
    {!Broadcast.Verify.check_batch} call. *)

val print : ?jobs:int -> ?ns:int list -> ?ms:int list -> Format.formatter -> unit
(** Renders the surface as a coarse character map plus summary rows. *)
