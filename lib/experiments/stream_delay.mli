(** Experiment E18 (extension) — streaming delay and queue occupancy.

    The paper targets "large scale" platforms whose overlays serve live
    streams; rate-only verification says nothing about what a viewer
    experiences. This experiment runs the flat-arena streaming dataplane
    ({!Stream.Dataplane}, streaming mode) on optimal low-degree overlays
    across a (platform size x chunk count) grid and reports the
    user-facing metrics: achieved efficiency, per-delivery delay
    quantiles behind the release schedule, startup latency (first-chunk
    wait), and per-neighbor send-queue occupancy. Expected: efficiency
    approaches the verified rate as chunks grows, startup latency
    depends only on the overlay, and the delay tail grows sub-linearly
    in the stream length — the playout lag relative to the whole stream
    vanishes as chunks grows. *)

type row = {
  nodes : int;
  chunks : int;
  rate : float;  (** verified broadcast rate of the overlay *)
  efficiency : float;  (** ideal / completion *)
  delay_p50 : float;  (** median delivery delay behind release, chunk-times *)
  delay_p99 : float;
  startup_p99 : float;  (** first-chunk wait, chunk-times *)
  peak_queue : int;  (** max per-arc send-queue backlog *)
  mean_queue : float;  (** time-averaged backlog per enabled arc *)
}

val compute : ?chunks:int -> ?seed:int64 -> nodes:int -> unit -> row

val compute_grid :
  ?jobs:int -> ?nodes:int list -> ?chunks:int list -> unit -> row list
(** Sweeps the grid on the {!Parallel.Pool} worker domains; cell order
    (and hence output) is independent of [jobs]. *)

val print : ?jobs:int -> Format.formatter -> unit
