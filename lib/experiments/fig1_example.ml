open Platform

type data = {
  cyclic : float;
  acyclic : float;
  word : Broadcast.Word.t;
  order : int array;
  trace : Broadcast.Greedy.decision list;
  scheme_throughput : float;
  max_excess_open : int;
  max_excess_guarded : int;
}

let compute () =
  let inst = Instance.fig1 in
  let cyclic = Broadcast.Bounds.cyclic_upper inst in
  let acyclic, word = Broadcast.Greedy.optimal_acyclic inst in
  let rate = 4.0 in
  let trace =
    match Broadcast.Greedy.test_trace inst ~rate with
    | Some _, trace -> trace
    | None, _ -> failwith "Fig1_example: T = 4 should be feasible"
  in
  let scheme = Broadcast.Low_degree.build inst ~rate word in
  let report = Broadcast.Scheme.report scheme in
  let degrees = Broadcast.Metrics.scheme_report scheme in
  {
    cyclic;
    acyclic;
    word;
    order = Broadcast.Word.to_order word inst;
    trace;
    scheme_throughput = report.Broadcast.Verify.throughput;
    (* fig1 has both classes populated, so the per-class maxima exist. *)
    max_excess_open = Option.value ~default:0 degrees.Broadcast.Metrics.max_excess_open;
    max_excess_guarded =
      Option.value ~default:0 degrees.Broadcast.Metrics.max_excess_guarded;
  }

let print fmt =
  let d = compute () in
  Format.pp_print_string fmt (Tab.section "E1/E2 - Figure 1 instance & Table I");
  Format.fprintf fmt "instance: %a@." Instance.pp Instance.fig1;
  Format.fprintf fmt "optimal cyclic throughput T* (Lemma 5.1)   : %.4f  (paper: 4.4)@."
    d.cyclic;
  Format.fprintf fmt "optimal acyclic throughput T*ac (Thm 4.1)  : %.4f  (paper: 4)@."
    d.acyclic;
  Format.fprintf fmt "greedy word at T = 4                       : %s  (paper: order 031425)@."
    (Broadcast.Word.to_string d.word);
  Format.fprintf fmt "induced order sigma                        : %s@."
    (String.concat "" (Array.to_list (Array.map string_of_int d.order)));
  let rows =
    List.map
      (fun dec ->
        let s = dec.Broadcast.Greedy.state in
        [
          (match dec.Broadcast.Greedy.letter with
          | Instance.Open -> "O (open)"
          | Instance.Guarded -> "G (guarded)");
          Tab.fmt "%g" s.Broadcast.Word.avail_open;
          Tab.fmt "%g" s.Broadcast.Word.avail_guarded;
          Tab.fmt "%g" s.Broadcast.Word.waste;
        ])
      d.trace
  in
  Format.pp_print_string fmt "\nTable I - execution of Algorithm 2 at T = 4\n";
  Format.pp_print_string fmt
    (Tab.render ~header:[ "letter"; "O(pi)"; "G(pi)"; "W(pi)" ] rows);
  Format.pp_print_string fmt
    "(paper row:           O: 2 7 3 5 1 | G: 4 0 1 0 1 | W: 0 0 0 3 3)\n";
  Format.fprintf fmt "@.low-degree scheme: max-flow throughput %.4f; degree excess open <= %d (bound 3), guarded <= %d (bound 1)@."
    d.scheme_throughput d.max_excess_open d.max_excess_guarded
