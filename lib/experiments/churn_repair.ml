open Platform

type summary = {
  events : int;
  headroom : float;
  patch_edges_mean : float;
  rebuild_edges_mean : float;
  kept_mean : float;
  kept_min : float;
  rebuilds : int;
}

let build_with_headroom inst ~headroom =
  let t, _ = Broadcast.Greedy.optimal_acyclic inst in
  Broadcast.Overlay.build ~rate:(t *. headroom) inst

let run ?(nodes = 40) ?(events = 30) ?(p_open = 0.7) ?(headroom = 0.9)
    ?(rebuild_threshold = 0.8) ?(seed = 101L) () =
  if headroom <= 0. || headroom >= 1. then
    invalid_arg "Churn_repair.run: headroom must lie in (0, 1)";
  let rng = Prng.Splitmix.create seed in
  let dist = Prng.Dist.unif100 in
  let inst =
    Platform.Generator.generate { Platform.Generator.total = nodes; p_open; dist } rng
  in
  let overlay = ref (build_with_headroom inst ~headroom) in
  let patch_edges = ref [] and rebuild_edges = ref [] and kept = ref [] in
  let rebuilds = ref 0 in
  for _ = 1 to events do
    let size = Instance.size (Broadcast.Overlay.instance !overlay) in
    let leave = size > 3 && Prng.Splitmix.next_float rng < 0.5 in
    let patched, stats =
      if leave then begin
        let node = 1 + Prng.Splitmix.next_below rng (size - 1) in
        Broadcast.Repair.leave !overlay ~node
      end
      else begin
        let bandwidth = Prng.Dist.sample dist rng in
        let cls =
          if Prng.Splitmix.next_float rng < p_open then Instance.Open
          else Instance.Guarded
        in
        Broadcast.Repair.join !overlay ~bandwidth ~cls
      end
    in
    patch_edges := float_of_int stats.Broadcast.Repair.patch_edges :: !patch_edges;
    rebuild_edges := float_of_int stats.Broadcast.Repair.rebuild_edges :: !rebuild_edges;
    let target = headroom *. stats.Broadcast.Repair.optimal_after in
    let ratio =
      if target > 0. then Float.min 1. (stats.Broadcast.Repair.rate_after /. target)
      else 1.
    in
    kept := ratio :: !kept;
    if ratio < rebuild_threshold then begin
      incr rebuilds;
      overlay := build_with_headroom (Broadcast.Overlay.instance patched) ~headroom
    end
    else overlay := patched
  done;
  let arr l = Array.of_list l in
  {
    events;
    headroom;
    patch_edges_mean = Stats.mean (arr !patch_edges);
    rebuild_edges_mean = Stats.mean (arr !rebuild_edges);
    kept_mean = Stats.mean (arr !kept);
    kept_min = Array.fold_left Float.min 1. (arr !kept);
    rebuilds = !rebuilds;
  }

let print fmt =
  Format.pp_print_string fmt
    (Tab.section "E13 (extension) - churn: local repair vs full rebuild");
  let rows =
    List.map
      (fun headroom ->
        let s = run ~headroom () in
        [
          Tab.fmt "%.2f" s.headroom;
          string_of_int s.events;
          Tab.fmt "%.1f" s.patch_edges_mean;
          Tab.fmt "%.1f" s.rebuild_edges_mean;
          Tab.fmt "%.4f" s.kept_mean;
          Tab.fmt "%.4f" s.kept_min;
          string_of_int s.rebuilds;
        ])
      [ 0.99; 0.9; 0.75 ]
  in
  Format.pp_print_string fmt
    (Tab.render
       ~header:
         [
           "headroom"; "events"; "patch edges"; "rebuild edges"; "kept mean";
           "kept min"; "rebuilds";
         ]
       rows);
  Format.pp_print_string fmt
    "At full utilization (headroom ~ 1) a single departure can starve the\n\
     downstream overlay and force rebuilds — the fragility the paper's\n\
     conclusion anticipates. Modest headroom lets O(degree)-edge local\n\
     patches absorb churn that a rebuild would answer by re-wiring the\n\
     whole swarm.\n"
