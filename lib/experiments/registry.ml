type entry = {
  name : string;
  paper_artifact : string;
  description : string;
  run : ?jobs:int -> Format.formatter -> unit;
}

(* Lift a driver that has no parallel sweep (cheap, or inherently
   sequential) into the jobs-aware signature. *)
let seq print ?jobs:_ fmt = print fmt

let all =
  [
    {
      name = "fig1";
      paper_artifact = "Figures 1-5, Table I";
      description = "running example: bounds, greedy trace, low-degree scheme";
      run = seq Fig1_example.print;
    };
    {
      name = "fig6";
      paper_artifact = "Figure 6";
      description = "unbounded degree in the cyclic guarded case";
      run = seq (fun fmt -> Fig6_unbounded.print fmt);
    };
    {
      name = "fig7";
      paper_artifact = "Figure 7";
      description = "worst-case ratio surface on tight homogeneous instances";
      run = (fun ?jobs fmt -> Fig7_surface.print ?jobs fmt);
    };
    {
      name = "fig8";
      paper_artifact = "Figure 8 / Theorem 3.1";
      description = "3-PARTITION reduction and tight-degree witness schemes";
      run = seq (fun fmt -> Fig8_hardness.print fmt);
    };
    {
      name = "cyclic";
      paper_artifact = "Figures 11-17 / Theorem 5.2";
      description = "cyclic construction walk-through";
      run = seq Cyclic_walkthrough.print;
    };
    {
      name = "fig18";
      paper_artifact = "Figure 18 / Theorem 6.2";
      description = "tight 5/7 worst-case gadget";
      run = (fun ?jobs fmt -> Fig18_worst.print ?jobs fmt);
    };
    {
      name = "thm63";
      paper_artifact = "Theorem 6.3";
      description = "asymptotic (1+sqrt 41)/8 family";
      run = seq (fun fmt -> Thm63_family.print fmt);
    };
    {
      name = "fig19";
      paper_artifact = "Figure 19 / Appendix XII";
      description = "average-case acyclic/cyclic ratios on random platforms";
      run = (fun ?jobs fmt -> Fig19_average.print ?jobs fmt);
    };
    {
      name = "massoulie";
      paper_artifact = "Section II-C (reference [4])";
      description = "randomized transport achieves the computed rate";
      run = seq (fun fmt -> Massoulie_validation.print fmt);
    };
    {
      name = "lastmile";
      paper_artifact = "Section II-C (reference [14], Bedibe)";
      description = "last-mile model estimation from measurement matrices";
      run = seq (fun fmt -> Lastmile_validation.print fmt);
    };
    {
      name = "churn";
      paper_artifact = "Conclusion (future work: churn)";
      description = "local overlay repair vs full rebuild under churn";
      run = seq Churn_repair.print;
    };
    {
      name = "churn-policies";
      paper_artifact = "Conclusion (future work: churn)";
      description = "fault-injection engine: patch vs rebuild vs adaptive healing";
      run = (fun ?jobs fmt -> Churn_policies.print ?jobs fmt);
    };
    {
      name = "depth";
      paper_artifact = "Conclusion (future work: depth/delay)";
      description = "depth vs throughput vs degree ablation";
      run = seq Depth_ablation.print;
    };
    {
      name = "jitter";
      paper_artifact = "Conclusion (resilience claim)";
      description = "transport efficiency under bandwidth fluctuations";
      run = seq (fun fmt -> Jitter_resilience.print fmt);
    };
    {
      name = "stream";
      paper_artifact = "Title / Conclusion (large-scale streaming)";
      description = "streaming delay and queue occupancy on optimal overlays";
      run = (fun ?jobs fmt -> Stream_delay.print ?jobs fmt);
    };
    {
      name = "oneport";
      paper_artifact = "Section II-A (model motivation)";
      description = "bounded multi-port vs one-port baseline";
      run = seq One_port_comparison.print;
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) all

let run_all ?jobs fmt = List.iter (fun e -> e.run ?jobs fmt) all
