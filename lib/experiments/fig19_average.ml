type cell = {
  dist_name : string;
  n : int;
  p : float;
  acyclic : Stats.five_numbers;
  acyclic_mean : float;
  omega_mean : float;
  proof_mean : float;
  verified : bool option;
}

type config = {
  dists : (string * Prng.Dist.t) list;
  ns : int list;
  ps : float list;
  replicates : int;
  seed : int64;
}

let paper_dists =
  [
    ("Unif100", Prng.Dist.unif100);
    ("Power1", Prng.Dist.power1);
    ("Power2", Prng.Dist.power2);
    ("LN1", Prng.Dist.ln1);
    ("LN2", Prng.Dist.ln2);
    ("PLab", Platform.Plab.dist);
  ]

let default_config =
  {
    dists = paper_dists;
    ns = [ 10; 100; 1000 ];
    ps = [ 0.1; 0.5; 0.7; 0.9 ];
    replicates = 100;
    seed = 2010L;
  }

let quick_config =
  {
    dists =
      [
        ("Unif100", Prng.Dist.unif100);
        ("Power1", Prng.Dist.power1);
        ("PLab", Platform.Plab.dist);
      ];
    ns = [ 10; 50 ];
    ps = [ 0.5; 0.9 ];
    replicates = 30;
    seed = 2010L;
  }

(* One cell plus the witness scheme of its first replicate (the Lemma 4.6
   low-degree scheme of the acyclic optimum), verified in a batch by
   [compute]. *)
let compute_cell_witness ~dist ~name ~n ~p ~replicates ~seed =
  let rng = Prng.Splitmix.create seed in
  let spec = { Platform.Generator.total = n; p_open = p; dist } in
  let acyclic = Array.make replicates 0. in
  let omega = Array.make replicates 0. in
  let proof = Array.make replicates 0. in
  let witness = ref None in
  for r = 0 to replicates - 1 do
    let inst = Platform.Generator.generate spec rng in
    let c = Broadcast.Ratio.compare_instance inst in
    let t_star = c.Broadcast.Ratio.cyclic in
    let norm v = if t_star > 0. then v /. t_star else 1. in
    acyclic.(r) <- norm c.Broadcast.Ratio.acyclic;
    omega.(r) <- norm c.Broadcast.Ratio.omega_best;
    proof.(r) <- norm c.Broadcast.Ratio.proof_word;
    if r = 0 && c.Broadcast.Ratio.acyclic > 0. then begin
      let rate = c.Broadcast.Ratio.acyclic *. (1. -. 4e-9) in
      witness :=
        try Some (inst, Broadcast.Low_degree.build inst ~rate c.Broadcast.Ratio.word, rate)
        with Invalid_argument _ -> None
    end
  done;
  ( {
      dist_name = name;
      n;
      p;
      acyclic = Stats.five_numbers acyclic;
      acyclic_mean = Stats.mean acyclic;
      omega_mean = Stats.mean omega;
      proof_mean = Stats.mean proof;
      verified = None;
    },
    !witness )

let compute_cell ~dist ~name ~n ~p ~replicates ~seed =
  fst (compute_cell_witness ~dist ~name ~n ~p ~replicates ~seed)

let compute ?jobs config =
  (* Deterministic seeding discipline: derive one independent seed per
     cell by walking the master stream in grid order *before* any work is
     scheduled. Each cell then owns a private generator, so results are
     reproducible in isolation, insensitive to grid composition, and
     bit-identical for every [jobs] value (the seed a cell receives never
     depends on execution order). *)
  let master = Prng.Splitmix.create config.seed in
  let specs =
    Array.of_list
      (List.concat_map
         (fun (name, dist) ->
           List.concat_map
             (fun n -> List.map (fun p -> (name, dist, n, p)) config.ps)
             config.ns)
         config.dists)
  in
  let seeds = Array.make (Array.length specs) 0L in
  for i = 0 to Array.length specs - 1 do
    seeds.(i) <- Prng.Splitmix.next master
  done;
  let cells_w =
    Parallel.Pool.map_range ?jobs (Array.length specs) (fun i ->
        let name, dist, n, p = specs.(i) in
        compute_cell_witness ~dist ~name ~n ~p ~replicates:config.replicates
          ~seed:seeds.(i))
    |> Array.to_list
  in
  (* One verification batch covering the witness scheme of every cell. *)
  let reports =
    Broadcast.Verify.check_batch
      (List.filter_map
         (fun (_, w) ->
           Option.map (fun (inst, s, _) -> (inst, Broadcast.Scheme.graph s)) w)
         cells_w)
  in
  let ok rate r =
    r.Broadcast.Verify.bandwidth_ok && r.Broadcast.Verify.firewall_ok
    && r.Broadcast.Verify.bin_ok
    && Broadcast.Util.fge ~eps:1e-6 r.Broadcast.Verify.throughput rate
  in
  let rec fill cells reports =
    match (cells, reports) with
    | [], _ -> []
    | (cell, None) :: rest, _ -> cell :: fill rest reports
    | (cell, Some (_, _, rate)) :: rest, r :: rs ->
      { cell with verified = Some (ok rate r) } :: fill rest rs
    | (_, Some _) :: _, [] -> assert false
  in
  fill cells_w reports

let print ?jobs ?(config = default_config) fmt =
  Format.pp_print_string fmt
    (Tab.section "E10 - Figure 19: average acyclic/cyclic ratio");
  Format.fprintf fmt
    "replicates per cell: %d (paper: 1000); ratios are normalized by the \
     optimal cyclic throughput@.@."
    config.replicates;
  let cells = compute ?jobs config in
  let rows =
    List.map
      (fun c ->
        [
          c.dist_name;
          string_of_int c.n;
          Tab.fmt "%.1f" c.p;
          Tab.fmt "%.4f" c.acyclic_mean;
          Tab.fmt "%.4f" c.acyclic.Stats.median;
          Tab.fmt "%.4f" c.acyclic.Stats.q25;
          Tab.fmt "%.4f" c.acyclic.Stats.min;
          Tab.fmt "%.4f" c.omega_mean;
          Tab.fmt "%.4f" c.proof_mean;
        ])
      cells
  in
  Format.pp_print_string fmt
    (Tab.render
       ~header:
         [
           "dist"; "n"; "p"; "mean"; "median"; "q25"; "min"; "omega-best";
           "proof-word";
         ]
       rows);
  let all_means = Array.of_list (List.map (fun c -> c.acyclic_mean) cells) in
  Format.fprintf fmt
    "@.worst mean ratio over all cells: %.4f (paper: at most ~5%% below 1); \
     cells with mean < 0.95: %.0f%%@."
    (Array.fold_left Float.min 1. all_means)
    (100. *. Stats.fraction_below all_means 0.95);
  let witnessed = List.filter (fun c -> c.verified <> None) cells in
  let passed = List.filter (fun c -> c.verified = Some true) witnessed in
  Format.fprintf fmt
    "witness schemes verified: %d / %d cells (batch oracle, first replicate \
     of each cell)@."
    (List.length passed) (List.length witnessed)
