type config = {
  seeds : int;
  nodes : int;
  p_open : float;
  events : int;
  headroom : float;
  rebuild_headroom : float;
  adaptive : Churn.Policy.t;
  seed : int64;
}

let default_config =
  {
    seeds = 5;
    nodes = 40;
    p_open = 0.7;
    events = 150;
    headroom = 0.9;
    rebuild_headroom = 0.8;
    adaptive = Churn.Policy.Adaptive { min_ratio = 0.5; degree_slack = 4 };
    seed = 1407L;
  }

type row = {
  policy : Churn.Policy.t;
  min_ratio : float;
  mean_ratio : float;
  rebuilds : int;
  total_churn : int;
}

let policies c = [ Churn.Policy.Always_patch; Churn.Policy.Always_rebuild; c.adaptive ]

let one_run c ~policy rng =
  let inst =
    Platform.Generator.generate
      { Platform.Generator.total = c.nodes; p_open = c.p_open; dist = Prng.Dist.unif100 }
      rng
  in
  let t, _ = Broadcast.Greedy.optimal_acyclic inst in
  let overlay = Broadcast.Overlay.build ~rate:(t *. c.headroom) inst in
  let trace = Churn.Trace.gen ~events:c.events rng in
  (Churn.Engine.run ~policy ~audit:Churn.Audit.Check
     ~rebuild_headroom:c.rebuild_headroom overlay trace)
    .Churn.Engine.summary

let compare_policies ?jobs ?(config = default_config) () =
  let c = config in
  let policies = policies c in
  let np = List.length policies in
  (* Pre-split one stream per seed; every policy replays a private copy of
     its seed's stream, so all policies see the identical platform and
     trace and the output is independent of the worker count. *)
  let streams = Prng.Splitmix.split_n (Prng.Splitmix.create c.seed) c.seeds in
  let summaries =
    Parallel.Pool.map_range ?jobs (c.seeds * np) (fun i ->
        let policy = List.nth policies (i mod np) in
        one_run c ~policy (Prng.Splitmix.copy streams.(i / np)))
  in
  List.mapi
    (fun pi policy ->
      let of_policy =
        List.init c.seeds (fun si -> summaries.((si * np) + pi))
      in
      {
        policy;
        min_ratio =
          List.fold_left
            (fun acc (s : Churn.Engine.summary) -> Float.min acc s.min_ratio)
            1. of_policy;
        mean_ratio =
          Stats.mean
            (Array.of_list
               (List.map (fun (s : Churn.Engine.summary) -> s.mean_ratio) of_policy));
        rebuilds =
          List.fold_left (fun acc (s : Churn.Engine.summary) -> acc + s.rebuilds) 0 of_policy;
        total_churn =
          List.fold_left
            (fun acc (s : Churn.Engine.summary) -> acc + s.total_churn)
            0 of_policy;
      })
    policies

let print ?jobs fmt =
  Format.pp_print_string fmt
    (Tab.section "E17 (extension) - churn: self-healing policy comparison");
  let c = default_config in
  let rows = compare_policies ?jobs () in
  let rebuild_churn =
    List.fold_left
      (fun acc r ->
        match r.policy with Churn.Policy.Always_rebuild -> r.total_churn | _ -> acc)
      0 rows
  in
  Format.pp_print_string fmt
    (Tab.render
       ~header:
         [ "policy"; "min ratio"; "mean ratio"; "rebuilds"; "edge churn"; "vs rebuild" ]
       (List.map
          (fun r ->
            [
              Churn.Policy.name r.policy;
              Tab.fmt "%.4f" r.min_ratio;
              Tab.fmt "%.4f" r.mean_ratio;
              string_of_int r.rebuilds;
              string_of_int r.total_churn;
              Tab.fmt "%.1f%%"
                (100. *. float_of_int r.total_churn /. float_of_int rebuild_churn);
            ])
          rows));
  Format.fprintf fmt
    "%d seeds x %d adversarial events (n = %d, p_open = %.1f), every event\n\
     audited. Always-patch decays to a starved overlay, always-rebuild pays\n\
     full re-wiring per event; the adaptive policy holds most of the\n\
     throughput for a fraction of the churn.\n"
    c.seeds c.events c.nodes c.p_open
