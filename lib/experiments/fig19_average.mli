(** Experiment E10 — Figure 19 / Appendix XII: average-case ratio between
    acyclic and cyclic throughput on random instances.

    Protocol (paper's): for each bandwidth distribution (Unif100, Power1,
    Power2, LN1, LN2, PLab), each instance size [n] and each open-node
    probability [p], draw [replicates] instances whose source bandwidth is
    pinned to the cyclic optimum ({!Platform.Generator}), and record three
    normalized throughputs:
    - the optimal acyclic throughput (black boxplots in the paper);
    - the best of the two canonical words [omega1]/[omega2] (blue lines);
    - the single proof word of Theorem 6.2's case analysis (red lines).

    The paper's findings to check against: mean ratios within 5% of 1
    across all scenarios, more spread for small [n] and heavy tails, and
    [omega]-words nearly matching the optimum at large [n]. *)

type cell = {
  dist_name : string;
  n : int;
  p : float;
  acyclic : Stats.five_numbers;
  acyclic_mean : float;
  omega_mean : float;
  proof_mean : float;
  verified : bool option;
      (** verdict of {!Broadcast.Verify.check_batch} on the witness scheme
          of the cell's first replicate; [None] when no witness was built
          (zero acyclic throughput) or when the cell was computed outside
          {!compute} *)
}

type config = {
  dists : (string * Prng.Dist.t) list;
  ns : int list;
  ps : float list;
  replicates : int;
  seed : int64;
}

val default_config : config
(** Paper's six distributions, [ns = [10; 100; 1000]],
    [ps = [0.1; 0.5; 0.7; 0.9]], 100 replicates, seed 2010. The paper uses
    1000 replicates; pass a custom config to match exactly. *)

val quick_config : config
(** Trimmed grid for smoke runs: [ns = [10; 50]], [ps = [0.5; 0.9]],
    30 replicates, three distributions. *)

val compute_cell :
  dist:Prng.Dist.t -> name:string -> n:int -> p:float -> replicates:int ->
  seed:int64 -> cell

val compute : ?jobs:int -> config -> cell list
(** Computes every cell on [jobs] domains ({!Parallel.Pool}; default =
    core count), then cross-checks one witness scheme per cell (built by
    Lemma 4.6 from the first replicate's optimal word) against the
    verification oracle in a single batch, filling [verified]. Every
    cell's seed is split from the master stream in grid order before any
    work runs, so the output is bit-identical for every [jobs] value. *)

val print : ?jobs:int -> ?config:config -> Format.formatter -> unit
