type row = {
  m : int;
  cyclic : float;
  scheme_throughput : float;
  source_degree : int;
  degree_bound : int;
  acyclic : float;
  acyclic_source_degree : int;
}

let compute ~m =
  let inst = Broadcast.Hardness.unbounded_degree_instance ~m in
  let cyclic = Broadcast.Bounds.cyclic_upper inst in
  let scheme = Broadcast.Hardness.unbounded_degree_scheme ~m in
  let report = Broadcast.Verify.check inst scheme in
  let acyclic, low = Broadcast.Low_degree.build_optimal inst in
  {
    m;
    cyclic;
    scheme_throughput = report.Broadcast.Verify.throughput;
    source_degree = Flowgraph.Graph.out_degree scheme 0;
    degree_bound = Broadcast.Bounds.degree_lower_bound inst ~t:cyclic 0;
    acyclic;
    acyclic_source_degree = Flowgraph.Graph.out_degree (Broadcast.Scheme.graph low) 0;
  }

let print ?(ms = [ 2; 4; 8; 16; 32; 64 ]) fmt =
  Format.pp_print_string fmt
    (Tab.section "E4 - Figure 6: unbounded degree in the cyclic guarded case");
  let rows =
    List.map
      (fun m ->
        let r = compute ~m in
        [
          string_of_int r.m;
          Tab.fmt "%.4f" r.cyclic;
          Tab.fmt "%.4f" r.scheme_throughput;
          string_of_int r.source_degree;
          string_of_int r.degree_bound;
          Tab.fmt "%.4f" r.acyclic;
          string_of_int r.acyclic_source_degree;
        ])
      ms
  in
  Format.pp_print_string fmt
    (Tab.render
       ~header:
         [
           "m";
           "T* (cyclic)";
           "T(scheme)";
           "deg(src)";
           "ceil(b0/T)";
           "T*ac";
           "deg(src) acyclic";
         ]
       rows);
  Format.pp_print_string fmt
    "Optimal cyclic schemes need source degree m (vs lower bound 1); the\n\
     low-degree acyclic alternative keeps small degrees at a throughput cost.\n"
