(** A live tracker session: one engine, one request stream.

    A session owns a stepwise {!Churn.Engine.state} (warm incremental
    flow included, when configured) and turns request {e lines} into
    response {e lines} — {!submit} takes one raw NDJSON line and returns
    zero or more complete responses, so any transport (stdin, a Unix
    socket, a bench loop) just moves lines. Nothing here performs IO
    except the configured [clock].

    {b Batching.} Mutation requests queue; the queue flushes into the
    engine when it reaches [batch] requests, when a query/shutdown
    arrives (both answer post-flush state), or when the transport decides
    the admission window closed ({!flush}, called by
    {!Daemon.serve} on a timeout). A flush coalesces runs of consecutive
    leaves into one [Fail_batch] and runs of consecutive joins into one
    [Flash_crowd] — one repair, one audit per run — and commits the
    {e coalesced} events; {!executed} is that committed trace, and
    replaying it offline with {!Churn.Engine.run} from the starting
    overlay under the same configuration reproduces the served scheme
    byte for byte (for sessions without rollbacks).

    {b Rollback.} If a flush raises {!Churn.Audit.Violation} (or a repair
    refuses with [Invalid_argument]), nothing from that batch commits:
    the whole engine — overlay, warm flow, policy drift state — is
    discarded and restarted from the overlay after the last good batch,
    and every request in the batch gets an ["audit"] error response.
    Restarting resets the policy's drift memory and warms the flow from
    scratch; {!summary} therefore covers the steps since the last
    rollback, while {!counters} spans the whole session. *)

type config = {
  policy : Churn.Policy.t;
  audit : Churn.Audit.level;
  engine : Churn.Audit.engine;
  rebuild_headroom : float option;
  batch : int;  (** flush the queue at this many mutations, [>= 1] *)
  max_line : int;  (** longest accepted request line, bytes, [>= 16] *)
  clock : unit -> float;
      (** seconds; latencies are differences of this. Use [fun () -> 0.]
          for byte-deterministic responses (the CLI's [--deterministic]). *)
}

val default_config : config
(** [Always_patch] policy, [Check] audit, [Incremental] engine, no
    rebuild headroom, [batch = 1] (every mutation flushes immediately),
    [max_line = 65536], wall clock. *)

type counters = {
  requests : int;  (** non-empty request lines seen *)
  events : int;  (** coalesced events committed to the engine *)
  batches : int;  (** flushes that reached the engine *)
  errors : int;  (** error responses sent (parse + audit + shutdown) *)
  rollbacks : int;  (** batches rolled back *)
  queries : int;
}

type t

val create :
  ?probe:
    (index:int ->
    Broadcast.Overlay.t ->
    Flowgraph.Maxflow.Incremental.t option ->
    unit) ->
  config ->
  Broadcast.Overlay.t ->
  t
(** [create config o] opens a session serving overlay [o]. [probe] is
    forwarded to {!Churn.Engine.start} (tests use a raising probe to
    force rollbacks). Raises [Invalid_argument] on a [batch < 1] or
    [max_line < 16]. *)

val submit : t -> string -> string list
(** [submit t line] processes one request line and returns the complete
    response lines it produced, in order (none while a mutation merely
    queues; several when a flush answers a whole batch). A lone ["\r"]
    suffix is stripped; an empty line is skipped entirely — no sequence
    number, no response. Never raises on malformed input: bad lines get
    error responses. *)

val flush : t -> string list
(** Force the queued mutations into the engine now (the transport's
    admission-window timeout). Responses for all flushed requests, in
    sequence order; [[]] if nothing is queued. *)

val pending : t -> int
(** Mutations queued and not yet flushed. *)

val live : t -> Broadcast.Overlay.t
(** The overlay after the last flush. *)

val executed : t -> Churn.Trace.t
(** The committed (coalesced) events, oldest first — a valid [bmp-trace]
    for offline replay. Rolled-back batches leave no events here. *)

val counters : t -> counters

val summary : t -> Churn.Engine.summary
(** Engine summary since the last rollback (whole session when none). *)

val shutting_down : t -> bool
(** True once a shutdown request has been answered; later requests get
    ["shutdown"] error responses. *)

val config : t -> config
