(** Tracker wire protocol: NDJSON requests and responses.

    Requests are single-line JSON objects, one per line. Mutation
    requests are {e exactly} the event objects of the [bmp-trace] format
    ({!Churn.Trace.event_of_json_value} — same fields, same strict
    validation), so a request log concatenates into a trace file and vice
    versa. Two control requests are added on top:

    {v
{"type": "query"}
{"type": "shutdown"}
    v}

    Responses are single-line JSON objects tagged
    [{"format": "bmp-tracker", "version": 1, "seq": N, "status": ...}]
    where [seq] is the 1-based index of the request line being answered
    (empty lines are skipped and numbered with no response). Floats use
    the repository-wide canonical [%.17g] form, so a response stream is
    byte-deterministic for a deterministic session. Every response
    carries [latency_us], the request's queue-to-answer latency in
    integer microseconds (0 under the deterministic clock). *)

type request =
  | Event of Churn.Trace.event  (** a mutation, queued for the next batch *)
  | Query  (** report live state + session counters, flushing first *)
  | Shutdown  (** flush, answer, refuse everything after *)

val format_name : string
(** ["bmp-tracker"]. *)

val format_version : int
(** [1]. *)

val parse_request :
  max_line:int -> string -> (request, string * string) result
(** [parse_request ~max_line line] validates one request line. Errors are
    [(code, message)] pairs ready for {!error_response}: ["oversized"]
    (line longer than [max_line] bytes), ["parse"] (not JSON; positioned
    message), or ["invalid"] (JSON but not a request — unknown type,
    missing/unknown fields, out-of-domain values). *)

val event_response :
  seq:int ->
  batch:int ->
  latency_us:int ->
  audit:string ->
  Churn.Engine.record ->
  string
(** Acknowledges one mutation request with the outcome of the batch that
    served it: the engine action ("patched" / "rebuilt" / "skipped"),
    post-batch population and rate, the 1-based [batch] id, and the audit
    verdict ("pass" when the session audits, "off" otherwise). Requests
    coalesced into the same executed event share one record. *)

val query_response :
  seq:int ->
  latency_us:int ->
  size:int ->
  rate:float ->
  requests:int ->
  events:int ->
  batches:int ->
  errors:int ->
  rollbacks:int ->
  queries:int ->
  string
(** Live population and verified rate plus session counters (counts
    include the query request itself). *)

val shutdown_response :
  seq:int -> latency_us:int -> size:int -> rate:float -> string

val error_response :
  seq:int -> latency_us:int -> code:string -> message:string -> string
(** [status "error"] response; [code] is one of "oversized", "parse",
    "invalid", "audit" (batch rolled back), "shutdown" (request after
    shutdown). The message is JSON-escaped verbatim. *)
