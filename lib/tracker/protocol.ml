module Json = Flowgraph.Json

type request = Event of Churn.Trace.event | Query | Shutdown

let format_name = "bmp-tracker"
let format_version = 1

(* Error codes, fixed vocabulary (also documented in the README):
   - "oversized": request line longer than the configured cap
   - "parse":     not JSON (positioned lexer/parser message)
   - "invalid":   JSON, but not a well-formed request object
   - "audit":     the batch failed its audit and was rolled back
   - "shutdown":  request arrived after a shutdown was served *)

let only_type_field v =
  match v with
  | Json.Obj fields -> List.for_all (fun (k, _) -> k = "type") fields
  | _ -> false

let parse_request ~max_line line =
  if String.length line > max_line then
    Error
      ( "oversized",
        Printf.sprintf "request line exceeds %d bytes" max_line )
  else
    match Json.parse line with
    | Error msg -> Error ("parse", msg)
    | Ok v -> (
      match Json.member "type" v with
      | None -> (
        match v with
        | Json.Obj _ -> Error ("invalid", "request: missing field \"type\"")
        | _ -> Error ("invalid", "request: expected an object"))
      | Some kind -> (
        match Json.to_string_exn kind with
        | Error e -> Error ("invalid", "request: type: " ^ e)
        | Ok "query" ->
          if only_type_field v then Ok Query
          else Error ("invalid", "request: query takes no other fields")
        | Ok "shutdown" ->
          if only_type_field v then Ok Shutdown
          else Error ("invalid", "request: shutdown takes no other fields")
        | Ok _ -> (
          match Churn.Trace.event_of_json_value v with
          | Ok e -> Ok (Event e)
          | Error msg -> Error ("invalid", msg))))

(* Responses — one canonical line each, same float discipline as the
   bmp-scheme / bmp-trace artifacts (%.17g, byte-deterministic). *)

let fstr v = Printf.sprintf "%.17g" v
let qstr s = "\"" ^ Json.escape s ^ "\""

let head ~seq ~status =
  Printf.sprintf "{\"format\": \"%s\", \"version\": %d, \"seq\": %d, \"status\": \"%s\""
    format_name format_version seq status

let action_name (a : Churn.Engine.action) =
  match a with
  | Churn.Engine.Patched -> "patched"
  | Churn.Engine.Rebuilt -> "rebuilt"
  | Churn.Engine.Skipped -> "skipped"

let event_response ~seq ~batch ~latency_us ~audit (r : Churn.Engine.record) =
  Printf.sprintf
    "%s, \"event\": %s, \"action\": \"%s\", \"size\": %d, \"rate\": %s, \
     \"optimal\": %s, \"batch\": %d, \"audit\": %s, \"latency_us\": %d}"
    (head ~seq ~status:"ok")
    (qstr (Churn.Trace.label r.event))
    (action_name r.action) r.size (fstr r.rate) (fstr r.optimal) batch
    (qstr audit) latency_us

let query_response ~seq ~latency_us ~size ~rate ~requests ~events ~batches
    ~errors ~rollbacks ~queries =
  Printf.sprintf
    "%s, \"query\": {\"size\": %d, \"rate\": %s, \"requests\": %d, \
     \"events\": %d, \"batches\": %d, \"errors\": %d, \"rollbacks\": %d, \
     \"queries\": %d}, \"latency_us\": %d}"
    (head ~seq ~status:"ok")
    size (fstr rate) requests events batches errors rollbacks queries
    latency_us

let shutdown_response ~seq ~latency_us ~size ~rate =
  Printf.sprintf
    "%s, \"event\": \"shutdown\", \"size\": %d, \"rate\": %s, \"latency_us\": %d}"
    (head ~seq ~status:"ok")
    size (fstr rate) latency_us

let error_response ~seq ~latency_us ~code ~message =
  Printf.sprintf "%s, \"code\": %s, \"message\": %s, \"latency_us\": %d}"
    (head ~seq ~status:"error")
    (qstr code) (qstr message) latency_us
