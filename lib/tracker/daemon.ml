(* Transport: a select loop moving NDJSON lines between a file
   descriptor and a Session. All protocol logic lives in Session; this
   file only buffers, splits lines, enforces the admission window, and
   keeps oversized garbage from growing the buffer without bound. *)

let select_read fd timeout =
  match Unix.select [ fd ] [] [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
    (* Interrupted by a signal (SIGINT sets the stop flag); report a
       timeout so the caller re-checks [stop] before blocking again. *)
    `Timeout
  | [], _, _ -> `Timeout
  | _ :: _, _, _ -> `Ready

let serve ?(window_s = 0.05) ?(stop = fun () -> false) session ~input ~output
    =
  let max_line = (Session.config session).Session.max_line in
  let chunk = Bytes.create 65536 in
  let buffered = Buffer.create 4096 in
  (* When a line outgrows [max_line] we answer the oversized error from
     its first [max_line + 1] bytes immediately, then discard the rest of
     the line as it streams in — bounded memory, one response. *)
  let discarding = ref false in
  let eof = ref false in
  let respond lines =
    List.iter
      (fun line ->
        output_string output line;
        output_char output '\n')
      lines;
    if lines <> [] then flush output
  in
  let take_line () =
    let s = Buffer.contents buffered in
    match String.index_opt s '\n' with
    | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear buffered;
      Buffer.add_substring buffered s (i + 1) (String.length s - i - 1);
      Some line
    | None ->
      if !discarding then Buffer.clear buffered
      else if String.length s > max_line then begin
        respond (Session.submit session (String.sub s 0 (max_line + 1)));
        Buffer.clear buffered;
        discarding := true
      end;
      None
  in
  let drain_lines () =
    let continue = ref true in
    while !continue do
      match take_line () with
      | None -> continue := false
      | Some line ->
        if !discarding then discarding := false
        else respond (Session.submit session line)
    done
  in
  let read_chunk () =
    match Unix.read input chunk 0 (Bytes.length chunk) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | 0 -> eof := true
    | n ->
      Buffer.add_subbytes buffered chunk 0 n;
      drain_lines ()
  in
  let running () =
    (not (stop ())) && (not !eof) && not (Session.shutting_down session)
  in
  while running () do
    let timeout = if Session.pending session > 0 then window_s else 0.25 in
    match select_read input timeout with
    | `Timeout -> if Session.pending session > 0 then respond (Session.flush session)
    | `Ready -> read_chunk ()
  done;
  (* Drain: a trailing unterminated line still counts as a request, then
     whatever is queued flushes so every admitted request is answered. *)
  let tail = Buffer.contents buffered in
  if tail <> "" && not !discarding then respond (Session.submit session tail);
  respond (Session.flush session)

(* Sequential multi-client loop: one live session outlives its clients.
   A disconnect (EOF) only ends that client's [serve]; the loop then
   accepts the next one against the same session, so scheme state and
   the request sequence numbering persist across connections. Only a
   shutdown request, [stop] or an exhausted [accept] ends the loop. *)
let serve_loop ?window_s ?(stop = fun () -> false) session ~accept =
  let continue = ref true in
  while
    !continue && (not (stop ())) && not (Session.shutting_down session)
  do
    match accept () with
    | None -> continue := false
    | Some (input, output, close) ->
      Fun.protect
        ~finally:close
        (fun () -> serve ?window_s ~stop session ~input ~output)
  done
