(** Transport loop: serve a {!Session} over a file descriptor.

    [serve] reads NDJSON request lines from [input], feeds them to the
    session, and writes every response line (newline-terminated, flushed
    per batch) to [output]. It returns when the input reaches EOF, the
    session answers a shutdown request, or [stop] turns true (the CLI's
    SIGINT/SIGTERM flag) — in every case it first {e drains}: a trailing
    unterminated line is still submitted, then the queued batch flushes,
    so every admitted request is answered before the final state is
    snapshotted by the caller.

    Batch admission: while mutations are queued, the loop waits at most
    [window_s] (default 0.05 s) for more input before flushing the
    partial batch — the admission window of the spec. A queue that
    reaches the session's [batch] size flushes immediately, without
    waiting for the window.

    Oversized lines (longer than the session's [max_line]) are answered
    with one ["oversized"] error from their first bytes and the remainder
    is discarded as it streams in, so a hostile writer cannot grow the
    buffer without bound. The loop never raises on input content;
    [EINTR] from signals is absorbed and re-checks [stop]. *)

val serve :
  ?window_s:float ->
  ?stop:(unit -> bool) ->
  Session.t ->
  input:Unix.file_descr ->
  output:out_channel ->
  unit

val serve_loop :
  ?window_s:float ->
  ?stop:(unit -> bool) ->
  Session.t ->
  accept:(unit -> (Unix.file_descr * out_channel * (unit -> unit)) option) ->
  unit
(** [serve_loop session ~accept] serves clients {e sequentially} against
    one live session: [accept ()] blocks for the next client and returns
    its input descriptor, output channel and a close finalizer (always
    called, even if the transport raises), or [None] to end the loop —
    the CLI maps an [EINTR]-interrupted [Unix.accept] to [None] so
    SIGINT exits cleanly. Each client is handled by {!serve}; a client's
    EOF returns to [accept] rather than ending the daemon, so scheme
    state, counters and sequence numbering persist across connections.
    The loop ends when [accept] returns [None], [stop] turns true, or a
    client's shutdown request is answered. *)
