module Trace = Churn.Trace
module Engine = Churn.Engine
open Broadcast

type config = {
  policy : Churn.Policy.t;
  audit : Churn.Audit.level;
  engine : Churn.Audit.engine;
  rebuild_headroom : float option;
  batch : int;
  max_line : int;
  clock : unit -> float;
}

let default_config =
  {
    policy = Churn.Policy.Always_patch;
    audit = Churn.Audit.Check;
    engine = Churn.Audit.Incremental;
    rebuild_headroom = None;
    batch = 1;
    max_line = 1 lsl 16;
    clock = Unix.gettimeofday;
  }

type counters = {
  requests : int;
  events : int;
  batches : int;
  errors : int;
  rollbacks : int;
  queries : int;
}

type pending = { seq : int; event : Trace.event; arrival : float }

type probe =
  index:int -> Overlay.t -> Flowgraph.Maxflow.Incremental.t option -> unit

type t = {
  config : config;
  probe : probe option;
  mutable state : Engine.state;
  mutable last_good : Overlay.t;
  mutable committed : Trace.event list; (* newest first *)
  mutable queue : pending list; (* newest first *)
  mutable queued : int;
  mutable seq : int;
  mutable requests : int;
  mutable events : int;
  mutable batches : int;
  mutable errors : int;
  mutable rollbacks : int;
  mutable queries : int;
  mutable stopped : bool;
}

let fresh_engine ?probe config overlay =
  Engine.start ~policy:config.policy ~audit:config.audit
    ~engine:config.engine ?rebuild_headroom:config.rebuild_headroom ?probe
    overlay

let engine_of t = fresh_engine ?probe:t.probe t.config t.last_good

let create ?probe config overlay =
  if config.batch < 1 then
    invalid_arg "Tracker.Session.create: batch must be >= 1";
  if config.max_line < 16 then
    invalid_arg "Tracker.Session.create: max_line must be >= 16";
  let t =
    {
      config;
      probe;
      state = fresh_engine ?probe config overlay;
      last_good = overlay;
      committed = [];
      queue = [];
      queued = 0;
      seq = 0;
      requests = 0;
      events = 0;
      batches = 0;
      errors = 0;
      rollbacks = 0;
      queries = 0;
      stopped = false;
    }
  in
  t

let config t = t.config
let live t = Engine.live t.state
let pending t = t.queued
let shutting_down t = t.stopped
let summary t = Engine.progress t.state

let counters t =
  {
    requests = t.requests;
    events = t.events;
    batches = t.batches;
    errors = t.errors;
    rollbacks = t.rollbacks;
    queries = t.queries;
  }

let executed t = { Trace.events = Array.of_list (List.rev t.committed) }

let latency_us t arrival =
  let d = (t.config.clock () -. arrival) *. 1e6 in
  if d <= 0. then 0 else int_of_float d

(* Coalescing: inside one flush window, a run of >= 2 consecutive leaves
   becomes one correlated [Fail_batch] and a run of >= 2 consecutive
   joins one [Flash_crowd], so the window pays the per-event O(V + E)
   repair/metrics/audit cost once per run instead of once per request.
   The engine's batch semantics (pick dedup, population floor) are the
   meaning of the coalesced event; the trace the session commits is the
   coalesced one, which is what offline replays reproduce. Singleton runs
   and all other event kinds pass through unchanged. *)
let coalesce pendings =
  let kind (e : Trace.event) =
    match e with Trace.Leave _ -> `L | Trace.Join _ -> `J | _ -> `O
  in
  let close groups run =
    match run with
    | [] -> groups
    | [ p ] -> ([ p ], p.event) :: groups
    | _ ->
      let ps = List.rev run in
      let event =
        match (List.hd ps).event with
        | Trace.Leave _ ->
          Trace.Fail_batch
            {
              picks =
                List.map
                  (fun p ->
                    match p.event with
                    | Trace.Leave { pick } -> pick
                    | _ -> assert false)
                  ps;
            }
        | Trace.Join _ ->
          Trace.Flash_crowd
            {
              arrivals =
                List.map
                  (fun p ->
                    match p.event with
                    | Trace.Join { bandwidth; guarded } -> (bandwidth, guarded)
                    | _ -> assert false)
                  ps;
            }
        | _ -> assert false
      in
      (ps, event) :: groups
  in
  let groups, run =
    List.fold_left
      (fun (groups, run) p ->
        match run with
        | [] -> (groups, [ p ])
        | q :: _ ->
          let k = kind p.event and k' = kind q.event in
          if k = k' && k <> `O then (groups, p :: run)
          else (close groups run, [ p ]))
      ([], []) pendings
  in
  List.rev (close groups run)

let flush t =
  match t.queue with
  | [] -> []
  | q ->
    let pendings = List.rev q in
    t.queue <- [];
    t.queued <- 0;
    t.batches <- t.batches + 1;
    let batch = t.batches in
    let groups = coalesce pendings in
    (try
       let applied =
         List.map
           (fun (members, event) ->
             (members, event, Engine.step ~defer_audit:true t.state event))
           groups
       in
       Engine.flush_audit t.state;
       t.events <- t.events + List.length applied;
       List.iter (fun (_, event, _) -> t.committed <- event :: t.committed)
         applied;
       t.last_good <- Engine.live t.state;
       let audit =
         match t.config.audit with Churn.Audit.Off -> "off" | _ -> "pass"
       in
       List.concat_map
         (fun (members, _, record) ->
           List.map
             (fun (p : pending) ->
               Protocol.event_response ~seq:p.seq ~batch
                 ~latency_us:(latency_us t p.arrival) ~audit record)
             members)
         applied
     with
    | Churn.Audit.Violation { what; _ } | Invalid_argument what ->
      (* The batch poisoned the engine (audit violation, or a repair
         refused an out-of-domain state). Roll back: discard the whole
         engine — overlay, warm flow, policy drift state — and restart
         from the last good overlay. Nothing from this batch commits. *)
      t.rollbacks <- t.rollbacks + 1;
      t.errors <- t.errors + List.length pendings;
      t.state <- engine_of t;
      List.map
        (fun (p : pending) ->
          Protocol.error_response ~seq:p.seq
            ~latency_us:(latency_us t p.arrival) ~code:"audit"
            ~message:("batch rolled back: " ^ what))
        pendings)

let state_fields t =
  let o = live t in
  (Scheme.size (Overlay.scheme o), Overlay.verified_rate o)

let submit t line =
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  if line = "" then []
  else begin
    t.seq <- t.seq + 1;
    t.requests <- t.requests + 1;
    let seq = t.seq in
    let arrival = t.config.clock () in
    if t.stopped then begin
      t.errors <- t.errors + 1;
      [
        Protocol.error_response ~seq ~latency_us:(latency_us t arrival)
          ~code:"shutdown" ~message:"tracker is shutting down";
      ]
    end
    else
      match Protocol.parse_request ~max_line:t.config.max_line line with
      | Error (code, message) ->
        t.errors <- t.errors + 1;
        [
          Protocol.error_response ~seq ~latency_us:(latency_us t arrival)
            ~code ~message;
        ]
      | Ok (Protocol.Event event) ->
        t.queue <- { seq; event; arrival } :: t.queue;
        t.queued <- t.queued + 1;
        if t.queued >= t.config.batch then flush t else []
      | Ok Protocol.Query ->
        t.queries <- t.queries + 1;
        let flushed = flush t in
        let size, rate = state_fields t in
        flushed
        @ [
            Protocol.query_response ~seq ~latency_us:(latency_us t arrival)
              ~size ~rate ~requests:t.requests ~events:t.events
              ~batches:t.batches ~errors:t.errors ~rollbacks:t.rollbacks
              ~queries:t.queries;
          ]
      | Ok Protocol.Shutdown ->
        let flushed = flush t in
        t.stopped <- true;
        let size, rate = state_fields t in
        flushed
        @ [
            Protocol.shutdown_response ~seq
              ~latency_us:(latency_us t arrival) ~size ~rate;
          ]
  end
