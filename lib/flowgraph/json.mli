(** Minimal strict JSON: the parsing substrate of the scheme-artifact
    serialization layer.

    The library's emitters ({!Export.to_json}, [Broadcast.Scheme.to_json])
    are dependency-free string builders; this module is their inverse — a
    dependency-free recursive-descent reader implementing the JSON grammar
    (RFC 8259) strictly:

    - numbers follow the JSON grammar only (no [nan], [inf], hex or
      underscores) and must be finite once parsed — a literal too large
      for a float (e.g. [1e999]) is rejected, so no document can smuggle a
      non-finite value into a rate or bandwidth field;
    - strings validate every escape, including [\uXXXX] (surrogate pairs
      are combined, lone surrogates rejected);
    - trailing content after the top-level value is an error;
    - nesting is capped (depth 512) so adversarial inputs cannot blow the
      stack. *)

type t =
  | Null
  | Bool of bool
  | Num of float  (** always finite *)
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** members in document order *)

val parse : string -> (t, string) result
(** [parse s] reads exactly one JSON value spanning the whole input
    (surrounding whitespace allowed). Errors carry a byte offset and a
    reason. *)

val member : string -> t -> t option
(** [member k (Obj _)] is the value bound to the first occurrence of [k];
    [None] when absent or when the value is not an object. *)

val escape : string -> string
(** [escape s] is [s] with the JSON string escapes applied (["\""], ["\\"]
    and control characters) — what emitters must interpolate between
    quotes. *)

val to_int : t -> (int, string) result
(** Accepts a [Num] that is integral and within [int] range. *)

val to_float : t -> (float, string) result

val to_string_exn : t -> (string, string) result
(** Accepts a [Str]. *)
