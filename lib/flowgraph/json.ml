type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let max_depth = 512

exception Fail of int * string

let parse input =
  let len = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < len then Some input.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %C, found %C" c c')
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let skip_ws () =
    while
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        true
      | _ -> false
    do
      ()
    done
  in
  let literal word value =
    let n = String.length word in
    if !pos + n <= len && String.sub input !pos n = word then begin
      pos := !pos + n;
      value
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let digits () =
    let start = !pos in
    while (match peek () with Some ('0' .. '9') -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected digit"
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    (* Integer part: a single 0, or a nonzero digit followed by digits. *)
    (match peek () with
    | Some '0' -> advance ()
    | Some ('1' .. '9') -> digits ()
    | _ -> fail "expected digit");
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    (* The slice obeys the JSON number grammar, so [float_of_string]
       cannot see hex, underscores or nan/infinity spellings. *)
    let v = float_of_string (String.sub input start (!pos - start)) in
    if not (Float.is_finite v) then fail "number does not fit a finite float";
    Num v
  in
  let hex4 () =
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match peek () with
        | Some ('0' .. '9' as c) -> Char.code c - Char.code '0'
        | Some ('a' .. 'f' as c) -> Char.code c - Char.code 'a' + 10
        | Some ('A' .. 'F' as c) -> Char.code c - Char.code 'A' + 10
        | _ -> fail "invalid \\u escape"
      in
      advance ();
      v := (!v * 16) + d
    done;
    !v
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> advance (); Buffer.add_char buf '"'
        | Some '\\' -> advance (); Buffer.add_char buf '\\'
        | Some '/' -> advance (); Buffer.add_char buf '/'
        | Some 'b' -> advance (); Buffer.add_char buf '\b'
        | Some 'f' -> advance (); Buffer.add_char buf '\012'
        | Some 'n' -> advance (); Buffer.add_char buf '\n'
        | Some 'r' -> advance (); Buffer.add_char buf '\r'
        | Some 't' -> advance (); Buffer.add_char buf '\t'
        | Some 'u' ->
          advance ();
          let cp = hex4 () in
          if cp >= 0xD800 && cp <= 0xDBFF then begin
            (* High surrogate: must be followed by a low surrogate. *)
            expect '\\';
            expect 'u';
            let lo = hex4 () in
            if lo < 0xDC00 || lo > 0xDFFF then fail "unpaired surrogate";
            add_utf8 buf (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
          end
          else if cp >= 0xDC00 && cp <= 0xDFFF then fail "unpaired surrogate"
          else add_utf8 buf cp
        | _ -> fail "invalid escape");
        go ()
      | Some c when Char.code c < 0x20 -> fail "unescaped control character"
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (elements [])
      end
    | Some '"' -> Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = value 0 in
    skip_ws ();
    if !pos <> len then fail "trailing content after JSON value";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
    Error (Printf.sprintf "JSON error at byte %d: %s" at msg)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_int = function
  | Num v when Float.is_integer v && Float.abs v <= 1e15 -> Ok (int_of_float v)
  | Num _ -> Error "expected an integer"
  | _ -> Error "expected a number"

let to_float = function Num v -> Ok v | _ -> Error "expected a number"

let to_string_exn = function Str s -> Ok s | _ -> Error "expected a string"
