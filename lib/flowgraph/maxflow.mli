(** Maximum flow on float-capacity digraphs (Dinic's algorithm on a flat
    CSR arena).

    The throughput of a broadcast scheme is
    [min over i of maxflow (C0 -> Ci)] on the weighted communication graph
    (paper, Section II-D); this module is the verification oracle behind
    that definition. Dinic runs in [O(V^2 E)] in general — far below what
    the test instances require — and capacities are floats, so a relative
    tolerance [eps] bounds the residual-capacity cutoff.

    The residual network lives in arc-indexed int/float arrays built from
    a {!Csr.t} snapshot: adjacency is itself CSR, phase cursors reset by
    [Array.blit], BFS runs on a flat int queue, and the blocking-flow DFS
    is {e iterative} (explicit arc stack), so deep level graphs — path- or
    ring-shaped schemes at n = 100k and beyond — cannot overflow the OCaml
    stack. The pre-CSR list-based engine survives as {!Maxflow_legacy},
    the oracle of the differential suite.

    Verification workloads solve one flow per destination on the {e same}
    scheme; the {!solver} type shares one residual arena across all sinks
    (switching sink restores capacities with a blit instead of rebuilding
    the arena) and supports early exit once a target value is certified.
    {!broadcast_throughput} additionally takes the O(V + E)
    {!Csr.min_incoming_cut} fast path on acyclic schemes. Callers that
    already hold a {!Csr.t} snapshot should use the [_csr] variants to
    avoid re-freezing the graph. *)

val max_flow : ?eps:float -> Graph.t -> src:int -> dst:int -> float
(** [max_flow g ~src ~dst] is the value of a maximum [src]-[dst] flow in
    [g], treating edge weights as capacities. [eps] (default [1e-12])
    is the smallest residual capacity considered usable. Requires
    [src <> dst]. The input graph is not modified. This is the plain
    per-call reference: it rebuilds its residual network every time. *)

(** {1 Batch solving (one scheme, many sinks)} *)

type solver
(** A reusable max-flow context for a fixed graph and source: the residual
    arena is built once and re-augmented per sink. *)

val solver : ?eps:float -> Graph.t -> src:int -> solver
(** [solver g ~src] prepares the shared residual network. Later changes to
    [g] are not reflected. *)

val solver_of_csr : ?eps:float -> Csr.t -> src:int -> solver
(** Like {!solver}, but from an existing snapshot — no re-freeze. *)

val solve : ?limit:float -> solver -> dst:int -> float
(** [solve s ~dst] is [max_flow] from the solver's source to [dst],
    re-using the shared arena. With [limit] (default [infinity])
    augmentation stops as soon as the accumulated flow reaches [limit]:
    the result is the exact max-flow value when it is [< limit], and
    otherwise only certifies that the max flow is [>= limit]. Requires
    [dst <> src]. *)

(** {1 Broadcast queries} *)

val min_broadcast_flow : ?eps:float -> Graph.t -> src:int -> float
(** [min_broadcast_flow g ~src] is
    [min over all v <> src of max_flow g ~src ~dst:v] — the broadcast
    throughput of the scheme described by [g]. Returns [infinity] on a
    single-node graph. Sinks share one {!solver} and are visited in
    increasing incoming-capacity order ([in_weight v] bounds the flow into
    [v]), so each sink stops augmenting at the running minimum; the value
    is exact regardless. *)

val broadcast_throughput : ?eps:float -> Graph.t -> src:int -> float
(** Structure-aware {!min_broadcast_flow}: on acyclic graphs the
    throughput is [min over v <> src of in_weight v]
    (see {!Csr.min_incoming_cut}) and costs O(V + E) total; cyclic graphs
    fall back to {!min_broadcast_flow}. Values agree with the plain
    per-destination Dinic computation up to its [eps] tolerance. *)

val achieves_rate : ?eps:float -> Graph.t -> src:int -> rate:float -> bool
(** [achieves_rate g ~src ~rate] is [min_broadcast_flow g ~src >= rate],
    decided with early exit: each sink stops augmenting at [rate], and the
    scan aborts at the first sink below it. The comparison is exact; apply
    any tolerance by adjusting [rate] before the call. *)

val min_broadcast_flow_csr : ?eps:float -> Csr.t -> src:int -> float
(** {!min_broadcast_flow} on an existing snapshot. *)

val achieves_rate_csr : ?eps:float -> Csr.t -> src:int -> rate:float -> bool
(** {!achieves_rate} on an existing snapshot. *)

val broadcast_throughput_csr : ?eps:float -> Csr.t -> src:int -> float
(** {!broadcast_throughput} on an existing snapshot. *)

(** {1 Flow witnesses} *)

val flow_assignment :
  ?eps:float -> Graph.t -> src:int -> dst:int -> float * Graph.t
(** [flow_assignment g ~src ~dst] additionally returns the flow itself as a
    graph (edge weight = flow routed on that edge), for callers that need a
    witness (e.g. decomposition into paths). Builds a one-shot solver;
    when one is already alive, use {!flow_of_solver} instead. *)

val flow_of_solver : solver -> dst:int -> float * Graph.t
(** [flow_of_solver s ~dst] solves from the solver's source to [dst]
    (resetting the shared arena, no [limit]) and reads the witness back
    from the residual capacities — no arena rebuild. *)

(** {1 Incremental solving under churn} *)

module Incremental = Incremental
(** Warm-start incremental variant: persists arc-flow/residual state
    across churn events and re-augments from the residual instead of
    solving from zero. See {!Incremental}. *)
