(* Two passes over the graph: count degrees, dump edges, then sort a
   permutation by (src, dst) to make the snapshot canonical regardless of
   hashtable iteration order. The predecessor view is filled by walking
   the sorted edges once, which leaves every pred row sorted by source
   for free. *)

type t = {
  n : int;
  m : int;
  row_off : int array;
  col : int array;
  w : float array;
  pred_off : int array;
  pred_src : int array;
  pred_edge : int array;
  out_wt : float array;
  in_wt : float array;
}

let node_count t = t.n
let edge_count t = t.m
let out_degree t u = t.row_off.(u + 1) - t.row_off.(u)
let in_degree t v = t.pred_off.(v + 1) - t.pred_off.(v)
let out_weight t u = t.out_wt.(u)
let in_weight t v = t.in_wt.(v)

(* Shared tail of [of_graph] and [patch_rows]: given sorted successor
   arrays, derive the predecessor view and the canonical weight sums. The
   cursor fill walks edges in canonical order, which leaves every pred row
   sorted by source — and keeps the float summation order identical no
   matter which constructor produced [col]/[w], so patched snapshots are
   bit-for-bit equal to fresh freezes. *)
let finish ~n ~m ~row_off ~col ~w =
  let pred_off = Array.make (n + 1) 0 in
  for e = 0 to m - 1 do
    pred_off.(col.(e) + 1) <- pred_off.(col.(e) + 1) + 1
  done;
  for v = 0 to n - 1 do
    pred_off.(v + 1) <- pred_off.(v + 1) + pred_off.(v)
  done;
  let pred_src = Array.make m 0 and pred_edge = Array.make m 0 in
  let cursor = Array.sub pred_off 0 (max 1 n) in
  for u = 0 to n - 1 do
    for e = row_off.(u) to row_off.(u + 1) - 1 do
      let v = col.(e) in
      let p = cursor.(v) in
      cursor.(v) <- p + 1;
      pred_src.(p) <- u;
      pred_edge.(p) <- e
    done
  done;
  let out_wt = Array.make n 0. and in_wt = Array.make n 0. in
  for u = 0 to n - 1 do
    let s = ref 0. in
    for e = row_off.(u) to row_off.(u + 1) - 1 do
      s := !s +. w.(e)
    done;
    out_wt.(u) <- !s
  done;
  for v = 0 to n - 1 do
    let s = ref 0. in
    for p = pred_off.(v) to pred_off.(v + 1) - 1 do
      s := !s +. w.(pred_edge.(p))
    done;
    in_wt.(v) <- !s
  done;
  { n; m; row_off; col; w; pred_off; pred_src; pred_edge; out_wt; in_wt }

let of_graph g =
  let n = Graph.node_count g in
  let m = Graph.edge_count g in
  let row_off = Array.make (n + 1) 0 in
  Graph.iter_edges
    (fun ~src ~dst:_ _w -> row_off.(src + 1) <- row_off.(src + 1) + 1)
    g;
  for u = 0 to n - 1 do
    row_off.(u + 1) <- row_off.(u + 1) + row_off.(u)
  done;
  let es = Array.make m 0 and ed = Array.make m 0 and ew = Array.make m 0. in
  let next = ref 0 in
  Graph.iter_edges
    (fun ~src ~dst w ->
      let e = !next in
      incr next;
      es.(e) <- src;
      ed.(e) <- dst;
      ew.(e) <- w)
    g;
  let perm = Array.init m (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = compare es.(a) es.(b) in
      if c <> 0 then c else compare ed.(a) ed.(b))
    perm;
  let col = Array.make m 0 and w = Array.make m 0. in
  Array.iteri
    (fun i p ->
      col.(i) <- ed.(p);
      w.(i) <- ew.(p))
    perm;
  finish ~n ~m ~row_off ~col ~w

let patch_rows ?n t ~rows ~edges =
  let n' = match n with None -> t.n | Some n' -> n' in
  if n' < t.n then invalid_arg "Csr.patch_rows: n may not shrink";
  let k = Array.length rows in
  if Array.length edges <> k then
    invalid_arg "Csr.patch_rows: rows/edges length mismatch";
  Array.iteri
    (fun i r ->
      if r < 0 || r >= n' then invalid_arg "Csr.patch_rows: row out of range";
      if i > 0 && rows.(i - 1) >= r then
        invalid_arg "Csr.patch_rows: rows must be strictly increasing";
      let prev = ref (-1) in
      Array.iter
        (fun (d, wt) ->
          if d < 0 || d >= n' then
            invalid_arg "Csr.patch_rows: dst out of range";
          if d = r then invalid_arg "Csr.patch_rows: self loop";
          if d <= !prev then
            invalid_arg "Csr.patch_rows: row edges must be sorted by dst";
          if not (Float.is_finite wt) || wt <= 0. then
            invalid_arg "Csr.patch_rows: weight must be positive and finite";
          prev := d)
        edges.(i))
    rows;
  let appended = ref 0 in
  Array.iter (fun r -> if r >= t.n then incr appended) rows;
  if !appended <> n' - t.n then
    invalid_arg "Csr.patch_rows: every appended row must be patched";
  let row_off' = Array.make (n' + 1) 0 in
  for u = 0 to t.n - 1 do
    row_off'.(u + 1) <- t.row_off.(u + 1) - t.row_off.(u)
  done;
  Array.iteri (fun i r -> row_off'.(r + 1) <- Array.length edges.(i)) rows;
  for u = 0 to n' - 1 do
    row_off'.(u + 1) <- row_off'.(u + 1) + row_off'.(u)
  done;
  let m' = row_off'.(n') in
  let col' = Array.make m' 0 and w' = Array.make m' 0. in
  let ki = ref 0 and u = ref 0 in
  while !u < n' do
    if !ki < k && rows.(!ki) = !u then begin
      let base = row_off'.(!u) in
      Array.iteri
        (fun j (d, wt) ->
          col'.(base + j) <- d;
          w'.(base + j) <- wt)
        edges.(!ki);
      incr ki;
      incr u
    end
    else begin
      (* Contiguous run of unpatched rows: their layout is unchanged
         relative to the run start, so one blit per run suffices. Every
         row >= t.n is patched, so the run stays within the old arrays. *)
      let stop = if !ki < k then min rows.(!ki) t.n else t.n in
      let len = t.row_off.(stop) - t.row_off.(!u) in
      Array.blit t.col t.row_off.(!u) col' row_off'.(!u) len;
      Array.blit t.w t.row_off.(!u) w' row_off'.(!u) len;
      u := stop
    end
  done;
  finish ~n:n' ~m:m' ~row_off:row_off' ~col:col' ~w:w'

let edge_weight t ~src ~dst =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Csr.edge_weight: node out of range";
  let lo = ref t.row_off.(src) and hi = ref t.row_off.(src + 1) in
  let found = ref 0. in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let c = t.col.(mid) in
    if c = dst then begin
      found := t.w.(mid);
      lo := !hi
    end
    else if c < dst then lo := mid + 1
    else hi := mid
  done;
  !found

let iter_edges f t =
  for u = 0 to t.n - 1 do
    for e = t.row_off.(u) to t.row_off.(u + 1) - 1 do
      f ~src:u ~dst:t.col.(e) t.w.(e)
    done
  done

(* Kahn's algorithm with a flat binary min-heap over node indices: the
   smallest zero-indegree node is emitted first, matching Topo.sort's
   deterministic tie-breaking without any list allocation. *)
let topo_order t =
  let n = t.n in
  let indeg = Array.make (max 1 n) 0 in
  for v = 0 to n - 1 do
    indeg.(v) <- t.pred_off.(v + 1) - t.pred_off.(v)
  done;
  let heap = Array.make (max 1 n) 0 in
  let size = ref 0 in
  let swap i j =
    let tmp = heap.(i) in
    heap.(i) <- heap.(j);
    heap.(j) <- tmp
  in
  let push v =
    heap.(!size) <- v;
    incr size;
    let i = ref (!size - 1) in
    while !i > 0 && heap.((!i - 1) / 2) > heap.(!i) do
      swap !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done
  in
  let pop () =
    let v = heap.(0) in
    decr size;
    heap.(0) <- heap.(!size);
    let i = ref 0 and sifting = ref true in
    while !sifting do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < !size && heap.(l) < heap.(!s) then s := l;
      if r < !size && heap.(r) < heap.(!s) then s := r;
      if !s = !i then sifting := false
      else begin
        swap !i !s;
        i := !s
      end
    done;
    v
  in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then push v
  done;
  let order = Array.make n (-1) in
  let filled = ref 0 in
  while !size > 0 do
    let v = pop () in
    order.(!filled) <- v;
    incr filled;
    for e = t.row_off.(v) to t.row_off.(v + 1) - 1 do
      let u = t.col.(e) in
      indeg.(u) <- indeg.(u) - 1;
      if indeg.(u) = 0 then push u
    done
  done;
  if !filled = n then Some order else None

(* Acyclicity does not need the tie-breaking heap: a ring-buffer queue
   (each node enters at most once, so a flat array suffices) and a
   processed-node count. *)
let is_acyclic t =
  let n = t.n in
  let indeg = Array.make (max 1 n) 0 in
  for v = 0 to n - 1 do
    indeg.(v) <- t.pred_off.(v + 1) - t.pred_off.(v)
  done;
  let queue = Array.make (max 1 n) 0 in
  let qt = ref 0 in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then begin
      queue.(!qt) <- v;
      incr qt
    end
  done;
  let qh = ref 0 in
  while !qh < !qt do
    let v = queue.(!qh) in
    incr qh;
    for e = t.row_off.(v) to t.row_off.(v + 1) - 1 do
      let u = t.col.(e) in
      indeg.(u) <- indeg.(u) - 1;
      if indeg.(u) = 0 then begin
        queue.(!qt) <- u;
        incr qt
      end
    done
  done;
  !qh = n

(* Colored DFS with an explicit node stack and per-node edge cursors;
   colors: 0 = unvisited, 1 = on stack, 2 = done. *)
let find_cycle t =
  let n = t.n in
  let color = Array.make (max 1 n) 0 in
  let parent = Array.make (max 1 n) (-1) in
  let pos = Array.make (max 1 n) 0 in
  let stack = Array.make (max 1 n) 0 in
  let result = ref None in
  let root = ref 0 in
  while !result = None && !root < n do
    if color.(!root) = 0 then begin
      let top = ref 0 in
      stack.(0) <- !root;
      color.(!root) <- 1;
      pos.(!root) <- t.row_off.(!root);
      while !result = None && !top >= 0 do
        let v = stack.(!top) in
        if pos.(v) < t.row_off.(v + 1) then begin
          let e = pos.(v) in
          pos.(v) <- e + 1;
          let u = t.col.(e) in
          if color.(u) = 0 then begin
            parent.(u) <- v;
            color.(u) <- 1;
            pos.(u) <- t.row_off.(u);
            incr top;
            stack.(!top) <- u
          end
          else if color.(u) = 1 then begin
            (* Back edge v -> u: walk parents from v back to u. *)
            let rec collect x acc =
              if x = u then x :: acc else collect parent.(x) (x :: acc)
            in
            result := Some (collect v [])
          end
        end
        else begin
          color.(v) <- 2;
          decr top
        end
      done
    end;
    incr root
  done;
  !result

let min_incoming_cut t ~src =
  if src < 0 || src >= t.n then
    invalid_arg "Csr.min_incoming_cut: src out of range";
  let best = ref infinity and arg = ref src in
  for v = 0 to t.n - 1 do
    if v <> src && t.in_wt.(v) < !best then begin
      best := t.in_wt.(v);
      arg := v
    end
  done;
  (!best, !arg)
