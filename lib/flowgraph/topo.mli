(** Topological structure of communication graphs.

    A broadcast scheme is {e acyclic} iff its communication graph admits a
    topological order (Section II-D); these helpers implement that test and
    produce the witness order [sigma]. Each call freezes the graph into a
    {!Csr} snapshot and traverses flat arrays with explicit stacks, so
    they are stack-safe on arbitrarily deep graphs; callers that already
    hold a snapshot should call the {!Csr} traversals directly. *)

val sort : Graph.t -> int array option
(** [sort g] is [Some order] where [order] lists all nodes such that every
    edge goes from an earlier to a later position, or [None] if [g] has a
    directed cycle. Kahn's algorithm; ties are broken by smallest node
    index, so the output is deterministic. *)

val is_acyclic : Graph.t -> bool

val find_cycle : Graph.t -> int list option
(** [find_cycle g] returns the node sequence of some directed cycle
    ([v1; v2; ...; vk] with edges [v1->v2 ... vk->v1]), or [None] if the
    graph is acyclic. *)

val min_incoming_cut : Graph.t -> src:int -> float * int
(** [min_incoming_cut g ~src] is [(w, v)] where [v] minimizes
    [Graph.in_weight g v] over all nodes [v <> src] and [w] is that weight
    ([(infinity, src)] on a single-node graph).

    On an {e acyclic} graph this equals the broadcast throughput
    [min over v <> src of maxflow (src -> v)]: any cut [(S, V \ S)] with
    [src] in [S] has capacity at least the incoming weight of the
    topologically first vertex outside [S] (all its in-neighbours are
    earlier, hence inside [S]), and the cut isolating [v] costs exactly
    [in_weight v]. This is the O(V + E) fast path used by the batch
    verification engine; on cyclic graphs the value is only an upper
    bound and callers must fall back to {!Maxflow}. *)

val depth_from : Graph.t -> int -> int array
(** [depth_from g root] is, for each node, the length (in hops) of the
    longest path from [root] following positive-weight edges, or [-1] for
    unreachable nodes. Requires the graph to be acyclic. This is the
    scheme-depth metric discussed in the paper's conclusion (delay
    minimization perspective). *)
