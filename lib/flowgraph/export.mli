(** Export and import of communication graphs for external tooling.

    A release-quality broadcast library must hand its overlays to other
    systems: visualization (Graphviz), deployment (a JSON description of
    which connections to open at which rate), and schedulers (the
    broadcast-tree decomposition as an explicit edge/tree table). All
    emitters are dependency-free string builders; the JSON reader below is
    their strict inverse, so persisted overlays can be reloaded and
    re-verified. *)

val to_dot :
  ?name:string ->
  ?node_label:(int -> string) ->
  ?node_class:(int -> string option) ->
  Graph.t ->
  string
(** [to_dot g] renders a Graphviz digraph: one node per vertex (labelled by
    [node_label], default ["C<i>"]) and one edge per positive-weight arc,
    labelled with its rate. [node_class] may return a style class:
    ["source"], ["open"], ["guarded"] get distinct shapes/colors, other
    strings are ignored. [name] and every label are escaped for DOT's
    double-quoted strings (quotes, backslashes, newlines), so arbitrary
    user-supplied labels cannot produce an unparsable file. *)

val to_json : ?precision:int -> Graph.t -> string
(** [to_json g] is a compact JSON object
    [{"nodes": <count>, "edges": [{"src": i, "dst": j, "rate": w}, ...]}]
    with edges sorted by [(src, dst)] for reproducible output. [precision]
    is the [%g] significand precision for rates (default 12; use 17 for
    an exact float round-trip through {!graph_of_json}). *)

val graph_of_json : string -> (Graph.t, string) result
(** [graph_of_json s] parses the {!to_json} format back into a graph,
    strictly: unknown fields, out-of-range or duplicate [(src, dst)]
    pairs, self loops, and non-finite, NaN, negative or zero rates are
    all rejected with a message naming the offending edge. The inverse of
    {!to_json} for every graph this library builds (exactly so at
    [precision >= 17]). *)

val graph_of_json_value : Json.t -> (Graph.t, string) result
(** Same validation on an already-parsed JSON value — the entry point for
    readers of enclosing documents (scheme artifacts embed a graph
    object). *)

val schedule_to_json : Arborescence.tree list -> string
(** Renders a tree decomposition as JSON:
    [{"trees": [{"rate": w, "parent": [-1, 0, ...]}, ...]}] — the form a
    block-scheduler consumes (tree [k] carries the byte ranges congruent
    to its share of the rate). *)
