(* The pre-CSR Dinic engine, kept verbatim as a reference oracle: the
   differential test suite and verify_bench compare the CSR engine in
   Maxflow against this implementation (per-node [int list] adjacency,
   an [Array.copy] of the adjacency per phase, recursive blocking-flow
   DFS). Do not optimise this file — its value is being the old code. *)

type arena = {
  (* arc i: head.(i) = destination, cap.(i) = residual capacity;
     arc i lxor 1 is its reverse. *)
  head : int array;
  cap : float array;
  adj : int list array;  (* arc indices leaving each node *)
  level : int array;
}

let build g =
  let k = Graph.node_count g in
  let arcs = Graph.edge_count g in
  let head = Array.make (2 * arcs) 0 in
  let cap = Array.make (2 * arcs) 0. in
  let adj = Array.make k [] in
  let next = ref 0 in
  Graph.iter_edges
    (fun ~src ~dst w ->
      let a = !next in
      next := a + 2;
      head.(a) <- dst;
      cap.(a) <- w;
      head.(a + 1) <- src;
      cap.(a + 1) <- 0.;
      adj.(src) <- a :: adj.(src);
      adj.(dst) <- (a + 1) :: adj.(dst))
    g;
  { head; cap; adj; level = Array.make k (-1) }

let bfs eps a ~src ~dst =
  Array.fill a.level 0 (Array.length a.level) (-1);
  a.level.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun arc ->
        let v = a.head.(arc) in
        if a.cap.(arc) > eps && a.level.(v) < 0 then begin
          a.level.(v) <- a.level.(u) + 1;
          Queue.add v q
        end)
      a.adj.(u)
  done;
  a.level.(dst) >= 0

(* Blocking flow by DFS with per-node arc cursors. *)
let rec dfs eps a cursors ~dst u pushed =
  if u = dst then pushed
  else
    match cursors.(u) with
    | [] -> 0.
    | arc :: rest ->
      let v = a.head.(arc) in
      if a.cap.(arc) > eps && a.level.(v) = a.level.(u) + 1 then begin
        let sent = dfs eps a cursors ~dst v (Float.min pushed a.cap.(arc)) in
        if sent > eps then begin
          a.cap.(arc) <- a.cap.(arc) -. sent;
          a.cap.(arc lxor 1) <- a.cap.(arc lxor 1) +. sent;
          sent
        end
        else begin
          cursors.(u) <- rest;
          dfs eps a cursors ~dst u pushed
        end
      end
      else begin
        cursors.(u) <- rest;
        dfs eps a cursors ~dst u pushed
      end

type solver = {
  arena : arena;
  pristine : float array;  (* capacities before any augmentation *)
  src : int;
  eps : float;
  in_cap : float array;  (* per-node incoming capacity, an upper bound on
                            the max-flow into that node (cut isolating it) *)
}

let solver ?(eps = 1e-12) g ~src =
  let k = Graph.node_count g in
  if src < 0 || src >= k then invalid_arg "Maxflow: node out of range";
  let arena = build g in
  {
    arena;
    pristine = Array.copy arena.cap;
    src;
    eps;
    in_cap = Array.init k (Graph.in_weight g);
  }

let reset s =
  Array.blit s.pristine 0 s.arena.cap 0 (Array.length s.pristine)

let solve ?(limit = infinity) s ~dst =
  if dst = s.src then invalid_arg "Maxflow: src = dst";
  if dst < 0 || dst >= Array.length s.arena.level then
    invalid_arg "Maxflow: node out of range";
  reset s;
  let a = s.arena and eps = s.eps in
  let total = ref 0. in
  while !total < limit && bfs eps a ~src:s.src ~dst do
    let cursors = Array.copy a.adj in
    let continue = ref true in
    while !continue && !total < limit do
      let sent = dfs eps a cursors ~dst s.src infinity in
      if sent > eps then total := !total +. sent else continue := false
    done
  done;
  !total

let max_flow ?(eps = 1e-12) g ~src ~dst =
  if src = dst then invalid_arg "Maxflow: src = dst";
  let k = Graph.node_count g in
  if src < 0 || src >= k || dst < 0 || dst >= k then
    invalid_arg "Maxflow: node out of range";
  solve (solver ~eps g ~src) ~dst

let sinks_by_in_cap s =
  let k = Array.length s.in_cap in
  let sinks = ref [] in
  for v = k - 1 downto 0 do
    if v <> s.src then sinks := v :: !sinks
  done;
  List.stable_sort
    (fun u v -> Float.compare s.in_cap.(u) s.in_cap.(v))
    !sinks

let min_broadcast_flow ?eps g ~src =
  if Graph.node_count g <= 1 then infinity
  else begin
    let s = solver ?eps g ~src in
    List.fold_left
      (fun best v ->
        let f = solve ~limit:best s ~dst:v in
        if f < best then f else best)
      infinity (sinks_by_in_cap s)
  end

let achieves_rate ?eps g ~src ~rate =
  if Graph.node_count g <= 1 then true
  else begin
    let s = solver ?eps g ~src in
    List.for_all
      (fun v -> solve ~limit:rate s ~dst:v >= rate)
      (sinks_by_in_cap s)
  end
