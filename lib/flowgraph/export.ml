let sorted_edges g =
  Graph.fold_edges (fun ~src ~dst w acc -> (src, dst, w) :: acc) g []
  |> List.sort compare

(* DOT double-quoted strings: backslash and double quote must be escaped,
   and literal newlines are only legal as the \n escape. User-supplied
   [node_label]/[node_class] strings go through this, so a label like
   [peer "eu-1"\fast] renders instead of producing an unparsable file. *)
let dot_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_dot ?(name = "overlay") ?(node_label = Printf.sprintf "C%d")
    ?(node_class = fun _ -> None) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (dot_escape name));
  Buffer.add_string buf "  rankdir=LR;\n  node [fontname=\"sans-serif\"];\n";
  for v = 0 to Graph.node_count g - 1 do
    let style =
      match node_class v with
      | Some "source" -> ", shape=doublecircle, style=filled, fillcolor=\"#ffd27f\""
      | Some "open" -> ", shape=circle"
      | Some "guarded" -> ", shape=box, style=filled, fillcolor=\"#d7e3f4\""
      | Some _ | None -> ", shape=circle"
    in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\"%s];\n" v (dot_escape (node_label v)) style)
  done;
  List.iter
    (fun (src, dst, w) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%.3g\"];\n" src dst w))
    (sorted_edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_json ?(precision = 12) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "{\"nodes\": %d, \"edges\": [" (Graph.node_count g));
  List.iteri
    (fun i (src, dst, w) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "{\"src\": %d, \"dst\": %d, \"rate\": %.*g}" src dst
           precision w))
    (sorted_edges g);
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* Strict reader for the {!to_json} shape. Every rejection names the edge
   index so a hand-edited scheme file fails with an actionable message. *)
let graph_of_json_value v =
  let ( let* ) = Result.bind in
  let* nodes =
    match Json.member "nodes" v with
    | None -> Error "graph: missing \"nodes\" field"
    | Some n ->
      Result.map_error (fun e -> "graph: \"nodes\": " ^ e) (Json.to_int n)
  in
  let* () = if nodes < 0 then Error "graph: negative node count" else Ok () in
  let* edges =
    match Json.member "edges" v with
    | Some (Json.Arr l) -> Ok l
    | Some _ -> Error "graph: \"edges\" must be an array"
    | None -> Error "graph: missing \"edges\" field"
  in
  let* () =
    match v with
    | Json.Obj fields ->
      (match
         List.find_opt (fun (k, _) -> k <> "nodes" && k <> "edges") fields
       with
      | Some (k, _) -> Error (Printf.sprintf "graph: unknown field %S" k)
      | None -> Ok ())
    | _ -> Error "graph: expected an object"
  in
  let g = Graph.create nodes in
  let rec load i = function
    | [] -> Ok g
    | e :: rest ->
      let err msg = Error (Printf.sprintf "graph: edge %d: %s" i msg) in
      let field k =
        match Json.member k e with
        | None -> Error (Printf.sprintf "graph: edge %d: missing %S" i k)
        | Some v -> Ok v
      in
      let* src = field "src" in
      let* dst = field "dst" in
      let* rate = field "rate" in
      let* src =
        Result.map_error (fun m -> Printf.sprintf "graph: edge %d: src: %s" i m)
          (Json.to_int src)
      in
      let* dst =
        Result.map_error (fun m -> Printf.sprintf "graph: edge %d: dst: %s" i m)
          (Json.to_int dst)
      in
      let* rate =
        Result.map_error (fun m -> Printf.sprintf "graph: edge %d: rate: %s" i m)
          (Json.to_float rate)
      in
      if src < 0 || src >= nodes then err "src out of range"
      else if dst < 0 || dst >= nodes then err "dst out of range"
      else if src = dst then err "self loop"
      else if not (Float.is_finite rate) then err "non-finite rate"
      else if rate <= 0. then err "rate must be positive"
      else if Graph.edge_weight g ~src ~dst > 0. then err "duplicate edge"
      else begin
        Graph.set_edge g ~src ~dst rate;
        load (i + 1) rest
      end
  in
  load 0 edges

let graph_of_json s =
  match Json.parse s with
  | Error e -> Error e
  | Ok v -> graph_of_json_value v

let schedule_to_json trees =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"trees\": [";
  List.iteri
    (fun i tree ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "{\"rate\": %.12g, \"parent\": [" tree.Arborescence.weight);
      Array.iteri
        (fun v p ->
          if v > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (string_of_int p))
        tree.Arborescence.parent;
      Buffer.add_string buf "]}")
    trees;
  Buffer.add_string buf "]}";
  Buffer.contents buf
