(* Thin wrappers: every traversal runs on a frozen Csr snapshot (flat
   arrays, explicit stacks — no lists, no recursion), so these are safe
   on deep graphs and cost one O(V + E) freeze on top of the traversal
   itself. Callers that already hold a snapshot should use Csr directly. *)

let sort g = Csr.topo_order (Csr.of_graph g)

let is_acyclic g = Csr.is_acyclic (Csr.of_graph g)

let find_cycle g = Csr.find_cycle (Csr.of_graph g)

(* Broadcast cut theorem (the engine behind the fast verification path).

   For any proper subset [S] containing [src], let [w] be the vertex
   outside [S] that comes first in some fixed topological order. Every
   in-edge of [w] starts at a topologically earlier vertex, and all of
   those are in [S] by choice of [w]; hence [cap (S, V \ S) >= in_weight w].
   Conversely [S = V \ {v}] is a proper subset containing [src] with
   capacity exactly [in_weight v]. So on an acyclic graph

     min over proper S containing src of cap (S, V \ S)
       = min over v <> src of in_weight v,

   and the left-hand side is [min over v of maxflow (src -> v)] by
   max-flow/min-cut — the broadcast throughput. One O(V + E) pass replaces
   one Dinic run per destination. *)
let min_incoming_cut g ~src =
  let k = Graph.node_count g in
  if src < 0 || src >= k then invalid_arg "Topo.min_incoming_cut: src out of range";
  Csr.min_incoming_cut (Csr.of_graph g) ~src

let depth_from g root =
  let c = Csr.of_graph g in
  match Csr.topo_order c with
  | None -> invalid_arg "Topo.depth_from: graph has a cycle"
  | Some order ->
    let k = Csr.node_count c in
    if root < 0 || root >= k then invalid_arg "Topo.depth_from: root out of range";
    let depth = Array.make k (-1) in
    depth.(root) <- 0;
    Array.iter
      (fun v ->
        if depth.(v) >= 0 then
          for e = c.Csr.row_off.(v) to c.Csr.row_off.(v + 1) - 1 do
            let w = c.Csr.col.(e) in
            if depth.(w) < depth.(v) + 1 then depth.(w) <- depth.(v) + 1
          done)
      order;
    depth
