(* Min-index tie-breaking uses a simple module-free binary heap over ints. *)

let sort g =
  let k = Graph.node_count g in
  let indeg = Array.init k (fun v -> List.length (Graph.in_edges g v)) in
  let heap = ref [] in
  (* The frontier is small; an ordered list keeps the code obvious and the
     deterministic smallest-index-first property. *)
  let push v = heap := List.merge compare [ v ] !heap in
  let pop () =
    match !heap with
    | [] -> None
    | v :: rest ->
      heap := rest;
      Some v
  in
  for v = 0 to k - 1 do
    if indeg.(v) = 0 then push v
  done;
  let order = Array.make k (-1) in
  let filled = ref 0 in
  let rec drain () =
    match pop () with
    | None -> ()
    | Some v ->
      order.(!filled) <- v;
      incr filled;
      List.iter
        (fun (w, _) ->
          indeg.(w) <- indeg.(w) - 1;
          if indeg.(w) = 0 then push w)
        (Graph.out_edges g v);
      drain ()
  in
  drain ();
  if !filled = k then Some order else None

let is_acyclic g = sort g <> None

let find_cycle g =
  let k = Graph.node_count g in
  (* Colors: 0 = unvisited, 1 = on stack, 2 = done. *)
  let color = Array.make k 0 in
  let parent = Array.make k (-1) in
  let result = ref None in
  let rec visit v =
    color.(v) <- 1;
    List.iter
      (fun (w, _) ->
        if !result = None then
          if color.(w) = 0 then begin
            parent.(w) <- v;
            visit w
          end
          else if color.(w) = 1 then begin
            (* Back edge v -> w: walk parents from v back to w. *)
            let rec collect u acc = if u = w then u :: acc else collect parent.(u) (u :: acc) in
            result := Some (collect v [])
          end)
      (Graph.out_edges g v);
    color.(v) <- 2
  in
  let v = ref 0 in
  while !result = None && !v < k do
    if color.(!v) = 0 then visit !v;
    incr v
  done;
  !result

(* Broadcast cut theorem (the engine behind the fast verification path).

   For any proper subset [S] containing [src], let [w] be the vertex
   outside [S] that comes first in some fixed topological order. Every
   in-edge of [w] starts at a topologically earlier vertex, and all of
   those are in [S] by choice of [w]; hence [cap (S, V \ S) >= in_weight w].
   Conversely [S = V \ {v}] is a proper subset containing [src] with
   capacity exactly [in_weight v]. So on an acyclic graph

     min over proper S containing src of cap (S, V \ S)
       = min over v <> src of in_weight v,

   and the left-hand side is [min over v of maxflow (src -> v)] by
   max-flow/min-cut — the broadcast throughput. One O(V + E) pass replaces
   one Dinic run per destination. *)
let min_incoming_cut g ~src =
  let k = Graph.node_count g in
  if src < 0 || src >= k then invalid_arg "Topo.min_incoming_cut: src out of range";
  let best = ref infinity and arg = ref src in
  for v = 0 to k - 1 do
    if v <> src then begin
      let w = Graph.in_weight g v in
      if w < !best then begin
        best := w;
        arg := v
      end
    end
  done;
  (!best, !arg)

let depth_from g root =
  match sort g with
  | None -> invalid_arg "Topo.depth_from: graph has a cycle"
  | Some order ->
    let k = Graph.node_count g in
    let depth = Array.make k (-1) in
    if root < 0 || root >= k then invalid_arg "Topo.depth_from: root out of range";
    depth.(root) <- 0;
    Array.iter
      (fun v ->
        if depth.(v) >= 0 then
          List.iter
            (fun (w, _) -> if depth.(w) < depth.(v) + 1 then depth.(w) <- depth.(v) + 1)
            (Graph.out_edges g v))
      order;
    depth
