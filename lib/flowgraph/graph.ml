(* Adjacency is a hashtable per node keyed by destination. Graphs in this
   project are sparse (a low-degree broadcast scheme has O(size) edges), so
   hashtables beat dense matrices past a few hundred nodes while keeping
   edge updates O(1). An inverse adjacency is maintained for in_* queries. *)

type t = {
  succ : (int, float) Hashtbl.t array;
  pred : (int, float) Hashtbl.t array;
  mutable edges : int;
}

let create k =
  if k < 0 then invalid_arg "Graph.create: negative node count";
  {
    succ = Array.init k (fun _ -> Hashtbl.create 4);
    pred = Array.init k (fun _ -> Hashtbl.create 4);
    edges = 0;
  }

let node_count g = Array.length g.succ

let edge_count g = g.edges

let check_pair g ~src ~dst =
  let k = node_count g in
  if src < 0 || src >= k || dst < 0 || dst >= k then
    invalid_arg "Graph: node out of range";
  if src = dst then invalid_arg "Graph: self loop"

let set_edge g ~src ~dst w =
  check_pair g ~src ~dst;
  (* Rejecting all non-finite weights (not just NaN) keeps infinite
     capacities out of the Dinic arena, where they would poison residual
     arithmetic silently. *)
  if not (Float.is_finite w) then invalid_arg "Graph: non-finite weight";
  let existed = Hashtbl.mem g.succ.(src) dst in
  if w > 0. then begin
    Hashtbl.replace g.succ.(src) dst w;
    Hashtbl.replace g.pred.(dst) src w;
    if not existed then g.edges <- g.edges + 1
  end
  else if existed then begin
    Hashtbl.remove g.succ.(src) dst;
    Hashtbl.remove g.pred.(dst) src;
    g.edges <- g.edges - 1
  end

let edge_weight g ~src ~dst =
  check_pair g ~src ~dst;
  Option.value ~default:0. (Hashtbl.find_opt g.succ.(src) dst)

let add_edge g ~src ~dst w =
  set_edge g ~src ~dst (edge_weight g ~src ~dst +. w)

let out_edges g i =
  Hashtbl.fold (fun dst w acc -> (dst, w) :: acc) g.succ.(i) []

let in_edges g i =
  Hashtbl.fold (fun src w acc -> (src, w) :: acc) g.pred.(i) []

let out_degree g i = Hashtbl.length g.succ.(i)

let sum_weights tbl = Hashtbl.fold (fun _ w acc -> acc +. w) tbl 0.

let out_weight g i = sum_weights g.succ.(i)
let in_weight g i = sum_weights g.pred.(i)

let iter_edges f g =
  Array.iteri
    (fun src tbl -> Hashtbl.iter (fun dst w -> f ~src ~dst w) tbl)
    g.succ

let fold_edges f g init =
  let acc = ref init in
  iter_edges (fun ~src ~dst w -> acc := f ~src ~dst w !acc) g;
  !acc

let copy g =
  let g' = create (node_count g) in
  iter_edges (fun ~src ~dst w -> set_edge g' ~src ~dst w) g;
  g'

let scale g f =
  if f < 0. then invalid_arg "Graph.scale: negative factor";
  let g' = create (node_count g) in
  iter_edges (fun ~src ~dst w -> set_edge g' ~src ~dst (w *. f)) g;
  g'

let of_matrix c =
  let k = Array.length c in
  Array.iter
    (fun row ->
      if Array.length row <> k then invalid_arg "Graph.of_matrix: not square")
    c;
  let g = create k in
  for i = 0 to k - 1 do
    if c.(i).(i) > 0. then invalid_arg "Graph.of_matrix: positive diagonal";
    for j = 0 to k - 1 do
      (* NaN compares false against everything, so it must be rejected
         explicitly — it would otherwise pass as an absent edge. *)
      if not (Float.is_finite c.(i).(j)) then
        invalid_arg "Graph.of_matrix: non-finite entry";
      if i <> j && c.(i).(j) > 0. then set_edge g ~src:i ~dst:j c.(i).(j)
    done
  done;
  g

let to_matrix g =
  let k = node_count g in
  let c = Array.make_matrix k k 0. in
  iter_edges (fun ~src ~dst w -> c.(src).(dst) <- w) g;
  c

let equal ?(eps = 1e-9) a b =
  node_count a = node_count b
  && fold_edges
       (fun ~src ~dst w ok -> ok && Float.abs (edge_weight b ~src ~dst -. w) <= eps)
       a true
  && fold_edges
       (fun ~src ~dst w ok -> ok && Float.abs (edge_weight a ~src ~dst -. w) <= eps)
       b true

let pp fmt g =
  Format.fprintf fmt "@[<v>graph %d nodes, %d edges" (node_count g) (edge_count g);
  for i = 0 to node_count g - 1 do
    let outs = List.sort compare (out_edges g i) in
    if outs <> [] then begin
      Format.fprintf fmt "@,%d ->" i;
      List.iter (fun (j, w) -> Format.fprintf fmt " %d:%g" j w) outs
    end
  done;
  Format.fprintf fmt "@]"
