(** Warm-start incremental max-flow under churn.

    A churn event changes a broadcast overlay by a single-node delta
    (leave, join, degrade/restore) but the repair layer rebuilds its
    instance and renumbers every node, so a from-scratch
    {!Maxflow.min_broadcast_flow_csr} per event is the only stateless
    option — and the one the churn benchmarks show collapsing at scale.
    This module keeps the arc-flow/residual state of a CSR-backed Dinic
    solver alive across events instead:

    - node identities live in a stable internal {e slot} space; the
      event's renumbering map only updates the slot translation, a
      departed node tombstones its slot (row kept, arcs zeroed) and a
      newcomer appends a fresh one;
    - arcs live in an append-only arena over the frozen base snapshot:
      pairs never seen before are appended, vanished pairs are retired
      by a stamp sweep, capacities are diffed in O(m) per event;
    - only flow invalidated by the delta is cancelled: flows above their
      new capacity are clamped and the conservation imbalances drained
      along the flow decomposition through the affected arcs (two
      topological sweeps), then the remaining feasible flow is
      re-augmented to a maximum from the warm residual — never from
      zero.

    The state carries one warm flow, to the {e critical sink} (minimal
    incoming weight). On acyclic snapshots — every overlay {!Repair}
    produces — the broadcast throughput equals the minimal incoming cut
    and the max-flow to an argmin sink meets it exactly (the DAG theorem
    pinned by the CSR differential suite), so this single flow certifies
    the broadcast value. When the critical sink moves, the solver
    re-solves that one sink cold (one Dinic run versus [n - 1]); when a
    snapshot is cyclic, it falls back to a full from-scratch
    min-over-sinks solve and reports [cold = true]. *)

type t
(** Mutable warm-flow state. Not thread-safe; one instance per replayed
    trace. *)

type stats = {
  refunded : float;  (** flow cancelled because the delta invalidated it *)
  augmented : float;  (** flow re-added from the warm residual *)
  appended_pairs : int;  (** arena arc pairs appended by this event *)
  rebased : bool;  (** event rebuilt the arena from the snapshot *)
  cold : bool;  (** value came from the cyclic full-scan fallback *)
  sink_moved : bool;
      (** the critical sink changed; the warm flow was reset and that
          single sink re-solved cold *)
}

val create : ?eps:float -> Csr.t -> src:int -> t
(** [create c ~src] loads the snapshot and solves the initial flow cold.
    [eps] (default [1e-12]) is the smallest usable residual capacity, as
    in {!Maxflow}. Raises [Invalid_argument] if [src] is out of
    range. *)

val apply : t -> map:int array -> Csr.t -> unit
(** [apply t ~map c] moves the state to the post-event snapshot [c].
    [map] translates the previous snapshot's node ids to [c]'s:
    [map.(v)] is the new id of old node [v], or [-1] if it departed
    (exactly [Repair.stats.node_map]). New ids not in the map's image
    are newcomers. Raises [Invalid_argument] when the map length does
    not match the previous node count or maps the source to [-1]. *)

val rebase : t -> Csr.t -> unit
(** [rebase t c] discards all warm state and reloads from [c] (identity
    node numbering), solving cold — the right call after a policy
    rebuild, whose rewiring invalidates most of the flow anyway. Also
    performed automatically by {!apply} when tombstones or retired arcs
    dominate the arena, and on cyclic snapshots. *)

val value : t -> float
(** Current broadcast flow value — equal (within the library's [1e-6]
    relative flow slack) to
    [Maxflow.min_broadcast_flow_csr snapshot ~src]; [infinity] on
    single-node snapshots. *)

val achieves_rate : t -> rate:float -> bool
(** [value t >= rate], exact like {!Maxflow.achieves_rate}; apply any
    tolerance by adjusting [rate]. *)

val size : t -> int
(** Node count of the snapshot the state currently mirrors. *)

val is_warm : t -> bool
(** [false] while in the cyclic full-recompute fallback. *)

val last_stats : t -> stats
(** Diagnostics of the most recent {!create}/{!apply}/{!rebase}. *)

val critical_sink : t -> int
(** External id of the critical sink the warm flow currently targets, or
    [-1] on single-node snapshots and in the cyclic fallback. *)

val node_balance : t -> node:int -> float
(** [node_balance t ~node] is the net warm flow into external node
    [node] (inflow minus outflow over its incident arcs) — [O(degree)]
    array reads. A conserved interior node balances to ~0 (within the
    drain tolerance); the source balances to [-value], the critical sink
    to [+value]. This is the per-node conservation witness the
    certificate-trusting auditor checks on the disturbed nodes only.
    Returns [0.] in the cyclic fallback (no warm flow is kept). Raises
    [Invalid_argument] on an out-of-range node. *)

val identity_map : int -> int array
(** [identity_map n] is [[|0; 1; ...; n - 1|]] — the map of an event
    that renumbers nothing. *)
