(* Dinic's algorithm on a flat CSR arena.

   The arena is built once per snapshot; verification workloads solve one
   max-flow per destination on the same scheme, so the [solver] type keeps
   the arena (and a pristine copy of the capacities) alive across sinks:
   switching sink is an [Array.blit] instead of a rebuild, and augmentation
   can stop early as soon as a caller-supplied flow target is certified.

   Everything in the hot loops is an int or float array indexed by arc or
   node — no lists, no hashtables, no allocation per phase:

   - arcs 2e / 2e + 1 are the forward/backward pair of CSR edge e, so
     flow readback is a direct index, not a hashtable lookup;
   - adjacency is itself CSR ([adj_off]/[adj_arcs]), and the per-phase
     cursor reset is [Array.blit adj_off cur] instead of copying an
     [int list array];
   - BFS runs on a flat int queue (each node enters at most once, so a
     plain array with head/tail indices suffices);
   - the blocking-flow DFS is iterative over an explicit arc-path stack,
     so deep level graphs (path-shaped schemes at n = 100k) cannot
     overflow the OCaml stack. *)

type arena = {
  csr : Csr.t;
  head : int array;  (* 2m: arc destination; arc lxor 1 is its reverse *)
  cap : float array;  (* 2m: residual capacity *)
  adj_off : int array;  (* n+1: arcs leaving u are adj_arcs.(adj_off.(u) ..) *)
  adj_arcs : int array;  (* 2m: arc indices, forward then backward per node *)
  level : int array;  (* n: BFS level, -1 = unreached *)
  cur : int array;  (* n: per-node cursor into adj_arcs *)
  queue : int array;  (* n: flat BFS queue *)
  path : int array;  (* n: arc stack of the current DFS path *)
}

let build (c : Csr.t) =
  let n = c.Csr.n and m = c.Csr.m in
  let head = Array.make (2 * m) 0 in
  let cap = Array.make (2 * m) 0. in
  for u = 0 to n - 1 do
    for e = c.Csr.row_off.(u) to c.Csr.row_off.(u + 1) - 1 do
      head.(2 * e) <- c.Csr.col.(e);
      cap.(2 * e) <- c.Csr.w.(e);
      head.((2 * e) + 1) <- u
    done
  done;
  let adj_off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    adj_off.(u + 1) <-
      adj_off.(u)
      + (c.Csr.row_off.(u + 1) - c.Csr.row_off.(u))
      + (c.Csr.pred_off.(u + 1) - c.Csr.pred_off.(u))
  done;
  let adj_arcs = Array.make (2 * m) 0 in
  for u = 0 to n - 1 do
    let p = ref adj_off.(u) in
    for e = c.Csr.row_off.(u) to c.Csr.row_off.(u + 1) - 1 do
      adj_arcs.(!p) <- 2 * e;
      incr p
    done;
    for q = c.Csr.pred_off.(u) to c.Csr.pred_off.(u + 1) - 1 do
      adj_arcs.(!p) <- (2 * c.Csr.pred_edge.(q)) + 1;
      incr p
    done
  done;
  {
    csr = c;
    head;
    cap;
    adj_off;
    adj_arcs;
    level = Array.make n (-1);
    cur = Array.make n 0;
    queue = Array.make (max 1 n) 0;
    path = Array.make (max 1 n) 0;
  }

(* BFS stops as soon as [dst] is labelled: BFS labels nodes in
   nondecreasing distance order, so at that point every node closer than
   [dst] already carries its exact level and the level graph restricted
   to labelled nodes still contains every shortest src-dst path. *)
let bfs a eps ~src ~dst =
  let n = Array.length a.level in
  Array.fill a.level 0 n (-1);
  a.level.(src) <- 0;
  a.queue.(0) <- src;
  let qh = ref 0 and qt = ref 1 in
  while !qh < !qt && a.level.(dst) < 0 do
    let u = a.queue.(!qh) in
    incr qh;
    let lvl = a.level.(u) + 1 in
    for p = a.adj_off.(u) to a.adj_off.(u + 1) - 1 do
      let arc = a.adj_arcs.(p) in
      let v = a.head.(arc) in
      if a.cap.(arc) > eps && a.level.(v) < 0 then begin
        a.level.(v) <- lvl;
        a.queue.(!qt) <- v;
        incr qt
      end
    done
  done;
  a.level.(dst) >= 0

(* One blocking flow on the current level graph, accumulating into
   [total] and stopping once it reaches [limit]. The DFS path lives in
   [a.path] (arc indices); reaching [dst] augments by the bottleneck and
   retreats to the first saturated arc, a dead end prunes the node from
   the level graph and backs up one arc. *)
let blocking_flow a eps ~src ~dst ~limit total =
  Array.blit a.adj_off 0 a.cur 0 (Array.length a.cur);
  let depth = ref 0 in
  let u = ref src in
  let running = ref true in
  while !running do
    if !u = dst then begin
      let f = ref infinity in
      for i = 0 to !depth - 1 do
        let arc = a.path.(i) in
        if a.cap.(arc) < !f then f := a.cap.(arc)
      done;
      let f = !f in
      total := !total +. f;
      let cut = ref 0 in
      for i = !depth - 1 downto 0 do
        let arc = a.path.(i) in
        a.cap.(arc) <- a.cap.(arc) -. f;
        a.cap.(arc lxor 1) <- a.cap.(arc lxor 1) +. f;
        if a.cap.(arc) <= eps then cut := i
      done;
      depth := !cut;
      u := (if !cut = 0 then src else a.head.(a.path.(!cut - 1)));
      if !total >= limit then running := false
    end
    else begin
      let stop = a.adj_off.(!u + 1) in
      let lvl = a.level.(!u) + 1 in
      let c = ref a.cur.(!u) in
      let found = ref (-1) in
      while !found < 0 && !c < stop do
        let arc = a.adj_arcs.(!c) in
        if a.cap.(arc) > eps && a.level.(a.head.(arc)) = lvl then found := arc
        else incr c
      done;
      a.cur.(!u) <- !c;
      if !found >= 0 then begin
        a.path.(!depth) <- !found;
        incr depth;
        u := a.head.(!found)
      end
      else if !u = src then running := false
      else begin
        a.level.(!u) <- -1;
        decr depth;
        let arc = a.path.(!depth) in
        u := a.head.(arc lxor 1);
        a.cur.(!u) <- a.cur.(!u) + 1
      end
    end
  done

type solver = {
  arena : arena;
  pristine : float array;  (* capacities before any augmentation *)
  src : int;
  eps : float;
}

let solver_of_csr ?(eps = 1e-12) c ~src =
  if src < 0 || src >= Csr.node_count c then
    invalid_arg "Maxflow: node out of range";
  let arena = build c in
  { arena; pristine = Array.copy arena.cap; src; eps }

let solver ?eps g ~src = solver_of_csr ?eps (Csr.of_graph g) ~src

let reset s = Array.blit s.pristine 0 s.arena.cap 0 (Array.length s.pristine)

let solve ?(limit = infinity) s ~dst =
  if dst = s.src then invalid_arg "Maxflow: src = dst";
  if dst < 0 || dst >= Array.length s.arena.level then
    invalid_arg "Maxflow: node out of range";
  reset s;
  let a = s.arena and eps = s.eps in
  let total = ref 0. in
  while !total < limit && bfs a eps ~src:s.src ~dst do
    blocking_flow a eps ~src:s.src ~dst ~limit total
  done;
  !total

let max_flow ?eps g ~src ~dst =
  if src = dst then invalid_arg "Maxflow: src = dst";
  let k = Graph.node_count g in
  if src < 0 || src >= k || dst < 0 || dst >= k then
    invalid_arg "Maxflow: node out of range";
  solve (solver ?eps g ~src) ~dst

(* Destinations in increasing incoming-capacity order: [in_weight v]
   bounds [maxflow src v] (the cut isolating [v]), so cheap sinks are
   likely to lower the running minimum early and later sinks can stop
   augmenting as soon as they reach it. Ties break on node index so the
   order is deterministic. *)
let sinks_by_in_cap s =
  let c = s.arena.csr in
  let n = Csr.node_count c in
  let sinks = Array.make (max 1 n - 1) 0 in
  let j = ref 0 in
  for v = 0 to n - 1 do
    if v <> s.src then begin
      sinks.(!j) <- v;
      incr j
    end
  done;
  let in_wt = c.Csr.in_wt in
  Array.sort
    (fun u v ->
      let cmp = Float.compare in_wt.(u) in_wt.(v) in
      if cmp <> 0 then cmp else compare u v)
    sinks;
  sinks

let min_broadcast_flow_csr ?eps c ~src =
  if Csr.node_count c <= 1 then infinity
  else begin
    let s = solver_of_csr ?eps c ~src in
    Array.fold_left
      (fun best v ->
        let f = solve ~limit:best s ~dst:v in
        if f < best then f else best)
      infinity (sinks_by_in_cap s)
  end

let min_broadcast_flow ?eps g ~src =
  min_broadcast_flow_csr ?eps (Csr.of_graph g) ~src

let achieves_rate_csr ?eps c ~src ~rate =
  if Csr.node_count c <= 1 then true
  else begin
    let s = solver_of_csr ?eps c ~src in
    Array.for_all
      (fun v -> solve ~limit:rate s ~dst:v >= rate)
      (sinks_by_in_cap s)
  end

let achieves_rate ?eps g ~src ~rate =
  achieves_rate_csr ?eps (Csr.of_graph g) ~src ~rate

let broadcast_throughput_csr ?eps c ~src =
  if Csr.node_count c <= 1 then infinity
  else if Csr.is_acyclic c then fst (Csr.min_incoming_cut c ~src)
  else min_broadcast_flow_csr ?eps c ~src

let broadcast_throughput ?eps g ~src =
  broadcast_throughput_csr ?eps (Csr.of_graph g) ~src

(* Flow on a forward arc = original capacity - residual = reverse cap;
   arc 2e + 1 belongs to CSR edge e, so readback is one array pass. *)
let read_flow s =
  let c = s.arena.csr and cap = s.arena.cap in
  let flow = Graph.create (Csr.node_count c) in
  for u = 0 to Csr.node_count c - 1 do
    for e = c.Csr.row_off.(u) to c.Csr.row_off.(u + 1) - 1 do
      let f = cap.((2 * e) + 1) in
      if f > s.eps then Graph.set_edge flow ~src:u ~dst:c.Csr.col.(e) f
    done
  done;
  flow

let flow_of_solver s ~dst =
  let value = solve s ~dst in
  (value, read_flow s)

let flow_assignment ?eps g ~src ~dst =
  if src = dst then invalid_arg "Maxflow: src = dst";
  flow_of_solver (solver ?eps g ~src) ~dst

(* The warm-start solver lives in its own compilation unit; the alias
   makes the churn-facing entry point read as part of this engine. *)
module Incremental = Incremental
