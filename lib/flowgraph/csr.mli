(** Frozen compressed-sparse-row (CSR) snapshots of {!Graph.t}.

    {!Graph.t} (one hashtable per node) is the mutable {e construction}
    API; [Csr.t] is the immutable {e query} view the verification hot
    paths run on. Successor and predecessor adjacency are flattened into
    contiguous int/float arrays, per-node weight sums are precomputed,
    and rows are sorted by neighbour index, so iteration order is
    canonical — independent of hashtable insertion history. Building a
    snapshot is one [O(V + E log E)] pass; every query below is
    allocation-free array reads.

    The traversals ({!topo_order}, {!is_acyclic}, {!find_cycle}) use
    explicit work arrays instead of recursion, so deep graphs (path- or
    ring-shaped, n = 100k and beyond) cannot overflow the OCaml stack. *)

type t = private {
  n : int;  (** node count *)
  m : int;  (** edge count *)
  row_off : int array;
      (** length [n + 1]; out-edges of [u] are the CSR edge indices
          [row_off.(u) .. row_off.(u + 1) - 1] *)
  col : int array;
      (** length [m]; destination of each edge, increasing within a row *)
  w : float array;  (** length [m]; weight of each edge *)
  pred_off : int array;
      (** length [n + 1]; in-edges of [v] are the positions
          [pred_off.(v) .. pred_off.(v + 1) - 1] in the two arrays below *)
  pred_src : int array;
      (** length [m]; source of each in-edge, increasing within a row *)
  pred_edge : int array;
      (** length [m]; CSR edge index of each in-edge (into [col]/[w]) *)
  out_wt : float array;  (** per-node outgoing weight, canonical-order sums *)
  in_wt : float array;  (** per-node incoming weight, canonical-order sums *)
}
(** The representation is exposed (read-only) so the max-flow arena and
    other hot loops in this library can index the arrays directly. *)

val of_graph : Graph.t -> t
(** [of_graph g] freezes the current state of [g]; later mutations of [g]
    are not reflected. *)

val patch_rows : ?n:int -> t -> rows:int array -> edges:(int * float) array array -> t
(** [patch_rows t ~rows ~edges] is a fresh snapshot equal to [t] with the
    successor rows listed in [rows] replaced by [edges] — the delta-scoped
    re-freeze behind [Scheme.apply_delta]. [rows] must be strictly
    increasing; [edges.(i)] are the new [(dst, weight)] out-edges of
    [rows.(i)], sorted by [dst], weights positive and finite. [?n]
    (default [node_count t], may only grow) appends nodes
    [node_count t .. n - 1]; every appended row must appear in [rows]
    (possibly with no edges). Unpatched rows are copied by contiguous
    blits — no sort, no hashing — and the result is bit-for-bit identical
    to [of_graph] of the equivalent graph, including the canonical
    summation order of the weight caches. Cost: [O(n + m)] array copies
    versus [of_graph]'s hashtable iteration and [O(m log m)] sort. *)

val node_count : t -> int

val edge_count : t -> int

val out_degree : t -> int -> int

val in_degree : t -> int -> int

val out_weight : t -> int -> float
(** Total weight leaving a node — an array read. *)

val in_weight : t -> int -> float
(** Total weight entering a node — an array read. *)

val edge_weight : t -> src:int -> dst:int -> float
(** Weight of the edge, [0.] if absent. Binary search within the row. *)

val iter_edges : (src:int -> dst:int -> float -> unit) -> t -> unit
(** Iterates in canonical order: increasing [src], then increasing
    [dst]. *)

val topo_order : t -> int array option
(** [Some order] listing all nodes with every edge going forward, or
    [None] on a directed cycle. Kahn's algorithm over the CSR rows; ties
    broken by smallest node index (same contract as {!Topo.sort}). *)

val is_acyclic : t -> bool
(** Like [topo_order <> None] but without the tie-breaking heap — a plain
    ring-buffer Kahn pass. *)

val find_cycle : t -> int list option
(** Node sequence of some directed cycle ([v1; ...; vk] with edges
    [v1->v2 ... vk->v1]), or [None] when acyclic. Iterative DFS with an
    explicit stack — safe on cycles of any length. *)

val min_incoming_cut : t -> src:int -> float * int
(** [(w, v)] where [v] minimizes {!in_weight} over all [v <> src]
    ([(infinity, src)] on a single-node snapshot). Equals the broadcast
    throughput on acyclic graphs — see {!Topo.min_incoming_cut} for the
    cut argument. A scan of the precomputed [in_wt] array. *)
