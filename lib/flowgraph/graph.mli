(** Directed graphs with non-negative float edge weights, over a fixed node
    set [0 .. node_count - 1].

    This is the communication-graph substrate shared by the broadcast
    schemes (edge weight = allocated rate [c i j]), the max-flow
    verification oracle and the arborescence decomposition. Parallel edges
    are merged by accumulation; edges whose weight drops to (or below) zero
    are dropped. *)

type t

val create : int -> t
(** [create k] is the empty graph on [k] nodes. Requires [k >= 0]. *)

val node_count : t -> int

val edge_count : t -> int
(** Number of edges with strictly positive weight. *)

val add_edge : t -> src:int -> dst:int -> float -> unit
(** [add_edge g ~src ~dst w] adds [w] to the weight of edge [src -> dst]
    (creating it if absent; removing it if the result is [<= 0]). Self
    loops are rejected. Raises [Invalid_argument] on out-of-range nodes,
    self loops, or non-finite weight (NaN and infinities — an infinite
    capacity would silently corrupt the max-flow arena). *)

val set_edge : t -> src:int -> dst:int -> float -> unit
(** [set_edge g ~src ~dst w] sets the weight to exactly [w] ([<= 0] removes
    the edge). *)

val edge_weight : t -> src:int -> dst:int -> float
(** Weight of the edge, [0.] if absent. *)

val out_edges : t -> int -> (int * float) list
(** [(dst, weight)] pairs with positive weight, in unspecified order. *)

val in_edges : t -> int -> (int * float) list
(** [(src, weight)] pairs with positive weight, in unspecified order. *)

val out_degree : t -> int -> int
(** Number of positive-weight out-edges — the paper's [o i]. *)

val out_weight : t -> int -> float
(** Total weight leaving a node — must satisfy [out_weight g i <= b i] in a
    valid broadcast scheme. *)

val in_weight : t -> int -> float
(** Total weight entering a node. *)

val iter_edges : (src:int -> dst:int -> float -> unit) -> t -> unit

val fold_edges : (src:int -> dst:int -> float -> 'a -> 'a) -> t -> 'a -> 'a

val copy : t -> t

val scale : t -> float -> t
(** [scale g f] multiplies every weight by [f >= 0]. *)

val of_matrix : float array array -> t
(** Dense adjacency matrix [c.(i).(j)]; non-positive entries are absent
    edges. The matrix must be square; the diagonal must be [<= 0]; every
    entry must be finite. *)

val to_matrix : t -> float array array

val equal : ?eps:float -> t -> t -> bool
(** Edge-set equality up to [eps] (default [1e-9]) per edge weight. *)

val pp : Format.formatter -> t -> unit
