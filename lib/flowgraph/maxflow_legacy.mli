(** Reference Dinic engine (pre-CSR), frozen for differential testing.

    This is the list-adjacency implementation {!Maxflow} replaced: per-node
    [int list] arc adjacency, cursors reset by copying the whole adjacency
    array each phase, [Queue.t]-based BFS and a {e recursive}
    blocking-flow DFS (stack depth proportional to the level-graph path
    length — unsafe past a few tens of thousands of nodes).

    It stays in the tree as the oracle the CSR engine is differentially
    tested and benchmarked against ([test/test_csr_differential.ml],
    [bench/verify_bench.ml]). Production callers must use {!Maxflow}. *)

val max_flow : ?eps:float -> Graph.t -> src:int -> dst:int -> float

type solver

val solver : ?eps:float -> Graph.t -> src:int -> solver

val solve : ?limit:float -> solver -> dst:int -> float

val min_broadcast_flow : ?eps:float -> Graph.t -> src:int -> float

val achieves_rate : ?eps:float -> Graph.t -> src:int -> rate:float -> bool
