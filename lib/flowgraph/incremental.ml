(* Warm-start incremental max-flow under churn.

   The churn engine rebuilds its platform instance on every repair and
   renumbers every node (instances stay bandwidth-sorted within classes),
   so arc-flow state keyed by external node ids would be invalidated at
   each event. Instead the solver keeps its own *slot* space: a slot is a
   stable internal node identity that survives renumbering; each event's
   [map] (old external id -> new external id, [-1] = departed) only
   updates the slot <-> external translation arrays. A departed node's
   slot is tombstoned — its row stays allocated, its arcs drop to zero
   capacity — and a newcomer claims a fresh slot appended to the arena.

   Arcs live in an append-only arena of pairs: pair [k] is CSR-style
   forward arc [2k] / backward arc [2k+1], with jagged per-slot adjacency
   rows that grow as churn adds edges. Per event the solver

   1. re-translates slots under [map] (tombstones + fresh slots);
   2. diffs the new frozen snapshot against the arena in O(m): per-pair
      capacities are updated in place, edges never seen before append a
      pair, and a stamp sweep zeroes pairs that vanished (this covers
      every arc incident to a tombstoned slot);
   3. refunds exactly the flow that the delta invalidated: flows above
      their new capacity are clamped, the resulting conservation
      imbalances are drained by two topological sweeps (excess inflow is
      pushed back towards the source in reverse order, outflow deficits
      forward towards the sink), which touch only flow-carrying paths
      through the affected arcs — the flow-decomposition walk of the
      repaired region;
   4. re-augments the remaining (feasible) flow to a maximum with Dinic
      phases run on the warm residual, instead of solving from zero.

   The warm state maintains a single flow, to the *critical sink* — the
   node of minimal incoming weight. On the acyclic overlays every repair
   produces, the broadcast throughput (min over all sinks of
   [maxflow src v]) equals the minimal incoming cut, and the max-flow to
   any argmin-in-weight sink meets that bound exactly (the DAG theorem
   the CSR differential suite pins), so one warm flow certifies the whole
   broadcast value. When the critical sink moves to a different node the
   flow to the old sink is not reusable: the solver resets the residual
   and re-solves that single sink cold — still one Dinic run against the
   [n - 1] of a full recompute. If a snapshot ever comes back cyclic
   (impossible through [Repair], which preserves acyclicity, but allowed
   by this API), the solver falls back to a full from-scratch
   min-over-sinks solve and says so in its stats — this is the one case
   where the Strict auditor's incremental cross-check degenerates to two
   full recomputes. *)

type stats = {
  refunded : float;
  augmented : float;
  appended_pairs : int;
  rebased : bool;
  cold : bool;
  sink_moved : bool;
}

type t = {
  eps : float;
  mutable snap : Csr.t;  (* the snapshot the state currently mirrors *)
  mutable src_ext : int;
  mutable n_ext : int;
  (* slot translation *)
  mutable nslots : int;
  mutable ext_of : int array;  (* slot -> external id, -1 = tombstone *)
  mutable slot_of : int array;  (* external id -> slot *)
  src_slot : int;
  mutable sink_slot : int;  (* critical sink, -1 on single-node graphs *)
  (* arc arena: pair k = forward arc 2k / backward arc 2k+1 *)
  mutable npairs : int;
  mutable tl : int array;  (* pair -> tail slot *)
  mutable hd : int array;  (* pair -> head slot *)
  mutable capn : float array;  (* pair -> current forward capacity *)
  mutable resid : float array;  (* arc -> residual; flow on k = resid.(2k+1) *)
  mutable stamp : int array;  (* pair -> diff tick it was last seen at *)
  mutable tick : int;
  pair_of : (int * int, int) Hashtbl.t;  (* (tail slot, head slot) -> pair *)
  (* jagged adjacency: arcs (both directions) incident to a slot *)
  mutable adj : int array array;
  mutable adj_len : int array;
  (* scratch, sized to nslots *)
  mutable level : int array;
  mutable cur : int array;
  mutable queue : int array;
  mutable path : int array;
  mutable dev : float array;  (* conservation deviation during refunds *)
  mutable warm : bool;  (* false = cyclic fallback, no flow state kept *)
  mutable value_ : float;
  mutable last_ : stats;
}

let no_stats =
  {
    refunded = 0.;
    augmented = 0.;
    appended_pairs = 0;
    rebased = false;
    cold = false;
    sink_moved = false;
  }

(* ---- growable storage ------------------------------------------------- *)

let grow_int a len fill =
  let b = Array.make len fill in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_float a len fill =
  let b = Array.make len fill in
  Array.blit a 0 b 0 (Array.length a);
  b

let ensure_slots t want =
  let have = Array.length t.ext_of in
  if want > have then begin
    let cap = max want (2 * have) in
    t.ext_of <- grow_int t.ext_of cap (-1);
    t.adj <- (let b = Array.make cap [||] in
              Array.blit t.adj 0 b 0 have; b);
    t.adj_len <- grow_int t.adj_len cap 0;
    t.level <- Array.make cap (-1);
    t.cur <- Array.make cap 0;
    t.queue <- Array.make cap 0;
    t.path <- Array.make cap 0;
    t.dev <- Array.make cap 0.
  end

let ensure_pairs t want =
  let have = Array.length t.tl in
  if want > have then begin
    let cap = max want (2 * have) in
    t.tl <- grow_int t.tl cap 0;
    t.hd <- grow_int t.hd cap 0;
    t.capn <- grow_float t.capn cap 0.;
    t.stamp <- grow_int t.stamp cap 0;
    t.resid <- grow_float t.resid (2 * cap) 0.
  end

let adj_push t s arc =
  let row = t.adj.(s) in
  let len = t.adj_len.(s) in
  if len = Array.length row then begin
    let row' = Array.make (max 4 (2 * len)) 0 in
    Array.blit row 0 row' 0 len;
    t.adj.(s) <- row';
    row'.(len) <- arc
  end
  else row.(len) <- arc;
  t.adj_len.(s) <- len + 1

(* Append a fresh zero-flow pair for slot edge [us -> vs]. *)
let add_pair t ~us ~vs ~w =
  let k = t.npairs in
  ensure_pairs t (k + 1);
  t.npairs <- k + 1;
  t.tl.(k) <- us;
  t.hd.(k) <- vs;
  t.capn.(k) <- w;
  t.resid.(2 * k) <- w;
  t.resid.((2 * k) + 1) <- 0.;
  t.stamp.(k) <- t.tick;
  Hashtbl.replace t.pair_of (us, vs) k;
  adj_push t us (2 * k);
  adj_push t vs ((2 * k) + 1);
  k

(* ---- Dinic on the slot arena ------------------------------------------ *)

(* Arc endpoints: forward arc 2k runs tail -> head, backward arc 2k+1
   head -> tail. *)
let arc_dst t a =
  let k = a lsr 1 in
  if a land 1 = 0 then t.hd.(k) else t.tl.(k)

let bfs t ~dst =
  Array.fill t.level 0 t.nslots (-1);
  t.level.(t.src_slot) <- 0;
  t.queue.(0) <- t.src_slot;
  let qh = ref 0 and qt = ref 1 in
  while !qh < !qt && t.level.(dst) < 0 do
    let u = t.queue.(!qh) in
    incr qh;
    let lvl = t.level.(u) + 1 in
    let row = t.adj.(u) and len = t.adj_len.(u) in
    for p = 0 to len - 1 do
      let arc = row.(p) in
      let v = arc_dst t arc in
      if t.resid.(arc) > t.eps && t.level.(v) < 0 then begin
        t.level.(v) <- lvl;
        t.queue.(!qt) <- v;
        incr qt
      end
    done
  done;
  t.level.(dst) >= 0

let blocking_flow t ~dst ~limit total =
  Array.fill t.cur 0 t.nslots 0;
  let depth = ref 0 in
  let u = ref t.src_slot in
  let running = ref true in
  while !running do
    if !u = dst then begin
      let f = ref infinity in
      for i = 0 to !depth - 1 do
        let arc = t.path.(i) in
        if t.resid.(arc) < !f then f := t.resid.(arc)
      done;
      let f = !f in
      total := !total +. f;
      let cut = ref 0 in
      for i = !depth - 1 downto 0 do
        let arc = t.path.(i) in
        t.resid.(arc) <- t.resid.(arc) -. f;
        t.resid.(arc lxor 1) <- t.resid.(arc lxor 1) +. f;
        if t.resid.(arc) <= t.eps then cut := i
      done;
      depth := !cut;
      u := (if !cut = 0 then t.src_slot else arc_dst t t.path.(!cut - 1));
      if !total >= limit then running := false
    end
    else begin
      let row = t.adj.(!u) and stop = t.adj_len.(!u) in
      let lvl = t.level.(!u) + 1 in
      let c = ref t.cur.(!u) in
      let found = ref (-1) in
      while !found < 0 && !c < stop do
        let arc = row.(!c) in
        if t.resid.(arc) > t.eps && t.level.(arc_dst t arc) = lvl then
          found := arc
        else incr c
      done;
      t.cur.(!u) <- !c;
      if !found >= 0 then begin
        t.path.(!depth) <- !found;
        incr depth;
        u := arc_dst t !found
      end
      else if !u = t.src_slot then running := false
      else begin
        t.level.(!u) <- -1;
        decr depth;
        let arc = t.path.(!depth) in
        u := arc_dst t (arc lxor 1);
        t.cur.(!u) <- t.cur.(!u) + 1
      end
    end
  done

(* Augment from the current residual up to [limit]; returns the flow
   added. *)
let augment t ~dst ~limit =
  let total = ref 0. in
  while !total < limit && bfs t ~dst do
    blocking_flow t ~dst ~limit total
  done;
  !total

(* Discard all flow: every forward arc back to full capacity. *)
let reset_flow t =
  for k = 0 to t.npairs - 1 do
    t.resid.(2 * k) <- t.capn.(k);
    t.resid.((2 * k) + 1) <- 0.
  done

(* ---- critical sink ---------------------------------------------------- *)

(* argmin of incoming weight over external ids <> src, smallest id on
   ties — the cut the broadcast value equals on acyclic snapshots. *)
let critical_sink_ext (c : Csr.t) ~src =
  let n = c.Csr.n in
  if n <= 1 then -1
  else begin
    let best = ref (-1) and best_w = ref infinity in
    for v = 0 to n - 1 do
      if v <> src && c.Csr.in_wt.(v) < !best_w then begin
        best := v;
        best_w := c.Csr.in_wt.(v)
      end
    done;
    !best
  end

(* Full from-scratch min-over-sinks solve on the arena, cheap sinks
   first with early exit at the running minimum — the cyclic fallback,
   equivalent to [Maxflow.min_broadcast_flow_csr]. *)
let solve_full t =
  let c = t.snap in
  let n = c.Csr.n in
  if n <= 1 then infinity
  else begin
    let sinks = Array.make (n - 1) 0 in
    let j = ref 0 in
    for v = 0 to n - 1 do
      if v <> t.src_ext then begin
        sinks.(!j) <- v;
        incr j
      end
    done;
    Array.sort
      (fun u v ->
        let cmp = Float.compare c.Csr.in_wt.(u) c.Csr.in_wt.(v) in
        if cmp <> 0 then cmp else compare u v)
      sinks;
    Array.fold_left
      (fun best v ->
        reset_flow t;
        let f = augment t ~dst:t.slot_of.(v) ~limit:best in
        if f < best then f else best)
      infinity sinks
  end

(* ---- (re)initialization ----------------------------------------------- *)

(* Load [csr] into [t] from scratch: identity slot translation, one pair
   per edge, no flow. *)
let load t (c : Csr.t) ~src =
  let n = c.Csr.n and m = c.Csr.m in
  t.snap <- c;
  t.src_ext <- src;
  t.n_ext <- n;
  t.nslots <- max (src + 1) n;
  ensure_slots t t.nslots;
  Hashtbl.reset t.pair_of;
  t.npairs <- 0;
  t.tick <- 0;
  for s = 0 to Array.length t.ext_of - 1 do
    t.ext_of.(s) <- (if s < n then s else -1)
  done;
  t.slot_of <- Array.init n (fun v -> v);
  Array.fill t.adj_len 0 (Array.length t.adj_len) 0;
  ensure_pairs t m;
  for u = 0 to n - 1 do
    for e = c.Csr.row_off.(u) to c.Csr.row_off.(u + 1) - 1 do
      ignore (add_pair t ~us:u ~vs:c.Csr.col.(e) ~w:c.Csr.w.(e))
    done
  done;
  t.value_ <- infinity;
  t.sink_slot <- -1

let cold_solve t =
  let c = t.snap in
  if c.Csr.n <= 1 then begin
    t.warm <- true;
    t.value_ <- infinity;
    t.sink_slot <- -1
  end
  else if Csr.is_acyclic c then begin
    t.warm <- true;
    let v = critical_sink_ext c ~src:t.src_ext in
    t.sink_slot <- t.slot_of.(v);
    reset_flow t;
    t.value_ <- augment t ~dst:t.sink_slot ~limit:infinity
  end
  else begin
    t.warm <- false;
    t.sink_slot <- -1;
    t.value_ <- solve_full t
  end

let rebase t c =
  load t c ~src:t.src_ext;
  cold_solve t;
  t.last_ <- { no_stats with rebased = true; cold = not t.warm }

let create ?(eps = 1e-12) (c : Csr.t) ~src =
  if src < 0 || src >= max 1 c.Csr.n then
    invalid_arg "Incremental: source out of range";
  let t =
    {
      eps;
      snap = c;
      src_ext = src;
      n_ext = c.Csr.n;
      nslots = 0;
      ext_of = [||];
      slot_of = [||];
      src_slot = src;
      sink_slot = -1;
      npairs = 0;
      tl = [||];
      hd = [||];
      capn = [||];
      resid = [||];
      stamp = [||];
      tick = 0;
      pair_of = Hashtbl.create 64;
      adj = [||];
      adj_len = [||];
      level = [||];
      cur = [||];
      queue = [||];
      path = [||];
      dev = [||];
      warm = true;
      value_ = infinity;
      last_ = no_stats;
    }
  in
  load t c ~src;
  cold_solve t;
  t.last_ <- { no_stats with rebased = true; cold = not t.warm };
  t

(* ---- the incremental event path --------------------------------------- *)

(* Clamp the flow on pair [k] down to [f'] and book the conservation
   deviation at its endpoints. *)
let cut_flow_to t k f' =
  let f = t.resid.((2 * k) + 1) in
  let d = f -. f' in
  t.resid.((2 * k) + 1) <- f';
  t.resid.(2 * k) <- t.capn.(k) -. f';
  t.dev.(t.tl.(k)) <- t.dev.(t.tl.(k)) +. d;
  t.dev.(t.hd.(k)) <- t.dev.(t.hd.(k)) -. d;
  d

(* Drain conservation deviations with two sweeps along the topological
   order of the new snapshot. Reverse sweep: a node with excess inflow
   cuts flow on incoming pairs, pushing the excess to predecessors
   (visited later in the sweep) until it pools at the source. Forward
   sweep: a node with excess outflow cuts outgoing pairs, pushing the
   deficit to successors until it pools at the sink. Both invariants
   hold throughout: a node with deviation d > 0 carries at least d
   units of incoming flow, and symmetrically for deficits, so the cuts
   never run dry. Only flow-carrying arcs are walked — exactly the flow
   decomposition through the repaired region. Returns the flow refunded
   at the sink (the drop in the warm value). *)
let drain_deviations t order_slots =
  let tol = 1e-9 in
  let n = Array.length order_slots in
  for i = n - 1 downto 0 do
    let u = order_slots.(i) in
    if u <> t.src_slot && u <> t.sink_slot && t.dev.(u) > tol then begin
      let row = t.adj.(u) and len = t.adj_len.(u) in
      let p = ref 0 in
      while t.dev.(u) > tol && !p < len do
        let arc = row.(!p) in
        if arc land 1 = 1 then begin
          let k = arc lsr 1 in
          let f = t.resid.(arc) in
          if f > 0. then
            ignore (cut_flow_to t k (f -. Float.min f t.dev.(u)))
        end;
        incr p
      done
    end
  done;
  for i = 0 to n - 1 do
    let u = order_slots.(i) in
    if u <> t.src_slot && u <> t.sink_slot && t.dev.(u) < -.tol then begin
      let row = t.adj.(u) and len = t.adj_len.(u) in
      let p = ref 0 in
      while t.dev.(u) < -.tol && !p < len do
        let arc = row.(!p) in
        if arc land 1 = 0 then begin
          let k = arc lsr 1 in
          let f = t.resid.(arc lor 1) in
          if f > 0. then
            ignore (cut_flow_to t k (f -. Float.min f (-.t.dev.(u))))
        end;
        incr p
      done
    end
  done

(* Net warm flow into the sink, read off its adjacency row. *)
let sink_inflow t =
  if t.sink_slot < 0 then infinity
  else begin
    let acc = ref 0. in
    let row = t.adj.(t.sink_slot) and len = t.adj_len.(t.sink_slot) in
    for p = 0 to len - 1 do
      let arc = row.(p) in
      let k = arc lsr 1 in
      let f = t.resid.((2 * k) lor 1) in
      if arc land 1 = 1 then acc := !acc +. f else acc := !acc -. f
    done;
    !acc
  end

let apply t ~map (c : Csr.t) =
  if Array.length map <> t.n_ext then
    invalid_arg "Incremental.apply: node map length does not match";
  if map.(t.src_ext) < 0 then
    invalid_arg "Incremental.apply: the source cannot depart";
  (* 1. Re-translate slots under the event's renumbering. *)
  let n' = c.Csr.n in
  let slot_of' = Array.make (max 1 n') (-1) in
  for s = 0 to t.nslots - 1 do
    let e = t.ext_of.(s) in
    if e >= 0 then begin
      let e' = map.(e) in
      t.ext_of.(s) <- e';
      if e' >= 0 then slot_of'.(e') <- s
    end
  done;
  for e' = 0 to n' - 1 do
    if slot_of'.(e') < 0 then begin
      let s = t.nslots in
      ensure_slots t (s + 1);
      t.nslots <- s + 1;
      t.ext_of.(s) <- e';
      t.adj_len.(s) <- 0;
      slot_of'.(e') <- s
    end
  done;
  t.slot_of <- slot_of';
  t.src_ext <- map.(t.src_ext);
  t.n_ext <- n';
  t.snap <- c;
  (* Arena hygiene: when tombstones or stale pairs dominate, rebuilding
     from the snapshot is cheaper than dragging them through every
     future diff. *)
  if
    (not t.warm)
    || t.nslots > (2 * n') + 8
    || t.npairs > (4 * c.Csr.m) + 8
    || not (Csr.is_acyclic c)
  then rebase t c
  else begin
    (* 2. O(m) capacity diff against the new snapshot. *)
    t.tick <- t.tick + 1;
    Array.fill t.dev 0 t.nslots 0.;
    let refunded = ref 0. in
    let appended = ref 0 in
    for u = 0 to n' - 1 do
      let us = t.slot_of.(u) in
      for e = c.Csr.row_off.(u) to c.Csr.row_off.(u + 1) - 1 do
        let vs = t.slot_of.(c.Csr.col.(e)) in
        let w = c.Csr.w.(e) in
        match Hashtbl.find_opt t.pair_of (us, vs) with
        | None ->
          ignore (add_pair t ~us ~vs ~w);
          incr appended
        | Some k ->
          t.stamp.(k) <- t.tick;
          if t.capn.(k) <> w then begin
            t.capn.(k) <- w;
            let f = t.resid.((2 * k) + 1) in
            if f > w then refunded := !refunded +. cut_flow_to t k w
            else t.resid.(2 * k) <- w -. f
          end
      done
    done;
    (* 3. Stamp sweep: pairs absent from the snapshot lose their
       capacity — this retires every arc of a tombstoned slot too. *)
    for k = 0 to t.npairs - 1 do
      if t.stamp.(k) <> t.tick && t.capn.(k) > 0. then begin
        t.capn.(k) <- 0.;
        let f = t.resid.((2 * k) + 1) in
        if f > 0. then refunded := !refunded +. cut_flow_to t k 0.
        else t.resid.(2 * k) <- 0.
      end
    done;
    if n' <= 1 then begin
      t.sink_slot <- -1;
      t.value_ <- infinity;
      t.last_ <-
        {
          no_stats with
          refunded = !refunded;
          appended_pairs = !appended;
        }
    end
    else begin
      (* 4. Track the critical sink before draining, so deviations at
         the *current* sink are treated as value changes, not repaired
         away. A moved sink invalidates the warm flow entirely. *)
      let sink_ext = critical_sink_ext c ~src:t.src_ext in
      let sink_slot' = t.slot_of.(sink_ext) in
      let sink_moved = sink_slot' <> t.sink_slot in
      if sink_moved then begin
        t.sink_slot <- sink_slot';
        reset_flow t;
        t.value_ <- 0.
      end
      else begin
        (* Drain imbalances along the new snapshot's topological order
           (the graph is acyclic here — checked above). *)
        match Csr.topo_order c with
        | None -> assert false
        | Some order ->
          let order_slots = Array.map (fun v -> t.slot_of.(v)) order in
          drain_deviations t order_slots;
          t.value_ <- sink_inflow t
      end;
      (* 5. Re-augment the warm residual back to a maximum. *)
      let added = augment t ~dst:t.sink_slot ~limit:infinity in
      t.value_ <- t.value_ +. added;
      t.last_ <-
        {
          refunded = !refunded;
          augmented = added;
          appended_pairs = !appended;
          rebased = false;
          cold = false;
          sink_moved;
        }
    end
  end

(* ---- queries ----------------------------------------------------------- *)

let value t = t.value_
let size t = t.n_ext
let is_warm t = t.warm
let last_stats t = t.last_
let achieves_rate t ~rate = t.value_ >= rate

let critical_sink t =
  if t.sink_slot < 0 then -1 else t.ext_of.(t.sink_slot)

(* Net warm flow into an arbitrary external node — [sink_inflow]
   generalized to any slot. Conserved interior nodes balance to ~0; the
   certificate-trusting auditor reads exactly the disturbed nodes. *)
let node_balance t ~node =
  if node < 0 || node >= t.n_ext then
    invalid_arg "Incremental.node_balance: node out of range";
  if not t.warm then 0.
  else begin
    let s = t.slot_of.(node) in
    let acc = ref 0. in
    let row = t.adj.(s) and len = t.adj_len.(s) in
    for p = 0 to len - 1 do
      let arc = row.(p) in
      let k = arc lsr 1 in
      let f = t.resid.((2 * k) lor 1) in
      if arc land 1 = 1 then acc := !acc +. f else acc := !acc -. f
    done;
    !acc
  end

let identity_map n = Array.init n (fun v -> v)
