type t = {
  scheme : Scheme.t;
  order : int array;
}

let scheme t = t.scheme
let instance t = Scheme.instance t.scheme
let rate t = Scheme.rate t.scheme
let graph t = Scheme.graph t.scheme
let order t = t.order

let of_word inst ~rate word =
  { scheme = Low_degree.build inst ~rate word; order = Word.to_order word inst }

let build ?rate inst =
  match rate with
  | None ->
    let t, w = Greedy.optimal_acyclic inst in
    let rate = t *. (1. -. (4. *. Util.eps)) in
    (* Re-derive the witness at the backed-off rate so word and rate are
       mutually consistent. *)
    let word = match Greedy.test inst ~rate with Some w' -> w' | None -> w in
    of_word inst ~rate word
  | Some rate -> begin
    match Greedy.test inst ~rate with
    | None -> invalid_arg "Overlay.build: rate is not feasible"
    | Some word -> of_word inst ~rate word
  end

let verified_rate t =
  if Scheme.size t.scheme <= 1 then infinity else Scheme.throughput t.scheme

let positions t =
  let pos = Array.make (Array.length t.order) (-1) in
  Array.iteri (fun i v -> pos.(v) <- i) t.order;
  pos

let well_formed t =
  let size = Scheme.size t.scheme in
  Array.length t.order = size
  && t.order.(0) = 0
  && begin
    let seen = Array.make size false in
    Array.for_all
      (fun v ->
        v >= 0 && v < size
        &&
        if seen.(v) then false
        else begin
          seen.(v) <- true;
          true
        end)
      t.order
  end
  && begin
    let pos = positions t in
    Flowgraph.Graph.fold_edges
      (fun ~src ~dst _w ok -> ok && pos.(src) < pos.(dst))
      (Scheme.graph t.scheme) true
  end
  &&
  (* Structural validity is a [Scheme.create] invariant; the memoized
     report re-certifies it for free (and flags cap violations the same
     tolerant way the legacy [Verify.valid] check did). *)
  let rep = Scheme.report t.scheme in
  rep.Verify.bandwidth_ok && rep.Verify.firewall_ok && rep.Verify.bin_ok

let edge_distance a b =
  let eps = 1e-9 in
  let differs w w' = Float.abs (w -. w') > eps *. Float.max 1. (Float.max w w') in
  let count = ref 0 in
  Flowgraph.Graph.iter_edges
    (fun ~src ~dst w ->
      if differs w (Flowgraph.Graph.edge_weight b ~src ~dst) then incr count)
    a;
  (* Edges present only in b. *)
  Flowgraph.Graph.iter_edges
    (fun ~src ~dst _w ->
      if Flowgraph.Graph.edge_weight a ~src ~dst = 0. then incr count)
    b;
  !count

let of_scheme scheme ~order =
  if Array.length order <> Scheme.size scheme then
    invalid_arg "Overlay.of_scheme: order length mismatch";
  if order.(0) <> 0 then invalid_arg "Overlay.of_scheme: order must start at the source";
  { scheme; order = Array.copy order }
