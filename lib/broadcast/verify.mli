(** Verification oracle for broadcast schemes.

    Independent of the constructions: checks a candidate scheme (a weighted
    communication graph) against the paper's definition — bandwidth
    constraints [sum_j c i j <= b i], firewall constraints
    [c i j = 0 for i, j guarded], optional incoming caps, and throughput
    [T = min_i maxflow (C0 -> Ci)] computed with the {!Flowgraph.Maxflow}
    substrate. Every algorithm in this library is tested against this
    oracle.

    {2 Oracle vs fast path}

    Two interchangeable throughput engines back the oracle:

    - {e fast path} (acyclic schemes): the broadcast throughput of an
      acyclic graph equals the minimal incoming rate over non-source nodes
      ({!Flowgraph.Topo.min_incoming_cut}) — one O(V + E) pass, exact;
    - {e generic} (cyclic schemes): batch Dinic
      ({!Flowgraph.Maxflow.min_broadcast_flow}) sharing one residual
      network across destinations, with early exit at the running minimum.

    Both agree with one plain Dinic run per destination up to the float
    tolerance of iterative augmentation; the differential suite
    [test/test_verify_fast.ml] enforces agreement within [1e-6] relative
    error on random acyclic and cyclic schemes. *)

type report = {
  bandwidth_ok : bool;  (** no node exceeds its outgoing bandwidth *)
  firewall_ok : bool;  (** no guarded-to-guarded edge *)
  bin_ok : bool;  (** incoming caps respected ([true] when absent) *)
  source_receives : bool;  (** [true] iff some edge enters the source (legal but wasteful) *)
  acyclic : bool;
  throughput : float;
      (** [min over i >= 1 of maxflow (C0 -> Ci)]; [infinity] when the
          instance has no receiver *)
  fast_path : bool;
      (** [true] when the throughput came from the O(V + E) acyclic cut
          computation rather than max-flow *)
}

val flow_slack : float -> float
(** [flow_slack x] is the library-wide tolerance for comparing flow
    values near magnitude [x]: [1e-6 *. Float.max 1. (Float.abs x)].
    Max-flow values are iterative float computations whose bits depend
    on augmentation order, so every value comparison — scheme targets,
    churn audits, the incremental-vs-from-scratch cross-check — uses
    this same relative slack. *)

val row_violation :
  ?eps:float ->
  ?bin:bool ->
  Platform.Instance.t ->
  Flowgraph.Csr.t ->
  rows:int array ->
  string option
(** [row_violation inst c ~rows] is the delta-scoped structural pass:
    bandwidth caps and the guarded-to-guarded firewall checked on the
    listed rows only (and their download caps when [bin] is [true];
    default [false], matching the [Scheme.create] invariant set), with
    everything else trusted. [Some msg] describes the first violation
    found, [None] means the disturbed region is clean. Cost is
    [O(sum of row degrees)] — the certificate-trusting fast path used by
    [Scheme.apply_delta] and the churn auditor's certificate level.
    Raises [Invalid_argument] on a node-count mismatch or an
    out-of-range row. *)

val check : ?eps:float -> Platform.Instance.t -> Flowgraph.Graph.t -> report
(** [check inst g] evaluates all properties. [eps] is the constraint
    tolerance (default {!Util.eps}), applied relatively. The graph must
    have exactly [Instance.size inst] nodes. Freezes one
    {!Flowgraph.Csr} snapshot internally; callers that already hold one
    (e.g. through [Scheme.snapshot]) should use {!check_csr}. *)

val check_csr : ?eps:float -> Platform.Instance.t -> Flowgraph.Csr.t -> report
(** [check_csr inst c] — {!check} on a prebuilt snapshot: no graph freeze,
    every structural read is an array lookup. This is the engine behind
    the memoized [Scheme.report]. *)

val check_batch :
  ?eps:float ->
  (Platform.Instance.t * Flowgraph.Graph.t) list ->
  report list
(** [check_batch pairs] verifies many schemes in one call, in order —
    the entry point used by the experiment drivers and the benchmark
    harness. Each scheme gets the structure-aware engine of {!check}. *)

val throughput : Flowgraph.Graph.t -> float
(** Throughput of a scheme rooted at node [0], structure-aware
    ({!Flowgraph.Maxflow.broadcast_throughput}); [infinity] on a
    single-node graph. *)

val valid : ?eps:float -> Platform.Instance.t -> Flowgraph.Graph.t -> bool
(** Structural validity only: bandwidth, firewall and incoming caps. Does
    not compute any flow. *)

val achieves :
  ?eps:float -> Platform.Instance.t -> Flowgraph.Graph.t -> rate:float -> bool
(** [achieves inst g ~rate] — structurally valid and throughput at least
    [rate] within a relative [1e-6] slack on [rate] (max-flow values are
    iterative float computations). The flow computation stops as soon as
    the relaxed target is certified for every destination. *)
