open Platform

(* FIFO pools of senders with remaining upload capacity. A queue cell is
   mutable so partial draws do not reallocate. *)
type sender = { node : int; mutable remaining : float }

let draw pool graph ~dst ~need ~cut =
  (* Take [need] units from the pool head-first, recording edges. *)
  let rec go need =
    if need > cut then
      match Queue.peek_opt pool with
      | None -> need
      | Some s ->
        if s.remaining <= cut then begin
          ignore (Queue.pop pool);
          go need
        end
        else begin
          let amount = Float.min need s.remaining in
          Flowgraph.Graph.add_edge graph ~src:s.node ~dst amount;
          s.remaining <- s.remaining -. amount;
          if s.remaining <= cut then ignore (Queue.pop pool);
          go (need -. amount)
        end
    else 0.
  in
  go need

let build_graph inst ~rate w =
  if not (Instance.sorted inst) then invalid_arg "Low_degree.build: instance must be sorted";
  if not (Word.complete w inst) then invalid_arg "Low_degree.build: incomplete word";
  if rate <= 0. then invalid_arg "Low_degree.build: rate must be positive";
  let b = inst.Instance.bandwidth in
  let graph = Flowgraph.Graph.create (Instance.size inst) in
  (* Comfortably above the feasibility tolerance (1e-9 relative) so that
     round-off residues in the pools neither fail the construction nor
     materialize as micro-edges that would inflate outdegrees. *)
  let cut = 1e-7 *. rate in
  let open_pool = Queue.create () and guarded_pool = Queue.create () in
  Queue.push { node = 0; remaining = b.(0) } open_pool;
  let next_open = ref 1 and next_guarded = ref (inst.Instance.n + 1) in
  let feed letter =
    match letter with
    | Instance.Guarded ->
      let v = !next_guarded in
      incr next_guarded;
      let missing = draw open_pool graph ~dst:v ~need:rate ~cut in
      if missing > cut then
        invalid_arg "Low_degree.build: word is not feasible at this rate";
      Queue.push { node = v; remaining = b.(v) } guarded_pool
    | Instance.Open ->
      let v = !next_open in
      incr next_open;
      (* Conservative: guarded supply first, then the earliest opens. *)
      let after_guarded = draw guarded_pool graph ~dst:v ~need:rate ~cut in
      let missing = draw open_pool graph ~dst:v ~need:after_guarded ~cut in
      if missing > cut then
        invalid_arg "Low_degree.build: word is not feasible at this rate";
      Queue.push { node = v; remaining = b.(v) } open_pool
  in
  Array.iter feed w;
  graph

(* Worst promised class of Theorem 4.1: guarded +1, one open node +3, the
   rest +2; open-only instances degenerate to Algorithm 1's +1. *)
let promised_bound inst = if inst.Instance.m = 0 then 1 else 3

let build inst ~rate w =
  let g = build_graph inst ~rate w in
  Scheme.create
    ~provenance:
      {
        Scheme.algorithm = Scheme.Theorem41;
        rate;
        degree_bound = Some (promised_bound inst);
      }
    inst g

let build_optimal inst =
  let rate, w = Greedy.optimal_acyclic inst in
  (* Back off marginally below the bisection value so that float round-off
     in the pool accounting cannot starve the last receiver. *)
  let rate = rate *. (1. -. (4. *. Util.eps)) in
  (rate, build inst ~rate w)
