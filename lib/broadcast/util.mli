(** Floating-point conventions shared by the broadcast algorithms.

    Bandwidths and rates are floats; every feasibility comparison in this
    library goes through the tolerant comparisons below with the library
    default [eps = 1e-9] (relative to the magnitude of the operands). *)

val eps : float
(** Default tolerance, [1e-9]. Comparisons are relative above magnitude 1
    and absolute below it, so bandwidths should be expressed at scales
    between roughly [1e-3] and [1e9] (rescale units otherwise); far below
    that, results degrade gracefully to ~0.1% accuracy. *)

val feq : ?eps:float -> float -> float -> bool
(** [feq a b] — equal up to [eps * max (1, |a|, |b|)]. *)

val fle : ?eps:float -> float -> float -> bool
(** [fle a b] — [a <= b] up to tolerance. *)

val flt : ?eps:float -> float -> float -> bool
(** [flt a b] — [a < b] strictly beyond tolerance. *)

val fge : ?eps:float -> float -> float -> bool
val fgt : ?eps:float -> float -> float -> bool

val is_zero : ?eps:float -> float -> bool

val ceil_ratio : float -> float -> int
(** [ceil_ratio b t] is the degree lower bound [ceil (b / t)] of the paper,
    computed tolerantly so that [b] within [eps] of an exact multiple of
    [t] does not round up spuriously. Requires [t > 0] and [b >= 0].
    [ceil_ratio 0 t = 0]. *)

val prefix_sums : float array -> float array
(** [prefix_sums b] has length [Array.length b + 1]:
    [ps.(k) = b.(0) + ... + b.(k - 1)], so the paper's
    [S_k = b_0 + ... + b_k] is [ps.(k + 1)]. *)

type dichotomy = {
  value : float;
      (** best confirmed-feasible point — [lo] verbatim when even [lo] is
          infeasible (check {!field-feasible}) *)
  feasible : bool;  (** [value] passed the feasibility probe *)
  probes : int;  (** feasibility evaluations actually performed *)
  converged : bool;
      (** the bracket closed below [epsilon] (or an endpoint decided the
          search) rather than the iteration budget running out *)
}

val dichotomic_search :
  ?iterations:int ->
  ?epsilon:float ->
  lo:float ->
  hi:float ->
  (float -> bool) ->
  dichotomy
(** [dichotomic_search ~lo ~hi feasible] bisects for the supremum of
    feasible values in [\[lo, hi\]], assuming [feasible] is
    downward-closed (monotone). Stops early once the bracket width drops
    below [epsilon * max (1, |lo|, |hi|)] (default [epsilon = 1e-12],
    ~40 probes from a unit-scale interval) or after [iterations]
    bisections (default 100), whichever comes first. If [feasible hi]
    holds the answer is [hi]; if [feasible lo] fails the result carries
    [feasible = false] so callers can tell an infeasible interval from a
    converged answer. *)

val dichotomic_max :
  ?iterations:int -> ?epsilon:float -> lo:float -> hi:float -> (float -> bool) -> float
(** [(dichotomic_search ... feasible).value] — the historical interface.
    Prefer {!dichotomic_search} where infeasibility must be detected. *)
