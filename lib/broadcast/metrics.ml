open Platform

type degree_report = {
  degrees : int array;
  excess : int array;
  max_excess : int;
  max_excess_open : int option;
  max_excess_guarded : int option;
  opens_above : int -> int;
}

(* Shared body: the graph only enters through its outdegree profile, so
   one implementation serves the hashtable view, the CSR snapshot and the
   scheme artifact. *)
let degree_report_of inst ~t degrees =
  let size = Instance.size inst in
  if Array.length degrees <> size then
    invalid_arg "Metrics.degree_report: node count mismatch";
  if t <= 0. then invalid_arg "Metrics.degree_report: t must be positive";
  let excess =
    Array.init size (fun i ->
        degrees.(i) - Util.ceil_ratio inst.Instance.bandwidth.(i) t)
  in
  (* [None] for an empty node class — a [min_int] sentinel would leak
     into experiment tables as a genuine-looking excess. *)
  let fold_class p =
    let acc = ref None in
    for i = 0 to size - 1 do
      if p i then
        acc := Some (match !acc with None -> excess.(i) | Some e -> max e excess.(i))
    done;
    !acc
  in
  (* The source always exists, so the overall maximum is total. *)
  let max_excess = Option.get (fold_class (fun _ -> true)) in
  let max_excess_open = fold_class (Instance.is_open inst) in
  let max_excess_guarded = fold_class (Instance.is_guarded inst) in
  let opens_above k =
    let count = ref 0 in
    for i = 0 to size - 1 do
      if Instance.is_open inst i && excess.(i) > k then incr count
    done;
    !count
  in
  { degrees; excess; max_excess; max_excess_open; max_excess_guarded; opens_above }

let degree_report inst ~t g =
  degree_report_of inst ~t (Array.init (Flowgraph.Graph.node_count g) (Flowgraph.Graph.out_degree g))

let degree_report_csr inst ~t c =
  degree_report_of inst ~t (Array.init (Flowgraph.Csr.node_count c) (Flowgraph.Csr.out_degree c))

let scheme_report s =
  degree_report_csr (Scheme.instance s) ~t:(Scheme.rate s) (Scheme.snapshot s)

let depth g =
  let d = Flowgraph.Topo.depth_from g 0 in
  Array.fold_left max 0 d

let depth_csr c =
  match Flowgraph.Csr.topo_order c with
  | None -> invalid_arg "Metrics.depth_csr: graph has a cycle"
  | Some order ->
    let n = Flowgraph.Csr.node_count c in
    let d = Array.make n (-1) in
    if n > 0 then d.(0) <- 0;
    Array.iter
      (fun v ->
        if d.(v) >= 0 then
          for e = c.Flowgraph.Csr.row_off.(v) to c.Flowgraph.Csr.row_off.(v + 1) - 1 do
            let u = c.Flowgraph.Csr.col.(e) in
            if d.(v) + 1 > d.(u) then d.(u) <- d.(v) + 1
          done)
      order;
    Array.fold_left max 0 d

let scheme_depth s = depth_csr (Scheme.snapshot s)

let bottleneck g =
  let w, v = Flowgraph.Topo.min_incoming_cut g ~src:0 in
  (v, w)

let bottleneck_csr c =
  let w, v = Flowgraph.Csr.min_incoming_cut c ~src:0 in
  (v, w)

let scheme_bottleneck s = bottleneck_csr (Scheme.snapshot s)

let max_outdegree g =
  let best = ref 0 in
  for i = 0 to Flowgraph.Graph.node_count g - 1 do
    best := max !best (Flowgraph.Graph.out_degree g i)
  done;
  !best

let max_outdegree_csr c =
  let best = ref 0 in
  for i = 0 to Flowgraph.Csr.node_count c - 1 do
    best := max !best (Flowgraph.Csr.out_degree c i)
  done;
  !best
