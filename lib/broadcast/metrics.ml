open Platform

type degree_report = {
  degrees : int array;
  excess : int array;
  max_excess : int;
  max_excess_open : int option;
  max_excess_guarded : int option;
  opens_above : int -> int;
}

let degree_report inst ~t g =
  let size = Instance.size inst in
  if Flowgraph.Graph.node_count g <> size then
    invalid_arg "Metrics.degree_report: node count mismatch";
  if t <= 0. then invalid_arg "Metrics.degree_report: t must be positive";
  let degrees = Array.init size (Flowgraph.Graph.out_degree g) in
  let excess =
    Array.init size (fun i ->
        degrees.(i) - Util.ceil_ratio inst.Instance.bandwidth.(i) t)
  in
  (* [None] for an empty node class — a [min_int] sentinel would leak
     into experiment tables as a genuine-looking excess. *)
  let fold_class p =
    let acc = ref None in
    for i = 0 to size - 1 do
      if p i then
        acc := Some (match !acc with None -> excess.(i) | Some e -> max e excess.(i))
    done;
    !acc
  in
  (* The source always exists, so the overall maximum is total. *)
  let max_excess = Option.get (fold_class (fun _ -> true)) in
  let max_excess_open = fold_class (Instance.is_open inst) in
  let max_excess_guarded = fold_class (Instance.is_guarded inst) in
  let opens_above k =
    let count = ref 0 in
    for i = 0 to size - 1 do
      if Instance.is_open inst i && excess.(i) > k then incr count
    done;
    !count
  in
  { degrees; excess; max_excess; max_excess_open; max_excess_guarded; opens_above }

let depth g =
  let d = Flowgraph.Topo.depth_from g 0 in
  Array.fold_left max 0 d

let bottleneck g =
  let w, v = Flowgraph.Topo.min_incoming_cut g ~src:0 in
  (v, w)

let max_outdegree g =
  let best = ref 0 in
  for i = 0 to Flowgraph.Graph.node_count g - 1 do
    best := max !best (Flowgraph.Graph.out_degree g i)
  done;
  !best
