let eps = 1e-9

let scale a b = Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let feq ?(eps = eps) a b = Float.abs (a -. b) <= eps *. scale a b
let fle ?(eps = eps) a b = a -. b <= eps *. scale a b
let flt ?(eps = eps) a b = b -. a > eps *. scale a b
let fge ?eps a b = fle ?eps b a
let fgt ?eps a b = flt ?eps b a
let is_zero ?eps x = feq ?eps x 0.

let ceil_ratio b t =
  if t <= 0. then invalid_arg "Util.ceil_ratio: rate must be positive";
  if b < 0. then invalid_arg "Util.ceil_ratio: bandwidth must be non-negative";
  let q = b /. t in
  int_of_float (Float.ceil (q -. (eps *. Float.max 1. q)))

let prefix_sums b =
  let k = Array.length b in
  let ps = Array.make (k + 1) 0. in
  for i = 0 to k - 1 do
    ps.(i + 1) <- ps.(i) +. b.(i)
  done;
  ps

type dichotomy = {
  value : float;
  feasible : bool;
  probes : int;
  converged : bool;
}

let dichotomic_search ?(iterations = 100) ?(epsilon = 1e-12) ~lo ~hi feasible =
  if hi < lo then invalid_arg "Util.dichotomic_max: empty interval";
  let width_done lo hi = hi -. lo <= epsilon *. scale lo hi in
  if feasible hi then { value = hi; feasible = true; probes = 1; converged = true }
  else if not (feasible lo) then
    { value = lo; feasible = false; probes = 2; converged = true }
  else begin
    (* Invariant: feasible lo, not (feasible hi). Each probe is typically
       an O(n + m) GreedyTest pass, so stop as soon as the bracket is
       below relative [epsilon] instead of always burning the full
       [iterations] budget. *)
    let lo = ref lo and hi = ref hi and probes = ref 2 and left = ref iterations in
    while !left > 0 && not (width_done !lo !hi) do
      let mid = 0.5 *. (!lo +. !hi) in
      incr probes;
      decr left;
      if feasible mid then lo := mid else hi := mid
    done;
    { value = !lo; feasible = true; probes = !probes;
      converged = width_done !lo !hi }
  end

let dichotomic_max ?iterations ?epsilon ~lo ~hi feasible =
  (dichotomic_search ?iterations ?epsilon ~lo ~hi feasible).value
