open Platform
module G = Flowgraph.Graph

(* Move up to [amount] of flow entering [dst] over to [dst'], draining
   whole in-edges first so at most one sender's outdegree grows. *)
let redirect_incoming g ~dst ~dst' ~amount ~cut =
  let edges =
    (* Largest weights first: whole edges get drained before any partial
       redirect, keeping the degree increase to a single sender. *)
    List.sort (fun (_, w1) (_, w2) -> Float.compare w2 w1) (G.in_edges g dst)
  in
  let rec go remaining = function
    | [] ->
      if remaining > cut then
        invalid_arg "Cyclic_open: internal error (redirect underflow)"
    | (src, w) :: rest ->
      if remaining <= cut then ()
      else begin
        let take = Float.min w remaining in
        G.add_edge g ~src ~dst (-.take);
        G.add_edge g ~src ~dst:dst' take;
        go (remaining -. take) rest
      end
  in
  go amount edges

let build ?t inst =
  if inst.Instance.m <> 0 then invalid_arg "Cyclic_open.build: instance has guarded nodes";
  if not (Instance.sorted inst) then invalid_arg "Cyclic_open.build: instance must be sorted";
  let n = inst.Instance.n in
  if n < 1 then invalid_arg "Cyclic_open.build: need n >= 1";
  let t_opt = Bounds.cyclic_open_optimal inst in
  let t = Option.value ~default:t_opt t in
  if t <= 0. then invalid_arg "Cyclic_open.build: t must be positive";
  if Util.fgt t t_opt then
    invalid_arg "Cyclic_open.build: t exceeds the optimal cyclic throughput";
  match Acyclic_open.first_deficit inst ~t with
  | None -> Acyclic_open.build ~t inst
  | Some i0 ->
    let b = inst.Instance.bandwidth in
    let ps = Util.prefix_sums b in
    (* Missing flow at C(i): M i = i t - S_(i-1); S_(i-1) = ps.(i). *)
    let missing i = (float_of_int i *. t) -. ps.(i) in
    let cut = Util.eps *. t in
    (* Step 1: (i0 - 1)-partial solution — only C0 .. C(i0-1) spend. *)
    let g = Acyclic_open.build_prefix inst ~t ~senders:i0 in
    let m_i0 = missing i0 in
    (* Theorem 5.2's footnote: T <= b0 makes c(0, 1) = T >= M(i0). *)
    assert (G.edge_weight g ~src:0 ~dst:1 >= m_i0 -. cut);
    let u = 0 and v = 1 in
    if i0 = n then begin
      (* No successor: alpha = beta = 0, R(i0) stays unused. *)
      G.add_edge g ~src:u ~dst:v (-.m_i0);
      G.add_edge g ~src:u ~dst:i0 m_i0;
      G.add_edge g ~src:i0 ~dst:v m_i0
    end
    else begin
      (* Initial case: insert C(i0) and C(i0 + 1) together. *)
      let m_i1 = missing (i0 + 1) in
      let r_i0 = b.(i0) -. m_i0 in
      let alpha = Float.max 0. (m_i1 -. m_i0) in
      let beta = m_i1 -. alpha in
      redirect_incoming g ~dst:i0 ~dst':(i0 + 1) ~amount:alpha ~cut;
      G.add_edge g ~src:u ~dst:v (-.m_i0);
      G.add_edge g ~src:u ~dst:i0 m_i0;
      G.add_edge g ~src:i0 ~dst:(i0 + 1) (r_i0 +. beta);
      G.add_edge g ~src:i0 ~dst:v (m_i0 -. beta);
      G.add_edge g ~src:(i0 + 1) ~dst:v beta;
      G.add_edge g ~src:(i0 + 1) ~dst:i0 alpha;
      (* Induction: insert C(i+1) into the i-partial solution. *)
      for i = i0 + 1 to n - 1 do
        let m_i = missing i and m_i1 = missing (i + 1) in
        let r_i = b.(i) -. m_i in
        let c_back = G.edge_weight g ~src:i ~dst:(i - 1) in
        let alpha = Float.max 0. (m_i1 -. c_back) in
        let beta = m_i1 -. alpha in
        G.add_edge g ~src:i ~dst:(i + 1) (r_i +. beta);
        G.add_edge g ~src:(i - 1) ~dst:i (-.alpha);
        G.add_edge g ~src:(i - 1) ~dst:(i + 1) alpha;
        G.add_edge g ~src:(i + 1) ~dst:i alpha;
        G.add_edge g ~src:i ~dst:(i - 1) (-.beta);
        G.add_edge g ~src:(i + 1) ~dst:(i - 1) beta
      done
    end;
    Scheme.create
      ~provenance:{ Scheme.algorithm = Scheme.Theorem52; rate = t; degree_bound = Some 2 }
      inst g
