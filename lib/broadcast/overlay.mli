(** A built broadcast overlay: a verified {!Scheme} artifact plus a
    topological order of its nodes, bundled so that dynamic operations
    (the churn handling of {!Repair}) can reason about both consistently.

    Fresh overlays come from the Theorem 4.1 pipeline; repaired overlays
    keep the same shape but their order is no longer necessarily an
    increasing-order word (nodes joined under churn are appended last),
    and their scheme carries [Scheme.Repaired] provenance. *)

type t = {
  scheme : Scheme.t;  (** the structurally-validated artifact *)
  order : int array;
      (** topological order of the scheme: [order.(0) = 0] (the source),
          then every other node exactly once; every edge goes forward *)
}

val scheme : t -> Scheme.t
val instance : t -> Platform.Instance.t
(** [Scheme.instance (scheme t)] — always sorted. *)

val rate : t -> float
(** Target rate the scheme was built for ([Scheme.rate]). *)

val graph : t -> Flowgraph.Graph.t
(** The scheme's rated edge set; read-only (see {!Scheme.graph}). *)

val order : t -> int array

val of_scheme : Scheme.t -> order:int array -> t
(** [of_scheme s ~order] wraps an existing artifact with a node order
    (copied). Raises [Invalid_argument] if the order length does not
    match the scheme size or [order.(0) <> 0]; permutation and
    forward-edge properties are checked by {!well_formed}, not here. *)

val build : ?rate:float -> Platform.Instance.t -> t
(** [build inst] computes the optimal low-degree acyclic overlay
    (Theorem 4.1 pipeline); [rate] forces a sub-optimal target (must be
    feasible, or [Invalid_argument] is raised). The instance must be
    sorted. *)

val verified_rate : t -> float
(** Throughput from the scheme's memoized {!Scheme.report} (the honest
    number after repairs); [infinity] on a single-node overlay. *)

val positions : t -> int array
(** [pos] with [pos.(v)] the position of node [v] in [order]. *)

val well_formed : t -> bool
(** Structural sanity: order is a permutation starting at the source, all
    edges go forward in it, and the scheme's report confirms bandwidth,
    firewall and cap constraints. *)

val edge_distance : Flowgraph.Graph.t -> Flowgraph.Graph.t -> int
(** Number of edge insertions, deletions and re-weightings (beyond a 1e-9
    relative tolerance) separating two graphs — the churn cost of moving a
    live swarm from one overlay to another, every change being a TCP
    connection to open, close or re-shape. *)
