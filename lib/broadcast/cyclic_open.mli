(** Cyclic broadcast schemes for open-only instances (Theorem 5.2,
    Appendix X of the paper).

    For any target [t <= T* = min (b0, (b0 + O) / n)] the construction
    achieves throughput [t] with outdegrees bounded by
    [max (ceil (b i / t) + 2, 4)]:

    + run Algorithm 1 until the first deficit index [i0] — the smallest
      [i] with [S_(i-1) < i t] — producing an [(i0 - 1)]-partial solution
      in which nodes [C1 .. C(i0-1)] are fully served;
    + {e initial case}: insert [C(i0)] (and [C(i0+1)] when it exists) by
      rerouting the missing flow [M(i0) = i0 t - S(i0-1)] through an
      existing edge [(u, v) = (C0, C1)] and redirecting part of the supply
      of [C(i0)] toward [C(i0+1)], creating back-edges (the scheme becomes
      cyclic);
    + {e induction}: insert each subsequent node [C(i+1)] by diverting
      [alpha] of the [C(i-1) -> C(i)] flow and [beta] of the
      [C(i) -> C(i-1)] flow through [C(i+1)], with
      [alpha + beta = M(i+1)], maintaining
      [c (i+1) i + c i (i+1) = t] (property P1).

    When no deficit occurs the acyclic Algorithm 1 scheme is already
    optimal and returned as is. *)

val build : ?t:float -> Platform.Instance.t -> Scheme.t
(** [build inst] returns a scheme artifact of throughput [t] (default:
    [Bounds.cyclic_open_optimal inst]). Requires a sorted instance with
    [m = 0], [n >= 1] and [t <= T*] within tolerance. When a deficit
    occurs the provenance is [Scheme.Theorem52] (degree promise [+2]);
    otherwise the scheme comes straight from {!Acyclic_open.build} and
    keeps its [Scheme.Algorithm1] provenance. *)
