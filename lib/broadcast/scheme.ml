open Platform
module G = Flowgraph.Graph
module Csr = Flowgraph.Csr
module Json = Flowgraph.Json

type algorithm =
  | Algorithm1
  | Theorem41
  | Min_depth
  | Theorem52
  | Repaired of algorithm
  | Imported

type provenance = {
  algorithm : algorithm;
  rate : float;
  degree_bound : int option;
}

type t = {
  instance : Instance.t;
  snapshot : Csr.t;
  provenance : provenance;
  mutable graph : G.t option;
  mutable report : Verify.report option;
}

let create ?(eps = Util.eps) ~provenance inst g =
  let size = Instance.size inst in
  if G.node_count g <> size then
    invalid_arg "Scheme.create: graph node count does not match the instance";
  if not (Instance.sorted inst) then
    invalid_arg "Scheme.create: instance must be sorted";
  if not (Float.is_finite provenance.rate && provenance.rate > 0.) then
    invalid_arg "Scheme.create: target rate must be finite and positive";
  (* Freeze first: the immutable snapshot both decouples the artifact from
     later caller mutations (no defensive hashtable copy needed) and serves
     the invariant checks below from its cached weight arrays. Every
     consumer — verify, metrics, depth — reads this same snapshot. *)
  let snap = Csr.of_graph g in
  let b = inst.Instance.bandwidth in
  for i = 0 to size - 1 do
    if not (Util.fle ~eps (Csr.out_weight snap i) b.(i)) then
      invalid_arg
        (Printf.sprintf "Scheme.create: node %d exceeds its bandwidth (%g > %g)"
           i (Csr.out_weight snap i) b.(i))
  done;
  Csr.iter_edges
    (fun ~src ~dst _w ->
      if Instance.is_guarded inst src && Instance.is_guarded inst dst then
        invalid_arg
          (Printf.sprintf
             "Scheme.create: guarded-to-guarded edge C%d -> C%d violates the \
              firewall constraint"
             src dst))
    snap;
  (* Incoming caps are deliberately NOT an invariant: the paper's
     constructions optimize against upload bandwidth only, so a scheme can
     legitimately overrun a last-mile download cap — that shows up as
     [bin_ok = false] in the memoized report, like in [Verify.check]. *)
  { instance = inst; snapshot = snap; provenance; graph = None; report = None }

let apply_delta ?(eps = Util.eps) ~base ~provenance inst ~rows g =
  let size = Instance.size inst in
  let base_size = Instance.size base.instance in
  if G.node_count g <> size then
    invalid_arg "Scheme.apply_delta: graph node count does not match the instance";
  if size < base_size then
    invalid_arg "Scheme.apply_delta: instance may not shrink";
  if not (Instance.sorted inst) then
    invalid_arg "Scheme.apply_delta: instance must be sorted";
  if not (Float.is_finite provenance.rate && provenance.rate > 0.) then
    invalid_arg "Scheme.apply_delta: target rate must be finite and positive";
  let edges =
    Array.map
      (fun r ->
        if r < 0 || r >= size then
          invalid_arg "Scheme.apply_delta: row out of range";
        G.out_edges g r
        |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
        |> Array.of_list)
      rows
  in
  (* Re-freeze only the disturbed rows; everything else is blitted from
     the base snapshot, bit for bit. *)
  let snap = Csr.patch_rows ~n:size base.snapshot ~rows ~edges in
  (* Delta-scoped re-validation: the base artifact's constructor already
     certified the untouched rows, and the caller guarantees [rows]
     covers every node whose out-edges or bandwidth changed. *)
  (match Verify.row_violation ~eps inst snap ~rows with
  | Some msg -> invalid_arg ("Scheme.apply_delta: " ^ msg)
  | None -> ());
  { instance = inst; snapshot = snap; provenance; graph = None; report = None }

let instance s = s.instance

let graph s =
  (* Materialized from the frozen snapshot, so it carries the artifact's
     edge set whatever happened to the graph passed to [create]. The
     cached master is never handed out: callers get a fresh copy, so no
     caller-side mutation (a repair experiment editing the graph it was
     given, then re-reading the scheme) can ever desynchronize the
     mutable view from the frozen snapshot the verifiers read. *)
  let master =
    match s.graph with
    | Some g -> g
    | None ->
      let g = G.create (Csr.node_count s.snapshot) in
      Csr.iter_edges (fun ~src ~dst w -> G.add_edge g ~src ~dst w) s.snapshot;
      s.graph <- Some g;
      g
  in
  G.copy master

let provenance s = s.provenance
let rate s = s.provenance.rate
let size s = Instance.size s.instance
let edge_count s = Csr.edge_count s.snapshot
let snapshot s = s.snapshot

let report s =
  match s.report with
  | Some r -> r
  | None ->
    let r = Verify.check_csr s.instance s.snapshot in
    s.report <- Some r;
    r

let throughput s = (report s).Verify.throughput
let is_acyclic s = (report s).Verify.acyclic

let achieves_target s =
  let t = s.provenance.rate in
  (* Same relative slack as [Verify.achieves]: max-flow values are
     iterative float computations. *)
  throughput s >= t -. (1e-6 *. Float.max 1. (Float.abs t))

let equal a b =
  Instance.equal a.instance b.instance
  && G.equal ~eps:0. (graph a) (graph b)
  && a.provenance = b.provenance

let rec algorithm_name = function
  | Algorithm1 -> "algorithm1"
  | Theorem41 -> "theorem41"
  | Min_depth -> "min-depth"
  | Theorem52 -> "theorem52"
  | Repaired inner -> Printf.sprintf "repaired(%s)" (algorithm_name inner)
  | Imported -> "imported"

let rec algorithm_of_name name =
  match name with
  | "algorithm1" -> Ok Algorithm1
  | "theorem41" -> Ok Theorem41
  | "min-depth" -> Ok Min_depth
  | "theorem52" -> Ok Theorem52
  | "imported" -> Ok Imported
  | _ ->
    let n = String.length name in
    if n > 10 && String.sub name 0 9 = "repaired(" && name.[n - 1] = ')' then
      match algorithm_of_name (String.sub name 9 (n - 10)) with
      | Ok inner -> Ok (Repaired inner)
      | Error _ as e -> e
    else Error (Printf.sprintf "unknown algorithm %S" name)

let format_version = 1

(* 17 significant digits round-trip every finite float exactly, so a
   reloaded scheme carries bit-identical rates and bandwidths. *)
let float_str v = Printf.sprintf "%.17g" v

let to_json s =
  let buf = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "{\"format\": \"bmp-scheme\", \"version\": %d, " format_version;
  p "\"provenance\": {\"algorithm\": \"%s\", \"rate\": %s, \"degree_bound\": %s}, "
    (Json.escape (algorithm_name s.provenance.algorithm))
    (float_str s.provenance.rate)
    (match s.provenance.degree_bound with
    | None -> "null"
    | Some d -> string_of_int d);
  let float_array a =
    "[" ^ String.concat ", " (List.map float_str (Array.to_list a)) ^ "]"
  in
  p "\"instance\": {\"n\": %d, \"m\": %d, \"bandwidth\": %s, \"bin\": %s}, "
    s.instance.Instance.n s.instance.Instance.m
    (float_array s.instance.Instance.bandwidth)
    (match s.instance.Instance.bin with
    | None -> "null"
    | Some caps -> float_array caps);
  p "\"graph\": %s}" (Flowgraph.Export.to_json ~precision:17 (graph s));
  Buffer.contents buf

let ( let* ) = Result.bind

let no_unknown_fields ctx allowed v =
  match v with
  | Json.Obj fields ->
    (match List.find_opt (fun (k, _) -> not (List.mem k allowed)) fields with
    | Some (k, _) -> Error (Printf.sprintf "%s: unknown field %S" ctx k)
    | None -> Ok ())
  | _ -> Error (Printf.sprintf "%s: expected an object" ctx)

let field ctx k v =
  match Json.member k v with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "%s: missing field %S" ctx k)

let float_array_of ctx v =
  match v with
  | Json.Arr l ->
    let* values =
      List.fold_left
        (fun acc x ->
          let* acc = acc in
          let* f =
            Result.map_error (fun e -> ctx ^ ": " ^ e) (Json.to_float x)
          in
          Ok (f :: acc))
        (Ok []) l
    in
    Ok (Array.of_list (List.rev values))
  | _ -> Error (ctx ^ ": expected an array of numbers")

let provenance_of_json v =
  let ctx = "provenance" in
  let* () = no_unknown_fields ctx [ "algorithm"; "rate"; "degree_bound" ] v in
  let* name = field ctx "algorithm" v in
  let* name = Result.map_error (fun e -> ctx ^ ": " ^ e) (Json.to_string_exn name) in
  let* algorithm =
    Result.map_error (fun e -> ctx ^ ": " ^ e) (algorithm_of_name name)
  in
  let* rate = field ctx "rate" v in
  let* rate = Result.map_error (fun e -> ctx ^ ": rate: " ^ e) (Json.to_float rate) in
  let* degree_bound =
    match Json.member "degree_bound" v with
    | None | Some Json.Null -> Ok None
    | Some d ->
      let* d =
        Result.map_error (fun e -> ctx ^ ": degree_bound: " ^ e) (Json.to_int d)
      in
      Ok (Some d)
  in
  Ok { algorithm; rate; degree_bound }

let instance_of_json v =
  let ctx = "instance" in
  let* () = no_unknown_fields ctx [ "n"; "m"; "bandwidth"; "bin" ] v in
  let* n = field ctx "n" v in
  let* n = Result.map_error (fun e -> ctx ^ ": n: " ^ e) (Json.to_int n) in
  let* m = field ctx "m" v in
  let* m = Result.map_error (fun e -> ctx ^ ": m: " ^ e) (Json.to_int m) in
  let* bandwidth = field ctx "bandwidth" v in
  let* bandwidth = float_array_of (ctx ^ ": bandwidth") bandwidth in
  let* bin =
    match Json.member "bin" v with
    | None | Some Json.Null -> Ok None
    | Some b ->
      let* caps = float_array_of (ctx ^ ": bin") b in
      Ok (Some caps)
  in
  match Instance.create ?bin ~bandwidth ~n ~m () with
  | inst -> Ok inst
  | exception Invalid_argument msg -> Error (ctx ^ ": " ^ msg)

let of_json text =
  let* v = Json.parse text in
  let ctx = "scheme" in
  let* () =
    no_unknown_fields ctx [ "format"; "version"; "provenance"; "instance"; "graph" ] v
  in
  let* fmt = field ctx "format" v in
  let* fmt = Result.map_error (fun e -> ctx ^ ": format: " ^ e) (Json.to_string_exn fmt) in
  let* () =
    if fmt = "bmp-scheme" then Ok ()
    else Error (Printf.sprintf "scheme: not a bmp-scheme file (format %S)" fmt)
  in
  let* version = field ctx "version" v in
  let* version =
    Result.map_error (fun e -> ctx ^ ": version: " ^ e) (Json.to_int version)
  in
  let* () =
    if version = format_version then Ok ()
    else
      Error
        (Printf.sprintf
           "scheme: unsupported format version %d (this library reads version %d)"
           version format_version)
  in
  let* prov_json = field ctx "provenance" v in
  let* provenance = provenance_of_json prov_json in
  let* inst_json = field ctx "instance" v in
  let* inst = instance_of_json inst_json in
  let* graph_json = field ctx "graph" v in
  let* g = Flowgraph.Export.graph_of_json_value graph_json in
  match create ~provenance inst g with
  | s -> Ok s
  | exception Invalid_argument msg -> Error msg

let pp fmt s =
  Format.fprintf fmt "scheme[%s, T = %g, %d nodes, %d edges]"
    (algorithm_name s.provenance.algorithm)
    s.provenance.rate (size s) (edge_count s)
