(** Low-degree acyclic broadcast schemes from a valid word (Lemma 4.6).

    Given a word [w] valid for throughput [rate], the scheme is built by
    feeding each node, in word order, from the {e earliest} nodes that
    still have unused upload bandwidth — guarded supply first for open
    receivers (conservatism), open supply only for guarded receivers
    (firewall constraint). For the words produced by Algorithm 2 this
    yields the degree bounds of Theorem 4.1:

    - every guarded node [j]: [o j <= ceil (b j / rate) + 1];
    - at most one open node [i]: [o i <= ceil (b i / rate) + 3];
    - every other open node [i]: [o i <= ceil (b i / rate) + 2].

    For open-only instances the construction degenerates to Algorithm 1
    and the bound is [+1]. *)

val build : Platform.Instance.t -> rate:float -> Word.t -> Scheme.t
(** [build inst ~rate w] constructs the scheme artifact (provenance
    [Scheme.Theorem41], promised excess [+3], or [+1] when [m = 0]).
    Requires a sorted instance, [complete w inst] and
    [Word.feasible inst ~rate w]; raises [Invalid_argument] otherwise.
    Every non-source node receives exactly [rate]; the scheme is acyclic
    and respects the firewall constraint by construction. *)

val build_optimal : Platform.Instance.t -> float * Scheme.t
(** Convenience: [Greedy.optimal_acyclic] followed by {!build} — the full
    Theorem 4.1 pipeline. Returns [(T*ac, scheme)]. *)
