open Platform
module G = Flowgraph.Graph

type stats = {
  patch_edges : int;
  rebuild_edges : int;
  rate_after : float;
  optimal_after : float;
}

(* Provenance of a patched scheme: the original algorithm wrapped once in
   [Repaired] — repairs of repairs keep a single layer of wrapping. The
   target rate promise is kept; the degree promise is dropped (refill can
   grow outdegrees past any constructive bound). *)
let repaired_provenance o =
  let p = Scheme.provenance (Overlay.scheme o) in
  let algorithm =
    match p.Scheme.algorithm with Scheme.Repaired _ as a -> a | a -> Scheme.Repaired a
  in
  { Scheme.algorithm; rate = p.Scheme.rate; degree_bound = None }

let patched_overlay_of o ~inst ~graph ~order =
  let scheme = Scheme.create ~provenance:(repaired_provenance o) inst graph in
  Overlay.of_scheme scheme ~order

let remap_graph old_graph ~size ~map ~drop =
  let g = G.create size in
  G.iter_edges
    (fun ~src ~dst w ->
      if src <> drop && dst <> drop then G.set_edge g ~src:(map src) ~dst:(map dst) w)
    old_graph;
  g

(* Fill [deficit] units into [r] from nodes placed before it, spare-capacity
   only, conservative class preference; returns the unfilled remainder. *)
let refill inst graph ~pos ~r ~deficit ~cut =
  let b = inst.Instance.bandwidth in
  let senders_of_class want_guarded =
    let all = ref [] in
    for u = 0 to Instance.size inst - 1 do
      if u <> r && pos.(u) < pos.(r) && Instance.is_guarded inst u = want_guarded
      then begin
        let spare = b.(u) -. G.out_weight graph u in
        if spare > cut then all := (pos.(u), u, spare) :: !all
      end
    done;
    List.sort compare !all
  in
  let draw remaining senders =
    List.fold_left
      (fun remaining (_, u, spare) ->
        if remaining <= cut then remaining
        else begin
          let amount = Float.min spare remaining in
          G.add_edge graph ~src:u ~dst:r amount;
          remaining -. amount
        end)
      remaining senders
  in
  let remaining =
    if Instance.is_guarded inst r then deficit
    else draw deficit (senders_of_class true)
  in
  draw remaining (senders_of_class false)

let finish ~before_projected ~touched patched =
  let rebuilt = Overlay.build (Overlay.instance patched) in
  let stats =
    {
      patch_edges =
        touched + Overlay.edge_distance before_projected (Overlay.graph patched);
      rebuild_edges =
        touched + Overlay.edge_distance before_projected (Overlay.graph rebuilt);
      rate_after = Overlay.verified_rate patched;
      optimal_after = Overlay.rate rebuilt;
    }
  in
  (patched, stats)

let leave o ~node =
  let inst = Overlay.instance o in
  let size = Instance.size inst in
  if node <= 0 || node >= size then invalid_arg "Repair.leave: bad node";
  if size <= 2 then invalid_arg "Repair.leave: cannot remove the last receiver";
  let b = inst.Instance.bandwidth in
  let bandwidth =
    Array.init (size - 1) (fun i -> if i < node then b.(i) else b.(i + 1))
  in
  let n = inst.Instance.n - (if node <= inst.Instance.n then 1 else 0) in
  let m = inst.Instance.m - (if node > inst.Instance.n then 1 else 0) in
  let new_inst = Instance.create ~bandwidth ~n ~m () in
  let map u = if u < node then u else u - 1 in
  let order =
    Array.of_list
      (Array.to_list (Overlay.order o)
      |> List.filter (( <> ) node)
      |> List.map map)
  in
  let old_graph = Overlay.graph o in
  let touched = G.out_degree old_graph node + List.length (G.in_edges old_graph node) in
  let graph = remap_graph old_graph ~size:(size - 1) ~map ~drop:node in
  let before_projected = G.copy graph in
  (* Refill reception deficits in topological order so earlier repairs can
     rely on upstream nodes being whole again. *)
  let pos = Array.make (size - 1) 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  let rate = Overlay.rate o in
  let cut = 1e-7 *. rate in
  Array.iter
    (fun r ->
      if r <> 0 then begin
        let deficit = rate -. G.in_weight graph r in
        if deficit > cut then
          ignore (refill new_inst graph ~pos ~r ~deficit ~cut)
      end)
    order;
  finish ~before_projected ~touched (patched_overlay_of o ~inst:new_inst ~graph ~order)

let sorted_insert_position inst ~cls ~bandwidth =
  let b = inst.Instance.bandwidth in
  let scan lo hi =
    let rec go i = if i > hi then hi + 1 else if b.(i) < bandwidth then i else go (i + 1) in
    go lo
  in
  match cls with
  | Instance.Open -> scan 1 inst.Instance.n
  | Instance.Guarded ->
    scan (inst.Instance.n + 1) (inst.Instance.n + inst.Instance.m)

let join o ~bandwidth ~cls =
  if bandwidth < 0. || Float.is_nan bandwidth then
    invalid_arg "Repair.join: bad bandwidth";
  let inst = Overlay.instance o in
  let size = Instance.size inst in
  let p = sorted_insert_position inst ~cls ~bandwidth in
  let b = inst.Instance.bandwidth in
  let new_bandwidth =
    Array.init (size + 1) (fun i ->
        if i < p then b.(i) else if i = p then bandwidth else b.(i - 1))
  in
  let n = inst.Instance.n + (if cls = Instance.Open then 1 else 0) in
  let m = inst.Instance.m + (if cls = Instance.Guarded then 1 else 0) in
  let new_inst = Instance.create ~bandwidth:new_bandwidth ~n ~m () in
  let map u = if u < p then u else u + 1 in
  let graph = remap_graph (Overlay.graph o) ~size:(size + 1) ~map ~drop:(-1) in
  let before_projected = G.copy graph in
  let order = Array.append (Array.map map (Overlay.order o)) [| p |] in
  let pos = Array.make (size + 1) 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  let rate = Overlay.rate o in
  let cut = 1e-7 *. rate in
  ignore (refill new_inst graph ~pos ~r:p ~deficit:rate ~cut);
  finish ~before_projected ~touched:0 (patched_overlay_of o ~inst:new_inst ~graph ~order)

let rebuild o =
  let rebuilt = Overlay.build (Overlay.instance o) in
  let edges = Overlay.edge_distance (Overlay.graph o) (Overlay.graph rebuilt) in
  ( rebuilt,
    {
      patch_edges = edges;
      rebuild_edges = edges;
      rate_after = Overlay.verified_rate rebuilt;
      optimal_after = Overlay.rate rebuilt;
    } )
