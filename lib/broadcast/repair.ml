open Platform
module G = Flowgraph.Graph
module Csr = Flowgraph.Csr

type delta = {
  full : bool;
  identity : bool;
  touched : int array;
  added : (int * int) array;
  removed : (int * int) array;
  reweighted : (int * int) array;
}

type stats = {
  patch_edges : int;
  rebuild_edges : int;
  rate_after : float;
  optimal_after : float;
  starved : int list;
  node_map : int array;
  delta : delta;
}

let full_delta =
  {
    full = true;
    identity = false;
    touched = [||];
    added = [||];
    removed = [||];
    reweighted = [||];
  }

(* Mutable edge-modification log threaded through the repair primitives;
   folded into the structured [delta] once the operation commits. *)
type log = {
  mutable l_added : (int * int) list;  (* post-event ids *)
  mutable l_reweighted : (int * int) list;  (* post-event ids *)
  mutable l_removed : (int * int) list;  (* pre-event ids *)
  mutable l_nodes : int list;  (* post-event ids touched beyond edges *)
}

let new_log () =
  { l_added = []; l_reweighted = []; l_removed = []; l_nodes = [] }

let delta_of ~map log =
  let identity = ref true in
  Array.iteri (fun i v -> if v <> i then identity := false) map;
  let tbl = Hashtbl.create 16 in
  let touch v = if v >= 0 then Hashtbl.replace tbl v () in
  List.iter touch log.l_nodes;
  List.iter
    (fun (u, v) ->
      touch u;
      touch v)
    log.l_added;
  List.iter
    (fun (u, v) ->
      touch u;
      touch v)
    log.l_reweighted;
  (* Removed edges are logged in pre-event ids: the surviving endpoints
     are what the repaired overlay still has to answer for. *)
  List.iter
    (fun (u, v) ->
      touch map.(u);
      touch map.(v))
    log.l_removed;
  let touched =
    Array.of_list
      (List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl []))
  in
  {
    full = false;
    identity = !identity;
    touched;
    added = Array.of_list (List.sort_uniq compare log.l_added);
    removed = Array.of_list (List.sort_uniq compare log.l_removed);
    reweighted = Array.of_list (List.sort_uniq compare log.l_reweighted);
  }

(* Provenance of a patched scheme: the original algorithm wrapped once in
   [Repaired] — repairs of repairs keep a single layer of wrapping. The
   target rate promise is kept; the degree promise is dropped (refill can
   grow outdegrees past any constructive bound). *)
let repaired_provenance o =
  let p = Scheme.provenance (Overlay.scheme o) in
  let algorithm =
    match p.Scheme.algorithm with Scheme.Repaired _ as a -> a | a -> Scheme.Repaired a
  in
  { Scheme.algorithm; rate = p.Scheme.rate; degree_bound = None }

let patched_overlay_of o ~inst ~graph ~order ~delta =
  let provenance = repaired_provenance o in
  let scheme =
    (* Identity fast case: no renumbering happened, so the base scheme's
       frozen snapshot stays warm — only the touched rows are re-frozen
       and re-validated. Renumbering repairs (and rebuilds) fall back to
       the full constructor. *)
    if delta.identity && not delta.full then
      Scheme.apply_delta ~base:(Overlay.scheme o) ~provenance inst
        ~rows:delta.touched graph
    else Scheme.create ~provenance inst graph
  in
  Overlay.of_scheme scheme ~order

let remap_graph old_graph ~size ~map ~keep =
  let g = G.create size in
  G.iter_edges
    (fun ~src ~dst w ->
      if keep src && keep dst then G.set_edge g ~src:(map src) ~dst:(map dst) w)
    old_graph;
  g

(* Fill [deficit] units into [r] from nodes placed before it, spare-capacity
   only, conservative class preference; returns the unfilled remainder. *)
let refill inst graph ~log ~pos ~r ~deficit ~cut =
  let b = inst.Instance.bandwidth in
  let senders_of_class want_guarded =
    let all = ref [] in
    for u = 0 to Instance.size inst - 1 do
      if u <> r && pos.(u) < pos.(r) && Instance.is_guarded inst u = want_guarded
      then begin
        let spare = b.(u) -. G.out_weight graph u in
        if spare > cut then all := (pos.(u), u, spare) :: !all
      end
    done;
    List.sort compare !all
  in
  let draw remaining senders =
    List.fold_left
      (fun remaining (_, u, spare) ->
        if remaining <= cut then remaining
        else begin
          let amount = Float.min spare remaining in
          if G.edge_weight graph ~src:u ~dst:r > 0. then
            log.l_reweighted <- (u, r) :: log.l_reweighted
          else log.l_added <- (u, r) :: log.l_added;
          G.add_edge graph ~src:u ~dst:r amount;
          remaining -. amount
        end)
      remaining senders
  in
  let remaining =
    if Instance.is_guarded inst r then deficit
    else draw deficit (senders_of_class true)
  in
  draw remaining (senders_of_class false)

(* Refill every reception deficit in topological order, so earlier repairs
   can rely on upstream nodes being whole again. *)
let refill_all inst graph ~log ~order ~rate =
  let pos = Array.make (Array.length order) 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  let cut = 1e-7 *. rate in
  Array.iter
    (fun r ->
      if r <> 0 then begin
        let deficit = rate -. G.in_weight graph r in
        if deficit > cut then
          ignore (refill inst graph ~log ~pos ~r ~deficit ~cut)
      end)
    order

(* Non-source nodes still receiving below [rate] (beyond a 1e-6 relative
   slack) — read off the patched scheme's cached CSR snapshot. *)
let starved_of scheme =
  let rate = Scheme.rate scheme in
  let snap = Scheme.snapshot scheme in
  let slack = 1e-6 *. Float.max 1. rate in
  let starved = ref [] in
  for v = Csr.node_count snap - 1 downto 1 do
    if Csr.in_weight snap v < rate -. slack then starved := v :: !starved
  done;
  !starved

let finish ~before_projected ~touched ~node_map ~delta patched =
  let patch_edges =
    touched + Overlay.edge_distance before_projected (Overlay.graph patched)
  in
  (* [rate_after] comes from the patched scheme's memoized report — the CSR
     structured fast path on acyclic overlays, never a fresh max-flow. *)
  let rate_after = Overlay.verified_rate patched in
  let starved = starved_of (Overlay.scheme patched) in
  let stats =
    (* Churn can in principle leave an instance the Theorem 4.1 pipeline
       no longer accepts (optimal rate 0); the patch must still stand on
       its own, so a failed reference rebuild degrades to "no alternative"
       instead of propagating the exception. *)
    match Overlay.build (Overlay.instance patched) with
    | rebuilt ->
      {
        patch_edges;
        rebuild_edges =
          touched + Overlay.edge_distance before_projected (Overlay.graph rebuilt);
        rate_after;
        optimal_after = Overlay.rate rebuilt;
        starved;
        node_map;
        delta;
      }
    | exception Invalid_argument _ ->
      {
        patch_edges;
        rebuild_edges = patch_edges;
        rate_after;
        optimal_after = 0.;
        starved;
        node_map;
        delta;
      }
  in
  (patched, stats)

(* Shared removal core: drop a set of nodes in one event, remap the
   survivors, and refill every reception deficit in topological order. *)
let remove_nodes o ~nodes ~op =
  let inst = Overlay.instance o in
  let size = Instance.size inst in
  if nodes = [] then invalid_arg (op ^ ": no node to remove");
  let drop = Array.make size false in
  List.iter
    (fun v ->
      if v <= 0 || v >= size then invalid_arg (op ^ ": bad node");
      if drop.(v) then invalid_arg (op ^ ": duplicate node");
      drop.(v) <- true)
    nodes;
  let k = List.length nodes in
  if size - k < 2 then invalid_arg (op ^ ": cannot remove the last receiver");
  let map = Array.make size (-1) in
  let next = ref 0 in
  for v = 0 to size - 1 do
    if not drop.(v) then begin
      map.(v) <- !next;
      incr next
    end
  done;
  let b = inst.Instance.bandwidth in
  let bandwidth = Array.make (size - k) 0. in
  for v = 0 to size - 1 do
    if not drop.(v) then bandwidth.(map.(v)) <- b.(v)
  done;
  let dropped_open = ref 0 in
  for v = 1 to inst.Instance.n do
    if drop.(v) then incr dropped_open
  done;
  let n = inst.Instance.n - !dropped_open in
  let m = inst.Instance.m - (k - !dropped_open) in
  let new_inst = Instance.create ~bandwidth ~n ~m () in
  let order =
    Array.of_list
      (Array.to_list (Overlay.order o)
      |> List.filter (fun v -> not drop.(v))
      |> List.map (fun v -> map.(v)))
  in
  let old_graph = Overlay.graph o in
  let log = new_log () in
  (* Every connection incident to a casualty is churn the survivors pay. *)
  let touched = ref 0 in
  G.iter_edges
    (fun ~src ~dst _w ->
      if drop.(src) || drop.(dst) then begin
        incr touched;
        log.l_removed <- (src, dst) :: log.l_removed
      end)
    old_graph;
  let graph =
    remap_graph old_graph ~size:(size - k) ~map:(fun v -> map.(v))
      ~keep:(fun v -> not drop.(v))
  in
  let before_projected = G.copy graph in
  refill_all new_inst graph ~log ~order ~rate:(Overlay.rate o);
  let delta = delta_of ~map log in
  finish ~before_projected ~touched:!touched ~node_map:map ~delta
    (patched_overlay_of o ~inst:new_inst ~graph ~order ~delta)

let leave o ~node = remove_nodes o ~nodes:[ node ] ~op:"Repair.leave"

let leave_batch o ~nodes =
  remove_nodes o ~nodes:(List.sort_uniq compare nodes) ~op:"Repair.leave_batch"

let sorted_insert_position inst ~cls ~bandwidth =
  let b = inst.Instance.bandwidth in
  let scan lo hi =
    let rec go i = if i > hi then hi + 1 else if b.(i) < bandwidth then i else go (i + 1) in
    go lo
  in
  match cls with
  | Instance.Open -> scan 1 inst.Instance.n
  | Instance.Guarded ->
    scan (inst.Instance.n + 1) (inst.Instance.n + inst.Instance.m)

let join o ~bandwidth ~cls =
  if bandwidth < 0. || not (Float.is_finite bandwidth) then
    invalid_arg "Repair.join: bad bandwidth";
  let inst = Overlay.instance o in
  let size = Instance.size inst in
  let p = sorted_insert_position inst ~cls ~bandwidth in
  let b = inst.Instance.bandwidth in
  let new_bandwidth =
    Array.init (size + 1) (fun i ->
        if i < p then b.(i) else if i = p then bandwidth else b.(i - 1))
  in
  let n = inst.Instance.n + (if cls = Instance.Open then 1 else 0) in
  let m = inst.Instance.m + (if cls = Instance.Guarded then 1 else 0) in
  let new_inst = Instance.create ~bandwidth:new_bandwidth ~n ~m () in
  let map u = if u < p then u else u + 1 in
  let graph =
    remap_graph (Overlay.graph o) ~size:(size + 1) ~map ~keep:(fun _ -> true)
  in
  let before_projected = G.copy graph in
  let order = Array.append (Array.map map (Overlay.order o)) [| p |] in
  let pos = Array.make (size + 1) 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  let rate = Overlay.rate o in
  let cut = 1e-7 *. rate in
  let log = new_log () in
  log.l_nodes <- [ p ];
  (* On a saturated overlay this fills nothing: the newcomer is admitted
     at rate 0 and lands in [stats.starved] — never an exception. *)
  ignore (refill new_inst graph ~log ~pos ~r:p ~deficit:rate ~cut);
  let delta = delta_of ~map:(Array.init size map) log in
  finish ~before_projected ~touched:0 ~node_map:(Array.init size map) ~delta
    (patched_overlay_of o ~inst:new_inst ~graph ~order ~delta)

(* Bandwidth change without membership change: move the node to its sorted
   position within its class (a label permutation — the topology and the
   topological order are untouched), clamp its outgoing edges to the new
   cap, then refill every reception deficit from spare capacity. *)
let set_bandwidth o ~node ~bandwidth ~op =
  let inst = Overlay.instance o in
  let size = Instance.size inst in
  if node < 0 || node >= size then invalid_arg (op ^ ": bad node");
  if not (Float.is_finite bandwidth) || bandwidth < 0. then
    invalid_arg (op ^ ": bad bandwidth");
  if node = 0 && bandwidth <= 0. then
    invalid_arg (op ^ ": source bandwidth must stay positive");
  let b = inst.Instance.bandwidth in
  let b' = Array.copy b in
  b'.(node) <- bandwidth;
  (* Stable re-sort of the node's class block under the new bandwidth;
     every other pair keeps its relative order, so the permutation is
     deterministic and [Instance.sorted] holds again. *)
  let lo, hi =
    if node = 0 then (0, 0)
    else if Instance.is_open inst node then (1, inst.Instance.n)
    else (inst.Instance.n + 1, inst.Instance.n + inst.Instance.m)
  in
  let block =
    List.stable_sort
      (fun i j -> compare b'.(j) b'.(i))
      (List.init (hi - lo + 1) (fun i -> lo + i))
  in
  let map = Array.init size (fun v -> v) in
  List.iteri (fun i old -> map.(old) <- lo + i) block;
  let bandwidth_sorted = Array.make size 0. in
  Array.iteri (fun old new_i -> bandwidth_sorted.(new_i) <- b'.(old)) map;
  let new_inst =
    Instance.create ~bandwidth:bandwidth_sorted ~n:inst.Instance.n
      ~m:inst.Instance.m ()
  in
  let identity = Array.for_all2 ( = ) map (Array.init size (fun v -> v)) in
  let graph =
    (* Identity fast case: the class re-sort kept every node in place, so
       the fresh copy [Overlay.graph] hands out already carries the
       post-event numbering — no hashtable remap pass. *)
    if identity then Overlay.graph o
    else
      remap_graph (Overlay.graph o) ~size ~map:(fun v -> map.(v))
        ~keep:(fun _ -> true)
  in
  let before_projected = G.copy graph in
  let node' = map.(node) in
  let log = new_log () in
  log.l_nodes <- [ node' ];
  let out = G.out_weight graph node' in
  if out > bandwidth then begin
    List.iter
      (fun (dst, _w) -> log.l_reweighted <- (node', dst) :: log.l_reweighted)
      (G.out_edges graph node');
    if bandwidth <= 0. then
      List.iter
        (fun (dst, _w) -> G.set_edge graph ~src:node' ~dst 0.)
        (G.out_edges graph node')
    else begin
      let s = bandwidth /. out in
      List.iter
        (fun (dst, w) -> G.set_edge graph ~src:node' ~dst (w *. s))
        (G.out_edges graph node')
    end
  end;
  let order =
    if identity then Array.copy (Overlay.order o)
    else Array.map (fun v -> map.(v)) (Overlay.order o)
  in
  refill_all new_inst graph ~log ~order ~rate:(Overlay.rate o);
  let delta = delta_of ~map log in
  finish ~before_projected ~touched:0 ~node_map:map ~delta
    (patched_overlay_of o ~inst:new_inst ~graph ~order ~delta)

let degrade o ~node ~bandwidth =
  let inst = Overlay.instance o in
  if node >= 0 && node < Instance.size inst
     && not (Util.fle bandwidth inst.Instance.bandwidth.(node))
  then invalid_arg "Repair.degrade: bandwidth increased";
  set_bandwidth o ~node ~bandwidth ~op:"Repair.degrade"

let restore o ~node ~bandwidth =
  let inst = Overlay.instance o in
  if node >= 0 && node < Instance.size inst
     && not (Util.fge bandwidth inst.Instance.bandwidth.(node))
  then invalid_arg "Repair.restore: bandwidth decreased";
  set_bandwidth o ~node ~bandwidth ~op:"Repair.restore"

let rebuild ?headroom o =
  let inst = Overlay.instance o in
  let rebuilt, optimal_after =
    match headroom with
    | None ->
      let rebuilt = Overlay.build inst in
      (rebuilt, Overlay.rate rebuilt)
    | Some h ->
      if not (h > 0. && h <= 1.) then
        invalid_arg "Repair.rebuild: headroom must lie in (0, 1]";
      let t, _ = Greedy.optimal_acyclic inst in
      (Overlay.build ~rate:(t *. h) inst, t)
  in
  let edges = Overlay.edge_distance (Overlay.graph o) (Overlay.graph rebuilt) in
  ( rebuilt,
    {
      patch_edges = edges;
      rebuild_edges = edges;
      rate_after = Overlay.verified_rate rebuilt;
      optimal_after;
      starved = starved_of (Overlay.scheme rebuilt);
      node_map = Array.init (Instance.size inst) (fun v -> v);
      delta = full_delta;
    } )
