open Platform

(* Senders carry their depth; receivers pick the shallowest sender with
   spare capacity within the class dictated by the conservative rule. *)
type sender = { node : int; depth : int; mutable remaining : float }

let draw_min_depth pool graph ~dst ~need ~cut =
  (* [pool] is a list ref of senders; pull from the shallowest until the
     need is met. Returns (unfilled remainder, max depth used). *)
  let rec go need max_used =
    if need <= cut then (0., max_used)
    else begin
      let best = ref None in
      List.iter
        (fun s ->
          if s.remaining > cut then
            match !best with
            | Some b when b.depth <= s.depth -> ()
            | _ -> best := Some s)
        !pool;
      match !best with
      | None -> (need, max_used)
      | Some s ->
        let amount = Float.min need s.remaining in
        Flowgraph.Graph.add_edge graph ~src:s.node ~dst amount;
        s.remaining <- s.remaining -. amount;
        go (need -. amount) (max max_used s.depth)
    end
  in
  go need (-1)

let pool_total pool =
  List.fold_left (fun acc s -> acc +. s.remaining) 0. !pool

let build inst ~rate w =
  if not (Instance.sorted inst) then invalid_arg "Depth.build: instance must be sorted";
  if not (Word.complete w inst) then invalid_arg "Depth.build: incomplete word";
  if rate <= 0. then invalid_arg "Depth.build: rate must be positive";
  let b = inst.Instance.bandwidth in
  let graph = Flowgraph.Graph.create (Instance.size inst) in
  let cut = 1e-7 *. rate in
  let open_pool = ref [ { node = 0; depth = 0; remaining = b.(0) } ] in
  let guarded_pool = ref [] in
  let next_open = ref 1 and next_guarded = ref (inst.Instance.n + 1) in
  let feed letter =
    match letter with
    | Instance.Guarded ->
      let v = !next_guarded in
      incr next_guarded;
      let missing, used = draw_min_depth open_pool graph ~dst:v ~need:rate ~cut in
      if missing > cut then
        invalid_arg "Depth.build: word is not feasible at this rate";
      guarded_pool := { node = v; depth = used + 1; remaining = b.(v) } :: !guarded_pool
    | Instance.Open ->
      let v = !next_open in
      incr next_open;
      (* Conservative class split: guarded supply first, exactly
         min(rate, guarded total), then open supply. *)
      let from_guarded = Float.min rate (pool_total guarded_pool) in
      let miss_g, used_g =
        draw_min_depth guarded_pool graph ~dst:v ~need:from_guarded ~cut
      in
      let miss_o, used_o =
        draw_min_depth open_pool graph ~dst:v ~need:(rate -. from_guarded +. miss_g)
          ~cut
      in
      if miss_o > cut then
        invalid_arg "Depth.build: word is not feasible at this rate";
      open_pool :=
        { node = v; depth = max used_g used_o + 1; remaining = b.(v) } :: !open_pool
  in
  Array.iter feed w;
  (* Portfolio guarantee: the shallowest-sender greedy is locally optimal
     per receiver but can lose globally — draining shallow capacity early
     occasionally forces later receivers onto deep senders, ending up
     deeper than the FIFO (Lemma 4.6) scheme built from the same word.
     Returning the shallower of the two candidates makes "never deeper
     than FIFO" unconditional. *)
  let fifo = Low_degree.build inst ~rate w in
  let winner =
    if Metrics.scheme_depth fifo < Metrics.depth graph then Scheme.graph fifo else graph
  in
  Scheme.create
    ~provenance:{ Scheme.algorithm = Scheme.Min_depth; rate; degree_bound = None }
    inst winner

let build_optimal ?(fraction = 1.0) inst =
  if fraction <= 0. || fraction > 1. then
    invalid_arg "Depth.build_optimal: fraction must lie in (0, 1]";
  let t, _ = Greedy.optimal_acyclic inst in
  let rate = t *. fraction *. (1. -. (4. *. Util.eps)) in
  match Greedy.test inst ~rate with
  | None -> invalid_arg "Depth.build_optimal: scaled rate infeasible"
  | Some word -> (rate, build inst ~rate word)

type tradeoff_point = {
  fraction : float;
  rate : float;
  fifo_depth : int;
  min_depth : int;
  fifo_max_excess : int;
  min_depth_max_excess : int;
}

let tradeoff ?(fractions = [ 1.0; 0.9; 0.75; 0.5 ]) inst =
  let t, _ = Greedy.optimal_acyclic inst in
  List.filter_map
    (fun fraction ->
      let rate = t *. fraction *. (1. -. (4. *. Util.eps)) in
      if rate <= 0. then None
      else
        match Greedy.test inst ~rate with
        | None -> None
        | Some word ->
          let fifo = Low_degree.build inst ~rate word in
          let shallow = build inst ~rate word in
          let excess s = (Metrics.scheme_report s).Metrics.max_excess in
          Some
            {
              fraction;
              rate;
              fifo_depth = Metrics.scheme_depth fifo;
              min_depth = Metrics.scheme_depth shallow;
              fifo_max_excess = excess fifo;
              min_depth_max_excess = excess shallow;
            })
    fractions
