(** Degree and depth metrics of broadcast schemes.

    The paper's headline guarantee is throughput {e and} degree: a node
    using all its bandwidth needs outdegree at least [ceil (b i / T)], and
    each algorithm adds a small additive constant. These helpers extract
    the actual degrees, their excess over the lower bound, and the scheme
    depth (the delay-related metric raised in the paper's conclusion). *)

type degree_report = {
  degrees : int array;  (** [o i] — positive-weight outdegree per node *)
  excess : int array;  (** [o i - ceil (b i / t)], possibly negative *)
  max_excess : int;
  max_excess_open : int option;
      (** maximum excess over the source and open nodes ([Some] whenever
          the class is non-empty — the source always belongs to it) *)
  max_excess_guarded : int option;
      (** maximum excess over guarded nodes; [None] if [m = 0] *)
  opens_above : int -> int;
      (** [opens_above k] — number of source/open nodes with excess [> k] *)
}

val degree_report : Platform.Instance.t -> t:float -> Flowgraph.Graph.t -> degree_report
(** [degree_report inst ~t g] compares outdegrees against
    [ceil (b i / t)]. Requires matching node counts and [t > 0]. *)

val degree_report_csr :
  Platform.Instance.t -> t:float -> Flowgraph.Csr.t -> degree_report
(** {!degree_report} on a frozen snapshot — no graph traversal, outdegrees
    are row-offset differences. *)

val scheme_report : Scheme.t -> degree_report
(** Degree report of a scheme artifact against its own provenance rate,
    on the artifact's cached snapshot. *)

val depth : Flowgraph.Graph.t -> int
(** Longest hop-path from node [0]; requires an acyclic graph. *)

val depth_csr : Flowgraph.Csr.t -> int
(** {!depth} on a frozen snapshot. Raises [Invalid_argument] on a cyclic
    graph. *)

val scheme_depth : Scheme.t -> int
(** Depth of a scheme artifact, reusing its cached snapshot. *)

val bottleneck : Flowgraph.Graph.t -> int * float
(** [(node, rate)] — the non-source node with the least incoming rate and
    that rate. On an acyclic scheme this node certifies the throughput
    (it is the binding cut of {!Flowgraph.Topo.min_incoming_cut});
    [(0, infinity)] on a single-node graph. *)

val bottleneck_csr : Flowgraph.Csr.t -> int * float
val scheme_bottleneck : Scheme.t -> int * float

val max_outdegree : Flowgraph.Graph.t -> int
val max_outdegree_csr : Flowgraph.Csr.t -> int
