(** Degree and depth metrics of broadcast schemes.

    The paper's headline guarantee is throughput {e and} degree: a node
    using all its bandwidth needs outdegree at least [ceil (b i / T)], and
    each algorithm adds a small additive constant. These helpers extract
    the actual degrees, their excess over the lower bound, and the scheme
    depth (the delay-related metric raised in the paper's conclusion). *)

type degree_report = {
  degrees : int array;  (** [o i] — positive-weight outdegree per node *)
  excess : int array;  (** [o i - ceil (b i / t)], possibly negative *)
  max_excess : int;
  max_excess_open : int option;
      (** maximum excess over the source and open nodes ([Some] whenever
          the class is non-empty — the source always belongs to it) *)
  max_excess_guarded : int option;
      (** maximum excess over guarded nodes; [None] if [m = 0] *)
  opens_above : int -> int;
      (** [opens_above k] — number of source/open nodes with excess [> k] *)
}

val degree_report : Platform.Instance.t -> t:float -> Flowgraph.Graph.t -> degree_report
(** [degree_report inst ~t g] compares outdegrees against
    [ceil (b i / t)]. Requires matching node counts and [t > 0]. *)

val depth : Flowgraph.Graph.t -> int
(** Longest hop-path from node [0]; requires an acyclic graph. *)

val bottleneck : Flowgraph.Graph.t -> int * float
(** [(node, rate)] — the non-source node with the least incoming rate and
    that rate. On an acyclic scheme this node certifies the throughput
    (it is the binding cut of {!Flowgraph.Topo.min_incoming_cut});
    [(0, infinity)] on a single-node graph. *)

val max_outdegree : Flowgraph.Graph.t -> int
