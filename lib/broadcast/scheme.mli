(** First-class broadcast-scheme artifacts.

    Every construction in this library used to hand around ad-hoc
    [(Platform.Instance.t, Flowgraph.Graph.t)] pairs, so each consumer
    (verifier, metrics, CLI, disk) re-established the invariants and
    re-froze its own {!Flowgraph.Csr} snapshot. A [Scheme.t] bundles the
    whole artifact once:

    - the {e sorted} instance the scheme was computed for;
    - the rated edge set, frozen at construction into a {!Flowgraph.Csr}
      snapshot shared by every query (the mutable graph view is
      materialized from it on demand);
    - provenance — which algorithm built it, the target rate [T] it was
      built for, and the additive degree bound it promises;
    - a memoized {!Verify.report}.

    Values are built only through the smart constructor {!create}, which
    enforces the paper's structural invariants (node count, per-node
    bandwidth [sum_j c i j <= b i], the guarded-to-guarded firewall) at
    construction time — so holding a [t] means holding a structurally
    valid scheme, and downstream layers stop re-checking.

    Laziness is single-threaded: the first {!report}/{!graph} call on a
    scheme must not race with another. Concurrent {e later} reads are
    fine (the caches are written once). Build and verify a scheme on one
    domain before fanning out.

    {2 Persistence}

    {!to_json}/{!of_json} give schemes a canonical, versioned on-disk
    form (format [bmp-scheme], version {!format_version}) with rates
    printed at 17 significant digits, so
    [of_json (to_json s)] reproduces the artifact exactly — identical
    graph, identical {!Verify.report}. The reader is strict: unknown
    fields, structural violations, non-finite numbers and unsupported
    versions are rejected with an explanatory message, never loaded. *)

type algorithm =
  | Algorithm1  (** Section III-B serve-in-order scheme (open-only, acyclic) *)
  | Theorem41  (** Algorithm 2 word + Lemma 4.6 low-degree builder *)
  | Min_depth  (** the depth-optimized variant of the Theorem 4.1 pipeline *)
  | Theorem52  (** the cyclic open-only construction *)
  | Repaired of algorithm
      (** patched under churn ({!Repair}); the payload is the provenance
          of the scheme the repair started from *)
  | Imported  (** loaded from disk or built outside this library *)

type provenance = {
  algorithm : algorithm;
  rate : float;  (** target rate [T] the scheme was built for; positive *)
  degree_bound : int option;
      (** promised additive outdegree excess over [ceil (b i / T)]:
          [Some 1] for Algorithm 1, [Some 3] for Theorem 4.1 (the
          worst-class bound), [Some 2] for Theorem 5.2 (with the absolute
          floor of 4 from the paper), [None] when no bound is promised
          (repaired or imported schemes) *)
}

type t

val create :
  ?eps:float -> provenance:provenance -> Platform.Instance.t -> Flowgraph.Graph.t -> t
(** [create ~provenance inst g] — the only way to obtain a scheme.
    Validates, under the {!Util} tolerance [eps]:

    - [Graph.node_count g = Instance.size inst];
    - [inst] is sorted (class-wise non-increasing bandwidth);
    - [provenance.rate] is finite and positive;
    - every node respects its outgoing bandwidth;
    - no guarded node sends to a guarded node.

    Incoming caps are {e not} an invariant — the constructions optimize
    upload bandwidth only, so a download-cap overrun is reported through
    [bin_ok] in {!report} instead of rejected here.

    Raises [Invalid_argument] with a ["Scheme.create: ..."] message
    otherwise. The edge set is frozen into a CSR snapshot before [create]
    returns, so later mutation of [g] cannot reach the artifact. *)

val apply_delta :
  ?eps:float ->
  base:t ->
  provenance:provenance ->
  Platform.Instance.t ->
  rows:int array ->
  Flowgraph.Graph.t ->
  t
(** [apply_delta ~base ~provenance inst ~rows g] — the delta-scoped
    constructor behind the churn fast path. Builds a scheme for [g] (the
    full post-event edge set) by {e patching} [base]'s frozen snapshot:
    only the successor rows listed in [rows] are re-read from [g] and
    re-frozen ({!Flowgraph.Csr.patch_rows}); every other row is blitted
    from the warm base snapshot, so the result is bit-for-bit identical
    to [create ~provenance inst g] at a fraction of the cost — no edge
    sort, no hashtable iteration, no full re-validation.

    The caller contracts that, relative to [base]:
    - node ids are stable ([Repair]'s identity-[node_map] fast case);
      [inst] may only append nodes, and every appended node appears in
      [rows];
    - [rows] (sorted ascending) covers every node whose out-edges or
      bandwidth changed — untouched rows of [g] must equal the base
      snapshot's.

    Validation is delta-scoped ({!Verify.row_violation}): bandwidth and
    firewall are re-checked on [rows] only; the base artifact certifies
    the rest. Raises [Invalid_argument] on a violated contract it can
    see (count mismatch, unsorted instance, bad rate, a disturbed row
    breaking an invariant). *)

val instance : t -> Platform.Instance.t
val graph : t -> Flowgraph.Graph.t
(** The rated edge set as a mutable-API graph, materialized from the
    frozen snapshot on first use and cached. Each call returns a fresh
    copy of the cached master, so mutating the result cannot
    desynchronize the mutable view from the frozen {!snapshot} every
    verifier and auditor reads — the copy is O(V + E), the same order as
    any useful traversal of it. *)

val provenance : t -> provenance
val rate : t -> float
(** [rate s] is [(provenance s).rate] — the target rate [T]. *)

val size : t -> int
(** Node count, [= Instance.size (instance s)]. *)

val edge_count : t -> int

val snapshot : t -> Flowgraph.Csr.t
(** The frozen CSR view of the scheme, built once inside {!create} —
    every verifier/metrics call on this artifact reuses it. *)

val report : t -> Verify.report
(** Full verification report ({!Verify.check_csr} on the cached
    snapshot), memoized. The structural fields are [true] by
    construction; the interesting outputs are [throughput], [acyclic]
    and [fast_path]. *)

val throughput : t -> float
(** [(report s).throughput]. *)

val is_acyclic : t -> bool

val achieves_target : t -> bool
(** Throughput at least [rate s] within the library's relative [1e-6]
    flow slack — the promise the constructor made, re-checked by the
    oracle. *)

val equal : t -> t -> bool
(** Same instance, identical edge set (exact weights) and identical
    provenance. *)

val algorithm_name : algorithm -> string
(** Canonical lowercase name used in serialized artifacts:
    ["algorithm1"], ["theorem41"], ["min-depth"], ["theorem52"],
    ["imported"], and ["repaired(<inner>)"] for repairs. *)

val algorithm_of_name : string -> (algorithm, string) result

val format_version : int
(** Version number written into (and required from) scheme files; this
    library writes and reads version [1]. *)

val to_json : t -> string
(** Canonical serialization: a single-line JSON document

    {v
{"format": "bmp-scheme", "version": 1,
 "provenance": {"algorithm": ..., "rate": ..., "degree_bound": ...},
 "instance": {"n": ..., "m": ..., "bandwidth": [...], "bin": ...},
 "graph": {"nodes": ..., "edges": [{"src": ..., "dst": ..., "rate": ...}, ...]}}
    v}

    with edges in canonical [(src, dst)] order and floats at 17
    significant digits. Byte-deterministic: the same artifact always
    serializes to the same bytes, independent of construction history or
    worker count. *)

val of_json : string -> (t, string) result
(** Strict inverse of {!to_json}: parses, validates the format tag and
    version, rebuilds the instance and graph, and re-runs the {!create}
    invariants — a scheme file that violates bandwidth or firewall
    constraints is rejected, not loaded. *)

val pp : Format.formatter -> t -> unit
(** One-line human summary (algorithm, rate, sizes). *)
