(** Depth-aware scheme construction — the delay-minimization extension the
    paper's conclusion proposes ("optimizing the depth of produced schemes
    in order to minimize delays").

    The Lemma 4.6 builder feeds every node from the {e earliest} senders
    with spare capacity; that minimizes degrees but chains the overlay
    (depth grows linearly with the platform size), and in chunk-based
    transport the playout delay grows with depth. This module keeps the
    class-level accounting of the conservative construction {e exactly}
    (guarded supply first for open receivers, open supply only for guarded
    receivers — so feasibility of a word at a rate is unchanged), but
    picks {e within} each class the sender of minimal current depth. The
    result trades a larger degree for a much shallower overlay; at target
    rates below the optimum the spare capacity lets depth drop further —
    towards logarithmic for homogeneous platforms at half rate, the
    classic bandwidth/latency trade-off.

    The E14 ablation experiment quantifies the trade-off (depth, degree,
    and simulated streaming lag, FIFO versus min-depth, across target-rate
    fractions). *)

val build : Platform.Instance.t -> rate:float -> Word.t -> Scheme.t
(** [build inst ~rate w] — same contract as {!Low_degree.build} (sorted
    instance, complete word, feasible rate) with min-depth sender
    selection. Every non-source node receives exactly [rate]; the scheme
    is acyclic and firewall-safe, and never deeper than the
    {!Low_degree.build} scheme from the same word and rate (the greedy
    candidate is compared against the FIFO one and the shallower wins —
    the pure greedy can lose globally on rare sender-pool shapes). The
    artifact carries [Scheme.Min_depth] provenance with no degree promise
    (the trade buys depth with degree). *)

val build_optimal : ?fraction:float -> Platform.Instance.t -> float * Scheme.t
(** [build_optimal inst] is the min-depth counterpart of
    {!Low_degree.build_optimal}; [fraction] (default 1.0, in (0, 1])
    scales the target below the optimal acyclic rate to buy depth. *)

type tradeoff_point = {
  fraction : float;  (** target rate as a fraction of T*ac *)
  rate : float;
  fifo_depth : int;  (** depth of the Lemma 4.6 (earliest-sender) scheme *)
  min_depth : int;  (** depth of the min-depth scheme *)
  fifo_max_excess : int;  (** degree excess of the FIFO scheme *)
  min_depth_max_excess : int;  (** degree excess of the min-depth scheme *)
}

val tradeoff :
  ?fractions:float list -> Platform.Instance.t -> tradeoff_point list
(** Sweep the trade-off (default fractions [1.0; 0.9; 0.75; 0.5]). Points
    whose scaled rate is infeasible or degenerate are skipped. *)
